// Dynamicservice: valid scopes change between broadcast cycles as data
// instances come and go (food trucks opening and closing across a city).
// The example maintains the Voronoi scopes incrementally, rebuilds the
// D-tree for each cycle, and shows that query results always track the
// current fleet while the index overhead stays flat.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

func main() {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	rng := rand.New(rand.NewSource(8))

	// Twenty trucks to start the day.
	var sites []geom.Point
	for i := 0; i < 20; i++ {
		sites = append(sites, geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
	}
	m, err := voronoi.NewMaintainer(area, sites)
	if err != nil {
		log.Fatal(err)
	}

	probe := geom.Pt(5200, 4800) // a hungry client downtown
	lastNearest := -1
	for cycle := 1; cycle <= 6; cycle++ {
		// Fleet churn between cycles: a truck opens, one closes. On cycle 3
		// the client's favorite truck itself shuts down.
		opened, _ := m.Add(geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
		var closed int
		ids, _ := m.LiveSites()
		closed = ids[rng.Intn(len(ids))]
		if cycle == 3 && lastNearest >= 0 {
			closed = lastNearest
		}
		if closed == opened {
			closed = ids[0]
		}
		if err := m.Remove(closed); err != nil {
			log.Fatal(err)
		}

		// Rebuild this cycle's broadcast index from the maintained scopes.
		sub, regionToSite, err := m.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		tree, err := core.Build(sub)
		if err != nil {
			log.Fatal(err)
		}
		paged, err := tree.Page(wire.DTreeParams(256))
		if err != nil {
			log.Fatal(err)
		}

		region, trace := paged.Locate(probe)
		truck := regionToSite[region]
		lastNearest = truck
		loc, _ := m.Site(truck)
		fmt.Printf("cycle %d: %2d trucks (opened #%d, closed #%d) — index %2d packets; nearest truck to downtown: #%d at (%4.0f,%4.0f), found in %d packet reads\n",
			cycle, m.Len(), opened, closed, paged.IndexPackets(), truck, loc.X, loc.Y, len(trace))
	}
}
