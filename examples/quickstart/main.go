// Quickstart: build a broadcast system over a handful of data instances,
// answer location-dependent point queries with the D-tree air index, and
// simulate the client access protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"airindex"
)

func main() {
	// Ten information kiosks in a 10 km x 10 km service area; each kiosk's
	// valid scope is its Voronoi cell ("the nearest kiosk answers").
	sites := []airindex.Point{
		airindex.Pt(1200, 3400), airindex.Pt(2500, 8100), airindex.Pt(4700, 1900),
		airindex.Pt(5200, 6400), airindex.Pt(3300, 5100), airindex.Pt(8100, 2600),
		airindex.Pt(7400, 7700), airindex.Pt(9100, 5400), airindex.Pt(6100, 4200),
		airindex.Pt(1800, 6900),
	}

	sys, err := airindex.New(sites, airindex.Config{PacketCapacity: 256})
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("broadcast system: %d instances, %s index\n", st.N, st.Index)
	fmt.Printf("  index: %d packets (%d bytes), data: %d packets, (1,m) with m=%d, cycle=%d packets\n",
		st.IndexPackets, st.IndexBytes, st.DataPackets, st.M, st.CyclePackets)

	// A mobile client asks "which kiosk serves my location?" at three spots.
	queries := []airindex.Point{
		airindex.Pt(2000, 4000), airindex.Pt(8000, 8000), airindex.Pt(5000, 5000),
	}
	rng := rand.New(rand.NewSource(7))
	for _, q := range queries {
		id, err := sys.Locate(q)
		if err != nil {
			log.Fatal(err)
		}
		// Issue the query at a random moment of the broadcast cycle.
		t := rng.Float64() * float64(st.CyclePackets)
		cost, err := sys.Access(q, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %6.0f,%-6.0f -> kiosk %d at %v   latency %.1f packets, tuned in for %d packets (%d during index search)\n",
			q.X, q.Y, id, sites[id], cost.Latency, cost.TotalTuning(), cost.TuneIndex)
	}
}
