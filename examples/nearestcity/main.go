// Nearestcity: the paper's running scenario — a tourist drives across a
// region while a broadcast channel continuously transmits city guides; at
// each waypoint the client resolves "which city am I in?" from the air
// index (the valid scopes are city catchment areas) and accounts for the
// energy spent listening.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"airindex"
)

type city struct {
	name string
	loc  airindex.Point
}

func main() {
	cities := []city{
		{"Ashford", airindex.Pt(1100, 8600)}, {"Brookvale", airindex.Pt(2900, 7200)},
		{"Carlton", airindex.Pt(4600, 8100)}, {"Dunmore", airindex.Pt(1900, 5100)},
		{"Eastport", airindex.Pt(8800, 7900)}, {"Fairfield", airindex.Pt(6300, 6000)},
		{"Granton", airindex.Pt(4200, 4100)}, {"Hillcrest", airindex.Pt(7600, 3500)},
		{"Irvine", airindex.Pt(2300, 2100)}, {"Jasper", airindex.Pt(5400, 1400)},
		{"Kingsley", airindex.Pt(9200, 1200)}, {"Lakewood", airindex.Pt(6900, 8950)},
	}
	sites := make([]airindex.Point, len(cities))
	for i, c := range cities {
		sites[i] = c.loc
	}

	sys, err := airindex.New(sites, airindex.Config{PacketCapacity: 128})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("city-guide broadcast: %d cities, %s index, cycle %d packets (m=%d)\n\n",
		st.N, st.Index, st.CyclePackets, st.M)

	// Drive a diagonal route with some wobble, querying every few km.
	rng := rand.New(rand.NewSource(3))
	var totalTune, totalLat float64
	const steps = 12
	for i := 0; i <= steps; i++ {
		f := float64(i) / steps
		p := airindex.Pt(
			600+f*8800+rng.Float64()*400,
			9300-f*8300+rng.Float64()*400,
		)
		id, err := sys.Locate(p)
		if err != nil {
			log.Fatal(err)
		}
		t := rng.Float64() * float64(st.CyclePackets)
		cost, err := sys.Access(p, t)
		if err != nil {
			log.Fatal(err)
		}
		totalTune += float64(cost.TotalTuning())
		totalLat += cost.Latency
		fmt.Printf("km %4.1f  at (%5.0f,%5.0f): you are in %-9s  guide in %6.1f packet slots, radio on for %d packets\n",
			f*12.8, p.X, p.Y, cities[id].name, cost.Latency, cost.TotalTuning())
	}

	// Energy summary: tuning time is the paper's proxy for battery drain.
	active := totalTune
	total := totalLat
	fmt.Printf("\ntrip summary: radio active %.0f of %.0f packet slots (%.1f%% duty cycle)\n",
		active, total, 100*active/total)
	fmt.Printf("without an air index the client would listen ~%.0f slots per query (full duty cycle)\n",
		st.OptimalLatency)
}
