// Indexshootout: a miniature of the paper's whole evaluation — build all
// four index structures over one dataset, sweep packet capacities, and
// print the four figure panels (latency, index size, tuning, efficiency)
// for a quick visual comparison. The full reproduction lives in
// cmd/airbench.
package main

import (
	"fmt"
	"log"

	"airindex/internal/dataset"
	"airindex/internal/experiment"
)

func main() {
	ds := dataset.Uniform(300, 7)
	cfg := experiment.Config{
		Capacities: []int{128, 512, 2048},
		Queries:    20000,
		Seed:       7,
	}
	b, err := experiment.Build(ds, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := experiment.Run(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, metric := range []experiment.Metric{
		experiment.MetricNormLatency,
		experiment.MetricNormIndexSize,
		experiment.MetricTuneIndex,
		experiment.MetricEfficiency,
	} {
		fmt.Print(experiment.Figure(ms, metric))
		fmt.Println()
	}
	fmt.Println("the D-tree should show the best efficiency row-for-row; see cmd/airbench for the paper's full sweep")
}
