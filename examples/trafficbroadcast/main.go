// Trafficbroadcast: region-wide traffic reports on air (the paper's
// motivating LDIS). The service area is divided into reporting zones
// around sensor stations; a fleet of in-car clients resolves the zone
// report for its position. The example compares all four index structures
// on the same workload and translates tuning time into battery figures.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"airindex"
	"airindex/internal/dataset"
)

func main() {
	// 185 sensor stations, clustered like a real road network's hot spots.
	ds := dataset.Clustered("TRAFFIC", dataset.ClusterSpec{
		N: 185, Clusters: 8, Sigma: 500, UniformShare: 0.1, Seed: 77,
	})
	fmt.Printf("traffic service: %d reporting zones, packet capacity 512 B, 1 KB reports\n\n", ds.N())

	kinds := []airindex.IndexKind{
		airindex.DTree, airindex.TrianTree, airindex.TrapTree, airindex.RStarTree,
	}

	// One shared query workload: cars are where the sensors are busy, so
	// queries cluster the same way the stations do.
	rng := rand.New(rand.NewSource(99))
	const nq = 2000
	queries := make([]airindex.Point, nq)
	for i := range queries {
		queries[i] = ds.Sites[rng.Intn(len(ds.Sites))]
		queries[i].X += rng.NormFloat64() * 700
		queries[i].Y += rng.NormFloat64() * 700
		if queries[i].X < 0 || queries[i].X > 10000 || queries[i].Y < 0 || queries[i].Y > 10000 {
			queries[i] = airindex.Pt(rng.Float64()*10000, rng.Float64()*10000)
		}
	}

	fmt.Printf("%-11s %8s %6s %10s %10s %12s %12s\n",
		"index", "packets", "m", "latency", "tuning", "duty cycle", "battery x")
	for _, kind := range kinds {
		sys, err := airindex.New(ds.Sites, airindex.Config{
			Index: kind, PacketCapacity: 512,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		var lat, tune float64
		qrng := rand.New(rand.NewSource(5))
		for _, q := range queries {
			t := qrng.Float64() * float64(st.CyclePackets)
			cost, err := sys.Access(q, t)
			if err != nil {
				log.Fatal(err)
			}
			lat += cost.Latency
			tune += float64(cost.TotalTuning())
		}
		lat /= nq
		tune /= nq
		duty := tune / lat
		// Energy per query: active slots plus dozing slots at ~1/50 the
		// power (the paper's premise that sending/receiving dominates).
		// The un-indexed client listens actively for the whole wait, about
		// half a data broadcast per query.
		energy := tune + (lat-tune)/50
		noIndexEnergy := st.OptimalLatency
		battery := noIndexEnergy / energy
		fmt.Printf("%-11s %8d %6d %10.1f %10.1f %11.1f%% %11.1fx\n",
			kind, st.IndexPackets, st.M, lat, tune, 100*duty, battery)
	}
	fmt.Println("\nlatency and tuning in packet slots; battery x = lifetime gain over un-indexed listening")
}
