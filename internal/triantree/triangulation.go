// Package triantree implements Kirkpatrick's planar point-location hierarchy
// (SIAM J. Comput. 1983) — the paper's object-decomposition baseline, which
// it calls the trian-tree. The subdivision's regions are triangulated; then
// independent sets of low-degree vertices are removed and their stars
// re-triangulated, layer by layer, until few triangles remain. Each coarse
// triangle points to the finer triangles it overlaps, giving an O(log n)
// search DAG. For broadcast, nodes are paged greedily in breadth-first
// order (a DAG node can have several parents, so the parent-affinity paging
// of Algorithm 3 does not apply).
package triantree

import (
	"fmt"

	"airindex/internal/geom"
)

// maxRemovalDegree is Kirkpatrick's degree bound: only vertices with fewer
// than this many neighbors are candidates for removal, which bounds the
// fan-out of DAG nodes and guarantees a constant fraction of vertices is
// removed per round.
const maxRemovalDegree = 12

// DefaultTMin is the triangle-count threshold at which coarsening stops
// (the paper's running example uses five).
const DefaultTMin = 5

// liveTri is a triangle of the current (coarsest-so-far) triangulation.
type liveTri struct {
	v    [3]int // vertex ids, counter-clockwise
	node *Node
}

// triangulation maintains the evolving triangulation during coarsening.
type triangulation struct {
	verts    []geom.Point
	live     map[*liveTri]bool
	incident map[int]map[*liveTri]bool // vertex id -> live triangles touching it
	corner   map[int]bool              // service-area corners, never removable
}

func newTriangulation(verts []geom.Point) *triangulation {
	return &triangulation{
		verts:    verts,
		live:     make(map[*liveTri]bool),
		incident: make(map[int]map[*liveTri]bool),
		corner:   make(map[int]bool),
	}
}

func (tg *triangulation) add(t *liveTri) {
	tg.live[t] = true
	for _, v := range t.v {
		m := tg.incident[v]
		if m == nil {
			m = make(map[*liveTri]bool)
			tg.incident[v] = m
		}
		m[t] = true
	}
}

func (tg *triangulation) remove(t *liveTri) {
	delete(tg.live, t)
	for _, v := range t.v {
		delete(tg.incident[v], t)
	}
}

// neighbors returns the distinct vertices adjacent to v in the current
// triangulation.
func (tg *triangulation) neighbors(v int) map[int]bool {
	out := make(map[int]bool)
	for t := range tg.incident[v] {
		for _, u := range t.v {
			if u != v {
				out[u] = true
			}
		}
	}
	return out
}

// linkChain returns the link of v ordered counter-clockwise around v. For
// an interior vertex the chain is a closed ring (first != last in the
// returned slice); for a boundary vertex it is the open fan from one border
// neighbor to the other. The bool result reports whether the link closed.
func (tg *triangulation) linkChain(v int) ([]int, bool, error) {
	succ := make(map[int]int)
	for t := range tg.incident[v] {
		// Rotate so v comes first; (v, a, b) CCW means a -> b around v.
		var a, b int
		switch {
		case t.v[0] == v:
			a, b = t.v[1], t.v[2]
		case t.v[1] == v:
			a, b = t.v[2], t.v[0]
		default:
			a, b = t.v[0], t.v[1]
		}
		if _, dup := succ[a]; dup {
			return nil, false, fmt.Errorf("triantree: non-manifold star at vertex %d", v)
		}
		succ[a] = b
	}
	if len(succ) == 0 {
		return nil, false, fmt.Errorf("triantree: vertex %d has no incident triangles", v)
	}
	// Find a start with no predecessor (boundary vertex); fall back to any
	// vertex (interior ring).
	hasPred := make(map[int]bool, len(succ))
	for _, b := range succ {
		hasPred[b] = true
	}
	// Deterministic start: the terminal vertex of an open chain, or the
	// smallest vertex id of a closed ring.
	start := -1
	for a := range succ {
		if !hasPred[a] && (start == -1 || a < start) {
			start = a
		}
	}
	closed := start == -1
	if closed {
		for a := range succ {
			if start == -1 || a < start {
				start = a
			}
		}
	}
	chain := []int{start}
	cur := start
	for {
		nxt, ok := succ[cur]
		if !ok {
			break // open chain ended
		}
		if nxt == start {
			break // ring closed
		}
		chain = append(chain, nxt)
		cur = nxt
		if len(chain) > len(succ)+1 {
			return nil, false, fmt.Errorf("triantree: link of vertex %d does not chain", v)
		}
	}
	wantLen := len(succ)
	if !closed {
		wantLen = len(succ) + 1
	}
	if len(chain) != wantLen {
		return nil, false, fmt.Errorf("triantree: link of vertex %d incomplete (%d of %d)", v, len(chain), wantLen)
	}
	return chain, closed, nil
}

// independentRemovableSet greedily selects non-adjacent, non-corner
// vertices of degree < maxRemovalDegree.
func (tg *triangulation) independentRemovableSet() []int {
	blocked := make(map[int]bool)
	var out []int
	for v := 0; v < len(tg.verts); v++ { // deterministic scan order
		if blocked[v] || tg.corner[v] || len(tg.incident[v]) == 0 {
			continue
		}
		nbs := tg.neighbors(v)
		if len(nbs) >= maxRemovalDegree {
			continue
		}
		out = append(out, v)
		blocked[v] = true
		for u := range nbs {
			blocked[u] = true
		}
	}
	return out
}
