package triantree

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Node is one triangle of the hierarchy. Base nodes (Level 0) carry the
// region whose triangulation produced them; the synthetic root carries no
// triangle and fans out to the coarsest layer.
type Node struct {
	ID       int
	Tri      geom.Triangle
	Children []*Node
	Region   int // region id for base triangles, -1 otherwise
	Level    int // 0 for base triangles; increases toward the root
	IsRoot   bool
}

// Tree is the built trian-tree (a DAG, despite the name the paper uses).
type Tree struct {
	Root *Node
	Sub  *region.Subdivision
	// Nodes in breadth-first order from the root; Nodes[i].ID == i.
	Nodes []*Node
}

// Option configures construction.
type Option func(*config)

type config struct {
	tmin int
}

// WithTMin overrides the coarsening threshold (default DefaultTMin).
func WithTMin(t int) Option { return func(c *config) { c.tmin = t } }

// Build constructs Kirkpatrick's hierarchy over the subdivision.
func Build(sub *region.Subdivision, opts ...Option) (*Tree, error) {
	cfg := config{tmin: DefaultTMin}
	for _, o := range opts {
		o(&cfg)
	}
	tg := newTriangulation(sub.Verts)
	for _, c := range sub.Area.Corners() {
		// Corners are canonical subdivision vertices (each belongs to some
		// region ring); mark them unremovable.
		for i, v := range sub.Verts {
			if v.Eq(c) {
				tg.corner[i] = true
			}
		}
	}

	vertID := make(map[geom.Point]int, len(sub.Verts))
	for i, p := range sub.Verts {
		vertID[p] = i
	}

	// Level 0: triangulate every region.
	nextLevel := 0
	for rid := range sub.Regions {
		tris := geom.Triangulate(sub.Regions[rid].Poly)
		if len(tris) == 0 {
			return nil, fmt.Errorf("triantree: region %d failed to triangulate", rid)
		}
		for _, tr := range tris {
			ids, err := triVertexIDs(tr, vertID)
			if err != nil {
				return nil, fmt.Errorf("triantree: region %d: %w", rid, err)
			}
			lt := &liveTri{v: ids, node: &Node{Tri: tr, Region: rid, Level: 0}}
			tg.add(lt)
		}
	}

	// Coarsening rounds: remove an independent set of low-degree vertices
	// and re-triangulate their stars.
	for len(tg.live) > cfg.tmin {
		removable := tg.independentRemovableSet()
		if len(removable) == 0 {
			break
		}
		nextLevel++
		progress := false
		for _, v := range removable {
			if err := tg.removeVertex(v, nextLevel); err != nil {
				return nil, err
			}
			progress = true
			if len(tg.live) <= cfg.tmin {
				break
			}
		}
		if !progress {
			break
		}
	}

	// Synthetic root over the remaining coarse triangles.
	final := make([]*Node, 0, len(tg.live))
	for lt := range tg.live {
		final = append(final, lt.node)
	}
	sort.Slice(final, func(i, j int) bool {
		ci, cj := final[i].Tri.Centroid(), final[j].Tri.Centroid()
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	root := &Node{Region: -1, Level: nextLevel + 1, IsRoot: true, Children: final}
	t := &Tree{Root: root, Sub: sub}
	t.assignIDs()
	return t, nil
}

// removeVertex deletes v, re-triangulates the hole left by its star, and
// links each new triangle to the old star triangles it overlaps.
func (tg *triangulation) removeVertex(v, level int) error {
	chain, closed, err := tg.linkChain(v)
	if err != nil {
		return err
	}
	old := make([]*liveTri, 0, len(tg.incident[v]))
	for t := range tg.incident[v] {
		old = append(old, t)
	}
	// Deterministic order (map iteration above is not): by vertex ids.
	sort.Slice(old, func(i, j int) bool {
		a, b := old[i].v, old[j].v
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})

	hole := make(geom.Polygon, len(chain))
	for i, u := range chain {
		hole[i] = tg.verts[u]
	}
	_ = closed // the hole ring is the chain either way; for boundary vertices the closing edge runs along the straight border through v
	holeIDs := make(map[geom.Point]int, len(chain))
	for _, u := range chain {
		holeIDs[tg.verts[u]] = u
	}
	newTris := geom.Triangulate(hole)
	if len(newTris) == 0 {
		return fmt.Errorf("triantree: star of vertex %d failed to re-triangulate", v)
	}
	for _, t := range old {
		tg.remove(t)
	}
	for _, tr := range newTris {
		ids, err := triVertexIDs(tr, holeIDs)
		if err != nil {
			return fmt.Errorf("triantree: re-triangulation introduced a vertex: %w", err)
		}
		node := &Node{Tri: tr, Region: -1, Level: level}
		for _, o := range old {
			if tr.OverlapsInterior(o.node.Tri) {
				node.Children = append(node.Children, o.node)
			}
		}
		if len(node.Children) == 0 {
			return fmt.Errorf("triantree: new triangle %v overlaps no old triangle", tr)
		}
		tg.add(&liveTri{v: ids, node: node})
	}
	return nil
}

func triVertexIDs(tr geom.Triangle, ids map[geom.Point]int) ([3]int, error) {
	var out [3]int
	for i, p := range tr.Vertices() {
		id, ok := ids[p]
		if !ok {
			return out, fmt.Errorf("unknown vertex %v", p)
		}
		out[i] = id
	}
	return out, nil
}

// assignIDs numbers nodes breadth-first from the root (the broadcast order),
// visiting shared DAG nodes once.
func (t *Tree) assignIDs() {
	t.Nodes = t.Nodes[:0]
	seen := map[*Node]bool{t.Root: true}
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = len(t.Nodes)
		t.Nodes = append(t.Nodes, n)
		for _, c := range n.Children {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
}

// Locate returns the region containing p, following the hierarchy from the
// coarsest layer down. At each node the children are scanned sequentially
// for one whose triangle contains p; numerically ambiguous cases fall back
// to the child with the greatest containment margin.
func (t *Tree) Locate(p geom.Point) int {
	n := t.Root
	for n.Region < 0 {
		next := bestChild(n, p)
		if next == nil {
			return -1
		}
		n = next
	}
	return n.Region
}

// bestChild returns the first child containing p, or, when rounding places
// p marginally outside every child, the child whose triangle p is least
// outside of.
func bestChild(n *Node, p geom.Point) *Node {
	for _, c := range n.Children {
		if c.Tri.Contains(p) {
			return c
		}
	}
	// Slack is only consulted when no child contains p exactly, so the
	// normalized-orientation pass stays off the common descent path.
	var fallback *Node
	worstSlack := math.Inf(-1)
	for _, c := range n.Children {
		if s := containmentSlack(c.Tri, p); s > worstSlack {
			worstSlack, fallback = s, c
		}
	}
	if worstSlack > -1e-6 {
		return fallback
	}
	return nil
}

// containmentSlack is the minimum signed orientation of p against the
// triangle's edges (normalized); non-negative inside.
func containmentSlack(tr geom.Triangle, p geom.Point) float64 {
	v := tr.Vertices()
	slack := math.Inf(1)
	for i := 0; i < 3; i++ {
		a, b := v[i], v[(i+1)%3]
		d := geom.Orient(a, b, p) / (a.Dist(b) + geom.Eps)
		if d < slack {
			slack = d
		}
	}
	return slack
}
