package triantree

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

func TestSmokeKirkpatrick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	sites := make([]geom.Point, 80)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		t.Fatalf("voronoi: %v", err)
	}
	tree, err := Build(sub)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	t.Logf("nodes=%d rootChildren=%d", len(tree.Nodes), len(tree.Root.Children))
	paged, err := tree.Page(wire.DecompositionParams(256))
	if err != nil {
		t.Fatalf("page: %v", err)
	}
	bad := 0
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := tree.Locate(p)
		want := sub.Locate(p)
		if got != want && (got < 0 || !sub.Regions[got].Poly.Contains(p)) {
			bad++
			if bad < 5 {
				t.Errorf("query %v: got %d want %d", p, got, want)
			}
		}
		g2, trace := paged.Locate(p)
		if g2 != got {
			t.Fatalf("paged mismatch at %v: %d vs %d", p, g2, got)
		}
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
	}
	if bad > 0 {
		t.Fatalf("%d bad of 5000", bad)
	}
}
