package triantree

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

func TestRunningExample(t *testing.T) {
	sub := testutil.RunningExample(t)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		got := tree.Locate(p)
		if got < 0 || !sub.Regions[got].Poly.Contains(p) {
			t.Fatalf("query %v: region %d", p, got)
		}
	}
}

func TestCorrectnessAcrossSizes(t *testing.T) {
	for _, n := range []int{5, 25, 120, 400} {
		sub, _ := testutil.RandomVoronoi(t, n, int64(n)+7)
		tree, err := Build(sub)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rng := rand.New(rand.NewSource(62))
		for i := 0; i < 2000; i++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			got := tree.Locate(p)
			if got < 0 || !sub.Regions[got].Poly.Contains(p) {
				t.Fatalf("n=%d query %v: region %d (brute force %d)", n, p, got, sub.Locate(p))
			}
		}
	}
}

func TestDAGStructure(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 150, 63)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsRoot || tree.Root.Region >= 0 {
		t.Fatal("root malformed")
	}
	if len(tree.Root.Children) > DefaultTMin {
		t.Errorf("root has %d children, threshold %d", len(tree.Root.Children), DefaultTMin)
	}
	baseArea, covered := 0.0, 0.0
	for i, n := range tree.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has id %d", i, n.ID)
		}
		if n.Region >= 0 {
			if len(n.Children) != 0 {
				t.Fatal("base triangle with children")
			}
			baseArea += n.Tri.Area()
			continue
		}
		if n.IsRoot {
			continue
		}
		if len(n.Children) == 0 {
			t.Fatalf("internal node %d without children", n.ID)
		}
		// Kirkpatrick's degree bound caps the fan-out.
		if len(n.Children) >= maxRemovalDegree {
			t.Errorf("node %d fan-out %d >= %d", n.ID, len(n.Children), maxRemovalDegree)
		}
		// Children must be coarser-to-finer: strictly lower level.
		for _, c := range n.Children {
			if c.Level >= n.Level {
				t.Fatalf("child level %d not below parent level %d", c.Level, n.Level)
			}
			if !n.Tri.IntersectsTriangle(c.Tri) {
				t.Fatalf("node %d does not intersect its child", n.ID)
			}
		}
	}
	covered = sub.Area.Area()
	if rel := (baseArea - covered) / covered; rel > 1e-6 || rel < -1e-6 {
		t.Errorf("base triangles cover %v of %v", baseArea, covered)
	}
}

func TestPagedLocateMatchesBinary(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 90, 64)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{64, 256, 2048} {
		paged, err := tree.Page(wire.DecompositionParams(capacity))
		if err != nil {
			t.Fatalf("page %d: %v", capacity, err)
		}
		rng := rand.New(rand.NewSource(65))
		for i := 0; i < 1500; i++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			got, trace := paged.Locate(p)
			if want := tree.Locate(p); got != want {
				t.Fatalf("capacity %d: %d != %d", capacity, got, want)
			}
			if len(trace) == 0 {
				t.Fatal("empty trace")
			}
		}
	}
}

func TestTMinOption(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 60, 66)
	big, err := Build(sub, WithTMin(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Root.Children) > 40 {
		t.Errorf("root children %d exceed tmin 40", len(big.Root.Children))
	}
	small, err := Build(sub, WithTMin(2))
	if err != nil {
		t.Fatal(err)
	}
	// A smaller threshold must not stop coarsening earlier (more rounds).
	if len(small.Root.Children) > len(big.Root.Children) {
		t.Errorf("tmin 2 left more root children (%d) than tmin 40 (%d)",
			len(small.Root.Children), len(big.Root.Children))
	}
}

func TestNodeSizeModel(t *testing.T) {
	params := wire.DecompositionParams(256)
	base := &Node{Region: 3}
	if got := NodeSize(base, params); got != 2+24+4 {
		t.Errorf("base node size = %d", got)
	}
	internal := &Node{Region: -1, Children: make([]*Node, 5)}
	if got := NodeSize(internal, params); got != 2+24+20 {
		t.Errorf("internal node size = %d", got)
	}
	root := &Node{Region: -1, IsRoot: true, Children: make([]*Node, 4)}
	if got := NodeSize(root, params); got != 2+16 {
		t.Errorf("root node size = %d", got)
	}
}

func TestHierarchyDepthLogarithmic(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 500, 67)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	maxLevel := 0
	for _, n := range tree.Nodes {
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	// Kirkpatrick guarantees O(log n) rounds; allow a generous constant.
	if maxLevel > 40 {
		t.Errorf("hierarchy has %d levels for 500 regions", maxLevel)
	}
	// And the DAG should be linear in the base triangulation size.
	if len(tree.Nodes) > 12*len(sub.Verts) {
		t.Errorf("DAG has %d nodes for %d vertices", len(tree.Nodes), len(sub.Verts))
	}
}

func TestDeterministicConstruction(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 120, 68)
	t1, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Nodes) != len(t2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(t1.Nodes), len(t2.Nodes))
	}
	for i := range t1.Nodes {
		a, b := t1.Nodes[i], t2.Nodes[i]
		if a.Tri != b.Tri || a.Region != b.Region || len(a.Children) != len(b.Children) {
			t.Fatalf("node %d differs between identical builds", i)
		}
	}
}
