package triantree

import (
	"fmt"
	"math"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

// Paged is a trian-tree allocated into packets, greedily in breadth-first
// order (Section 5 of the paper: the DAG's multi-parent nodes rule out
// parent-affinity paging).
type Paged struct {
	Tree   *Tree
	Params wire.Params
	Layout *wire.Layout
}

// NodeSize returns the wire size of a node under Table 2: bid, the triangle
// as three points (omitted for the synthetic root), and one pointer per
// child (base triangles carry a single data pointer).
func NodeSize(n *Node, p wire.Params) int {
	size := p.BidSize
	if !n.IsRoot {
		size += 3 * p.PointSize()
	}
	if n.Region >= 0 {
		return size + p.PointerSize
	}
	return size + len(n.Children)*p.PointerSize
}

// Page allocates the DAG's nodes into packets.
func (t *Tree) Page(params wire.Params) (*Paged, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	specs := make([]wire.NodeSpec, 0, len(t.Nodes))
	for _, n := range t.Nodes { // already in breadth-first order
		var children []int
		for _, c := range n.Children {
			children = append(children, c.ID)
		}
		specs = append(specs, wire.NodeSpec{
			ID: n.ID, Size: NodeSize(n, params), Children: children, Leaf: n.Region >= 0,
		})
	}
	layout, err := wire.Greedy(specs, params.PacketCapacity)
	if err != nil {
		return nil, err
	}
	if err := layout.Validate(specs); err != nil {
		return nil, fmt.Errorf("triantree: invalid layout: %w", err)
	}
	return &Paged{Tree: t, Params: params, Layout: layout}, nil
}

// IndexPackets returns the broadcast size of the index in packets.
func (pg *Paged) IndexPackets() int { return pg.Layout.PacketCount }

// Locate answers a point query over the paged trian-tree, returning the
// region id and the packet offsets downloaded in access order. Scanning a
// node's children requires downloading each candidate child (the triangle
// geometry lives in the child), so the trace covers every child inspected
// before the containing one is found.
func (pg *Paged) Locate(p geom.Point) (int, []int) {
	return pg.LocateInto(p, nil)
}

// LocateInto is Locate appending the downloaded packet offsets into trace
// (reset to length zero first), so Monte Carlo drivers can reuse one
// buffer across millions of queries without per-query allocation. The
// returned slice aliases trace's backing array when capacity suffices.
func (pg *Paged) LocateInto(p geom.Point, trace []int) (int, []int) {
	trace = trace[:0]
	read := func(n *Node) {
		for _, pk := range pg.Layout.PacketsOf(n.ID) {
			trace = wire.AppendTraceOnce(trace, int(pk))
		}
	}
	n := pg.Tree.Root
	read(n)
	for n.Region < 0 {
		var next *Node
		for _, c := range n.Children {
			read(c)
			if c.Tri.Contains(p) {
				next = c
				break
			}
		}
		if next == nil {
			// No child contains p exactly: fall back to the least-outside
			// child. The slack pass runs only on this rare boundary path, so
			// the common descent pays one containment test per child scanned.
			var fallback *Node
			worstSlack := math.Inf(-1)
			for _, c := range n.Children {
				if s := containmentSlack(c.Tri, p); s > worstSlack {
					worstSlack, fallback = s, c
				}
			}
			if worstSlack > -1e-6 {
				next = fallback
			} else {
				return -1, trace
			}
		}
		n = next
	}
	return n.Region, trace
}
