package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

// buildVoronoiTree builds a D-tree over the Voronoi subdivision of n random
// sites (shared helper for this package's tests).
func buildVoronoiTree(t testing.TB, n int, seed int64) (*Tree, []geom.Point, geom.Rect) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
	}
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		t.Fatalf("voronoi subdivision: %v", err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subdivision invalid: %v", err)
	}
	tree, err := Build(sub)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return tree, sites, area
}

func TestSmokeVoronoiDTree(t *testing.T) {
	tree, sites, area := buildVoronoiTree(t, 60, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		got := tree.Locate(p)
		want := voronoi.NearestSite(sites, p)
		if got != want {
			// Accept boundary ties: the located region must still contain p.
			if !tree.Sub.Regions[got].Poly.Contains(p) {
				t.Fatalf("query %v: located region %d does not contain it (nearest site %d)", p, got, want)
			}
		}
	}
}

func TestSmokePagedLocate(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 60, 3)
	for _, capacity := range []int{64, 256, 2048} {
		paged, err := tree.Page(wire.DTreeParams(capacity))
		if err != nil {
			t.Fatalf("page(%d): %v", capacity, err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 2000; i++ {
			p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
			got, trace := paged.Locate(p)
			want := tree.Locate(p)
			if got != want {
				t.Fatalf("capacity %d, query %v: paged=%d binary=%d", capacity, p, got, want)
			}
			if len(trace) == 0 {
				t.Fatalf("capacity %d: empty packet trace", capacity)
			}
		}
	}
}

// wireDTreeParams is a local alias so weighted tests avoid repeating the
// import.
func wireDTreeParams(capacity int) wire.Params { return wire.DTreeParams(capacity) }
