package core

import (
	"testing"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

// FuzzUnmarshal feeds arbitrary bytes to the tree decoder: it must reject
// or accept without panicking, and anything accepted must pass the
// invariant checks (Unmarshal runs them itself).
func FuzzUnmarshal(f *testing.F) {
	tree, _, _ := buildVoronoiTree(f, 12, 601)
	img, err := tree.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add([]byte("DTRE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Unmarshal(data, tree.Sub)
		if err != nil {
			return
		}
		// Accepted images must answer queries without panicking.
		loaded.Locate(geom.Pt(5000, 5000))
	})
}

// FuzzClientLocate decodes point queries from mutated packet bytes: the
// client must never panic or loop, whatever the corruption.
func FuzzClientLocate(f *testing.F) {
	tree, _, _ := buildVoronoiTree(f, 15, 602)
	paged, err := tree.Page(wire.DTreeParams(128))
	if err != nil {
		f.Fatal(err)
	}
	packets, err := paged.EncodePackets()
	if err != nil {
		f.Fatal(err)
	}
	flat := make([]byte, 0, len(packets)*128)
	for _, pkt := range packets {
		flat = append(flat, pkt...)
	}
	f.Add(flat, 5000.0, 5000.0)
	f.Add(flat[:128], 100.0, 100.0)
	f.Fuzz(func(t *testing.T, data []byte, x, y float64) {
		if len(data) == 0 {
			return
		}
		n := len(data) / 128
		if n == 0 {
			return
		}
		pks := make([][]byte, n)
		for i := range pks {
			pks[i] = data[i*128 : (i+1)*128]
		}
		_, _, _ = ClientLocate(pks, 128, geom.Pt(x, y)) // must not panic or hang
	})
}
