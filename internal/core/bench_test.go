package core

import (
	"fmt"
	"math/rand"
	"testing"

	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// benchSubdivision derives the valid scopes of a uniform dataset once per
// size; the Voronoi construction is setup cost, not part of the measured op.
var benchSubs = map[int]*region.Subdivision{}

func benchSubdivision(b *testing.B, n int) *region.Subdivision {
	b.Helper()
	if sub, ok := benchSubs[n]; ok {
		return sub
	}
	sub, err := dataset.Uniform(n, int64(n)).Subdivision()
	if err != nil {
		b.Fatal(err)
	}
	benchSubs[n] = sub
	return sub
}

// BenchmarkBuildDTree measures D-tree construction alone (partition search
// over a prebuilt subdivision) at the scaling tiers of the build pipeline.
func BenchmarkBuildDTree(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			sub := benchSubdivision(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

const benchCapacity = 256

// benchPaged builds and pages the D-tree once per size.
func benchPaged(b *testing.B, n int) *Paged {
	b.Helper()
	tree, err := Build(benchSubdivision(b, n))
	if err != nil {
		b.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(benchCapacity))
	if err != nil {
		b.Fatal(err)
	}
	return paged
}

// benchQueries fixes a deterministic query workload over the service area.
func benchQueries(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

// BenchmarkLocate measures point location with the early-termination trace
// on the pointer-tree paging — the representation the flat arena replaced
// on the serving path. Kept as the baseline the perf-smoke CI job compares
// BenchmarkFlatLocate against.
func BenchmarkLocate(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			paged := benchPaged(b, n)
			queries := benchQueries(1024, int64(n))
			var trace []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, trace = paged.LocateInto(queries[i&1023], trace[:0])
			}
		})
	}
}

// BenchmarkFlatLocate is BenchmarkLocate over the flat arena: same tree,
// same queries, same early-termination semantics, contiguous 64-byte node
// records instead of pointer chasing. Must run 0 allocs/op.
func BenchmarkFlatLocate(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			fp := benchPaged(b, n).Flatten()
			queries := benchQueries(1024, int64(n))
			var trace []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, trace = fp.LocateInto(queries[i&1023], trace[:0])
			}
		})
	}
}

// BenchmarkSnapshotSave measures serializing the arena to its slab.
func BenchmarkSnapshotSave(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			fp := benchPaged(b, n).Flatten()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(fp.Snapshot()) == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}

// BenchmarkSnapshotLoad measures restoring a serving-ready index from the
// slab — the restart path that replaces BenchmarkSnapshotRebuild.
func BenchmarkSnapshotLoad(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			slab := benchPaged(b, n).Flatten().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := LoadSnapshot(slab); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRebuild is the cost a restart pays without a snapshot:
// full D-tree construction, paging and flattening from the subdivision.
func BenchmarkSnapshotRebuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			sub := benchSubdivision(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree, err := Build(sub)
				if err != nil {
					b.Fatal(err)
				}
				paged, err := tree.Page(wire.DTreeParams(benchCapacity))
				if err != nil {
					b.Fatal(err)
				}
				if paged.Flatten() == nil {
					b.Fatal("nil arena")
				}
			}
		})
	}
}
