package core

import (
	"fmt"
	"testing"

	"airindex/internal/dataset"
	"airindex/internal/region"
)

// benchSubdivision derives the valid scopes of a uniform dataset once per
// size; the Voronoi construction is setup cost, not part of the measured op.
var benchSubs = map[int]*region.Subdivision{}

func benchSubdivision(b *testing.B, n int) *region.Subdivision {
	b.Helper()
	if sub, ok := benchSubs[n]; ok {
		return sub
	}
	sub, err := dataset.Uniform(n, int64(n)).Subdivision()
	if err != nil {
		b.Fatal(err)
	}
	benchSubs[n] = sub
	return sub
}

// BenchmarkBuildDTree measures D-tree construction alone (partition search
// over a prebuilt subdivision) at the scaling tiers of the build pipeline.
func BenchmarkBuildDTree(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			sub := benchSubdivision(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
