package core

import (
	"bytes"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// FuzzAdjacencyDecode throws arbitrary byte slabs at the appendix decoder,
// reassembled into wire packets exactly as a client would hand them over.
// Decoding may fail, but it must never panic, and any table it accepts must
// pass the structural validator and answer the walk primitives with ids in
// range — a hostile appendix on the air must not crash or corrupt a client.
func FuzzAdjacencyDecode(f *testing.F) {
	const capacity = 128
	for _, n := range []int{1, 2, 33} {
		sub, sites := testutil.RandomVoronoi(f, n, int64(9900+n))
		adj, err := BuildAdjacency(sub, sub.Area, sites)
		if err != nil {
			f.Fatal(err)
		}
		pkts, err := adj.EncodePackets(capacity)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bytes.Join(pkts, nil))
	}
	f.Add([]byte(adjacencyMagic))
	f.Add(make([]byte, adjHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		var pkts [][]byte
		for off := 0; off < len(data); off += capacity {
			end := off + capacity
			if end > len(data) {
				end = len(data)
			}
			pkts = append(pkts, data[off:end])
		}
		a, err := DecodeAdjacency(pkts)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("decoder accepted a table the validator rejects: %v", err)
		}
		n := a.N()
		if n == 0 {
			t.Fatal("decoder accepted an empty table")
		}
		center := geom.Pt((a.Area.MinX+a.Area.MaxX)/2, (a.Area.MinY+a.Area.MaxY)/2)
		for _, seed := range []int{0, n - 1} {
			a.Contains(seed, center)
			for _, id := range a.KNN(seed, center, 3) {
				if id < 0 || int(id) >= n {
					t.Fatalf("KNN returned region %d of %d", id, n)
				}
			}
			for _, id := range a.Window(seed, a.Area) {
				if id < 0 || int(id) >= n {
					t.Fatalf("Window returned region %d of %d", id, n)
				}
			}
		}
	})
}
