package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// This file implements the flat, cache-conscious arena representation of a
// built D-tree. The pointer tree of dtree.go remains the construction
// intermediate (Algorithm 1 needs mutable nodes) and the correctness oracle;
// once built, Flatten packs every node into one contiguous slab of
// fixed-size 64-byte records in breadth-first order, with int32 indices in
// place of pointers and all partition points pooled into a single point
// arena. A root-to-leaf descent then touches a handful of cache lines laid
// out in broadcast order instead of chasing heap pointers, and the whole
// index serializes into a single versioned snapshot (snapshot.go) that a
// restarting server loads without re-running construction.

// Flat node flags.
const (
	flatPruned    uint8 = 1 << 0
	flatTruncated uint8 = 1 << 1
)

// FlatNode is one D-tree node as a fixed 64-byte arena record — exactly one
// cache line on the machines this targets. Child references are indices into
// the node slab; a negative reference ^r encodes data bucket r. The
// partition polylines live in the tree's shared pools: polys[PolyFirst:
// PolyEnd] are this node's polyline spans into the point arena.
type FlatNode struct {
	CutLo, CutHi       float64 // interlocking band limits, canonical frame
	Left, Right        int32   // child index, or ^bucket when negative
	PolyFirst, PolyEnd int32   // span into FlatTree.polys
	NumRegions         int32
	Dim                Dimension
	Flags              uint8
	_                  [26]byte // pad to 64 bytes
}

// polySpan locates one polyline inside the shared point arena.
type polySpan struct {
	Off, N int32
}

// FlatTree is the arena form of a built D-tree. Points are stored
// pre-canonicalized (canon is a rigid rotation by sign flip and swap, exact
// in float64 both ways), so the parity test never rotates partition points
// at query time and uncanon recovers the original coordinates bit-for-bit
// for wire encoding.
type FlatTree struct {
	// Sub is the underlying subdivision when the tree was flattened from a
	// build in this process; nil after a bare snapshot load. Point location
	// never needs it; window queries do.
	Sub *region.Subdivision

	// N is the number of data regions below the root.
	N int

	nodes []FlatNode
	polys []polySpan
	pts   []geom.Point // canonical frame

	// adj is the optional region-adjacency table (SetAdjacency) that turns
	// the broadcast into a continuous-query medium: it is appended to the
	// snapshot and prefixed to the index packets when present.
	adj *Adjacency
}

// flatRef converts a pointer-tree child reference into an arena reference.
func flatRef(c ChildRef) int32 {
	if c.IsData() {
		return ^int32(c.Data)
	}
	return int32(c.Node.ID)
}

// Flatten packs the built tree into its arena form. Nodes land in
// breadth-first order (Nodes[i].ID == i already), so arena index == node id.
func (t *Tree) Flatten() *FlatTree {
	ft := &FlatTree{Sub: t.Sub, N: t.Sub.N()}
	if t.Root == nil {
		return ft
	}
	ft.nodes = make([]FlatNode, len(t.Nodes))
	var npts, npolys int
	for _, n := range t.Nodes {
		npolys += len(n.Polylines)
		npts += n.PartitionPoints()
	}
	ft.polys = make([]polySpan, 0, npolys)
	ft.pts = make([]geom.Point, 0, npts)
	for i, n := range t.Nodes {
		fn := &ft.nodes[i]
		fn.CutLo, fn.CutHi = n.CutLo, n.CutHi
		fn.Dim = n.Dim
		fn.NumRegions = int32(n.NumRegions)
		if n.Pruned {
			fn.Flags |= flatPruned
		}
		if n.Truncated {
			fn.Flags |= flatTruncated
		}
		fn.Left = flatRef(n.Left)
		fn.Right = flatRef(n.Right)
		fn.PolyFirst = int32(len(ft.polys))
		for _, pl := range n.Polylines {
			off := int32(len(ft.pts))
			for _, p := range pl {
				ft.pts = append(ft.pts, canon(n.Dim, p))
			}
			ft.polys = append(ft.polys, polySpan{Off: off, N: int32(len(pl))})
		}
		fn.PolyEnd = int32(len(ft.polys))
	}
	return ft
}

// FlattenPatched packs the tree into its arena form, bulk-copying the point
// ranges of nodes an incremental rebuild spliced from the previous
// generation's arena instead of re-canonicalizing them point by point. The
// result is identical to Flatten (same slab, spans, and point values); prev
// must be the arena of the generation the tree was rebuilt from (node point
// ranges are contiguous in arenas produced by Flatten or FlattenPatched —
// the bulk copy falls back to the per-point path if not). A nil prev is a
// plain Flatten.
func (t *Tree) FlattenPatched(prev *FlatTree) *FlatTree {
	if prev == nil {
		return t.Flatten()
	}
	ft := &FlatTree{Sub: t.Sub, N: t.Sub.N()}
	if t.Root == nil {
		return ft
	}
	ft.nodes = make([]FlatNode, len(t.Nodes))
	var npts, npolys int
	for _, n := range t.Nodes {
		npolys += len(n.Polylines)
		npts += n.PartitionPoints()
	}
	ft.polys = make([]polySpan, 0, npolys)
	ft.pts = make([]geom.Point, 0, npts)
	for i, n := range t.Nodes {
		fn := &ft.nodes[i]
		fn.CutLo, fn.CutHi = n.CutLo, n.CutHi
		fn.Dim = n.Dim
		fn.NumRegions = int32(n.NumRegions)
		if n.Pruned {
			fn.Flags |= flatPruned
		}
		if n.Truncated {
			fn.Flags |= flatTruncated
		}
		fn.Left = flatRef(n.Left)
		fn.Right = flatRef(n.Right)
		fn.PolyFirst = int32(len(ft.polys))
		if !t.copyFlatSpans(ft, prev, n) {
			for _, pl := range n.Polylines {
				off := int32(len(ft.pts))
				for _, p := range pl {
					ft.pts = append(ft.pts, canon(n.Dim, p))
				}
				ft.polys = append(ft.polys, polySpan{Off: off, N: int32(len(pl))})
			}
		}
		fn.PolyEnd = int32(len(ft.polys))
	}
	return ft
}

// copyFlatSpans bulk-copies a spliced node's canonical points and spans from
// the previous arena; false means the node is fresh (or the previous range
// is not contiguous) and the caller must take the per-point path.
func (t *Tree) copyFlatSpans(ft, prev *FlatTree, n *Node) bool {
	if n.src <= 0 || int(n.src) > len(prev.nodes) {
		return false
	}
	pn := &prev.nodes[n.src-1]
	if int(pn.PolyEnd-pn.PolyFirst) != len(n.Polylines) {
		return false
	}
	if pn.PolyEnd == pn.PolyFirst {
		return true
	}
	first := prev.polys[pn.PolyFirst]
	at := first.Off
	for pi := pn.PolyFirst; pi < pn.PolyEnd; pi++ {
		if prev.polys[pi].Off != at {
			return false
		}
		at += prev.polys[pi].N
	}
	base := int32(len(ft.pts))
	ft.pts = append(ft.pts, prev.pts[first.Off:at]...)
	for pi := pn.PolyFirst; pi < pn.PolyEnd; pi++ {
		sp := prev.polys[pi]
		ft.polys = append(ft.polys, polySpan{Off: base + (sp.Off - first.Off), N: sp.N})
	}
	return true
}

// NumNodes returns the number of internal nodes in the arena.
func (ft *FlatTree) NumNodes() int { return len(ft.nodes) }

// rayParityLeft is Node.rayParityLeft over the arena: points are already
// canonical, so only the query rotates.
func (ft *FlatTree) rayParityLeft(n *FlatNode, p geom.Point) bool {
	cp := canon(n.Dim, p)
	num := 0
	for pi := n.PolyFirst; pi < n.PolyEnd; pi++ {
		sp := ft.polys[pi]
		pts := ft.pts[sp.Off : sp.Off+sp.N]
		for i := 0; i+1 < len(pts); i++ {
			if (geom.Segment{A: pts[i], B: pts[i+1]}).CrossesRightwardRay(cp) {
				num++
			}
		}
	}
	return num%2 == 1
}

// Locate returns the id of the data region containing p (Algorithm 2 over
// the arena). Allocation-free; bit-identical to Tree.Locate.
func (ft *FlatTree) Locate(p geom.Point) int {
	if len(ft.nodes) == 0 {
		return 0 // single-region subdivision
	}
	ref := int32(0)
	for ref >= 0 {
		n := &ft.nodes[ref]
		cx := canonX(n.Dim, p)
		switch {
		case cx <= n.CutLo:
			ref = n.Left
		case cx >= n.CutHi:
			ref = n.Right
		default:
			if ft.rayParityLeft(n, p) {
				ref = n.Left
			} else {
				ref = n.Right
			}
		}
	}
	return int(^ref)
}

// NearestSite mirrors Tree.NearestSite.
func (ft *FlatTree) NearestSite(p geom.Point) int { return ft.Locate(p) }

// SearchRect returns the ids of all data regions intersecting the window,
// in ascending order — Tree.SearchRect over the arena. It needs the exact
// region polygons, so it requires the subdivision (present unless the tree
// came from a bare snapshot load).
func (ft *FlatTree) SearchRect(w geom.Rect) []int {
	if ft.Sub == nil {
		panic("core: FlatTree.SearchRect requires the subdivision (tree loaded from a snapshot without one)")
	}
	if w.IsEmpty() {
		return nil
	}
	if len(ft.nodes) == 0 {
		if ft.N == 1 && w.Intersects(ft.Sub.Area) {
			return []int{0}
		}
		return nil
	}
	var out []int
	// Explicit stack; pushing right before left preserves the recursive
	// left-then-right visit order (output is sorted anyway).
	stack := make([]int32, 1, 64)
	stack[0] = 0
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if ref < 0 {
			d := int(^ref)
			if regionIntersectsRect(ft.Sub.Regions[d].Poly, w) {
				out = append(out, d)
			}
			continue
		}
		n := &ft.nodes[ref]
		lo, hi := canonInterval(n.Dim, w)
		if hi < n.CutLo {
			stack = append(stack, n.Left)
			continue
		}
		if lo > n.CutHi {
			stack = append(stack, n.Right)
			continue
		}
		stack = append(stack, n.Right, n.Left)
	}
	insertionSortInts(out)
	return out
}

// insertionSortInts sorts in place without the sort package's interface
// allocation; window results are small and nearly ordered already.
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// FlatPaged is the arena form of a paged D-tree: the flat tree plus pooled
// packet tables replacing the layout's per-node slices. It answers the same
// queries as Paged with identical traces, re-encodes the identical on-air
// packets, and round-trips through the binary snapshot of snapshot.go.
type FlatPaged struct {
	Flat   *FlatTree
	Params wire.Params

	packetCount int
	// Packets of node i are pkts[pktIdx[i]:pktIdx[i+1]], ascending.
	pktIdx []int32
	pkts   []int32
	// Nodes placed in packet k, in byte order: packetNodes[pnIdx[k]:pnIdx[k+1]].
	pnIdx       []int32
	packetNodes []int32
	occupied    []int32
}

// Flatten converts a paged tree into its arena form.
func (pg *Paged) Flatten() *FlatPaged {
	return pg.flattenWith(pg.Tree.Flatten())
}

// FlattenPatched converts a paged tree into its arena form, reusing the
// previous generation's node arena for spliced subtrees (Tree.FlattenPatched).
// The packet tables are always rebuilt from this generation's layout.
func (pg *Paged) FlattenPatched(prev *FlatPaged) *FlatPaged {
	var pf *FlatTree
	if prev != nil {
		pf = prev.Flat
	}
	return pg.flattenWith(pg.Tree.FlattenPatched(pf))
}

// flattenWith builds the pooled packet tables of a FlatPaged around an
// already-flattened node arena.
func (pg *Paged) flattenWith(ft *FlatTree) *FlatPaged {
	fp := &FlatPaged{Flat: ft, Params: pg.Params, packetCount: pg.Layout.PacketCount}
	n := len(ft.nodes)
	fp.pktIdx = make([]int32, n+1)
	for i := 0; i < n; i++ {
		fp.pktIdx[i+1] = fp.pktIdx[i] + int32(len(pg.Layout.PacketsOf(i)))
	}
	fp.pkts = make([]int32, fp.pktIdx[n])
	for i := 0; i < n; i++ {
		copy(fp.pkts[fp.pktIdx[i]:fp.pktIdx[i+1]], pg.Layout.PacketsOf(i))
	}
	fp.pnIdx = make([]int32, fp.packetCount+1)
	for k, ids := range pg.Layout.PacketNodes {
		fp.pnIdx[k+1] = fp.pnIdx[k] + int32(len(ids))
	}
	fp.packetNodes = make([]int32, fp.pnIdx[fp.packetCount])
	for k, ids := range pg.Layout.PacketNodes {
		at := fp.pnIdx[k]
		for i, id := range ids {
			fp.packetNodes[at+int32(i)] = int32(id)
		}
	}
	fp.occupied = make([]int32, fp.packetCount)
	for k, o := range pg.Layout.Occupied {
		fp.occupied[k] = int32(o)
	}
	return fp
}

// IndexPackets returns the size of the paged index in packets.
func (fp *FlatPaged) IndexPackets() int { return fp.packetCount }

// SizeBytes returns the occupied (pre-padding) index bytes across packets.
func (fp *FlatPaged) SizeBytes() int {
	var s int
	for _, o := range fp.occupied {
		s += int(o)
	}
	return s
}

// PacketsOf returns the packet offsets of node i, ascending.
func (fp *FlatPaged) PacketsOf(i int) []int32 {
	return fp.pkts[fp.pktIdx[i]:fp.pktIdx[i+1]]
}

// Locate answers a point query; see Paged.Locate for the trace semantics.
func (fp *FlatPaged) Locate(p geom.Point) (int, []int) {
	return fp.LocateInto(p, nil)
}

// LocateInto is the allocation-free fast path: the descent runs over the
// node slab and the pooled packet table, appending downloaded packet
// offsets into the caller's trace buffer. Bit-identical to Paged.LocateInto.
func (fp *FlatPaged) LocateInto(p geom.Point, trace []int) (int, []int) {
	trace = trace[:0]
	ft := fp.Flat
	if len(ft.nodes) == 0 {
		return 0, trace
	}
	ref := int32(0)
	for ref >= 0 {
		n := &ft.nodes[ref]
		packets := fp.pkts[fp.pktIdx[ref]:fp.pktIdx[ref+1]]
		trace = wire.AppendTraceOnce(trace, int(packets[0]))
		cx := canonX(n.Dim, p)
		switch {
		case cx <= n.CutLo:
			ref = n.Left
		case cx >= n.CutHi:
			ref = n.Right
		default:
			// Inside the interlocking band: the whole partition is needed.
			for _, pk := range packets[1:] {
				trace = wire.AppendTraceOnce(trace, int(pk))
			}
			if ft.rayParityLeft(n, p) {
				ref = n.Left
			} else {
				ref = n.Right
			}
		}
	}
	return int(^ref), trace
}

// flatNodeSize mirrors NodeSize over the arena record.
func (ft *FlatTree) flatNodeSize(i int32, p wire.Params) int {
	n := &ft.nodes[i]
	base := p.BidSize + p.HeaderSize + 2*p.PointerSize
	for pi := n.PolyFirst; pi < n.PolyEnd; pi++ {
		base += 2 + int(ft.polys[pi].N)*p.PointSize()
	}
	explicitLMC := n.Flags&flatPruned != 0 && n.Flags&flatTruncated == 0
	if explicitLMC {
		base += p.CoordSize
	}
	if base > p.PacketCapacity {
		base += p.CoordSize // RMC
		if !explicitLMC {
			base += p.CoordSize // LMC
		}
	}
	return base
}

// EncodePackets serializes the arena into on-air packets, byte-identical to
// Paged.EncodePackets on the tree it was flattened from — which is what lets
// a server restored from a snapshot broadcast the same cycle bytes as one
// that built the index from scratch.
func (fp *FlatPaged) EncodePackets() ([][]byte, error) {
	capacity := fp.Params.PacketCapacity
	out := make([][]byte, fp.packetCount)
	for k := range out {
		out[k] = make([]byte, capacity)
	}
	ft := fp.Flat
	nn := len(ft.nodes)
	if nn == 0 {
		return out, nil
	}

	type pos struct{ packet, off int32 }
	offsets := make([]pos, nn)
	remaining := make([]int, nn)
	placed := make([]bool, nn)
	for i := range ft.nodes {
		remaining[i] = ft.flatNodeSize(int32(i), fp.Params)
	}
	for k := 0; k < fp.packetCount; k++ {
		cursor := 0
		for _, id := range fp.packetNodes[fp.pnIdx[k]:fp.pnIdx[k+1]] {
			if !placed[id] {
				placed[id] = true
				offsets[id] = pos{int32(k), int32(cursor)}
			}
			take := min(remaining[id], capacity-cursor)
			cursor += take
			remaining[id] -= take
		}
	}
	for id, r := range remaining {
		if r != 0 {
			return nil, fmt.Errorf("core: node %d has %d unplaced bytes", id, r)
		}
	}

	ref := func(c int32) (uint32, error) {
		if c < 0 {
			d := ^c
			return 1<<31 | uint32(d), nil
		}
		p := offsets[c]
		if p.packet >= 1<<15 || p.off >= 1<<16 {
			return 0, fmt.Errorf("core: pointer target (%d, %d) out of range", p.packet, p.off)
		}
		return uint32(p.packet)<<16 | uint32(p.off), nil
	}

	var buf []byte
	for i := range ft.nodes {
		n := &ft.nodes[i]
		size := ft.flatNodeSize(int32(i), fp.Params)
		nPoly := int(n.PolyEnd - n.PolyFirst)
		if nPoly >= 1<<12 {
			return nil, fmt.Errorf("core: node %d has %d polylines (max 4095)", i, nPoly)
		}
		multi := size > capacity
		explicitLMC := multi || n.Flags&flatPruned != 0 && n.Flags&flatTruncated == 0

		var hdr uint16
		if n.Dim == DimX {
			hdr |= hdrDimX
		}
		if multi {
			hdr |= hdrMulti
		}
		if explicitLMC {
			hdr |= hdrLMC
		}
		if n.Flags&flatTruncated != 0 {
			hdr |= hdrTruncated
		}
		hdr |= uint16(nPoly) << hdrCountShft

		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(i))
		buf = binary.LittleEndian.AppendUint16(buf, hdr)
		for _, c := range []int32{n.Left, n.Right} {
			v, err := ref(c)
			if err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint32(buf, v)
		}
		if multi {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(n.CutHi)))
		}
		if explicitLMC {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(n.CutLo)))
		}
		for pi := n.PolyFirst; pi < n.PolyEnd; pi++ {
			sp := ft.polys[pi]
			if sp.N >= 1<<16 {
				return nil, fmt.Errorf("core: polyline with %d points", sp.N)
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(sp.N))
			for _, cp := range ft.pts[sp.Off : sp.Off+sp.N] {
				p := uncanon(n.Dim, cp) // stored canonical; the wire carries originals
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(p.X)))
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(p.Y)))
			}
		}
		if len(buf) != size {
			return nil, fmt.Errorf("core: node %d encoded to %d bytes, size model says %d", i, len(buf), size)
		}
		p := offsets[i]
		pk, off := int(p.packet), int(p.off)
		rest := buf
		for len(rest) > 0 {
			if pk >= len(out) {
				// Unreachable for layouts produced by paging; a hand-damaged
				// snapshot could place a node's bytes non-contiguously.
				return nil, fmt.Errorf("core: node %d spills past the packet table", i)
			}
			nw := copy(out[pk][off:], rest)
			rest = rest[nw:]
			pk, off = pk+1, 0
		}
	}
	return out, nil
}
