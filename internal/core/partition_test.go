package core

import (
	"math"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

func TestCanonRoundTrip(t *testing.T) {
	pts := []geom.Point{geom.Pt(3, 4), geom.Pt(-1, 7), geom.Pt(0, 0)}
	for _, d := range []Dimension{DimY, DimX} {
		for _, p := range pts {
			if got := uncanon(d, canon(d, p)); got != p {
				t.Errorf("dim %v: round trip %v -> %v", d, p, got)
			}
			if got := canonX(d, p); got != canon(d, p).X {
				t.Errorf("dim %v: canonX(%v) = %v, want %v", d, p, got, canon(d, p).X)
			}
		}
	}
	// DimX maps "upper" to canonical left: larger y -> smaller canonical x.
	if canonX(DimX, geom.Pt(0, 10)) >= canonX(DimX, geom.Pt(0, 5)) {
		t.Error("upper point should be canonically left")
	}
}

func TestPartitionCutsAreSetDerived(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 60, 20)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(c ChildRef, ids []int)
	collect := func(c ChildRef) []int {
		var out []int
		var rec func(ChildRef)
		rec = func(c ChildRef) {
			if c.IsData() {
				out = append(out, c.Data)
				return
			}
			rec(c.Node.Left)
			rec(c.Node.Right)
		}
		rec(c)
		return out
	}
	walk = func(c ChildRef, ids []int) {
		if c.IsData() {
			return
		}
		n := c.Node
		left, right := collect(n.Left), collect(n.Right)
		// CutLo is the minimal canonical coordinate over the right set;
		// CutHi the maximal over the left set.
		lo := math.Inf(1)
		for _, id := range right {
			for _, p := range sub.Regions[id].Poly {
				lo = math.Min(lo, canonX(n.Dim, p))
			}
		}
		hi := math.Inf(-1)
		for _, id := range left {
			for _, p := range sub.Regions[id].Poly {
				hi = math.Max(hi, canonX(n.Dim, p))
			}
		}
		if math.Abs(lo-n.CutLo) > 1e-6 {
			t.Fatalf("node %d: CutLo %v, set-derived %v", n.ID, n.CutLo, lo)
		}
		if math.Abs(hi-n.CutHi) > 1e-6 {
			t.Fatalf("node %d: CutHi %v, set-derived %v", n.ID, n.CutHi, hi)
		}
		walk(n.Left, left)
		walk(n.Right, right)
	}
	walk(ChildRef{Node: tree.Root}, nil)
}

func TestPartitionSeparatesSubspaces(t *testing.T) {
	// For every node: all points of left-subtree regions must resolve left
	// by the node's own side() test, and symmetrically for the right.
	sub, _ := testutil.RandomVoronoi(t, 40, 21)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(c ChildRef)
	var centroidsUnder func(c ChildRef) []geom.Point
	centroidsUnder = func(c ChildRef) []geom.Point {
		if c.IsData() {
			return []geom.Point{sub.Regions[c.Data].Poly.Centroid()}
		}
		return append(centroidsUnder(c.Node.Left), centroidsUnder(c.Node.Right)...)
	}
	walk = func(c ChildRef) {
		if c.IsData() {
			return
		}
		n := c.Node
		for _, p := range centroidsUnder(n.Left) {
			if got := n.side(p); got != n.Left {
				t.Fatalf("node %d: left centroid %v routed right", n.ID, p)
			}
		}
		for _, p := range centroidsUnder(n.Right) {
			if got := n.side(p); got != n.Right {
				t.Fatalf("node %d: right centroid %v routed left", n.ID, p)
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ChildRef{Node: tree.Root})
}

func TestInterProbInUnitRange(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 120, 22)
	for _, n := range tree.Nodes {
		if n.InterProb < 0 || n.InterProb > 1+1e-9 {
			t.Fatalf("node %d: inter-prob %v", n.ID, n.InterProb)
		}
		if n.CutHi < n.CutLo && n.InterProb != 0 {
			t.Fatalf("node %d: empty band but inter-prob %v", n.ID, n.InterProb)
		}
	}
}

func TestPartitionPointsPositive(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 50, 23)
	for _, n := range tree.Nodes {
		if len(n.Polylines) == 0 {
			// Legal only when the subspaces' extents are disjoint.
			if n.CutHi > n.CutLo {
				t.Fatalf("node %d: empty partition with non-empty band", n.ID)
			}
			continue
		}
		if n.PartitionPoints() < 2 {
			t.Fatalf("node %d: %d partition points", n.ID, n.PartitionPoints())
		}
		for _, pl := range n.Polylines {
			if len(pl) < 2 {
				t.Fatalf("node %d: degenerate polyline", n.ID)
			}
		}
	}
}

func TestRunningExampleRootPartitionIsDivider(t *testing.T) {
	// The running example's best root partition should be the single
	// 4-point divider polyline (v2,v3,v4,v6) — an x-dimensional partition.
	sub := testutil.RunningExample(t)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root
	if root.PartitionPoints() != 4 {
		t.Fatalf("root partition has %d points, want the 4-point divider", root.PartitionPoints())
	}
	if len(root.Polylines) != 1 {
		t.Fatalf("root partition has %d polylines, want 1", len(root.Polylines))
	}
	if root.Dim != DimX {
		t.Errorf("root partition dimension %v, want x (upper/lower split)", root.Dim)
	}
}
