package core

import (
	"bytes"
	"fmt"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// verifyPatched is the verifyPatchedHook used by the churn-identity tests:
// every candidate the memoized path produces — patched extent or reused
// finished candidate — is cross-checked against the from-scratch evaluation
// of the same style over the same inputs.
func verifyPatched(r *rebuilder, memo *nodeMemo, sorted []int32, st style, sc *buildScratch, cand candidate, err error, changed, added, removedKeys []int32) {
	ref, rerr := r.b.evaluate(sorted, st, sc)
	if (err != nil) != (rerr != nil) {
		panic(fmt.Sprintf("style %+v n=%d: err %v vs ref %v", st, len(sorted), err, rerr))
	}
	if err != nil {
		return
	}
	if cand.points != ref.points || cand.cutLo != ref.cutLo || cand.cutHi != ref.cutHi ||
		cand.pruned != ref.pruned || cand.truncated != ref.truncated ||
		len(cand.polylines) != len(ref.polylines) || len(cand.entries) != len(ref.entries) {
		panic(fmt.Sprintf("style %+v n=%d: patched candidate differs from evaluation\n"+
			" got  points=%d cuts=(%v,%v) pruned=%v truncated=%v polylines=%d entries=%d\n"+
			" want points=%d cuts=(%v,%v) pruned=%v truncated=%v polylines=%d entries=%d\n"+
			" changed=%v added=%v removed=%v",
			st, len(sorted),
			cand.points, cand.cutLo, cand.cutHi, cand.pruned, cand.truncated, len(cand.polylines), len(cand.entries),
			ref.points, ref.cutLo, ref.cutHi, ref.pruned, ref.truncated, len(ref.polylines), len(ref.entries),
			changed, added, removedKeys))
	}
	for i := range cand.polylines {
		if len(cand.polylines[i]) != len(ref.polylines[i]) {
			panic(fmt.Sprintf("style %+v n=%d: polyline %d len %d != %d", st, len(sorted), i, len(cand.polylines[i]), len(ref.polylines[i])))
		}
		for j := range cand.polylines[i] {
			if cand.polylines[i][j] != ref.polylines[i][j] {
				panic(fmt.Sprintf("style %+v n=%d: polyline %d point %d %v != %v", st, len(sorted), i, j, cand.polylines[i][j], ref.polylines[i][j]))
			}
		}
	}
}

// diffNode reports the first structural difference between two trees; a
// diagnostic for identity failures.
func diffNode(t *testing.T, a, b *Node, depth int) bool {
	if (a == nil) != (b == nil) {
		t.Logf("depth %d: nil mismatch", depth)
		return true
	}
	if a == nil {
		return false
	}
	if a.Dim != b.Dim || a.CutLo != b.CutLo || a.CutHi != b.CutHi ||
		a.NumRegions != b.NumRegions || a.InterProb != b.InterProb ||
		a.Pruned != b.Pruned || a.Truncated != b.Truncated ||
		len(a.Polylines) != len(b.Polylines) {
		t.Logf("depth %d n=%d: got dim=%v lo=%v hi=%v ip=%v plines=%d pr=%v tr=%v | want dim=%v lo=%v hi=%v ip=%v plines=%d pr=%v tr=%v",
			depth, b.NumRegions,
			a.Dim, a.CutLo, a.CutHi, a.InterProb, len(a.Polylines), a.Pruned, a.Truncated,
			b.Dim, b.CutLo, b.CutHi, b.InterProb, len(b.Polylines), b.Pruned, b.Truncated)
		return true
	}
	if !a.Left.IsData() || !b.Left.IsData() {
		if a.Left.IsData() != b.Left.IsData() {
			t.Logf("depth %d n=%d: left data mismatch", depth, a.NumRegions)
			return true
		}
		if diffNode(t, a.Left.Node, b.Left.Node, depth+1) {
			return true
		}
	} else if a.Left.Data != b.Left.Data {
		t.Logf("depth %d: left data %d != %d", depth, a.Left.Data, b.Left.Data)
		return true
	}
	if !a.Right.IsData() || !b.Right.IsData() {
		if a.Right.IsData() != b.Right.IsData() {
			t.Logf("depth %d n=%d: right data mismatch", depth, a.NumRegions)
			return true
		}
		return diffNode(t, a.Right.Node, b.Right.Node, depth+1)
	} else if a.Right.Data != b.Right.Data {
		t.Logf("depth %d: right data %d != %d", depth, a.Right.Data, b.Right.Data)
		return true
	}
	return false
}

// stepMoves applies a batch of pure position updates — the steady-state
// churn shape, under which the site count and the style menu stay fixed.
func (d *churnDriver) stepMoves(batch int) (*region.Subdivision, []int) {
	d.t.Helper()
	d.maint.BeginBatch()
	for i := 0; i < batch; i++ {
		ids, _ := d.maint.LiveSites()
		id := ids[d.rng.Intn(len(ids))]
		if _, err := d.maint.Move(id, geom.Pt(d.rng.Float64()*1000, d.rng.Float64()*1000)); err != nil {
			d.t.Fatalf("move: %v", err)
		}
	}
	dirty, removed := d.maint.BatchDelta()
	ids, polys := d.maint.LiveCells()
	sub, canonDirty, err := d.patch.Patch(ids, polys, dirty, removed)
	if err != nil {
		d.t.Fatalf("patch: %v", err)
	}
	return sub, canonDirty
}

// TestMemoChurnIdentity drives mixed add/remove/move churn with every
// patched candidate cross-checked against its from-scratch evaluation, and
// every generation's marshal compared against a cold Build. Mixed batches
// change region-count parity, which reshuffles styles and flips winners, so
// this exercises the fallback and near-correspondence recovery paths.
func TestMemoChurnIdentity(t *testing.T) {
	verifyPatchedHook = verifyPatched
	defer func() { verifyPatchedHook = nil }()
	for _, seed := range []int64{1, 2, 3} {
		d, sub := newChurnDriver(t, 400, seed)
		inc := NewIncremental()
		if _, err := inc.Full(sub); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			next, canonDirty := d.step(4)
			got, _, err := inc.Rebuild(next, canonDirty)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			want, err := Build(next)
			if err != nil {
				t.Fatal(err)
			}
			gb, _ := got.Marshal()
			wb, _ := want.Marshal()
			if !bytes.Equal(gb, wb) {
				diffNode(t, got.Root, want.Root, 0)
				t.Fatalf("seed %d step %d: marshal differs", seed, step)
			}
		}
	}
}

// TestMemoChurnMoveOnlyIdentity pins the steady-state regime the gated
// benchmark tier measures: move-only batches over a subset large enough to
// exercise the finished-candidate reuse and the transposed-quarter
// re-anchoring under near-tied winner flips.
func TestMemoChurnMoveOnlyIdentity(t *testing.T) {
	d, sub := newChurnDriver(t, 2500, 7)
	inc := NewIncremental()
	if _, err := inc.Full(sub); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 12; step++ {
		next, canonDirty := d.stepMoves(8)
		got, _, err := inc.Rebuild(next, canonDirty)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := Build(next)
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := got.Marshal()
		wb, _ := want.Marshal()
		if !bytes.Equal(gb, wb) {
			diffNode(t, got.Root, want.Root, 0)
			t.Fatalf("step %d: marshal differs", step)
		}
	}
}
