package core

import (
	"math"
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// zipfWeights returns Zipf(theta) access weights over n regions, assigned
// in a random permutation so hot regions are spatially scattered.
func zipfWeights(n int, theta float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	w := make([]float64, n)
	for rank, r := range perm {
		w[r] = 1 / math.Pow(float64(rank+1), theta)
	}
	return w
}

func TestWeightedTreeAnswersCorrectly(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 120, 111)
	w := zipfWeights(120, 1.0, 112)
	tree, err := Build(sub, WithAccessWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(113))
	for i := 0; i < 4000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := tree.Locate(p)
		if got < 0 || !sub.Regions[got].Poly.Contains(p) {
			t.Fatalf("query %v: region %d (brute force %d)", p, got, sub.Locate(p))
		}
	}
}

func TestWeightedTreeReducesExpectedDepth(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 300, 114)
	w := zipfWeights(300, 1.2, 115)
	balanced, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Build(sub, WithAccessWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	bd := balanced.ExpectedDepth(w)
	wd := weighted.ExpectedDepth(w)
	if wd >= bd {
		t.Errorf("weighted tree expected depth %.3f not below balanced %.3f under Zipf(1.2)", wd, bd)
	}
	// Under a uniform distribution the balanced tree must win (or tie).
	if bu, wu := balanced.ExpectedDepth(nil), weighted.ExpectedDepth(nil); wu < bu-1e-9 {
		t.Errorf("weighted tree beat balanced under uniform access: %.3f < %.3f", wu, bu)
	}
}

func TestWeightedHotRegionNearRoot(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 64, 116)
	// One region carries 90% of the mass.
	w := make([]float64, 64)
	for i := range w {
		w[i] = 0.1 / 63
	}
	hot := 17
	w[hot] = 0.9
	tree, err := Build(sub, WithAccessWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	depth := regionDepth(tree, hot)
	if depth > 4 {
		t.Errorf("90%%-hot region at depth %d, want near the root", depth)
	}
	balanced, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	if bd := regionDepth(balanced, hot); depth >= bd {
		t.Errorf("weighted depth %d not below balanced depth %d", depth, bd)
	}
}

func regionDepth(t *Tree, r int) int {
	var find func(c ChildRef, d int) int
	find = func(c ChildRef, d int) int {
		if c.IsData() {
			if c.Data == r {
				return d
			}
			return -1
		}
		if got := find(c.Node.Left, d+1); got >= 0 {
			return got
		}
		return find(c.Node.Right, d+1)
	}
	return find(ChildRef{Node: t.Root}, 0)
}

func TestWeightedValidation(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 10, 117)
	if _, err := Build(sub, WithAccessWeights([]float64{1, 2})); err == nil {
		t.Error("wrong weight count should fail")
	}
	if _, err := Build(sub, WithAccessWeights(make([]float64, 10))); err != nil {
		t.Errorf("all-zero weights should degrade gracefully: %v", err)
	}
	neg := make([]float64, 10)
	neg[3] = -1
	if _, err := Build(sub, WithAccessWeights(neg)); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestWeightedTreePagesAndEncodes(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 90, 118)
	tree, err := Build(sub, WithAccessWeights(zipfWeights(90, 1.0, 119)))
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wireDTreeParams(128))
	if err != nil {
		t.Fatal(err)
	}
	packets, err := paged.EncodePackets()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(120))
	for i := 0; i < 1000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		want, _ := paged.Locate(p)
		got, _, err := ClientLocate(packets, 128, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want && !nearRegionBoundary(tree, p, got, 0.05) {
			t.Fatalf("client %d, paged %d at %v", got, want, p)
		}
	}
}
