// Package core implements the D-tree, the paper's primary contribution: a
// binary height-balanced index over a planar subdivision of data regions
// that stores neither decompositions nor approximations of the regions, but
// the divisions (polylines) between complementary halves of the region set.
//
// The package provides the recursive partition algorithm (Section 4.2,
// Algorithm 1) with its four/eight partition styles and inter-prob
// tie-breaking, point-query processing (Section 4.3, Algorithm 2), and the
// top-down packet paging of Section 4.4 with the RMC/LMC arrangement that
// lets queries outside a large node's interlocking band terminate after the
// node's first packet.
package core

import (
	"fmt"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Dimension is the overall orientation of a partition (Section 4.1): a
// y-dimensional partition is a roughly vertical polyline separating a
// lefthand from a righthand subspace (regions sorted on x-coordinates); an
// x-dimensional partition is roughly horizontal, separating an upper from a
// lower subspace (regions sorted on y-coordinates).
type Dimension uint8

const (
	// DimY is a y-dimensional partition (left/right split).
	DimY Dimension = iota
	// DimX is an x-dimensional partition (upper/lower split).
	DimX
)

func (d Dimension) String() string {
	if d == DimX {
		return "x"
	}
	return "y"
}

// canon maps a point into the canonical frame in which every partition is
// y-dimensional: identity for DimY; the rotation (x, y) -> (-y, x) for DimX,
// which sends the upper subspace to the canonical "left". The map is a
// rigid rotation, so intersection parity and areas are preserved.
func canon(d Dimension, p geom.Point) geom.Point {
	if d == DimX {
		return geom.Point{X: -p.Y, Y: p.X}
	}
	return p
}

// uncanon inverts canon.
func uncanon(d Dimension, p geom.Point) geom.Point {
	if d == DimX {
		return geom.Point{X: p.Y, Y: -p.X}
	}
	return p
}

// canonX returns the canonical x-coordinate of p under dimension d.
func canonX(d Dimension, p geom.Point) float64 {
	if d == DimX {
		return -p.Y
	}
	return p.X
}

// ChildRef points to either a child node or a data bucket (the paper's
// pointer with a type flag, Table 1).
type ChildRef struct {
	Node *Node // nil when the reference is a data pointer
	Data int   // region / data-bucket id, valid when Node is nil
}

// IsData reports whether the reference points to a data bucket.
func (c ChildRef) IsData() bool { return c.Node == nil }

// Node is one D-tree node: the partition dividing the node's space into two
// complementary subspaces plus the two child references (Figure 7/Table 1).
type Node struct {
	ID  int // breadth-first id, assigned after construction
	Dim Dimension

	// Polylines is the partition: the pruned, truncated boundary of the
	// canonical-left subspace, in real coordinates.
	Polylines []geom.Polyline

	// CutLo and CutHi delimit the interlocking band in canonical
	// x-coordinates: CutLo is the canonical leftmost coordinate of the
	// righthand subspace (Algorithm 1's right_lmc) and CutHi the canonical
	// rightmost coordinate of the lefthand subspace (left_rmc). Queries at
	// or below CutLo resolve left and at or above CutHi resolve right
	// without consulting the partition — the early-termination information
	// a large node's first packet carries (Section 4.4).
	CutLo, CutHi float64

	Left, Right ChildRef

	// Pruned reports whether Algorithm 1 removed anything from the extent;
	// Truncated whether some segment was cut at the CutLo line (in which
	// case the partition's leftmost coordinate equals CutLo). Together they
	// decide whether the wire format must carry CutLo explicitly: a pruned
	// but untruncated partition no longer reveals CutLo (see codec.go).
	Pruned, Truncated bool

	// NumRegions is the number of data regions below this node.
	NumRegions int
	// InterProb is the fraction of the node's space inside the interlocking
	// band (the tie-break quantity of Section 4.2). It is computed lazily —
	// only when a partition-size tie forced the comparison — and is zero
	// otherwise; both the from-scratch and incremental builders follow the
	// same rule, so marshals stay byte-identical.
	InterProb float64

	// src marks a node an incremental rebuild spliced from the previous
	// generation: the previous BFS id + 1, or 0 for freshly built nodes.
	// FlattenPatched uses it to bulk-copy the node's canonical point range
	// from the previous arena instead of re-deriving it.
	src int32

	// memo retains the partition-search state of every style evaluated at
	// this node (memoized builds only): raw extent entries, split
	// thresholds, and the winning style. The next incremental rebuild uses
	// it to re-derive a dirty path node's candidates by patching the cached
	// extents around the changed regions instead of re-extracting them from
	// the whole subset. Stable-key based, so spliced subtrees share memos
	// across generations.
	memo *nodeMemo
}

// PartitionPoints returns the total number of points across the partition's
// polylines — the paper's partition-size measure.
func (n *Node) PartitionPoints() int {
	var s int
	for _, pl := range n.Polylines {
		s += len(pl)
	}
	return s
}

// Tree is a built D-tree over a subdivision.
type Tree struct {
	Root *Node
	Sub  *region.Subdivision
	// Nodes lists all nodes in breadth-first order; Nodes[i].ID == i.
	Nodes []*Node

	opts buildOptions
}

// Stats summarizes structural properties of a tree.
type Stats struct {
	Nodes           int
	Height          int // levels of internal nodes; single-region trees have 0
	PartitionPoints int
	MaxNodePoints   int
}

// Height returns the maximum number of nodes on a root-to-leaf path.
func (t *Tree) Height() int {
	var h func(c ChildRef) int
	h = func(c ChildRef) int {
		if c.IsData() {
			return 0
		}
		l, r := h(c.Node.Left), h(c.Node.Right)
		return 1 + max(l, r)
	}
	return h(ChildRef{Node: t.Root})
}

// Stats computes summary statistics.
func (t *Tree) Stats() Stats {
	st := Stats{Nodes: len(t.Nodes), Height: t.Height()}
	for _, n := range t.Nodes {
		p := n.PartitionPoints()
		st.PartitionPoints += p
		if p > st.MaxNodePoints {
			st.MaxNodePoints = p
		}
	}
	return st
}

// CheckInvariants verifies the four structural properties of Section 4.1:
// every node has two children, left/right spatial separation (checked via
// region membership), height balance, and consistent region counts.
func (t *Tree) CheckInvariants() error {
	if t.Root == nil {
		if t.Sub.N() != 1 {
			return fmt.Errorf("core: nil root with %d regions", t.Sub.N())
		}
		return nil
	}
	var walk func(c ChildRef) (depthMin, depthMax, regions int, err error)
	walk = func(c ChildRef) (int, int, int, error) {
		if c.IsData() {
			if c.Data < 0 || c.Data >= t.Sub.N() {
				return 0, 0, 0, fmt.Errorf("core: data pointer %d out of range", c.Data)
			}
			return 0, 0, 1, nil
		}
		n := c.Node
		if len(n.Polylines) == 0 && n.CutHi > n.CutLo+geom.Eps {
			return 0, 0, 0, fmt.Errorf("core: node %d has empty partition but a non-empty interlocking band", n.ID)
		}
		lMin, lMax, lN, err := walk(n.Left)
		if err != nil {
			return 0, 0, 0, err
		}
		rMin, rMax, rN, err := walk(n.Right)
		if err != nil {
			return 0, 0, 0, err
		}
		if lN+rN != n.NumRegions {
			return 0, 0, 0, fmt.Errorf("core: node %d region count %d != %d+%d", n.ID, n.NumRegions, lN, rN)
		}
		if diff := lN - rN; t.opts.weights == nil && (diff < -1 || diff > 1) {
			return 0, 0, 0, fmt.Errorf("core: node %d unbalanced split %d/%d", n.ID, lN, rN)
		}
		return 1 + min(lMin, rMin), 1 + max(lMax, rMax), lN + rN, nil
	}
	dMin, dMax, n, err := walk(ChildRef{Node: t.Root})
	if err != nil {
		return err
	}
	if n != t.Sub.N() {
		return fmt.Errorf("core: tree covers %d of %d regions", n, t.Sub.N())
	}
	// Weighted trees intentionally trade height balance for expected depth.
	if t.opts.weights == nil && dMax-dMin > 1 {
		return fmt.Errorf("core: leaf levels differ by %d (> 1)", dMax-dMin)
	}
	return nil
}

// ExpectedDepth returns the expected number of nodes visited by a point
// query when region r is queried with probability weights[r] (normalized
// internally). With nil weights the access distribution is uniform over
// regions.
func (t *Tree) ExpectedDepth(weights []float64) float64 {
	if t.Root == nil {
		return 0
	}
	var total float64
	w := func(r int) float64 {
		if weights == nil {
			return 1
		}
		return weights[r]
	}
	for r := 0; r < t.Sub.N(); r++ {
		total += w(r)
	}
	if total == 0 {
		return 0
	}
	var sum float64
	var walk func(c ChildRef, depth int)
	walk = func(c ChildRef, depth int) {
		if c.IsData() {
			sum += w(c.Data) * float64(depth)
			return
		}
		walk(c.Node.Left, depth+1)
		walk(c.Node.Right, depth+1)
	}
	walk(ChildRef{Node: t.Root}, 0)
	return sum / total
}
