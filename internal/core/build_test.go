package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/testutil"
)

func TestBuildRunningExample(t *testing.T) {
	sub := testutil.RunningExample(t)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Four regions: one root and two leaf nodes (Figure 6(b)).
	if len(tree.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(tree.Nodes))
	}
	if tree.Height() != 2 {
		t.Fatalf("height = %d, want 2", tree.Height())
	}
	if tree.Root.NumRegions != 4 {
		t.Fatalf("root covers %d regions", tree.Root.NumRegions)
	}
	// Every region must be reachable and located correctly at its centroid.
	for i := range sub.Regions {
		c := sub.Regions[i].Poly.Centroid()
		if got := tree.Locate(c); got != i {
			t.Errorf("centroid of region %d located in %d", i, got)
		}
	}
}

func TestBuildSingleRegion(t *testing.T) {
	sub, err := region.New(testutil.Area, []geom.Polygon{testutil.Area.Polygon()})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != nil {
		t.Error("single-region tree should have no root node")
	}
	if got := tree.Locate(geom.Pt(50, 50)); got != 0 {
		t.Errorf("Locate = %d", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTwoRegions(t *testing.T) {
	polys := []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(55, 0), geom.Pt(45, 100), geom.Pt(0, 100)},
		{geom.Pt(55, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(45, 100)},
	}
	sub, err := region.New(testutil.Area, polys)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(tree.Nodes))
	}
	n := tree.Root
	if !n.Left.IsData() || !n.Right.IsData() {
		t.Fatal("both children should be data pointers")
	}
	if got := tree.Locate(geom.Pt(10, 50)); got != 0 {
		t.Errorf("left query = %d", got)
	}
	if got := tree.Locate(geom.Pt(90, 50)); got != 1 {
		t.Errorf("right query = %d", got)
	}
}

func TestBuildBalanceAcrossSizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 64, 129, 300} {
		tree, _, _ := buildVoronoiTree(t, n, int64(n)*3+1)
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := 0
		for v := n; v > 1; v = (v + 1) / 2 {
			want++
		}
		if h := tree.Height(); h != want {
			t.Errorf("n=%d: height %d, want ceil(log2 n) = %d", n, h, want)
		}
		if len(tree.Nodes) != n-1 {
			t.Errorf("n=%d: %d nodes, want n-1", n, len(tree.Nodes))
		}
	}
}

func TestBuildOptions(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 80, 17)
	base, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Build(sub, WithSingleStyle(DimY, true))
	if err != nil {
		t.Fatal(err)
	}
	noTie, err := Build(sub, WithoutTieBreak())
	if err != nil {
		t.Fatal(err)
	}
	noPrune, err := Build(sub, WithoutParallelPrune())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*Tree{single, noTie, noPrune} {
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// All variants answer queries identically to brute force.
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 3000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		want := sub.Locate(p)
		for _, tr := range []*Tree{base, single, noTie, noPrune} {
			if got := tr.Locate(p); got != want && !sub.Regions[got].Poly.Contains(p) {
				t.Fatalf("query %v: got %d want %d", p, got, want)
			}
		}
	}
	// The full style search never produces more partition points than a
	// single fixed style.
	if base.Stats().PartitionPoints > single.Stats().PartitionPoints {
		t.Errorf("full style search (%d points) worse than single style (%d points)",
			base.Stats().PartitionPoints, single.Stats().PartitionPoints)
	}
	// Parallel pruning never increases the partition size.
	if base.Stats().PartitionPoints > noPrune.Stats().PartitionPoints {
		t.Errorf("parallel pruning increased size: %d > %d",
			base.Stats().PartitionPoints, noPrune.Stats().PartitionPoints)
	}
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(&region.Subdivision{}); err == nil {
		t.Error("empty subdivision should fail")
	}
}

func TestNodeIDsAreBreadthFirst(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 100, 19)
	for i, n := range tree.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		for _, c := range []ChildRef{n.Left, n.Right} {
			if !c.IsData() && c.Node.ID <= n.ID {
				t.Fatalf("child ID %d not after parent %d", c.Node.ID, n.ID)
			}
		}
	}
}
