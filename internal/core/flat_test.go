package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// sameTrace compares packet traces element-wise.
func sameTrace(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFlatMatchesPointerTree is the bit-identity property: over random
// Voronoi datasets of several sizes and packet capacities, the arena answers
// every point query, early-termination trace, and window query exactly as
// the pointer tree it was flattened from.
func TestFlatMatchesPointerTree(t *testing.T) {
	for _, n := range []int{1, 2, 7, 60, 250} {
		for _, capacity := range []int{64, 256, 2048} {
			t.Run(fmt.Sprintf("n=%d/cap=%d", n, capacity), func(t *testing.T) {
				sub, _ := testutil.RandomVoronoi(t, n, int64(1000+n))
				tree, err := Build(sub)
				if err != nil {
					t.Fatal(err)
				}
				paged, err := tree.Page(wire.DTreeParams(capacity))
				if err != nil {
					t.Fatal(err)
				}
				fp := paged.Flatten()
				ft := fp.Flat
				if ft.NumNodes() != len(tree.Nodes) {
					t.Fatalf("arena has %d nodes, tree %d", ft.NumNodes(), len(tree.Nodes))
				}

				area := sub.Area
				rng := rand.New(rand.NewSource(int64(2000 + n + capacity)))
				var buf []int
				for q := 0; q < 3000; q++ {
					p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
					if got, want := ft.Locate(p), tree.Locate(p); got != want {
						t.Fatalf("query %v: flat region %d, pointer %d", p, got, want)
					}
					wantID, wantTrace := paged.Locate(p)
					gotID, gotTrace := fp.LocateInto(p, buf)
					buf = gotTrace
					if gotID != wantID || !sameTrace(gotTrace, wantTrace) {
						t.Fatalf("query %v: flat (%d, %v), pointer (%d, %v)", p, gotID, gotTrace, wantID, wantTrace)
					}
				}
				for q := 0; q < 300; q++ {
					x0 := area.MinX + rng.Float64()*area.W()
					y0 := area.MinY + rng.Float64()*area.H()
					w := geom.Rect{MinX: x0, MinY: y0,
						MaxX: x0 + rng.Float64()*area.W()/3, MaxY: y0 + rng.Float64()*area.H()/3}
					got, want := ft.SearchRect(w), tree.SearchRect(w)
					if len(got) != len(want) {
						t.Fatalf("window %v: flat %v, pointer %v", w, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("window %v: flat %v, pointer %v", w, got, want)
						}
					}
				}

				wantPk, err := paged.EncodePackets()
				if err != nil {
					t.Fatal(err)
				}
				gotPk, err := fp.EncodePackets()
				if err != nil {
					t.Fatal(err)
				}
				if len(gotPk) != len(wantPk) {
					t.Fatalf("flat encodes %d packets, pointer %d", len(gotPk), len(wantPk))
				}
				for k := range gotPk {
					if !bytes.Equal(gotPk[k], wantPk[k]) {
						t.Fatalf("packet %d differs between flat and pointer encodings", k)
					}
				}
			})
		}
	}
}

// TestFlatMatchesOnBandBoundaries aims queries at partition vertices and cut
// lines, where tie-breaking is most fragile.
func TestFlatMatchesOnBandBoundaries(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 120, 77)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(128))
	if err != nil {
		t.Fatal(err)
	}
	fp := paged.Flatten()
	var probes []geom.Point
	for _, n := range tree.Nodes {
		for _, pl := range n.Polylines {
			for _, p := range pl {
				probes = append(probes, p)
			}
		}
		// Points exactly on the cut lines, in real coordinates.
		probes = append(probes, uncanon(n.Dim, geom.Pt(n.CutLo, 5000)), uncanon(n.Dim, geom.Pt(n.CutHi, 5000)))
	}
	var buf []int
	for _, p := range probes {
		if got, want := fp.Flat.Locate(p), tree.Locate(p); got != want {
			t.Fatalf("probe %v: flat %d, pointer %d", p, got, want)
		}
		wantID, wantTrace := paged.Locate(p)
		var gotID int
		gotID, buf = fp.LocateInto(p, buf)
		if gotID != wantID || !sameTrace(buf, wantTrace) {
			t.Fatalf("probe %v: flat (%d, %v), pointer (%d, %v)", p, gotID, buf, wantID, wantTrace)
		}
	}
}

// TestFlatRunningExample pins the arena against the paper's Figure 1.
func TestFlatRunningExample(t *testing.T) {
	sub := testutil.RunningExample(t)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(64))
	if err != nil {
		t.Fatal(err)
	}
	fp := paged.Flatten()
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 2000; q++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if got, want := fp.Flat.Locate(p), tree.Locate(p); got != want {
			t.Fatalf("query %v: flat %d, pointer %d", p, got, want)
		}
	}
}

// TestFlatLocateZeroAlloc verifies the tentpole's allocation claim: the
// arena point query and the paged descent with a reused buffer allocate
// nothing per query.
func TestFlatLocateZeroAlloc(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 200, 55)
	paged, err := tree.Page(wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	fp := paged.Flatten()
	rng := rand.New(rand.NewSource(56))
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
	}
	var i int
	if avg := testing.AllocsPerRun(500, func() {
		fp.Flat.Locate(pts[i%len(pts)])
		i++
	}); avg != 0 {
		t.Errorf("FlatTree.Locate allocates %v per query", avg)
	}
	trace := make([]int, 0, 64)
	if avg := testing.AllocsPerRun(500, func() {
		_, trace = fp.LocateInto(pts[i%len(pts)], trace)
		i++
	}); avg != 0 {
		t.Errorf("FlatPaged.LocateInto allocates %v per query", avg)
	}
}

// TestFlatSingleRegion covers the degenerate no-root arena.
func TestFlatSingleRegion(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 1, 5)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	fp := paged.Flatten()
	if got := fp.Flat.Locate(geom.Pt(5000, 5000)); got != 0 {
		t.Fatalf("single-region locate = %d", got)
	}
	id, trace := fp.LocateInto(geom.Pt(1, 1), nil)
	if id != 0 || len(trace) != 0 {
		t.Fatalf("single-region paged locate = (%d, %v)", id, trace)
	}
	pks, err := fp.EncodePackets()
	if err != nil || len(pks) != 0 {
		t.Fatalf("single-region encode = (%d packets, %v)", len(pks), err)
	}
}
