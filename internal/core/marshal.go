package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Tree persistence: a compact, self-describing binary encoding of the
// built D-tree (topology, partitions, band limits), so a broadcast server
// can ship or reload an index without re-running the partition search.
// The subdivision is not embedded — it derives from the data — and Load
// verifies the region count against the provided one.
//
// Layout (little endian): magic "DTRE", version u16, region count u32,
// node count u32, then nodes in breadth-first order:
//
//	dim u8 · flags u8 (bit0 pruned, bit1 truncated) ·
//	cutLo f64 · cutHi f64 · interProb f64 · numRegions u32 ·
//	left u32 · right u32 (bit31 = data pointer; else node id) ·
//	polyline count u16 · per polyline: point count u16 + f64 x,y pairs

const (
	marshalMagic   = "DTRE"
	marshalVersion = 1
)

// Marshal encodes the tree.
func (t *Tree) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(marshalMagic)
	le := binary.LittleEndian
	w := func(v interface{}) { binary.Write(&buf, le, v) } //nolint:errcheck
	w(uint16(marshalVersion))
	var treeFlags uint8
	if t.opts.weights != nil {
		treeFlags |= 1 // unbalanced (access-weighted) tree
	}
	w(treeFlags)
	w(uint32(t.Sub.N()))
	w(uint32(len(t.Nodes)))
	ref := func(c ChildRef) uint32 {
		if c.IsData() {
			return 1<<31 | uint32(c.Data)
		}
		return uint32(c.Node.ID)
	}
	for _, n := range t.Nodes {
		w(uint8(n.Dim))
		var flags uint8
		if n.Pruned {
			flags |= 1
		}
		if n.Truncated {
			flags |= 2
		}
		w(flags)
		w(n.CutLo)
		w(n.CutHi)
		w(n.InterProb)
		w(uint32(n.NumRegions))
		w(ref(n.Left))
		w(ref(n.Right))
		if len(n.Polylines) >= 1<<16 {
			return nil, fmt.Errorf("core: node %d has %d polylines", n.ID, len(n.Polylines))
		}
		w(uint16(len(n.Polylines)))
		for _, pl := range n.Polylines {
			if len(pl) >= 1<<16 {
				return nil, fmt.Errorf("core: polyline with %d points", len(pl))
			}
			w(uint16(len(pl)))
			for _, p := range pl {
				w(p.X)
				w(p.Y)
			}
		}
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a tree over the given subdivision (which must have the
// same region count it was built for).
func Unmarshal(data []byte, sub *region.Subdivision) (*Tree, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != marshalMagic {
		return nil, fmt.Errorf("core: not a D-tree image")
	}
	le := binary.LittleEndian
	var fail error
	rd := func(v interface{}) {
		if fail == nil {
			fail = binary.Read(r, le, v)
		}
	}
	var version uint16
	var treeFlags uint8
	var nRegions, nNodes uint32
	rd(&version)
	rd(&treeFlags)
	rd(&nRegions)
	rd(&nNodes)
	if fail != nil {
		return nil, fmt.Errorf("core: truncated D-tree image: %w", fail)
	}
	if version != marshalVersion {
		return nil, fmt.Errorf("core: D-tree image version %d, want %d", version, marshalVersion)
	}
	if int(nRegions) != sub.N() {
		return nil, fmt.Errorf("core: image built for %d regions, subdivision has %d", nRegions, sub.N())
	}
	// A D-tree over N regions has exactly N-1 nodes (two children each);
	// this also bounds allocations when decoding hostile images.
	if wantNodes := uint32(0); nRegions > 1 {
		wantNodes = nRegions - 1
		if nNodes != wantNodes {
			return nil, fmt.Errorf("core: image has %d nodes for %d regions, want %d", nNodes, nRegions, wantNodes)
		}
	} else if nNodes != 0 {
		return nil, fmt.Errorf("core: image has %d nodes for a single region", nNodes)
	}

	t := &Tree{Sub: sub}
	if treeFlags&1 != 0 {
		// Mark the tree as access-weighted so invariant checks skip the
		// balance properties it intentionally trades away.
		t.opts.weights = []float64{}
	}
	if nNodes == 0 {
		if sub.N() != 1 {
			return nil, fmt.Errorf("core: empty tree image for %d regions", sub.N())
		}
		return t, nil
	}
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = &Node{ID: i}
	}
	type pendingRef struct {
		node  *Node
		right bool
		v     uint32
	}
	var pend []pendingRef
	for i := uint32(0); i < nNodes; i++ {
		n := nodes[i]
		var dim, flags uint8
		var numRegions, left, right uint32
		var nPoly uint16
		rd(&dim)
		rd(&flags)
		rd(&n.CutLo)
		rd(&n.CutHi)
		rd(&n.InterProb)
		rd(&numRegions)
		rd(&left)
		rd(&right)
		rd(&nPoly)
		if fail != nil {
			return nil, fmt.Errorf("core: truncated D-tree image at node %d: %w", i, fail)
		}
		if dim > uint8(DimX) {
			return nil, fmt.Errorf("core: node %d has dimension %d", i, dim)
		}
		n.Dim = Dimension(dim)
		n.Pruned = flags&1 != 0
		n.Truncated = flags&2 != 0
		n.NumRegions = int(numRegions)
		if math.IsNaN(n.CutLo) || math.IsNaN(n.CutHi) {
			return nil, fmt.Errorf("core: node %d has NaN band limits", i)
		}
		n.Polylines = make([]geom.Polyline, nPoly)
		for j := range n.Polylines {
			var cnt uint16
			rd(&cnt)
			pl := make(geom.Polyline, cnt)
			for k := range pl {
				rd(&pl[k].X)
				rd(&pl[k].Y)
			}
			n.Polylines[j] = pl
		}
		if fail != nil {
			return nil, fmt.Errorf("core: truncated D-tree image in node %d partition: %w", i, fail)
		}
		pend = append(pend,
			pendingRef{node: n, right: false, v: left},
			pendingRef{node: n, right: true, v: right})
	}
	resolve := func(v uint32) (ChildRef, error) {
		if v&(1<<31) != 0 {
			d := int(v &^ (1 << 31))
			if d >= sub.N() {
				return ChildRef{}, fmt.Errorf("core: data pointer %d out of range", d)
			}
			return ChildRef{Data: d}, nil
		}
		if v >= nNodes {
			return ChildRef{}, fmt.Errorf("core: node pointer %d out of range", v)
		}
		if v == 0 {
			return ChildRef{}, fmt.Errorf("core: child pointer to the root")
		}
		return ChildRef{Node: nodes[v]}, nil
	}
	for _, p := range pend {
		c, err := resolve(p.v)
		if err != nil {
			return nil, err
		}
		if p.right {
			p.node.Right = c
		} else {
			p.node.Left = c
		}
	}
	t.Root = nodes[0]
	t.Nodes = nodes
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: decoded tree invalid: %w", err)
	}
	return t, nil
}
