package core

import (
	"fmt"
	"sort"

	"airindex/internal/region"
)

// Incremental rebuilds a D-tree across generations of a slowly changing
// subdivision, rebuilding only the subtrees whose region set a batch of
// cell updates touched and splicing every untouched subtree from the
// previous generation by copy. The result is byte-identical (marshal and
// flat arena) to a from-scratch Build of the new subdivision:
//
//   - a subtree whose full leaf set consists of clean regions (canonical
//     polygon unchanged) present in both generations evaluates every
//     partition style to the same candidate — spans, sort orders (stable
//     keys renumber monotonically, so propagated orders keep their relative
//     order), boundary extraction (nbrKey membership is by stable key), and
//     the lazily computed interlocking probability are all pure functions
//     of the subset's coordinates — so its previous build is the build;
//   - every node on a path to a dirty or renumbered-away region is
//     re-evaluated with the normal partition machinery over merge-patched
//     sorted orders.
//
// An Incremental retains the previous generation's tree and sort orders;
// it is not safe for concurrent use.
type Incremental struct {
	buildOpts []BuildOption
	opts      buildOptions

	tree       *Tree
	sub        *region.Subdivision
	keyOfOld   []int32 // old region idx -> stable key
	oldIdxOf   []int32 // stable key -> old region idx (-1 absent)
	orders     subset  // root sort orders (old region indices)
	spans      []regionSpan
	leafParent []int32 // stable key -> BFS id of the node owning the key's leaf
	parent     []int32 // BFS id -> parent BFS id (-1 at root)
}

// Delta reports how much of a rebuild was spliced versus rebuilt.
type Delta struct {
	Total   int // internal nodes in the new tree
	Spliced int // nodes copied from the previous generation
	Fresh   int // nodes re-evaluated from their subsets
}

// DirtyFraction is Fresh/Total, the fraction of the tree that was rebuilt.
func (d Delta) DirtyFraction() float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.Fresh) / float64(d.Total)
}

// NewIncremental creates an incremental builder; opts apply to every
// generation and must match the from-scratch builds being compared against.
// Every generation is built memoized (withMemo) so dirty path nodes can be
// re-derived by extent patching; memos never change the built bytes.
func NewIncremental(opts ...BuildOption) *Incremental {
	return &Incremental{buildOpts: append(append([]BuildOption(nil), opts...), withMemo())}
}

// Tree returns the latest built tree.
func (inc *Incremental) Tree() *Tree { return inc.tree }

// Full builds the tree from scratch and retains the state Rebuild patches.
func (inc *Incremental) Full(sub *region.Subdivision) (*Tree, error) {
	t, err := Build(sub, inc.buildOpts...)
	if err != nil {
		return nil, err
	}
	if err := inc.retain(t, sub); err != nil {
		return nil, err
	}
	return t, nil
}

// keyOf returns the subdivision's region->key map, materializing the
// identity for subdivisions built by region.New.
func keyOf(sub *region.Subdivision) []int32 {
	n := sub.N()
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(sub.Key(i))
	}
	return out
}

// retain rebuilds the per-generation lookup state from a finished tree.
func (inc *Incremental) retain(t *Tree, sub *region.Subdivision) error {
	n := sub.N()
	inc.tree, inc.sub = t, sub
	inc.keyOfOld = keyOf(sub)
	maxKey := int32(sub.MaxKey())
	inc.oldIdxOf = make([]int32, maxKey+1)
	for i := range inc.oldIdxOf {
		inc.oldIdxOf[i] = -1
	}
	for i, k := range inc.keyOfOld {
		inc.oldIdxOf[k] = int32(i)
	}

	// Root sort orders and spans, recomputed once per retained generation
	// (Rebuild patches them forward instead when it can).
	b := &builder{sub: sub, opts: t.opts, spans: make([]regionSpan, n)}
	for i := range sub.Regions {
		bb := sub.Regions[i].Bounds()
		b.spans[i] = regionSpan{id: i, minX: bb.MinX, maxX: bb.MaxX, minY: bb.MinY, maxY: bb.MaxY}
	}
	inc.spans = b.spans
	inc.opts = t.opts
	for _, dim := range t.opts.dims {
		for _, byMax := range t.opts.sortKeys {
			if k := keyIdx(dim, byMax); !containsInt(b.keys, k) {
				b.keys = append(b.keys, k)
			}
		}
	}
	inc.orders = subset{}
	for _, k := range b.keys {
		inc.orders[k] = b.sortedIDs(n, k)
	}
	inc.index(t)
	return nil
}

// index fills leafParent and parent for the retained tree.
func (inc *Incremental) index(t *Tree) {
	maxKey := int32(len(inc.oldIdxOf)) - 1
	inc.leafParent = make([]int32, maxKey+1)
	for i := range inc.leafParent {
		inc.leafParent[i] = -1
	}
	inc.parent = make([]int32, len(t.Nodes))
	for i := range inc.parent {
		inc.parent[i] = -1
	}
	for _, n := range t.Nodes {
		for _, c := range [2]ChildRef{n.Left, n.Right} {
			if c.IsData() {
				inc.leafParent[inc.keyOfOld[c.Data]] = int32(n.ID)
			} else {
				inc.parent[c.Node.ID] = int32(n.ID)
			}
		}
	}
}

// Rebuild advances the tree to the new subdivision. dirtyKeys is the
// ascending list of stable keys whose canonical polygon changed or that
// were inserted this generation (removed keys are inferred from the key
// sets). The returned tree is byte-identical to Build(sub) and becomes the
// retained generation.
func (inc *Incremental) Rebuild(sub *region.Subdivision, dirtyKeys []int) (*Tree, Delta, error) {
	if inc.tree == nil {
		return nil, Delta{}, fmt.Errorf("core: incremental rebuild before Full")
	}
	n := sub.N()
	if n == 0 {
		return nil, Delta{}, fmt.Errorf("core: empty subdivision")
	}
	o := inc.opts
	if o.weights != nil {
		return nil, Delta{}, fmt.Errorf("core: incremental rebuild does not support access weights")
	}
	t := &Tree{Sub: sub, opts: o}
	if n == 1 {
		if err := inc.retain(t, sub); err != nil {
			return nil, Delta{}, err
		}
		return t, Delta{}, nil
	}

	newKeyOf := keyOf(sub)
	maxKey := int32(sub.MaxKey())
	if mk := int32(len(inc.oldIdxOf)) - 1; mk > maxKey {
		maxKey = mk
	}
	newIdxOf := make([]int32, maxKey+1)
	for i := range newIdxOf {
		newIdxOf[i] = -1
	}
	for i, k := range newKeyOf {
		newIdxOf[k] = int32(i)
	}
	dirty := make([]bool, maxKey+1)
	for _, k := range dirtyKeys {
		if k < 0 || int32(k) > maxKey || newIdxOf[k] < 0 {
			return nil, Delta{}, fmt.Errorf("core: dirty key %d not in subdivision", k)
		}
		dirty[k] = true
	}

	// New spans: clean regions copy the previous span (the bounds are a
	// function of the unchanged polygon), dirty ones recompute.
	b := &builder{sub: sub, opts: o, spans: make([]regionSpan, n)}
	for _, dim := range o.dims {
		for _, byMax := range o.sortKeys {
			if k := keyIdx(dim, byMax); !containsInt(b.keys, k) {
				b.keys = append(b.keys, k)
			}
		}
	}
	for i := 0; i < n; i++ {
		k := newKeyOf[i]
		if oi := inc.lookupOld(k); oi >= 0 && !dirty[k] {
			sp := inc.spans[oi]
			sp.id = i
			b.spans[i] = sp
			continue
		}
		bb := sub.Regions[i].Bounds()
		b.spans[i] = regionSpan{id: i, minX: bb.MinX, maxX: bb.MaxX, minY: bb.MinY, maxY: bb.MaxY}
	}

	// Merge-patch each root order: surviving clean ids keep their relative
	// order under the monotone renumbering (keys ascending in both
	// generations), so filtering the old order and merging the re-keyed
	// dirty ids by (key value, id) reproduces sortedIDs exactly.
	var orders subset
	for _, k := range b.keys {
		var dirtyIDs []int32
		for i := 0; i < n; i++ {
			if dirty[newKeyOf[i]] || inc.lookupOld(newKeyOf[i]) < 0 {
				dirtyIDs = append(dirtyIDs, int32(i))
			}
		}
		sort.Slice(dirtyIDs, func(x, y int) bool {
			vx, vy := b.spans[dirtyIDs[x]].keyVal(k), b.spans[dirtyIDs[y]].keyVal(k)
			if vx != vy {
				return vx < vy
			}
			return dirtyIDs[x] < dirtyIDs[y]
		})
		merged := make([]int32, 0, n)
		di := 0
		for _, oldID := range inc.orders[k] {
			key := inc.keyOfOld[oldID]
			ni := int32(-1)
			if int32(key) <= maxKey {
				ni = newIdxOf[key]
			}
			if ni < 0 || dirty[key] {
				continue // removed or re-keyed into the dirty list
			}
			v := b.spans[ni].keyVal(k)
			for di < len(dirtyIDs) {
				dv := b.spans[dirtyIDs[di]].keyVal(k)
				if dv < v || (dv == v && dirtyIDs[di] < ni) {
					merged = append(merged, dirtyIDs[di])
					di++
				} else {
					break
				}
			}
			merged = append(merged, ni)
		}
		merged = append(merged, dirtyIDs[di:]...)
		if len(merged) != n {
			return nil, Delta{}, fmt.Errorf("core: merged order has %d of %d ids", len(merged), n)
		}
		orders[k] = merged
	}

	b.pool.New = func() interface{} { return &buildScratch{mark: make([]int32, n)} }
	r := &rebuilder{
		inc: inc, b: b,
		newKeyOf: newKeyOf, newIdxOf: newIdxOf, dirty: dirty,
		oldMark: make([]int32, maxKey+1),
		fast: fastScratch{
			dirtyMark: make([]int32, maxKey+1),
			subMark:   make([]int32, maxKey+1),
			addMark:   make([]int32, maxKey+1),
			flipMark:  make([]int32, maxKey+1),
			seenMark:  make([]int32, maxKey+1),
		},
	}
	sc := b.pool.Get().(*buildScratch)
	var ref ChildRef
	var err error
	if o.perNodeSort {
		// The reference path re-sorts per node; only the legacy splice
		// machinery applies.
		ref, err = r.split(orders, sc)
	} else {
		// Difference lists for the corresponded walk: dirty keys split into
		// geometry-changed survivors and inserts, removals inferred from the
		// old key set.
		var changed, added, removedKeys []int32
		for _, k := range dirtyKeys {
			if inc.lookupOld(int32(k)) >= 0 {
				changed = append(changed, newIdxOf[k])
			} else {
				added = append(added, newIdxOf[k])
			}
		}
		for _, k := range inc.keyOfOld {
			if newIdxOf[k] < 0 {
				removedKeys = append(removedKeys, k)
			}
		}
		ref, err = r.fastSplit(orders, inc.tree.Root, changed, added, removedKeys, sc)
	}
	b.pool.Put(sc)
	if err != nil {
		return nil, Delta{}, err
	}
	t.Root = ref.Node
	t.assignIDs()
	delta := Delta{Total: len(t.Nodes), Spliced: r.spliced, Fresh: len(t.Nodes) - r.spliced}

	// Retain forward without recomputing the orders just merged.
	inc.tree, inc.sub, inc.opts = t, sub, o
	inc.keyOfOld = newKeyOf
	inc.oldIdxOf = newIdxOf
	inc.orders = orders
	inc.spans = b.spans
	inc.index(t)
	return t, delta, nil
}

func (inc *Incremental) lookupOld(key int32) int32 {
	if int(key) >= len(inc.oldIdxOf) {
		return -1
	}
	return inc.oldIdxOf[key]
}

// rebuilder is the per-Rebuild recursion state.
type rebuilder struct {
	inc      *Incremental
	b        *builder
	newKeyOf []int32
	newIdxOf []int32
	dirty    []bool

	oldMark  []int32 // by stable key, epoch-stamped by collectOld
	oldEpoch int32
	spliced  int

	fast fastScratch // memoized corresponded-rebuild scratch (memo.go)
}

// split mirrors builder.split but first tries to splice the subtree of the
// previous generation covering exactly this (clean) region set.
func (r *rebuilder) split(sub subset, sc *buildScratch) (ChildRef, error) {
	ids := sub[r.b.keys[0]]
	if len(ids) == 1 {
		return ChildRef{Data: int(ids[0])}, nil
	}
	if old := r.findSplice(ids); old != nil {
		ref := r.copySubtree(ChildRef{Node: old})
		return ref, nil
	}
	cand, err := r.b.choosePartition(sub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	leftSub, rightSub := r.b.partitionSubset(sub, cand.left, sc)
	left, err := r.split(leftSub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	right, err := r.split(rightSub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	return ChildRef{Node: &Node{
		Dim:        cand.style.dim,
		Polylines:  cand.polylines,
		CutLo:      cand.cutLo,
		CutHi:      cand.cutHi,
		Left:       left,
		Right:      right,
		Pruned:     cand.pruned,
		Truncated:  cand.truncated,
		NumRegions: len(ids),
		InterProb:  cand.interProb,
		memo:       cand.memo,
	}}, nil
}

// findSplice returns the previous-generation node whose leaf set equals the
// given (new) region ids with every member clean, or nil.
func (r *rebuilder) findSplice(ids []int32) *Node {
	inc := r.inc
	for _, id := range ids {
		k := r.newKeyOf[id]
		if r.dirty[k] || int(k) >= len(inc.leafParent) || inc.leafParent[k] < 0 {
			return nil
		}
	}
	// Walk up from the first key's old leaf to the ancestor of matching
	// cardinality, then verify the leaf sets coincide.
	nid := inc.leafParent[r.newKeyOf[ids[0]]]
	for nid >= 0 && inc.tree.Nodes[nid].NumRegions < len(ids) {
		nid = inc.parent[nid]
	}
	if nid < 0 {
		return nil
	}
	old := inc.tree.Nodes[nid]
	if old.NumRegions != len(ids) {
		return nil
	}
	r.oldEpoch++
	r.collectOld(ChildRef{Node: old})
	for _, id := range ids {
		if r.oldMark[r.newKeyOf[id]] != r.oldEpoch {
			return nil
		}
	}
	return old
}

func (r *rebuilder) collectOld(c ChildRef) {
	if c.IsData() {
		r.oldMark[r.inc.keyOfOld[c.Data]] = r.oldEpoch
		return
	}
	r.collectOld(c.Node.Left)
	r.collectOld(c.Node.Right)
}

// copySubtree deep-copies a previous-generation subtree, renumbering data
// leaves to the new region indices and marking each node with its source
// BFS id for arena patching. Polyline slices are shared (immutable).
func (r *rebuilder) copySubtree(c ChildRef) ChildRef {
	if c.IsData() {
		key := r.inc.keyOfOld[c.Data]
		return ChildRef{Data: int(r.newIdxOf[key])}
	}
	n := c.Node
	r.spliced++
	return ChildRef{Node: &Node{
		Dim:        n.Dim,
		Polylines:  n.Polylines,
		CutLo:      n.CutLo,
		CutHi:      n.CutHi,
		Left:       r.copySubtree(n.Left),
		Right:      r.copySubtree(n.Right),
		Pruned:     n.Pruned,
		Truncated:  n.Truncated,
		NumRegions: n.NumRegions,
		InterProb:  n.InterProb,
		src:        int32(n.ID) + 1,
		memo:       n.memo, // shared: memos are stable-key based and immutable
	}}
}
