package core

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
)

// style is one of the paper's partition styles: a dimension, a sort key
// (canonical leftmost vs rightmost coordinate of each region), and the
// number of regions assigned to the canonical-left subspace (N/2, or
// (N±1)/2 when N is odd) — four styles for even N, eight for odd.
type style struct {
	dim       Dimension
	sortByMax bool // sort regions by canonical rightmost (max) coordinate; else leftmost
	leftCount int
}

// candidate is an evaluated partition for one style (Algorithm 1's output
// plus the bookkeeping the builder needs).
type candidate struct {
	style       style
	left, right []int // region ids of the two subspaces
	polylines   []geom.Polyline
	points      int // partition size in points (2 points = 4 coordinates)
	cutLo       float64
	cutHi       float64
	interProb   float64
	pruned      bool // Algorithm 1 removed extent segments
	truncated   bool // some segment was cut at the CutLo line
}

// regionSpan caches a region's canonical extremes for both dimensions.
type regionSpan struct {
	id                     int
	minX, maxX, minY, maxY float64
}

func (r regionSpan) canonMin(d Dimension) float64 {
	if d == DimX {
		return -r.maxY
	}
	return r.minX
}

func (r regionSpan) canonMax(d Dimension) float64 {
	if d == DimX {
		return -r.minY
	}
	return r.maxX
}

// evaluate runs Algorithm 1 (PartitionSize) for one style over the given
// region ids of the current space.
func (b *builder) evaluate(ids []int, st style) (candidate, error) {
	spans := make([]regionSpan, len(ids))
	for i, id := range ids {
		spans[i] = b.spans[id]
	}
	key := func(r regionSpan) float64 {
		if st.sortByMax {
			return r.canonMax(st.dim)
		}
		return r.canonMin(st.dim)
	}
	sort.SliceStable(spans, func(i, j int) bool { return key(spans[i]) < key(spans[j]) })

	k := st.leftCount
	if k == weightedSplit {
		// Access-weighted build: cut at the weighted median of the sorted
		// order so both subspaces carry about half the query mass.
		var total float64
		for _, sp := range spans {
			total += b.opts.weights[sp.id]
		}
		var acc float64
		k = len(spans) - 1
		for i, sp := range spans[:len(spans)-1] {
			acc += b.opts.weights[sp.id]
			if acc >= total/2 {
				k = i + 1
				break
			}
		}
	}
	if k <= 0 || k >= len(ids) {
		return candidate{}, fmt.Errorf("core: left count %d out of range for %d regions", k, len(ids))
	}
	left := make([]int, 0, k)
	right := make([]int, 0, len(ids)-k)
	for i, sp := range spans {
		if i < k {
			left = append(left, sp.id)
		} else {
			right = append(right, sp.id)
		}
	}

	// right_lmc: canonical leftmost coordinate of the righthand subspace;
	// left_rmc: canonical rightmost coordinate of the lefthand subspace.
	cutLo := math.Inf(1)
	for _, sp := range spans[k:] {
		cutLo = math.Min(cutLo, sp.canonMin(st.dim))
	}
	cutHi := math.Inf(-1)
	for _, sp := range spans[:k] {
		cutHi = math.Max(cutHi, sp.canonMax(st.dim))
	}

	// Construct the extent of the lefthand subspace and prune/truncate it
	// against the vertical line x = right_lmc (Algorithm 1, lines 4-16).
	extent := b.sub.BoundarySegments(left)
	var kept []geom.Segment
	var pruned, truncated bool
	const tol = geom.Eps
	for _, s := range extent {
		a, c := canon(st.dim, s.A), canon(st.dim, s.B)
		if a.X <= cutLo+tol && c.X <= cutLo+tol {
			pruned = true
			continue // entirely to the left of (or on) the line: prune
		}
		if b.opts.pruneParallel && a.Y == c.Y {
			// Exactly parallel to the query ray (an axis-aligned service-
			// border piece): the crossing test can never count it, so it is
			// dead weight in the partition.
			pruned = true
			continue
		}
		if a.X < cutLo-tol || c.X < cutLo-tol {
			truncated = true
			// Crosses the line: truncate, identifying right_lmc in the
			// partition (Section 4.4's LMC point).
			if a.X > c.X {
				a, c = c, a
			}
			t := (cutLo - a.X) / (c.X - a.X)
			a = geom.Lerp(a, c, t)
			a.X = cutLo
		}
		kept = append(kept, geom.Segment{A: a, B: c})
	}
	if len(kept) == 0 {
		if cutHi <= cutLo+tol {
			// The two subspaces have disjoint canonical extents: every
			// query resolves by the band test alone and the node stores no
			// partition at all.
			return candidate{
				style: st, left: left, right: right,
				cutLo: cutLo, cutHi: cutHi,
				pruned: true, // the whole extent fell left of the line
			}, nil
		}
		return candidate{}, fmt.Errorf("core: empty partition for style %+v over %d regions", st, len(ids))
	}

	chains := geom.ChainSegments(kept)
	points := 0
	polylines := make([]geom.Polyline, len(chains))
	for i, ch := range chains {
		points += len(ch)
		real := make(geom.Polyline, len(ch))
		for j, p := range ch {
			real[j] = uncanon(st.dim, p)
		}
		polylines[i] = real
	}

	return candidate{
		style: st, left: left, right: right,
		polylines: polylines, points: points,
		cutLo: cutLo, cutHi: cutHi,
		interProb: b.interProb(ids, st.dim, cutLo, cutHi),
		pruned:    pruned,
		truncated: truncated,
	}, nil
}

// interProb returns the probability (under uniform queries) that a query in
// the current space falls in the interlocking band [cutLo, cutHi] shared by
// both subspaces.
func (b *builder) interProb(ids []int, d Dimension, cutLo, cutHi float64) float64 {
	if cutHi <= cutLo {
		return 0
	}
	var total, band float64
	for _, id := range ids {
		poly := b.sub.Regions[id].Poly
		total += poly.Area()
		cp := make(geom.Polygon, len(poly))
		for i, p := range poly {
			cp[i] = canon(d, p)
		}
		band += geom.ClipAreaVerticalBand(cp.EnsureCCW(), cutLo, cutHi)
	}
	if total <= 0 {
		return 0
	}
	return band / total
}

// weightedSplit is the leftCount sentinel selecting the weighted-median
// cut computed per style inside evaluate.
const weightedSplit = -1

// choosePartition evaluates every enabled style for the current space and
// picks the one with the smallest partition size, breaking ties by the
// lowest inter-prob (Section 4.2).
func (b *builder) choosePartition(ids []int) (candidate, error) {
	n := len(ids)
	half := n / 2
	counts := []int{half}
	if n%2 == 1 {
		counts = []int{(n + 1) / 2, (n - 1) / 2}
	}
	if b.opts.weights != nil {
		counts = []int{weightedSplit}
	}
	var styles []style
	for _, dim := range b.opts.dims {
		for _, byMax := range b.opts.sortKeys {
			for _, k := range counts {
				styles = append(styles, style{dim: dim, sortByMax: byMax, leftCount: k})
			}
		}
	}

	var best candidate
	found := false
	var firstErr error
	for _, st := range styles {
		cand, err := b.evaluate(ids, st)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !found {
			best, found = cand, true
			continue
		}
		if cand.points < best.points ||
			(cand.points == best.points && b.opts.tieBreak && cand.interProb < best.interProb-1e-12) {
			best = cand
		}
	}
	if !found {
		return candidate{}, fmt.Errorf("core: no valid partition for %d regions: %w", n, firstErr)
	}
	return best, nil
}
