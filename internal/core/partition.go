package core

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// style is one of the paper's partition styles: a dimension, a sort key
// (canonical leftmost vs rightmost coordinate of each region), and the
// number of regions assigned to the canonical-left subspace (N/2, or
// (N±1)/2 when N is odd) — four styles for even N, eight for odd.
type style struct {
	dim       Dimension
	sortByMax bool // sort regions by canonical rightmost (max) coordinate; else leftmost
	leftCount int
}

// candidate is an evaluated partition for one style (Algorithm 1's output
// plus the bookkeeping the builder needs).
type candidate struct {
	style       style
	left, right []int // region ids of the two subspaces
	polylines   []geom.Polyline
	points      int // partition size in points (2 points = 4 coordinates)
	cutLo       float64
	cutHi       float64
	// interProb is computed lazily (candProb): the band-area clip it needs
	// dominates build time, and it only matters when partition sizes tie.
	// Because it is a pure function of (sorted, dim, cutLo, cutHi), laziness
	// never changes which candidate wins, only when the work happens.
	interProb float64
	probed    bool
	sorted    []int32 // the style's sort order, kept for the lazy computation
	pruned    bool    // Algorithm 1 removed extent segments
	truncated bool    // some segment was cut at the CutLo line

	// entries is the raw (pre-prune) extent in (owner, edge) form; memoized
	// builds retain it for incremental extent patching. memo rides on the
	// winning candidate back to the node.
	entries []region.BoundaryEntry
	memo    *nodeMemo
}

// regionSpan caches a region's canonical extremes for both dimensions.
type regionSpan struct {
	id                     int
	minX, maxX, minY, maxY float64
}

func (r regionSpan) canonMin(d Dimension) float64 {
	if d == DimX {
		return -r.maxY
	}
	return r.minX
}

func (r regionSpan) canonMax(d Dimension) float64 {
	if d == DimX {
		return -r.minY
	}
	return r.maxX
}

// evaluate runs Algorithm 1 (PartitionSize) for one style over the current
// space, whose region ids arrive already sorted by the style's key (with
// ids breaking ties) — either propagated down from the root orders or
// re-sorted by the reference path.
func (b *builder) evaluate(sorted []int32, st style, sc *buildScratch) (candidate, error) {
	n := len(sorted)
	k := st.leftCount
	if k == weightedSplit {
		// Access-weighted build: cut at the weighted median of the sorted
		// order so both subspaces carry about half the query mass.
		var total float64
		for _, id := range sorted {
			total += b.opts.weights[id]
		}
		var acc float64
		k = n - 1
		for i, id := range sorted[:n-1] {
			acc += b.opts.weights[id]
			if acc >= total/2 {
				k = i + 1
				break
			}
		}
	}
	if k <= 0 || k >= n {
		return candidate{}, fmt.Errorf("core: left count %d out of range for %d regions", k, n)
	}
	left := make([]int, 0, k)
	right := make([]int, 0, n-k)
	for i, id := range sorted {
		if i < k {
			left = append(left, int(id))
		} else {
			right = append(right, int(id))
		}
	}

	// right_lmc: canonical leftmost coordinate of the righthand subspace;
	// left_rmc: canonical rightmost coordinate of the lefthand subspace.
	cutLo := math.Inf(1)
	for _, id := range sorted[k:] {
		cutLo = math.Min(cutLo, b.spans[id].canonMin(st.dim))
	}
	cutHi := math.Inf(-1)
	for _, id := range sorted[:k] {
		cutHi = math.Max(cutHi, b.spans[id].canonMax(st.dim))
	}

	// Construct the extent of the lefthand subspace and prune/truncate it
	// against the vertical line x = right_lmc (Algorithm 1, lines 4-16).
	var extent []geom.Segment
	var entries []region.BoundaryEntry
	if b.opts.memoize && b.opts.weights == nil {
		entries, extent = b.sub.BoundaryEntriesInto(left, &sc.bs, nil, nil)
	} else {
		extent = b.sub.BoundarySegmentsInto(left, &sc.bs, nil)
	}
	return b.finishCandidate(st, sorted, left, right, cutLo, cutHi, extent, entries)
}

// finishCandidate runs the tail of Algorithm 1 — prune and truncate the
// extent against the CutLo line, then chain the survivors into polylines —
// shared verbatim by the from-scratch evaluation and the incremental
// extent-patching path, so both produce bit-identical candidates.
func (b *builder) finishCandidate(st style, sorted []int32, left, right []int, cutLo, cutHi float64, extent []geom.Segment, entries []region.BoundaryEntry) (candidate, error) {
	n := len(sorted)
	var kept []geom.Segment
	var pruned, truncated bool
	const tol = geom.Eps
	for _, s := range extent {
		a, c := canon(st.dim, s.A), canon(st.dim, s.B)
		if a.X <= cutLo+tol && c.X <= cutLo+tol {
			pruned = true
			continue // entirely to the left of (or on) the line: prune
		}
		if b.opts.pruneParallel && a.Y == c.Y {
			// Exactly parallel to the query ray (an axis-aligned service-
			// border piece): the crossing test can never count it, so it is
			// dead weight in the partition.
			pruned = true
			continue
		}
		if a.X < cutLo-tol || c.X < cutLo-tol {
			truncated = true
			// Crosses the line: truncate, identifying right_lmc in the
			// partition (Section 4.4's LMC point).
			if a.X > c.X {
				a, c = c, a
			}
			t := (cutLo - a.X) / (c.X - a.X)
			a = geom.Lerp(a, c, t)
			a.X = cutLo
		}
		kept = append(kept, geom.Segment{A: a, B: c})
	}
	if len(kept) == 0 {
		if cutHi <= cutLo+tol {
			// The two subspaces have disjoint canonical extents: every
			// query resolves by the band test alone and the node stores no
			// partition at all.
			return candidate{
				style: st, left: left, right: right,
				cutLo: cutLo, cutHi: cutHi,
				sorted:  sorted,
				pruned:  true, // the whole extent fell left of the line
				entries: entries,
			}, nil
		}
		return candidate{}, fmt.Errorf("core: empty partition for style %+v over %d regions", st, n)
	}

	chains := geom.ChainSegments(kept)
	points := 0
	polylines := make([]geom.Polyline, len(chains))
	for i, ch := range chains {
		points += len(ch)
		real := make(geom.Polyline, len(ch))
		for j, p := range ch {
			real[j] = uncanon(st.dim, p)
		}
		polylines[i] = real
	}

	return candidate{
		style: st, left: left, right: right,
		polylines: polylines, points: points,
		cutLo: cutLo, cutHi: cutHi,
		sorted:    sorted,
		pruned:    pruned,
		truncated: truncated,
		entries:   entries,
	}, nil
}

// candProb memoizes the candidate's interlocking-band probability.
func (b *builder) candProb(c *candidate) float64 {
	if !c.probed {
		c.interProb = b.interProb(c.sorted, c.style.dim, c.cutLo, c.cutHi)
		c.probed = true
	}
	return c.interProb
}

// interProb returns the probability (under uniform queries) that a query in
// the current space falls in the interlocking band [cutLo, cutHi] shared by
// both subspaces. The ids arrive in the evaluated style's sort order, so
// the float accumulation order — and the resulting probability down to the
// last bit — is a pure function of the subdivision and style.
func (b *builder) interProb(ids []int32, d Dimension, cutLo, cutHi float64) float64 {
	if cutHi <= cutLo {
		return 0
	}
	var total, band float64
	for _, id := range ids {
		poly := b.sub.Regions[id].Poly
		total += poly.Area()
		cp := make(geom.Polygon, len(poly))
		for i, p := range poly {
			cp[i] = canon(d, p)
		}
		band += geom.ClipAreaVerticalBand(cp.EnsureCCW(), cutLo, cutHi)
	}
	if total <= 0 {
		return 0
	}
	return band / total
}

// weightedSplit is the leftCount sentinel selecting the weighted-median
// cut computed per style inside evaluate.
const weightedSplit = -1

// choosePartition evaluates every enabled style for the current space and
// picks the one with the smallest partition size, breaking ties by the
// lowest inter-prob (Section 4.2). Each style reads its pre-sorted id order
// straight from the subset (the reference path re-sorts instead).
func (b *builder) choosePartition(sub subset, sc *buildScratch) (candidate, error) {
	n := len(sub[b.keys[0]])
	half := n / 2
	counts := []int{half}
	if n%2 == 1 {
		counts = []int{(n + 1) / 2, (n - 1) / 2}
	}
	if b.opts.weights != nil {
		counts = []int{weightedSplit}
	}
	var styles []style
	for _, dim := range b.opts.dims {
		for _, byMax := range b.opts.sortKeys {
			for _, k := range counts {
				styles = append(styles, style{dim: dim, sortByMax: byMax, leftCount: k})
			}
		}
	}

	memoize := b.opts.memoize && b.opts.weights == nil && !b.opts.perNodeSort
	var memo *nodeMemo
	if memoize {
		memo = &nodeMemo{}
	}
	var best candidate
	found := false
	var firstErr error
	for _, st := range styles {
		sorted := sub[keyIdx(st.dim, st.sortByMax)]
		if b.opts.perNodeSort {
			sorted = b.resort(sub[b.keys[0]], st)
		}
		cand, err := b.evaluate(sorted, st, sc)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if memoize {
			memo.cands = append(memo.cands, b.memoCandOf(&cand))
		}
		if !found {
			best, found = cand, true
			continue
		}
		if cand.points < best.points ||
			(cand.points == best.points && b.opts.tieBreak && b.candProb(&cand) < b.candProb(&best)-1e-12) {
			best = cand
		}
	}
	if !found {
		return candidate{}, fmt.Errorf("core: no valid partition for %d regions: %w", n, firstErr)
	}
	if memoize {
		memo.winnerKey = int8(keyIdx(best.style.dim, best.style.sortByMax))
		best.memo = memo
	}
	return best, nil
}

// memoCandOf captures one evaluated style's rebuild memo: the raw extent
// entries and the (value, stable key) pair of the last left element — the
// split threshold — all renumbering-safe.
func (b *builder) memoCandOf(c *candidate) memoCand {
	k := c.style.leftCount
	kidx := keyIdx(c.style.dim, c.style.sortByMax)
	ll := c.sorted[k-1]
	return memoCand{
		key:         int8(kidx),
		pruned:      c.pruned,
		truncated:   c.truncated,
		leftCount:   int32(k),
		points:      int32(c.points),
		lastLeftVal: b.spans[ll].keyVal(kidx),
		lastLeftKey: int32(b.sub.Key(int(ll))),
		cutLo:       c.cutLo,
		cutHi:       c.cutHi,
		entries:     c.entries,
		polylines:   c.polylines,
	}
}

// resort re-derives a style's sorted order from scratch for the current
// space: the per-node reference path the propagated orders are verified
// against in TestPresortedOrdersMatchPerNodeSort.
func (b *builder) resort(ids []int32, st style) []int32 {
	k := keyIdx(st.dim, st.sortByMax)
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(x, y int) bool {
		vx, vy := b.spans[out[x]].keyVal(k), b.spans[out[y]].keyVal(k)
		if vx != vy {
			return vx < vy
		}
		return out[x] < out[y]
	})
	return out
}
