package core

import (
	"fmt"
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// gridSubdivision tiles the 100x100 area into rows x cols rectangles —
// every edge axis-parallel, exercising the parallel-prune and
// disjoint-extent (empty partition) code paths that Voronoi scopes never
// hit.
func gridSubdivision(t *testing.T, rows, cols int) *region.Subdivision {
	t.Helper()
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	var polys []geom.Polygon
	w, h := 100/float64(cols), 100/float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x0, y0 := float64(c)*w, float64(r)*h
			polys = append(polys, geom.Polygon{
				geom.Pt(x0, y0), geom.Pt(x0+w, y0), geom.Pt(x0+w, y0+h), geom.Pt(x0, y0+h),
			})
		}
	}
	sub, err := region.New(area, polys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestGridSubdivisions(t *testing.T) {
	for _, dims := range [][2]int{{1, 2}, {2, 2}, {3, 3}, {4, 7}, {10, 10}} {
		rows, cols := dims[0], dims[1]
		t.Run(fmt.Sprintf("%dx%d", rows, cols), func(t *testing.T) {
			sub := gridSubdivision(t, rows, cols)
			tree, err := Build(sub)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(rows*100 + cols)))
			for q := 0; q < 3000; q++ {
				p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				got := tree.Locate(p)
				if got < 0 || !sub.Regions[got].Poly.Contains(p) {
					t.Fatalf("query %v: region %d (brute %d)", p, got, sub.Locate(p))
				}
			}
			// Paged + codec agreement on the axis-parallel case.
			paged, err := tree.Page(wire.DTreeParams(64))
			if err != nil {
				t.Fatal(err)
			}
			packets, err := paged.EncodePackets()
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 1000; q++ {
				p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				want, _ := paged.Locate(p)
				got, _, err := ClientLocate(packets, 64, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want && !nearRegionBoundary(tree, p, got, 0.01) {
					t.Fatalf("codec %d vs paged %d at %v", got, want, p)
				}
			}
		})
	}
}

func TestGridPartitionsAreCheap(t *testing.T) {
	// On an aligned grid the partitions should be tiny: straight cuts with
	// parallel-pruned borders, often disjoint extents with no partition at
	// all. Sanity-bound the total points.
	sub := gridSubdivision(t, 8, 8)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.PartitionPoints > 6*st.Nodes {
		t.Errorf("grid partitions average %.1f points per node, expected tiny",
			float64(st.PartitionPoints)/float64(st.Nodes))
	}
}

func TestGridWindowQueries(t *testing.T) {
	sub := gridSubdivision(t, 5, 5)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	// A window exactly matching one cell must return it (plus neighbors
	// touched along its boundary).
	w := geom.Rect{MinX: 20, MinY: 40, MaxX: 40, MaxY: 60}
	got := tree.SearchRect(w)
	want := sub.Locate(geom.Pt(30, 50))
	found := false
	for _, id := range got {
		if id == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("cell-aligned window %v missed its cell %d: %v", w, want, got)
	}
	if len(got) > 9 {
		t.Fatalf("cell-aligned window returned %d regions", len(got))
	}
}
