package core

import (
	"math"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Memoized incremental partition search. A from-scratch D-tree build spends
// its time in choosePartition: per style, an O(subset) boundary extraction,
// pruning, and chaining. The subtree-splice rebuild (incremental.go) avoids
// that work below the dirty paths, but every node ON a dirty path still
// re-ran the full search — and the top path nodes are the whole diagram, so
// a small batch still cost a constant fraction of a cold build.
//
// The memo machinery makes a dirty path node cost proportional to its
// boundary and its dirty set instead of its subset:
//
//   - every built node retains, per evaluated style, the raw (pre-prune)
//     extent of its canonical-left half as (owner stable key, ring edge)
//     entries plus the (value, key) pair of the last left element — the
//     split threshold (nodeMemo / memoCand);
//   - a rebuild walks the old tree in correspondence with the new subsets,
//     tracking exactly how each node's region set differs from the old leaf
//     set (geometry-changed, added, removed). Membership of any region in a
//     style's old or new left half is a single (value, id) comparison
//     against the thresholds, because the sort orders are sorted by exactly
//     that pair;
//   - a style's new extent is the cached extent minus entries owned by or
//     facing an affected region, plus freshly enumerated edges of affected
//     members of the new left half, plus re-surfaced edges of clean members
//     whose dirty neighbor left the half — merged back into extraction
//     order, which is (left-rank of owner, ring edge);
//   - the tail of Algorithm 1 (prune, truncate, chain) then runs unchanged
//     over the patched extent, so candidates — and the chosen partition —
//     are bit-identical to the from-scratch search. Ties still recompute
//     the interlocking probability with the exact same summation fold.
//
// Any node where the bookkeeping does not apply (no memo, winner style
// changed, dirty set comparable to the subset) falls back to the plain
// partition search; the fallback changes cost only, never bytes.

// nodeMemo is the partition-search state a memoized build retains per node.
type nodeMemo struct {
	winnerKey int8 // keyIdx of the winning style
	cands     []memoCand
}

// memoCand is one evaluated style's memo. All region references are stable
// keys, so memos survive renumbering and spliced subtrees share them.
//
// Beyond the extent, the memo retains the finished candidate — partition
// size, prune/truncate flags, and the chained polylines. When a patch pass
// drops no cached entry, adds none, and leaves both cut values unchanged,
// the new evaluation's inputs to the Algorithm 1 tail (segments, cuts, dim)
// are identical to the old one's — every surviving owner is clean, so its
// ring, and thus every segment, is unchanged — and the finished candidate
// is reused outright, skipping the prune walk, the chaining, and their
// allocations. On the dirty path most styles at most nodes patch to an
// unchanged extent (the handful of moved regions rarely sits on a given
// half's boundary), so this is the common case, not the exception.
type memoCand struct {
	key         int8 // keyIdx(dim, sortByMax)
	pruned      bool // finished-candidate flags of this evaluation
	truncated   bool
	leftCount   int32 // k of this evaluation
	points      int32 // finished partition size
	lastLeftVal float64
	lastLeftKey int32 // stable key of sorted[k-1]
	cutLo       float64
	cutHi       float64
	entries     []region.BoundaryEntry
	polylines   []geom.Polyline // shared with the candidate; immutable
}

// find returns the memo entry for a style key with the closest left count,
// or nil. Old and new left counts differ by at most one (region-count
// parity), so "closest" is unambiguous.
func (m *nodeMemo) find(key int8, k int) *memoCand {
	var best *memoCand
	for i := range m.cands {
		mc := &m.cands[i]
		if mc.key != key {
			continue
		}
		if best == nil || absDiff(mc.leftCount, int32(k)) < absDiff(best.leftCount, int32(k)) {
			best = mc
		}
	}
	return best
}

func absDiff(a, b int32) int32 {
	if a > b {
		return a - b
	}
	return b - a
}

// aMember is one region whose relation to a style's left half needs
// reconciliation: geometry changed, inserted, removed, or membership
// flipped.
type aMember struct {
	key    int32
	newIdx int32 // -1 when removed this generation
	was    bool  // in the old left half
	is     bool  // in the new left half
}

// fastScratch holds the reusable per-rebuild state of the memoized path.
type fastScratch struct {
	dirtyMark []int32 // by stable key: changed/added/removed at the current node
	subMark   []int32 // by stable key: member of the current node's (new) subset
	addMark   []int32 // by stable key: added to the current node's subset
	dEpoch    int32
	flipMark  []int32 // by stable key: membership flips of the current style
	flEpoch   int32
	seenMark  []int32 // by stable key: neighbor dedup inside recovery scans
	seenEpoch int32

	ams   []aMember
	flips []aMember
	ents  []region.BoundaryEntry
	segs  []geom.Segment
}

// verifyPatchedHook, when set by tests, cross-checks every patched candidate
// against the full evaluation of the same style.
var verifyPatchedHook func(r *rebuilder, memo *nodeMemo, sorted []int32, st style, sc *buildScratch, cand candidate, err error, changed, added, removedKeys []int32)

// errPatchBail signals that a style's extent could not be patched and must
// be evaluated from scratch; it never escapes the rebuilder.
type patchBail struct{}

func (patchBail) Error() string { return "core: extent patch bailed" }

// fastSplit mirrors rebuilder.split with old-tree correspondence: old is
// the previous-generation node covering this subset's regions, and changed
// (geometry differs), added (not under old), removed (stable keys under old
// but gone from the subset) describe exactly how the sets differ. A clean
// corresponded subtree splices without any verification walk; a dirty path
// node re-derives its candidates by patching old's memo.
func (r *rebuilder) fastSplit(sub subset, old *Node, changed, added, removedKeys []int32, sc *buildScratch) (ChildRef, error) {
	ids := sub[r.b.keys[0]]
	if len(ids) == 1 {
		return ChildRef{Data: int(ids[0])}, nil
	}
	if len(changed)+len(added)+len(removedKeys) == 0 && old != nil && old.NumRegions == len(ids) {
		// Corresponded and clean: the previous build is the build.
		return r.copySubtree(ChildRef{Node: old}), nil
	}
	if old == nil || old.memo == nil ||
		old.NumRegions != len(ids)-len(added)+len(removedKeys) ||
		4*(len(changed)+len(added)+len(removedKeys)) > len(ids) {
		return r.freshSplit(sub, sc)
	}
	// Mark the affected stable keys and the subset membership once for this
	// node; every style's walks and entry patches test against these marks.
	// A region is a member of the old node's leaf set iff it is a non-added
	// member of the new subset or was removed from it this generation —
	// neighbors outside both sets always count as "outside the left half".
	fs := &r.fast
	fs.dEpoch++
	for _, id := range ids {
		fs.subMark[r.newKeyOf[id]] = fs.dEpoch
	}
	for _, x := range changed {
		fs.dirtyMark[r.newKeyOf[x]] = fs.dEpoch
	}
	for _, x := range added {
		k := r.newKeyOf[x]
		fs.dirtyMark[k] = fs.dEpoch
		fs.addMark[k] = fs.dEpoch
	}
	for _, k := range removedKeys {
		fs.dirtyMark[k] = fs.dEpoch
	}

	n := len(ids)
	b := r.b
	half := n / 2
	counts := []int{half}
	if n%2 == 1 {
		counts = []int{(n + 1) / 2, (n - 1) / 2}
	}
	memo := &nodeMemo{}
	var best candidate
	found := false
	var firstErr error
	for _, dim := range b.opts.dims {
		for _, byMax := range b.opts.sortKeys {
			for _, k := range counts {
				st := style{dim: dim, sortByMax: byMax, leftCount: k}
				sorted := sub[keyIdx(dim, byMax)]
				cand, err := r.patchEvaluate(sorted, st, old.memo, changed, added, removedKeys, sc)
				if verifyPatchedHook != nil {
					verifyPatchedHook(r, old.memo, sorted, st, sc, cand, err, changed, added, removedKeys)
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				memo.cands = append(memo.cands, b.memoCandOf(&cand))
				if !found {
					best, found = cand, true
					continue
				}
				if cand.points < best.points ||
					(cand.points == best.points && b.opts.tieBreak && b.candProb(&cand) < b.candProb(&best)-1e-12) {
					best = cand
				}
			}
		}
	}
	if !found {
		return ChildRef{}, firstErr
	}
	memo.winnerKey = int8(keyIdx(best.style.dim, best.style.sortByMax))

	k := best.style.leftCount
	sortedW := sub[keyIdx(best.style.dim, best.style.sortByMax)]
	if best.left == nil {
		best.left = make([]int, 0, k)
		for _, id := range sortedW[:k] {
			best.left = append(best.left, int(id))
		}
	}
	leftSub, rightSub := b.partitionSubset(sub, best.left, sc)

	var left, right ChildRef
	var lerr, rerr error
	if route, ok := r.routeChildren(sortedW, k, old, memo.winnerKey, changed, added, removedKeys); ok {
		left, lerr = r.fastSplit(leftSub, nodeOf(old.Left), route.chL, route.adL, route.rmL, sc)
		if lerr == nil {
			right, rerr = r.fastSplit(rightSub, nodeOf(old.Right), route.chR, route.adR, route.rmR, sc)
		}
	} else {
		left, lerr = r.freshSplit(leftSub, sc)
		if lerr == nil {
			right, rerr = r.freshSplit(rightSub, sc)
		}
	}
	if lerr != nil {
		return ChildRef{}, lerr
	}
	if rerr != nil {
		return ChildRef{}, rerr
	}
	return ChildRef{Node: &Node{
		Dim:        best.style.dim,
		Polylines:  best.polylines,
		CutLo:      best.cutLo,
		CutHi:      best.cutHi,
		Left:       left,
		Right:      right,
		Pruned:     best.pruned,
		Truncated:  best.truncated,
		NumRegions: n,
		InterProb:  best.interProb,
		memo:       memo,
	}}, nil
}

// freshSplit handles a node with no usable correspondence without giving up
// on correspondence below it. An exact clean splice is tried first, then
// findNear searches the previous generation for a node whose leaf set
// nearly matches this subset and re-enters the corresponded walk there;
// only when both miss does the node pay a plain partition search — and its
// children get the same chances. The distinction from rebuilder.split
// matters after a winner flip: the flipped node's halves match nothing in
// the old tree, but its grandchildren — the quarters of the transposed
// split order — nearly coincide with old quarters, and re-anchoring there
// turns a subtree-sized rebuild into two boundary-band patches.
func (r *rebuilder) freshSplit(sub subset, sc *buildScratch) (ChildRef, error) {
	ids := sub[r.b.keys[0]]
	if len(ids) == 1 {
		return ChildRef{Data: int(ids[0])}, nil
	}
	if old := r.findSplice(ids); old != nil {
		return r.copySubtree(ChildRef{Node: old}), nil
	}
	if alt, ch, ad, rm, ok := r.findNear(ids); ok {
		return r.fastSplit(sub, alt, ch, ad, rm, sc)
	}
	cand, err := r.b.choosePartition(sub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	leftSub, rightSub := r.b.partitionSubset(sub, cand.left, sc)
	left, err := r.freshSplit(leftSub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	right, err := r.freshSplit(rightSub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	return ChildRef{Node: &Node{
		Dim:        cand.style.dim,
		Polylines:  cand.polylines,
		CutLo:      cand.cutLo,
		CutHi:      cand.cutHi,
		Left:       left,
		Right:      right,
		Pruned:     cand.pruned,
		Truncated:  cand.truncated,
		NumRegions: len(ids),
		InterProb:  cand.interProb,
		memo:       cand.memo,
	}}, nil
}

// findNearMin bounds the subset size worth probing: below it a plain
// evaluation costs little and near-matches mostly fall to exact splices.
const findNearMin = 64

// findNear searches the previous generation for a node whose leaf set is
// within the corresponded walk's too-dirty budget of ids, returning it with
// the difference lists that re-anchor fastSplit there. Candidates come from
// walking up the old tree from a few sampled members' leaves to the
// ancestors of comparable cardinality; each is verified with one O(subset)
// mark-and-diff, which bounds the cost of a miss by a constant fraction of
// the plain search the caller falls back to.
func (r *rebuilder) findNear(ids []int32) (alt *Node, changed, added, removedKeys []int32, ok bool) {
	n := len(ids)
	if n < findNearMin {
		return nil, nil, nil, nil, false
	}
	inc := r.inc
	fs := &r.fast
	fs.dEpoch++
	for _, id := range ids {
		fs.subMark[r.newKeyOf[id]] = fs.dEpoch
	}
	var cands []*Node
	sample := func(id int32) {
		k := r.newKeyOf[id]
		if int(k) >= len(inc.leafParent) {
			return
		}
		nid := inc.leafParent[k]
		for nid >= 0 {
			node := inc.tree.Nodes[nid]
			m := node.NumRegions
			d := m - n
			if d < 0 {
				d = -d
			}
			if 4*d <= n && node.memo != nil {
				dup := false
				for _, c := range cands {
					if c == node {
						dup = true
						break
					}
				}
				if !dup {
					cands = append(cands, node)
				}
			}
			if m > n+n/4 {
				break
			}
			nid = inc.parent[nid]
		}
	}
	sample(ids[0])
	sample(ids[n/2])
	sample(ids[n-1])
	for _, old := range cands {
		if ch, ad, rm, ok := r.diffAgainst(old, ids); ok {
			return old, ch, ad, rm, true
		}
	}
	return nil, nil, nil, nil, false
}

// diffAgainst computes the difference lists between an old node's leaf set
// and the new subset (whose keys the caller marked in subMark), rejecting
// pairs beyond the too-dirty budget fastSplit would refuse anyway.
func (r *rebuilder) diffAgainst(old *Node, ids []int32) (changed, added, removedKeys []int32, ok bool) {
	n := len(ids)
	r.oldEpoch++
	removedKeys = r.collectRemoved(ChildRef{Node: old}, nil)
	if 4*len(removedKeys) > n {
		return nil, nil, nil, false
	}
	for _, id := range ids {
		k := r.newKeyOf[id]
		if r.oldMark[k] == r.oldEpoch {
			if r.dirty[k] {
				changed = append(changed, id)
			}
		} else {
			added = append(added, id)
		}
	}
	if 4*(len(changed)+len(added)+len(removedKeys)) > n {
		return nil, nil, nil, false
	}
	return changed, added, removedKeys, true
}

// collectRemoved marks the old subtree's leaf keys (like collectOld) while
// collecting those absent from the subMark-ed new subset.
func (r *rebuilder) collectRemoved(c ChildRef, out []int32) []int32 {
	if c.IsData() {
		k := r.inc.keyOfOld[c.Data]
		r.oldMark[k] = r.oldEpoch
		if r.fast.subMark[k] != r.fast.dEpoch {
			out = append(out, k)
		}
		return out
	}
	out = r.collectRemoved(c.Node.Left, out)
	return r.collectRemoved(c.Node.Right, out)
}

func nodeOf(c ChildRef) *Node {
	if c.IsData() {
		return nil
	}
	return c.Node
}

func sizeOf(c ChildRef) int {
	if c.IsData() {
		return 1
	}
	return c.Node.NumRegions
}

// childRoute carries the per-child difference lists of a corresponded cut.
type childRoute struct {
	chL, adL, chR, adR []int32
	rmL, rmR           []int32
}

// routeChildren distributes the node's difference lists onto the winner's
// two halves by pairing the new left half with the old left subtree and the
// new right half with the old right subtree. Membership in the old halves is
// a (value, old index) comparison against the OLD winner's split threshold —
// valid for any member of the old leaf set, whatever style wins now — so
// correspondence survives winner flips: a same-dimension flip (min-sort vs
// max-sort) moves only a few regions between halves and the children still
// patch, while a cross-dimension flip yields half-sized difference lists
// that trip the children's too-dirty guard into the plain rebuild. Clean
// regions whose membership flipped are found by scanning the winner's order
// (they are not contiguous runs when the sort key changed).
func (r *rebuilder) routeChildren(sorted []int32, k int, old *Node, winnerKey int8, changed, added, removedKeys []int32) (childRoute, bool) {
	// The old winner's own left count is the old left subtree's size; the
	// routing threshold must be that exact evaluation's.
	oldLeftSize := int32(sizeOf(old.Left))
	var mc *memoCand
	for i := range old.memo.cands {
		c := &old.memo.cands[i]
		if c.key == old.memo.winnerKey && c.leftCount == oldLeftSize {
			mc = c
			break
		}
	}
	if mc == nil {
		return childRoute{}, false
	}
	oldLL := r.inc.lookupOld(mc.lastLeftKey)
	if oldLL < 0 {
		return childRoute{}, false
	}
	kidx := int(winnerKey)
	oldKidx := int(old.memo.winnerKey)
	llID := sorted[k-1]
	llVal := r.b.spans[llID].keyVal(kidx)
	inLNew := func(idx int32) bool {
		v := r.b.spans[idx].keyVal(kidx)
		return v < llVal || (v == llVal && idx <= llID)
	}
	inLOld := func(key int32) bool {
		oi := r.inc.lookupOld(key)
		if oi < 0 {
			return false
		}
		v := r.inc.spans[oi].keyVal(oldKidx)
		return v < mc.lastLeftVal || (v == mc.lastLeftVal && oi <= oldLL)
	}

	var rt childRoute
	for _, x := range changed {
		key := r.newKeyOf[x]
		is, was := inLNew(x), inLOld(key)
		switch {
		case was && is:
			rt.chL = append(rt.chL, x)
		case !was && !is:
			rt.chR = append(rt.chR, x)
		case was && !is:
			rt.rmL = append(rt.rmL, key)
			rt.adR = append(rt.adR, x)
		default:
			rt.adL = append(rt.adL, x)
			rt.rmR = append(rt.rmR, key)
		}
	}
	for _, x := range added {
		if inLNew(x) {
			rt.adL = append(rt.adL, x)
		} else {
			rt.adR = append(rt.adR, x)
		}
	}
	for _, key := range removedKeys {
		if inLOld(key) {
			rt.rmL = append(rt.rmL, key)
		} else {
			rt.rmR = append(rt.rmR, key)
		}
	}
	// Clean membership flips: every clean region routed to the half the old
	// threshold disagrees with. The node already costs O(subset) in mark
	// setup, so the full scan adds a constant factor, not a new term.
	fs := &r.fast
	for p, id := range sorted {
		key := r.newKeyOf[id]
		if fs.dirtyMark[key] == fs.dEpoch {
			continue
		}
		was := inLOld(key)
		if is := p < k; was == is {
			continue
		} else if is {
			rt.adL = append(rt.adL, id)
			rt.rmR = append(rt.rmR, key)
		} else {
			rt.rmL = append(rt.rmL, key)
			rt.adR = append(rt.adR, id)
		}
	}
	return rt, true
}

// patchEvaluate produces one style's candidate at a corresponded node by
// patching the old memo's extent, falling back to the full evaluation when
// the style has no usable memo or the difference is too large. The result
// is bit-identical to evaluate over the same inputs.
func (r *rebuilder) patchEvaluate(sorted []int32, st style, memo *nodeMemo, changed, added, removedKeys []int32, sc *buildScratch) (candidate, error) {
	cand, err := r.tryPatch(sorted, st, memo, changed, added, removedKeys)
	if _, bail := err.(patchBail); bail {
		return r.b.evaluate(sorted, st, sc)
	}
	return cand, err
}

func (r *rebuilder) tryPatch(sorted []int32, st style, memo *nodeMemo, changed, added, removedKeys []int32) (candidate, error) {
	b := r.b
	n := len(sorted)
	k := st.leftCount
	kidx := keyIdx(st.dim, st.sortByMax)
	mc := memo.find(int8(kidx), k)
	if mc == nil {
		return candidate{}, patchBail{}
	}
	oldLL := r.inc.lookupOld(mc.lastLeftKey)
	if oldLL < 0 {
		return candidate{}, patchBail{}
	}
	llID := sorted[k-1]
	llVal := b.spans[llID].keyVal(kidx)
	inLNew := func(idx int32) bool {
		v := b.spans[idx].keyVal(kidx)
		return v < llVal || (v == llVal && idx <= llID)
	}
	lookupNew := func(key int32) int32 {
		if int(key) >= len(r.newIdxOf) {
			return -1
		}
		return r.newIdxOf[key]
	}
	fs := &r.fast
	inLNewKey := func(key int32) bool {
		if fs.subMark[key] != fs.dEpoch {
			return false // not in this node's subset at all
		}
		ni := lookupNew(key)
		return ni >= 0 && inLNew(ni)
	}
	inLOld := func(key int32) bool {
		// Old-subset membership first: a non-added member of the new subset,
		// or a key removed from this node's subset this generation.
		if fs.subMark[key] == fs.dEpoch {
			if fs.addMark[key] == fs.dEpoch {
				return false
			}
		} else if fs.dirtyMark[key] != fs.dEpoch {
			return false
		}
		oi := r.inc.lookupOld(key)
		if oi < 0 {
			return false
		}
		v := r.inc.spans[oi].keyVal(kidx)
		return v < mc.lastLeftVal || (v == mc.lastLeftVal && oi <= oldLL)
	}

	// Assemble the affected members of this style's halves.
	ams := fs.ams[:0]
	for _, x := range changed {
		key := r.newKeyOf[x]
		was, is := inLOld(key), inLNew(x)
		if was || is {
			ams = append(ams, aMember{key: key, newIdx: x, was: was, is: is})
		}
	}
	for _, x := range added {
		if inLNew(x) {
			ams = append(ams, aMember{key: r.newKeyOf[x], newIdx: x, was: false, is: true})
		}
	}
	for _, key := range removedKeys {
		if inLOld(key) {
			// A key removed from this node's subset may still exist in the
			// subdivision (it crossed to a sibling subtree): keep its new
			// index so the recovery scan below can walk its ring.
			ams = append(ams, aMember{key: key, newIdx: lookupNew(key), was: true, is: false})
		}
	}
	fs.flEpoch++
	flips := fs.flips[:0]
	for p := k - 1; p >= 0; p-- {
		id := sorted[p]
		key := r.newKeyOf[id]
		if fs.dirtyMark[key] == fs.dEpoch {
			continue
		}
		if inLOld(key) {
			break
		}
		flips = append(flips, aMember{key: key, newIdx: id, was: false, is: true})
		fs.flipMark[key] = fs.flEpoch
	}
	for p := k; p < n; p++ {
		id := sorted[p]
		key := r.newKeyOf[id]
		if fs.dirtyMark[key] == fs.dEpoch {
			continue
		}
		if !inLOld(key) {
			break
		}
		flips = append(flips, aMember{key: key, newIdx: id, was: true, is: false})
		fs.flipMark[key] = fs.flEpoch
	}
	ams = append(ams, flips...)
	fs.ams, fs.flips = ams, flips
	if 4*len(ams) > n {
		return candidate{}, patchBail{}
	}
	marked := func(key int32) bool {
		return fs.dirtyMark[key] == fs.dEpoch || fs.flipMark[key] == fs.flEpoch
	}

	// Patch the extent: keep cached entries not touching an affected
	// region (re-testing those facing one), then add the affected members'
	// own surviving edges and the re-surfaced edges of their clean
	// neighbors, and restore extraction order.
	ents := fs.ents[:0]
	for _, e := range mc.entries {
		if marked(e.Owner) {
			continue
		}
		oi := lookupNew(e.Owner)
		if oi < 0 {
			return candidate{}, patchBail{}
		}
		nbrs := b.sub.NbrKeys(int(oi))
		if int(e.Edge) >= len(nbrs) {
			return candidate{}, patchBail{}
		}
		if nk := nbrs[e.Edge]; nk >= 0 && marked(nk) && inLNewKey(nk) {
			continue
		}
		ents = append(ents, e)
	}
	patchedFrom := len(ents)
	for _, a := range ams {
		if a.is {
			nbrs := b.sub.NbrKeys(int(a.newIdx))
			for j, nk := range nbrs {
				if nk >= 0 && inLNewKey(nk) {
					continue
				}
				ents = append(ents, region.BoundaryEntry{Owner: a.key, Edge: int32(j)})
			}
			continue
		}
		if !a.was || a.newIdx < 0 {
			continue
		}
		// The member left the half: edges its clean in-half neighbors share
		// with it stop cancelling and re-surface, owned by the neighbor.
		fs.seenEpoch++
		for _, nk := range b.sub.NbrKeys(int(a.newIdx)) {
			if nk < 0 || marked(nk) || fs.seenMark[nk] == fs.seenEpoch {
				continue
			}
			fs.seenMark[nk] = fs.seenEpoch
			if !inLNewKey(nk) {
				continue
			}
			ci := lookupNew(nk)
			for j2, nk2 := range b.sub.NbrKeys(int(ci)) {
				if nk2 == a.key {
					ents = append(ents, region.BoundaryEntry{Owner: nk, Edge: int32(j2)})
				}
			}
		}
	}
	cutLo := math.Inf(1)
	for _, id := range sorted[k:] {
		cutLo = math.Min(cutLo, b.spans[id].canonMin(st.dim))
	}
	cutHi := math.Inf(-1)
	for _, id := range sorted[:k] {
		cutHi = math.Max(cutHi, b.spans[id].canonMax(st.dim))
	}

	// Unchanged evaluation: no cached entry dropped (the head is a filtered
	// subsequence of the memo, so equal lengths mean identity), none added,
	// and the cuts and left count match — reuse the finished candidate.
	if patchedFrom == len(ents) && patchedFrom == len(mc.entries) &&
		mc.leftCount == int32(k) && cutLo == mc.cutLo && cutHi == mc.cutHi {
		fs.ents = ents[:0]
		return candidate{
			style: st, polylines: mc.polylines, points: int(mc.points),
			cutLo: cutLo, cutHi: cutHi,
			sorted:    sorted,
			pruned:    mc.pruned,
			truncated: mc.truncated,
			entries:   mc.entries,
		}, nil
	}

	// Surviving cached entries are already in extraction order (clean
	// owners keep their relative rank); sort the patched tail and merge.
	tail := ents[patchedFrom:]
	entLess := func(a, b region.BoundaryEntry) bool {
		ai, bi := lookupNew(a.Owner), lookupNew(b.Owner)
		av, bv := r.b.spans[ai].keyVal(kidx), r.b.spans[bi].keyVal(kidx)
		if av != bv {
			return av < bv
		}
		if ai != bi {
			return ai < bi
		}
		return a.Edge < b.Edge
	}
	sort.Slice(tail, func(x, y int) bool { return entLess(tail[x], tail[y]) })
	merged := make([]region.BoundaryEntry, 0, len(ents))
	head := ents[:patchedFrom]
	hi, ti := 0, 0
	for hi < len(head) && ti < len(tail) {
		if entLess(tail[ti], head[hi]) {
			merged = append(merged, tail[ti])
			ti++
		} else {
			merged = append(merged, head[hi])
			hi++
		}
	}
	merged = append(merged, head[hi:]...)
	merged = append(merged, tail[ti:]...)
	fs.ents = ents[:0]

	segs := fs.segs[:0]
	for _, e := range merged {
		segs = append(segs, b.sub.EdgeSegment(int(lookupNew(e.Owner)), int(e.Edge)))
	}
	fs.segs = segs[:0]
	return b.finishCandidate(st, sorted, nil, nil, cutLo, cutHi, segs, merged)
}
