package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/voronoi"
)

func TestLocateMatchesBruteForceAcrossDatasets(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{{10, 1}, {60, 2}, {250, 3}, {500, 4}} {
		tree, sites, area := buildVoronoiTree(t, tc.n, tc.seed)
		rng := rand.New(rand.NewSource(tc.seed + 100))
		for i := 0; i < 4000; i++ {
			p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
			got := tree.Locate(p)
			want := voronoi.NearestSite(sites, p)
			if got != want && !tree.Sub.Regions[got].Poly.Contains(p) {
				t.Fatalf("n=%d: query %v got %d want %d", tc.n, p, got, want)
			}
		}
	}
}

func TestLocateQuickProperty(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 150, 31)
	f := func(u, v float64) bool {
		// Map arbitrary floats into the area.
		x := area.MinX + mod1(u)*area.W()
		y := area.MinY + mod1(v)*area.H()
		p := geom.Pt(x, y)
		id := tree.Locate(p)
		return id >= 0 && id < tree.Sub.N() && tree.Sub.Regions[id].Poly.Contains(p)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mod1(v float64) float64 {
	if v < 0 {
		v = -v
	}
	v -= float64(int64(v))
	if v != v || v < 0 || v >= 1 { // NaN or odd cases
		return 0.5
	}
	return v
}

func TestLocatePathVisitsLogNodes(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 300, 33)
	maxDepth := tree.Height()
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 2000; i++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		id, path := tree.LocatePath(p)
		if got := tree.Locate(p); got != id {
			t.Fatalf("LocatePath and Locate disagree: %d vs %d", id, got)
		}
		if len(path) > maxDepth {
			t.Fatalf("path length %d exceeds height %d", len(path), maxDepth)
		}
		if len(path) == 0 {
			t.Fatal("empty path on a multi-region tree")
		}
		if path[0] != tree.Root {
			t.Fatal("path must start at the root")
		}
	}
}

func TestQueriesOnSitesResolveToOwnRegion(t *testing.T) {
	tree, sites, _ := buildVoronoiTree(t, 200, 35)
	for i, s := range sites {
		if got := tree.Locate(s); got != i {
			t.Errorf("site %d located in region %d", i, got)
		}
	}
}

func TestRunningExampleQueries(t *testing.T) {
	sub := testutil.RunningExample(t)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(10, 80), 0}, // deep in P1
		{geom.Pt(80, 80), 1}, // deep in P2
		{geom.Pt(20, 20), 2}, // deep in P3
		{geom.Pt(85, 15), 3}, // deep in P4
		{geom.Pt(35, 90), 0}, // near the P1/P2 divider (x=36.25 at y=90), P1 side
		{geom.Pt(38, 90), 1}, // near the divider, P2 side
		{geom.Pt(52, 48), 2}, // in the interlocking band of the root divider
		{geom.Pt(62, 52), 1}, // above the divider near v4
	}
	for _, c := range cases {
		if got := tree.Locate(c.p); got != c.want {
			t.Errorf("query %v: got %d want %d", c.p, got, c.want)
		}
	}
}
