package core

import (
	"fmt"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

// Paged is a D-tree allocated into fixed-size packets with the paper's
// top-down paging (Algorithm 3).
type Paged struct {
	Tree   *Tree
	Params wire.Params
	Layout *wire.Layout
}

// Page allocates the tree's nodes into packets. Nodes are placed in
// breadth-first order: a node shares its parent's packet when it fits, and
// leaf-level packets are greedily merged afterwards.
func (t *Tree) Page(params wire.Params) (*Paged, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if t.Root == nil {
		return &Paged{Tree: t, Params: params, Layout: wire.EmptyLayout(params.PacketCapacity)}, nil
	}
	specs := make([]wire.NodeSpec, 0, len(t.Nodes))
	parentOf := make([]int, len(t.Nodes))
	parentOf[t.Root.ID] = -1
	for _, n := range t.Nodes { // already breadth-first
		var children []int
		leaf := true
		for _, c := range []ChildRef{n.Left, n.Right} {
			if !c.IsData() {
				children = append(children, c.Node.ID)
				parentOf[c.Node.ID] = n.ID
				leaf = false
			}
		}
		specs = append(specs, wire.NodeSpec{
			ID:       n.ID,
			Size:     NodeSize(n, params),
			Parent:   parentOf[n.ID],
			Children: children,
			Leaf:     leaf,
		})
	}
	layout, err := wire.TopDown(specs, params.PacketCapacity)
	if err != nil {
		return nil, err
	}
	if err := layout.Validate(specs); err != nil {
		return nil, fmt.Errorf("core: paging produced invalid layout: %w", err)
	}
	return &Paged{Tree: t, Params: params, Layout: layout}, nil
}

// PageGreedy allocates the tree's nodes into packets sequentially in
// breadth-first order without the parent-affinity placement and leaf
// merging of Algorithm 3. It exists for the paging ablation in DESIGN.md.
func (t *Tree) PageGreedy(params wire.Params) (*Paged, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if t.Root == nil {
		return &Paged{Tree: t, Params: params, Layout: wire.EmptyLayout(params.PacketCapacity)}, nil
	}
	specs := make([]wire.NodeSpec, 0, len(t.Nodes))
	for _, n := range t.Nodes {
		specs = append(specs, wire.NodeSpec{
			ID: n.ID, Size: NodeSize(n, params), Leaf: n.Left.IsData() && n.Right.IsData(),
		})
	}
	layout, err := wire.Greedy(specs, params.PacketCapacity)
	if err != nil {
		return nil, err
	}
	if err := layout.Validate(specs); err != nil {
		return nil, fmt.Errorf("core: greedy paging produced invalid layout: %w", err)
	}
	return &Paged{Tree: t, Params: params, Layout: layout}, nil
}

// Locate answers a point query over the paged tree and returns the region
// id together with the packet offsets the client downloads, in access
// order. For a node spanning several packets, the first packet carries the
// pointers, the band limits (RMC/LMC) and the head of the partition, so a
// query outside the interlocking band descends after one packet; a query
// inside the band must read the node's remaining packets to count ray
// crossings (Section 4.4).
func (pg *Paged) Locate(p geom.Point) (int, []int) {
	return pg.LocateInto(p, nil)
}

// LocateInto is Locate appending the downloaded packet offsets into trace
// (reset to length zero first), so Monte Carlo drivers can reuse one
// buffer across millions of queries without per-query allocation. The
// returned slice aliases trace's backing array when capacity suffices.
func (pg *Paged) LocateInto(p geom.Point, trace []int) (int, []int) {
	trace = trace[:0]
	if pg.Tree.Root == nil {
		return 0, trace
	}
	ref := ChildRef{Node: pg.Tree.Root}
	for !ref.IsData() {
		n := ref.Node
		packets := pg.Layout.PacketsOf(n.ID)
		trace = wire.AppendTraceOnce(trace, int(packets[0]))
		cx := canonX(n.Dim, p)
		switch {
		case cx <= n.CutLo:
			ref = n.Left
		case cx >= n.CutHi:
			ref = n.Right
		default:
			// Inside the interlocking band: the whole partition is needed.
			for _, pk := range packets[1:] {
				trace = wire.AppendTraceOnce(trace, int(pk))
			}
			if n.rayParityLeft(p) {
				ref = n.Left
			} else {
				ref = n.Right
			}
		}
	}
	return ref.Data, trace
}

// LocateWithoutEarlyTermination answers a point query reading every packet
// of every visited node, disabling the RMC/LMC first-packet shortcut of
// Section 4.4 (ablation).
func (pg *Paged) LocateWithoutEarlyTermination(p geom.Point) (int, []int) {
	return pg.LocateWithoutEarlyTerminationInto(p, nil)
}

// LocateWithoutEarlyTerminationInto is the buffer-reusing variant of
// LocateWithoutEarlyTermination, mirroring LocateInto.
func (pg *Paged) LocateWithoutEarlyTerminationInto(p geom.Point, trace []int) (int, []int) {
	trace = trace[:0]
	if pg.Tree.Root == nil {
		return 0, trace
	}
	ref := ChildRef{Node: pg.Tree.Root}
	for !ref.IsData() {
		n := ref.Node
		for _, pk := range pg.Layout.PacketsOf(n.ID) {
			trace = wire.AppendTraceOnce(trace, int(pk))
		}
		ref = n.side(p)
	}
	return ref.Data, trace
}

// IndexPackets returns the size of the paged index in packets.
func (pg *Paged) IndexPackets() int { return pg.Layout.PacketCount }
