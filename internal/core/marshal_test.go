package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

func TestMarshalRoundTrip(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 150, 301)
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(data, tree.Sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Nodes) != len(tree.Nodes) {
		t.Fatalf("nodes %d != %d", len(loaded.Nodes), len(tree.Nodes))
	}
	// Structural equality node by node.
	for i := range tree.Nodes {
		a, b := tree.Nodes[i], loaded.Nodes[i]
		if a.Dim != b.Dim || a.CutLo != b.CutLo || a.CutHi != b.CutHi ||
			a.Pruned != b.Pruned || a.Truncated != b.Truncated ||
			a.NumRegions != b.NumRegions || len(a.Polylines) != len(b.Polylines) {
			t.Fatalf("node %d differs after round trip", i)
		}
		for j := range a.Polylines {
			for k := range a.Polylines[j] {
				if a.Polylines[j][k] != b.Polylines[j][k] {
					t.Fatalf("node %d polyline %d point %d differs", i, j, k)
				}
			}
		}
	}
	// Identical query behavior — exact, since coordinates stay float64.
	rng := rand.New(rand.NewSource(302))
	for i := 0; i < 3000; i++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		if got, want := loaded.Locate(p), tree.Locate(p); got != want {
			t.Fatalf("query %v: loaded %d, original %d", p, got, want)
		}
	}
	// And identical paging.
	p1, err := tree.Page(wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Page(wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	if p1.IndexPackets() != p2.IndexPackets() {
		t.Fatalf("paging differs: %d vs %d packets", p1.IndexPackets(), p2.IndexPackets())
	}
}

func TestMarshalWeightedTree(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 80, 303)
	w := zipfWeights(80, 1.1, 304)
	tree, err := Build(sub, WithAccessWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(data, sub)
	if err != nil {
		t.Fatalf("weighted tree should survive the round trip: %v", err)
	}
	if got, want := loaded.ExpectedDepth(w), tree.ExpectedDepth(w); got != want {
		t.Fatalf("expected depth differs: %v vs %v", got, want)
	}
}

func TestMarshalSingleRegion(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 1, 305)
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(data, tree.Sub)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Root != nil {
		t.Fatal("single-region tree should have nil root")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 20, 306)
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)/2],
		"one byte":  {0x44},
	}
	for name, img := range cases {
		if _, err := Unmarshal(img, tree.Sub); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// Wrong subdivision size.
	other, _, _ := buildVoronoiTree(t, 21, 307)
	if _, err := Unmarshal(data, other.Sub); err == nil {
		t.Error("region-count mismatch should fail")
	}
	// Flipped bytes somewhere in the node area should be caught by the
	// invariant check or reference validation most of the time; assert it
	// never panics.
	rng := rand.New(rand.NewSource(308))
	for i := 0; i < 200; i++ {
		img := append([]byte(nil), data...)
		img[11+rng.Intn(len(img)-11)] ^= 0xff
		_, _ = Unmarshal(img, tree.Sub) // must not panic
	}
}
