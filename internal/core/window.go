package core

import (
	"sort"

	"airindex/internal/geom"
)

// This file extends the D-tree beyond the paper's point queries with window
// (range) queries: report every data region intersecting an axis-aligned
// rectangle. The descent rule generalizes Algorithm 2: a window entirely at
// or below CutLo lies in the lefthand subspace, entirely at or above CutHi
// in the righthand one, and a window straddling the interlocking band must
// explore both children. Candidate regions are verified against the exact
// region polygons, so the result is precise, not conservative.

// canonInterval returns the window's extent along the canonical x-axis of
// dimension d.
func canonInterval(d Dimension, w geom.Rect) (lo, hi float64) {
	if d == DimX {
		return -w.MaxY, -w.MinY
	}
	return w.MinX, w.MaxX
}

// SearchRect returns the ids of all data regions intersecting the window,
// in ascending order. Regions touching the window only at their boundary
// are included.
func (t *Tree) SearchRect(w geom.Rect) []int {
	if w.IsEmpty() {
		return nil
	}
	if t.Root == nil {
		if t.Sub.N() == 1 && w.Intersects(t.Sub.Area) {
			return []int{0}
		}
		return nil
	}
	var out []int
	var walk func(c ChildRef)
	walk = func(c ChildRef) {
		if c.IsData() {
			if regionIntersectsRect(t.Sub.Regions[c.Data].Poly, w) {
				out = append(out, c.Data)
			}
			return
		}
		n := c.Node
		lo, hi := canonInterval(n.Dim, w)
		// Strict comparisons: a window touching the cut line exactly may
		// still touch regions of the other subspace at their boundary.
		if hi < n.CutLo {
			walk(n.Left)
			return
		}
		if lo > n.CutHi {
			walk(n.Right)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ChildRef{Node: t.Root})
	sort.Ints(out)
	return out
}

// RegionIntersectsRect reports whether a region polygon and a query window
// share any point (boundary touches included) — the exact membership test
// window-query oracles score air answers against.
func RegionIntersectsRect(pg geom.Polygon, w geom.Rect) bool {
	return regionIntersectsRect(pg, w)
}

// regionIntersectsRect reports whether the polygon and rectangle share any
// point (boundary touches included).
func regionIntersectsRect(pg geom.Polygon, w geom.Rect) bool {
	if !pg.Bounds().Intersects(w) {
		return false
	}
	// Any polygon vertex inside the window, or window corner inside the
	// polygon, or any edge pair crossing.
	for _, p := range pg {
		if w.Contains(p) {
			return true
		}
	}
	for _, c := range w.Corners() {
		if pg.Contains(c) {
			return true
		}
	}
	wp := w.Polygon()
	for _, e := range pg.Edges() {
		for _, f := range wp.Edges() {
			if e.Intersects(f) {
				return true
			}
		}
	}
	return false
}

// NearestSite returns the data region whose generating point set would be
// nearest under the subdivision's scope semantics — operationally, the
// region containing p (valid scopes are exactly the nearest-neighbor cells
// in the paper's LDIS model). It exists so callers using the D-tree as a
// nearest-neighbor index need no geometry of their own.
func (t *Tree) NearestSite(p geom.Point) int { return t.Locate(p) }
