package core

import "airindex/internal/geom"

// side decides which subspace of node n the query point belongs to
// (Algorithm 2, lines 4-26): the canonical x-coordinate against the band
// limits first, then the rightward-ray crossing parity against the
// partition polylines for points inside the interlocking band.
func (n *Node) side(p geom.Point) ChildRef {
	cx := canonX(n.Dim, p)
	if cx <= n.CutLo {
		return n.Left
	}
	if cx >= n.CutHi {
		return n.Right
	}
	if n.rayParityLeft(p) {
		return n.Left
	}
	return n.Right
}

// InBand reports whether the query point falls inside the node's
// interlocking band, i.e. whether deciding its side requires the full
// partition rather than the band limits available in a multi-packet node's
// first packet. Broadcast organizations use it to charge packet reads.
func (n *Node) InBand(p geom.Point) bool {
	cx := canonX(n.Dim, p)
	return cx > n.CutLo && cx < n.CutHi
}

// rayParityLeft reports whether a rightward ray (in the canonical frame)
// from p crosses the partition an odd number of times, i.e. whether p lies
// inside the lefthand subspace's extent.
func (n *Node) rayParityLeft(p geom.Point) bool {
	cp := canon(n.Dim, p)
	num := 0
	for _, pl := range n.Polylines {
		for i := 0; i+1 < len(pl); i++ {
			s := geom.Segment{A: canon(n.Dim, pl[i]), B: canon(n.Dim, pl[i+1])}
			if s.CrossesRightwardRay(cp) {
				num++
			}
		}
	}
	return num%2 == 1
}

// Locate returns the id of the data region containing p by descending the
// binary D-tree from the root (Algorithm 2). The search visits Θ(log N)
// nodes.
func (t *Tree) Locate(p geom.Point) int {
	if t.Root == nil {
		return 0 // single-region subdivision
	}
	ref := ChildRef{Node: t.Root}
	for !ref.IsData() {
		ref = ref.Node.side(p)
	}
	return ref.Data
}

// LocatePath returns the region id along with the sequence of node IDs
// visited; the paged query and the tests use it to reason about the search
// path.
func (t *Tree) LocatePath(p geom.Point) (int, []*Node) {
	if t.Root == nil {
		return 0, nil
	}
	var path []*Node
	ref := ChildRef{Node: t.Root}
	for !ref.IsData() {
		path = append(path, ref.Node)
		ref = ref.Node.side(p)
	}
	return ref.Data, path
}
