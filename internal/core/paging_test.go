package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

func TestNodeSizeModel(t *testing.T) {
	params := wire.DTreeParams(256)
	n := &Node{Polylines: []geom.Polyline{{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 0)}}}
	// bid 2 + header 2 + ptrs 8 + (2 + 3*8) = 38.
	if got := NodeSize(n, params); got != 38 {
		t.Errorf("NodeSize = %d, want 38", got)
	}
	// Two polylines pay two count prefixes.
	n2 := &Node{Polylines: []geom.Polyline{
		{geom.Pt(0, 0), geom.Pt(1, 1)}, {geom.Pt(3, 3), geom.Pt(4, 4)},
	}}
	if got := NodeSize(n2, params); got != 12+2*(2+16) {
		t.Errorf("NodeSize two chains = %d", got)
	}
	// A node exceeding the packet pays the extra RMC and LMC coordinates
	// (Section 4.4's first-packet early-termination data).
	big := &Node{Polylines: []geom.Polyline{make(geom.Polyline, 40)}}
	want := 12 + 2 + 40*8 + 8
	if got := NodeSize(big, params); got != want {
		t.Errorf("NodeSize big = %d, want %d", got, want)
	}
	// A pruned-but-untruncated partition carries CutLo explicitly.
	hidden := &Node{Pruned: true, Polylines: []geom.Polyline{{geom.Pt(0, 0), geom.Pt(1, 1)}}}
	if got := NodeSize(hidden, params); got != 12+2+16+4 {
		t.Errorf("NodeSize hidden-LMC = %d", got)
	}
	trunc := &Node{Pruned: true, Truncated: true, Polylines: []geom.Polyline{{geom.Pt(0, 0), geom.Pt(1, 1)}}}
	if got := NodeSize(trunc, params); got != 12+2+16 {
		t.Errorf("NodeSize truncated = %d", got)
	}
}

func TestPagedLocateEqualsBinaryEverywhere(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 220, 41)
	for _, capacity := range wire.PaperPacketCapacities {
		paged, err := tree.Page(wire.DTreeParams(capacity))
		if err != nil {
			t.Fatalf("page %d: %v", capacity, err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 2500; i++ {
			p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
			got, trace := paged.Locate(p)
			if want := tree.Locate(p); got != want {
				t.Fatalf("capacity %d: %v -> %d, binary %d", capacity, p, got, want)
			}
			checkTrace(t, trace, paged.IndexPackets())
		}
	}
}

func checkTrace(t *testing.T, trace []int, packets int) {
	t.Helper()
	if len(trace) == 0 {
		t.Fatal("empty packet trace")
	}
	seen := map[int]bool{}
	for _, pk := range trace {
		if pk < 0 || pk >= packets {
			t.Fatalf("trace packet %d out of range [0,%d)", pk, packets)
		}
		if seen[pk] {
			t.Fatalf("packet %d read twice", pk)
		}
		seen[pk] = true
	}
}

func TestPagedTraceStartsAtRootPacket(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 100, 43)
	paged, err := tree.Page(wire.DTreeParams(128))
	if err != nil {
		t.Fatal(err)
	}
	rootPk := paged.Layout.FirstPacket(tree.Root.ID)
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 500; i++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		_, trace := paged.Locate(p)
		if trace[0] != rootPk {
			t.Fatalf("trace starts at %d, root packet is %d", trace[0], rootPk)
		}
	}
}

func TestEarlyTerminationReducesReads(t *testing.T) {
	// At a tiny packet capacity the root spans several packets; queries far
	// outside the interlocking band must read only its first packet, while
	// some in-band queries must read them all.
	tree, _, area := buildVoronoiTree(t, 400, 45)
	paged, err := tree.Page(wire.DTreeParams(64))
	if err != nil {
		t.Fatal(err)
	}
	rootPackets := paged.Layout.PacketsOf(tree.Root.ID)
	if len(rootPackets) < 2 {
		t.Skip("root fits one packet; nothing to verify at this capacity")
	}
	countRootReads := func(trace []int) int {
		inRoot := map[int]bool{}
		for _, pk := range rootPackets {
			inRoot[int(pk)] = true
		}
		n := 0
		for _, pk := range trace {
			if inRoot[pk] {
				n++
			}
		}
		return n
	}
	sawEarly, sawFull := false, false
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 5000 && !(sawEarly && sawFull); i++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		_, trace := paged.Locate(p)
		switch countRootReads(trace) {
		case 1:
			sawEarly = true
		case len(rootPackets):
			sawFull = true
		}
	}
	if !sawEarly {
		t.Error("no query terminated early at the multi-packet root")
	}
	if !sawFull {
		t.Error("no query read the whole multi-packet root")
	}
}

func TestPagingUtilizationReasonable(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 500, 47)
	for _, capacity := range wire.PaperPacketCapacities {
		paged, err := tree.Page(wire.DTreeParams(capacity))
		if err != nil {
			t.Fatal(err)
		}
		if u := paged.Layout.Utilization(); u < 0.5 {
			t.Errorf("capacity %d: utilization %.2f below 50%%", capacity, u)
		}
	}
}

func TestPageSingleRegionTree(t *testing.T) {
	tree := &Tree{Sub: nil}
	_ = tree
	// Built through the public path for a single region.
	single, _, _ := buildVoronoiTree(t, 1, 48)
	paged, err := single.Page(wire.DTreeParams(128))
	if err != nil {
		t.Fatal(err)
	}
	if paged.IndexPackets() != 0 {
		t.Errorf("single-region index should be empty, got %d packets", paged.IndexPackets())
	}
	id, trace := paged.Locate(geom.Pt(5, 5))
	if id != 0 || trace != nil {
		t.Errorf("single-region locate = %d, %v", id, trace)
	}
}

func TestPageRejectsInvalidParams(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 10, 49)
	if _, err := tree.Page(wire.Params{}); err == nil {
		t.Error("zero params should fail")
	}
}

func TestPointersStayForward(t *testing.T) {
	// Child nodes must never live in earlier packets than their parent's
	// first packet (forward-only reading within one index copy), except for
	// nodes merged into leaf-level packets, which the simulator tolerates;
	// verify the dominant case statistically.
	tree, _, _ := buildVoronoiTree(t, 300, 50)
	paged, err := tree.Page(wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	backward := 0
	for _, n := range tree.Nodes {
		for _, c := range []ChildRef{n.Left, n.Right} {
			if c.IsData() {
				continue
			}
			if paged.Layout.FirstPacket(c.Node.ID) < paged.Layout.FirstPacket(n.ID) {
				backward++
			}
		}
	}
	if backward > len(tree.Nodes)/20 {
		t.Errorf("%d backward pointers among %d nodes", backward, len(tree.Nodes))
	}
}
