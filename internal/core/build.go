package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"airindex/internal/region"
)

// buildOptions configures construction; the defaults implement the paper,
// and the deviations (single style, no tie-break) exist for the ablation
// experiments called out in DESIGN.md.
type buildOptions struct {
	dims          []Dimension
	sortKeys      []bool // true = sort by canonical rightmost, false = leftmost
	tieBreak      bool
	pruneParallel bool
	weights       []float64 // access frequencies; nil = cardinality balance
	workers       int       // subtree worker pool size; <= 0 = one per CPU
	perNodeSort   bool      // reference path: re-sort spans at every node
	memoize       bool      // retain per-node partition memos for incremental rebuilds
}

// BuildOption customizes D-tree construction.
type BuildOption func(*buildOptions)

// WithoutTieBreak disables the inter-prob tie-break between equal-size
// partition styles (ablation).
func WithoutTieBreak() BuildOption {
	return func(o *buildOptions) { o.tieBreak = false }
}

// WithSingleStyle restricts the partition search to one dimension and one
// sort key (ablation: the paper evaluates four/eight styles per node).
func WithSingleStyle(dim Dimension, sortByMax bool) BuildOption {
	return func(o *buildOptions) {
		o.dims = []Dimension{dim}
		o.sortKeys = []bool{sortByMax}
	}
}

// WithoutParallelPrune keeps partition segments that run exactly parallel to
// the query ray (ablation; such segments can never change crossing parity,
// so the default prunes them).
func WithoutParallelPrune() BuildOption {
	return func(o *buildOptions) { o.pruneParallel = false }
}

// WithAccessWeights builds an access-weighted D-tree: instead of halving
// the region count, every partition halves the query probability mass, so
// frequently-queried regions sit near the root. Expected search depth drops
// from log2(N) toward the entropy of the access distribution — the skewed-
// access extension the paper defers to imbalanced-index work. weights[i] is
// the (unnormalized, non-negative) access frequency of region i; the tree
// keeps the paper's cardinality balance when weights is nil. Weighted trees
// trade the height-balance property for expected tuning time.
func WithAccessWeights(weights []float64) BuildOption {
	return func(o *buildOptions) { o.weights = weights }
}

// WithBuildWorkers bounds the subtree worker pool: above a size cutoff the
// left and right subtrees of a node are built as independent tasks. The
// resulting tree — node ids, partition choices, tie-breaks — is
// bit-identical at any worker count (TestBuildDeterministicAcrossWorkers);
// n <= 0 means one worker per available CPU, 1 forces a sequential build.
func WithBuildWorkers(n int) BuildOption {
	return func(o *buildOptions) { o.workers = n }
}

// withMemo makes every built node retain a partition-search memo (the raw
// extent entries and split thresholds of all evaluated styles) so a later
// Incremental.Rebuild can patch a dirty path node's candidates in place of
// re-deriving them from the whole subset. The built tree is bit-identical
// with or without memos; Incremental enables this internally. Weighted and
// per-node-sort builds ignore it.
func withMemo() BuildOption {
	return func(o *buildOptions) { o.memoize = true }
}

// withPerNodeSort selects the reference construction path that re-sorts the
// region spans of every node from scratch instead of partitioning the
// pre-sorted root orders down the tree. Only equivalence tests use it.
func withPerNodeSort() BuildOption {
	return func(o *buildOptions) { o.perNodeSort = true }
}

// parallelSpawnMin is the subspace size below which a subtree is always
// built inline: small subtrees are cheaper than goroutine handoff.
const parallelSpawnMin = 128

// subset carries one node's region ids sorted by each enabled style key
// (see keyIdx); every populated slot holds the same id set.
type subset [4][]int32

// keyIdx maps a (dimension, sort key) pair to its subset slot.
func keyIdx(dim Dimension, sortByMax bool) int {
	k := int(dim) * 2
	if sortByMax {
		k++
	}
	return k
}

// keyVal returns the sort key value of a span for a subset slot.
func (r regionSpan) keyVal(k int) float64 {
	dim := Dimension(k / 2)
	if k%2 == 1 {
		return r.canonMax(dim)
	}
	return r.canonMin(dim)
}

// buildScratch is the per-task membership marker used to partition sorted
// id lists; the epoch stamp makes reuse O(1) instead of clearing. It also
// carries the per-task boundary-extraction scratch so evaluate runs
// map-free.
type buildScratch struct {
	mark  []int32
	epoch int32
	bs    region.BoundaryScratch
}

type builder struct {
	sub   *region.Subdivision
	spans []regionSpan
	opts  buildOptions
	keys  []int         // enabled subset slots, in option order
	sem   chan struct{} // spawn tokens; nil = sequential build
	pool  sync.Pool     // of *buildScratch
}

// Build constructs the D-tree for a subdivision by recursively partitioning
// the region set into complementary halves (Section 4.2). The resulting
// tree is height-balanced with exactly two children per node. Each enabled
// style key is sorted once up front and the orders are partitioned down the
// tree, so no node re-sorts its spans; sibling subtrees build in parallel
// on a bounded worker pool with bit-identical output at any worker count.
func Build(sub *region.Subdivision, opts ...BuildOption) (*Tree, error) {
	o := buildOptions{
		dims:          []Dimension{DimY, DimX},
		sortKeys:      []bool{true, false},
		tieBreak:      true,
		pruneParallel: true,
	}
	for _, f := range opts {
		f(&o)
	}
	if sub.N() == 0 {
		return nil, fmt.Errorf("core: empty subdivision")
	}
	if o.weights != nil {
		if len(o.weights) != sub.N() {
			return nil, fmt.Errorf("core: %d access weights for %d regions", len(o.weights), sub.N())
		}
		for i, w := range o.weights {
			if w < 0 {
				return nil, fmt.Errorf("core: negative access weight %g for region %d", w, i)
			}
		}
	}
	b := &builder{sub: sub, opts: o, spans: make([]regionSpan, sub.N())}
	for i := range sub.Regions {
		bb := sub.Regions[i].Bounds()
		b.spans[i] = regionSpan{id: i, minX: bb.MinX, maxX: bb.MaxX, minY: bb.MinY, maxY: bb.MaxY}
	}
	for _, dim := range o.dims {
		for _, byMax := range o.sortKeys {
			if k := keyIdx(dim, byMax); !containsInt(b.keys, k) {
				b.keys = append(b.keys, k)
			}
		}
	}

	t := &Tree{Sub: sub, opts: o}
	if sub.N() == 1 {
		// Degenerate dataset: no partitions; Locate answers 0 directly.
		return t, nil
	}

	var root subset
	for _, k := range b.keys {
		root[k] = b.sortedIDs(sub.N(), k)
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		b.sem = make(chan struct{}, workers-1)
	}
	b.pool.New = func() interface{} { return &buildScratch{mark: make([]int32, sub.N())} }

	sc := b.pool.Get().(*buildScratch)
	ref, err := b.split(root, sc)
	b.pool.Put(sc)
	if err != nil {
		return nil, err
	}
	t.Root = ref.Node
	t.assignIDs()
	return t, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// sortedIDs returns all region ids ordered by (key value, id); the id
// tie-break makes every order — and therefore the whole tree — a pure
// function of the subdivision.
func (b *builder) sortedIDs(n, k int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(x, y int) bool {
		vx, vy := b.spans[ids[x]].keyVal(k), b.spans[ids[y]].keyVal(k)
		if vx != vy {
			return vx < vy
		}
		return ids[x] < ids[y]
	})
	return ids
}

// split recursively partitions the region set and returns a reference to
// the subtree (or a data pointer for a single region). Sibling subtrees may
// build concurrently; nothing they compute depends on scheduling, so the
// result is identical to the sequential recursion.
func (b *builder) split(sub subset, sc *buildScratch) (ChildRef, error) {
	ids := sub[b.keys[0]]
	if len(ids) == 1 {
		return ChildRef{Data: int(ids[0])}, nil
	}
	cand, err := b.choosePartition(sub, sc)
	if err != nil {
		return ChildRef{}, err
	}
	leftSub, rightSub := b.partitionSubset(sub, cand.left, sc)

	var left, right ChildRef
	var lerr, rerr error
	spawned := false
	if b.sem != nil && len(ids) >= parallelSpawnMin {
		select {
		case b.sem <- struct{}{}:
			spawned = true
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-b.sem }()
				lsc := b.pool.Get().(*buildScratch)
				left, lerr = b.split(leftSub, lsc)
				b.pool.Put(lsc)
			}()
			right, rerr = b.split(rightSub, sc)
			wg.Wait()
		default:
		}
	}
	if !spawned {
		left, lerr = b.split(leftSub, sc)
		if lerr == nil {
			right, rerr = b.split(rightSub, sc)
		}
	}
	if lerr != nil {
		return ChildRef{}, lerr
	}
	if rerr != nil {
		return ChildRef{}, rerr
	}
	return ChildRef{Node: &Node{
		Dim:        cand.style.dim,
		Polylines:  cand.polylines,
		CutLo:      cand.cutLo,
		CutHi:      cand.cutHi,
		Left:       left,
		Right:      right,
		Pruned:     cand.pruned,
		Truncated:  cand.truncated,
		NumRegions: len(ids),
		InterProb:  cand.interProb,
		memo:       cand.memo,
	}}, nil
}

// partitionSubset splits every enabled sorted order into the ids of the
// chosen left subspace and the rest, preserving relative order — the
// pre-sorted orders flow down the tree instead of being rebuilt per node.
// The scratch stays usable by the caller afterwards.
func (b *builder) partitionSubset(sub subset, left []int, sc *buildScratch) (ls, rs subset) {
	sc.epoch++
	e := sc.epoch
	for _, id := range left {
		sc.mark[id] = e
	}
	for _, k := range b.keys {
		src := sub[k]
		l := make([]int32, 0, len(left))
		r := make([]int32, 0, len(src)-len(left))
		for _, id := range src {
			if sc.mark[id] == e {
				l = append(l, id)
			} else {
				r = append(r, id)
			}
		}
		ls[k], rs[k] = l, r
	}
	return ls, rs
}

// assignIDs numbers nodes in breadth-first order and fills Tree.Nodes; the
// broadcast organization pages and transmits the tree in this order.
func (t *Tree) assignIDs() {
	t.Nodes = t.Nodes[:0]
	if t.Root == nil {
		return
	}
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = len(t.Nodes)
		t.Nodes = append(t.Nodes, n)
		if !n.Left.IsData() {
			queue = append(queue, n.Left.Node)
		}
		if !n.Right.IsData() {
			queue = append(queue, n.Right.Node)
		}
	}
}
