package core

import (
	"fmt"

	"airindex/internal/region"
)

// buildOptions configures construction; the defaults implement the paper,
// and the deviations (single style, no tie-break) exist for the ablation
// experiments called out in DESIGN.md.
type buildOptions struct {
	dims          []Dimension
	sortKeys      []bool // true = sort by canonical rightmost, false = leftmost
	tieBreak      bool
	pruneParallel bool
	weights       []float64 // access frequencies; nil = cardinality balance
}

// BuildOption customizes D-tree construction.
type BuildOption func(*buildOptions)

// WithoutTieBreak disables the inter-prob tie-break between equal-size
// partition styles (ablation).
func WithoutTieBreak() BuildOption {
	return func(o *buildOptions) { o.tieBreak = false }
}

// WithSingleStyle restricts the partition search to one dimension and one
// sort key (ablation: the paper evaluates four/eight styles per node).
func WithSingleStyle(dim Dimension, sortByMax bool) BuildOption {
	return func(o *buildOptions) {
		o.dims = []Dimension{dim}
		o.sortKeys = []bool{sortByMax}
	}
}

// WithoutParallelPrune keeps partition segments that run exactly parallel to
// the query ray (ablation; such segments can never change crossing parity,
// so the default prunes them).
func WithoutParallelPrune() BuildOption {
	return func(o *buildOptions) { o.pruneParallel = false }
}

// WithAccessWeights builds an access-weighted D-tree: instead of halving
// the region count, every partition halves the query probability mass, so
// frequently-queried regions sit near the root. Expected search depth drops
// from log2(N) toward the entropy of the access distribution — the skewed-
// access extension the paper defers to imbalanced-index work. weights[i] is
// the (unnormalized, non-negative) access frequency of region i; the tree
// keeps the paper's cardinality balance when weights is nil. Weighted trees
// trade the height-balance property for expected tuning time.
func WithAccessWeights(weights []float64) BuildOption {
	return func(o *buildOptions) { o.weights = weights }
}

type builder struct {
	sub   *region.Subdivision
	spans []regionSpan
	opts  buildOptions
}

// Build constructs the D-tree for a subdivision by recursively partitioning
// the region set into complementary halves (Section 4.2). The resulting
// tree is height-balanced with exactly two children per node.
func Build(sub *region.Subdivision, opts ...BuildOption) (*Tree, error) {
	o := buildOptions{
		dims:          []Dimension{DimY, DimX},
		sortKeys:      []bool{true, false},
		tieBreak:      true,
		pruneParallel: true,
	}
	for _, f := range opts {
		f(&o)
	}
	if sub.N() == 0 {
		return nil, fmt.Errorf("core: empty subdivision")
	}
	if o.weights != nil {
		if len(o.weights) != sub.N() {
			return nil, fmt.Errorf("core: %d access weights for %d regions", len(o.weights), sub.N())
		}
		for i, w := range o.weights {
			if w < 0 {
				return nil, fmt.Errorf("core: negative access weight %g for region %d", w, i)
			}
		}
	}
	b := &builder{sub: sub, opts: o, spans: make([]regionSpan, sub.N())}
	for i := range sub.Regions {
		bb := sub.Regions[i].Bounds()
		b.spans[i] = regionSpan{id: i, minX: bb.MinX, maxX: bb.MaxX, minY: bb.MinY, maxY: bb.MaxY}
	}

	t := &Tree{Sub: sub, opts: o}
	if sub.N() == 1 {
		// Degenerate dataset: no partitions; Locate answers 0 directly.
		return t, nil
	}
	ids := make([]int, sub.N())
	for i := range ids {
		ids[i] = i
	}
	ref, err := b.split(ids)
	if err != nil {
		return nil, err
	}
	t.Root = ref.Node
	t.assignIDs()
	return t, nil
}

// split recursively partitions the region set and returns a reference to
// the subtree (or a data pointer for a single region).
func (b *builder) split(ids []int) (ChildRef, error) {
	if len(ids) == 1 {
		return ChildRef{Data: ids[0]}, nil
	}
	cand, err := b.choosePartition(ids)
	if err != nil {
		return ChildRef{}, err
	}
	left, err := b.split(cand.left)
	if err != nil {
		return ChildRef{}, err
	}
	right, err := b.split(cand.right)
	if err != nil {
		return ChildRef{}, err
	}
	return ChildRef{Node: &Node{
		Dim:        cand.style.dim,
		Polylines:  cand.polylines,
		CutLo:      cand.cutLo,
		CutHi:      cand.cutHi,
		Left:       left,
		Right:      right,
		Pruned:     cand.pruned,
		Truncated:  cand.truncated,
		NumRegions: len(ids),
		InterProb:  cand.interProb,
	}}, nil
}

// assignIDs numbers nodes in breadth-first order and fills Tree.Nodes; the
// broadcast organization pages and transmits the tree in this order.
func (t *Tree) assignIDs() {
	t.Nodes = t.Nodes[:0]
	if t.Root == nil {
		return
	}
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = len(t.Nodes)
		t.Nodes = append(t.Nodes, n)
		if !n.Left.IsData() {
			queue = append(queue, n.Left.Node)
		}
		if !n.Right.IsData() {
			queue = append(queue, n.Right.Node)
		}
	}
}
