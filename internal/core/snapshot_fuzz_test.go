package core

import (
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// FuzzFlatSnapshot throws arbitrary bytes at the snapshot loader. The
// contract under test: LoadSnapshot either rejects the input with an error
// or returns an index that answers queries and re-encodes packets without
// panicking or walking out of bounds.
func FuzzFlatSnapshot(f *testing.F) {
	for _, n := range []int{1, 4, 40} {
		sub, sites := testutil.RandomVoronoi(f, n, int64(300+n))
		tree, err := Build(sub)
		if err != nil {
			f.Fatal(err)
		}
		adj, err := BuildAdjacency(sub, sub.Area, sites)
		if err != nil {
			f.Fatal(err)
		}
		for _, capacity := range []int{64, 512} {
			paged, err := tree.Page(wire.DTreeParams(capacity))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(paged.Flatten().Snapshot())
			// The same arena with the adjacency table attached seeds the
			// version-2 layout.
			fp := paged.Flatten()
			if err := fp.Flat.SetAdjacency(adj); err != nil {
				f.Fatal(err)
			}
			f.Add(fp.Snapshot())
		}
	}
	f.Add([]byte(snapshotMagic))
	f.Add(make([]byte, snapHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := LoadSnapshot(data)
		if err != nil {
			return
		}
		// Validation passed: the index must be fully usable.
		for _, p := range []geom.Point{geom.Pt(0, 0), geom.Pt(5000, 5000), geom.Pt(-1e9, 1e9)} {
			id, trace := fp.LocateInto(p, nil)
			if id < 0 || id >= fp.Flat.N {
				t.Fatalf("loaded snapshot located out-of-range region %d", id)
			}
			for _, pk := range trace {
				if pk < 0 || pk >= fp.IndexPackets() {
					t.Fatalf("loaded snapshot traced out-of-range packet %d", pk)
				}
			}
		}
		// A loaded version-2 table passed its validation: every adjacency
		// walk must stay in bounds and terminate.
		if adj := fp.Flat.Adjacency(); adj != nil && adj.N() == fp.Flat.N && adj.N() > 0 {
			center := adj.Area.Center()
			for _, seed := range []int{0, adj.N() - 1} {
				adj.Contains(seed, center)
				for _, id := range adj.KNN(seed, center, 3) {
					if id < 0 || int(id) >= adj.N() {
						t.Fatalf("loaded adjacency walked to out-of-range region %d", id)
					}
				}
				w := geom.Rect{MinX: center.X - 100, MinY: center.Y - 100, MaxX: center.X + 100, MaxY: center.Y + 100}
				for _, id := range adj.Window(seed, w) {
					if id < 0 || int(id) >= adj.N() {
						t.Fatalf("loaded adjacency windowed out-of-range region %d", id)
					}
				}
			}
		}
		if _, err := fp.EncodePackets(); err != nil {
			// A structurally valid snapshot may still fail size-model checks
			// during re-encoding; an error is fine, a panic is not.
			return
		}
	})
}
