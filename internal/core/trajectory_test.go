package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
)

func TestCrossedRegionsMatchesSampling(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 120, 701)
	rng := rand.New(rand.NewSource(702))
	for trial := 0; trial < 120; trial++ {
		a := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		b := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		legs, err := tree.CrossedRegions(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(legs) == 0 || legs[0].T != 0 {
			t.Fatalf("trial %d: malformed legs %v", trial, legs)
		}
		// Consecutive legs must differ and have increasing parameters.
		for i := 1; i < len(legs); i++ {
			if legs[i].Region == legs[i-1].Region {
				t.Fatalf("trial %d: repeated region %d", trial, legs[i].Region)
			}
			if legs[i].T <= legs[i-1].T {
				t.Fatalf("trial %d: non-increasing parameters", trial)
			}
		}
		// Dense sampling along the path must agree with the active leg
		// (skipping samples within a hair of a boundary).
		for s := 0; s <= 400; s++ {
			tt := float64(s) / 400
			p := geom.Lerp(a, b, tt)
			want := tree.Locate(p)
			leg := 0
			for i := range legs {
				if legs[i].T <= tt {
					leg = i
				}
			}
			if legs[leg].Region != want {
				near := false
				for i := range legs {
					if d := legs[i].T - tt; d < 0.004 && d > -0.004 {
						near = true
					}
				}
				if !near {
					t.Fatalf("trial %d: at t=%.4f active leg says %d, Locate says %d (legs %v)",
						trial, tt, legs[leg].Region, want, legs)
				}
			}
		}
	}
}

func TestCrossedRegionsDegenerate(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 40, 703)
	p := geom.Pt(5000, 5000)
	legs, err := tree.CrossedRegions(p, p)
	if err != nil || len(legs) != 1 {
		t.Fatalf("point trajectory: %v %v", legs, err)
	}
	if _, err := tree.CrossedRegions(geom.Pt(-1, -1), p); err == nil {
		t.Error("outside start should fail")
	}
	_ = area
}

func TestCrossedRegionsWholeDiagonal(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 200, 704)
	a := geom.Pt(area.MinX+1, area.MinY+1)
	b := geom.Pt(area.MaxX-1, area.MaxY-1)
	legs, err := tree.CrossedRegions(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// A full diagonal across 200 Voronoi cells crosses on the order of
	// sqrt(N) regions.
	if len(legs) < 5 || len(legs) > 80 {
		t.Errorf("diagonal crossed %d regions", len(legs))
	}
	if legs[0].Region != tree.Locate(a) {
		t.Error("first leg must be the start region")
	}
	if last := legs[len(legs)-1]; last.Region != tree.Locate(b) {
		t.Errorf("last leg %d, end region %d", last.Region, tree.Locate(b))
	}
}
