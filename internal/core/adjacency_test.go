package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// bruteNeighbors derives adjacency straight from the region polygons,
// independently of the ring-edge keys BuildAdjacency uses: an edge whose
// midpoint is equidistant from exactly two sites lies on those sites'
// bisector, so the two cells share that edge. Border edges have a unique
// nearest site and drop out of the tolerance test.
func bruteNeighbors(sites []geom.Point, polys []geom.Polygon) [][]int32 {
	const tol = 1e-5
	out := make([][]int32, len(polys))
	for i, pg := range polys {
		seen := make(map[int32]bool)
		for e := 0; e < len(pg); e++ {
			a, b := pg[e], pg[(e+1)%len(pg)]
			m := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
			near := -1
			for j, s := range sites {
				if j == i {
					continue
				}
				if near < 0 || m.Dist(sites[near]) > m.Dist(s) {
					near = j
				}
			}
			if near >= 0 && m.Dist(sites[near])-m.Dist(sites[i]) <= tol {
				seen[int32(near)] = true
			}
		}
		for j := range seen {
			out[i] = append(out[i], j)
		}
		sort.Slice(out[i], func(x, y int) bool { return out[i][x] < out[i][y] })
	}
	return out
}

func TestBuildAdjacencyMatchesGeometry(t *testing.T) {
	for _, n := range []int{1, 2, 7, 60} {
		sub, sites := testutil.RandomVoronoi(t, n, int64(9100+n))
		adj, err := BuildAdjacency(sub, sub.Area, sites)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		polys := make([]geom.Polygon, sub.N())
		for i := range polys {
			polys[i] = sub.Regions[i].Poly
		}
		want := bruteNeighbors(sites, polys)
		for i := 0; i < sub.N(); i++ {
			got := adj.Neighbors(i)
			if len(got) == 0 && len(want[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(append([]int32{}, got...), want[i]) {
				t.Fatalf("n=%d region %d: neighbors %v, geometric ground truth %v", n, i, got, want[i])
			}
		}
	}
}

func TestAdjacencyContainsMatchesLocate(t *testing.T) {
	sub, sites := testutil.RandomVoronoi(t, 80, 9201)
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9202))
	for trial := 0; trial < 500; trial++ {
		p := geom.Pt(sub.Area.MinX+rng.Float64()*sub.Area.W(), sub.Area.MinY+rng.Float64()*sub.Area.H())
		home := sub.Locate(p)
		if !adj.Contains(home, p) {
			t.Fatalf("point %v: region %d contains it per Locate, adjacency test says no", p, home)
		}
		// Any other region claiming p must be a genuine distance tie.
		own := p.Dist2(sites[home])
		for i := range sites {
			if i == home || !adj.Contains(i, p) {
				continue
			}
			if d := p.Dist2(sites[i]); d > own+2*geom.Eps {
				t.Fatalf("point %v: region %d (dist² %v) claims it over region %d (dist² %v)", p, i, d, home, own)
			}
		}
	}
	if adj.Contains(0, geom.Pt(sub.Area.MinX-1, sub.Area.MinY-1)) {
		t.Fatal("a point outside the service area must not be contained")
	}
}

func TestAdjacencyKNNMatchesBrute(t *testing.T) {
	sub, sites := testutil.RandomVoronoi(t, 70, 9301)
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9302))
	for trial := 0; trial < 300; trial++ {
		p := geom.Pt(sub.Area.MinX+rng.Float64()*sub.Area.W(), sub.Area.MinY+rng.Float64()*sub.Area.H())
		seed := sub.Locate(p)
		for _, k := range []int{1, 3, 8, len(sites), len(sites) + 5} {
			got := adj.KNN(seed, p, k)
			idx := make([]int32, len(sites))
			for i := range idx {
				idx[i] = int32(i)
			}
			sort.Slice(idx, func(a, b int) bool {
				da, db := p.Dist2(sites[idx[a]]), p.Dist2(sites[idx[b]])
				if da != db {
					return da < db
				}
				return idx[a] < idx[b]
			})
			want := idx
			if k < len(want) {
				want = want[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("p=%v k=%d: knn walk %v, brute %v", p, k, got, want)
			}
		}
	}
}

func TestAdjacencyWindowMatchesBrute(t *testing.T) {
	sub, sites := testutil.RandomVoronoi(t, 70, 9401)
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9402))
	for trial := 0; trial < 200; trial++ {
		p := geom.Pt(sub.Area.MinX+rng.Float64()*sub.Area.W(), sub.Area.MinY+rng.Float64()*sub.Area.H())
		hw := 50 + rng.Float64()*3000
		hh := 50 + rng.Float64()*3000
		w := geom.Rect{MinX: p.X - hw, MinY: p.Y - hh, MaxX: p.X + hw, MaxY: p.Y + hh}
		got := adj.Window(sub.Locate(p), w)
		var want []int32
		for i := range sub.Regions {
			if RegionIntersectsRect(sub.Regions[i].Poly, w) {
				want = append(want, int32(i))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("w=%v: window walk %v, polygon brute %v", w, got, want)
		}
	}
}

func TestAdjacencyPacketRoundTrip(t *testing.T) {
	sub, sites := testutil.RandomVoronoi(t, 45, 9501)
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{64, 128, 4096} {
		pkts, err := adj.EncodePackets(capacity)
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		count, err := AdjacencyPacketCount(pkts[0])
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if count != len(pkts) {
			t.Fatalf("capacity %d: header says %d packets, encoder produced %d", capacity, count, len(pkts))
		}
		back, err := DecodeAdjacency(pkts)
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if !reflect.DeepEqual(adj, back) {
			t.Fatalf("capacity %d: decoded table differs from the original", capacity)
		}
	}

	// Non-identity global ids (a sharded channel's table) must survive too.
	withIDs := *adj
	withIDs.IDs = make([]int32, adj.N())
	for i := range withIDs.IDs {
		withIDs.IDs[i] = int32(1000 + i*3)
	}
	pkts, err := withIDs.EncodePackets(128)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAdjacency(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&withIDs, back) {
		t.Fatal("decoded table lost the global-id mapping")
	}
}

func TestAdjacencyDecodeRejectsCorruption(t *testing.T) {
	sub, sites := testutil.RandomVoronoi(t, 30, 9601)
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 128
	pkts, err := adj.EncodePackets(capacity)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() [][]byte {
		out := make([][]byte, len(pkts))
		for i, p := range pkts {
			out[i] = append([]byte(nil), p...)
		}
		return out
	}

	cases := []struct {
		name   string
		mangle func([][]byte) [][]byte
	}{
		{"truncated packet list", func(p [][]byte) [][]byte { return p[:len(p)-1] }},
		{"no packets", func(p [][]byte) [][]byte { return nil }},
		{"bad magic", func(p [][]byte) [][]byte { p[0][0] = 'X'; return p }},
		{"bad version", func(p [][]byte) [][]byte { p[0][2] = 99; return p }},
		{"zero packet count", func(p [][]byte) [][]byte { p[0][3], p[0][4] = 0, 0; return p }},
		{"hostile region count", func(p [][]byte) [][]byte { p[0][5], p[0][6], p[0][7], p[0][8] = 0xff, 0xff, 0xff, 0x7f; return p }},
		{"short packet", func(p [][]byte) [][]byte { p[len(p)-1] = p[len(p)-1][:capacity-1]; return p }},
		{"nonzero spine start", func(p [][]byte) [][]byte { p[0][adjHeaderSize] = 7; return p }},
		{"neighbor out of range", func(p [][]byte) [][]byte {
			// First neighbor entry sits right behind the n+1 spine words.
			off := adjHeaderSize + (adj.N()+1)*4
			p[off/capacity][off%capacity] = 0xee
			p[off/capacity][off%capacity+1] = 0xee
			return p
		}},
	}
	for _, tc := range cases {
		if _, err := DecodeAdjacency(tc.mangle(clone())); err == nil {
			t.Fatalf("%s: corrupt table decoded without error", tc.name)
		}
	}

	// Symmetry breakage that stays in range must still be rejected.
	broken := *adj
	broken.Adj = append([]int32(nil), adj.Adj...)
	if len(broken.Adj) > 0 {
		// Rewrite region 0's first neighbor to a region that does not list 0
		// back (its own first neighbor's first neighbor, if distinct).
		j := broken.Adj[0]
		for cand := int32(0); int(cand) < adj.N(); cand++ {
			if cand == j || int(cand) == 0 || broken.hasNeighbor(int(cand), 0) {
				continue
			}
			broken.Adj[0] = cand
			if err := broken.Validate(); err == nil {
				t.Fatalf("asymmetric table (region 0 -> %d) validated", cand)
			}
			break
		}
	}
}

func TestAdjacencyPacketCountErrors(t *testing.T) {
	for _, tc := range [][]byte{nil, []byte("AJ"), make([]byte, adjHeaderSize-1)} {
		if _, err := AdjacencyPacketCount(tc); err == nil {
			t.Fatalf("%d-byte header parsed without error", len(tc))
		}
	}
}

func TestSetAdjacencySizeMismatch(t *testing.T) {
	sub, sites := testutil.RandomVoronoi(t, 12, 9701)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(512))
	if err != nil {
		t.Fatal(err)
	}
	ft := paged.Flatten().Flat
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	small := *adj
	small.Sites = small.Sites[:len(small.Sites)-1]
	if err := ft.SetAdjacency(&small); err == nil {
		t.Fatal("arena accepted a table covering the wrong region count")
	}
	if err := ft.SetAdjacency(adj); err != nil {
		t.Fatal(err)
	}
	if got := ft.Adjacency(); got != adj {
		t.Fatalf("attached table not returned: %p vs %p", got, adj)
	}
}
