package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

func buildFlatPaged(t testing.TB, n int, capacity int, seed int64) (*Paged, *FlatPaged) {
	t.Helper()
	sub, _ := testutil.RandomVoronoi(t, n, seed)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(capacity))
	if err != nil {
		t.Fatal(err)
	}
	return paged, paged.Flatten()
}

// TestSnapshotRoundTrip: Save -> Load preserves every query answer, every
// trace, and the exact packet bytes — the property that lets a restarted
// server resume the identical broadcast cycle.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n, capacity int
	}{{1, 256}, {12, 64}, {120, 128}, {120, 2048}} {
		paged, fp := buildFlatPaged(t, tc.n, tc.capacity, int64(40+tc.n))
		data := fp.Snapshot()
		got, err := LoadSnapshot(data)
		if err != nil {
			t.Fatalf("n=%d cap=%d: load: %v", tc.n, tc.capacity, err)
		}
		if got.Flat.N != fp.Flat.N || got.IndexPackets() != fp.IndexPackets() {
			t.Fatalf("n=%d cap=%d: shape mismatch after load", tc.n, tc.capacity)
		}
		area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
		rng := rand.New(rand.NewSource(int64(90 + tc.n)))
		var a, b []int
		for q := 0; q < 2000; q++ {
			p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
			var idA, idB int
			idA, a = fp.LocateInto(p, a)
			idB, b = got.LocateInto(p, b)
			if idA != idB || !sameTrace(a, b) {
				t.Fatalf("n=%d cap=%d query %v: original (%d,%v), loaded (%d,%v)",
					tc.n, tc.capacity, p, idA, a, idB, b)
			}
		}
		wantPk, err := paged.EncodePackets()
		if err != nil {
			t.Fatal(err)
		}
		gotPk, err := got.EncodePackets()
		if err != nil {
			t.Fatalf("n=%d cap=%d: encode after load: %v", tc.n, tc.capacity, err)
		}
		if len(gotPk) != len(wantPk) {
			t.Fatalf("n=%d cap=%d: %d packets after load, want %d", tc.n, tc.capacity, len(gotPk), len(wantPk))
		}
		for k := range gotPk {
			if !bytes.Equal(gotPk[k], wantPk[k]) {
				t.Fatalf("n=%d cap=%d: packet %d differs after snapshot round trip", tc.n, tc.capacity, k)
			}
		}
	}
}

func TestSnapshotFile(t *testing.T) {
	_, fp := buildFlatPaged(t, 40, 256, 7)
	path := t.TempDir() + "/dtree.snap"
	if err := fp.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flat.N != 40 {
		t.Fatalf("loaded %d regions, want 40", got.Flat.N)
	}
	if _, err := LoadSnapshotFile(path + ".missing"); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestSnapshotAttachSubdivision(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 30, 8)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := LoadSnapshot(paged.Flatten().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	other, _ := testutil.RandomVoronoi(t, 31, 9)
	if err := fp.AttachSubdivision(other); err == nil {
		t.Error("attaching a mismatched subdivision should fail")
	}
	if err := fp.AttachSubdivision(sub); err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{MinX: 1000, MinY: 1000, MaxX: 4000, MaxY: 4000}
	got, want := fp.Flat.SearchRect(w), tree.SearchRect(w)
	if len(got) != len(want) {
		t.Fatalf("window after attach: %v, want %v", got, want)
	}
}

// TestSnapshotRejectsDamage flips, truncates and version-skews the slab;
// every mutation must be rejected with an error (the fuzz target explores
// this space much more broadly).
func TestSnapshotRejectsDamage(t *testing.T) {
	_, fp := buildFlatPaged(t, 50, 128, 11)
	data := fp.Snapshot()
	if _, err := LoadSnapshot(nil); err == nil {
		t.Error("nil input should fail")
	}
	for _, cut := range []int{1, 17, 63, 64, len(data) / 2, len(data) - 1} {
		if _, err := LoadSnapshot(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes should fail", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff // magic
	if _, err := LoadSnapshot(bad); err == nil {
		t.Error("bad magic should fail")
	}
	bad = append([]byte(nil), data...)
	bad[8] = 99 // version
	if _, err := LoadSnapshot(bad); err == nil {
		t.Error("version skew should fail")
	}
	// The CRC covers the entire slab (checksum field zeroed), so any single
	// bit flip anywhere must be rejected.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		bad = append([]byte(nil), data...)
		bad[rng.Intn(len(bad))] ^= 1 << rng.Intn(8)
		if _, err := LoadSnapshot(bad); err == nil {
			t.Fatalf("trial %d: corrupted snapshot loaded", trial)
		}
	}
}

// buildFlatPagedV2 builds an arena carrying the region-adjacency table, the
// shape that snapshots as version 2.
func buildFlatPagedV2(t testing.TB, n, capacity int, seed int64) *FlatPaged {
	t.Helper()
	sub, sites := testutil.RandomVoronoi(t, n, seed)
	tree, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(capacity))
	if err != nil {
		t.Fatal(err)
	}
	fp := paged.Flatten()
	adj, err := BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Flat.SetAdjacency(adj); err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestSnapshotV2RoundTrip: an adjacency-carrying arena snapshots as version
// 2 and restores table, packets and queries exactly; an adjacency-free
// arena keeps writing version 1 byte for byte.
func TestSnapshotV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n, capacity int
	}{{1, 256}, {25, 64}, {90, 512}} {
		fp := buildFlatPagedV2(t, tc.n, tc.capacity, int64(70+tc.n))
		// A sharded channel's table carries non-identity global ids; they
		// must survive the slab too.
		fp.Flat.Adjacency().IDs = make([]int32, tc.n)
		for i := range fp.Flat.Adjacency().IDs {
			fp.Flat.Adjacency().IDs[i] = int32(7 + i*2)
		}
		data := fp.Snapshot()
		if v := int(data[8]); v != snapshotVersion2 {
			t.Fatalf("n=%d: adjacency arena wrote snapshot version %d, want %d", tc.n, v, snapshotVersion2)
		}
		got, err := LoadSnapshot(data)
		if err != nil {
			t.Fatalf("n=%d cap=%d: load: %v", tc.n, tc.capacity, err)
		}
		if !reflect.DeepEqual(got.Flat.Adjacency(), fp.Flat.Adjacency()) {
			t.Fatalf("n=%d cap=%d: adjacency table differs after round trip", tc.n, tc.capacity)
		}
		wantPk, err := fp.EncodePackets()
		if err != nil {
			t.Fatal(err)
		}
		gotPk, err := got.EncodePackets()
		if err != nil {
			t.Fatalf("n=%d cap=%d: encode after load: %v", tc.n, tc.capacity, err)
		}
		if len(gotPk) != len(wantPk) {
			t.Fatalf("n=%d cap=%d: %d packets after load, want %d", tc.n, tc.capacity, len(gotPk), len(wantPk))
		}
		for k := range gotPk {
			if !bytes.Equal(gotPk[k], wantPk[k]) {
				t.Fatalf("n=%d cap=%d: packet %d differs after v2 round trip", tc.n, tc.capacity, k)
			}
		}
	}
	// Without a table the format byte must not move: restarts from old
	// snapshots keep working.
	_, v1 := buildFlatPaged(t, 25, 64, 95)
	if v := int(v1.Snapshot()[8]); v != snapshotVersion {
		t.Fatalf("adjacency-free arena wrote snapshot version %d, want %d", v, snapshotVersion)
	}
}

// TestSnapshotV2RejectsDamage: the slab checksum covers the adjacency
// sections, so truncation and bit flips anywhere — including inside the new
// sections — are rejected, and a structurally plausible slab whose table
// breaks the adjacency invariants fails the table validation.
func TestSnapshotV2RejectsDamage(t *testing.T) {
	fp := buildFlatPagedV2(t, 40, 128, 13)
	data := fp.Snapshot()
	for _, cut := range []int{len(data) - 1, len(data) - 17, len(data) / 2} {
		if _, err := LoadSnapshot(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes should fail", cut)
		}
	}
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), data...)
		bad[rng.Intn(len(bad))] ^= 1 << rng.Intn(8)
		if _, err := LoadSnapshot(bad); err == nil {
			t.Fatalf("trial %d: corrupted v2 snapshot loaded", trial)
		}
	}
	// Re-snapshot a deliberately asymmetric table: the slab is then
	// internally consistent (fresh checksum), so only the adjacency
	// validation can catch it.
	if len(fp.Flat.adj.Adj) > 1 {
		row0 := fp.Flat.adj.Neighbors(0)
		if len(row0) > 0 {
			old := row0[0]
			for cand := int32(0); int(cand) < fp.Flat.N; cand++ {
				if cand == old || cand == 0 || fp.Flat.adj.hasNeighbor(int(cand), 0) {
					continue
				}
				row0[0] = cand
				if _, err := LoadSnapshot(fp.Snapshot()); err == nil {
					t.Fatal("snapshot with an asymmetric adjacency table loaded")
				}
				row0[0] = old
				break
			}
		}
	}
}
