package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

// This file implements the actual on-air byte format of the paged D-tree
// (Figure 7 / Table 1) and a client-side decoder that answers point queries
// from raw packets alone. Node layout, little-endian:
//
//	bid      uint16
//	header   uint16  bit0 dim (0=y,1=x) · bit1 multi-packet · bit2 explicit
//	                 LMC follows · bit3 truncated · bits4-15 polyline count
//	left_ptr uint32  bit31 type (1=data): data -> bucket id in bits 0-30;
//	right_ptr        node -> packet in bits 16-30, byte offset in bits 0-15
//	[RMC float32]    only for multi-packet nodes (Section 4.4)
//	[LMC float32]    when bit2 set: multi-packet nodes, and single-packet
//	                 nodes whose pruning hid the CutLo line (the paper
//	                 recovers LMC from the truncated partition's first
//	                 point; storing it explicitly costs one coordinate and
//	                 avoids re-ordering polylines)
//	per polyline: count uint16, then count x (float32 x, float32 y)
//
// Queries land on data regions, so coordinates survive the float64->float32
// narrowing except for points within ~1e-3 of a partition line (for the
// 10^4-unit service areas used here), where either adjacent region is an
// acceptable answer.

const (
	hdrDimX      = 1 << 0
	hdrMulti     = 1 << 1
	hdrLMC       = 1 << 2
	hdrTruncated = 1 << 3
	hdrCountShft = 4
)

// needsExplicitLMC reports whether the single-packet encoding of n must
// carry CutLo: pruning removed extent pieces without any segment being cut
// at the line, so the partition alone no longer reveals it.
func needsExplicitLMC(n *Node) bool {
	return n.Pruned && !n.Truncated
}

// NodeSize returns the serialized size of a node: bid + header + two
// pointers + the partition coordinates with one 2-byte count per polyline,
// plus the RMC and LMC coordinates of Section 4.4 when the node exceeds
// one packet (and LMC alone in the rare pruned-but-untruncated case).
func NodeSize(n *Node, p wire.Params) int {
	base := p.BidSize + p.HeaderSize + 2*p.PointerSize
	for _, pl := range n.Polylines {
		base += 2 + len(pl)*p.PointSize()
	}
	if needsExplicitLMC(n) {
		base += p.CoordSize // LMC
	}
	if base > p.PacketCapacity {
		base += p.CoordSize // RMC
		if !needsExplicitLMC(n) {
			base += p.CoordSize // LMC, now needed for first-packet termination
		}
	}
	return base
}

// EncodePackets serializes the paged tree into real fixed-size packets.
// The root starts at byte 0 of packet 0.
func (pg *Paged) EncodePackets() ([][]byte, error) {
	capacity := pg.Params.PacketCapacity
	out := make([][]byte, pg.Layout.PacketCount)
	for k := range out {
		out[k] = make([]byte, capacity)
	}
	if pg.Tree.Root == nil {
		return out, nil
	}
	// Compute each node's (packet, offset) from the layout's byte order.
	type pos struct{ packet, off int }
	offsets := make(map[int]pos, len(pg.Tree.Nodes))
	remaining := make(map[int]int, len(pg.Tree.Nodes))
	for _, n := range pg.Tree.Nodes {
		remaining[n.ID] = NodeSize(n, pg.Params)
	}
	for k, ids := range pg.Layout.PacketNodes {
		cursor := 0
		for _, id := range ids {
			if _, seen := offsets[id]; !seen {
				offsets[id] = pos{k, cursor}
			}
			take := min(remaining[id], capacity-cursor)
			cursor += take
			remaining[id] -= take
		}
	}
	for id, r := range remaining {
		if r != 0 {
			return nil, fmt.Errorf("core: node %d has %d unplaced bytes", id, r)
		}
	}

	ref := func(c ChildRef) (uint32, error) {
		if c.IsData() {
			if c.Data < 0 || c.Data >= 1<<31 {
				return 0, fmt.Errorf("core: bucket id %d out of range", c.Data)
			}
			return 1<<31 | uint32(c.Data), nil
		}
		p := offsets[c.Node.ID]
		if p.packet >= 1<<15 || p.off >= 1<<16 {
			return 0, fmt.Errorf("core: pointer target (%d, %d) out of range", p.packet, p.off)
		}
		return uint32(p.packet)<<16 | uint32(p.off), nil
	}

	for _, n := range pg.Tree.Nodes {
		buf, err := pg.encodeNode(n, ref)
		if err != nil {
			return nil, err
		}
		if len(buf) != NodeSize(n, pg.Params) {
			return nil, fmt.Errorf("core: node %d encoded to %d bytes, size model says %d",
				n.ID, len(buf), NodeSize(n, pg.Params))
		}
		// Copy across the node's packets.
		p := offsets[n.ID]
		pk, off := p.packet, p.off
		for len(buf) > 0 {
			nw := copy(out[pk][off:], buf)
			buf = buf[nw:]
			pk, off = pk+1, 0
		}
	}
	return out, nil
}

func (pg *Paged) encodeNode(n *Node, ref func(ChildRef) (uint32, error)) ([]byte, error) {
	if len(n.Polylines) >= 1<<12 {
		return nil, fmt.Errorf("core: node %d has %d polylines (max 4095)", n.ID, len(n.Polylines))
	}
	multi := NodeSize(n, pg.Params) > pg.Params.PacketCapacity
	explicitLMC := multi || needsExplicitLMC(n)

	var hdr uint16
	if n.Dim == DimX {
		hdr |= hdrDimX
	}
	if multi {
		hdr |= hdrMulti
	}
	if explicitLMC {
		hdr |= hdrLMC
	}
	if n.Truncated {
		hdr |= hdrTruncated
	}
	hdr |= uint16(len(n.Polylines)) << hdrCountShft

	buf := make([]byte, 0, NodeSize(n, pg.Params))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(n.ID))
	buf = binary.LittleEndian.AppendUint16(buf, hdr)
	for _, c := range []ChildRef{n.Left, n.Right} {
		v, err := ref(c)
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	if multi {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(n.CutHi)))
	}
	if explicitLMC {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(n.CutLo)))
	}
	for _, pl := range n.Polylines {
		if len(pl) >= 1<<16 {
			return nil, fmt.Errorf("core: polyline with %d points", len(pl))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(pl)))
		for _, p := range pl {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(p.X)))
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(p.Y)))
		}
	}
	return buf, nil
}

// PacketProvider hands the client decoder index packets on demand. A slice
// of pre-received packets satisfies it trivially; the streaming client in
// internal/stream blocks until the broadcast delivers the requested packet.
type PacketProvider func(k int) ([]byte, error)

// packetReader reads a byte stream that continues across consecutive
// packets, recording which packets were touched. The scratch buffer is
// reused across reads: a returned slice is valid only until the next read.
type packetReader struct {
	get      PacketProvider
	pk, off  int
	seen     map[int]bool
	trace    *[]int
	capacity int
	scratch  *[]byte
}

func (r *packetReader) touch() {
	if !r.seen[r.pk] {
		r.seen[r.pk] = true
		*r.trace = append(*r.trace, r.pk)
	}
}

func (r *packetReader) read(n int) ([]byte, error) {
	out := (*r.scratch)[:0]
	for n > 0 {
		if r.off < 0 || r.off >= r.capacity {
			return nil, fmt.Errorf("core: byte offset %d outside packet capacity %d", r.off, r.capacity)
		}
		pkt, err := r.get(r.pk)
		if err != nil {
			return nil, err
		}
		if len(pkt) != r.capacity {
			return nil, fmt.Errorf("core: packet %d has %d bytes, capacity %d", r.pk, len(pkt), r.capacity)
		}
		r.touch()
		avail := r.capacity - r.off
		take := min(avail, n)
		out = append(out, pkt[r.off:r.off+take]...)
		r.off += take
		n -= take
		if r.off == r.capacity {
			r.pk, r.off = r.pk+1, 0
		}
	}
	*r.scratch = out
	return out, nil
}

func (r *packetReader) u16() (uint16, error) {
	b, err := r.read(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *packetReader) u32() (uint32, error) {
	b, err := r.read(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *packetReader) f32() (float64, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	return float64(math.Float32frombits(v)), nil
}

// ClientLocate answers a point query from raw packets, exactly as a mobile
// client would: it parses nodes straight off the byte stream, follows typed
// pointers, applies the band tests (using the RMC/LMC of a multi-packet
// node's first packet for early termination) and the ray-crossing parity
// rule. It returns the data bucket id and the packet offsets downloaded.
func ClientLocate(packets [][]byte, capacity int, p geom.Point) (int, []int, error) {
	if len(packets) == 0 {
		return 0, nil, nil // single-region system: no index on air
	}
	return ClientLocateFrom(func(k int) ([]byte, error) {
		if k < 0 || k >= len(packets) {
			return nil, fmt.Errorf("core: packet %d out of range [0,%d)", k, len(packets))
		}
		return packets[k], nil
	}, capacity, p)
}

// ClientLocateFrom is ClientLocate over an arbitrary packet source, letting
// a client that receives packets one by one from a live broadcast drive the
// same decoder (the provider blocks until the packet arrives).
func ClientLocateFrom(get PacketProvider, capacity int, p geom.Point) (int, []int, error) {
	var cl ClientLocator
	return cl.Locate(get, capacity, p)
}

// ClientLocator is the client decoder with its scratch (trace buffer,
// seen-set, cross-packet read buffer) hoisted out of the query, so a mobile
// client issuing queries back to back reuses one set of allocations. The
// trace returned by Locate aliases the locator's buffer and is valid until
// the next call.
type ClientLocator struct {
	trace   []int
	seen    map[int]bool
	scratch []byte
}

// Locate answers one point query from raw packets; see ClientLocateFrom.
func (cl *ClientLocator) Locate(get PacketProvider, capacity int, p geom.Point) (int, []int, error) {
	cl.trace = cl.trace[:0]
	if cl.seen == nil {
		cl.seen = make(map[int]bool, 8)
	} else {
		clear(cl.seen)
	}
	trace := cl.trace
	defer func() { cl.trace = trace }()
	pk, off := 0, 0
	r := packetReader{get: get, seen: cl.seen, trace: &trace, capacity: capacity, scratch: &cl.scratch}
	for hops := 0; hops <= 64; hops++ {
		r.pk, r.off = pk, off
		if _, err := r.u16(); err != nil { // bid
			return 0, nil, err
		}
		hdr, err := r.u16()
		if err != nil {
			return 0, nil, err
		}
		left, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		right, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		dim := DimY
		if hdr&hdrDimX != 0 {
			dim = DimX
		}
		nPoly := int(hdr >> hdrCountShft)
		cx := canonX(dim, p)
		cp := canon(dim, p)

		hi, lo := math.Inf(1), math.Inf(-1)
		haveHi := false
		if hdr&hdrMulti != 0 {
			if hi, err = r.f32(); err != nil {
				return 0, nil, err
			}
			haveHi = true
		}
		if hdr&hdrLMC != 0 {
			if lo, err = r.f32(); err != nil {
				return 0, nil, err
			}
		}

		next := uint32(0)
		decided := false
		if hdr&hdrLMC != 0 && cx <= lo {
			next, decided = left, true
		} else if haveHi && cx >= hi {
			next, decided = right, true
		}
		if !decided {
			// Parse the partition (crossing into the node's continuation
			// packets as needed) and count ray crossings; track the
			// partition extremes for single-packet threshold tests.
			crossings := 0
			partMin, partMax := math.Inf(1), math.Inf(-1)
			var prev geom.Point
			for i := 0; i < nPoly; i++ {
				cnt, err := r.u16()
				if err != nil {
					return 0, nil, err
				}
				for j := 0; j < int(cnt); j++ {
					x, err := r.f32()
					if err != nil {
						return 0, nil, err
					}
					y, err := r.f32()
					if err != nil {
						return 0, nil, err
					}
					pt := canon(dim, geom.Pt(x, y))
					partMin = math.Min(partMin, pt.X)
					partMax = math.Max(partMax, pt.X)
					if j > 0 && (geom.Segment{A: prev, B: pt}).CrossesRightwardRay(cp) {
						crossings++
					}
					prev = pt
				}
			}
			if hdr&hdrLMC == 0 && hdr&hdrTruncated != 0 {
				lo = partMin // the truncated partition starts at the CutLo line
			}
			if !haveHi {
				hi = partMax
			}
			switch {
			case nPoly > 0 && cx <= lo:
				next = left
			case nPoly > 0 && cx >= hi:
				next = right
			case nPoly == 0:
				// Disjoint-extent node: the explicit LMC decides alone.
				if cx <= lo {
					next = left
				} else {
					next = right
				}
			case crossings%2 == 1:
				next = left
			default:
				next = right
			}
		}

		if next&(1<<31) != 0 {
			return int(next &^ (1 << 31)), trace, nil
		}
		pk, off = int(next>>16), int(next&0xffff)
	}
	return 0, nil, fmt.Errorf("core: client walk exceeded 64 hops (corrupt index?)")
}
