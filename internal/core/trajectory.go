package core

import (
	"fmt"

	"airindex/internal/geom"
)

// Continuous (trajectory) queries: a moving client wants to know which data
// region is valid along a straight path and exactly where the answer
// changes — the primitive behind location-dependent cache invalidation
// (the paper's companion problem in reference [23]). Each boundary crossing
// is found geometrically against the current region's ring and the next
// region resolved with the D-tree itself, so a K-crossing trajectory costs
// O(K log N) plus the crossing tests.

// Crossing is one leg of a trajectory: Region is valid from parameter T
// (0 at the start point) until the next leg's T (or 1.0 for the last leg).
type Crossing struct {
	Region int
	T      float64
	At     geom.Point // entry location (the start point for the first leg)
}

// CrossedRegions returns the sequence of regions a straight trajectory from
// a to b visits, in order, with entry parameters. Both endpoints must lie
// inside the service area.
func (t *Tree) CrossedRegions(a, b geom.Point) ([]Crossing, error) {
	if !t.Sub.Area.Contains(a) || !t.Sub.Area.Contains(b) {
		return nil, fmt.Errorf("core: trajectory endpoints must lie in the service area")
	}
	const eps = 1e-9
	cur := t.Locate(a)
	out := []Crossing{{Region: cur, T: 0, At: a}}
	if a == b {
		return out, nil
	}
	tcur := 0.0
	for steps := 0; steps <= t.Sub.N()*4+16; steps++ {
		// The first exit from the current region strictly after tcur.
		tNext, ok := exitParam(t.Sub.Regions[cur].Poly, a, b, tcur+eps)
		if !ok || tNext >= 1 {
			return out, nil
		}
		// Resolve the region just beyond the crossing; nudge forward past
		// the boundary (and past any vertex-grazing ambiguity).
		probe := tNext + eps*10
		var next int
		for {
			if probe >= 1 {
				return out, nil // the crossing grazes the very end
			}
			next = t.Locate(geom.Lerp(a, b, probe))
			if next != cur {
				break
			}
			probe += (1 - tNext) / 1024 // grazing contact; push further
			if probe > tNext+(1-tNext)/8 {
				// The path only touched the boundary and stayed inside.
				break
			}
		}
		if next == cur {
			tcur = probe
			continue
		}
		out = append(out, Crossing{Region: next, T: tNext, At: geom.Lerp(a, b, tNext)})
		cur = next
		tcur = tNext
	}
	return nil, fmt.Errorf("core: trajectory did not terminate after %d crossings", len(out))
}

// exitParam returns the smallest parameter >= tMin at which the segment
// a->b crosses the polygon's boundary, and whether one exists.
func exitParam(pg geom.Polygon, a, b geom.Point, tMin float64) (float64, bool) {
	seg := geom.Segment{A: a, B: b}
	best, found := 0.0, false
	dir := b.Sub(a)
	d2 := dir.Dot(dir)
	for _, e := range pg.Edges() {
		p, ok := seg.Intersection(e)
		if !ok {
			continue
		}
		tt := p.Sub(a).Dot(dir) / d2
		if tt < tMin || tt > 1 {
			continue
		}
		if !found || tt < best {
			best, found = tt, true
		}
	}
	return best, found
}
