package core

import (
	"bytes"
	"testing"

	"airindex/internal/testutil"
)

// TestBuildDeterministicAcrossWorkers pins the hard requirement on the
// parallel builder: node ids, partition choices and tie-breaks — the whole
// marshaled tree — are bit-identical at any worker count.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, n := range []int{2, 3, 17, 150, 400} {
		sub, _ := testutil.RandomVoronoi(t, n, int64(n))
		var want []byte
		for _, workers := range []int{1, 4, 8} {
			tree, err := Build(sub, WithBuildWorkers(workers))
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			data, err := tree.Marshal()
			if err != nil {
				t.Fatalf("n=%d workers=%d: marshal: %v", n, workers, err)
			}
			if want == nil {
				want = data
				continue
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("n=%d: tree at workers=%d differs from workers=1", n, workers)
			}
		}
	}
}

// TestPresortedOrdersMatchPerNodeSort verifies the pre-sorted span orders
// partitioned down the tree reproduce, at every node, exactly what a fresh
// per-node (key, id) sort computes — across default, single-style,
// no-tie-break and access-weighted builds, at several worker counts.
func TestPresortedOrdersMatchPerNodeSort(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 230, 9)
	weights := make([]float64, sub.N())
	for i := range weights {
		weights[i] = float64((i*2654435761)%97) + 0.5
	}
	variants := []struct {
		name string
		opts []BuildOption
	}{
		{"default", nil},
		{"single-style", []BuildOption{WithSingleStyle(DimX, true)}},
		{"no-tie-break", []BuildOption{WithoutTieBreak()}},
		{"weighted", []BuildOption{WithAccessWeights(weights)}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ref, err := Build(sub, append([]BuildOption{withPerNodeSort(), WithBuildWorkers(1)}, v.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				tree, err := Build(sub, append([]BuildOption{WithBuildWorkers(workers)}, v.opts...)...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got, err := tree.Marshal()
				if err != nil {
					t.Fatalf("workers=%d: marshal: %v", workers, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: fast path differs from per-node-sort reference", workers)
				}
			}
		})
	}
}
