package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// This file defines the binary snapshot of a FlatPaged index: one
// little-endian slab with a fixed 64-byte header followed by 64-byte-aligned
// sections, each a straight dump of one arena pool. The layout is chosen so
// a loader can validate section bounds from the header counts alone before
// allocating anything, and so the node slab could be mapped directly were
// the file mmap-ed (records are the in-memory 64-byte layout, serialized
// field by field).
//
//	header (64 B):
//	  magic       [8]B  "DTARENA1"
//	  version     u32   snapshotVersion
//	  capacity    u32   packet capacity (reconstructs wire.DTreeParams)
//	  regions     u32   data regions under the root
//	  nodes       u32   node count
//	  polys       u32   polyline-span count
//	  pts         u32   pooled point count
//	  packets     u32   packet count
//	  pktsLen     u32   pooled node->packet table length
//	  pnLen       u32   pooled packet->node table length
//	  crc32c      u32   Castagnoli CRC of the whole slab with this field
//	                    zeroed, so header corruption is caught too
//	  adjLen      u32   neighbor-table length (version 2 only; zero pad in v1)
//	  pad to 64 B
//	sections, in order, each padded to a 64-byte boundary:
//	  node records   nodes   x 64 B (CutLo f64, CutHi f64, Left i32,
//	                 Right i32, PolyFirst i32, PolyEnd i32, NumRegions i32,
//	                 Dim u8, Flags u8, 26 B pad)
//	  poly spans     polys   x 8 B (Off i32, N i32)
//	  points         pts     x 16 B (X f64, Y f64; canonical frame)
//	  pktIdx         nodes+1 x 4 B
//	  pkts           pktsLen x 4 B
//	  pnIdx          packets+1 x 4 B
//	  packetNodes    pnLen   x 4 B
//	  occupied       packets x 4 B
//
// Version 2 appends the region-adjacency table (continuous queries on air)
// as four more sections; an arena without one still writes version 1, byte
// for byte:
//
//	  adjIdx         regions+1 x 4 B (CSR spine)
//	  adj            adjLen    x 4 B (neighbor region ids)
//	  sites          regions   x 16 B (X f64, Y f64)
//	  area           4 x 8 B (MinX, MinY, MaxX, MaxY f64)
//	  ids            regions   x 4 B (global region ids; identity on a
//	                 single channel)

const (
	snapshotMagic    = "DTARENA1"
	snapshotVersion  = 1
	snapshotVersion2 = 2 // version 1 plus the adjacency sections
	snapHeaderSize   = 64
	snapNodeSize     = 64
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

func alignUp(n int) int { return (n + 63) &^ 63 }

// snapshotSections returns each section's byte offset plus the total size.
// The four adjacency sections (version 2) have zero size in a version-1
// slab, which leaves every version-1 offset and the total unchanged.
func snapshotSections(nodes, polys, pts, packets, pktsLen, pnLen, regions, adjLen int, hasAdj bool) (offs [13]int, total int) {
	at := snapHeaderSize
	sizes := [13]int{
		nodes * snapNodeSize,
		polys * 8,
		pts * 16,
		(nodes + 1) * 4,
		pktsLen * 4,
		(packets + 1) * 4,
		pnLen * 4,
		packets * 4,
	}
	if hasAdj {
		sizes[8] = (regions + 1) * 4
		sizes[9] = adjLen * 4
		sizes[10] = regions * 16
		sizes[11] = 4 * 8
		sizes[12] = regions * 4
	}
	for i, s := range sizes {
		offs[i] = at
		at = alignUp(at + s)
	}
	return offs, at
}

// Snapshot serializes the index into one self-validating slab.
func (fp *FlatPaged) Snapshot() []byte {
	ft := fp.Flat
	nn := len(ft.nodes)
	adj := ft.adj
	adjLen := 0
	version := uint32(snapshotVersion)
	if adj != nil {
		adjLen = len(adj.Adj)
		version = snapshotVersion2
	}
	offs, total := snapshotSections(nn, len(ft.polys), len(ft.pts), fp.packetCount, len(fp.pkts), len(fp.packetNodes), ft.N, adjLen, adj != nil)
	out := make([]byte, total)
	le := binary.LittleEndian

	copy(out[0:8], snapshotMagic)
	le.PutUint32(out[8:], version)
	le.PutUint32(out[12:], uint32(fp.Params.PacketCapacity))
	le.PutUint32(out[16:], uint32(ft.N))
	le.PutUint32(out[20:], uint32(nn))
	le.PutUint32(out[24:], uint32(len(ft.polys)))
	le.PutUint32(out[28:], uint32(len(ft.pts)))
	le.PutUint32(out[32:], uint32(fp.packetCount))
	le.PutUint32(out[36:], uint32(len(fp.pkts)))
	le.PutUint32(out[40:], uint32(len(fp.packetNodes)))
	// crc32c lands at [44:48] once everything else is written.

	at := offs[0]
	for i := range ft.nodes {
		n := &ft.nodes[i]
		b := out[at : at+snapNodeSize]
		le.PutUint64(b[0:], math.Float64bits(n.CutLo))
		le.PutUint64(b[8:], math.Float64bits(n.CutHi))
		le.PutUint32(b[16:], uint32(n.Left))
		le.PutUint32(b[20:], uint32(n.Right))
		le.PutUint32(b[24:], uint32(n.PolyFirst))
		le.PutUint32(b[28:], uint32(n.PolyEnd))
		le.PutUint32(b[32:], uint32(n.NumRegions))
		b[36] = byte(n.Dim)
		b[37] = n.Flags
		at += snapNodeSize
	}
	at = offs[1]
	for _, sp := range ft.polys {
		le.PutUint32(out[at:], uint32(sp.Off))
		le.PutUint32(out[at+4:], uint32(sp.N))
		at += 8
	}
	at = offs[2]
	for _, p := range ft.pts {
		le.PutUint64(out[at:], math.Float64bits(p.X))
		le.PutUint64(out[at+8:], math.Float64bits(p.Y))
		at += 16
	}
	putInt32s := func(at int, vals []int32) {
		for _, v := range vals {
			le.PutUint32(out[at:], uint32(v))
			at += 4
		}
	}
	putInt32s(offs[3], fp.pktIdx)
	putInt32s(offs[4], fp.pkts)
	putInt32s(offs[5], fp.pnIdx)
	putInt32s(offs[6], fp.packetNodes)
	putInt32s(offs[7], fp.occupied)
	if adj != nil {
		le.PutUint32(out[48:], uint32(adjLen))
		putInt32s(offs[8], adj.AdjIdx)
		putInt32s(offs[9], adj.Adj)
		at = offs[10]
		for _, s := range adj.Sites {
			le.PutUint64(out[at:], math.Float64bits(s.X))
			le.PutUint64(out[at+8:], math.Float64bits(s.Y))
			at += 16
		}
		at = offs[11]
		for _, v := range [4]float64{adj.Area.MinX, adj.Area.MinY, adj.Area.MaxX, adj.Area.MaxY} {
			le.PutUint64(out[at:], math.Float64bits(v))
			at += 8
		}
		at = offs[12]
		for i := 0; i < ft.N; i++ {
			le.PutUint32(out[at:], uint32(adj.GlobalID(i)))
			at += 4
		}
	}

	le.PutUint32(out[44:], snapChecksum(out))
	return out
}

// snapChecksum is the slab CRC with the checksum field treated as zero.
func snapChecksum(data []byte) uint32 {
	crc := crc32.Update(0, snapCRC, data[:44])
	crc = crc32.Update(crc, snapCRC, []byte{0, 0, 0, 0})
	return crc32.Update(crc, snapCRC, data[48:])
}

// LoadSnapshot parses and validates a snapshot produced by Snapshot. Every
// count is checked against the slab length before any allocation and every
// index against its pool, so arbitrary (truncated, corrupted, version-
// skewed) input yields an error, never a panic. The returned index has no
// subdivision attached (FlatTree.Sub is nil): point queries and packet
// re-encoding work; window queries need AttachSubdivision.
func LoadSnapshot(data []byte) (*FlatPaged, error) {
	le := binary.LittleEndian
	if len(data) < snapHeaderSize {
		return nil, fmt.Errorf("core: snapshot too short (%d bytes)", len(data))
	}
	if string(data[0:8]) != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", data[0:8])
	}
	v := le.Uint32(data[8:])
	if v != snapshotVersion && v != snapshotVersion2 {
		return nil, fmt.Errorf("core: snapshot version %d, want %d or %d", v, snapshotVersion, snapshotVersion2)
	}
	hasAdj := v == snapshotVersion2
	capacity := int(le.Uint32(data[12:]))
	regions := int(le.Uint32(data[16:]))
	nn := int(le.Uint32(data[20:]))
	npolys := int(le.Uint32(data[24:]))
	npts := int(le.Uint32(data[28:]))
	packets := int(le.Uint32(data[32:]))
	pktsLen := int(le.Uint32(data[36:]))
	pnLen := int(le.Uint32(data[40:]))
	adjLen := 0
	if hasAdj {
		adjLen = int(le.Uint32(data[48:]))
	}

	// Bound every count by what the slab could possibly hold before doing
	// size arithmetic or allocating.
	maxAny := len(data) / 4
	for _, c := range []int{nn, npolys, npts, packets, pktsLen, pnLen, adjLen} {
		if c < 0 || c > maxAny {
			return nil, fmt.Errorf("core: snapshot count %d exceeds slab", c)
		}
	}
	if capacity <= 0 || capacity > 1<<20 {
		return nil, fmt.Errorf("core: snapshot packet capacity %d out of range", capacity)
	}
	if regions < 0 || regions >= 1<<31 {
		return nil, fmt.Errorf("core: snapshot region count %d out of range", regions)
	}
	if hasAdj && regions > maxAny {
		// Version 2 allocates per-region adjacency pools, so the region
		// count itself must fit the slab.
		return nil, fmt.Errorf("core: snapshot region count %d exceeds slab", regions)
	}
	offs, total := snapshotSections(nn, npolys, npts, packets, pktsLen, pnLen, regions, adjLen, hasAdj)
	if len(data) != total {
		return nil, fmt.Errorf("core: snapshot is %d bytes, header implies %d", len(data), total)
	}
	if got, want := snapChecksum(data), le.Uint32(data[44:]); got != want {
		return nil, fmt.Errorf("core: snapshot checksum mismatch (%08x != %08x)", got, want)
	}

	ft := &FlatTree{N: regions}
	fp := &FlatPaged{Flat: ft, Params: wire.DTreeParams(capacity), packetCount: packets}
	if err := fp.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: snapshot capacity %d: %w", capacity, err)
	}

	ft.nodes = make([]FlatNode, nn)
	at := offs[0]
	for i := range ft.nodes {
		b := data[at : at+snapNodeSize]
		n := &ft.nodes[i]
		n.CutLo = math.Float64frombits(le.Uint64(b[0:]))
		n.CutHi = math.Float64frombits(le.Uint64(b[8:]))
		n.Left = int32(le.Uint32(b[16:]))
		n.Right = int32(le.Uint32(b[20:]))
		n.PolyFirst = int32(le.Uint32(b[24:]))
		n.PolyEnd = int32(le.Uint32(b[28:]))
		n.NumRegions = int32(le.Uint32(b[32:]))
		n.Dim = Dimension(b[36])
		n.Flags = b[37]
		at += snapNodeSize
	}
	ft.polys = make([]polySpan, npolys)
	at = offs[1]
	for i := range ft.polys {
		ft.polys[i] = polySpan{Off: int32(le.Uint32(data[at:])), N: int32(le.Uint32(data[at+4:]))}
		at += 8
	}
	ft.pts = make([]geom.Point, npts)
	at = offs[2]
	for i := range ft.pts {
		ft.pts[i].X = math.Float64frombits(le.Uint64(data[at:]))
		ft.pts[i].Y = math.Float64frombits(le.Uint64(data[at+8:]))
		at += 16
	}
	getInt32s := func(at, n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(le.Uint32(data[at:]))
			at += 4
		}
		return out
	}
	fp.pktIdx = getInt32s(offs[3], nn+1)
	fp.pkts = getInt32s(offs[4], pktsLen)
	fp.pnIdx = getInt32s(offs[5], packets+1)
	fp.packetNodes = getInt32s(offs[6], pnLen)
	fp.occupied = getInt32s(offs[7], packets)
	if hasAdj {
		adj := &Adjacency{
			AdjIdx: getInt32s(offs[8], regions+1),
			Adj:    getInt32s(offs[9], adjLen),
			Sites:  make([]geom.Point, regions),
		}
		at = offs[10]
		for i := range adj.Sites {
			adj.Sites[i].X = math.Float64frombits(le.Uint64(data[at:]))
			adj.Sites[i].Y = math.Float64frombits(le.Uint64(data[at+8:]))
			at += 16
		}
		at = offs[11]
		adj.Area.MinX = math.Float64frombits(le.Uint64(data[at:]))
		adj.Area.MinY = math.Float64frombits(le.Uint64(data[at+8:]))
		adj.Area.MaxX = math.Float64frombits(le.Uint64(data[at+16:]))
		adj.Area.MaxY = math.Float64frombits(le.Uint64(data[at+24:]))
		adj.IDs = getInt32s(offs[12], regions)
		identity := true
		for i, id := range adj.IDs {
			if id != int32(i) {
				identity = false
				break
			}
		}
		if identity {
			adj.IDs = nil // single-channel tables round-trip to their built form
		}
		if len(adj.Adj) == 0 {
			adj.Adj = nil // a neighborless table round-trips to its built form too
		}
		if err := adj.Validate(); err != nil {
			return nil, fmt.Errorf("core: snapshot adjacency: %w", err)
		}
		ft.adj = adj
	}

	if err := fp.validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// validate checks every cross-pool index so a loaded snapshot can be
// queried and re-encoded without bounds or termination hazards.
func (fp *FlatPaged) validate() error {
	ft := fp.Flat
	nn := len(ft.nodes)
	if ft.N < 1 {
		return fmt.Errorf("core: snapshot has %d regions (need at least 1)", ft.N)
	}
	if nn == 0 && ft.N > 1 {
		return fmt.Errorf("core: snapshot has no nodes but %d regions", ft.N)
	}
	for i := range ft.nodes {
		n := &ft.nodes[i]
		for _, c := range [2]int32{n.Left, n.Right} {
			if c >= 0 {
				// Children must come later in BFS order; this also rules out
				// reference cycles, so Locate terminates on any valid load.
				if int(c) >= nn || int(c) <= i {
					return fmt.Errorf("core: node %d child ref %d out of order", i, c)
				}
			} else if int(^c) >= ft.N {
				return fmt.Errorf("core: node %d data ref %d out of range", i, ^c)
			}
		}
		if n.PolyFirst < 0 || n.PolyFirst > n.PolyEnd || int(n.PolyEnd) > len(ft.polys) {
			return fmt.Errorf("core: node %d polyline span [%d,%d) invalid", i, n.PolyFirst, n.PolyEnd)
		}
		if n.Dim != DimY && n.Dim != DimX {
			return fmt.Errorf("core: node %d dimension %d invalid", i, n.Dim)
		}
	}
	for i, sp := range ft.polys {
		if sp.Off < 0 || sp.N < 0 || int(sp.Off)+int(sp.N) > len(ft.pts) {
			return fmt.Errorf("core: polyline span %d (%d+%d) outside point pool", i, sp.Off, sp.N)
		}
	}
	checkIdx := func(name string, idx []int32, pool, items int) error {
		if len(idx) != items+1 || idx[0] != 0 || int(idx[items]) != pool {
			return fmt.Errorf("core: snapshot %s table malformed", name)
		}
		for i := 0; i < items; i++ {
			if idx[i] > idx[i+1] {
				return fmt.Errorf("core: snapshot %s table not monotone at %d", name, i)
			}
		}
		return nil
	}
	if err := checkIdx("pktIdx", fp.pktIdx, len(fp.pkts), nn); err != nil {
		return err
	}
	if err := checkIdx("pnIdx", fp.pnIdx, len(fp.packetNodes), fp.packetCount); err != nil {
		return err
	}
	for i := range ft.nodes {
		if fp.pktIdx[i] == fp.pktIdx[i+1] {
			return fmt.Errorf("core: node %d placed in no packet", i)
		}
	}
	for _, pk := range fp.pkts {
		if pk < 0 || int(pk) >= fp.packetCount {
			return fmt.Errorf("core: packet ref %d out of range", pk)
		}
	}
	for _, id := range fp.packetNodes {
		if id < 0 || int(id) >= nn {
			return fmt.Errorf("core: packet-node ref %d out of range", id)
		}
	}
	for _, o := range fp.occupied {
		if o < 0 || int(o) > fp.Params.PacketCapacity {
			return fmt.Errorf("core: occupied %d exceeds capacity", o)
		}
	}
	return nil
}

// AttachSubdivision re-binds the exact region geometry after a snapshot
// load, enabling window queries.
func (fp *FlatPaged) AttachSubdivision(sub *region.Subdivision) error {
	if sub.N() != fp.Flat.N {
		return fmt.Errorf("core: subdivision has %d regions, snapshot %d", sub.N(), fp.Flat.N)
	}
	fp.Flat.Sub = sub
	return nil
}

// WriteSnapshotFile atomically writes the snapshot next to the target path.
func (fp *FlatPaged) WriteSnapshotFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, fp.Snapshot(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshotFile reads and validates a snapshot file.
func LoadSnapshotFile(path string) (*FlatPaged, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadSnapshot(data)
}
