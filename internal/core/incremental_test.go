package core

import (
	"bytes"
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/voronoi"
)

// churnDriver evolves a Voronoi tiling through a Maintainer + Patcher and
// hands each generation's subdivision and canonical dirty set to a test.
type churnDriver struct {
	t     *testing.T
	maint *voronoi.Maintainer
	patch *region.Patcher
	rng   *rand.Rand
	area  geom.Rect
}

func newChurnDriver(t *testing.T, nSites int, seed int64) (*churnDriver, *region.Subdivision) {
	t.Helper()
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(seed))
	sites := make([]geom.Point, nSites)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	maint, err := voronoi.NewMaintainer(area, sites)
	if err != nil {
		t.Fatalf("maintainer: %v", err)
	}
	d := &churnDriver{t: t, maint: maint, patch: region.NewPatcher(area), rng: rng, area: area}
	ids, polys := maint.LiveCells()
	sub, _, err := d.patch.Patch(ids, polys, ids, nil)
	if err != nil {
		t.Fatalf("bootstrap patch: %v", err)
	}
	return d, sub
}

// step applies a batch of random ops and returns the patched subdivision
// with its canonical dirty keys.
func (d *churnDriver) step(batch int) (*region.Subdivision, []int) {
	d.t.Helper()
	d.maint.BeginBatch()
	for i := 0; i < batch; i++ {
		ids, _ := d.maint.LiveSites()
		switch op := d.rng.Intn(3); {
		case op == 0 || len(ids) < 5:
			if _, err := d.maint.Add(geom.Pt(d.rng.Float64()*1000, d.rng.Float64()*1000)); err != nil {
				d.t.Fatalf("add: %v", err)
			}
		case op == 1:
			if err := d.maint.Remove(ids[d.rng.Intn(len(ids))]); err != nil {
				d.t.Fatalf("remove: %v", err)
			}
		default:
			id := ids[d.rng.Intn(len(ids))]
			if _, err := d.maint.Move(id, geom.Pt(d.rng.Float64()*1000, d.rng.Float64()*1000)); err != nil {
				d.t.Fatalf("move: %v", err)
			}
		}
	}
	dirty, removed := d.maint.BatchDelta()
	ids, polys := d.maint.LiveCells()
	sub, canonDirty, err := d.patch.Patch(ids, polys, dirty, removed)
	if err != nil {
		d.t.Fatalf("patch: %v", err)
	}
	return sub, canonDirty
}

// TestIncrementalRebuildMatchesBuild pins the tentpole identity: across a
// churn sequence, every incremental Rebuild marshals byte-identical to a
// from-scratch Build of the same subdivision, while splicing a substantial
// share of the tree.
func TestIncrementalRebuildMatchesBuild(t *testing.T) {
	for _, seed := range []int64{3, 11, 77} {
		d, sub := newChurnDriver(t, 48, seed)
		inc := NewIncremental()
		if _, err := inc.Full(sub); err != nil {
			t.Fatalf("full build: %v", err)
		}
		prevFlat := inc.Tree().Flatten()
		var spliced, total int
		for step := 0; step < 20; step++ {
			batch := 1 + d.rng.Intn(3)
			next, canonDirty := d.step(batch)
			got, delta, err := inc.Rebuild(next, canonDirty)
			if err != nil {
				t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
			}
			want, err := Build(next)
			if err != nil {
				t.Fatalf("seed %d step %d: scratch build: %v", seed, step, err)
			}
			gb, err := got.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			wb, err := want.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gb, wb) {
				t.Fatalf("seed %d step %d (batch %d, %d dirty): incremental marshal differs from scratch",
					seed, step, batch, len(canonDirty))
			}
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if delta.Total != len(got.Nodes) || delta.Spliced+delta.Fresh != delta.Total {
				t.Fatalf("seed %d step %d: inconsistent delta %+v for %d nodes", seed, step, delta, len(got.Nodes))
			}
			spliced += delta.Spliced
			total += delta.Total

			// The patched arena must equal a full Flatten of the same tree
			// slab-for-slab (the snapshot encoder serializes these fields).
			pf := got.FlattenPatched(prevFlat)
			ff := want.Flatten()
			if len(pf.nodes) != len(ff.nodes) || len(pf.polys) != len(ff.polys) || len(pf.pts) != len(ff.pts) {
				t.Fatalf("seed %d step %d: patched arena shape (%d,%d,%d) != full (%d,%d,%d)",
					seed, step, len(pf.nodes), len(pf.polys), len(pf.pts), len(ff.nodes), len(ff.polys), len(ff.pts))
			}
			for i := range pf.nodes {
				if pf.nodes[i] != ff.nodes[i] {
					t.Fatalf("seed %d step %d: patched arena node %d differs", seed, step, i)
				}
			}
			for i := range pf.polys {
				if pf.polys[i] != ff.polys[i] {
					t.Fatalf("seed %d step %d: patched arena span %d differs", seed, step, i)
				}
			}
			for i := range pf.pts {
				if pf.pts[i] != ff.pts[i] {
					t.Fatalf("seed %d step %d: patched arena point %d differs", seed, step, i)
				}
			}
			prevFlat = pf
		}
		// At this tiny scale an op's neighbor fan-out dirties a third of all
		// regions, so splice coverage is modest; the large-scale benchmark
		// pins the >90% rates that matter for cut latency.
		if total > 0 && spliced*8 < total {
			t.Errorf("seed %d: spliced only %d of %d nodes across the run — incremental path not engaging", seed, spliced, total)
		}
	}
}

// TestIncrementalFullMatchesBuild pins that Full is exactly Build.
func TestIncrementalFullMatchesBuild(t *testing.T) {
	_, sub := newChurnDriver(t, 30, 5)
	inc := NewIncremental()
	got, err := inc.Full(sub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := got.Marshal()
	wb, _ := want.Marshal()
	if !bytes.Equal(gb, wb) {
		t.Fatal("Full marshal differs from Build")
	}
}
