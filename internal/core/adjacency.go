package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// This file adds region adjacency to the flat arena: a compact CSR table of
// which Voronoi regions border which, plus each region's site and the service
// area, precomputed at build time and broadcast as a self-describing appendix
// ahead of the D-tree index packets. With the table a client that knows its
// containing region can answer the continuous-query primitives entirely from
// cached state:
//
//   - Contains: exact Voronoi membership ("did I cross a boundary?") — p is
//     in region i iff p is in Area and site i is at least as close as every
//     adjacent site, because a Voronoi cell is the intersection of the
//     half-planes toward its Delaunay neighbors only.
//   - KNN: best-first adjacency walk collecting (dist², id)-ordered sites.
//     The set of cells whose sites lie within any radius r of p is connected
//     in the adjacency graph and contains p's cell (every cell crossed by the
//     segment from p to such a site has its own site within r), so the walk
//     may stop as soon as the frontier's nearest site is strictly farther
//     than the k-th best collected.
//   - Window: breadth-first flood over the regions whose cells intersect a
//     rectangle. Membership is decided by clipping the rectangle by the
//     bisector half-planes toward the region's neighbors — nonempty ⟺ the
//     cell meets the rectangle — and the member set is connected because the
//     rectangle is convex. The seed must be a region whose cell meets the
//     window (continuous clients center the window on their own position, so
//     their containing region qualifies).
//
// For a sharded fabric the same table is built per shard with Area = the
// shard rectangle: a cell clipped to the rectangle keeps exactly the
// bisectors that cross the rectangle, and each such neighbor still has a
// piece inside, so the local ring neighbors are sufficient for membership
// there too (sites themselves may lie outside the rectangle).

// Adjacency is the region-adjacency table of one subdivision in CSR form.
// Region i's neighbors are Adj[AdjIdx[i]:AdjIdx[i+1]], sorted ascending,
// self-free and symmetric. Sites[i] is region i's generating site (it may
// lie outside Area when the table covers one shard of a larger space).
// IDs[i], when set, is region i's stable global id (the sharded fabric's
// global numbering); nil means the identity mapping.
type Adjacency struct {
	Area   geom.Rect
	Sites  []geom.Point
	IDs    []int32
	AdjIdx []int32
	Adj    []int32
}

// N returns the number of regions covered by the table.
func (a *Adjacency) N() int { return len(a.Sites) }

// GlobalID maps a local region index to its stable global id.
func (a *Adjacency) GlobalID(i int) int32 {
	if a.IDs == nil {
		return int32(i)
	}
	return a.IDs[i]
}

// Neighbors returns region i's neighbor list (shared storage; do not modify).
func (a *Adjacency) Neighbors(i int) []int32 {
	return a.Adj[a.AdjIdx[i]:a.AdjIdx[i+1]]
}

// BuildAdjacency derives the adjacency table from a welded subdivision.
// sites[i] must be region i's generating site. Ring edges name the region on
// their far side by stable key (-1 for the area border); the inverse of the
// subdivision's own key assignment turns those into region indices.
func BuildAdjacency(sub *region.Subdivision, area geom.Rect, sites []geom.Point) (*Adjacency, error) {
	n := sub.N()
	if len(sites) != n {
		return nil, fmt.Errorf("core: adjacency needs %d sites, got %d", n, len(sites))
	}
	keyToRegion := make([]int32, sub.MaxKey()+1)
	for i := range keyToRegion {
		keyToRegion[i] = -1
	}
	for i := 0; i < n; i++ {
		k := sub.Key(i)
		if k < 0 || k >= len(keyToRegion) {
			return nil, fmt.Errorf("core: region %d has key %d outside [0,%d)", i, k, len(keyToRegion))
		}
		if keyToRegion[k] >= 0 {
			return nil, fmt.Errorf("core: regions %d and %d share key %d", keyToRegion[k], i, k)
		}
		keyToRegion[k] = int32(i)
	}
	a := &Adjacency{
		Area:   area,
		Sites:  append([]geom.Point(nil), sites...),
		AdjIdx: make([]int32, n+1),
	}
	var scratch []int32
	for i := 0; i < n; i++ {
		scratch = scratch[:0]
		for _, k := range sub.NbrKeys(i) {
			if k < 0 {
				continue // area border
			}
			if int(k) >= len(keyToRegion) || keyToRegion[k] < 0 {
				return nil, fmt.Errorf("core: region %d names unknown neighbor key %d", i, k)
			}
			j := keyToRegion[k]
			if j == int32(i) {
				return nil, fmt.Errorf("core: region %d is its own neighbor", i)
			}
			scratch = append(scratch, j)
		}
		sort.Slice(scratch, func(x, y int) bool { return scratch[x] < scratch[y] })
		for x, j := range scratch {
			if x > 0 && scratch[x-1] == j {
				continue // the same neighbor can own several ring edges
			}
			a.Adj = append(a.Adj, j)
		}
		a.AdjIdx[i+1] = int32(len(a.Adj))
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Validate checks the structural invariants a broadcast-received or
// snapshot-loaded table must satisfy before any walk trusts it: a monotone
// CSR spine, in-range sorted self-free neighbor lists, symmetry
// (a ∈ adj(b) ⟺ b ∈ adj(a)), finite sites and a nonempty finite area.
func (a *Adjacency) Validate() error {
	n := len(a.Sites)
	if len(a.AdjIdx) != n+1 {
		return fmt.Errorf("core: adjacency spine has %d entries for %d regions", len(a.AdjIdx), n)
	}
	if n > 0 && a.AdjIdx[0] != 0 {
		return fmt.Errorf("core: adjacency spine starts at %d", a.AdjIdx[0])
	}
	if len(a.AdjIdx) > 0 && int(a.AdjIdx[n]) != len(a.Adj) {
		return fmt.Errorf("core: adjacency spine ends at %d, table has %d", a.AdjIdx[n], len(a.Adj))
	}
	for i := 0; i < n; i++ {
		if a.AdjIdx[i] > a.AdjIdx[i+1] {
			return fmt.Errorf("core: adjacency spine not monotone at region %d", i)
		}
		// Bound before slicing: a hostile spine may overrun the table long
		// before the monotone walk reaches the entry that proves it.
		if int(a.AdjIdx[i+1]) > len(a.Adj) {
			return fmt.Errorf("core: adjacency spine overruns the table at region %d", i)
		}
		row := a.Adj[a.AdjIdx[i]:a.AdjIdx[i+1]]
		for x, j := range row {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("core: region %d neighbor %d out of range", i, j)
			}
			if int(j) == i {
				return fmt.Errorf("core: region %d lists itself as neighbor", i)
			}
			if x > 0 && row[x-1] >= j {
				return fmt.Errorf("core: region %d neighbor list not strictly ascending", i)
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range a.Neighbors(i) {
			if !a.hasNeighbor(int(j), int32(i)) {
				return fmt.Errorf("core: adjacency not symmetric: %d ∈ adj(%d) but %d ∉ adj(%d)", j, i, i, j)
			}
		}
	}
	for i, s := range a.Sites {
		if math.IsNaN(s.X) || math.IsInf(s.X, 0) || math.IsNaN(s.Y) || math.IsInf(s.Y, 0) {
			return fmt.Errorf("core: site %d is not finite", i)
		}
	}
	if a.IDs != nil {
		if len(a.IDs) != n {
			return fmt.Errorf("core: adjacency has %d global ids for %d regions", len(a.IDs), n)
		}
		for i, id := range a.IDs {
			if id < 0 {
				return fmt.Errorf("core: region %d has negative global id %d", i, id)
			}
		}
	}
	for _, v := range [4]float64{a.Area.MinX, a.Area.MinY, a.Area.MaxX, a.Area.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: adjacency area is not finite")
		}
	}
	if n > 0 && a.Area.IsEmpty() {
		return fmt.Errorf("core: adjacency area is empty")
	}
	return nil
}

// hasNeighbor reports whether j lists i, by binary search over j's row.
func (a *Adjacency) hasNeighbor(j int, i int32) bool {
	row := a.Adj[a.AdjIdx[j]:a.AdjIdx[j+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == i
}

// Contains reports whether p lies in region i's cell: inside the area and at
// least as close to site i as to every adjacent site. Boundary points are
// counted in (ties allowed), matching the subdivision's inclusive polygons.
func (a *Adjacency) Contains(i int, p geom.Point) bool {
	if !a.Area.Contains(p) {
		return false
	}
	own := p.Dist2(a.Sites[i])
	for _, j := range a.Neighbors(i) {
		if p.Dist2(a.Sites[j]) < own-geom.Eps {
			return false
		}
	}
	return true
}

// KNN returns the k regions whose sites are nearest to p, ordered by
// (dist², region id), walking the adjacency graph best-first from seed. The
// seed must be p's containing region for the expansion bound to be sound.
func (a *Adjacency) KNN(seed int, p geom.Point, k int) []int32 {
	n := a.N()
	if k <= 0 || n == 0 || seed < 0 || seed >= n {
		return nil
	}
	if k > n {
		k = n
	}
	visited := make([]bool, n)
	h := adjHeap{items: make([]adjItem, 0, 16)}
	visited[seed] = true
	h.push(adjItem{dist2: p.Dist2(a.Sites[seed]), id: int32(seed)})
	collected := make([]adjItem, 0, k+4)
	// best holds the k smallest dist² collected so far, ascending; the walk
	// may stop once the frontier's nearest site is strictly beyond best[k-1],
	// because every cell with a site that close is already collected: the
	// ≤-radius cell set is connected and contains the seed, so an unvisited
	// member would sit on the frontier at a smaller key.
	best := make([]float64, 0, k)
	for h.len() > 0 {
		it := h.pop()
		if len(best) == k && it.dist2 > best[k-1] {
			break
		}
		collected = append(collected, it)
		if pos := sort.SearchFloat64s(best, it.dist2); pos < k {
			if len(best) < k {
				best = append(best, 0)
			}
			copy(best[pos+1:], best[pos:])
			best[pos] = it.dist2
		}
		for _, j := range a.Neighbors(int(it.id)) {
			if !visited[j] {
				visited[j] = true
				h.push(adjItem{dist2: p.Dist2(a.Sites[j]), id: j})
			}
		}
	}
	sort.Slice(collected, func(x, y int) bool {
		if collected[x].dist2 != collected[y].dist2 {
			return collected[x].dist2 < collected[y].dist2
		}
		return collected[x].id < collected[y].id
	})
	if len(collected) > k {
		collected = collected[:k]
	}
	out := make([]int32, len(collected))
	for i, it := range collected {
		out[i] = it.id
	}
	return out
}

// Window returns the regions whose cells intersect w, sorted ascending,
// flooding the adjacency graph from seed. The seed's cell must intersect w
// (clients center the window on their own position, so their containing
// region qualifies); seed is expanded even when numerically judged out.
func (a *Adjacency) Window(seed int, w geom.Rect) []int32 {
	n := a.N()
	if n == 0 || seed < 0 || seed >= n {
		return nil
	}
	b := w.Intersection(a.Area)
	if b.IsEmpty() {
		return nil
	}
	base := geom.Polygon{
		geom.Pt(b.MinX, b.MinY), geom.Pt(b.MaxX, b.MinY),
		geom.Pt(b.MaxX, b.MaxY), geom.Pt(b.MinX, b.MaxY),
	}
	member := func(i int) bool {
		poly := base
		for _, j := range a.Neighbors(i) {
			poly = geom.ClipHalfPlane(poly, geom.Bisector(a.Sites[i], a.Sites[j]))
			if len(poly) == 0 {
				return false
			}
		}
		return true
	}
	visited := make([]bool, n)
	queue := make([]int32, 0, 16)
	visited[seed] = true
	queue = append(queue, int32(seed))
	var out []int32
	for qi := 0; qi < len(queue); qi++ {
		i := queue[qi]
		in := member(int(i))
		if in {
			out = append(out, i)
		}
		if in || qi == 0 {
			for _, j := range a.Neighbors(int(i)) {
				if !visited[j] {
					visited[j] = true
					queue = append(queue, j)
				}
			}
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

// adjItem orders the best-first frontier by (dist², id).
type adjItem struct {
	dist2 float64
	id    int32
}

func (x adjItem) less(y adjItem) bool {
	if x.dist2 != y.dist2 {
		return x.dist2 < y.dist2
	}
	return x.id < y.id
}

// adjHeap is a plain binary min-heap over adjItem (container/heap would
// force an interface allocation per push on this hot walk).
type adjHeap struct{ items []adjItem }

func (h *adjHeap) len() int { return len(h.items) }

func (h *adjHeap) push(it adjItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *adjHeap) pop() adjItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].less(h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.items[r].less(h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// --- wire appendix ---------------------------------------------------------
//
// The table rides the broadcast as a self-describing run of index packets in
// front of the D-tree (and behind the channel directory on a sharded
// fabric), mirroring the directory's idiom: packet 0 opens with a fixed
// header carrying its own packet count, so a tuned-in client learns how far
// the appendix extends from one packet and later generations may grow or
// shrink it freely.
//
//	packet 0 header (45 B, little-endian):
//	  magic   [2]B "AJ"
//	  version u8   adjacencyVersion
//	  packets u16  appendix packet count, header included
//	  regions u32  region count N
//	  adjLen  u32  neighbor-table length
//	  area    4xf64 MinX MinY MaxX MaxY
//	body, streamed across the remaining bytes and subsequent packets, each
//	padded to the packet capacity:
//	  adjIdx  (N+1) x u32
//	  adj     adjLen x u32
//	  sites   N x (f64 X, f64 Y)   — full doubles: clients recompute
//	                                 distances bit-identically to the server
//	  ids     N x u32              — global region ids (identity on a
//	                                 single channel)

const (
	adjacencyMagic   = "AJ"
	adjacencyVersion = 1
	adjHeaderSize    = 45
	adjMaxRegions    = 1 << 27 // caps allocation from a hostile header
)

// adjacencyBodySize is the byte length of the streamed body after the header.
func adjacencyBodySize(n, adjLen int) int { return (n+1)*4 + adjLen*4 + n*16 + n*4 }

// EncodePackets serializes the table into capacity-sized packets.
func (a *Adjacency) EncodePackets(capacity int) ([][]byte, error) {
	if capacity < adjHeaderSize {
		return nil, fmt.Errorf("core: packet capacity %d cannot carry the %d-byte adjacency header", capacity, adjHeaderSize)
	}
	n := a.N()
	total := adjHeaderSize + adjacencyBodySize(n, len(a.Adj))
	count := (total + capacity - 1) / capacity
	if count > math.MaxUint16 {
		return nil, fmt.Errorf("core: adjacency appendix needs %d packets (max %d)", count, math.MaxUint16)
	}
	le := binary.LittleEndian
	buf := make([]byte, count*capacity)
	copy(buf[0:2], adjacencyMagic)
	buf[2] = adjacencyVersion
	le.PutUint16(buf[3:], uint16(count))
	le.PutUint32(buf[5:], uint32(n))
	le.PutUint32(buf[9:], uint32(len(a.Adj)))
	le.PutUint64(buf[13:], math.Float64bits(a.Area.MinX))
	le.PutUint64(buf[21:], math.Float64bits(a.Area.MinY))
	le.PutUint64(buf[29:], math.Float64bits(a.Area.MaxX))
	le.PutUint64(buf[37:], math.Float64bits(a.Area.MaxY))
	at := adjHeaderSize
	for _, v := range a.AdjIdx {
		le.PutUint32(buf[at:], uint32(v))
		at += 4
	}
	for _, v := range a.Adj {
		le.PutUint32(buf[at:], uint32(v))
		at += 4
	}
	for _, s := range a.Sites {
		le.PutUint64(buf[at:], math.Float64bits(s.X))
		le.PutUint64(buf[at+8:], math.Float64bits(s.Y))
		at += 16
	}
	for i := 0; i < n; i++ {
		le.PutUint32(buf[at:], uint32(a.GlobalID(i)))
		at += 4
	}
	pkts := make([][]byte, count)
	for i := range pkts {
		pkts[i] = buf[i*capacity : (i+1)*capacity]
	}
	return pkts, nil
}

// AdjacencyPacketCount parses the appendix length from its first packet, so
// a client can fetch the rest (and a point-query client can skip past it).
func AdjacencyPacketCount(pkt0 []byte) (int, error) {
	if len(pkt0) < adjHeaderSize {
		return 0, fmt.Errorf("core: adjacency packet 0 is %d bytes, header needs %d", len(pkt0), adjHeaderSize)
	}
	if string(pkt0[0:2]) != adjacencyMagic {
		return 0, fmt.Errorf("core: bad adjacency magic %q", pkt0[0:2])
	}
	if pkt0[2] != adjacencyVersion {
		return 0, fmt.Errorf("core: adjacency version %d, want %d", pkt0[2], adjacencyVersion)
	}
	count := int(binary.LittleEndian.Uint16(pkt0[3:]))
	if count == 0 {
		return 0, fmt.Errorf("core: adjacency appendix claims zero packets")
	}
	return count, nil
}

// DecodeAdjacency reassembles and validates a table from its appendix
// packets (exactly the run EncodePackets produced, in order).
func DecodeAdjacency(pkts [][]byte) (*Adjacency, error) {
	if len(pkts) == 0 {
		return nil, fmt.Errorf("core: no adjacency packets")
	}
	count, err := AdjacencyPacketCount(pkts[0])
	if err != nil {
		return nil, err
	}
	if count != len(pkts) {
		return nil, fmt.Errorf("core: adjacency appendix has %d packets, header says %d", len(pkts), count)
	}
	le := binary.LittleEndian
	n := int(le.Uint32(pkts[0][5:]))
	adjLen := int(le.Uint32(pkts[0][9:]))
	if n < 1 || n > adjMaxRegions || adjLen < 0 || adjLen > adjMaxRegions {
		return nil, fmt.Errorf("core: adjacency counts %d/%d out of range", n, adjLen)
	}
	capacity := len(pkts[0])
	total := adjHeaderSize + adjacencyBodySize(n, adjLen)
	if want := (total + capacity - 1) / capacity; want != count {
		return nil, fmt.Errorf("core: adjacency counts imply %d packets, header says %d", want, count)
	}
	buf := make([]byte, 0, count*capacity)
	for i, p := range pkts {
		if len(p) != capacity {
			return nil, fmt.Errorf("core: adjacency packet %d is %d bytes, want %d", i, len(p), capacity)
		}
		buf = append(buf, p...)
	}
	a := &Adjacency{
		Area: geom.Rect{
			MinX: math.Float64frombits(le.Uint64(buf[13:])),
			MinY: math.Float64frombits(le.Uint64(buf[21:])),
			MaxX: math.Float64frombits(le.Uint64(buf[29:])),
			MaxY: math.Float64frombits(le.Uint64(buf[37:])),
		},
		Sites:  make([]geom.Point, n),
		IDs:    make([]int32, n),
		AdjIdx: make([]int32, n+1),
		Adj:    make([]int32, adjLen),
	}
	at := adjHeaderSize
	for i := range a.AdjIdx {
		a.AdjIdx[i] = int32(le.Uint32(buf[at:]))
		at += 4
	}
	for i := range a.Adj {
		a.Adj[i] = int32(le.Uint32(buf[at:]))
		at += 4
	}
	for i := range a.Sites {
		a.Sites[i].X = math.Float64frombits(le.Uint64(buf[at:]))
		a.Sites[i].Y = math.Float64frombits(le.Uint64(buf[at+8:]))
		at += 16
	}
	identity := true
	for i := range a.IDs {
		a.IDs[i] = int32(le.Uint32(buf[at:]))
		if a.IDs[i] != int32(i) {
			identity = false
		}
		at += 4
	}
	if identity {
		a.IDs = nil // single-channel tables round-trip to their built form
	}
	if len(a.Adj) == 0 {
		a.Adj = nil // a neighborless table round-trips to its built form too
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// SetAdjacency attaches the table to the arena. ProgramFromFlat then
// broadcasts it as the index appendix, and Snapshot persists it (bumping the
// snapshot version; adjacency-free arenas keep the prior format byte for
// byte).
func (ft *FlatTree) SetAdjacency(a *Adjacency) error {
	if a != nil && a.N() != ft.N {
		return fmt.Errorf("core: adjacency covers %d regions, arena has %d", a.N(), ft.N)
	}
	ft.adj = a
	return nil
}

// Adjacency returns the attached table, or nil.
func (ft *FlatTree) Adjacency() *Adjacency { return ft.adj }
