package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
)

func TestSearchRectMatchesBruteForce(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 150, 101)
	rng := rand.New(rand.NewSource(102))
	for q := 0; q < 800; q++ {
		x := area.MinX + rng.Float64()*area.W()
		y := area.MinY + rng.Float64()*area.H()
		w := geom.Rect{
			MinX: x, MinY: y,
			MaxX: x + rng.Float64()*3000, MaxY: y + rng.Float64()*3000,
		}
		got := tree.SearchRect(w)
		var want []int
		for i := range tree.Sub.Regions {
			if regionIntersectsRect(tree.Sub.Regions[i].Poly, w) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("window %+v: got %d regions, want %d\n got %v\nwant %v", w, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("window %+v: got %v want %v", w, got, want)
			}
		}
	}
}

func TestSearchRectWholeAreaReturnsAll(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 60, 103)
	got := tree.SearchRect(area)
	if len(got) != 60 {
		t.Fatalf("whole-area window returned %d of 60", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("ids not dense ascending: %v", got)
		}
	}
}

func TestSearchRectTinyWindowEqualsLocate(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 120, 104)
	rng := rand.New(rand.NewSource(105))
	for q := 0; q < 500; q++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		w := geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		got := tree.SearchRect(w)
		want := tree.Locate(p)
		found := false
		for _, id := range got {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("point-window at %v missed Locate's region %d (got %v)", p, want, got)
		}
	}
}

func TestSearchRectEmptyAndOutside(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 30, 106)
	if got := tree.SearchRect(geom.EmptyRect()); got != nil {
		t.Errorf("empty window returned %v", got)
	}
	outside := geom.Rect{MinX: 20000, MinY: 20000, MaxX: 30000, MaxY: 30000}
	if got := tree.SearchRect(outside); len(got) != 0 {
		t.Errorf("outside window returned %v", got)
	}
}

func TestSearchRectSingleRegion(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 1, 107)
	if got := tree.SearchRect(area); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-region window = %v", got)
	}
}
