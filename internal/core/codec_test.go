package core

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

func TestEncodeFillsPacketsPerLayout(t *testing.T) {
	tree, _, _ := buildVoronoiTree(t, 180, 91)
	for _, capacity := range []int{64, 256, 2048} {
		paged, err := tree.Page(wire.DTreeParams(capacity))
		if err != nil {
			t.Fatal(err)
		}
		packets, err := paged.EncodePackets()
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if len(packets) != paged.IndexPackets() {
			t.Fatalf("capacity %d: %d packets, layout says %d", capacity, len(packets), paged.IndexPackets())
		}
		for k, pkt := range packets {
			if len(pkt) != capacity {
				t.Fatalf("packet %d has %d bytes", k, len(pkt))
			}
			// Bytes beyond the occupied prefix must be zero padding.
			for i := paged.Layout.Occupied[k]; i < capacity; i++ {
				if pkt[i] != 0 {
					t.Fatalf("capacity %d packet %d: non-zero padding at %d", capacity, k, i)
				}
			}
		}
	}
}

func TestClientLocateMatchesPaged(t *testing.T) {
	tree, _, area := buildVoronoiTree(t, 250, 92)
	for _, capacity := range []int{64, 128, 512, 2048} {
		paged, err := tree.Page(wire.DTreeParams(capacity))
		if err != nil {
			t.Fatal(err)
		}
		packets, err := paged.EncodePackets()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(93))
		mismatch := 0
		for i := 0; i < 4000; i++ {
			p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
			want, wantTrace := paged.Locate(p)
			got, gotTrace, err := ClientLocate(packets, capacity, p)
			if err != nil {
				t.Fatalf("capacity %d: %v", capacity, err)
			}
			if got != want {
				// float32 narrowing moves partition lines by ~1e-3 units;
				// accept the neighbor region when the point is that close
				// to its boundary.
				if !nearRegionBoundary(tree, p, got, 0.05) {
					t.Fatalf("capacity %d query %v: client %d, paged %d", capacity, p, got, want)
				}
				mismatch++
				continue
			}
			if len(gotTrace) != len(wantTrace) {
				t.Fatalf("capacity %d query %v: client trace %v, paged %v", capacity, p, gotTrace, wantTrace)
			}
			for j := range gotTrace {
				if gotTrace[j] != wantTrace[j] {
					t.Fatalf("capacity %d query %v: traces diverge: %v vs %v", capacity, p, gotTrace, wantTrace)
				}
			}
		}
		if mismatch > 8 {
			t.Errorf("capacity %d: %d float32 boundary mismatches of 4000", capacity, mismatch)
		}
	}
}

// nearRegionBoundary reports whether p lies within tol of region id's
// boundary (or inside it) — the float32 ambiguity zone.
func nearRegionBoundary(tree *Tree, p geom.Point, id int, tol float64) bool {
	if id < 0 || id >= tree.Sub.N() {
		return false
	}
	poly := tree.Sub.Regions[id].Poly
	if poly.Contains(p) {
		return true
	}
	for _, e := range poly.Edges() {
		// Distance from p to segment e.
		ab := e.B.Sub(e.A)
		tt := p.Sub(e.A).Dot(ab) / ab.Dot(ab)
		if tt < 0 {
			tt = 0
		} else if tt > 1 {
			tt = 1
		}
		if p.Dist(geom.Lerp(e.A, e.B, tt)) <= tol {
			return true
		}
	}
	return false
}

func TestClientLocateEmptyIndex(t *testing.T) {
	id, trace, err := ClientLocate(nil, 64, geom.Pt(1, 1))
	if err != nil || id != 0 || trace != nil {
		t.Errorf("empty index: %d %v %v", id, trace, err)
	}
}

func TestClientLocateCorruptIndex(t *testing.T) {
	// A packet of garbage pointing at itself must hit the hop guard or a
	// read error, never loop forever.
	pkt := make([]byte, 64)
	if _, _, err := ClientLocate([][]byte{pkt}, 64, geom.Pt(1, 1)); err == nil {
		t.Skip("all-zero packet decodes as a degenerate node; acceptable")
	}
}

func TestEncodeRunningExample(t *testing.T) {
	// End-to-end on the paper's running example at a capacity where the
	// whole tree fits one packet.
	tree, _, _ := buildVoronoiTree(t, 4, 94)
	paged, err := tree.Page(wire.DTreeParams(2048))
	if err != nil {
		t.Fatal(err)
	}
	packets, err := paged.EncodePackets()
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 1 {
		t.Fatalf("4-region tree should fit one 2 KB packet, got %d", len(packets))
	}
}
