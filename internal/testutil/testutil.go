// Package testutil provides shared fixtures for the test suites: the
// paper's running example (Figure 1: four cities with polygonal
// boundaries), random Voronoi subdivisions, and query-point generators.
package testutil

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/voronoi"
)

// Area is the unit service area used by hand-crafted fixtures.
var Area = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

// RunningExamplePolys returns the four data regions of a running example
// shaped like the paper's Figure 1: a y-divider polyline (v2,v3,v4,v6)
// splitting the square into upper/lower halves, each split once more.
func RunningExamplePolys() []geom.Polygon {
	v1 := geom.Pt(35, 100)
	v2 := geom.Pt(0, 55)
	v3 := geom.Pt(40, 60)
	v4 := geom.Pt(65, 45)
	v5 := geom.Pt(60, 0)
	v6 := geom.Pt(100, 50)
	return []geom.Polygon{
		{geom.Pt(0, 100), v2, v3, v1},       // P1: top-left
		{v1, v3, v4, v6, geom.Pt(100, 100)}, // P2: top-right
		{geom.Pt(0, 0), v5, v4, v3, v2},     // P3: bottom-left
		{v5, geom.Pt(100, 0), v6, v4},       // P4: bottom-right
	}
}

// RunningExample builds the running-example subdivision.
func RunningExample(tb testing.TB) *region.Subdivision {
	tb.Helper()
	sub, err := region.New(Area, RunningExamplePolys())
	if err != nil {
		tb.Fatalf("running example: %v", err)
	}
	if err := sub.Validate(); err != nil {
		tb.Fatalf("running example invalid: %v", err)
	}
	return sub
}

// RandomSites returns n distinct random sites in area.
func RandomSites(area geom.Rect, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
	}
	return sites
}

// RandomVoronoi builds a Voronoi subdivision over n random sites in the
// standard 10000 x 10000 area and returns it with the sites.
func RandomVoronoi(tb testing.TB, n int, seed int64) (*region.Subdivision, []geom.Point) {
	tb.Helper()
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	sites := RandomSites(area, n, seed)
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		tb.Fatalf("voronoi(%d, seed %d): %v", n, seed, err)
	}
	return sub, sites
}

// QueryPoints returns n random points in area.
func QueryPoints(area geom.Rect, n int, seed int64) []geom.Point {
	return RandomSites(area, n, seed)
}
