// Package dataset provides the three evaluation datasets of the paper's
// Section 5 (Figure 9). UNIFORM is generated exactly as described: 1000
// points uniform in a square. The HOSPITAL (N=185) and PARK (N=1102)
// datasets were extracted from a Southern-California point collection whose
// distribution site is defunct; they are substituted by deterministic
// synthetic generators with the same cardinalities and the property the
// evaluation depends on — highly clustered points along a coastal band —
// as recorded in DESIGN.md. Valid scopes are derived from the point sites
// with the Voronoi-diagram approach, exactly as in the paper.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/voronoi"
)

// Area is the service area used by all datasets.
var Area = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

// minSeparation keeps sites apart so Voronoi construction stays
// well-conditioned (relative separation ~1e-4 of the area side).
const minSeparation = 1.0

// Dataset is a named point set over the service area.
type Dataset struct {
	Name  string
	Area  geom.Rect
	Sites []geom.Point
}

// N returns the number of sites (the paper's number of data instances).
func (d Dataset) N() int { return len(d.Sites) }

// Subdivision derives the valid scopes of the sites as Voronoi cells.
func (d Dataset) Subdivision() (*region.Subdivision, error) {
	sub, err := voronoi.Subdivision(d.Area, d.Sites)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	return sub, nil
}

// Uniform generates n uniformly distributed sites (the paper's UNIFORM
// dataset uses n = 1000).
func Uniform(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	g := newGenerator(rng)
	for g.count() < n {
		g.add(geom.Pt(
			Area.MinX+rng.Float64()*Area.W(),
			Area.MinY+rng.Float64()*Area.H(),
		))
	}
	return Dataset{Name: fmt.Sprintf("UNIFORM(%d)", n), Area: Area, Sites: g.sites}
}

// ClusterSpec parametrizes a clustered synthetic dataset.
type ClusterSpec struct {
	N            int     // total sites
	Clusters     int     // number of Gaussian clusters
	Sigma        float64 // cluster standard deviation (area units)
	UniformShare float64 // fraction of sites scattered uniformly
	Seed         int64
}

// Clustered generates a Gaussian-mixture point set whose cluster centers
// follow a jittered diagonal band (mimicking coastal Southern California).
func Clustered(name string, spec ClusterSpec) Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	type cluster struct {
		c geom.Point
		w float64
	}
	clusters := make([]cluster, spec.Clusters)
	var wsum float64
	for i := range clusters {
		// Band from the north-west to the south-east with jitter.
		t := (float64(i) + rng.Float64()) / float64(spec.Clusters)
		cx := 1000 + 8000*t + rng.NormFloat64()*800
		cy := 9000 - 8000*t + rng.NormFloat64()*800
		w := 0.2 + rng.Float64()
		clusters[i] = cluster{geom.Pt(clampTo(cx, Area.MinX+200, Area.MaxX-200), clampTo(cy, Area.MinY+200, Area.MaxY-200)), w}
		wsum += w
	}
	g := newGenerator(rng)
	for g.count() < spec.N {
		if rng.Float64() < spec.UniformShare {
			g.add(geom.Pt(Area.MinX+rng.Float64()*Area.W(), Area.MinY+rng.Float64()*Area.H()))
			continue
		}
		// Pick a cluster by weight.
		r := rng.Float64() * wsum
		k := 0
		for ; k < len(clusters)-1; k++ {
			r -= clusters[k].w
			if r <= 0 {
				break
			}
		}
		p := geom.Pt(
			clusters[k].c.X+rng.NormFloat64()*spec.Sigma,
			clusters[k].c.Y+rng.NormFloat64()*spec.Sigma,
		)
		if !Area.Contains(p) {
			continue
		}
		g.add(p)
	}
	return Dataset{Name: name, Area: Area, Sites: g.sites}
}

// Hospital is the stand-in for the paper's HOSPITAL dataset: 185 highly
// clustered sites (hospital locations concentrate in population centers).
func Hospital() Dataset {
	return Clustered("HOSPITAL(185)", ClusterSpec{
		N: 185, Clusters: 9, Sigma: 450, UniformShare: 0.08, Seed: 1850,
	})
}

// Park is the stand-in for the paper's PARK dataset: 1102 sites, strongly
// clustered with a light uniform background.
func Park() Dataset {
	return Clustered("PARK(1102)", ClusterSpec{
		N: 1102, Clusters: 16, Sigma: 220, UniformShare: 0.03, Seed: 11020,
	})
}

// Paper returns the three datasets of the paper's evaluation in its order.
func Paper() []Dataset {
	return []Dataset{Uniform(1000, 1000), Hospital(), Park()}
}

// LargeUniform is the scaling preset for build benchmarks and profiling: n
// uniform sites (default 50000 when n <= 0) under a fixed seed, so any run
// at the same n reproduces the same dataset.
func LargeUniform(n int) Dataset {
	if n <= 0 {
		n = 50000
	}
	return Uniform(n, 50*1000*1000)
}

// LargeClustered is the clustered scaling preset: cluster count grows with
// sqrt(n) at roughly constant within-cluster density, preserving the
// HOSPITAL/PARK-like skew that stresses the grid's expanding-ring search at
// any size (default 50000 when n <= 0).
func LargeClustered(n int) Dataset {
	if n <= 0 {
		n = 50000
	}
	clusters := int(math.Sqrt(float64(n)))
	if clusters < 4 {
		clusters = 4
	}
	return Clustered(fmt.Sprintf("LARGE-CLUSTERED(%d)", n), ClusterSpec{
		N: n, Clusters: clusters, Sigma: 300, UniformShare: 0.05, Seed: int64(77 * n),
	})
}

// generator accumulates sites while enforcing the minimum separation.
type generator struct {
	rng   *rand.Rand
	sites []geom.Point
	grid  map[[2]int][]int
}

func newGenerator(rng *rand.Rand) *generator {
	return &generator{rng: rng, grid: make(map[[2]int][]int)}
}

func (g *generator) count() int { return len(g.sites) }

func (g *generator) cell(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X / minSeparation)), int(math.Floor(p.Y / minSeparation))}
}

// add appends p unless it violates the minimum separation.
func (g *generator) add(p geom.Point) bool {
	c := g.cell(p)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, i := range g.grid[[2]int{c[0] + dx, c[1] + dy}] {
				if g.sites[i].Dist(p) < minSeparation {
					return false
				}
			}
		}
	}
	g.grid[c] = append(g.grid[c], len(g.sites))
	g.sites = append(g.sites, p)
	return true
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
