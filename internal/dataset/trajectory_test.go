package dataset

import (
	"reflect"
	"testing"

	"airindex/internal/geom"
)

var trajArea = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

func TestTrajectoryDeterministicAndBounded(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(seed int64) Trajectory
	}{
		{"waypoint", func(seed int64) Trajectory { return RandomWaypoint(trajArea, 200, seed, 50, 900) }},
		{"commuter", func(seed int64) Trajectory { return Commuter(trajArea, 200, seed, 4, 50, 900, 6) }},
	} {
		a, b := tc.gen(42), tc.gen(42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different trajectories", tc.name)
		}
		if c := tc.gen(43); reflect.DeepEqual(a.Positions, c.Positions) {
			t.Fatalf("%s: different seeds produced identical trajectories", tc.name)
		}
		if a.Cycles() != 200 {
			t.Fatalf("%s: %d cycles, want 200", tc.name, a.Cycles())
		}
		for i, p := range a.Positions {
			if !trajArea.Contains(p) {
				t.Fatalf("%s: position %d = %v escapes the service area", tc.name, i, p)
			}
		}
		moved := false
		for i := 1; i < len(a.Positions); i++ {
			if a.Positions[i] != a.Positions[i-1] {
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("%s: the client never moved", tc.name)
		}
	}
}

func TestTrajectoryAtParks(t *testing.T) {
	tr := RandomWaypoint(trajArea, 10, 7, 100, 200)
	if got, want := tr.At(-3), tr.Positions[0]; got != want {
		t.Fatalf("At(-3) = %v, want first position %v", got, want)
	}
	if got, want := tr.At(10_000), tr.Positions[9]; got != want {
		t.Fatalf("At past the horizon = %v, want parked last position %v", got, want)
	}
	var empty Trajectory
	if got := empty.At(5); got != (geom.Point{}) {
		t.Fatalf("empty trajectory At = %v, want origin", got)
	}
}

func TestTrajectorySerializationRoundTrip(t *testing.T) {
	fleet, err := Fleet("commuter", trajArea, 5, 64, 999, 50, 700)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalTrajectories(fleet)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTrajectories(data)
	if err != nil {
		t.Fatal(err)
	}
	// Go prints float64 shortest-round-trip, so the restore is bit-exact.
	if !reflect.DeepEqual(fleet, back) {
		t.Fatal("fleet did not survive the JSON round trip bit-for-bit")
	}
}

func TestFleetSeedsDiffer(t *testing.T) {
	fleet, err := Fleet("waypoint", trajArea, 4, 32, 5, 50, 700)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fleet); i++ {
		if reflect.DeepEqual(fleet[0].Positions, fleet[i].Positions) {
			t.Fatalf("fleet members 0 and %d share a path", i)
		}
	}
	if _, err := Fleet("teleport", trajArea, 1, 8, 5, 50, 700); err == nil {
		t.Fatal("unknown model accepted")
	}
}
