package dataset

import (
	"math"
	"testing"
)

func TestPaperDatasets(t *testing.T) {
	ds := Paper()
	if len(ds) != 3 {
		t.Fatalf("paper datasets = %d", len(ds))
	}
	wantN := []int{1000, 185, 1102}
	for i, d := range ds {
		if d.N() != wantN[i] {
			t.Errorf("%s: N = %d, want %d", d.Name, d.N(), wantN[i])
		}
		for _, p := range d.Sites {
			if !d.Area.Contains(p) {
				t.Fatalf("%s: site %v outside area", d.Name, p)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Uniform(100, 7), Uniform(100, 7)
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("uniform not deterministic at %d", i)
		}
	}
	h1, h2 := Hospital(), Hospital()
	for i := range h1.Sites {
		if h1.Sites[i] != h2.Sites[i] {
			t.Fatalf("hospital not deterministic at %d", i)
		}
	}
	if c := Uniform(100, 8); c.Sites[0] == a.Sites[0] {
		t.Error("different seeds should differ")
	}
}

func TestMinSeparation(t *testing.T) {
	d := Park()
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			if d.Sites[i].Dist(d.Sites[j]) < minSeparation {
				t.Fatalf("sites %d and %d are %.3g apart", i, j, d.Sites[i].Dist(d.Sites[j]))
			}
		}
	}
}

// clusteringScore is the mean nearest-neighbor distance relative to the
// expected value for a uniform point set (~0.5/sqrt(n/A)); clustered sets
// score well below 1.
func clusteringScore(d Dataset) float64 {
	var sum float64
	for i, p := range d.Sites {
		best := math.Inf(1)
		for j, q := range d.Sites {
			if i != j {
				if dd := p.Dist2(q); dd < best {
					best = dd
				}
			}
		}
		sum += math.Sqrt(best)
	}
	mean := sum / float64(d.N())
	expected := 0.5 / math.Sqrt(float64(d.N())/d.Area.Area())
	return mean / expected
}

func TestClusteredAreClustered(t *testing.T) {
	if s := clusteringScore(Uniform(500, 3)); s < 0.85 || s > 1.15 {
		t.Errorf("uniform clustering score %v, want about 1", s)
	}
	if s := clusteringScore(Hospital()); s > 0.7 {
		t.Errorf("hospital clustering score %v, want well below 1", s)
	}
	if s := clusteringScore(Park()); s > 0.6 {
		t.Errorf("park clustering score %v, want well below 1", s)
	}
}

func TestSubdivisionBuilds(t *testing.T) {
	for _, d := range []Dataset{Uniform(150, 2), Hospital()} {
		sub, err := d.Subdivision()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if sub.N() != d.N() {
			t.Fatalf("%s: regions %d != sites %d", d.Name, sub.N(), d.N())
		}
	}
}

func TestClusteredCustomSpec(t *testing.T) {
	d := Clustered("X", ClusterSpec{N: 50, Clusters: 3, Sigma: 200, UniformShare: 0.5, Seed: 5})
	if d.N() != 50 {
		t.Fatalf("N = %d", d.N())
	}
	for _, p := range d.Sites {
		if !Area.Contains(p) {
			t.Fatalf("site %v outside", p)
		}
	}
}
