package dataset

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"airindex/internal/geom"
)

// Moving-client trajectories for the continuous-query workload: a client
// holds a standing window/kNN query while its position advances one step per
// broadcast cycle. Positions are materialized up front (one point per
// cycle), so a trajectory is a plain value: deterministic for a given seed,
// JSON-serializable, and replayable bit-for-bit — Go prints float64 with the
// shortest round-tripping representation, so Marshal/Unmarshal preserves
// every position exactly.

// Trajectory is one client's path, sampled at broadcast-cycle granularity.
type Trajectory struct {
	Model     string       `json:"model"`
	Seed      int64        `json:"seed"`
	Positions []geom.Point `json:"positions"`
}

// At returns the client position at the given cycle, holding the last
// position once the path is exhausted (the client parks).
func (t *Trajectory) At(cycle int) geom.Point {
	if len(t.Positions) == 0 {
		return geom.Point{}
	}
	if cycle < 0 {
		cycle = 0
	}
	if cycle >= len(t.Positions) {
		cycle = len(t.Positions) - 1
	}
	return t.Positions[cycle]
}

// Cycles returns the number of sampled cycles.
func (t *Trajectory) Cycles() int { return len(t.Positions) }

// MarshalTrajectories serializes a fleet for a reproducible run record.
func MarshalTrajectories(ts []Trajectory) ([]byte, error) { return json.Marshal(ts) }

// UnmarshalTrajectories restores a fleet written by MarshalTrajectories.
func UnmarshalTrajectories(data []byte) ([]Trajectory, error) {
	var ts []Trajectory
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, err
	}
	return ts, nil
}

// RandomWaypoint generates the classic random-waypoint model inside area:
// pick a uniform target and a uniform per-leg speed in [speedMin, speedMax]
// (distance units per cycle), walk straight at that speed, then pick the
// next target on arrival. Every position lies inside area.
func RandomWaypoint(area geom.Rect, horizon int, seed int64, speedMin, speedMax float64) Trajectory {
	rng := rand.New(rand.NewSource(seed))
	uniform := func() geom.Point {
		return geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
	}
	t := Trajectory{Model: "waypoint", Seed: seed, Positions: make([]geom.Point, 0, horizon)}
	pos := uniform()
	target := uniform()
	speed := legSpeed(rng, speedMin, speedMax)
	for len(t.Positions) < horizon {
		t.Positions = append(t.Positions, pos)
		for pos.Dist(target) <= speed {
			pos = target
			target = uniform()
			speed = legSpeed(rng, speedMin, speedMax)
		}
		d := target.Sub(pos)
		pos = pos.Add(d.Scale(speed / math.Hypot(d.X, d.Y)))
	}
	return t
}

// Commuter generates a locality-heavy model: the client shuttles between a
// few anchor points (think home, work, gym), dwelling several cycles at each
// before walking to the next at a per-leg speed in [speedMin, speedMax].
// Long dwells mean many cycles without a region-boundary crossing, the case
// incremental revalidation exists for.
func Commuter(area geom.Rect, horizon int, seed int64, anchors int, speedMin, speedMax float64, maxDwell int) Trajectory {
	if anchors < 2 {
		anchors = 2
	}
	if maxDwell < 1 {
		maxDwell = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, anchors)
	for i := range pts {
		pts[i] = geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
	}
	t := Trajectory{Model: "commuter", Seed: seed, Positions: make([]geom.Point, 0, horizon)}
	cur := 0
	pos := pts[cur]
	dwell := 1 + rng.Intn(maxDwell)
	var target geom.Point
	walking := false
	speed := 0.0
	for len(t.Positions) < horizon {
		t.Positions = append(t.Positions, pos)
		if !walking {
			if dwell--; dwell <= 0 {
				next := (cur + 1 + rng.Intn(anchors-1)) % anchors
				cur = next
				target = pts[next]
				speed = legSpeed(rng, speedMin, speedMax)
				walking = true
			}
			continue
		}
		if pos.Dist(target) <= speed {
			pos = target
			walking = false
			dwell = 1 + rng.Intn(maxDwell)
			continue
		}
		d := target.Sub(pos)
		pos = pos.Add(d.Scale(speed / math.Hypot(d.X, d.Y)))
	}
	return t
}

// legSpeed draws one leg's speed uniformly from [speedMin, speedMax],
// clamped to a small positive floor so legs always make progress.
func legSpeed(rng *rand.Rand, speedMin, speedMax float64) float64 {
	if speedMax < speedMin {
		speedMax = speedMin
	}
	s := speedMin + rng.Float64()*(speedMax-speedMin)
	if s < 1e-6 {
		s = 1e-6
	}
	return s
}

// Fleet generates n trajectories of the named model ("waypoint" or
// "commuter") with seeds derived from one base seed, so a whole run is
// pinned by (model, n, horizon, seed).
func Fleet(model string, area geom.Rect, n, horizon int, seed int64, speedMin, speedMax float64) ([]Trajectory, error) {
	out := make([]Trajectory, n)
	for i := range out {
		s := seed + int64(i)*1664525 + 1013904223
		switch model {
		case "waypoint":
			out[i] = RandomWaypoint(area, horizon, s, speedMin, speedMax)
		case "commuter":
			out[i] = Commuter(area, horizon, s, 3, speedMin, speedMax, 8)
		default:
			return nil, fmt.Errorf("dataset: unknown trajectory model %q (want waypoint or commuter)", model)
		}
	}
	return out, nil
}
