package fabric

import (
	"errors"
	"fmt"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/obs"
	"airindex/internal/stream"
)

// maxRouteAttempts bounds how many times one fabric query may restart its
// directory phase after a hot swap lands mid-read — the cross-channel
// analogue of the stream client's epoch-restart bound.
const maxRouteAttempts = 8

// Client consumes a live sharded fabric: one stream.Client per channel,
// dialed lazily and kept open, with the channel directory read off the air
// on every query — the client holds no out-of-band routing state, exactly
// as a mobile receiver holds none. Queries stay tuned to the channel that
// answered last (a sticky radio), so workloads with locality hop rarely.
// Not safe for concurrent use, like stream.Client.
type Client struct {
	capacity int
	dial     func(ch int) (*stream.Client, error)
	clients  []*stream.Client
	entry    int

	// Adjacency declares that the fabric's index copies carry a region-
	// adjacency appendix between the directory and each shard tree
	// (Options.Adjacency). Like the packet capacity, it is a broadcast
	// format parameter the receiver is configured with: when set, queries
	// read the appendix head to learn the per-channel prefix length before
	// descending. The appendix itself stays self-describing, so the length
	// is rediscovered from the air on every query and every epoch restart.
	Adjacency bool

	// Metrics and Traces, when set before the first query, are attached to
	// every per-channel stream client as it is dialed; they record per-leg
	// observations (the answering leg's trace carries the final answer).
	Metrics *stream.ClientMetrics
	Traces  *obs.TraceLog
}

// Result is the outcome of one fabric query, with honest accounting
// across hops: latency sums the slots the radio spent on each leg, tuning
// splits the parsed packets by protocol phase, and the recovery counters
// accumulate across legs. A hop is charged a fresh probe on the target
// channel plus the directory read already spent on the entry channel —
// the same discipline epoch restarts use within one channel.
type Result struct {
	Shard  int // channel that answered
	Bucket int // shard-local bucket id
	Global int // global data-instance id (from the payload stamp)
	Hops   int
	Data   []byte

	Latency       float64
	TuneProbe     int
	TuneDirectory int
	TuneIndex     int
	TuneData      int
	TuneRecover   int

	DozedFrames   int
	LostSlots     int
	CorruptFrames int
	Recoveries    int
	EpochRestarts int

	Generation uint32 // generation of the answering shard's program
}

// TotalTuning returns the active-radio packet count across phases,
// including recovery.
func (r Result) TotalTuning() int {
	return r.TuneProbe + r.TuneDirectory + r.TuneIndex + r.TuneData + r.TuneRecover
}

// NewClient builds a fabric client over TCP: addrs[i] is channel i's
// broadcast address.
func NewClient(addrs []string, capacity int) *Client {
	return NewClientFunc(len(addrs), capacity, func(ch int) (*stream.Client, error) {
		return stream.Dial(addrs[ch], capacity)
	})
}

// NewClientFunc builds a fabric client over an arbitrary per-channel
// transport (net.Pipe in tests).
func NewClientFunc(channels, capacity int, dial func(ch int) (*stream.Client, error)) *Client {
	return &Client{
		capacity: capacity,
		dial:     dial,
		clients:  make([]*stream.Client, channels),
	}
}

// Channels returns the number of channels the client can tune to.
func (c *Client) Channels() int { return len(c.clients) }

// Close closes every dialed channel.
func (c *Client) Close() error {
	var first error
	for _, sc := range c.clients {
		if sc != nil {
			if err := sc.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// client returns the stream client for a channel, dialing on first use.
func (c *Client) client(ch int) (*stream.Client, error) {
	if ch < 0 || ch >= len(c.clients) {
		return nil, fmt.Errorf("fabric: channel %d of %d", ch, len(c.clients))
	}
	if c.clients[ch] == nil {
		sc, err := c.dial(ch)
		if err != nil {
			return nil, fmt.Errorf("fabric: dial channel %d: %w", ch, err)
		}
		sc.Metrics = c.Metrics
		sc.Traces = c.Traces
		c.clients[ch] = sc
	}
	return c.clients[ch], nil
}

// Query resolves the data instance for p, entering on the channel that
// answered the previous query (channel 0 initially).
func (c *Client) Query(p geom.Point) (Result, error) {
	return c.QueryFrom(p, c.entry)
}

// QueryFrom resolves the data instance for p entering on a specific
// channel: probe, read the replicated channel directory at the head of the
// next index copy, hop to the owning shard if it differs, then run the
// standard access protocol against that shard's D-tree (whose offsets sit
// right behind the directory prefix). The directory phase is retried from
// a fresh probe when a hot swap lands under it.
func (c *Client) QueryFrom(p geom.Point, entry int) (Result, error) {
	var fres Result
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		sc, err := c.client(entry)
		if err != nil {
			return fres, err
		}
		var leg stream.Result
		if err := sc.Probe(&leg); err != nil {
			c.mergeLeg(&fres, &leg, 0)
			return fres, err
		}
		// Directory: packet 0 announces the prefix length d; the rest of
		// the prefix follows in the same copy.
		pkts, err := sc.FetchIndexPackets(&leg, 0, 1)
		if err == nil {
			var d int
			if d, err = DirectoryPacketCount(pkts[0]); err == nil && d > 1 {
				var rest [][]byte
				if rest, err = sc.FetchIndexPackets(&leg, 1, d); err == nil {
					pkts = append(pkts, rest...)
				}
			}
		}
		if err != nil {
			if stale := c.retryRouting(&fres, &leg, err); stale {
				continue
			}
			return fres, err
		}
		dir, err := DecodeDirectory(pkts)
		if err != nil {
			c.mergeLeg(&fres, &leg, leg.TuneIndex)
			return fres, err
		}
		d := len(pkts)
		dirTune := leg.TuneIndex
		target := dir.Route(p)

		// Adjacency fabrics: the shard leg discovers the per-channel
		// appendix length from the wire every time (it changes across
		// generations), so the whole leg — discovery, descent, download —
		// restarts from a fresh probe when a swap lands under any phase.
		adjLeg := func(cli *stream.Client, res *stream.Result) error {
			head, err := cli.FetchIndexPackets(res, d, d+1)
			if err != nil {
				return err
			}
			a, err := core.AdjacencyPacketCount(head[0])
			if err != nil {
				return fmt.Errorf("fabric: no adjacency appendix behind the directory: %w", err)
			}
			bucket, err := cli.LocateShifted(p, d+a, res)
			if err != nil {
				return err
			}
			res.Bucket = bucket
			_, err = cli.FetchBucket(bucket, res)
			return err
		}

		if target == entry {
			// The entry channel owns the point: continue the descent in the
			// same index copy, right behind the directory.
			var err error
			if c.Adjacency {
				err = adjLeg(sc, &leg)
			} else {
				err = sc.QueryResume(p, d, &leg)
			}
			if err != nil && c.Adjacency {
				if stale := c.retryRouting(&fres, &leg, err); stale {
					continue
				}
				return fres, err
			}
			c.mergeLeg(&fres, &leg, dirTune)
			fres.Latency += leg.Latency
			if err != nil {
				return fres, err
			}
			if c.Adjacency {
				// The hand-driven leg never passes through Query's finish,
				// so fold it into the metrics here.
				c.Metrics.Observe(&leg)
			}
		} else {
			// Hop: close out the entry leg (its probe and directory read
			// stay charged) and run a full query on the owning channel.
			fres.Hops++
			c.mergeLeg(&fres, &leg, dirTune)
			fres.Latency += float64(leg.LastSlot + 1 - leg.FirstSlot)
			tc, err := c.client(target)
			if err != nil {
				return fres, err
			}
			var hop stream.Result
			if c.Adjacency {
				if err = tc.Probe(&hop); err == nil {
					err = adjLeg(tc, &hop)
				}
				if err != nil {
					if stale := c.retryRouting(&fres, &hop, err); stale {
						continue
					}
					return fres, err
				}
				c.mergeLeg(&fres, &hop, 0)
				fres.Latency += hop.Latency
				c.Metrics.Observe(&hop)
			} else {
				err = tc.QueryShifted(p, d, &hop)
				c.mergeLeg(&fres, &hop, 0)
				fres.Latency += hop.Latency
				if err != nil {
					return fres, err
				}
			}
			leg = hop
		}
		fres.Shard = target
		fres.Bucket = leg.Bucket
		fres.Generation = leg.Generation
		fres.Data = leg.Data
		if fres.Global, err = GlobalIDFromData(leg.Data); err != nil {
			return fres, err
		}
		c.entry = target
		return fres, nil
	}
	return fres, fmt.Errorf("fabric: routing abandoned after %d directory restarts (fabric reconfiguring faster than queries complete)", maxRouteAttempts)
}

// retryRouting folds a failed directory phase into the accumulated result
// and reports whether it is retryable (a hot swap revealed mid-read).
func (c *Client) retryRouting(fres *Result, leg *stream.Result, err error) bool {
	c.mergeLeg(fres, leg, leg.TuneIndex)
	if !errors.Is(err, stream.ErrStaleGeneration) {
		return false
	}
	if leg.FirstSlot <= leg.LastSlot {
		fres.Latency += float64(leg.LastSlot + 1 - leg.FirstSlot)
	}
	fres.EpochRestarts++
	fres.Recoveries++
	fres.TuneRecover++
	return true
}

// mergeLeg folds one channel leg's counters into the fabric result;
// dirTune of the leg's TuneIndex is re-attributed to the directory phase.
func (c *Client) mergeLeg(fres *Result, leg *stream.Result, dirTune int) {
	fres.TuneProbe += leg.TuneProbe
	fres.TuneDirectory += dirTune
	fres.TuneIndex += leg.TuneIndex - dirTune
	fres.TuneData += leg.TuneData
	fres.TuneRecover += leg.TuneRecover
	fres.DozedFrames += leg.DozedFrames
	fres.LostSlots += leg.LostSlots
	fres.CorruptFrames += leg.CorruptFrames
	fres.Recoveries += leg.Recoveries
	fres.EpochRestarts += leg.EpochRestarts
}
