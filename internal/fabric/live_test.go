package fabric

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"airindex/internal/channel"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/stream"
	"airindex/internal/voronoi"
)

// startFabricServers boots one stream.Server per shard program and returns
// the servers plus a shutdown func.
func startFabricServers(t *testing.T, progs []*stream.Program, configure func(ch int, srv *stream.Server)) []*stream.Server {
	t.Helper()
	srvs := make([]*stream.Server, len(progs))
	for ch, prog := range progs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := stream.NewServer(ln, prog)
		if err != nil {
			t.Fatal(err)
		}
		if configure != nil {
			configure(ch, srv)
		}
		go srv.Serve() //nolint:errcheck
		srvs[ch] = srv
	}
	t.Cleanup(func() {
		for _, srv := range srvs {
			srv.Close() //nolint:errcheck
		}
	})
	return srvs
}

func fabricAddrs(srvs []*stream.Server) []string {
	addrs := make([]string, len(srvs))
	for i, srv := range srvs {
		addrs[i] = srv.Addr().String()
	}
	return addrs
}

// TestFabricLiveQueryAcrossChannels runs a static 3-shard fabric on real
// TCP with a perfect channel and checks answers and hop accounting from
// every entry channel.
func TestFabricLiveQueryAcrossChannels(t *testing.T) {
	ds := dataset.Uniform(180, 21)
	sub, err := voronoi.Subdivision(ds.Area, ds.Sites)
	if err != nil {
		t.Fatal(err)
	}
	globalPolys := make([]geom.Polygon, sub.N())
	for i, r := range sub.Regions {
		globalPolys[i] = r.Poly
	}
	const capacity = 128
	f, err := Build(ds.Area, ds.Sites, 3, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvs := startFabricServers(t, f.Programs(), func(ch int, srv *stream.Server) {
		srv.StartSlot = func() int { return 0 }
	})
	c := NewClient(fabricAddrs(srvs), capacity)
	defer c.Close()

	rng := rand.New(rand.NewSource(5))
	hops := 0
	for i := 0; i < 24; i++ {
		p := randomPoint(rng, ds.Area)
		entry := rng.Intn(3)
		res, err := c.QueryFrom(p, entry)
		if err != nil {
			t.Fatalf("query %d (%v from channel %d): %v", i, p, entry, err)
		}
		if want := f.Dir.Route(p); res.Shard != want {
			t.Fatalf("query %d answered on shard %d, directory says %d", i, res.Shard, want)
		}
		if !agrees(globalPolys, res.Global, sub.Locate(p), p) {
			t.Fatalf("query %d: %v -> global %d, ground truth %d", i, p, res.Global, sub.Locate(p))
		}
		if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		// Perfect channel: exactly one probe per leg, the directory read
		// once, and no recovery of any kind.
		if res.TuneProbe != 1+res.Hops {
			t.Fatalf("query %d: %d hops but %d probes", i, res.Hops, res.TuneProbe)
		}
		if res.TuneDirectory != f.DirPackets {
			t.Fatalf("query %d: directory tuning %d, prefix is %d", i, res.TuneDirectory, f.DirPackets)
		}
		if res.TuneRecover != 0 || res.Recoveries != 0 || res.EpochRestarts != 0 || res.CorruptFrames != 0 {
			t.Fatalf("query %d: recovery on a perfect channel: %+v", i, res)
		}
		if res.Latency <= 0 {
			t.Fatalf("query %d: latency %v", i, res.Latency)
		}
		if (res.Shard == entry) != (res.Hops == 0) {
			t.Fatalf("query %d: entry %d, shard %d, hops %d", i, entry, res.Shard, res.Hops)
		}
		hops += res.Hops
	}
	if hops == 0 {
		t.Fatal("no query hopped; the test exercised only one channel")
	}
}

// TestFabricChurnUnderLossLive is the sharded acceptance gate: a 4-shard
// fabric on a lossy, corrupting channel with concurrent site churn driving
// per-shard generation swaps, and a hopping client whose every answer is
// verified against the exact generation it was resolved against.
func TestFabricChurnUnderLossLive(t *testing.T) {
	ds := dataset.Uniform(160, 33)
	const (
		capacity = 128
		S        = 4
		queries  = 60
	)
	sw, err := NewSwapper(ds.Area, ds.Sites, S, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvs := startFabricServers(t, sw.Programs(), func(ch int, srv *stream.Server) {
		srv.StartSlot = func() int { return 0 }
		srv.Channel = channel.Spec{Loss: 0.05, Burst: 2, Corrupt: 0.002, Seed: int64(1000 + ch)}.Factory(nil)
	})
	for ch, srv := range srvs {
		sw.Bind(ch, srv)
	}

	// Churner: global random batches against the live fabric.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(77))
		for batch := 0; ; batch++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			ops := make([]stream.SiteOp, 0, 3)
			live := sw.LiveSiteIDs()
			for i := 0; i < 3; i++ {
				p := geom.Pt(
					ds.Area.MinX+rng.Float64()*ds.Area.W(),
					ds.Area.MinY+rng.Float64()*ds.Area.H(),
				)
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: p})
				case 1:
					ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: live[rng.Intn(len(live))]})
				default:
					ops = append(ops, stream.SiteOp{Kind: stream.OpMove, ID: live[rng.Intn(len(live))], P: p})
				}
			}
			if _, _, err := sw.Apply(ops); err != nil {
				// Duplicate removals within a racing batch are legal
				// shortened-batch outcomes; anything else is not expected
				// but must not crash the churner mid-test.
				t.Logf("churn batch %d: %v", batch, err)
			}
		}
	}()
	c := NewClient(fabricAddrs(srvs), capacity)
	rng := rand.New(rand.NewSource(9))
	hops, restarts := 0, 0
	for i := 0; i < queries; i++ {
		p := randomPoint(rng, ds.Area)
		entry := rng.Intn(S)
		res, err := c.QueryFrom(p, entry)
		if err != nil {
			t.Fatalf("query %d (%v from channel %d): %v", i, p, entry, err)
		}
		if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		// Verify against the exact generation the answer names: the global
		// site of the local bucket must match the payload stamp, and its
		// cell (clipped to the answering shard) must contain p — the same
		// per-generation discipline the single-channel churn suite uses.
		g := sw.Generation(res.Shard, res.Generation)
		if g == nil {
			t.Fatalf("query %d: answered under unknown generation %d of shard %d", i, res.Generation, res.Shard)
		}
		if res.Bucket < 0 || res.Bucket >= len(g.Shard.IDs) {
			t.Fatalf("query %d: bucket %d outside generation %d (%d buckets)", i, res.Bucket, res.Generation, len(g.Shard.IDs))
		}
		if got := g.Shard.IDs[res.Bucket]; got != res.Global {
			t.Fatalf("query %d: payload global %d, generation table says %d", i, res.Global, got)
		}
		want := g.Shard.Sub.Locate(p)
		if want != res.Bucket && !g.Shard.Sub.Regions[res.Bucket].Poly.Contains(p) {
			t.Fatalf("query %d: %v -> bucket %d of shard %d gen %d, ground truth %d",
				i, p, res.Bucket, res.Shard, res.Generation, want)
		}
		hops += res.Hops
		restarts += res.EpochRestarts
	}
	t.Logf("fabric churn gate: %d queries, %d hops, %d epoch restarts", queries, hops, restarts)
	if hops == 0 {
		t.Fatal("no query hopped")
	}

	// Orderly teardown: silence the churner and release the held streams
	// first — a connection nobody drains can never reach its cycle boundary
	// — then drain every shard in parallel.
	close(stop)
	churnWG.Wait()
	c.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	errc := make(chan error, len(srvs))
	for _, srv := range srvs {
		go func(srv *stream.Server) { errc <- srv.Shutdown(ctx) }(srv)
	}
	for range srvs {
		if err := <-errc; err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}
}
