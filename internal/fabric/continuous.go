package fabric

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/stream"
)

// Continuous is the moving-client session over a sharded fabric: a standing
// window/kNN query re-evaluated once per broadcast cycle as the client's
// position advances, answered from per-channel caches that are revalidated
// against the air instead of rebuilt.
//
// Every channel the query touches keeps its own cache line: the decoded
// adjacency appendix (which also reveals the shard's clip rectangle), the
// region containing the client's position clamped into that rectangle, and
// the data buckets of the current answer set. A cycle probes only the
// channels whose rectangles meet the standing query, validates each cached
// seed with an exact membership test, and re-descends or re-acquires a
// channel only when its validation fails or its generation moved. The
// channel directory is read off the air once — the partition is fixed for a
// fabric's lifetime — and shard rectangles are learned from the first
// adjacency fetch on each channel (one full sweep on the first cycle).
//
// Cross-shard answers compose from per-shard walks. A window walk runs on
// every channel whose rectangle meets the window, seeded at the region
// containing clamp(p, rect): when p lies in the window, the clamped point
// lies in window∩rect, so the seed's clipped cell meets the window and the
// walk's connectivity argument carries over per shard. kNN derives an upper
// bound r on the k-th nearest distance from the home shard's own k nearest
// (a subset of the global sites), then collects every region whose clipped
// cell meets the square of half-width r — any site within Euclidean r sits
// inside that square, inside its own cell, inside the shard that owns it —
// and ranks candidates by (distance², global id), deduplicating regions
// split across shards by keeping the smallest distance. The square doubles
// until the k-th candidate provably cannot be beaten (or it covers every
// shard). Answers are exact whenever the touched channels agree on a
// generation; during a rolling swap each channel is internally consistent
// with the generation it pinned this cycle, reported per channel in Gens.
//
// Tuning and latency are charged per channel leg from the frames actually
// parsed, then summed — the same discipline Client.QueryFrom applies to
// hops. Directory packets are charged as index tuning. Not safe for
// concurrent use.
type Continuous struct {
	fc   *Client
	mode stream.ContinuousMode
	q    stream.ContinuousQuery

	// Metrics, when set, accumulates cycle-level revalidation-vs-redescent
	// counters and per-cycle cost distributions (shared with the
	// single-channel session's metric set).
	Metrics *stream.ContinuousMetrics

	cycle  int
	stamp  int // current attempt; a leg with a matching stamp is open
	booted bool

	dir      *Directory
	d        int // directory packets at the head of every index copy
	dirLeg   stream.Result
	dirStamp int

	chans []*contChan
}

// contChan is one channel's cache line plus its per-attempt leg accounting.
type contChan struct {
	genValid  bool
	gen       uint32
	adj       *core.Adjacency
	adjPkts   int
	rect      geom.Rect // the shard's clip rectangle (fixed per fabric)
	rectValid bool
	seed      int // region containing clamp(p, rect), local index
	localOf   map[int32]int
	buckets   map[int][]byte

	stamp     int
	res       stream.Result
	refreshed bool
	crossed   bool
}

// invalidate drops the state pinned to a dead generation. The clip
// rectangle survives: the partition is fixed for the fabric's lifetime.
func (cc *contChan) invalidate() {
	cc.genValid = false
	cc.adj = nil
	cc.adjPkts = 0
	cc.seed = -1
	cc.localOf = nil
	clear(cc.buckets)
}

// ContCycle is one fabric cycle's answer with its cost accounting.
type ContCycle struct {
	Cycle int
	Home  int // channel owning the client's position this cycle

	Region int32   // global id of the containing region
	Window []int32 // global ids of regions meeting the window, ascending
	KNN    []int32 // global ids by (site distance², global id)

	// Gens records the generation each touched channel pinned this cycle.
	Gens map[int]uint32

	// Exactly one of the three is set, classifying the cycle by its most
	// expensive event across channels: every touched channel revalidated
	// from cache, at least one re-descended after a boundary crossing, or
	// at least one re-acquired its appendix (always set in fresh mode).
	Revalidated bool
	Crossed     bool
	Refreshed   bool

	// Res sums the per-channel legs: latency adds each leg's slot span,
	// tuning counters add across channels, with directory packets charged
	// as index tuning. Res.Generation echoes the home channel's.
	Res stream.Result
}

// NewContinuous starts a continuous session over a fabric client. The
// client's connections are owned by the caller.
func NewContinuous(fc *Client, mode stream.ContinuousMode, q stream.ContinuousQuery) *Continuous {
	chans := make([]*contChan, fc.Channels())
	for i := range chans {
		chans[i] = &contChan{seed: -1, buckets: make(map[int][]byte)}
	}
	return &Continuous{fc: fc, mode: mode, q: q, chans: chans}
}

// ChannelBuckets exposes one channel's cached answer data, keyed by
// shard-local region id (read-only view; valid for the generation the
// channel last pinned).
func (s *Continuous) ChannelBuckets(ch int) map[int][]byte { return s.chans[ch].buckets }

// Step advances the session one broadcast cycle at position p. A mid-cycle
// generation swap on any touched channel invalidates that channel's cache
// and restarts the cycle (bounded, charged to the same outcome).
func (s *Continuous) Step(p geom.Point) (ContCycle, error) {
	var total stream.Result
	var out ContCycle
	for restart := 0; ; restart++ {
		s.stamp++
		out = ContCycle{Cycle: s.cycle, Gens: make(map[int]uint32)}
		failCh, err := s.stepOnce(p, &out)
		s.foldLegs(&total)
		if err == nil {
			break
		}
		if !errors.Is(err, stream.ErrStaleGeneration) {
			if s.Metrics != nil {
				s.Metrics.CycleErrors.Inc()
			}
			return out, err
		}
		if failCh >= 0 && failCh < len(s.chans) {
			s.chans[failCh].invalidate()
		}
		total.EpochRestarts++
		total.Recoveries++
		total.TuneRecover++
		if restart+1 >= maxRouteAttempts {
			if s.Metrics != nil {
				s.Metrics.CycleErrors.Inc()
			}
			return out, fmt.Errorf("fabric: continuous cycle abandoned after %d epoch restarts", maxRouteAttempts)
		}
	}
	out.Res = total
	if g, ok := out.Gens[out.Home]; ok {
		out.Res.Generation = g
	}
	s.cycle++
	if m := s.Metrics; m != nil {
		m.Cycles.Inc()
		switch {
		case out.Revalidated:
			m.RevalidationHits.Inc()
		case out.Crossed:
			m.BoundaryRedescents.Inc()
		case out.Refreshed:
			m.FullRefreshes.Inc()
		}
		m.EpochRestarts.Add(int64(total.EpochRestarts))
		m.LatencySlots.Observe(int64(total.Latency))
		m.TuningPackets.Observe(int64(total.TotalTuning()))
	}
	return out, nil
}

// stepOnce runs one cycle attempt. On error it names the channel to blame,
// so a stale generation invalidates exactly the cache line that died.
func (s *Continuous) stepOnce(p geom.Point, out *ContCycle) (int, error) {
	entry := s.fc.entry
	if s.dir == nil {
		if err := s.ensureDirectory(entry); err != nil {
			return entry, err
		}
	}
	// First cycle: sweep every channel once so each reveals its clip
	// rectangle — the client must learn the geography before it can tell
	// which channels a standing query touches.
	if !s.booted {
		for ch := range s.chans {
			if !s.chans[ch].rectValid {
				if _, err := s.ensure(ch, p, out); err != nil {
					return ch, err
				}
			}
		}
		s.booted = true
	}
	home := s.dir.Route(p)
	out.Home = home
	hc, err := s.ensure(home, p, out)
	if err != nil {
		return home, err
	}
	out.Region = hc.adj.GlobalID(hc.seed)

	needed := make([]map[int]bool, len(s.chans))
	mark := func(ch, local int) {
		if needed[ch] == nil {
			needed[ch] = make(map[int]bool)
		}
		needed[ch][local] = true
	}
	mark(home, hc.seed)
	markGlobal := func(gid int32) error {
		ch, local := s.ownerOf(gid, home)
		if ch < 0 {
			return fmt.Errorf("fabric: answer region %d not held by any touched channel", gid)
		}
		mark(ch, local)
		return nil
	}

	if s.q.WindowW > 0 || s.q.WindowH > 0 {
		w := s.q.Window(p)
		got := make(map[int32]bool)
		for ch := range s.chans {
			if !s.chans[ch].rect.Intersects(w) {
				continue
			}
			cc, err := s.ensure(ch, p, out)
			if err != nil {
				return ch, err
			}
			for _, li := range cc.adj.Window(cc.seed, w) {
				got[cc.adj.GlobalID(int(li))] = true
			}
		}
		out.Window = make([]int32, 0, len(got))
		for gid := range got {
			out.Window = append(out.Window, gid)
		}
		sort.Slice(out.Window, func(i, j int) bool { return out.Window[i] < out.Window[j] })
		for _, gid := range out.Window {
			if err := markGlobal(gid); err != nil {
				return home, err
			}
		}
	}

	if s.q.K > 0 {
		knn, failCh, err := s.knn(p, hc, out)
		if err != nil {
			return failCh, err
		}
		out.KNN = knn
		for _, gid := range knn {
			if err := markGlobal(gid); err != nil {
				return home, err
			}
		}
	}

	// Download missing answer buckets per touched channel, ascending local
	// id (broadcast order), and evict the ones that left the answer set.
	for ch, cc := range s.chans {
		if cc.stamp != s.stamp {
			continue
		}
		need := needed[ch]
		var order []int
		for li := range need {
			if _, ok := cc.buckets[li]; !ok {
				order = append(order, li)
			}
		}
		sort.Ints(order)
		if len(order) > 0 {
			cli, err := s.fc.client(ch)
			if err != nil {
				return ch, err
			}
			for _, li := range order {
				data, err := cli.FetchBucket(li, &cc.res)
				if err != nil {
					return ch, err
				}
				cc.buckets[li] = data
			}
		}
		for li := range cc.buckets {
			if !need[li] {
				delete(cc.buckets, li)
			}
		}
	}

	anyRef, anyCross := false, false
	for _, cc := range s.chans {
		if cc.stamp != s.stamp {
			continue
		}
		anyRef = anyRef || cc.refreshed
		anyCross = anyCross || cc.crossed
	}
	out.Refreshed = anyRef
	out.Crossed = !anyRef && anyCross
	out.Revalidated = !anyRef && !anyCross
	return -1, nil
}

// ensureDirectory reads the replicated channel directory once, off the
// entry channel, as its own accounted leg.
func (s *Continuous) ensureDirectory(entry int) error {
	cli, err := s.fc.client(entry)
	if err != nil {
		return err
	}
	s.dirLeg = stream.Result{}
	s.dirStamp = s.stamp
	if err := cli.Probe(&s.dirLeg); err != nil {
		return err
	}
	pkts, err := cli.FetchIndexPackets(&s.dirLeg, 0, 1)
	if err != nil {
		return err
	}
	d, err := DirectoryPacketCount(pkts[0])
	if err != nil {
		return err
	}
	if d > 1 {
		rest, err := cli.FetchIndexPackets(&s.dirLeg, 1, d)
		if err != nil {
			return err
		}
		pkts = append(pkts, rest...)
	}
	dir, err := DecodeDirectory(pkts)
	if err != nil {
		return err
	}
	s.dir, s.d = dir, len(pkts)
	return nil
}

// ensure opens channel ch's leg for this attempt (idempotent per attempt):
// probe, then either revalidate the cached seed against clamp(p, rect),
// re-descend after a boundary crossing, or re-acquire the appendix after a
// generation change (always in fresh mode).
func (s *Continuous) ensure(ch int, p geom.Point, out *ContCycle) (*contChan, error) {
	cc := s.chans[ch]
	if cc.stamp == s.stamp {
		return cc, nil
	}
	cli, err := s.fc.client(ch)
	if err != nil {
		return nil, err
	}
	cc.stamp = s.stamp
	cc.res = stream.Result{}
	cc.refreshed, cc.crossed = false, false
	if err := cli.Probe(&cc.res); err != nil {
		return nil, err
	}
	out.Gens[ch] = cc.res.Generation
	if s.mode == stream.ModeFresh || !cc.genValid || cc.res.Generation != cc.gen {
		return cc, s.acquireChan(ch, cli, cc, p)
	}
	q := clampPoint(p, cc.rect)
	if cc.adj.Contains(cc.seed, q) {
		return cc, nil
	}
	seed, err := cli.LocateShifted(q, s.d+cc.adjPkts, &cc.res)
	if err != nil {
		return nil, err
	}
	cc.seed = seed
	cc.crossed = true
	return cc, nil
}

// acquireChan performs one channel's full tune-in: the self-describing
// adjacency appendix behind the directory, then the index descent for the
// clamped position.
func (s *Continuous) acquireChan(ch int, cli *stream.Client, cc *contChan, p geom.Point) error {
	cc.invalidate()
	head, err := cli.FetchIndexPackets(&cc.res, s.d, s.d+1)
	if err != nil {
		return err
	}
	count, err := core.AdjacencyPacketCount(head[0])
	if err != nil {
		return fmt.Errorf("fabric: channel %d carries no adjacency appendix behind the directory: %w", ch, err)
	}
	rest, err := cli.FetchIndexPackets(&cc.res, s.d+1, s.d+count)
	if err != nil {
		return err
	}
	adj, err := core.DecodeAdjacency(append(head, rest...))
	if err != nil {
		return err
	}
	cc.adj, cc.adjPkts = adj, count
	cc.rect, cc.rectValid = adj.Area, true
	cc.localOf = make(map[int32]int, adj.N())
	for i := 0; i < adj.N(); i++ {
		cc.localOf[adj.GlobalID(i)] = i
	}
	seed, err := cli.LocateShifted(clampPoint(p, cc.rect), s.d+count, &cc.res)
	if err != nil {
		return err
	}
	cc.seed = seed
	cc.gen, cc.genValid = cc.res.Generation, true
	cc.refreshed = true
	return nil
}

// knn answers the standing kNN query. The home shard's k nearest bound the
// true k-th distance from above whenever the shard holds at least k regions;
// the candidate square doubles from there until the k-th ranked candidate
// provably cannot be beaten or the square covers every shard.
func (s *Continuous) knn(p geom.Point, hc *contChan, out *ContCycle) ([]int32, int, error) {
	k := s.q.K
	local := hc.adj.KNN(hc.seed, p, k)
	var r2 float64
	for _, li := range local {
		if d2 := p.Dist2(hc.adj.Sites[li]); d2 > r2 {
			r2 = d2
		}
	}
	r := math.Sqrt(r2)
	if len(local) < k || r == 0 {
		// The home shard alone cannot bound the k-th distance: start from
		// its own scale and let the doubling loop do the rest.
		if g := math.Max(hc.rect.W(), hc.rect.H()) / 2; g > r {
			r = g
		}
		if r == 0 {
			r = 1
		}
	}
	type cand struct {
		gid int32
		d2  float64
	}
	for {
		wr := geom.Rect{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
		best := make(map[int32]float64)
		covered := true
		for ch := range s.chans {
			cc := s.chans[ch]
			if !wr.ContainsRect(cc.rect) {
				covered = false
			}
			if !cc.rect.Intersects(wr) {
				continue
			}
			cc, err := s.ensure(ch, p, out)
			if err != nil {
				return nil, ch, err
			}
			for _, li := range cc.adj.Window(cc.seed, wr) {
				gid := cc.adj.GlobalID(int(li))
				d2 := p.Dist2(cc.adj.Sites[li])
				if old, ok := best[gid]; !ok || d2 < old {
					best[gid] = d2
				}
			}
		}
		ranked := make([]cand, 0, len(best))
		for gid, d2 := range best {
			ranked = append(ranked, cand{gid, d2})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].d2 != ranked[j].d2 {
				return ranked[i].d2 < ranked[j].d2
			}
			return ranked[i].gid < ranked[j].gid
		})
		if len(ranked) >= k && (covered || ranked[k-1].d2 <= r*r) {
			ids := make([]int32, k)
			for i := range ids {
				ids[i] = ranked[i].gid
			}
			return ids, -1, nil
		}
		if covered {
			// Fewer than k regions exist in total: return them all.
			ids := make([]int32, len(ranked))
			for i := range ids {
				ids[i] = ranked[i].gid
			}
			return ids, -1, nil
		}
		r *= 2
	}
}

// ownerOf resolves which touched channel serves a global id's bucket: the
// home channel when it holds a piece of the region, else the lowest-numbered
// touched channel that does (deterministic across runs).
func (s *Continuous) ownerOf(gid int32, home int) (int, int) {
	if hc := s.chans[home]; hc.stamp == s.stamp {
		if li, ok := hc.localOf[gid]; ok {
			return home, li
		}
	}
	for ch, cc := range s.chans {
		if cc.stamp != s.stamp {
			continue
		}
		if li, ok := cc.localOf[gid]; ok {
			return ch, li
		}
	}
	return -1, -1
}

// foldLegs sums every leg opened this attempt into the cycle total; each
// leg's latency is the slot span its channel was actually tuned.
func (s *Continuous) foldLegs(total *stream.Result) {
	fold := func(r *stream.Result) {
		total.TuneProbe += r.TuneProbe
		total.TuneIndex += r.TuneIndex
		total.TuneData += r.TuneData
		total.TuneRecover += r.TuneRecover
		total.DozedFrames += r.DozedFrames
		total.LostSlots += r.LostSlots
		total.CorruptFrames += r.CorruptFrames
		total.Recoveries += r.Recoveries
		total.EpochRestarts += r.EpochRestarts
		if r.TuneProbe > 0 {
			total.Latency += float64(r.LastSlot + 1 - r.FirstSlot)
		}
	}
	if s.dirStamp == s.stamp {
		fold(&s.dirLeg)
	}
	for _, cc := range s.chans {
		if cc.stamp == s.stamp {
			fold(&cc.res)
		}
	}
}

// clampPoint projects p onto rect — the nearest point of the rectangle,
// which lies in W∩rect for any rect-overlapping window W centered at p.
func clampPoint(p geom.Point, r geom.Rect) geom.Point {
	return geom.Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}
