package fabric

import (
	"math/rand"
	"testing"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

func testDatasets(t *testing.T) []dataset.Dataset {
	t.Helper()
	return []dataset.Dataset{
		dataset.Uniform(200, 7),
		dataset.Clustered("CLUSTERED-150", dataset.ClusterSpec{
			N: 150, Clusters: 5, Sigma: 600, UniformShare: 0.1, Seed: 11,
		}),
	}
}

func randomPoint(rng *rand.Rand, r geom.Rect) geom.Point {
	return geom.Pt(
		r.MinX+rng.Float64()*r.W(),
		r.MinY+rng.Float64()*r.H(),
	)
}

func TestPartitionBalancedAndTiling(t *testing.T) {
	for _, ds := range testDatasets(t) {
		for _, S := range []int{1, 2, 3, 4, 7, 8} {
			dir, rects, byCh, err := Partition(ds.Area, ds.Sites, S)
			if err != nil {
				t.Fatalf("%s S=%d: %v", ds.Name, S, err)
			}
			if len(rects) != S || len(byCh) != S {
				t.Fatalf("%s S=%d: got %d rects, %d channels", ds.Name, S, len(rects), len(byCh))
			}
			var areaSum float64
			total := 0
			for ch, r := range rects {
				if r.Area() <= 0 {
					t.Fatalf("%s S=%d: channel %d has degenerate rect %v", ds.Name, S, ch, r)
				}
				areaSum += r.Area()
				if len(byCh[ch]) == 0 {
					t.Fatalf("%s S=%d: channel %d has no sites", ds.Name, S, ch)
				}
				total += len(byCh[ch])
				// Balance: no shard holds more than 2.5x its fair share.
				if fair := float64(len(ds.Sites)) / float64(S); float64(len(byCh[ch])) > 2.5*fair+1 {
					t.Errorf("%s S=%d: channel %d holds %d of %d sites", ds.Name, S, ch, len(byCh[ch]), len(ds.Sites))
				}
			}
			if total != len(ds.Sites) {
				t.Fatalf("%s S=%d: %d sites assigned of %d", ds.Name, S, total, len(ds.Sites))
			}
			if got, want := areaSum, ds.Area.Area(); got < want*(1-1e-9) || got > want*(1+1e-9) {
				t.Fatalf("%s S=%d: rects cover area %v of %v", ds.Name, S, got, want)
			}
			// Routing lands every point in the rect of the channel it names.
			rng := rand.New(rand.NewSource(int64(S)))
			for i := 0; i < 500; i++ {
				p := randomPoint(rng, ds.Area)
				ch := dir.Route(p)
				if ch < 0 || ch >= S {
					t.Fatalf("%s S=%d: route(%v) = %d", ds.Name, S, p, ch)
				}
				if !rects[ch].Contains(p) {
					t.Fatalf("%s S=%d: route(%v) = %d but rect %v misses it", ds.Name, S, p, ch, rects[ch])
				}
			}
		}
	}
}

func TestDirectoryWireRoundTrip(t *testing.T) {
	ds := dataset.Uniform(300, 3)
	for _, S := range []int{1, 4, 16, 64} {
		dir, _, _, err := Partition(ds.Area, ds.Sites, S)
		if err != nil {
			t.Fatalf("S=%d: %v", S, err)
		}
		for _, capacity := range []int{64, 256, 1024} {
			for self := 0; self < S; self += 1 + S/3 {
				pkts, err := dir.EncodePackets(capacity, self)
				if err != nil {
					t.Fatalf("S=%d cap=%d: %v", S, capacity, err)
				}
				if d, err := DirectoryPacketCount(pkts[0]); err != nil || d != len(pkts) {
					t.Fatalf("S=%d cap=%d: packet count %d/%v, encoded %d", S, capacity, d, err, len(pkts))
				}
				got, err := DecodeDirectory(pkts)
				if err != nil {
					t.Fatalf("S=%d cap=%d: decode: %v", S, capacity, err)
				}
				if got.Self != self || got.S != S || len(got.Nodes) != len(dir.Nodes) {
					t.Fatalf("S=%d cap=%d: round trip header mismatch: %+v", S, capacity, got)
				}
				for i := range dir.Nodes {
					if got.Nodes[i] != dir.Nodes[i] {
						t.Fatalf("S=%d cap=%d: node %d: %+v != %+v", S, capacity, i, got.Nodes[i], dir.Nodes[i])
					}
				}
			}
		}
	}
	// A directory for 64 shards at capacity 64 must span several packets.
	dir, _, _, err := Partition(ds.Area, ds.Sites, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d := dir.PacketCount(64); d < 2 {
		t.Fatalf("64-shard directory fits %d packet(s) at capacity 64; expected a multi-packet prefix", d)
	}

	// Corrupt headers are rejected.
	pkts, err := dir.EncodePackets(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), pkts[0]...)
	bad[0] ^= 0xff
	if _, err := DirectoryPacketCount(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	bad = append([]byte(nil), pkts[0]...)
	bad[2] = 99
	if _, err := DirectoryPacketCount(bad); err == nil {
		t.Fatal("future version accepted")
	}
}

// agrees applies the invariant suite's boundary tolerance: an answer is
// right if it names the expected region or any region that contains the
// query point (points on shared edges belong to every incident region).
func agrees(regions []geom.Polygon, got, want int, p geom.Point) bool {
	if got == want {
		return true
	}
	return got >= 0 && got < len(regions) && regions[got].Contains(p)
}

// TestFabricBitIdenticalToSingleChannel is the tentpole invariant: for
// every query point, the sharded fabric resolves the same global data
// instance as the single-channel D-tree over the same Voronoi diagram.
func TestFabricBitIdenticalToSingleChannel(t *testing.T) {
	for _, ds := range testDatasets(t) {
		sub, err := voronoi.Subdivision(ds.Area, ds.Sites)
		if err != nil {
			t.Fatal(err)
		}
		globalPolys := make([]geom.Polygon, sub.N())
		for i, r := range sub.Regions {
			globalPolys[i] = r.Poly
		}
		for _, capacity := range []int{64, 256} {
			flatTree, err := core.Build(sub)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := flatTree.Page(wire.DTreeParams(capacity))
			if err != nil {
				t.Fatal(err)
			}
			for _, S := range []int{2, 3, 4} {
				f, err := Build(ds.Area, ds.Sites, S, capacity, Options{})
				if err != nil {
					t.Fatalf("%s S=%d cap=%d: %v", ds.Name, S, capacity, err)
				}
				rng := rand.New(rand.NewSource(int64(31*S + capacity)))
				for i := 0; i < 2000; i++ {
					p := randomPoint(rng, ds.Area)
					want, _ := flat.Locate(p)
					ch := f.Dir.Route(p)
					local, _ := f.Shards[ch].Paged.Locate(p)
					if local < 0 {
						t.Fatalf("%s S=%d cap=%d: %v unresolved in shard %d", ds.Name, S, capacity, p, ch)
					}
					got := f.Shards[ch].IDs[local]
					if !agrees(globalPolys, got, want, p) {
						t.Fatalf("%s S=%d cap=%d: %v -> global %d via shard %d, single channel says %d",
							ds.Name, S, capacity, p, got, ch, want)
					}
				}
			}
		}
	}
}

func TestFabricAccessAccounting(t *testing.T) {
	ds := dataset.Uniform(200, 7)
	sub, err := voronoi.Subdivision(ds.Area, ds.Sites)
	if err != nil {
		t.Fatal(err)
	}
	globalPolys := make([]geom.Polygon, sub.N())
	for i, r := range sub.Regions {
		globalPolys[i] = r.Poly
	}
	const capacity = 128
	f, err := Build(ds.Area, ds.Sites, 4, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	hops := 0
	for i := 0; i < 3000; i++ {
		p := randomPoint(rng, ds.Area)
		entry := rng.Intn(4)
		u := rng.Float64()
		c, err := f.Access(p, entry, u)
		if err != nil {
			t.Fatal(err)
		}
		if c.Latency <= 0 {
			t.Fatalf("latency %v", c.Latency)
		}
		if c.TuneDirectory != f.DirPackets {
			t.Fatalf("directory tuning %d, prefix is %d packets", c.TuneDirectory, f.DirPackets)
		}
		wantProbe := 1 + c.Hops
		if c.TuneProbe != wantProbe {
			t.Fatalf("hops=%d but %d probes", c.Hops, c.TuneProbe)
		}
		if c.Shard == entry && c.Hops != 0 {
			t.Fatalf("answered on the entry channel with %d hops", c.Hops)
		}
		if c.Shard != entry && c.Hops != 1 {
			t.Fatalf("answered on %d entering at %d with %d hops", c.Shard, entry, c.Hops)
		}
		if got := c.TotalTuning(); got != c.TuneProbe+c.TuneDirectory+c.TuneIndex+c.TuneData {
			t.Fatalf("tuning sum %d", got)
		}
		if !agrees(globalPolys, c.Global, sub.Locate(p), p) {
			t.Fatalf("%v -> global %d, ground truth %d", p, c.Global, sub.Locate(p))
		}
		hops += c.Hops
	}
	// With 4 shards and random entry channels, about 3/4 of accesses hop.
	if hops < 1500 {
		t.Fatalf("only %d hops in 3000 random-entry accesses", hops)
	}
}

func TestDataStampCarriesGlobalID(t *testing.T) {
	ids := []int{42, 7, 1000000}
	stamp := DataStamp(64, ids)
	for bucket := range ids {
		payload := stamp(bucket, 0)
		got, err := GlobalIDFromData(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != ids[bucket] {
			t.Fatalf("bucket %d stamped global %d, want %d", bucket, got, ids[bucket])
		}
	}
	if _, err := GlobalIDFromData(make([]byte, 4)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	ds := dataset.Uniform(10, 1)
	if _, _, _, err := Partition(ds.Area, ds.Sites, 0); err == nil {
		t.Fatal("S=0 accepted")
	}
	if _, _, _, err := Partition(ds.Area, ds.Sites, 11); err == nil {
		t.Fatal("more shards than sites accepted")
	}
	outside := append(append([]geom.Point(nil), ds.Sites...), geom.Pt(-5, -5))
	if _, _, _, err := Partition(ds.Area, outside, 2); err == nil {
		t.Fatal("site outside the area accepted")
	}
}
