package fabric

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/stream"
)

// TestSwapperPerShardGenerationCuts: churn confined to one shard's
// interior republishes that shard alone — every other channel keeps its
// generation and its exact program.
func TestSwapperPerShardGenerationCuts(t *testing.T) {
	ds := dataset.Uniform(200, 21)
	const (
		capacity = 128
		S        = 4
	)
	sw, err := NewSwapper(ds.Area, ds.Sites, S, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the site nearest the center of shard 0's rectangle — churn
	// there only perturbs Voronoi cells deep inside the shard.
	center := sw.rects[0].Center()
	best, bestDist := -1, math.Inf(1)
	ids, sites := sw.maint.LiveSites()
	for i, id := range ids {
		if d := sites[i].Dist(center); d < bestDist {
			best, bestDist = id, d
		}
	}
	to := sites[best].Add(geom.Pt(3, 3))
	beforePkts := make([][][]byte, S)
	for ch := 0; ch < S; ch++ {
		beforePkts[ch] = sw.Current(ch).Shard.Prog.IndexPackets
	}
	gens, opIDs, err := sw.Apply([]stream.SiteOp{{Kind: stream.OpMove, ID: best, P: to}})
	if err != nil {
		t.Fatal(err)
	}
	if len(opIDs) != 1 {
		t.Fatalf("batch mapped to %d ids", len(opIDs))
	}
	if gens[0] != 2 {
		t.Fatalf("shard 0 at generation %d after interior churn, want 2", gens[0])
	}
	for ch := 1; ch < S; ch++ {
		if gens[ch] != 1 {
			t.Fatalf("shard %d republished (generation %d) by churn confined to shard 0", ch, gens[ch])
		}
		if cur := sw.Current(ch).Shard.Prog.IndexPackets; len(cur) != len(beforePkts[ch]) {
			t.Fatalf("shard %d program changed without a generation bump", ch)
		} else {
			for k := range cur {
				if !bytes.Equal(cur[k], beforePkts[ch][k]) {
					t.Fatalf("shard %d index packet %d changed without a generation bump", ch, k)
				}
			}
		}
	}
	if sw.Generation(0, 2) == nil || sw.Generation(0, 1) == nil {
		t.Fatal("shard 0 generation history incomplete")
	}
}

// TestSwapperMatchesFreshBuild: after arbitrary global churn, every
// shard's current program is byte-identical to a from-scratch fabric build
// of the live site set — the incremental path introduces no drift, the
// cross-shard analogue of the maintainer's bit-identity property.
func TestSwapperMatchesFreshBuild(t *testing.T) {
	ds := dataset.Uniform(150, 5)
	const (
		capacity = 128
		S        = 3
	)
	sw, err := NewSwapper(ds.Area, ds.Sites, S, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for batch := 0; batch < 5; batch++ {
		ops := make([]stream.SiteOp, 0, 4)
		live := sw.LiveSiteIDs()
		for i := 0; i < 4; i++ {
			p := randomPoint(rng, ds.Area)
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: p})
			case 1:
				ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: live[rng.Intn(len(live))]})
			default:
				ops = append(ops, stream.SiteOp{Kind: stream.OpMove, ID: live[rng.Intn(len(live))], P: p})
			}
		}
		if _, _, err := sw.Apply(ops); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	sub, globalIDs, err := sw.maint.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := FromSubdivision(sub, globalIDs, sw.dir, sw.rects, capacity, sw.opts)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < S; ch++ {
		cur := sw.Current(ch).Shard
		want := fresh.Shards[ch]
		if len(cur.IDs) != len(want.IDs) {
			t.Fatalf("shard %d: %d buckets incrementally, %d from scratch", ch, len(cur.IDs), len(want.IDs))
		}
		for i := range cur.IDs {
			if cur.IDs[i] != want.IDs[i] {
				t.Fatalf("shard %d bucket %d: global %d vs %d", ch, i, cur.IDs[i], want.IDs[i])
			}
		}
		if len(cur.Prog.IndexPackets) != len(want.Prog.IndexPackets) {
			t.Fatalf("shard %d: %d index packets incrementally, %d from scratch", ch, len(cur.Prog.IndexPackets), len(want.Prog.IndexPackets))
		}
		for k := range cur.Prog.IndexPackets {
			if !bytes.Equal(cur.Prog.IndexPackets[k], want.Prog.IndexPackets[k]) {
				t.Fatalf("shard %d index packet %d differs from a fresh build", ch, k)
			}
		}
	}
}
