package fabric

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/stream"
	"airindex/internal/voronoi"
)

// contOracle is the quiescent-fabric ground truth: the global Voronoi
// diagram rebuilt from the mirrored site set the test maintains alongside
// the swapper, with regions addressed by stable global id. It is only
// comparable to a client answer when every channel the client touched
// pinned the swapper's current generation — broadcast swaps land at each
// connection's cycle boundary, so a lightly-tuning client lags legitimately.
type contOracle struct {
	gids []int32
	pts  []geom.Point
	sub  *region.Subdivision
	at   map[int32]int // global id -> oracle region index
}

func newContOracle(t *testing.T, area geom.Rect, mirror map[int]geom.Point) *contOracle {
	t.Helper()
	o := &contOracle{at: make(map[int32]int, len(mirror))}
	ids := make([]int, 0, len(mirror))
	for id := range mirror {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		o.gids = append(o.gids, int32(id))
		o.pts = append(o.pts, mirror[id])
	}
	sub, err := voronoi.Subdivision(area, o.pts)
	if err != nil {
		t.Fatalf("oracle subdivision: %v", err)
	}
	o.sub = sub
	for i, gid := range o.gids {
		o.at[gid] = i
	}
	return o
}

func (o *contOracle) region(p geom.Point) int32 { return o.gids[o.sub.Locate(p)] }

func (o *contOracle) window(w geom.Rect) []int32 {
	var out []int32
	for i, r := range o.sub.Regions {
		if core.RegionIntersectsRect(r.Poly, w) {
			out = append(out, o.gids[i])
		}
	}
	return out
}

func (o *contOracle) knn(p geom.Point, k int) []int32 {
	idx := make([]int, len(o.pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := p.Dist2(o.pts[idx[a]]), p.Dist2(o.pts[idx[b]])
		if da != db {
			return da < db
		}
		return o.gids[idx[a]] < o.gids[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = o.gids[idx[i]]
	}
	return out
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pinnedState is one touched channel's ground truth at the generation the
// client pinned this cycle: the welded clipped subdivision (exact polygon
// geometry, an independent code path from the broadcast table's bisector
// walks), the shard-local -> global id mapping, and the per-region sites.
type pinnedState struct {
	rect  geom.Rect
	sub   *region.Subdivision
	ids   []int
	sites []geom.Point
}

func pinnedStates(t *testing.T, sw *Swapper, gens map[int]uint32) map[int]*pinnedState {
	t.Helper()
	out := make(map[int]*pinnedState, len(gens))
	for ch, gen := range gens {
		g := sw.Generation(ch, gen)
		if g == nil {
			t.Fatalf("channel %d answered under unknown generation %d", ch, gen)
		}
		adj := g.Shard.Flat.Flat.Adjacency()
		if adj == nil {
			t.Fatalf("channel %d generation %d carries no adjacency table", ch, gen)
		}
		out[ch] = &pinnedState{rect: g.Shard.Rect, sub: g.Shard.Sub, ids: g.Shard.IDs, sites: adj.Sites}
	}
	return out
}

// refWindow recomputes the window answer from the pinned per-shard ground
// truth: the union, over channels whose rectangle meets the window, of the
// regions whose clipped polygon intersects it. Valid under any mix of
// pinned generations.
func refWindow(states map[int]*pinnedState, w geom.Rect) []int32 {
	got := make(map[int32]bool)
	for _, s := range states {
		if !s.rect.Intersects(w) {
			continue
		}
		for i, r := range s.sub.Regions {
			if core.RegionIntersectsRect(r.Poly, w) {
				got[int32(s.ids[i])] = true
			}
		}
	}
	out := make([]int32, 0, len(got))
	for gid := range got {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// refKNN replays the client's cross-shard kNN rule against the pinned
// ground truth: radius bound from the home shard's own k nearest, candidate
// collection by clipped-polygon/square intersection, (distance², global id)
// ranking with min-distance dedup, doubling until the k-th cannot be beaten.
func refKNN(states map[int]*pinnedState, allRects []geom.Rect, home int, p geom.Point, k int) []int32 {
	hs := states[home]
	type li struct {
		d2 float64
		i  int
	}
	hl := make([]li, len(hs.sites))
	for i, s := range hs.sites {
		hl[i] = li{p.Dist2(s), i}
	}
	sort.Slice(hl, func(a, b int) bool {
		if hl[a].d2 != hl[b].d2 {
			return hl[a].d2 < hl[b].d2
		}
		return hl[a].i < hl[b].i
	})
	kk := k
	if kk > len(hl) {
		kk = len(hl)
	}
	var r2 float64
	for _, e := range hl[:kk] {
		if e.d2 > r2 {
			r2 = e.d2
		}
	}
	r := math.Sqrt(r2)
	if len(hl) < k || r == 0 {
		if g := math.Max(hs.rect.W(), hs.rect.H()) / 2; g > r {
			r = g
		}
		if r == 0 {
			r = 1
		}
	}
	type cand struct {
		gid int32
		d2  float64
	}
	for {
		wr := geom.Rect{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
		covered := true
		for _, rc := range allRects {
			if !wr.ContainsRect(rc) {
				covered = false
			}
		}
		best := make(map[int32]float64)
		for _, s := range states {
			if !s.rect.Intersects(wr) {
				continue
			}
			for i, rg := range s.sub.Regions {
				if core.RegionIntersectsRect(rg.Poly, wr) {
					gid := int32(s.ids[i])
					d2 := p.Dist2(s.sites[i])
					if od, ok := best[gid]; !ok || d2 < od {
						best[gid] = d2
					}
				}
			}
		}
		ranked := make([]cand, 0, len(best))
		for gid, d2 := range best {
			ranked = append(ranked, cand{gid, d2})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].d2 != ranked[j].d2 {
				return ranked[i].d2 < ranked[j].d2
			}
			return ranked[i].gid < ranked[j].gid
		})
		if len(ranked) > k && !covered && ranked[k-1].d2 > r*r {
			ranked = ranked[:k] // keep only provable entries below; fallthrough to doubling
		}
		if len(ranked) >= k && (covered || ranked[k-1].d2 <= r*r) {
			ids := make([]int32, k)
			for i := range ids {
				ids[i] = ranked[i].gid
			}
			return ids
		}
		if covered {
			ids := make([]int32, len(ranked))
			for i := range ids {
				ids[i] = ranked[i].gid
			}
			return ids
		}
		r *= 2
	}
}

// verifyContCycle checks one cycle against the pinned per-generation ground
// truth (always applicable) and, when every touched channel pinned the
// swapper's current generation, additionally against the global mirror
// oracle. Reports whether the strong check ran.
func verifyContCycle(t *testing.T, sw *Swapper, sess *Continuous, o *contOracle, q stream.ContinuousQuery, p geom.Point, out ContCycle, capacity int) bool {
	t.Helper()
	states := pinnedStates(t, sw, out.Gens)
	hs, ok := states[out.Home]
	if !ok {
		t.Fatalf("cycle %d: home channel %d not among touched channels %v", out.Cycle, out.Home, out.Gens)
	}
	// Region: the home shard's pinned subdivision must agree (boundary
	// points may land in any incident region).
	want := hs.sub.Locate(p)
	if int32(hs.ids[want]) != out.Region {
		at := -1
		for i, gid := range hs.ids {
			if int32(gid) == out.Region {
				at = i
				break
			}
		}
		if at < 0 || !hs.sub.Regions[at].Poly.Contains(p) {
			t.Fatalf("cycle %d: region %d, pinned ground truth %d at %v", out.Cycle, out.Region, hs.ids[want], p)
		}
	}
	if q.WindowW > 0 || q.WindowH > 0 {
		if want := refWindow(states, q.Window(p)); !equalI32(out.Window, want) {
			t.Fatalf("cycle %d: window %v, pinned ground truth %v (gens %v)", out.Cycle, out.Window, want, out.Gens)
		}
	}
	allRects := make([]geom.Rect, sw.Shards())
	for ch := range allRects {
		allRects[ch] = sw.Current(ch).Shard.Rect
	}
	if q.K > 0 {
		if want := refKNN(states, allRects, out.Home, p, q.K); !equalI32(out.KNN, want) {
			t.Fatalf("cycle %d: knn %v, pinned ground truth %v (gens %v)", out.Cycle, out.KNN, want, out.Gens)
		}
	}
	// Cached buckets on every touched channel must verify against the
	// generation that channel pinned, and every answer id must be cached on
	// at least one touched channel.
	cached := make(map[int32]bool)
	for ch, gen := range out.Gens {
		g := sw.Generation(ch, gen)
		for local, data := range sess.ChannelBuckets(ch) {
			if local < 0 || local >= len(g.Shard.IDs) {
				t.Fatalf("cycle %d: channel %d caches bucket %d outside generation %d", out.Cycle, ch, local, gen)
			}
			if err := stream.VerifyStampedData(data, capacity, local); err != nil {
				t.Fatalf("cycle %d: channel %d bucket %d: %v", out.Cycle, ch, local, err)
			}
			gid, err := GlobalIDFromData(data)
			if err != nil {
				t.Fatalf("cycle %d: channel %d bucket %d: %v", out.Cycle, ch, local, err)
			}
			if want := g.Shard.IDs[local]; gid != want {
				t.Fatalf("cycle %d: channel %d bucket %d stamps global %d, generation table says %d", out.Cycle, ch, local, gid, want)
			}
			cached[int32(gid)] = true
		}
	}
	check := append(append([]int32{out.Region}, out.Window...), out.KNN...)
	for _, gid := range check {
		if !cached[gid] {
			t.Fatalf("cycle %d: answer region %d has no cached bucket", out.Cycle, gid)
		}
	}
	if out.Res.TotalTuning() <= 0 || out.Res.Latency <= 0 {
		t.Fatalf("cycle %d: implausible accounting %+v", out.Cycle, out.Res)
	}
	n := 0
	for _, b := range []bool{out.Revalidated, out.Crossed, out.Refreshed} {
		if b {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("cycle %d: classification not exclusive: %+v", out.Cycle, out)
	}
	// Strong check: when every touched channel is current, the composed
	// answer must equal the from-scratch global oracle.
	for ch, gen := range out.Gens {
		if sw.Current(ch).Gen != gen {
			return false
		}
	}
	if wantR := o.region(p); out.Region != wantR {
		if i, ok := o.at[out.Region]; !ok || !o.sub.Regions[i].Poly.Contains(p) {
			t.Fatalf("cycle %d: region %d, global oracle %d at %v", out.Cycle, out.Region, wantR, p)
		}
	}
	if q.WindowW > 0 || q.WindowH > 0 {
		if wantW := o.window(q.Window(p)); !equalI32(out.Window, wantW) {
			t.Fatalf("cycle %d: window %v, global oracle %v", out.Cycle, out.Window, wantW)
		}
	}
	if q.K > 0 {
		if wantK := o.knn(p, q.K); !equalI32(out.KNN, wantK) {
			t.Fatalf("cycle %d: knn %v, global oracle %v", out.Cycle, out.KNN, wantK)
		}
	}
	return true
}

// applyMirrored drives one churn batch through the swapper and keeps the
// test's mirror of the live site set exact (shortened batches included).
func applyMirrored(t *testing.T, sw *Swapper, mirror map[int]geom.Point, ops []stream.SiteOp) {
	t.Helper()
	_, ids, err := sw.Apply(ops)
	if err != nil {
		t.Fatalf("churn: %v", err)
	}
	for i, id := range ids {
		switch ops[i].Kind {
		case stream.OpAdd, stream.OpMove:
			mirror[id] = ops[i].P
		case stream.OpRemove:
			delete(mirror, id)
		}
	}
}

// TestFabricAdjacencyOneShot checks that one-shot queries still resolve on
// an adjacency-carrying fabric: the client discovers the appendix length
// from the air and descends behind it, on both the resume and hop paths.
func TestFabricAdjacencyOneShot(t *testing.T) {
	ds := dataset.Uniform(150, 61)
	const capacity = 128
	sub, err := voronoi.Subdivision(ds.Area, ds.Sites)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(ds.Area, ds.Sites, 3, capacity, Options{Adjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	srvs := startFabricServers(t, f.Programs(), func(ch int, srv *stream.Server) {
		srv.StartSlot = func() int { return 0 }
	})
	c := NewClient(fabricAddrs(srvs), capacity)
	c.Adjacency = true
	defer c.Close()

	rng := rand.New(rand.NewSource(62))
	hops := 0
	for i := 0; i < 24; i++ {
		p := randomPoint(rng, ds.Area)
		entry := rng.Intn(3)
		res, err := c.QueryFrom(p, entry)
		if err != nil {
			t.Fatalf("query %d (%v from channel %d): %v", i, p, entry, err)
		}
		want := sub.Locate(p)
		if res.Global != want && !sub.Regions[res.Global].Poly.Contains(p) {
			t.Fatalf("query %d: %v -> global %d, ground truth %d", i, p, res.Global, want)
		}
		if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.TuneRecover != 0 || res.EpochRestarts != 0 {
			t.Fatalf("query %d: recovery on a perfect channel: %+v", i, res)
		}
		hops += res.Hops
	}
	if hops == 0 {
		t.Fatal("no query hopped; the test exercised only one channel")
	}
}

// TestFabricContinuousOracleUnderChurn is the sharded continuous gate: a
// moving client holds a standing window+kNN query over a 3-channel
// adjacency fabric while site churn drives per-shard generation swaps
// between cycles. Every cycle is verified against the exact per-channel
// generations the client pinned (swaps surface at each connection's cycle
// boundary, so sessions lag legitimately); cycles where every touched
// channel is current are additionally pinned to a from-scratch global
// Voronoi oracle over the mirrored site set. An independent fresh-mode
// session re-acquiring everything each cycle must stay cheaper to beat.
func TestFabricContinuousOracleUnderChurn(t *testing.T) {
	ds := dataset.Uniform(120, 71)
	const (
		capacity = 128
		S        = 3
		cycles   = 36
	)
	sw, err := NewSwapper(ds.Area, ds.Sites, S, capacity, Options{Adjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	srvs := startFabricServers(t, sw.Programs(), func(ch int, srv *stream.Server) {
		srv.StartSlot = func() int { return 0 }
	})
	for ch, srv := range srvs {
		sw.Bind(ch, srv)
	}

	mirror := make(map[int]geom.Point, len(ds.Sites))
	for i, p := range ds.Sites {
		mirror[i] = p
	}

	q := stream.ContinuousQuery{WindowW: 2600, WindowH: 1800, K: 4}
	newSession := func(mode stream.ContinuousMode) *Continuous {
		fc := NewClient(fabricAddrs(srvs), capacity)
		fc.Adjacency = true
		t.Cleanup(func() { fc.Close() }) //nolint:errcheck
		sess := NewContinuous(fc, mode, q)
		sess.Metrics = stream.NewContinuousMetrics()
		return sess
	}
	inc := newSession(stream.ModeIncremental)
	fresh := newSession(stream.ModeFresh)

	traj := dataset.RandomWaypoint(ds.Area, cycles, 8101, 250, 700)
	rng := rand.New(rand.NewSource(8102))
	var incTune, freshTune, strong int
	for cycle := 0; cycle < cycles; cycle++ {
		p := traj.At(cycle)
		oi, err := inc.Step(p)
		if err != nil {
			t.Fatalf("cycle %d incremental: %v", cycle, err)
		}
		of, err := fresh.Step(p)
		if err != nil {
			t.Fatalf("cycle %d fresh: %v", cycle, err)
		}
		o := newContOracle(t, ds.Area, mirror)
		if verifyContCycle(t, sw, inc, o, q, p, oi, capacity) {
			strong++
		}
		verifyContCycle(t, sw, fresh, o, q, p, of, capacity)
		if !of.Refreshed {
			t.Fatalf("cycle %d: fresh mode did not refresh: %+v", cycle, of)
		}
		// When both sessions pinned identical generations everywhere, their
		// answers must agree bit-for-bit regardless of churn.
		same := len(oi.Gens) == len(of.Gens)
		for ch, g := range oi.Gens {
			if fg, ok := of.Gens[ch]; !ok || fg != g {
				same = false
			}
		}
		if same && (oi.Region != of.Region || !equalI32(oi.Window, of.Window) || !equalI32(oi.KNN, of.KNN)) {
			t.Fatalf("cycle %d: same pinned generations, incremental %d/%v/%v, fresh %d/%v/%v",
				cycle, oi.Region, oi.Window, oi.KNN, of.Region, of.Window, of.KNN)
		}
		incTune += oi.Res.TotalTuning()
		freshTune += of.Res.TotalTuning()

		// Churn every third cycle, quiescing before the next step so the
		// per-generation ground truth stays pinned; the in-between cycles
		// earn revalidation hits.
		if cycle%3 == 2 {
			live := make([]int, 0, len(mirror))
			for id := range mirror {
				live = append(live, id)
			}
			sort.Ints(live)
			ops := []stream.SiteOp{
				{Kind: stream.OpMove, ID: live[rng.Intn(len(live))], P: randomPoint(rng, ds.Area)},
			}
			if len(live) < len(ds.Sites)+5 {
				ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: randomPoint(rng, ds.Area)})
			}
			if len(live) > len(ds.Sites)-5 {
				victim := live[rng.Intn(len(live))]
				if victim != ops[0].ID {
					ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: victim})
				}
			}
			applyMirrored(t, sw, mirror, ops)
		}
	}

	im, fm := inc.Metrics, fresh.Metrics
	if im.RevalidationHits.Load() == 0 {
		t.Fatal("incremental session never revalidated from cache")
	}
	if got, want := im.RevalidationHits.Load()+im.BoundaryRedescents.Load()+im.FullRefreshes.Load(), im.Cycles.Load(); got != want {
		t.Fatalf("cycle classification leak: %d classified of %d cycles", got, want)
	}
	if fm.FullRefreshes.Load() != int64(cycles) {
		t.Fatalf("fresh session refreshed %d of %d cycles", fm.FullRefreshes.Load(), cycles)
	}
	if strong == 0 {
		t.Fatal("no cycle ran the strong global-oracle check; sessions never caught up to the current generations")
	}
	if incTune >= freshTune {
		t.Fatalf("incremental tuning %d not below fresh %d", incTune, freshTune)
	}
	t.Logf("fabric continuous: tuning incremental %d, fresh %d (%.1fx); hits=%d redescents=%d refreshes=%d; strong-oracle cycles %d/%d",
		incTune, freshTune, float64(freshTune)/float64(incTune),
		im.RevalidationHits.Load(), im.BoundaryRedescents.Load(), im.FullRefreshes.Load(), strong, cycles)
}
