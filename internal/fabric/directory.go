package fabric

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Channel-directory wire format, version 1. The directory rides at the
// head of every index copy on every channel — the same replication trick
// internal/distidx uses for its upper levels, generalized across channels —
// so any probe on any channel reaches a routing root within one index
// segment. Header, little endian:
//
//	offset 0: magic 'F','D'
//	       2: version (1)
//	       3: reserved (0)
//	       4: u16 self channel (the only per-channel field)
//	       6: u16 channel count S
//	       8: u16 node count
//	      10: u16 directory packets d (so packet 0 alone tells a cold
//	          client how many directory packets to fetch before the D-tree
//	          root at offset d)
//	      12: nodes, dirNodeSize bytes each:
//	          axis u8 | split f64 | left u16 | right u16 | channel u16
//
// The encoding is padded to a whole number of capacity-sized packets.
const (
	dirMagic0      = 'F'
	dirMagic1      = 'D'
	dirVersion     = 1
	dirHeaderSize  = 12
	dirNodeSize    = 15
	minDirCapacity = dirHeaderSize + dirNodeSize
)

// EncodedSize returns the directory's unpadded byte size.
func (d *Directory) EncodedSize() int { return dirHeaderSize + len(d.Nodes)*dirNodeSize }

// PacketCount returns how many capacity-sized packets the directory
// occupies at the head of each index copy.
func (d *Directory) PacketCount(capacity int) int {
	return (d.EncodedSize() + capacity - 1) / capacity
}

// EncodePackets serializes the directory into capacity-sized packets,
// stamping self as the carrying channel. Replicas for different channels
// differ only in that field.
func (d *Directory) EncodePackets(capacity, self int) ([][]byte, error) {
	if capacity < minDirCapacity {
		return nil, fmt.Errorf("fabric: capacity %d below the directory minimum %d", capacity, minDirCapacity)
	}
	if self < 0 || self >= d.S {
		return nil, fmt.Errorf("fabric: self channel %d of %d", self, d.S)
	}
	if len(d.Nodes) == 0 || len(d.Nodes) > 0xffff {
		return nil, fmt.Errorf("fabric: directory has %d nodes", len(d.Nodes))
	}
	n := d.PacketCount(capacity)
	if n > 0xffff {
		return nil, fmt.Errorf("fabric: directory spans %d packets", n)
	}
	buf := make([]byte, n*capacity)
	buf[0], buf[1], buf[2], buf[3] = dirMagic0, dirMagic1, dirVersion, 0
	binary.LittleEndian.PutUint16(buf[4:], uint16(self))
	binary.LittleEndian.PutUint16(buf[6:], uint16(d.S))
	binary.LittleEndian.PutUint16(buf[8:], uint16(len(d.Nodes)))
	binary.LittleEndian.PutUint16(buf[10:], uint16(n))
	at := dirHeaderSize
	for _, nd := range d.Nodes {
		buf[at] = nd.Axis
		binary.LittleEndian.PutUint64(buf[at+1:], math.Float64bits(nd.Split))
		binary.LittleEndian.PutUint16(buf[at+9:], nd.Left)
		binary.LittleEndian.PutUint16(buf[at+11:], nd.Right)
		binary.LittleEndian.PutUint16(buf[at+13:], nd.Channel)
		at += dirNodeSize
	}
	pkts := make([][]byte, n)
	for i := range pkts {
		pkts[i] = buf[i*capacity : (i+1)*capacity]
	}
	return pkts, nil
}

// DirectoryPacketCount reads the directory packet count from packet 0, so
// a client holding only the first packet knows how much more directory to
// fetch before the D-tree begins.
func DirectoryPacketCount(pkt0 []byte) (int, error) {
	if err := checkDirHeader(pkt0); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint16(pkt0[10:])), nil
}

func checkDirHeader(b []byte) error {
	if len(b) < dirHeaderSize {
		return fmt.Errorf("fabric: directory header truncated at %d bytes", len(b))
	}
	if b[0] != dirMagic0 || b[1] != dirMagic1 {
		return fmt.Errorf("fabric: bad directory magic %#x %#x", b[0], b[1])
	}
	if b[2] != dirVersion {
		return fmt.Errorf("fabric: directory version %d, this client speaks %d", b[2], dirVersion)
	}
	return nil
}

// DecodeDirectory reassembles a directory from its full packet set (the d
// packets DirectoryPacketCount announced).
func DecodeDirectory(packets [][]byte) (*Directory, error) {
	if len(packets) == 0 {
		return nil, fmt.Errorf("fabric: no directory packets")
	}
	var buf []byte
	for _, p := range packets {
		buf = append(buf, p...)
	}
	if err := checkDirHeader(buf); err != nil {
		return nil, err
	}
	d := &Directory{
		Self: int(binary.LittleEndian.Uint16(buf[4:])),
		S:    int(binary.LittleEndian.Uint16(buf[6:])),
	}
	nodes := int(binary.LittleEndian.Uint16(buf[8:]))
	if want := int(binary.LittleEndian.Uint16(buf[10:])); want != len(packets) {
		return nil, fmt.Errorf("fabric: directory spans %d packets, got %d", want, len(packets))
	}
	if d.S < 1 || nodes < 1 || d.Self >= d.S {
		return nil, fmt.Errorf("fabric: corrupt directory header (S=%d nodes=%d self=%d)", d.S, nodes, d.Self)
	}
	if dirHeaderSize+nodes*dirNodeSize > len(buf) {
		return nil, fmt.Errorf("fabric: %d directory nodes overflow %d packets", nodes, len(packets))
	}
	d.Nodes = make([]DirNode, nodes)
	at := dirHeaderSize
	for i := range d.Nodes {
		d.Nodes[i] = DirNode{
			Axis:    buf[at],
			Split:   math.Float64frombits(binary.LittleEndian.Uint64(buf[at+1:])),
			Left:    binary.LittleEndian.Uint16(buf[at+9:]),
			Right:   binary.LittleEndian.Uint16(buf[at+11:]),
			Channel: binary.LittleEndian.Uint16(buf[at+13:]),
		}
		at += dirNodeSize
	}
	for i, nd := range d.Nodes {
		switch nd.Axis {
		case axisLeaf:
			if int(nd.Channel) >= d.S {
				return nil, fmt.Errorf("fabric: directory leaf %d names channel %d of %d", i, nd.Channel, d.S)
			}
		case axisX, axisY:
			if int(nd.Left) >= nodes || int(nd.Right) >= nodes || int(nd.Left) <= i || int(nd.Right) <= i {
				return nil, fmt.Errorf("fabric: directory node %d has out-of-order children", i)
			}
		default:
			return nil, fmt.Errorf("fabric: directory node %d has axis %d", i, nd.Axis)
		}
	}
	return d, nil
}
