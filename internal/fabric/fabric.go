package fabric

import (
	"encoding/binary"
	"fmt"
	"sync"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/stream"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

// sliverArea drops clip residue: a global cell whose intersection with a
// shard rectangle is at most this area is numerical noise from a cell
// grazing the split line, not content. Service areas are O(1e8) square
// units, so 1e-9 is ~17 orders below any real cell.
const sliverArea = 1e-9

// clippedRegion is one global Voronoi cell's piece inside a shard
// rectangle, tagged with the cell's global id. Comparing these slices
// exactly (float-bit identical vertices) is how the swapper decides
// whether a churn batch touched a shard at all — the voronoi.Maintainer
// guarantees untouched cells keep their exact bytes, and geom.ClipRect is
// deterministic, so unchanged content compares equal.
type clippedRegion struct {
	id   int
	poly geom.Polygon
}

// clipShard cuts the global subdivision down to one shard rectangle,
// returning the surviving pieces in global-id order. globalIDs maps region
// index to global data-instance id; nil means the identity (region index
// is the id). Cells straddling a shard boundary appear in every shard they
// intersect — honest data replication, charged to each shard's cycle.
func clipShard(sub *region.Subdivision, globalIDs []int, rect geom.Rect) []clippedRegion {
	var out []clippedRegion
	for i, r := range sub.Regions {
		if !r.Bounds().Intersects(rect) {
			continue
		}
		piece := geom.ClipRect(r.Poly, rect)
		if piece == nil || piece.Area() <= sliverArea {
			continue
		}
		id := i
		if globalIDs != nil {
			id = globalIDs[i]
		}
		out = append(out, clippedRegion{id: id, poly: piece})
	}
	return out
}

func equalClips(a, b []clippedRegion) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].id != b[i].id || len(a[i].poly) != len(b[i].poly) {
			return false
		}
		for j := range a[i].poly {
			if a[i].poly[j] != b[i].poly[j] {
				return false
			}
		}
	}
	return true
}

// Shard is one channel's compiled broadcast: the clipped subdivision it
// indexes, its D-tree, and the rendered-ready program whose index copies
// carry the channel directory as a prefix.
type Shard struct {
	Channel int
	Rect    geom.Rect
	Sub     *region.Subdivision
	IDs     []int // local bucket -> global data-instance id
	Tree    *core.Tree
	Paged   *core.Paged
	// Flat is the arena the shard serves queries from (Access/AccessInto)
	// and encodes its packets from; its snapshot hands the shard's index to
	// another process without a rebuild.
	Flat *core.FlatPaged
	Prog *stream.Program

	clips []clippedRegion
}

// Fabric is the compiled multi-channel broadcast: S shard programs plus
// the directory they all replicate.
type Fabric struct {
	Area       geom.Rect
	Capacity   int
	DirPackets int
	Dir        *Directory
	Rects      []geom.Rect
	Shards     []*Shard
}

// Options tunes the fabric build.
type Options struct {
	// M is the index copies per shard cycle; <= 0 picks each shard's
	// optimal m independently.
	M int
	// BuildWorkers bounds the per-shard D-tree build parallelism; <= 0
	// uses the core default.
	BuildWorkers int
	// Adjacency attaches a region-adjacency table to every shard arena and
	// splices its self-describing appendix between the directory and the
	// tree in every index copy, making each channel a continuous-query
	// medium (stream.Continuous, fabric.Continuous). The table carries the
	// global data-instance ids, so hopping clients union per-shard answers
	// and break kNN ties in the global numbering without bucket downloads.
	Adjacency bool
	// SiteOf resolves a global data-instance id to its site location while
	// compiling adjacency tables. Build, NewSwapper and RestoreSnapshotDir
	// fill it in from their site source when left nil.
	SiteOf func(globalID int) (geom.Point, error)
}

// siteOfSlice is the SiteOf for identity-numbered site slices (Build,
// RestoreSnapshotDir).
func siteOfSlice(sites []geom.Point) func(int) (geom.Point, error) {
	return func(id int) (geom.Point, error) {
		if id < 0 || id >= len(sites) {
			return geom.Point{}, fmt.Errorf("fabric: global id %d outside %d sites", id, len(sites))
		}
		return sites[id], nil
	}
}

// shardAdjacencyPackets attaches the shard's adjacency table to its arena
// when the options ask for one (skipped when the arena already carries a
// table, e.g. restored from a v2 snapshot) and returns the appendix packets
// to splice between the directory and the tree — nil when the broadcast
// carries no table.
func shardAdjacencyPackets(flat *core.FlatPaged, sub *region.Subdivision, rect geom.Rect, ids []int, capacity int, opts Options) ([][]byte, error) {
	if opts.Adjacency && flat.Flat.Adjacency() == nil {
		if opts.SiteOf == nil {
			return nil, fmt.Errorf("fabric: Options.Adjacency requires SiteOf")
		}
		sites := make([]geom.Point, len(ids))
		for i, id := range ids {
			p, err := opts.SiteOf(id)
			if err != nil {
				return nil, err
			}
			sites[i] = p
		}
		adj, err := core.BuildAdjacency(sub, rect, sites)
		if err != nil {
			return nil, err
		}
		gids := make([]int32, len(ids))
		for i, id := range ids {
			gids[i] = int32(id)
		}
		adj.IDs = gids
		if err := adj.Validate(); err != nil {
			return nil, err
		}
		if err := flat.Flat.SetAdjacency(adj); err != nil {
			return nil, err
		}
	}
	adj := flat.Flat.Adjacency()
	if adj == nil {
		return nil, nil
	}
	return adj.EncodePackets(capacity)
}

// Build partitions the sites into S shards and compiles the whole fabric
// from scratch: global Voronoi diagram, kd partition, and one D-tree
// program per shard. S = 1 degenerates to a single channel that still
// carries a one-leaf directory.
func Build(area geom.Rect, sites []geom.Point, S, capacity int, opts Options) (*Fabric, error) {
	if opts.Adjacency && opts.SiteOf == nil {
		opts.SiteOf = siteOfSlice(sites)
	}
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		return nil, err
	}
	dir, rects, _, err := Partition(area, sites, S)
	if err != nil {
		return nil, err
	}
	return FromSubdivision(sub, nil, dir, rects, capacity, opts)
}

// FromSubdivision compiles a fabric from an existing global subdivision
// (the swapper's incremental snapshots enter here). globalIDs maps region
// index to global data-instance id (nil = identity).
func FromSubdivision(sub *region.Subdivision, globalIDs []int, dir *Directory, rects []geom.Rect, capacity int, opts Options) (*Fabric, error) {
	if len(rects) != dir.S {
		return nil, fmt.Errorf("fabric: %d rects for %d channels", len(rects), dir.S)
	}
	area := rects[0]
	for _, r := range rects[1:] {
		area = area.Union(r)
	}
	f := &Fabric{
		Area:       area,
		Capacity:   capacity,
		DirPackets: dir.PacketCount(capacity),
		Dir:        dir,
		Rects:      rects,
		Shards:     make([]*Shard, dir.S),
	}
	var wg sync.WaitGroup
	errs := make([]error, dir.S)
	for ch := 0; ch < dir.S; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			clips := clipShard(sub, globalIDs, rects[ch])
			f.Shards[ch], errs[ch] = compileShard(dir, ch, rects[ch], clips, capacity, opts)
		}(ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// weldClips welds a shard's clipped pieces into its local subdivision and
// extracts the bucket -> global-id mapping, shared by the from-scratch
// compile and the snapshot restore.
func weldClips(ch int, rect geom.Rect, clips []clippedRegion) (*region.Subdivision, []int, error) {
	polys := make([]geom.Polygon, len(clips))
	ids := make([]int, len(clips))
	for i, c := range clips {
		polys[i] = c.poly
		ids[i] = c.id
	}
	sub, err := region.New(rect, polys)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: shard %d subdivision: %w", ch, err)
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("fabric: shard %d subdivision invalid: %w", ch, err)
	}
	return sub, ids, nil
}

// compileShard builds one channel's program: weld the clipped pieces into
// a shard-local subdivision, build and page its D-tree, and prefix the
// channel directory (stamped with this channel) to the index packets.
func compileShard(dir *Directory, ch int, rect geom.Rect, clips []clippedRegion, capacity int, opts Options) (*Shard, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("fabric: shard %d covers no regions", ch)
	}
	sub, ids, err := weldClips(ch, rect, clips)
	if err != nil {
		return nil, err
	}
	var buildOpts []core.BuildOption
	if opts.BuildWorkers > 0 {
		buildOpts = append(buildOpts, core.WithBuildWorkers(opts.BuildWorkers))
	}
	tree, err := core.Build(sub, buildOpts...)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d tree: %w", ch, err)
	}
	params := wire.DTreeParams(capacity)
	paged, err := tree.Page(params)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d paging: %w", ch, err)
	}
	flat := paged.Flatten()
	adjPkts, err := shardAdjacencyPackets(flat, sub, rect, ids, capacity, opts)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d adjacency: %w", ch, err)
	}
	treePkts, err := flat.EncodePackets()
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d encoding: %w", ch, err)
	}
	dirPkts, err := dir.EncodePackets(capacity, ch)
	if err != nil {
		return nil, err
	}
	indexPkts := make([][]byte, 0, len(dirPkts)+len(adjPkts)+len(treePkts))
	indexPkts = append(indexPkts, dirPkts...)
	indexPkts = append(indexPkts, adjPkts...)
	indexPkts = append(indexPkts, treePkts...)
	bucketPackets := params.DataBucketPackets()
	if bucketPackets > stream.MaxBucketPackets {
		return nil, fmt.Errorf("fabric: capacity %d needs %d packets per bucket, wire limit %d", capacity, bucketPackets, stream.MaxBucketPackets)
	}
	m := opts.M
	if m <= 0 {
		m = broadcast.OptimalM(len(indexPkts), sub.N()*bucketPackets)
	}
	sched, err := broadcast.NewSchedule(len(indexPkts), sub.N(), bucketPackets, m)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d schedule: %w", ch, err)
	}
	prog := &stream.Program{
		Capacity:     capacity,
		IndexPackets: indexPkts,
		Sched:        sched,
		Data:         DataStamp(capacity, ids),
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Shard{
		Channel: ch,
		Rect:    rect,
		Sub:     sub,
		IDs:     ids,
		Tree:    tree,
		Paged:   paged,
		Flat:    flat,
		Prog:    prog,
		clips:   clips,
	}, nil
}

// Programs returns the per-channel programs (for stream.NewServer).
func (f *Fabric) Programs() []*stream.Program {
	out := make([]*stream.Program, len(f.Shards))
	for i, s := range f.Shards {
		out[i] = s.Prog
	}
	return out
}

// DataStamp extends stream.BucketStamp with the global numbering: bytes
// [0,8) carry the local bucket and packet ids exactly as BucketStamp does
// (so stream.VerifyStampedData still applies), and bytes [8,12) of every
// packet carry the region's global data-instance id, so a hopping client
// reports answers in the global numbering without out-of-band state.
func DataStamp(capacity int, ids []int) func(bucket, pkt int) []byte {
	base := stream.BucketStamp(capacity)
	return func(bucket, pkt int) []byte {
		payload := base(bucket, pkt)
		if bucket >= 0 && bucket < len(ids) && capacity >= 12 {
			binary.LittleEndian.PutUint32(payload[8:], uint32(ids[bucket]))
		}
		return payload
	}
}

// GlobalIDFromData extracts the global data-instance id DataStamp wrote
// into a downloaded bucket.
func GlobalIDFromData(data []byte) (int, error) {
	if len(data) < 12 {
		return 0, fmt.Errorf("fabric: bucket data %d bytes, no global id", len(data))
	}
	return int(binary.LittleEndian.Uint32(data[8:])), nil
}
