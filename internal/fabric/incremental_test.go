package fabric

import (
	"bytes"
	"math/rand"
	"testing"

	"airindex/internal/dataset"
	"airindex/internal/stream"
)

// randomBatch draws one Apply batch against the swapper's live ids, never
// reusing an id already removed earlier in the same batch.
func randomBatch(rng *rand.Rand, sw *Swapper, ds *dataset.Dataset, batch int) []stream.SiteOp {
	live := sw.LiveSiteIDs()
	ops := make([]stream.SiteOp, 0, batch)
	for i := 0; i < batch; i++ {
		p := randomPoint(rng, ds.Area)
		switch op := rng.Intn(3); {
		case op == 0 || len(live) < 8:
			ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: p})
		case op == 1:
			k := rng.Intn(len(live))
			ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: live[k]})
			live = append(live[:k], live[k+1:]...)
		default:
			ops = append(ops, stream.SiteOp{Kind: stream.OpMove, ID: live[rng.Intn(len(live))], P: p})
		}
	}
	return ops
}

// requireShardsMatchFresh compares every shard of the swapper against a
// from-scratch fabric build of the live set: same bucket numbering, byte-
// identical index packets, byte-identical flat arena snapshots.
func requireShardsMatchFresh(t *testing.T, label string, sw *Swapper) {
	t.Helper()
	sub, globalIDs, err := sw.maint.Snapshot()
	if err != nil {
		t.Fatalf("%s: snapshot: %v", label, err)
	}
	fresh, err := FromSubdivision(sub, globalIDs, sw.dir, sw.rects, sw.capacity, sw.opts)
	if err != nil {
		t.Fatalf("%s: fresh build: %v", label, err)
	}
	for ch := range sw.cur {
		cur := sw.Current(ch).Shard
		want := fresh.Shards[ch]
		if len(cur.IDs) != len(want.IDs) {
			t.Fatalf("%s: shard %d: %d buckets incrementally, %d from scratch", label, ch, len(cur.IDs), len(want.IDs))
		}
		for i := range cur.IDs {
			if cur.IDs[i] != want.IDs[i] {
				t.Fatalf("%s: shard %d bucket %d: global %d vs %d", label, ch, i, cur.IDs[i], want.IDs[i])
			}
		}
		if len(cur.Prog.IndexPackets) != len(want.Prog.IndexPackets) {
			t.Fatalf("%s: shard %d: %d index packets incrementally, %d from scratch", label, ch, len(cur.Prog.IndexPackets), len(want.Prog.IndexPackets))
		}
		for k := range cur.Prog.IndexPackets {
			if !bytes.Equal(cur.Prog.IndexPackets[k], want.Prog.IndexPackets[k]) {
				t.Fatalf("%s: shard %d index packet %d differs from a fresh build", label, ch, k)
			}
		}
		if !bytes.Equal(cur.Flat.Snapshot(), want.Flat.Snapshot()) {
			t.Fatalf("%s: shard %d arena snapshot differs from a fresh build", label, ch)
		}
	}
}

// TestSwapperIncrementalEveryGeneration pins the fabric's incremental cut
// pipeline per generation: after every Apply batch, every shard's program
// and arena are byte-identical to a from-scratch fabric build of the live
// set, and untouched shards keep not just their generation number but the
// very same published objects.
func TestSwapperIncrementalEveryGeneration(t *testing.T) {
	ds := dataset.Uniform(140, 61)
	const (
		capacity = 128
		S        = 4
	)
	sw, err := NewSwapper(ds.Area, ds.Sites, S, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireShardsMatchFresh(t, "bootstrap", sw)
	rng := rand.New(rand.NewSource(62))
	incremental, skipped := 0, 0
	for batch := 0; batch < 12; batch++ {
		before := make([]*ShardGeneration, S)
		for ch := 0; ch < S; ch++ {
			before[ch] = sw.Current(ch)
		}
		gens, _, err := sw.Apply(randomBatch(rng, sw, &ds, 1+rng.Intn(3)))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for ch := 0; ch < S; ch++ {
			if gens[ch] == before[ch].Gen {
				skipped++
				if sw.Current(ch) != before[ch] {
					t.Fatalf("batch %d: shard %d kept generation %d but replaced the published object", batch, ch, gens[ch])
				}
			} else if sw.comps[ch].prev != nil && sw.comps[ch].patch != nil {
				incremental++
			}
		}
		requireShardsMatchFresh(t, "batch", sw)
	}
	if skipped == 0 {
		t.Error("no shard cut was ever skipped; the dirty-footprint prefilter never fired")
	}
	if incremental == 0 {
		t.Error("no shard was ever rebuilt with retained incremental state")
	}
}

// TestSwapperReconcileAfterStale pins the recovery path: when an Apply is
// marked stale (as a failed rebuild or publish would), the next Apply
// reconciles every shard from a fresh clip scan and converges back to the
// from-scratch build, after which incremental cutting resumes.
func TestSwapperReconcileAfterStale(t *testing.T) {
	ds := dataset.Uniform(120, 71)
	const (
		capacity = 128
		S        = 3
	)
	sw, err := NewSwapper(ds.Area, ds.Sites, S, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	if _, _, err := sw.Apply(randomBatch(rng, sw, &ds, 3)); err != nil {
		t.Fatal(err)
	}
	// Simulate a failed batch: the maintainer advanced but nothing was
	// republished and the bounds cache was never updated.
	sw.mu.Lock()
	sw.maint.BeginBatch()
	live, _ := sw.maint.LiveSites()
	if _, err := sw.maint.Move(live[0], randomPoint(rng, ds.Area)); err != nil {
		sw.mu.Unlock()
		t.Fatal(err)
	}
	sw.stale = true
	sw.mu.Unlock()
	// The next Apply must reconcile the missed churn even though its own
	// batch is tiny.
	if _, _, err := sw.Apply(randomBatch(rng, sw, &ds, 1)); err != nil {
		t.Fatal(err)
	}
	requireShardsMatchFresh(t, "reconcile", sw)
	// And the pipeline keeps cutting incrementally afterwards.
	for batch := 0; batch < 4; batch++ {
		if _, _, err := sw.Apply(randomBatch(rng, sw, &ds, 1+rng.Intn(3))); err != nil {
			t.Fatalf("post-reconcile batch %d: %v", batch, err)
		}
	}
	requireShardsMatchFresh(t, "post-reconcile", sw)
}
