package fabric

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/stream"
	"airindex/internal/voronoi"
)

// Per-shard snapshot files extend the single-channel zero-parse restart to
// the sharded fabric: WriteSnapshotDir persists every shard's flat arena as
// one DTARENA1 slab, and RestoreSnapshotDir brings the fabric back without
// rebuilding a single D-tree. The restore recomputes only the cheap
// geometry — the global Voronoi diagram, the kd partition and the per-shard
// clips, which pin the bucket->global-id mapping and structurally validate
// each loaded arena — then re-encodes packets straight from the restored
// slabs. Because the arena bytes are exactly the writer's and packet
// encoding is deterministic, the restored programs put byte-identical
// cycles on the air.

// SnapshotPath names shard ch's snapshot file inside dir.
func SnapshotPath(dir string, ch int) string {
	return filepath.Join(dir, fmt.Sprintf("shard%d.dtsnap", ch))
}

// WriteSnapshotDir writes one DTARENA1 snapshot per shard into dir
// (creating it if needed), each atomically via the core writer.
func (f *Fabric) WriteSnapshotDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sh := range f.Shards {
		if err := sh.Flat.WriteSnapshotFile(SnapshotPath(dir, sh.Channel)); err != nil {
			return fmt.Errorf("fabric: shard %d snapshot: %w", sh.Channel, err)
		}
	}
	return nil
}

// RestoreSnapshotDir rebuilds the fabric from per-shard snapshot files
// written by WriteSnapshotDir for the same area, sites and shard count. The
// packet capacity is taken from the snapshots (all shards must agree). Each
// loaded arena passes the DTARENA1 structural checks plus a region-count
// match against the shard's freshly clipped subdivision, so a stale or
// misdirected snapshot fails loudly instead of serving wrong geometry.
// Restored shards carry no *core.Tree or *core.Paged — only the flat arena
// that serving and packet encoding need.
func RestoreSnapshotDir(area geom.Rect, sites []geom.Point, S int, dir string, opts Options) (*Fabric, error) {
	if opts.Adjacency && opts.SiteOf == nil {
		opts.SiteOf = siteOfSlice(sites)
	}
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		return nil, err
	}
	d, rects, _, err := Partition(area, sites, S)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		Area:   area,
		Dir:    d,
		Rects:  rects,
		Shards: make([]*Shard, S),
	}
	var wg sync.WaitGroup
	errs := make([]error, S)
	for ch := 0; ch < S; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			clips := clipShard(sub, nil, rects[ch])
			f.Shards[ch], errs[ch] = restoreShard(d, ch, rects[ch], clips, SnapshotPath(dir, ch), opts)
		}(ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	f.Capacity = f.Shards[0].Flat.Params.PacketCapacity
	for _, sh := range f.Shards[1:] {
		if c := sh.Flat.Params.PacketCapacity; c != f.Capacity {
			return nil, fmt.Errorf("fabric: shard %d snapshot capacity %d, shard 0 has %d", sh.Channel, c, f.Capacity)
		}
	}
	f.DirPackets = d.PacketCount(f.Capacity)
	return f, nil
}

// restoreShard is compileShard with the tree build and arena encode
// replaced by a snapshot load: the clips still pin the shard's bucket
// numbering and global ids, and welding them validates the loaded arena's
// region count.
func restoreShard(dir *Directory, ch int, rect geom.Rect, clips []clippedRegion, path string, opts Options) (*Shard, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("fabric: shard %d covers no regions", ch)
	}
	fp, err := core.LoadSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d: %w", ch, err)
	}
	sub, ids, err := weldClips(ch, rect, clips)
	if err != nil {
		return nil, err
	}
	if err := fp.AttachSubdivision(sub); err != nil {
		return nil, fmt.Errorf("fabric: shard %d snapshot does not match the clipped site set: %w", ch, err)
	}
	capacity := fp.Params.PacketCapacity
	adjPkts, err := shardAdjacencyPackets(fp, sub, rect, ids, capacity, opts)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d adjacency: %w", ch, err)
	}
	treePkts, err := fp.EncodePackets()
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d encoding: %w", ch, err)
	}
	dirPkts, err := dir.EncodePackets(capacity, ch)
	if err != nil {
		return nil, err
	}
	indexPkts := make([][]byte, 0, len(dirPkts)+len(adjPkts)+len(treePkts))
	indexPkts = append(indexPkts, dirPkts...)
	indexPkts = append(indexPkts, adjPkts...)
	indexPkts = append(indexPkts, treePkts...)
	bucketPackets := fp.Params.DataBucketPackets()
	if bucketPackets > stream.MaxBucketPackets {
		return nil, fmt.Errorf("fabric: capacity %d needs %d packets per bucket, wire limit %d", capacity, bucketPackets, stream.MaxBucketPackets)
	}
	m := opts.M
	if m <= 0 {
		m = broadcast.OptimalM(len(indexPkts), sub.N()*bucketPackets)
	}
	sched, err := broadcast.NewSchedule(len(indexPkts), sub.N(), bucketPackets, m)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d schedule: %w", ch, err)
	}
	prog := &stream.Program{
		Capacity:     capacity,
		IndexPackets: indexPkts,
		Sched:        sched,
		Data:         DataStamp(capacity, ids),
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Shard{
		Channel: ch,
		Rect:    rect,
		Sub:     sub,
		IDs:     ids,
		Flat:    fp,
		Prog:    prog,
		clips:   clips,
	}, nil
}
