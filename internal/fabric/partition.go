// Package fabric is the multi-channel sharded broadcast: the service area
// is split into S balanced spatial partitions, each broadcast on its own
// channel as an independent (1, m) D-tree program, and a small replicated
// channel directory — a kd routing tree over the partition boundaries — is
// prefixed to every index copy on every channel, so a client's first probe
// routes it to the shard that owns its location. Latency then scales with
// one shard's cycle instead of the whole service area's, while the sharded
// answer stays bit-identical to the single-channel answer: each shard
// indexes the global Voronoi cells clipped to its rectangle, so the region
// a point resolves to is the same cell of the same diagram.
package fabric

import (
	"fmt"
	"sort"

	"airindex/internal/geom"
)

// Directory node axis codes.
const (
	axisX    = 0
	axisY    = 1
	axisLeaf = 2
)

// DirNode is one node of the channel-routing kd tree. Interior nodes split
// the current rectangle at Split along Axis (left = strictly below the
// split coordinate); leaves name the broadcast channel serving the
// rectangle they cover.
type DirNode struct {
	Axis    uint8
	Split   float64
	Left    uint16
	Right   uint16
	Channel uint16
}

// Directory is the replicated channel directory: the routing tree every
// channel carries at the head of each index copy. Self is the channel the
// copy in hand was heard on — the only field that differs between the
// per-channel replicas.
type Directory struct {
	Self  int
	S     int
	Nodes []DirNode
}

// Route returns the channel whose shard owns p.
func (d *Directory) Route(p geom.Point) int {
	ni := 0
	for {
		n := &d.Nodes[ni]
		switch n.Axis {
		case axisLeaf:
			return int(n.Channel)
		case axisX:
			if p.X < n.Split {
				ni = int(n.Left)
			} else {
				ni = int(n.Right)
			}
		default:
			if p.Y < n.Split {
				ni = int(n.Left)
			} else {
				ni = int(n.Right)
			}
		}
	}
}

// Partition splits the service area into S rectangles balanced by site
// count with a recursive kd median split (the longer side of the current
// rectangle is cut, so shards stay compact), and returns the routing
// directory, the per-channel rectangles, and the per-channel site index
// lists. S need not be a power of two: a node granted k channels gives
// floor(k/2) to the low side and sites proportionally.
func Partition(area geom.Rect, sites []geom.Point, S int) (*Directory, []geom.Rect, [][]int, error) {
	if S < 1 {
		return nil, nil, nil, fmt.Errorf("fabric: shard count %d", S)
	}
	if S > len(sites) {
		return nil, nil, nil, fmt.Errorf("fabric: %d shards for %d sites", S, len(sites))
	}
	for i, p := range sites {
		if !area.Contains(p) {
			return nil, nil, nil, fmt.Errorf("fabric: site %d (%v) outside the service area", i, p)
		}
	}
	d := &Directory{S: S}
	rects := make([]geom.Rect, S)
	byChannel := make([][]int, S)
	ids := make([]int, len(sites))
	for i := range ids {
		ids[i] = i
	}
	var build func(rect geom.Rect, ids []int, lo, hi int) (uint16, error)
	build = func(rect geom.Rect, ids []int, lo, hi int) (uint16, error) {
		ni := len(d.Nodes)
		if ni > 0xffff {
			return 0, fmt.Errorf("fabric: directory exceeds %d nodes", 0x10000)
		}
		d.Nodes = append(d.Nodes, DirNode{})
		if hi-lo == 1 {
			if len(ids) == 0 {
				return 0, fmt.Errorf("fabric: channel %d would serve no sites", lo)
			}
			if rect.Area() <= 0 {
				return 0, fmt.Errorf("fabric: channel %d would serve a degenerate rectangle %v", lo, rect)
			}
			d.Nodes[ni] = DirNode{Axis: axisLeaf, Channel: uint16(lo)}
			rects[lo] = rect
			byChannel[lo] = append([]int(nil), ids...)
			return uint16(ni), nil
		}
		axis := axisX
		if rect.H() > rect.W() {
			axis = axisY
		}
		coord := func(i int) float64 {
			if axis == axisX {
				return sites[i].X
			}
			return sites[i].Y
		}
		// Deterministic order: by coordinate, ties by site index.
		sort.Slice(ids, func(a, b int) bool {
			ca, cb := coord(ids[a]), coord(ids[b])
			if ca != cb {
				return ca < cb
			}
			return ids[a] < ids[b]
		})
		chL := (hi - lo) / 2
		k := len(ids) * chL / (hi - lo)
		if k < 1 {
			k = 1
		}
		if k > len(ids)-1 {
			k = len(ids) - 1
		}
		split := (coord(ids[k-1]) + coord(ids[k])) / 2
		var rl, rr geom.Rect
		if axis == axisX {
			rl = geom.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: split, MaxY: rect.MaxY}
			rr = geom.Rect{MinX: split, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY}
		} else {
			rl = geom.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: split}
			rr = geom.Rect{MinX: rect.MinX, MinY: split, MaxX: rect.MaxX, MaxY: rect.MaxY}
		}
		d.Nodes[ni] = DirNode{Axis: uint8(axis), Split: split}
		l, err := build(rl, ids[:k], lo, lo+chL)
		if err != nil {
			return 0, err
		}
		r, err := build(rr, ids[k:], lo+chL, hi)
		if err != nil {
			return 0, err
		}
		d.Nodes[ni].Left, d.Nodes[ni].Right = l, r
		return uint16(ni), nil
	}
	if _, err := build(area, ids, 0, S); err != nil {
		return nil, nil, nil, err
	}
	return d, rects, byChannel, nil
}
