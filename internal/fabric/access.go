package fabric

import (
	"fmt"

	"airindex/internal/geom"
)

// Cost is the outcome of one simulated fabric access: latency in slots
// from query issue to the last data packet, tuning in parsed packets,
// split by protocol phase. All channels share one synchronized slot clock
// (the broadcastd fabric drives every shard server off one listener
// process), so hopping costs no clock re-alignment beyond the fresh probe
// it is charged.
type Cost struct {
	Shard  int // channel that answered
	Bucket int // shard-local bucket
	Global int // global data-instance id
	Hops   int // 0 when the entry channel owned the point

	Latency       float64
	TuneProbe     int
	TuneDirectory int // directory packets parsed (replicated prefix of each index copy)
	TuneIndex     int // D-tree packets parsed
	TuneData      int
}

// TotalTuning returns the active-radio packet count across phases.
func (c Cost) TotalTuning() int {
	return c.TuneProbe + c.TuneDirectory + c.TuneIndex + c.TuneData
}

// Access simulates the hopping access protocol on a perfect channel:
// probe the entry channel at time t = u * cycleLen(entry) (u in [0, 1)),
// read the channel directory at the head of the next index copy, hop to
// the owning shard when it differs — a fresh probe there, charged exactly
// like the first — then run the D-tree descent against that shard's index
// copy (offsets shifted past the directory prefix) and download the
// bucket. The returned trace slice is reusable scratch.
func (f *Fabric) Access(p geom.Point, entry int, u float64) (Cost, error) {
	c, _, err := f.AccessInto(p, entry, u, nil)
	return c, err
}

// AccessInto is Access with a caller-owned trace buffer (zero-allocation
// inner loops in the shard sweep).
func (f *Fabric) AccessInto(p geom.Point, entry int, u float64, trace []int) (Cost, []int, error) {
	if entry < 0 || entry >= len(f.Shards) {
		return Cost{}, trace, fmt.Errorf("fabric: entry channel %d of %d", entry, len(f.Shards))
	}
	if u < 0 || u >= 1 {
		return Cost{}, trace, fmt.Errorf("fabric: u = %v outside [0, 1)", u)
	}
	es := f.Shards[entry]
	t := u * float64(es.Prog.Sched.CycleLen())
	cost := Cost{Shard: entry}

	// Probe on the entry channel: the first full packet after t.
	cur := float64(int(t) + 1)
	cost.TuneProbe = 1

	// The directory rides at the head of the next index copy.
	idxStart := float64(es.Prog.Sched.NextIndexStart(cur))
	cur = idxStart + float64(f.DirPackets)
	cost.TuneDirectory = f.DirPackets

	target := f.Dir.Route(p)
	cost.Shard = target
	ts := f.Shards[target]
	if target != entry {
		// Hop: retune and probe the owning channel, exactly like an epoch
		// restart re-probes — the wasted directory read stays charged.
		cost.Hops = 1
		cur = float64(int(cur) + 1)
		cost.TuneProbe++
		idxStart = float64(ts.Prog.Sched.NextIndexStart(cur))
	}

	bucket, trace := ts.Flat.LocateInto(p, trace[:0])
	if bucket < 0 {
		return cost, trace, fmt.Errorf("fabric: point %v escapes shard %d", p, target)
	}
	for _, off := range trace {
		at := idxStart + float64(f.DirPackets+off)
		if at < cur {
			// The offset already flew by: wait for the next copy, as the
			// live client does via the NextIndex pointer.
			idxStart = float64(ts.Prog.Sched.NextIndexStart(cur))
			at = idxStart + float64(f.DirPackets+off)
		}
		cur = at + 1
		cost.TuneIndex++
	}
	dataStart := float64(ts.Prog.Sched.NextBucketStart(bucket, cur))
	bp := ts.Prog.Sched.BucketPackets
	cost.TuneData = bp
	cost.Latency = dataStart + float64(bp) - t
	cost.Bucket = bucket
	cost.Global = ts.IDs[bucket]
	return cost, trace, nil
}
