package fabric

import (
	"bytes"
	"os"
	"testing"

	"airindex/internal/dataset"
)

// TestSnapshotDirRoundTrip pins the sharded zero-parse restart: a fabric
// written to a snapshot directory and restored from it puts byte-identical
// programs on the air — same directory prefix, same tree packets, same
// schedule, same global-id stamps — without building a single D-tree.
func TestSnapshotDirRoundTrip(t *testing.T) {
	ds := dataset.Uniform(130, 977)
	const (
		S        = 3
		capacity = 128
	)
	f, err := Build(ds.Area, ds.Sites, S, capacity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := f.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreSnapshotDir(ds.Area, ds.Sites, S, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Capacity != capacity || got.DirPackets != f.DirPackets {
		t.Fatalf("restored capacity %d dirPackets %d, want %d and %d", got.Capacity, got.DirPackets, capacity, f.DirPackets)
	}
	for ch := 0; ch < S; ch++ {
		want, sh := f.Shards[ch], got.Shards[ch]
		if sh.Tree != nil || sh.Paged != nil {
			t.Fatalf("shard %d: restore built a tree, want zero-parse", ch)
		}
		if len(sh.IDs) != len(want.IDs) {
			t.Fatalf("shard %d: %d buckets restored, %d built", ch, len(sh.IDs), len(want.IDs))
		}
		for i := range sh.IDs {
			if sh.IDs[i] != want.IDs[i] {
				t.Fatalf("shard %d bucket %d: global %d, want %d", ch, i, sh.IDs[i], want.IDs[i])
			}
		}
		if len(sh.Prog.IndexPackets) != len(want.Prog.IndexPackets) {
			t.Fatalf("shard %d: %d index packets, want %d", ch, len(sh.Prog.IndexPackets), len(want.Prog.IndexPackets))
		}
		for k := range sh.Prog.IndexPackets {
			if !bytes.Equal(sh.Prog.IndexPackets[k], want.Prog.IndexPackets[k]) {
				t.Fatalf("shard %d index packet %d differs after restore", ch, k)
			}
		}
		if sh.Prog.Sched.M != want.Prog.Sched.M || sh.Prog.Sched.CycleLen() != want.Prog.Sched.CycleLen() {
			t.Fatalf("shard %d schedule differs after restore", ch)
		}
		if !bytes.Equal(sh.Flat.Snapshot(), want.Flat.Snapshot()) {
			t.Fatalf("shard %d arena snapshot differs after restore", ch)
		}
		// The data stamps carry the same global numbering.
		for _, b := range []int{0, len(sh.IDs) - 1} {
			if g, w := sh.Prog.Data(b, 0), want.Prog.Data(b, 0); !bytes.Equal(g, w) {
				t.Fatalf("shard %d bucket %d data stamp differs after restore", ch, b)
			}
		}
	}
}

// TestRestoreSnapshotDirRejectsDrift pins the failure modes: a missing
// shard file, a corrupted slab, and a snapshot taken over a different site
// set must all fail the restore loudly.
func TestRestoreSnapshotDirRejectsDrift(t *testing.T) {
	ds := dataset.Uniform(90, 978)
	const S = 2
	f, err := Build(ds.Area, ds.Sites, S, 128, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := f.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreSnapshotDir(ds.Area, ds.Sites, S+1, dir, Options{}); err == nil {
		t.Error("restore with a different shard count succeeded")
	}

	other := dataset.Uniform(120, 979)
	if _, err := RestoreSnapshotDir(other.Area, other.Sites, S, dir, Options{}); err == nil {
		t.Error("restore over a different site set succeeded")
	}

	raw, err := os.ReadFile(SnapshotPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(SnapshotPath(dir, 1), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSnapshotDir(ds.Area, ds.Sites, S, dir, Options{}); err == nil {
		t.Error("restore of a corrupted slab succeeded")
	}

	if err := os.Remove(SnapshotPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSnapshotDir(ds.Area, ds.Sites, S, dir, Options{}); err == nil {
		t.Error("restore with a missing shard file succeeded")
	}
}
