package fabric

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/stream"
	"airindex/internal/voronoi"
)

// ShardGeneration is one published program of one shard together with the
// ground truth it indexes, kept for post-hoc answer verification exactly
// like stream.Generation.
type ShardGeneration struct {
	Gen   uint32
	Shard *Shard
}

// Swapper drives live reconfiguration of a sharded fabric with per-shard
// generation cuts: one global voronoi.Maintainer owns the site population,
// and an Apply batch rebuilds and republishes only the shards whose
// clipped content actually changed — churn confined to one shard's
// interior leaves every other channel's broadcast untouched, generation
// number and all. Each cut is incremental end to end: the batch's dirty
// cells prefilter the touched shards by bounding box, patchClips re-clips
// only those cells, and each touched shard's retained compiler rebuilds
// only the dirty D-tree subtrees and arena ranges — byte-identical to a
// from-scratch fabric build. The partition (rects and directory) is fixed
// for the swapper's lifetime, so client routing is generation-invariant.
type Swapper struct {
	capacity int
	opts     Options

	mu    sync.Mutex
	maint *voronoi.Maintainer
	dir   *Directory
	rects []geom.Rect
	cur   []*ShardGeneration
	gens  []map[uint32]*ShardGeneration
	srvs  []*stream.Server
	comps []*shardCompiler
	// gpatch maintains the canonical global subdivision across batches —
	// shards clip the *welded* polygons (exactly what a from-scratch
	// Snapshot + clipShard sees), not the maintainer's raw cells, whose
	// coordinates can differ in the last ulp where welding canonicalizes
	// near-coincident corners.
	gpatch *region.Patcher
	// bounds caches every live cell's bounding box (site id -> bounds of
	// the cell as of the last published cut); together with a dirty cell's
	// new bounds it forms the churn footprint the shard prefilter tests.
	bounds map[int]geom.Rect
	// stale marks that a failed Apply left the published shards behind the
	// maintainer; the next Apply reconciles every shard from a fresh clip
	// scan instead of trusting the incremental clip delta.
	stale bool
}

// NewSwapper builds the initial fabric (every shard at generation 1) for
// the given sites.
func NewSwapper(area geom.Rect, sites []geom.Point, S, capacity int, opts Options) (*Swapper, error) {
	maint, err := voronoi.NewMaintainer(area, sites)
	if err != nil {
		return nil, err
	}
	if opts.Adjacency && opts.SiteOf == nil {
		// Resolve against the live maintainer: compiles run strictly after a
		// batch's mutations, so the lookup sees exactly the generation's
		// sites. Reads are lock-free and the Apply path serializes writers.
		opts.SiteOf = maint.Site
	}
	dir, rects, _, err := Partition(area, sites, S)
	if err != nil {
		return nil, err
	}
	sw := &Swapper{
		capacity: capacity,
		opts:     opts,
		maint:    maint,
		dir:      dir,
		rects:    rects,
		cur:      make([]*ShardGeneration, S),
		gens:     make([]map[uint32]*ShardGeneration, S),
		srvs:     make([]*stream.Server, S),
		comps:    make([]*shardCompiler, S),
		bounds:   make(map[int]geom.Rect, len(sites)),
	}
	for ch := 0; ch < S; ch++ {
		sw.comps[ch] = newShardCompiler(dir, ch, rects[ch], capacity, opts)
	}
	ids, polys := maint.LiveCells()
	sw.gpatch = region.NewPatcher(area)
	gsub, _, err := sw.gpatch.Patch(ids, polys, ids, nil)
	if err != nil {
		return nil, err
	}
	if err := gsub.Validate(); err != nil {
		return nil, err
	}
	canon := regionPolys(gsub)
	for i, id := range ids {
		sw.bounds[id] = canon[i].Bounds()
	}
	var wg sync.WaitGroup
	errs := make([]error, S)
	for ch := 0; ch < S; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			sh, err := sw.comps[ch].full(clipCells(ids, canon, rects[ch]))
			if err != nil {
				errs[ch] = err
				return
			}
			g := &ShardGeneration{Gen: 1, Shard: sh}
			sw.gens[ch] = map[uint32]*ShardGeneration{1: g}
			sw.cur[ch] = g
		}(ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// Shards returns the channel count.
func (sw *Swapper) Shards() int { return len(sw.cur) }

// Directory returns the fixed routing directory.
func (sw *Swapper) Directory() *Directory { return sw.dir }

// DirPackets returns the directory prefix length in packets.
func (sw *Swapper) DirPackets() int { return sw.dir.PacketCount(sw.capacity) }

// Programs returns the current per-channel programs (for stream.NewServer).
func (sw *Swapper) Programs() []*stream.Program {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]*stream.Program, len(sw.cur))
	for ch, g := range sw.cur {
		out[ch] = g.Shard.Prog
	}
	return out
}

// Bind attaches channel ch's server. The server must have been built from
// this swapper's program for ch so generation numbering lines up (both
// start at 1).
func (sw *Swapper) Bind(ch int, srv *stream.Server) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.srvs[ch] = srv
}

// Current returns channel ch's latest built generation.
func (sw *Swapper) Current(ch int) *ShardGeneration {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cur[ch]
}

// Generation returns channel ch's published generation gen, or nil.
func (sw *Swapper) Generation(ch int, gen uint32) *ShardGeneration {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.gens[ch][gen]
}

// Len returns the current number of live sites.
func (sw *Swapper) Len() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.maint.Len()
}

// LiveSiteIDs returns the ids of the live sites.
func (sw *Swapper) LiveSiteIDs() []int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ids, _ := sw.maint.LiveSites()
	return ids
}

// Pending reports whether a failed Apply left the published fabric behind
// the maintainer (the stale-reconcile state). The next Apply — an empty
// batch suffices — rescans and republishes every drifted shard; retriers
// consult this to avoid re-applying operations that already landed.
func (sw *Swapper) Pending() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.stale
}

// pendingShard is one shard the batch actually changed, with its new clip
// sequence and the shard-local dirty/removed key sets.
type pendingShard struct {
	ch      int
	clips   []clippedRegion
	dirty   []int
	removed []int
	full    bool // reconcile path: force a full rebuild
}

// collectChanges turns the batch's canonical dirty and removed id sets
// into per-cell churn footprints over the canonical polygons. liveIDs is
// ascending, so dirty ids (also ascending) resolve by binary search.
func (sw *Swapper) collectChanges(dirty, removed []int, liveIDs []int, canon []geom.Polygon) []*cellChange {
	changes := make([]*cellChange, 0, len(dirty)+len(removed))
	for _, id := range dirty {
		i := sort.SearchInts(liveIDs, id)
		if i >= len(liveIDs) || liveIDs[i] != id {
			continue // defensive: a dirty id must be live
		}
		cc := &cellChange{id: id, poly: canon[i], nb: canon[i].Bounds()}
		if ob, ok := sw.bounds[id]; ok {
			cc.old, cc.hasOld = ob, true
		}
		changes = append(changes, cc)
	}
	for _, id := range removed {
		if ob, ok := sw.bounds[id]; ok {
			changes = append(changes, &cellChange{id: id, old: ob, hasOld: true})
		}
	}
	return changes
}

// pendingIncremental computes the touched-shard work list from the batch's
// churn footprints: a shard no footprint reaches is provably unchanged and
// is not even re-clipped; a reached shard re-clips only the changed cells
// (patchClips), and drops out if every piece compares bit-equal.
func (sw *Swapper) pendingIncremental(changes []*cellChange) []pendingShard {
	var pending []pendingShard
	var touched []*cellChange
	for ch := range sw.cur {
		rect := sw.rects[ch]
		touched = touched[:0]
		for _, cc := range changes {
			if cc.touches(rect) {
				touched = append(touched, cc)
			}
		}
		if len(touched) == 0 {
			continue
		}
		clips, dirty, removed, changed := patchClips(sw.cur[ch].Shard.clips, touched, rect)
		if !changed {
			continue
		}
		pending = append(pending, pendingShard{ch: ch, clips: clips, dirty: dirty, removed: removed})
	}
	return pending
}

// pendingReconcile is the recovery work list after a failed Apply: rescan
// every shard's clips from the canonical cells and rebuild the ones that
// drifted from what is published, resetting every compiler first (a failed
// batch may have advanced compiler state past the published generation).
func (sw *Swapper) pendingReconcile(liveIDs []int, canon []geom.Polygon) []pendingShard {
	var pending []pendingShard
	for ch := range sw.cur {
		sw.comps[ch].reset()
		clips := clipCells(liveIDs, canon, sw.rects[ch])
		if equalClips(clips, sw.cur[ch].Shard.clips) {
			continue
		}
		pending = append(pending, pendingShard{ch: ch, clips: clips, full: true})
	}
	return pending
}

// Apply runs one batch of site operations through the global maintainer
// and rebuilds and republishes exactly the shards whose clipped content
// changed. Detection is incremental: the batch's dirty cells (old bounds
// union new bounds) prefilter the shards the batch can reach, and within a
// reached shard only the changed cells are re-clipped and compared — exact
// clip equality at per-cell granularity, sound because the maintainer
// guarantees untouched cells keep their exact bytes and clipping is
// deterministic. A changed shard is recompiled incrementally by its
// retained compiler (dirty D-tree subtrees rebuilt, the rest spliced;
// full-rebuild fallback), byte-identical to a from-scratch build. It
// returns the per-channel generation now on the air (unchanged shards keep
// their number) and the batch-position -> site-id mapping, with
// stream.Swapper's shortened-batch semantics: ops already applied stay
// applied and are published.
func (sw *Swapper) Apply(ops []stream.SiteOp) (gens []uint32, ids []int, err error) {
	start := time.Now()
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.maint.BeginBatch()
	ids = make([]int, 0, len(ops))
	var opErr error
	for _, op := range ops {
		var id int
		switch op.Kind {
		case stream.OpAdd:
			id, opErr = sw.maint.Add(op.P)
		case stream.OpRemove:
			id, opErr = op.ID, sw.maint.Remove(op.ID)
		case stream.OpMove:
			id, opErr = sw.maint.Move(op.ID, op.P)
		default:
			opErr = fmt.Errorf("fabric: unknown site op kind %d", op.Kind)
		}
		if opErr != nil {
			break
		}
		ids = append(ids, id)
	}
	gens = make([]uint32, len(sw.cur))
	for ch, g := range sw.cur {
		gens[ch] = g.Gen
	}
	if len(ids) == 0 && opErr != nil && !sw.stale {
		return gens, nil, opErr
	}
	dirty, removed := sw.maint.BatchDelta()
	if len(dirty) == 0 && len(removed) == 0 && !sw.stale {
		// Byte-level no-op (e.g. a move back to the same spot): every
		// shard's program is already exact.
		return gens, ids, opErr
	}
	liveIDs, livePolys := sw.maint.LiveCells()
	reconcile := sw.stale
	// Advance the canonical global tiling; shards clip canonical polygons,
	// and the canonical dirty set (welding can shrink or grow the raw one)
	// is what decides which cells actually changed.
	var canon []geom.Polygon
	var canonDirty []int
	if !reconcile {
		gsub, cd, perr := sw.gpatch.Patch(liveIDs, livePolys, dirty, removed)
		if perr != nil {
			reconcile = true
		} else {
			canon, canonDirty = regionPolys(gsub), cd
		}
	}
	if reconcile {
		// Recovery: re-bootstrap the canonical tiling from scratch — always
		// sound, and canonical identity keeps unchanged shards' clips exact.
		sw.gpatch = region.NewPatcher(sw.maint.Area())
		gsub, _, perr := sw.gpatch.Patch(liveIDs, livePolys, liveIDs, nil)
		if perr != nil {
			sw.stale = true
			return gens, ids, perr
		}
		canon = regionPolys(gsub)
	}
	var pending []pendingShard
	if reconcile {
		pending = sw.pendingReconcile(liveIDs, canon)
	} else {
		pending = sw.pendingIncremental(sw.collectChanges(canonDirty, removed, liveIDs, canon))
	}
	// Until every rebuild and publish lands, the published fabric may
	// trail the maintainer; any early return leaves the flag set for the
	// next Apply to reconcile.
	sw.stale = true
	// Rebuild the changed shards concurrently; compilers are per-shard, so
	// each goroutine owns its state.
	type rebuilt struct {
		ch      int
		shard   *Shard
		cut     shardCut
		buildNS int64
		err     error
	}
	results := make([]rebuilt, len(pending))
	var wg sync.WaitGroup
	for i, ps := range pending {
		wg.Add(1)
		go func(i int, ps pendingShard) {
			defer wg.Done()
			buildStart := time.Now()
			var sh *Shard
			var cut shardCut
			var err error
			if ps.full {
				sh, err = sw.comps[ps.ch].full(ps.clips)
			} else {
				sh, cut, err = sw.comps[ps.ch].compile(ps.clips, ps.dirty, ps.removed)
			}
			results[i] = rebuilt{ch: ps.ch, shard: sh, cut: cut, buildNS: time.Since(buildStart).Nanoseconds(), err: err}
		}(i, ps)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return gens, ids, r.err
		}
	}
	for _, r := range results {
		next := sw.cur[r.ch].Gen + 1
		g := &ShardGeneration{Gen: next, Shard: r.shard}
		// Record before publishing: a client may pin the new generation and
		// look up its ground truth before Swap returns.
		prev := sw.cur[r.ch]
		sw.gens[r.ch][next] = g
		sw.cur[r.ch] = g
		if srv := sw.srvs[r.ch]; srv != nil {
			if _, err := srv.Swap(r.shard.Prog); err != nil {
				delete(sw.gens[r.ch], next)
				sw.cur[r.ch] = prev
				return gens, ids, err
			}
			m := srv.Metrics()
			m.SwapLatencyNS.Observe(time.Since(start).Nanoseconds())
			m.CutBuildNS.Observe(r.buildNS)
			m.CutDirtyPermille.Set(r.cut.dirtyPermille())
		}
		gens[r.ch] = next
	}
	// Everything published; fold the batch into the bounds cache and clear
	// the reconcile flag. A reconcile pass rebuilds the cache outright —
	// the failed batches' deltas were never applied to it.
	if reconcile {
		sw.bounds = make(map[int]geom.Rect, len(liveIDs))
		for i, id := range liveIDs {
			sw.bounds[id] = canon[i].Bounds()
		}
	} else {
		for _, id := range removed {
			delete(sw.bounds, id)
		}
		for _, id := range canonDirty {
			i := sort.SearchInts(liveIDs, id)
			if i < len(liveIDs) && liveIDs[i] == id {
				sw.bounds[id] = canon[i].Bounds()
			}
		}
	}
	sw.stale = false
	return gens, ids, opErr
}
