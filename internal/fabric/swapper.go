package fabric

import (
	"fmt"
	"sync"
	"time"

	"airindex/internal/geom"
	"airindex/internal/stream"
	"airindex/internal/voronoi"
)

// ShardGeneration is one published program of one shard together with the
// ground truth it indexes, kept for post-hoc answer verification exactly
// like stream.Generation.
type ShardGeneration struct {
	Gen   uint32
	Shard *Shard
}

// Swapper drives live reconfiguration of a sharded fabric with per-shard
// generation cuts: one global voronoi.Maintainer owns the site population,
// and an Apply batch rebuilds and republishes only the shards whose
// clipped content actually changed — churn confined to one shard's
// interior leaves every other channel's broadcast untouched, generation
// number and all. The partition (rects and directory) is fixed for the
// swapper's lifetime, so client routing is generation-invariant.
type Swapper struct {
	capacity int
	opts     Options

	mu    sync.Mutex
	maint *voronoi.Maintainer
	dir   *Directory
	rects []geom.Rect
	cur   []*ShardGeneration
	gens  []map[uint32]*ShardGeneration
	srvs  []*stream.Server
}

// NewSwapper builds the initial fabric (every shard at generation 1) for
// the given sites.
func NewSwapper(area geom.Rect, sites []geom.Point, S, capacity int, opts Options) (*Swapper, error) {
	maint, err := voronoi.NewMaintainer(area, sites)
	if err != nil {
		return nil, err
	}
	dir, rects, _, err := Partition(area, sites, S)
	if err != nil {
		return nil, err
	}
	sub, ids, err := maint.Snapshot()
	if err != nil {
		return nil, err
	}
	f, err := FromSubdivision(sub, ids, dir, rects, capacity, opts)
	if err != nil {
		return nil, err
	}
	sw := &Swapper{
		capacity: capacity,
		opts:     opts,
		maint:    maint,
		dir:      dir,
		rects:    rects,
		cur:      make([]*ShardGeneration, S),
		gens:     make([]map[uint32]*ShardGeneration, S),
		srvs:     make([]*stream.Server, S),
	}
	for ch, sh := range f.Shards {
		g := &ShardGeneration{Gen: 1, Shard: sh}
		sw.gens[ch] = map[uint32]*ShardGeneration{1: g}
		sw.cur[ch] = g
	}
	return sw, nil
}

// Shards returns the channel count.
func (sw *Swapper) Shards() int { return len(sw.cur) }

// Directory returns the fixed routing directory.
func (sw *Swapper) Directory() *Directory { return sw.dir }

// DirPackets returns the directory prefix length in packets.
func (sw *Swapper) DirPackets() int { return sw.dir.PacketCount(sw.capacity) }

// Programs returns the current per-channel programs (for stream.NewServer).
func (sw *Swapper) Programs() []*stream.Program {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]*stream.Program, len(sw.cur))
	for ch, g := range sw.cur {
		out[ch] = g.Shard.Prog
	}
	return out
}

// Bind attaches channel ch's server. The server must have been built from
// this swapper's program for ch so generation numbering lines up (both
// start at 1).
func (sw *Swapper) Bind(ch int, srv *stream.Server) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.srvs[ch] = srv
}

// Current returns channel ch's latest built generation.
func (sw *Swapper) Current(ch int) *ShardGeneration {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cur[ch]
}

// Generation returns channel ch's published generation gen, or nil.
func (sw *Swapper) Generation(ch int, gen uint32) *ShardGeneration {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.gens[ch][gen]
}

// Len returns the current number of live sites.
func (sw *Swapper) Len() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.maint.Len()
}

// LiveSiteIDs returns the ids of the live sites.
func (sw *Swapper) LiveSiteIDs() []int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ids, _ := sw.maint.LiveSites()
	return ids
}

// Apply runs one batch of site operations through the global maintainer,
// re-clips every shard, and rebuilds and republishes exactly the shards
// whose clipped content changed — comparing the (global id, exact
// vertices) sequences, which the maintainer's bit-identity guarantee makes
// a sound no-op detector. It returns the per-channel generation now on the
// air (unchanged shards keep their number) and the batch-position ->
// site-id mapping, with stream.Swapper's shortened-batch semantics: ops
// already applied stay applied and are published.
func (sw *Swapper) Apply(ops []stream.SiteOp) (gens []uint32, ids []int, err error) {
	start := time.Now()
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ids = make([]int, 0, len(ops))
	var opErr error
	for _, op := range ops {
		var id int
		switch op.Kind {
		case stream.OpAdd:
			id, opErr = sw.maint.Add(op.P)
		case stream.OpRemove:
			id, opErr = op.ID, sw.maint.Remove(op.ID)
		case stream.OpMove:
			id, opErr = sw.maint.Move(op.ID, op.P)
		default:
			opErr = fmt.Errorf("fabric: unknown site op kind %d", op.Kind)
		}
		if opErr != nil {
			break
		}
		ids = append(ids, id)
	}
	gens = make([]uint32, len(sw.cur))
	for ch, g := range sw.cur {
		gens[ch] = g.Gen
	}
	if len(ids) == 0 && opErr != nil {
		return gens, nil, opErr
	}
	sub, globalIDs, err := sw.maint.Snapshot()
	if err != nil {
		return gens, ids, err
	}
	// Rebuild only the shards whose clipped content changed, concurrently.
	type rebuilt struct {
		ch    int
		shard *Shard
		err   error
	}
	type pendingShard struct {
		ch    int
		clips []clippedRegion
	}
	var pending []pendingShard
	for ch := range sw.cur {
		clips := clipShard(sub, globalIDs, sw.rects[ch])
		if equalClips(clips, sw.cur[ch].Shard.clips) {
			continue
		}
		pending = append(pending, pendingShard{ch: ch, clips: clips})
	}
	results := make([]rebuilt, len(pending))
	var wg sync.WaitGroup
	for i, ps := range pending {
		wg.Add(1)
		go func(i int, ps pendingShard) {
			defer wg.Done()
			sh, err := compileShard(sw.dir, ps.ch, sw.rects[ps.ch], ps.clips, sw.capacity, sw.opts)
			results[i] = rebuilt{ch: ps.ch, shard: sh, err: err}
		}(i, ps)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return gens, ids, r.err
		}
	}
	for _, r := range results {
		next := sw.cur[r.ch].Gen + 1
		g := &ShardGeneration{Gen: next, Shard: r.shard}
		// Record before publishing: a client may pin the new generation and
		// look up its ground truth before Swap returns.
		prev := sw.cur[r.ch]
		sw.gens[r.ch][next] = g
		sw.cur[r.ch] = g
		if srv := sw.srvs[r.ch]; srv != nil {
			if _, err := srv.Swap(r.shard.Prog); err != nil {
				delete(sw.gens[r.ch], next)
				sw.cur[r.ch] = prev
				return gens, ids, err
			}
			srv.Metrics().SwapLatencyNS.Observe(time.Since(start).Nanoseconds())
		}
		gens[r.ch] = next
	}
	return gens, ids, opErr
}
