package fabric

import (
	"fmt"
	"sort"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/stream"
	"airindex/internal/wire"
)

// Incremental shard cuts. The naive reconfiguration loop re-snapshots the
// whole global diagram and re-clips every shard per Apply batch, then
// recompiles each touched shard from scratch. The incremental path keeps
// three pieces of cross-generation state and touches only what the batch's
// dirty cells reach:
//
//	maintainer batch delta -> per-cell dirty bounding boxes (old cell union
//	new cell) prefilter the shards a batch can possibly touch -> patchClips
//	re-clips only the changed cells against a touched shard's rectangle and
//	splices the rest of the previous clip sequence -> each shard's retained
//	region.Patcher + core.Incremental rebuild only the dirty subtrees and
//	patch the flat arena, exactly like the single-channel stream pipeline.
//
// Every product is pinned byte-identical to a from-scratch fabric build of
// the same live set, and a shard none of the dirty boxes reach skips the
// cut entirely — generation number, clips, program, and all.

// shardCut reports how one shard's generation was produced.
type shardCut struct {
	Incremental bool // false: full shard rebuild (bootstrap, fallback, or large batch)
	DirtyKeys   int  // canonical dirty regions handed to the shard's index rebuild
	Spliced     int  // D-tree nodes copied from the shard's previous generation
	Total       int  // D-tree nodes in the shard's new generation
}

// dirtyPermille returns the rebuilt-node fraction in permille (1000 for a
// full rebuild), mirroring the single-channel cut metric.
func (sc shardCut) dirtyPermille() int64 {
	if !sc.Incremental || sc.Total == 0 {
		return 1000
	}
	return int64((sc.Total - sc.Spliced) * 1000 / sc.Total)
}

// shardFullFraction is the dirty-region fraction above which a shard cut
// falls back to a full rebuild, matching the stream compiler's threshold.
const shardFullFraction = 0.25

// shardCompiler carries one channel's compile state from generation to
// generation: the shard-local welded tiling, the retained D-tree builder,
// and the previous Shard (for arena patching and clip diffing). Not safe
// for concurrent use; the Swapper runs at most one compile per channel at
// a time.
type shardCompiler struct {
	dir      *Directory
	ch       int
	rect     geom.Rect
	capacity int
	opts     Options

	patch *region.Patcher
	inc   *core.Incremental
	prev  *Shard
}

func newShardCompiler(dir *Directory, ch int, rect geom.Rect, capacity int, opts Options) *shardCompiler {
	return &shardCompiler{dir: dir, ch: ch, rect: rect, capacity: capacity, opts: opts}
}

// reset drops all retained generation state; the next compile bootstraps.
func (c *shardCompiler) reset() { c.patch, c.inc, c.prev = nil, nil, nil }

func (c *shardCompiler) buildOpts() []core.BuildOption {
	if c.opts.BuildWorkers > 0 {
		return []core.BuildOption{core.WithBuildWorkers(c.opts.BuildWorkers)}
	}
	return nil
}

// finish pages, flattens (patching against the previous generation's arena
// when one is retained), encodes, and assembles a built shard tree into a
// publishable Shard, then retains it as the next compile's baseline.
func (c *shardCompiler) finish(tree *core.Tree, sub *region.Subdivision, clips []clippedRegion) (*Shard, error) {
	ids := make([]int, len(clips))
	for i, cl := range clips {
		ids[i] = cl.id
	}
	params := wire.DTreeParams(c.capacity)
	paged, err := tree.Page(params)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d paging: %w", c.ch, err)
	}
	var prevFlat *core.FlatPaged
	if c.prev != nil {
		prevFlat = c.prev.Flat
	}
	flat := paged.FlattenPatched(prevFlat)
	adjPkts, err := shardAdjacencyPackets(flat, sub, c.rect, ids, c.capacity, c.opts)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d adjacency: %w", c.ch, err)
	}
	treePkts, err := flat.EncodePackets()
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d encoding: %w", c.ch, err)
	}
	dirPkts, err := c.dir.EncodePackets(c.capacity, c.ch)
	if err != nil {
		return nil, err
	}
	indexPkts := make([][]byte, 0, len(dirPkts)+len(adjPkts)+len(treePkts))
	indexPkts = append(indexPkts, dirPkts...)
	indexPkts = append(indexPkts, adjPkts...)
	indexPkts = append(indexPkts, treePkts...)
	bucketPackets := params.DataBucketPackets()
	if bucketPackets > stream.MaxBucketPackets {
		return nil, fmt.Errorf("fabric: capacity %d needs %d packets per bucket, wire limit %d", c.capacity, bucketPackets, stream.MaxBucketPackets)
	}
	m := c.opts.M
	if m <= 0 {
		m = broadcast.OptimalM(len(indexPkts), sub.N()*bucketPackets)
	}
	sched, err := broadcast.NewSchedule(len(indexPkts), sub.N(), bucketPackets, m)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d schedule: %w", c.ch, err)
	}
	prog := &stream.Program{
		Capacity:     c.capacity,
		IndexPackets: indexPkts,
		Sched:        sched,
		Data:         DataStamp(c.capacity, ids),
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	sh := &Shard{
		Channel: c.ch,
		Rect:    c.rect,
		Sub:     sub,
		IDs:     ids,
		Tree:    tree,
		Paged:   paged,
		Flat:    flat,
		Prog:    prog,
		clips:   clips,
	}
	c.prev = sh
	return sh, nil
}

// full compiles the shard from scratch through a fresh Patcher bootstrap
// (coordinate-identical to compileShard's region.New, and leaving the
// compiler able to patch forward) and retains the generation state.
func (c *shardCompiler) full(clips []clippedRegion) (*Shard, error) {
	if len(clips) == 0 {
		c.reset()
		return nil, fmt.Errorf("fabric: shard %d covers no regions", c.ch)
	}
	keys := make([]int, len(clips))
	polys := make([]geom.Polygon, len(clips))
	for i, cl := range clips {
		keys[i] = cl.id
		polys[i] = cl.poly
	}
	c.reset()
	c.patch = region.NewPatcher(c.rect)
	sub, _, err := c.patch.Patch(keys, polys, keys, nil)
	if err != nil {
		c.reset()
		return nil, fmt.Errorf("fabric: shard %d subdivision: %w", c.ch, err)
	}
	if err := sub.Validate(); err != nil {
		c.reset()
		return nil, fmt.Errorf("fabric: shard %d subdivision invalid: %w", c.ch, err)
	}
	c.inc = core.NewIncremental(c.buildOpts()...)
	tree, err := c.inc.Full(sub)
	if err != nil {
		c.reset()
		return nil, fmt.Errorf("fabric: shard %d tree: %w", c.ch, err)
	}
	sh, err := c.finish(tree, sub, clips)
	if err != nil {
		c.reset()
		return nil, err
	}
	return sh, nil
}

// compile produces the shard's next generation: incrementally when retained
// state exists and the clip delta is small, from scratch otherwise. Any
// incremental-path error falls back to a full rebuild (byte-identical
// either way).
func (c *shardCompiler) compile(clips []clippedRegion, dirty, removed []int) (*Shard, shardCut, error) {
	if c.patch == nil || c.inc == nil || c.prev == nil ||
		float64(len(dirty)+len(removed)) > shardFullFraction*float64(len(clips)) {
		sh, err := c.full(clips)
		return sh, shardCut{DirtyKeys: len(dirty)}, err
	}
	sh, cut, err := c.incremental(clips, dirty, removed)
	if err != nil {
		sh, ferr := c.full(clips)
		return sh, shardCut{DirtyKeys: len(dirty)}, ferr
	}
	return sh, cut, nil
}

func (c *shardCompiler) incremental(clips []clippedRegion, dirty, removed []int) (*Shard, shardCut, error) {
	keys := make([]int, len(clips))
	polys := make([]geom.Polygon, len(clips))
	for i, cl := range clips {
		keys[i] = cl.id
		polys[i] = cl.poly
	}
	sub, canonDirty, err := c.patch.Patch(keys, polys, dirty, removed)
	if err != nil {
		return nil, shardCut{}, err
	}
	tree, delta, err := c.inc.Rebuild(sub, canonDirty)
	if err != nil {
		return nil, shardCut{}, err
	}
	sh, err := c.finish(tree, sub, clips)
	if err != nil {
		return nil, shardCut{}, err
	}
	cut := shardCut{Incremental: true, DirtyKeys: len(canonDirty), Spliced: delta.Spliced, Total: delta.Total}
	return sh, cut, nil
}

// regionPolys extracts a subdivision's canonical polygons in region order.
func regionPolys(sub *region.Subdivision) []geom.Polygon {
	out := make([]geom.Polygon, len(sub.Regions))
	for i, r := range sub.Regions {
		out[i] = r.Poly
	}
	return out
}

// clipCells is clipShard over the canonical live cells in id order,
// skipping the full-subdivision snapshot the naive loop paid for.
func clipCells(ids []int, polys []geom.Polygon, rect geom.Rect) []clippedRegion {
	var out []clippedRegion
	for i, poly := range polys {
		if !poly.Bounds().Intersects(rect) {
			continue
		}
		piece := geom.ClipRect(poly, rect)
		if piece == nil || piece.Area() <= sliverArea {
			continue
		}
		out = append(out, clippedRegion{id: ids[i], poly: piece})
	}
	return out
}

// cellChange is one globally changed cell of an Apply batch: its id, where
// it used to be (the previous generation's cell bounds), and — unless it
// was removed — its new polygon and bounds. The union of old and new
// bounds is the cell's churn footprint: a shard rectangle disjoint from
// every footprint in the batch provably keeps its exact clip sequence.
type cellChange struct {
	id     int
	old    geom.Rect
	hasOld bool
	poly   geom.Polygon // nil for a removed cell
	nb     geom.Rect    // new bounds, valid when poly != nil
}

// touches reports whether the change's footprint reaches rect.
func (cc *cellChange) touches(rect geom.Rect) bool {
	return (cc.hasOld && cc.old.Intersects(rect)) || (cc.poly != nil && cc.nb.Intersects(rect))
}

func pieceEqual(a, b geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// patchClips advances one shard's clip sequence by re-clipping only the
// batch's changed cells and splicing the rest of prev — exact clip-equality
// no-op detection at per-cell granularity, so a batch that grazes a shard
// without changing any piece inside it is detected as a no-op without
// rescanning the shard's N cells. Returns the new clip sequence plus the
// shard-local dirty and removed key sets for the shard's Patcher; changed
// is false (and the other returns nil) when every touched piece compares
// bit-equal to its predecessor.
func patchClips(prev []clippedRegion, changes []*cellChange, rect geom.Rect) (clips []clippedRegion, dirty, removed []int, changed bool) {
	type repl struct {
		id    int
		piece geom.Polygon // nil: the cell has no piece in this shard now
	}
	repls := make([]repl, 0, len(changes))
	for _, cc := range changes {
		var piece geom.Polygon
		if cc.poly != nil && cc.nb.Intersects(rect) {
			if p := geom.ClipRect(cc.poly, rect); p != nil && p.Area() > sliverArea {
				piece = p
			}
		}
		repls = append(repls, repl{id: cc.id, piece: piece})
	}
	// changes concatenates the batch's dirty and removed id lists (each
	// ascending, mutually disjoint); restore one ascending order for the
	// merge.
	sort.Slice(repls, func(a, b int) bool { return repls[a].id < repls[b].id })
	clips = make([]clippedRegion, 0, len(prev)+len(repls))
	i, j := 0, 0
	for i < len(prev) || j < len(repls) {
		switch {
		case j >= len(repls) || (i < len(prev) && prev[i].id < repls[j].id):
			clips = append(clips, prev[i])
			i++
		case i >= len(prev) || repls[j].id < prev[i].id:
			if repls[j].piece != nil { // cell newly entered this shard
				clips = append(clips, clippedRegion{id: repls[j].id, poly: repls[j].piece})
				dirty = append(dirty, repls[j].id)
			}
			j++
		default: // same id: replace, drop, or keep
			if repls[j].piece == nil {
				removed = append(removed, prev[i].id)
			} else {
				clips = append(clips, clippedRegion{id: prev[i].id, poly: repls[j].piece})
				if !pieceEqual(prev[i].poly, repls[j].piece) {
					dirty = append(dirty, prev[i].id)
				}
			}
			i++
			j++
		}
	}
	if len(dirty) == 0 && len(removed) == 0 {
		return nil, nil, nil, false
	}
	return clips, dirty, removed, true
}
