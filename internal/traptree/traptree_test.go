package traptree

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

func TestRunningExample(t *testing.T) {
	sub := testutil.RunningExample(t)
	m, err := Build(sub, rand.New(rand.NewSource(71)))
	if err != nil {
		t.Fatal(err)
	}
	// 5 interior segments (v2-v3, v3-v1, v3-v4, v4-v6, v4-v5), like the
	// paper's Figure 4.
	if m.SegmentCount() != 5 {
		t.Fatalf("segments = %d, want 5", m.SegmentCount())
	}
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		got := m.Locate(p)
		if got < 0 || !sub.Regions[got].Poly.Contains(p) {
			t.Fatalf("query %v: region %d (want %d)", p, got, sub.Locate(p))
		}
	}
}

func TestCorrectnessAcrossSizesAndOrders(t *testing.T) {
	for _, n := range []int{5, 30, 150, 400} {
		sub, _ := testutil.RandomVoronoi(t, n, int64(n)+19)
		for _, order := range []int64{1, 2, 3} {
			m, err := Build(sub, rand.New(rand.NewSource(order)))
			if err != nil {
				t.Fatalf("n=%d order=%d: %v", n, order, err)
			}
			rng := rand.New(rand.NewSource(73))
			for i := 0; i < 1200; i++ {
				p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				got := m.Locate(p)
				if got < 0 || !sub.Regions[got].Poly.Contains(p) {
					t.Fatalf("n=%d order=%d query %v: region %d", n, order, p, got)
				}
			}
		}
	}
}

func TestTrapezoidCountLinear(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 300, 74)
	m, err := Build(sub, rand.New(rand.NewSource(75)))
	if err != nil {
		t.Fatal(err)
	}
	n := m.SegmentCount()
	// The trapezoidal map of n non-crossing segments has at most 3n+1
	// trapezoids.
	if got := m.TrapezoidCount(); got > 3*n+1 {
		t.Errorf("%d trapezoids for %d segments (bound 3n+1 = %d)", got, n, 3*n+1)
	}
	// DAG nodes are expected O(n): allow a generous constant factor.
	if len(m.Nodes) > 8*n {
		t.Errorf("%d DAG nodes for %d segments", len(m.Nodes), n)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 80, 76)
	m1, err := Build(sub, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(sub, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Nodes) != len(m2.Nodes) || m1.TrapezoidCount() != m2.TrapezoidCount() {
		t.Errorf("same seed produced different structures: %d/%d nodes, %d/%d traps",
			len(m1.Nodes), len(m2.Nodes), m1.TrapezoidCount(), m2.TrapezoidCount())
	}
}

func TestPagedLocateMatchesBinary(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 120, 77)
	m, err := Build(sub, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{64, 256, 2048} {
		paged, err := m.Page(wire.DecompositionParams(capacity))
		if err != nil {
			t.Fatalf("page %d: %v", capacity, err)
		}
		rng := rand.New(rand.NewSource(79))
		for i := 0; i < 2000; i++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			got, trace := paged.Locate(p)
			if want := m.Locate(p); got != want {
				t.Fatalf("capacity %d at %v: %d != %d", capacity, p, got, want)
			}
			if len(trace) == 0 {
				t.Fatal("empty trace")
			}
		}
	}
}

func TestNodeSizeModel(t *testing.T) {
	params := wire.DecompositionParams(256)
	x := &dnode{kind: xNode}
	if got := NodeSize(x, params); got != 2+4+8 {
		t.Errorf("x-node size = %d", got)
	}
	y := &dnode{kind: yNode}
	if got := NodeSize(y, params); got != 2+16+8 {
		t.Errorf("y-node size = %d", got)
	}
	leaf := &dnode{kind: leafNode}
	if got := NodeSize(leaf, params); got != 0 {
		t.Errorf("leaf size = %d (leaves are embedded pointers)", got)
	}
}

func TestVerticalInteriorSegmentRejected(t *testing.T) {
	// A subdivision with an exactly vertical interior edge.
	polys := []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 100), geom.Pt(0, 100)},
		{geom.Pt(50, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(50, 100)},
	}
	sub, err := regionNew(polys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(sub, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("vertical interior segment should be rejected")
	}
}

func TestQueryDistributionOverRegions(t *testing.T) {
	// All regions must be reachable: locate each region's site.
	sub, sites := testutil.RandomVoronoi(t, 100, 80)
	m, err := Build(sub, rand.New(rand.NewSource(81)))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sites {
		if got := m.Locate(s); got != i {
			t.Errorf("site %d located in region %d", i, got)
		}
	}
}
