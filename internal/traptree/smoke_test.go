package traptree

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

func TestSmokeTrapMap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	sites := make([]geom.Point, 100)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		t.Fatalf("voronoi: %v", err)
	}
	m, err := Build(sub, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	t.Logf("segments=%d trapezoids=%d dagNodes=%d", m.SegmentCount(), m.TrapezoidCount(), len(m.Nodes))
	paged, err := m.Page(wire.DecompositionParams(256))
	if err != nil {
		t.Fatalf("page: %v", err)
	}
	bad := 0
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := m.Locate(p)
		want := sub.Locate(p)
		if got != want && (got < 0 || !sub.Regions[got].Poly.Contains(p)) {
			bad++
			if bad <= 5 {
				t.Errorf("query %v: got %d want %d", p, got, want)
			}
		}
		g2, trace := paged.Locate(p)
		if g2 != got {
			t.Fatalf("paged mismatch at %v: %d vs %d", p, g2, got)
		}
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
	}
	if bad > 0 {
		t.Fatalf("%d bad of 5000", bad)
	}
}
