package traptree

import (
	"fmt"

	"airindex/internal/geom"
	"airindex/internal/wire"
)

// Paged is a trap-tree allocated into packets using the paper's top-down
// paging (Section 5 pages the trap-tree with the same approach as the
// D-tree).
type Paged struct {
	Map    *Map
	Params wire.Params
	Layout *wire.Layout
}

// NodeSize returns the wire size of a DAG node under Table 2: an x-node
// stores one coordinate, a y-node one segment (two points); both carry a
// bid and two typed pointers. Trapezoid leaves cost nothing — they are
// data pointers embedded in their parents.
func NodeSize(n *dnode, p wire.Params) int {
	switch n.kind {
	case xNode:
		return p.BidSize + p.CoordSize + 2*p.PointerSize
	case yNode:
		return p.BidSize + 2*p.PointSize() + 2*p.PointerSize
	default:
		return 0
	}
}

// Page allocates the DAG nodes into packets top-down.
func (m *Map) Page(params wire.Params) (*Paged, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(m.Nodes) == 0 {
		return &Paged{Map: m, Params: params, Layout: wire.EmptyLayout(params.PacketCapacity)}, nil
	}
	specs := make([]wire.NodeSpec, 0, len(m.Nodes))
	firstParent := make(map[int]int, len(m.Nodes))
	firstParent[m.Nodes[0].id] = -1
	for _, n := range m.Nodes { // breadth-first: parents precede children
		var children []int
		for _, c := range []*dnode{n.left, n.right} {
			if c.kind == leafNode {
				continue
			}
			children = append(children, c.id)
			if _, ok := firstParent[c.id]; !ok {
				firstParent[c.id] = n.id
			}
		}
		leaf := n.left.kind == leafNode && n.right.kind == leafNode
		specs = append(specs, wire.NodeSpec{
			ID: n.id, Size: NodeSize(n, params), Parent: firstParent[n.id], Children: children, Leaf: leaf,
		})
	}
	layout, err := wire.TopDown(specs, params.PacketCapacity)
	if err != nil {
		return nil, err
	}
	if err := layout.Validate(specs); err != nil {
		return nil, fmt.Errorf("traptree: invalid layout: %w", err)
	}
	return &Paged{Map: m, Params: params, Layout: layout}, nil
}

// IndexPackets returns the broadcast size of the index in packets.
func (pg *Paged) IndexPackets() int { return pg.Layout.PacketCount }

// Locate answers a point query over the paged trap-tree and returns the
// region id with the packet offsets downloaded in access order.
func (pg *Paged) Locate(p geom.Point) (int, []int) {
	return pg.LocateInto(p, nil)
}

// LocateInto is Locate appending the downloaded packet offsets into trace
// (reset to length zero first), so Monte Carlo drivers can reuse one
// buffer across millions of queries without per-query allocation. The
// returned slice aliases trace's backing array when capacity suffices.
func (pg *Paged) LocateInto(p geom.Point, trace []int) (int, []int) {
	trace = trace[:0]
	n := pg.Map.root
	for n.kind != leafNode {
		for _, pk := range pg.Layout.PacketsOf(n.id) {
			trace = wire.AppendTraceOnce(trace, int(pk))
		}
		switch n.kind {
		case xNode:
			if lexLess(p, n.pt) {
				n = n.left
			} else {
				n = n.right
			}
		case yNode:
			switch n.seg.orient(p) {
			case 1:
				n = n.left
			case -1:
				n = n.right
			default:
				// Same tie rule as Map.Locate (slope 0 query).
				if n.seg.slope() < 0 {
					n = n.left
				} else {
					n = n.right
				}
			}
		}
	}
	return n.trap.region, trace
}
