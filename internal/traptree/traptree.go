// Package traptree implements the trapezoidal-map point-location structure
// (de Berg et al., Computational Geometry ch. 6) built by randomized
// incremental insertion — the paper's second object-decomposition baseline,
// which it calls the trap-tree. The search structure is a DAG of x-nodes
// (vertex abscissae) and y-nodes (segments) whose leaves are trapezoids of
// the refined subdivision, each mapped to the data region containing it.
//
// Degeneracies (shared endpoints, several endpoints on one vertical line —
// ubiquitous on the service-area border) are handled with the standard
// symbolic shear: points are ordered lexicographically by (x, y), and
// on-segment ties during location are broken by comparing slopes.
// Exactly-vertical interior segments are rejected; they cannot arise from
// Voronoi scopes of sites in general position.
package traptree

import (
	"fmt"
	"math/rand"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// mapSeg is an inserted segment, directed so that P is lexicographically
// smaller than Q, with the data regions above and below it.
type mapSeg struct {
	P, Q geom.Point
}

func (s *mapSeg) slope() float64 { return (s.Q.Y - s.P.Y) / (s.Q.X - s.P.X) }

// yAt returns the segment line's y at abscissa x.
func (s *mapSeg) yAt(x float64) float64 {
	t := (x - s.P.X) / (s.Q.X - s.P.X)
	return s.P.Y + t*(s.Q.Y-s.P.Y)
}

// orient returns the exact-float sign of the query point against the
// segment: +1 above, -1 below, 0 on the line through it. No epsilon is
// used: structural decisions must be deterministic and self-consistent, not
// geometrically tolerant.
func (s *mapSeg) orient(p geom.Point) int {
	v := (s.Q.X-s.P.X)*(p.Y-s.P.Y) - (s.Q.Y-s.P.Y)*(p.X-s.P.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func lexLess(a, b geom.Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// trap is one trapezoid: bounded above and below by segments, left and
// right by the vertical walls through two vertices.
type trap struct {
	top, bottom   *mapSeg
	leftp, rightp geom.Point
	leaf          *dnode
	region        int
}

func (t *trap) leafNode() *dnode {
	if t.leaf == nil {
		t.leaf = &dnode{kind: leafNode, trap: t}
	}
	return t.leaf
}

type nodeKind uint8

const (
	xNode nodeKind = iota
	yNode
	leafNode
)

// dnode is a search-DAG node. For an x-node, left holds points
// lexicographically smaller than pt; for a y-node, left is above the
// segment and right below.
type dnode struct {
	kind        nodeKind
	pt          geom.Point
	seg         *mapSeg
	left, right *dnode
	trap        *trap
	id          int // dense id over x/y nodes, assigned after construction
}

// Map is the trapezoidal map plus its search DAG.
type Map struct {
	Sub   *region.Subdivision
	root  *dnode
	traps map[*trap]bool
	// Nodes lists the x/y DAG nodes in breadth-first order (broadcast order).
	Nodes []*dnode
	segs  []*mapSeg
}

// Build constructs the trapezoidal map of the subdivision's interior edges
// in random insertion order drawn from rng.
func Build(sub *region.Subdivision, rng *rand.Rand) (*Map, error) {
	edges := sub.UniqueEdges()
	var segs []*mapSeg
	for _, e := range edges {
		if onSameBorder(e.A, e.B, sub.Area) {
			continue // border edges coincide with the bounding trapezoid
		}
		if e.A.X == e.B.X {
			return nil, fmt.Errorf("traptree: exactly vertical interior segment at x=%g; jitter the sites", e.A.X)
		}
		segs = append(segs, &mapSeg{P: e.A, Q: e.B})
	}
	rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })

	// Bounding box slightly inflated so border vertices are interior.
	pad := 0.01 * (sub.Area.W() + sub.Area.H())
	bb := geom.Rect{
		MinX: sub.Area.MinX - pad, MinY: sub.Area.MinY - pad,
		MaxX: sub.Area.MaxX + pad, MaxY: sub.Area.MaxY + pad,
	}
	top := &mapSeg{P: geom.Pt(bb.MinX, bb.MaxY), Q: geom.Pt(bb.MaxX, bb.MaxY)}
	bottom := &mapSeg{P: geom.Pt(bb.MinX, bb.MinY), Q: geom.Pt(bb.MaxX, bb.MinY)}
	first := &trap{top: top, bottom: bottom, leftp: bottom.P, rightp: top.Q, region: -1}
	m := &Map{
		Sub:   sub,
		traps: map[*trap]bool{first: true},
		root:  first.leafNode(),
		segs:  segs,
	}
	for _, s := range segs {
		if err := m.insert(s); err != nil {
			return nil, err
		}
	}
	m.assignRegions()
	m.assignIDs()
	return m, nil
}

func onSameBorder(a, b geom.Point, r geom.Rect) bool {
	return (a.X == r.MinX && b.X == r.MinX) || (a.X == r.MaxX && b.X == r.MaxX) ||
		(a.Y == r.MinY && b.Y == r.MinY) || (a.Y == r.MaxY && b.Y == r.MaxY)
}

// locate descends the DAG for a query point. slope breaks ties when the
// point lies exactly on a y-node's segment (it is then the left endpoint of
// the segment being inserted, which continues rightward with that slope).
// biasRight breaks x-node ties to the right regardless of lexicographic
// order, which is what the insertion walk needs when stepping across a wall.
func (m *Map) locate(p geom.Point, slope float64, biasRight bool) *trap {
	n := m.root
	for n.kind != leafNode {
		switch n.kind {
		case xNode:
			var goLeft bool
			if biasRight {
				goLeft = p.X < n.pt.X
			} else {
				goLeft = lexLess(p, n.pt)
			}
			if goLeft {
				n = n.left
			} else {
				n = n.right
			}
		case yNode:
			switch n.seg.orient(p) {
			case 1:
				n = n.left
			case -1:
				n = n.right
			default:
				// On the segment: the inserted segment shares an endpoint
				// with it; the steeper slope passes above.
				if slope > n.seg.slope() {
					n = n.left
				} else {
					n = n.right
				}
			}
		}
	}
	return n.trap
}

// crossedTraps returns the trapezoids intersected by s, left to right,
// using repeated point location just beyond each crossed wall.
func (m *Map) crossedTraps(s *mapSeg) ([]*trap, error) {
	d := m.locate(s.P, s.slope(), false)
	out := []*trap{d}
	guard := 0
	for lexLess(d.rightp, s.Q) {
		guard++
		if guard > len(m.traps)+8 {
			return nil, fmt.Errorf("traptree: walk for segment %v-%v did not terminate", s.P, s.Q)
		}
		r := geom.Pt(d.rightp.X, s.yAt(d.rightp.X))
		nd := m.locate(r, s.slope(), true)
		if nd == d {
			return nil, fmt.Errorf("traptree: walk stuck at wall %v for segment %v-%v", d.rightp, s.P, s.Q)
		}
		d = nd
		out = append(out, d)
	}
	return out, nil
}

// insert adds one segment, splitting the trapezoids it crosses and merging
// the upper and lower fragments that share a bounding segment.
func (m *Map) insert(s *mapSeg) error {
	ds, err := m.crossedTraps(s)
	if err != nil {
		return err
	}
	k := len(ds)

	var L, R *trap
	if lexLess(ds[0].leftp, s.P) {
		L = &trap{top: ds[0].top, bottom: ds[0].bottom, leftp: ds[0].leftp, rightp: s.P}
	}
	if lexLess(s.Q, ds[k-1].rightp) {
		R = &trap{top: ds[k-1].top, bottom: ds[k-1].bottom, leftp: s.Q, rightp: ds[k-1].rightp}
	}

	uppers := make([]*trap, k)
	lowers := make([]*trap, k)
	var curU, curL *trap
	for i, d := range ds {
		sep := s.P
		if i > 0 {
			sep = ds[i-1].rightp
		}
		if curU == nil || curU.top != d.top {
			if curU != nil {
				curU.rightp = sep
			}
			curU = &trap{top: d.top, bottom: s, leftp: sep}
		}
		uppers[i] = curU
		if curL == nil || curL.bottom != d.bottom {
			if curL != nil {
				curL.rightp = sep
			}
			curL = &trap{top: s, bottom: d.bottom, leftp: sep}
		}
		lowers[i] = curL
	}
	curU.rightp = s.Q
	curL.rightp = s.Q

	// Update the trapezoid registry.
	for _, d := range ds {
		delete(m.traps, d)
	}
	for _, t := range []*trap{L, R} {
		if t != nil {
			m.traps[t] = true
		}
	}
	for i := range ds {
		m.traps[uppers[i]] = true
		m.traps[lowers[i]] = true
	}

	// Replace each crossed trapezoid's leaf with its local subtree.
	for i, d := range ds {
		sub := &dnode{kind: yNode, seg: s, left: uppers[i].leafNode(), right: lowers[i].leafNode()}
		if i == k-1 && R != nil {
			sub = &dnode{kind: xNode, pt: s.Q, left: sub, right: R.leafNode()}
		}
		if i == 0 && L != nil {
			sub = &dnode{kind: xNode, pt: s.P, left: L.leafNode(), right: sub}
		}
		*d.leaf = *sub // in-place: every DAG parent of the old leaf sees the subtree
	}
	return nil
}

// assignRegions maps every surviving trapezoid to the data region
// containing its center (clamped into the service area; trapezoids of the
// inflated margin map to the nearest border region, which no in-area query
// ever reaches incorrectly).
func (m *Map) assignRegions() {
	a := m.Sub.Area
	eps := 1e-7 * (a.W() + a.H())
	for t := range m.traps {
		cx := (t.leftp.X + t.rightp.X) / 2
		cy := (t.top.yAt(cx) + t.bottom.yAt(cx)) / 2
		cx = clamp(cx, a.MinX+eps, a.MaxX-eps)
		cy = clamp(cy, a.MinY+eps, a.MaxY-eps)
		t.region = m.Sub.Locate(geom.Pt(cx, cy))
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// assignIDs numbers the x/y nodes breadth-first from the root.
func (m *Map) assignIDs() {
	m.Nodes = m.Nodes[:0]
	if m.root.kind == leafNode {
		return
	}
	seen := map[*dnode]bool{m.root: true}
	queue := []*dnode{m.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.id = len(m.Nodes)
		m.Nodes = append(m.Nodes, n)
		for _, c := range []*dnode{n.left, n.right} {
			if c.kind != leafNode && !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
}

// Locate returns the id of the region containing p.
func (m *Map) Locate(p geom.Point) int {
	return m.locate(p, 0, false).region
}

// TrapezoidCount returns the number of trapezoids in the refined map.
func (m *Map) TrapezoidCount() int { return len(m.traps) }

// SegmentCount returns the number of inserted (interior) segments.
func (m *Map) SegmentCount() int { return len(m.segs) }
