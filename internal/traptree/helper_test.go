package traptree

import (
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/testutil"
)

// regionNew builds a subdivision over the 100x100 test area.
func regionNew(polys []geom.Polygon) (*region.Subdivision, error) {
	return region.New(testutil.Area, polys)
}
