package channel

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// perfect is the lossless channel.
type perfect struct{}

func (perfect) Name() string { return "perfect" }
func (perfect) Next() Fault  { return Deliver }

// Perfect returns the model that delivers every frame untouched.
func Perfect() Model { return perfect{} }

// bernoulli drops each frame i.i.d. with probability loss and corrupts
// each surviving frame i.i.d. with probability corrupt.
type bernoulli struct {
	loss, corrupt float64
	rng           *rand.Rand
}

// NewBernoulli builds the i.i.d. fault model: every frame is dropped with
// probability loss, and every delivered frame is corrupted with
// probability corrupt. Probabilities are clamped to [0, 1).
func NewBernoulli(loss, corrupt float64, seed int64) Model {
	return &bernoulli{loss: clampProb(loss), corrupt: clampProb(corrupt),
		rng: rand.New(rand.NewSource(seed))}
}

func (b *bernoulli) Name() string { return "bernoulli" }

func (b *bernoulli) Next() Fault {
	if b.loss > 0 && b.rng.Float64() < b.loss {
		return Drop
	}
	if b.corrupt > 0 && b.rng.Float64() < b.corrupt {
		return Corrupt
	}
	return Deliver
}

// gilbertElliott is the classic two-state Markov burst-loss model: a Good
// state that delivers and a Bad state that drops. Burstiness comes from
// state persistence rather than per-frame independence.
type gilbertElliott struct {
	pGB, pBG float64 // transition probabilities good->bad, bad->good
	corrupt  float64
	rng      *rand.Rand
	bad      bool
}

// NewGilbertElliott builds a bursty loss model with the given stationary
// loss rate and mean burst length (in frames, >= 1). With drop probability
// 1 in Bad and 0 in Good, the stationary Bad probability equals loss when
// pBG = 1/meanBurst and pGB = loss / (meanBurst * (1 - loss)). Delivered
// frames are additionally corrupted i.i.d. with probability corrupt.
func NewGilbertElliott(loss, meanBurst, corrupt float64, seed int64) Model {
	loss = clampProb(loss)
	if meanBurst < 1 {
		meanBurst = 1
	}
	g := &gilbertElliott{
		pBG:     1 / meanBurst,
		corrupt: clampProb(corrupt),
		rng:     rand.New(rand.NewSource(seed)),
	}
	if loss > 0 {
		g.pGB = loss / (meanBurst * (1 - loss))
		if g.pGB > 1 {
			g.pGB = 1
		}
	}
	return g
}

func (g *gilbertElliott) Name() string { return "gilbert-elliott" }

func (g *gilbertElliott) Next() Fault {
	if g.bad {
		if g.rng.Float64() < g.pBG {
			g.bad = false
		}
	} else if g.pGB > 0 && g.rng.Float64() < g.pGB {
		g.bad = true
	}
	if g.bad {
		return Drop
	}
	if g.corrupt > 0 && g.rng.Float64() < g.corrupt {
		return Corrupt
	}
	return Deliver
}

// clampProb keeps a probability in [0, 1): a loss rate of 1 would make
// every recovery hopeless, which no experiment wants.
func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p >= 1:
		return 0.99
	}
	return p
}

// Spec is the user-facing description of a fault configuration — the
// broadcastd flags. Zero value = perfect channel.
type Spec struct {
	Loss    float64 // stationary frame-loss rate, [0, 1)
	Burst   float64 // mean loss-burst length in frames; > 1 selects Gilbert-Elliott
	Corrupt float64 // payload bit-corruption rate of delivered frames, [0, 1)
	Seed    int64   // master seed; per-connection sub-seeds derive from it
}

// Enabled reports whether the spec injects any fault at all.
func (sp Spec) Enabled() bool { return sp.Loss > 0 || sp.Corrupt > 0 }

// Validate rejects out-of-range knobs.
func (sp Spec) Validate() error {
	if sp.Loss < 0 || sp.Loss >= 1 {
		return fmt.Errorf("channel: loss rate %v outside [0, 1)", sp.Loss)
	}
	if sp.Corrupt < 0 || sp.Corrupt >= 1 {
		return fmt.Errorf("channel: corruption rate %v outside [0, 1)", sp.Corrupt)
	}
	if sp.Burst != 0 && sp.Burst < 1 {
		return fmt.Errorf("channel: mean burst length %v below 1", sp.Burst)
	}
	return nil
}

// Model builds the fault process the spec describes, seeded by seed.
func (sp Spec) Model(seed int64) Model {
	switch {
	case sp.Loss > 0 && sp.Burst > 1:
		return NewGilbertElliott(sp.Loss, sp.Burst, sp.Corrupt, seed)
	case sp.Enabled():
		return NewBernoulli(sp.Loss, sp.Corrupt, seed)
	default:
		return Perfect()
	}
}

// Factory returns a per-connection channel factory for a broadcast server:
// each connection gets its own independent fault process with a
// deterministic sub-seed, all reporting into the shared stats.
func (sp Spec) Factory(stats *Stats) func() *Channel {
	if stats == nil {
		stats = &Stats{}
	}
	var conns atomic.Int64
	return func() *Channel {
		i := conns.Add(1) - 1
		sub := sp.Seed + 1000003*i
		return New(sp.Model(sub), sub+1, stats)
	}
}
