package channel

import (
	"bytes"
	"math"
	"testing"
)

// drain runs a model over n frames and tallies the faults.
func drain(m Model, n int) (drops, corrupts int) {
	for i := 0; i < n; i++ {
		switch m.Next() {
		case Drop:
			drops++
		case Corrupt:
			corrupts++
		}
	}
	return
}

func TestPerfectDeliversEverything(t *testing.T) {
	d, c := drain(Perfect(), 10000)
	if d != 0 || c != 0 {
		t.Fatalf("perfect channel dropped %d, corrupted %d", d, c)
	}
}

func TestBernoulliRates(t *testing.T) {
	const n = 200000
	for _, p := range []float64{0.01, 0.05, 0.2} {
		d, _ := drain(NewBernoulli(p, 0, 7), n)
		got := float64(d) / n
		if math.Abs(got-p) > 0.25*p+0.001 {
			t.Errorf("loss %v: observed rate %v", p, got)
		}
	}
	_, c := drain(NewBernoulli(0, 0.1, 7), n)
	if got := float64(c) / n; math.Abs(got-0.1) > 0.03 {
		t.Errorf("corruption 0.1: observed rate %v", got)
	}
}

func TestGilbertElliottRateAndBurstiness(t *testing.T) {
	const n, loss, burst = 400000, 0.1, 8.0
	m := NewGilbertElliott(loss, burst, 0, 11)
	var drops, bursts, run int
	for i := 0; i < n; i++ {
		if m.Next() == Drop {
			drops++
			run++
		} else if run > 0 {
			bursts++
			run = 0
		}
	}
	if got := float64(drops) / n; math.Abs(got-loss) > 0.03 {
		t.Errorf("stationary loss rate %v, want ~%v", got, loss)
	}
	meanBurst := float64(drops) / float64(bursts)
	if meanBurst < burst/2 || meanBurst > burst*2 {
		t.Errorf("mean burst length %v, want ~%v", meanBurst, burst)
	}
	// The i.i.d. model at the same rate must produce far shorter bursts.
	bm := NewBernoulli(loss, 0, 11)
	var bdrops, bbursts, brun int
	for i := 0; i < n; i++ {
		if bm.Next() == Drop {
			bdrops++
			brun++
		} else if brun > 0 {
			bbursts++
			brun = 0
		}
	}
	iidBurst := float64(bdrops) / float64(bbursts)
	if meanBurst < 2*iidBurst {
		t.Errorf("GE mean burst %v not bursty vs iid %v", meanBurst, iidBurst)
	}
}

func TestModelDeterminism(t *testing.T) {
	build := func() []Model {
		return []Model{
			NewBernoulli(0.1, 0.05, 99),
			NewGilbertElliott(0.1, 4, 0.05, 99),
		}
	}
	a, b := build(), build()
	for i := range a {
		for f := 0; f < 5000; f++ {
			if ga, gb := a[i].Next(), b[i].Next(); ga != gb {
				t.Fatalf("%s: frame %d diverged (%v vs %v)", a[i].Name(), f, ga, gb)
			}
		}
	}
}

func TestChannelTransmitCorruptsOnePayloadBit(t *testing.T) {
	stats := &Stats{}
	ch := New(NewBernoulli(0, 0.99, 3), 4, stats)
	const hdr = 16
	for i := 0; i < 200; i++ {
		frame := bytes.Repeat([]byte{0xAA}, hdr+64)
		orig := append([]byte(nil), frame...)
		if !ch.Transmit(frame, hdr) {
			t.Fatal("corruption-only channel dropped a frame")
		}
		if !bytes.Equal(frame[:hdr], orig[:hdr]) {
			t.Fatal("header bytes were corrupted")
		}
		diff := 0
		for j := hdr; j < len(frame); j++ {
			for b := 0; b < 8; b++ {
				if (frame[j]^orig[j])&(1<<b) != 0 {
					diff++
				}
			}
		}
		if diff > 1 {
			t.Fatalf("corruption flipped %d bits, want at most 1", diff)
		}
	}
	snap := stats.Snapshot()
	if snap.Sent != 200 || snap.Dropped != 0 || snap.Corrupted == 0 {
		t.Fatalf("stats %+v", snap)
	}
	if snap.Delivered != snap.Sent-snap.Dropped {
		t.Fatalf("delivered %d inconsistent with sent %d - dropped %d", snap.Delivered, snap.Sent, snap.Dropped)
	}
}

func TestSpecModelSelection(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, "perfect"},
		{Spec{Loss: 0.1}, "bernoulli"},
		{Spec{Corrupt: 0.1}, "bernoulli"},
		{Spec{Loss: 0.1, Burst: 4}, "gilbert-elliott"},
		{Spec{Loss: 0.1, Burst: 1}, "bernoulli"},
	}
	for _, c := range cases {
		if got := c.spec.Model(1).Name(); got != c.want {
			t.Errorf("spec %+v: model %q, want %q", c.spec, got, c.want)
		}
	}
	for _, bad := range []Spec{{Loss: -0.1}, {Loss: 1}, {Corrupt: 2}, {Loss: 0.1, Burst: 0.5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
	if err := (Spec{Loss: 0.1, Burst: 4, Corrupt: 0.01}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestFactoryGivesIndependentDeterministicChannels(t *testing.T) {
	sp := Spec{Loss: 0.2, Seed: 5}
	stats := &Stats{}
	fa, fb := sp.Factory(stats), sp.Factory(&Stats{})
	a1, a2 := fa(), fa()
	b1 := fb()
	frame := make([]byte, 32)
	var s1, s2 []bool
	for i := 0; i < 2000; i++ {
		s1 = append(s1, a1.Transmit(frame, 16))
		s2 = append(s2, a2.Transmit(frame, 16))
	}
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two connections of one factory saw identical fault sequences")
	}
	// A fresh factory's first connection replays the first connection.
	for i := 0; i < 2000; i++ {
		if b1.Transmit(frame, 16) != s1[i] {
			t.Fatalf("factory not reproducible at frame %d", i)
		}
	}
	if got := stats.Snapshot().Sent; got != 4000 {
		t.Fatalf("shared stats sent %d, want 4000", got)
	}
}
