// Package channel simulates unreliable broadcast channels. The paper's
// whole setting is wireless: frames vanish (fading, collisions) and arrive
// with flipped bits (noise), and the (1, m) index replication exists
// precisely so a client that misses packets can resynchronize at the next
// index copy. This package provides deterministic, seedable fault models —
// i.i.d. Bernoulli loss, Gilbert–Elliott bursty loss, and payload
// bit-corruption — as a frame-level middleware the server transmit path
// runs every outgoing frame through, plus per-channel statistics, so
// experiments can quantify what channel quality costs in latency and
// tuning energy.
package channel

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Fault is the fate the channel assigns to one frame.
type Fault uint8

const (
	// Deliver passes the frame through untouched.
	Deliver Fault = iota
	// Drop discards the frame; its slot elapses silently on the air.
	Drop
	// Corrupt delivers the frame with payload bits flipped.
	Corrupt
)

// Model is a deterministic fault process: successive calls to Next yield
// the fate of successive frames. Instances carry RNG and Markov state, so
// they are not safe for concurrent use — create one per connection (see
// Spec.Factory).
type Model interface {
	Name() string
	Next() Fault
}

// Channel applies a fault model to the serialized frames of one
// connection. Corruption flips exactly one payload bit per corrupted
// frame: the minimal damage a receiver must detect, and one a CRC32
// checksum detects with certainty.
type Channel struct {
	model Model
	rng   *rand.Rand
	stats *Stats
}

// New builds a channel around a fault model. The seed drives corruption
// bit positions; stats may be shared across channels (nil allocates a
// private one).
func New(model Model, seed int64, stats *Stats) *Channel {
	if stats == nil {
		stats = &Stats{}
	}
	return &Channel{model: model, rng: rand.New(rand.NewSource(seed)), stats: stats}
}

// Stats returns the counters this channel reports into.
func (c *Channel) Stats() *Stats { return c.stats }

// Transmit passes one serialized frame through the channel. payloadStart
// is the offset where the frame's payload begins (the header is never
// damaged: link-layer headers carry their own FEC in real systems, and
// recovery needs the slot/next-index fields to be trustworthy). It returns
// false when the channel drops the frame; on corruption the frame is
// modified in place.
func (c *Channel) Transmit(frame []byte, payloadStart int) bool {
	return c.TransmitFault(frame, payloadStart) != Drop
}

// TransmitFault is Transmit reporting the fault the channel assigned to
// the frame, so instrumented transmit paths (internal/obs) can count
// deliveries, drops and corruptions separately. A frame whose corruption
// could not land (empty payload) reports Deliver.
func (c *Channel) TransmitFault(frame []byte, payloadStart int) Fault {
	c.stats.sent.Add(1)
	switch c.model.Next() {
	case Drop:
		c.stats.dropped.Add(1)
		return Drop
	case Corrupt:
		if payloadStart < len(frame) {
			payload := frame[payloadStart:]
			bit := c.rng.Intn(len(payload) * 8)
			payload[bit/8] ^= 1 << uint(bit%8)
			c.stats.corrupted.Add(1)
			return Corrupt
		}
	}
	return Deliver
}

// Stats aggregates frame counters across the channels (connections) of one
// fault configuration. Safe for concurrent use: the server transmit path
// is one goroutine per connection.
type Stats struct {
	sent, dropped, corrupted atomic.Int64
}

// Snapshot is a consistent-enough copy of the counters for reporting.
type Snapshot struct {
	Sent, Dropped, Corrupted, Delivered int64
}

// Snapshot reads the current counter values.
func (s *Stats) Snapshot() Snapshot {
	sent, dropped, corrupted := s.sent.Load(), s.dropped.Load(), s.corrupted.Load()
	return Snapshot{Sent: sent, Dropped: dropped, Corrupted: corrupted, Delivered: sent - dropped}
}

func (s Snapshot) String() string {
	pct := func(n int64) float64 {
		if s.Sent == 0 {
			return 0
		}
		return 100 * float64(n) / float64(s.Sent)
	}
	return fmt.Sprintf("sent %d, dropped %d (%.2f%%), corrupted %d (%.2f%%)",
		s.Sent, s.Dropped, pct(s.Dropped), s.Corrupted, pct(s.Corrupted))
}
