package voronoi

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"airindex/internal/geom"
)

var area = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

func randomSites(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return sites
}

func TestCellsPartitionArea(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 400} {
		sites := randomSites(n, int64(n))
		cells, err := Cells(area, sites)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var sum float64
		for i, c := range cells {
			a := c.SignedArea()
			if a <= 0 {
				t.Fatalf("n=%d: cell %d not CCW or empty (area %v)", n, i, a)
			}
			sum += a
			if !c.Contains(sites[i]) {
				t.Fatalf("n=%d: site %d outside its own cell", n, i)
			}
			if !c.IsConvex() {
				t.Fatalf("n=%d: cell %d not convex", n, i)
			}
		}
		if rel := math.Abs(sum-area.Area()) / area.Area(); rel > 1e-9 {
			t.Fatalf("n=%d: cells cover %v of %v", n, sum, area.Area())
		}
	}
}

func TestNearestSiteProperty(t *testing.T) {
	sites := randomSites(120, 99)
	cells, err := Cells(area, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 20000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		nearest := NearestSite(sites, p)
		if !cells[nearest].Contains(p) {
			// Allow boundary ambiguity: p must then be (numerically)
			// equidistant to whichever cell does contain it.
			found := -1
			for j, c := range cells {
				if c.Contains(p) {
					found = j
					break
				}
			}
			if found < 0 {
				t.Fatalf("point %v in no cell", p)
			}
			dn, df := p.Dist(sites[nearest]), p.Dist(sites[found])
			if math.Abs(dn-df) > 1e-6 {
				t.Fatalf("point %v: nearest site %d (d=%v) but cell of %d (d=%v)", p, nearest, dn, found, df)
			}
		}
	}
}

func TestSubdivisionValidates(t *testing.T) {
	sites := randomSites(200, 5)
	sub, err := Subdivision(area, sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sub.N() != 200 {
		t.Fatalf("N = %d", sub.N())
	}
	// Every cell's located site agrees with brute-force nearest neighbor.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := sub.Locate(p)
		want := NearestSite(sites, p)
		if got != want && math.Abs(p.Dist(sites[got])-p.Dist(sites[want])) > 1e-6 {
			t.Fatalf("Locate(%v) = %d, nearest %d", p, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Cells(area, nil); err == nil {
		t.Error("no sites should fail")
	}
	if _, err := Cells(area, []geom.Point{geom.Pt(-5, 0)}); err == nil {
		t.Error("site outside area should fail")
	}
	dup := []geom.Point{geom.Pt(10, 10), geom.Pt(10, 10)}
	if _, err := Cells(area, dup); err == nil {
		t.Error("duplicate sites should fail")
	} else if !strings.Contains(err.Error(), "duplicate") && !strings.Contains(err.Error(), "vanish") {
		t.Errorf("unexpected duplicate-site error: %v", err)
	}
}

func TestSingleSiteCellIsArea(t *testing.T) {
	cells, err := Cells(area, []geom.Point{geom.Pt(5000, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cells[0].Area()-area.Area()) > 1e-9 {
		t.Errorf("single cell area = %v", cells[0].Area())
	}
}

func TestTwoSitesBisector(t *testing.T) {
	cells, err := Cells(area, []geom.Point{geom.Pt(2500, 5000), geom.Pt(7500, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	// The bisector is x=5000: each cell gets half the area.
	for i, c := range cells {
		if math.Abs(c.Area()-area.Area()/2) > 1e-6 {
			t.Errorf("cell %d area = %v, want half", i, c.Area())
		}
	}
}
