package voronoi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"airindex/internal/geom"
)

// checkAgainstRebuild verifies the maintainer's cells equal a from-scratch
// diagram of the live sites (area-wise, which pins the geometry).
func checkAgainstRebuild(t *testing.T, m *Maintainer) {
	t.Helper()
	ids, sites := m.LiveSites()
	want, err := Cells(area, sites)
	if err != nil {
		t.Fatal(err)
	}
	for k, id := range ids {
		got, err := m.Cell(id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Area()-want[k].Area()) > 1e-6 {
			t.Fatalf("site %d: incremental area %v, rebuilt %v", id, got.Area(), want[k].Area())
		}
		if !got.Contains(sites[k]) {
			t.Fatalf("site %d outside its incremental cell", id)
		}
	}
	// Total coverage.
	var sum float64
	for _, id := range ids {
		c, _ := m.Cell(id)
		sum += c.Area()
	}
	if math.Abs(sum-area.Area()) > 1e-6*area.Area() {
		t.Fatalf("live cells cover %v of %v", sum, area.Area())
	}
}

func TestMaintainerAdd(t *testing.T) {
	m, err := NewMaintainer(area, randomSites(30, 501))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(502))
	for i := 0; i < 40; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		if _, err := m.Add(p); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if m.Len() != 70 {
		t.Fatalf("Len = %d", m.Len())
	}
	checkAgainstRebuild(t, m)
}

func TestMaintainerRemove(t *testing.T) {
	m, err := NewMaintainer(area, randomSites(60, 503))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(504))
	removed := map[int]bool{}
	for i := 0; i < 35; i++ {
		id := rng.Intn(60)
		if removed[id] {
			continue
		}
		if err := m.Remove(id); err != nil {
			t.Fatalf("remove %d: %v", id, err)
		}
		removed[id] = true
	}
	checkAgainstRebuild(t, m)
	for id := range removed {
		if _, err := m.Cell(id); err == nil {
			t.Fatalf("removed site %d still has a cell", id)
		}
		if err := m.Remove(id); err == nil {
			t.Fatalf("double remove of %d succeeded", id)
		}
	}
}

func TestMaintainerInterleaved(t *testing.T) {
	m, err := NewMaintainer(area, randomSites(25, 505))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(506))
	live := make(map[int]bool)
	for i := 0; i < 25; i++ {
		live[i] = true
	}
	for op := 0; op < 120; op++ {
		if rng.Float64() < 0.5 || len(live) < 3 {
			id, err := m.Add(geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
			if err != nil {
				t.Fatalf("op %d add: %v", op, err)
			}
			live[id] = true
		} else {
			var pick int
			k := rng.Intn(len(live))
			for id := range live {
				if k == 0 {
					pick = id
					break
				}
				k--
			}
			if err := m.Remove(pick); err != nil {
				t.Fatalf("op %d remove %d: %v", op, pick, err)
			}
			delete(live, pick)
		}
		if op%30 == 29 {
			checkAgainstRebuild(t, m)
		}
	}
	checkAgainstRebuild(t, m)

	// The snapshot must build a valid subdivision and index end to end.
	sub, ids, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != len(live) || len(ids) != len(live) {
		t.Fatalf("snapshot has %d regions, want %d", sub.N(), len(live))
	}
	for q := 0; q < 3000; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		r := sub.Locate(p)
		if r < 0 {
			t.Fatalf("snapshot missed %v", p)
		}
		s, err := m.Site(ids[r])
		if err != nil {
			t.Fatal(err)
		}
		_, liveSites := m.LiveSites()
		best := math.Inf(1)
		for _, q2 := range liveSites {
			if d := p.Dist(q2); d < best {
				best = d
			}
		}
		if p.Dist(s)-best > 1e-6 {
			t.Fatalf("snapshot region for %v is not the nearest site", p)
		}
	}
}

func TestMaintainerErrors(t *testing.T) {
	m, err := NewMaintainer(area, randomSites(3, 507))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(geom.Pt(-1, -1)); err == nil {
		t.Error("outside add should fail")
	}
	p, _ := m.Site(0)
	if _, err := m.Add(p); err == nil {
		t.Error("duplicate add should fail")
	}
	if err := m.Remove(99); err == nil {
		t.Error("bad id remove should fail")
	}
	m.Remove(0)
	m.Remove(1)
	if err := m.Remove(2); err == nil {
		t.Error("removing the last site should fail")
	}
}

func TestMaintainerMove(t *testing.T) {
	m, err := NewMaintainer(area, randomSites(20, 508))
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Move(5, geom.Pt(123, 456))
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Errorf("move should keep the site id stable, got %d", id)
	}
	c, err := m.Cell(id)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(geom.Pt(123, 456)) {
		t.Error("moved site outside its new cell")
	}
	checkAgainstRebuild(t, m)
}

// requireBitIdentical asserts every live maintained cell is bitwise equal —
// vertex count and exact float64 coordinates — to the cell a from-scratch
// Cells rebuild of the live site set produces. This is the invariant the
// live broadcast hot swap (stream.Swapper) relies on: a program built from
// a Maintainer snapshot must be byte-identical to one built from scratch.
func requireBitIdentical(t *testing.T, m *Maintainer, ctx string) {
	t.Helper()
	ids, sites := m.LiveSites()
	want, err := Cells(area, sites)
	if err != nil {
		t.Fatalf("%s: rebuild: %v", ctx, err)
	}
	for k, id := range ids {
		got := m.cells[id]
		if len(got) != len(want[k]) {
			t.Fatalf("%s: site %d: %d vertices incremental, %d rebuilt", ctx, id, len(got), len(want[k]))
		}
		for v := range got {
			if got[v] != want[k][v] {
				t.Fatalf("%s: site %d vertex %d: incremental %v, rebuilt %v", ctx, id, v, got[v], want[k][v])
			}
		}
	}
}

// TestMaintainerBitIdenticalProperty drives random add/remove/move
// sequences through the Maintainer across several seeds and population
// scales (spanning the sorted-path and grid-path regimes of Cells, and
// forcing regrids) and requires bit-identical cells after every operation
// batch.
func TestMaintainerBitIdenticalProperty(t *testing.T) {
	for _, tc := range []struct {
		n    int
		ops  int
		seed int64
	}{
		{8, 120, 601},   // below gridMinSites: rebuild takes the sorted path
		{40, 200, 602},  // grid path
		{150, 300, 603}, // grid path, heavier neighborhoods
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		m, err := NewMaintainer(area, randomSites(tc.n, tc.seed+7))
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]bool{}
		for i := 0; i < tc.n; i++ {
			live[i] = true
		}
		pick := func() int {
			k := rng.Intn(len(live))
			for id := range live {
				if k == 0 {
					return id
				}
				k--
			}
			panic("unreachable")
		}
		requireBitIdentical(t, m, "initial")
		for op := 0; op < tc.ops; op++ {
			ctx := ""
			switch r := rng.Float64(); {
			case r < 0.40 || len(live) < 4:
				id, err := m.Add(geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
				if err != nil {
					t.Fatalf("n=%d op %d add: %v", tc.n, op, err)
				}
				live[id] = true
				ctx = fmt.Sprintf("n=%d op %d add -> %d", tc.n, op, id)
			case r < 0.70:
				id := pick()
				if err := m.Remove(id); err != nil {
					t.Fatalf("n=%d op %d remove %d: %v", tc.n, op, id, err)
				}
				delete(live, id)
				ctx = fmt.Sprintf("n=%d op %d remove %d", tc.n, op, id)
			default:
				id := pick()
				nid, err := m.Move(id, geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
				if err != nil {
					t.Fatalf("n=%d op %d move %d: %v", tc.n, op, id, err)
				}
				delete(live, id)
				live[nid] = true
				ctx = fmt.Sprintf("n=%d op %d move %d -> %d", tc.n, op, id, nid)
			}
			// Checking after every op keeps the failure context tight; it is
			// what makes this a property test rather than an endpoint check.
			requireBitIdentical(t, m, ctx)
		}
	}
}
