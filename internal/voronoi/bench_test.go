package voronoi

import (
	"fmt"
	"testing"
)

// BenchmarkVoronoiCells measures full valid-scope construction at the
// dataset sizes of the build-pipeline scaling work: the paper's N (~1k) and
// the two larger tiers the ROADMAP targets. One op = one complete diagram.
func BenchmarkVoronoiCells(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("N=%dk", n/1000), func(b *testing.B) {
			sites := randomSites(n, int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Cells(area, sites); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
