// Package voronoi constructs the Voronoi diagram of a set of point sites
// clipped to a rectangular service area. The paper derives the valid scopes
// of nearest-neighbor data instances this way (Section 5): the cell of site
// i is exactly the region where i is the correct answer.
//
// Cells are built independently per site by intersecting the service-area
// rectangle with the dominance half-plane of the site against other sites,
// visited nearest-first so a radius early-exit prunes everything beyond the
// cell's reach. Candidates are enumerated through a uniform grid over the
// sites (expanding-ring search), so on uniform or mildly clustered datasets
// each site touches only its O(1) neighborhood and the whole diagram costs
// O(N) expected cell clips; the worst case (all sites crowded into one grid
// bucket) degrades to the sorted O(N^2 log N) scan of small datasets, which
// is also the fallback used below gridMinSites.
package voronoi

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// gridMinSites is the site count below which Cells skips grid construction
// and uses the direct sorted scan: at these sizes the full sort is cheaper
// than building the grid.
const gridMinSites = 32

// Cells computes the clipped Voronoi cell of every site. The i-th returned
// polygon is the valid scope of sites[i]. Sites must be distinct and lie
// inside the area.
func Cells(area geom.Rect, sites []geom.Point) ([]geom.Polygon, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("voronoi: no sites")
	}
	for i, s := range sites {
		if !area.Contains(s) {
			return nil, fmt.Errorf("voronoi: site %d (%v) outside service area", i, s)
		}
	}
	if len(sites) < gridMinSites {
		return cellsSorted(area, sites)
	}
	return cellsGrid(area, sites)
}

// cellsGrid builds every cell through one shared site grid. The grid's
// (distance, id) enumeration order matches the sorted path exactly, so both
// produce identical polygons; TestCellsGridMatchesSorted pins that.
func cellsGrid(area geom.Rect, sites []geom.Point) ([]geom.Polygon, error) {
	g := newSiteGrid(area, sites)
	out := make([]geom.Polygon, len(sites))
	var scratch []gridCand
	for i := range sites {
		it := g.near(sites, sites[i], scratch)
		cell, err := clipCell(area, sites, i, func() (int, float64, bool) {
			id, d2, ok := it.next()
			if ok && id == i { // skip the site's own zero-distance entry
				id, d2, ok = it.next()
			}
			return id, d2, ok
		})
		scratch = it.buffer()
		if err != nil {
			return nil, err
		}
		out[i] = cell
	}
	return out, nil
}

// cellsSorted is the direct path for small or degenerate site sets: per
// site, one (distance, id) sort of all other sites with distances computed
// once up front, then the same nearest-first clip loop.
func cellsSorted(area geom.Rect, sites []geom.Point) ([]geom.Polygon, error) {
	out := make([]geom.Polygon, len(sites))
	cands := make([]gridCand, 0, len(sites)-1)
	for i := range sites {
		cands = cands[:0]
		for j := range sites {
			if j != i {
				cands = append(cands, gridCand{d2: sites[i].Dist2(sites[j]), id: int32(j)})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d2 != cands[b].d2 {
				return cands[a].d2 < cands[b].d2
			}
			return cands[a].id < cands[b].id
		})
		k := 0
		cell, err := clipCell(area, sites, i, func() (int, float64, bool) {
			if k >= len(cands) {
				return 0, 0, false
			}
			c := cands[k]
			k++
			return int(c.id), c.d2, true
		})
		if err != nil {
			return nil, err
		}
		out[i] = cell
	}
	return out, nil
}

// clipCell clips the area rectangle by the bisector half-plane against the
// candidates yielded by next in ascending (distance, id) order, stopping at
// the radius early-exit: a site farther than twice the cell's max distance
// from the owner cannot cut the cell, and neither can anything after it.
func clipCell(area geom.Rect, sites []geom.Point, i int, next func() (int, float64, bool)) (geom.Polygon, error) {
	me := sites[i]
	cell := area.Polygon()
	for {
		j, d2, ok := next()
		if !ok {
			return cell, nil
		}
		d := math.Sqrt(d2)
		if d == 0 {
			return nil, fmt.Errorf("voronoi: duplicate sites %d and %d at %v", i, j, me)
		}
		if d/2 > maxDistTo(cell, me) {
			return cell, nil
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(me, sites[j]))
		if cell == nil {
			return nil, fmt.Errorf("voronoi: cell of site %d vanished (near-duplicate sites?)", i)
		}
	}
}

func maxDistTo(pg geom.Polygon, p geom.Point) float64 {
	var m float64
	for _, q := range pg {
		if d := p.Dist(q); d > m {
			m = d
		}
	}
	return m
}

// Subdivision computes the Voronoi cells of the sites and assembles them
// into a validated region subdivision, the standard way the examples and
// experiments derive valid scopes from a point dataset.
func Subdivision(area geom.Rect, sites []geom.Point) (*region.Subdivision, error) {
	cells, err := Cells(area, sites)
	if err != nil {
		return nil, err
	}
	s, err := region.New(area, cells)
	if err != nil {
		return nil, fmt.Errorf("voronoi: assembling subdivision: %w", err)
	}
	return s, nil
}

// NearestSite returns the index of the site nearest to p by brute force;
// tests use it to cross-check that locating p in the subdivision yields the
// same answer as a direct nearest-neighbor scan, and as ground truth for
// the grid's candidate enumeration.
func NearestSite(sites []geom.Point, p geom.Point) int {
	best, bestD := -1, 0.0
	for i, s := range sites {
		d := p.Dist2(s)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
