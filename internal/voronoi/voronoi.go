// Package voronoi constructs the Voronoi diagram of a set of point sites
// clipped to a rectangular service area. The paper derives the valid scopes
// of nearest-neighbor data instances this way (Section 5): the cell of site
// i is exactly the region where i is the correct answer.
//
// Cells are built independently per site by intersecting the service-area
// rectangle with the dominance half-plane of the site against every other
// site. This is O(N^2) point-site comparisons overall, entirely robust, and
// easily fast enough for the paper's dataset sizes (N <= ~1100); a
// nearest-first pruning cut makes typical datasets far cheaper than the
// worst case.
package voronoi

import (
	"fmt"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Cells computes the clipped Voronoi cell of every site. The i-th returned
// polygon is the valid scope of sites[i]. Sites must be distinct and lie
// inside the area.
func Cells(area geom.Rect, sites []geom.Point) ([]geom.Polygon, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("voronoi: no sites")
	}
	for i, s := range sites {
		if !area.Contains(s) {
			return nil, fmt.Errorf("voronoi: site %d (%v) outside service area", i, s)
		}
	}
	out := make([]geom.Polygon, len(sites))
	for i := range sites {
		cell, err := cellOf(area, sites, i)
		if err != nil {
			return nil, err
		}
		out[i] = cell
	}
	return out, nil
}

// cellOf clips the area rectangle by the bisector half-plane against every
// other site, visiting sites nearest-first so the cell shrinks quickly and
// distant sites are pruned by a radius test.
func cellOf(area geom.Rect, sites []geom.Point, i int) (geom.Polygon, error) {
	me := sites[i]
	order := make([]int, 0, len(sites)-1)
	for j := range sites {
		if j != i {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return me.Dist2(sites[order[a]]) < me.Dist2(sites[order[b]])
	})

	cell := area.Polygon()
	for _, j := range order {
		d := me.Dist(sites[j])
		if d == 0 {
			return nil, fmt.Errorf("voronoi: duplicate sites %d and %d at %v", i, j, me)
		}
		// A site farther than twice the cell's max distance from me cannot
		// cut the cell: its bisector passes beyond every cell vertex.
		if d/2 > maxDistTo(cell, me) {
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(me, sites[j]))
		if cell == nil {
			return nil, fmt.Errorf("voronoi: cell of site %d vanished (near-duplicate sites?)", i)
		}
	}
	return cell, nil
}

func maxDistTo(pg geom.Polygon, p geom.Point) float64 {
	var m float64
	for _, q := range pg {
		if d := p.Dist(q); d > m {
			m = d
		}
	}
	return m
}

// Subdivision computes the Voronoi cells of the sites and assembles them
// into a validated region subdivision, the standard way the examples and
// experiments derive valid scopes from a point dataset.
func Subdivision(area geom.Rect, sites []geom.Point) (*region.Subdivision, error) {
	cells, err := Cells(area, sites)
	if err != nil {
		return nil, err
	}
	s, err := region.New(area, cells)
	if err != nil {
		return nil, fmt.Errorf("voronoi: assembling subdivision: %w", err)
	}
	return s, nil
}

// NearestSite returns the index of the site nearest to p by brute force;
// tests use it to cross-check that locating p in the subdivision yields the
// same answer as a direct nearest-neighbor scan.
func NearestSite(sites []geom.Point, p geom.Point) int {
	best, bestD := -1, 0.0
	for i, s := range sites {
		d := p.Dist2(s)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
