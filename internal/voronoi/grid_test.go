package voronoi

import (
	"math/rand"
	"strings"
	"testing"

	"airindex/internal/geom"
)

// clusteredSites crowds n sites into a tiny box in one corner of the
// service area, the degenerate case where the whole population lands in a
// handful of grid buckets and the ring search collapses to the sorted scan.
func clusteredSites(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]geom.Point, 0, n)
	seen := map[geom.Point]bool{}
	for len(sites) < n {
		p := geom.Pt(10+rng.Float64()*20, 10+rng.Float64()*20)
		if !seen[p] {
			seen[p] = true
			sites = append(sites, p)
		}
	}
	return sites
}

// TestCellsGridMatchesSorted pins the tentpole equivalence: the
// grid-pruned path clips candidates in the same (distance, id) order as
// the full per-site sort, so the polygons are identical to the last bit.
func TestCellsGridMatchesSorted(t *testing.T) {
	cases := []struct {
		name  string
		sites []geom.Point
	}{
		{"uniform-64", randomSites(64, 7)},
		{"uniform-300", randomSites(300, 8)},
		{"uniform-900", randomSites(900, 9)},
		{"clustered-one-bucket-200", clusteredSites(200, 10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			grid, err := cellsGrid(area, tc.sites)
			if err != nil {
				t.Fatalf("grid: %v", err)
			}
			sorted, err := cellsSorted(area, tc.sites)
			if err != nil {
				t.Fatalf("sorted: %v", err)
			}
			for i := range tc.sites {
				g, s := grid[i], sorted[i]
				if len(g) != len(s) {
					t.Fatalf("site %d: grid cell has %d vertices, sorted %d", i, len(g), len(s))
				}
				for j := range g {
					if g[j] != s[j] {
						t.Fatalf("site %d vertex %d: grid %v != sorted %v", i, j, g[j], s[j])
					}
				}
			}
		})
	}
}

// TestGridCandidateOrderAndCompleteness checks the iterator contract the
// clip loop relies on: every site is yielded exactly once, in ascending
// (distance, id) order.
func TestGridCandidateOrderAndCompleteness(t *testing.T) {
	for _, sites := range [][]geom.Point{randomSites(500, 21), clusteredSites(150, 22)} {
		g := newSiteGrid(area, sites)
		rng := rand.New(rand.NewSource(23))
		for q := 0; q < 50; q++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			it := g.near(sites, p, nil)
			seen := make(map[int]bool, len(sites))
			lastD2, lastID := -1.0, -1
			for {
				id, d2, ok := it.next()
				if !ok {
					break
				}
				if seen[id] {
					t.Fatalf("site %d yielded twice", id)
				}
				seen[id] = true
				if d2 < lastD2 || (d2 == lastD2 && id <= lastID) {
					t.Fatalf("order violation: (%v,%d) after (%v,%d)", d2, id, lastD2, lastID)
				}
				if got := p.Dist2(sites[id]); got != d2 {
					t.Fatalf("site %d: reported d2 %v, actual %v", id, d2, got)
				}
				lastD2, lastID = d2, id
			}
			if len(seen) != len(sites) {
				t.Fatalf("iterator yielded %d of %d sites", len(seen), len(sites))
			}
		}
	}
}

// TestGridNearestMatchesBruteForce is the property test cross-checking the
// grid's candidate search against the NearestSite brute-force scan. Both
// break distance ties by the lowest id.
func TestGridNearestMatchesBruteForce(t *testing.T) {
	for _, sites := range [][]geom.Point{randomSites(800, 31), clusteredSites(120, 32)} {
		g := newSiteGrid(area, sites)
		rng := rand.New(rand.NewSource(33))
		for q := 0; q < 3000; q++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			got := g.nearestIn(sites, p)
			want := NearestSite(sites, p)
			if got != want {
				t.Fatalf("query %v: grid nearest %d (d2=%v), brute force %d (d2=%v)",
					p, got, p.Dist2(sites[got]), want, p.Dist2(sites[want]))
			}
		}
		// Site locations themselves must resolve to their own id.
		for i, s := range sites {
			if got := g.nearestIn(sites, s); got != i {
				t.Fatalf("site %d: nearest at its own location = %d", i, got)
			}
		}
	}
}

// TestCellsGridDuplicateSites checks duplicate detection survives on the
// grid path (large N), not just the sorted fallback.
func TestCellsGridDuplicateSites(t *testing.T) {
	sites := randomSites(100, 41)
	sites = append(sites, sites[17])
	_, err := Cells(area, sites)
	if err == nil {
		t.Fatal("duplicate sites should fail")
	}
	if !strings.Contains(err.Error(), "duplicate") && !strings.Contains(err.Error(), "vanish") {
		t.Fatalf("unexpected duplicate-site error: %v", err)
	}
}

// TestGridInsertRemove exercises the dynamic bucket maintenance the
// Maintainer relies on.
func TestGridInsertRemove(t *testing.T) {
	sites := randomSites(100, 51)
	g := newSiteGrid(area, sites[:60])
	for i := 60; i < 100; i++ {
		g.insert(i, sites[i])
	}
	for _, i := range []int{5, 59, 60, 99} {
		g.remove(i, sites[i])
	}
	if g.count != 96 {
		t.Fatalf("count = %d, want 96", g.count)
	}
	alive := map[int]bool{}
	it := g.near(sites, geom.Pt(5000, 5000), nil)
	for {
		id, _, ok := it.next()
		if !ok {
			break
		}
		alive[id] = true
	}
	if len(alive) != 96 {
		t.Fatalf("iterator sees %d sites, want 96", len(alive))
	}
	for _, i := range []int{5, 59, 60, 99} {
		if alive[i] {
			t.Fatalf("removed site %d still enumerated", i)
		}
	}
}

// TestMaintainerMatchesFreshCells checks that after a mixed update
// sequence the incrementally maintained scopes equal a from-scratch
// diagram of the live sites.
func TestMaintainerMatchesFreshCells(t *testing.T) {
	sites := randomSites(80, 61)
	m, err := NewMaintainer(area, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for op := 0; op < 60; op++ {
		switch rng.Intn(3) {
		case 0:
			if _, err := m.Add(geom.Pt(rng.Float64()*10000, rng.Float64()*10000)); err != nil {
				t.Fatalf("op %d add: %v", op, err)
			}
		case 1:
			ids, _ := m.LiveSites()
			if err := m.Remove(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatalf("op %d remove: %v", op, err)
			}
		default:
			ids, _ := m.LiveSites()
			if _, err := m.Move(ids[rng.Intn(len(ids))], geom.Pt(rng.Float64()*10000, rng.Float64()*10000)); err != nil {
				t.Fatalf("op %d move: %v", op, err)
			}
		}
	}
	ids, live := m.LiveSites()
	fresh, err := Cells(area, live)
	if err != nil {
		t.Fatal(err)
	}
	for k, id := range ids {
		cell, err := m.Cell(id)
		if err != nil {
			t.Fatal(err)
		}
		// Maintained and fresh cells are built by different clip sequences,
		// so compare geometrically: equal area and mutual containment of
		// vertices (within predicate tolerance).
		if d := cell.Area() - fresh[k].Area(); d > 1e-6 || d < -1e-6 {
			t.Fatalf("site %d: maintained area %v, fresh %v", id, cell.Area(), fresh[k].Area())
		}
		for _, v := range fresh[k] {
			if !cell.Contains(v) {
				t.Fatalf("site %d: fresh vertex %v outside maintained cell", id, v)
			}
		}
	}
}
