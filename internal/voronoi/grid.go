package voronoi

import (
	"math"
	"sort"

	"airindex/internal/geom"
)

// siteGrid buckets sites into a uniform grid over the service area so that
// candidate sites can be enumerated in ascending distance order from any
// query point without sorting the whole site set. Cell construction and the
// incremental Maintainer share it: a cell clip visits candidates
// nearest-first and stops at the radius early-exit, so on uniform or mildly
// clustered datasets each site only ever sees its O(1) grid neighborhood.
//
// Buckets store site ids in ascending order, and the ring iterator breaks
// distance ties by id, so enumeration order — and therefore the clip
// sequence and the resulting polygons — is deterministic and identical to a
// full (distance, id) sort of the site set.
type siteGrid struct {
	area         geom.Rect
	cols, rows   int
	cellW, cellH float64
	buckets      [][]int32
	count        int // live sites currently in the grid
	builtFor     int // size the grid geometry was dimensioned for
}

// newSiteGrid dimensions a grid for about two sites per bucket and inserts
// the given sites. Ids are bucket-appended in increasing order, keeping
// every bucket sorted.
func newSiteGrid(area geom.Rect, sites []geom.Point) *siteGrid {
	g := dimensionGrid(area, len(sites))
	for i, p := range sites {
		b := g.bucketOf(p)
		g.buckets[b] = append(g.buckets[b], int32(i))
	}
	g.count = len(sites)
	return g
}

func dimensionGrid(area geom.Rect, n int) *siteGrid {
	if n < 1 {
		n = 1
	}
	cells := float64(n) / 2
	aspect := area.W() / area.H()
	cols := int(math.Round(math.Sqrt(cells * aspect)))
	rows := int(math.Round(math.Sqrt(cells / aspect)))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &siteGrid{
		area: area, cols: cols, rows: rows,
		cellW: area.W() / float64(cols), cellH: area.H() / float64(rows),
		buckets:  make([][]int32, cols*rows),
		builtFor: n,
	}
}

// cellOf returns the (column, row) of p, clamping border points inward.
func (g *siteGrid) cellOf(p geom.Point) (int, int) {
	ci := int((p.X - g.area.MinX) / g.cellW)
	cj := int((p.Y - g.area.MinY) / g.cellH)
	if ci < 0 {
		ci = 0
	} else if ci >= g.cols {
		ci = g.cols - 1
	}
	if cj < 0 {
		cj = 0
	} else if cj >= g.rows {
		cj = g.rows - 1
	}
	return ci, cj
}

func (g *siteGrid) bucketOf(p geom.Point) int {
	ci, cj := g.cellOf(p)
	return cj*g.cols + ci
}

// insert adds a site id at p. Maintainer ids grow monotonically, so a plain
// append preserves the ascending bucket order; anything else falls back to
// an ordered insert.
func (g *siteGrid) insert(id int, p geom.Point) {
	b := g.bucketOf(p)
	bk := g.buckets[b]
	if n := len(bk); n == 0 || bk[n-1] < int32(id) {
		g.buckets[b] = append(bk, int32(id))
	} else {
		at := sort.Search(len(bk), func(i int) bool { return bk[i] >= int32(id) })
		bk = append(bk, 0)
		copy(bk[at+1:], bk[at:])
		bk[at] = int32(id)
		g.buckets[b] = bk
	}
	g.count++
}

// remove deletes a site id located at p.
func (g *siteGrid) remove(id int, p geom.Point) {
	b := g.bucketOf(p)
	bk := g.buckets[b]
	at := sort.Search(len(bk), func(i int) bool { return bk[i] >= int32(id) })
	if at < len(bk) && bk[at] == int32(id) {
		g.buckets[b] = append(bk[:at], bk[at+1:]...)
		g.count--
	}
}

// gridCand is one enumerated candidate: squared distance to the query point
// plus the site id, ordered by (d2, id).
type gridCand struct {
	d2 float64
	id int32
}

// nearIter enumerates the sites in the grid in ascending (distance, id)
// order from a query point. Grid rings (cells at growing Chebyshev distance
// from the query's cell) are loaded lazily: a candidate is only yielded once
// its distance is provably smaller than anything an unexplored ring could
// hold, so the order matches a full sort without ever materializing one.
// The pending buffer can be handed in by the caller for reuse across
// queries.
type nearIter struct {
	g       *siteGrid
	sites   []geom.Point
	p       geom.Point
	ci, cj  int
	r, maxR int
	pending []gridCand
	idx     int
}

// near starts an enumeration from p. scratch (may be nil) is recycled as
// the pending buffer.
func (g *siteGrid) near(sites []geom.Point, p geom.Point, scratch []gridCand) *nearIter {
	ci, cj := g.cellOf(p)
	maxR := ci
	if v := g.cols - 1 - ci; v > maxR {
		maxR = v
	}
	if cj > maxR {
		maxR = cj
	}
	if v := g.rows - 1 - cj; v > maxR {
		maxR = v
	}
	return &nearIter{g: g, sites: sites, p: p, ci: ci, cj: cj, maxR: maxR, pending: scratch[:0]}
}

// next yields the nearest unvisited site, or ok=false when the grid is
// exhausted.
func (it *nearIter) next() (id int, d2 float64, ok bool) {
	for it.r <= it.maxR {
		if it.idx < len(it.pending) && it.pending[it.idx].d2 < it.ringLB2(it.r) {
			break
		}
		it.loadRing(it.r)
		it.r++
	}
	if it.idx >= len(it.pending) {
		return 0, 0, false
	}
	c := it.pending[it.idx]
	it.idx++
	return int(c.id), c.d2, true
}

// buffer returns the pending slice for reuse in a later near call.
func (it *nearIter) buffer() []gridCand { return it.pending }

// ringLB2 returns a lower bound on the squared distance from the query
// point to any site in a ring >= r: the distance from p to the complement
// of the box of cells within Chebyshev distance r-1 of the query's cell.
func (it *nearIter) ringLB2(r int) float64 {
	if r <= 0 {
		return 0
	}
	g := it.g
	bx0 := g.area.MinX + float64(it.ci-r+1)*g.cellW
	bx1 := g.area.MinX + float64(it.ci+r)*g.cellW
	by0 := g.area.MinY + float64(it.cj-r+1)*g.cellH
	by1 := g.area.MinY + float64(it.cj+r)*g.cellH
	d := it.p.X - bx0
	if v := bx1 - it.p.X; v < d {
		d = v
	}
	if v := it.p.Y - by0; v < d {
		d = v
	}
	if v := by1 - it.p.Y; v < d {
		d = v
	}
	if d <= 0 {
		return 0
	}
	return d * d
}

// loadRing appends every site in the cells at Chebyshev distance exactly r
// and restores the sorted order of the unvisited tail.
func (it *nearIter) loadRing(r int) {
	before := len(it.pending)
	if r == 0 {
		it.loadCell(it.ci, it.cj)
	} else {
		for i := it.ci - r; i <= it.ci+r; i++ {
			it.loadCell(i, it.cj-r)
			it.loadCell(i, it.cj+r)
		}
		for j := it.cj - r + 1; j <= it.cj+r-1; j++ {
			it.loadCell(it.ci-r, j)
			it.loadCell(it.ci+r, j)
		}
	}
	if len(it.pending) == before {
		return
	}
	tail := it.pending[it.idx:]
	sort.Slice(tail, func(a, b int) bool {
		if tail[a].d2 != tail[b].d2 {
			return tail[a].d2 < tail[b].d2
		}
		return tail[a].id < tail[b].id
	})
}

func (it *nearIter) loadCell(i, j int) {
	if i < 0 || i >= it.g.cols || j < 0 || j >= it.g.rows {
		return
	}
	for _, id := range it.g.buckets[j*it.g.cols+i] {
		it.pending = append(it.pending, gridCand{d2: it.p.Dist2(it.sites[id]), id: id})
	}
}

// nearestIn returns the grid site nearest to p by (distance, id), or -1 on
// an empty grid — the grid-accelerated counterpart of NearestSite.
func (g *siteGrid) nearestIn(sites []geom.Point, p geom.Point) int {
	id, _, ok := g.near(sites, p, nil).next()
	if !ok {
		return -1
	}
	return id
}
