package voronoi

import (
	"fmt"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Maintainer keeps a set of Voronoi valid scopes up to date as data
// instances appear and disappear between broadcast cycles, recomputing only
// the affected cells: adding a site clips each neighbor once against one
// new bisector; removing a site rebuilds only the cells that absorb the
// vacated territory. Site ids are stable (removal leaves a tombstone), so
// the broadcast server can keep bucket numbering consistent.
type Maintainer struct {
	area  geom.Rect
	sites []geom.Point
	cells []geom.Polygon
	alive []bool
	n     int // alive count
}

// NewMaintainer builds the initial diagram.
func NewMaintainer(area geom.Rect, sites []geom.Point) (*Maintainer, error) {
	cells, err := Cells(area, sites)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		area:  area,
		sites: append([]geom.Point(nil), sites...),
		cells: cells,
		alive: make([]bool, len(sites)),
		n:     len(sites),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m, nil
}

// Len returns the number of live sites.
func (m *Maintainer) Len() int { return m.n }

// Site returns the location of site id (valid ids only).
func (m *Maintainer) Site(id int) (geom.Point, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return geom.Point{}, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.sites[id], nil
}

// Cell returns the current valid scope of site id.
func (m *Maintainer) Cell(id int) (geom.Polygon, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return nil, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.cells[id].Clone(), nil
}

// Add inserts a new site and returns its id. Only the cells the new site's
// scope carves territory from are touched.
func (m *Maintainer) Add(p geom.Point) (int, error) {
	if !m.area.Contains(p) {
		return 0, fmt.Errorf("voronoi: site %v outside the service area", p)
	}
	for j, alive := range m.alive {
		if alive && m.sites[j].Dist(p) < 1e-9 {
			return 0, fmt.Errorf("voronoi: duplicate of live site %d", j)
		}
	}
	// The new cell: clip the area against bisectors, nearest-first.
	cell := m.area.Polygon()
	order := m.aliveByDistance(p)
	for _, j := range order {
		if m.sites[j].Dist(p)/2 > maxDistTo(cell, p) {
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(p, m.sites[j]))
		if cell == nil {
			return 0, fmt.Errorf("voronoi: new site %v has an empty scope (near-duplicate?)", p)
		}
	}
	// Clip every neighbor that loses territory: one half-plane each.
	for _, j := range order {
		if m.sites[j].Dist(p)/2 > maxDistTo(m.cells[j], m.sites[j]) {
			continue // the new site cannot reach cell j
		}
		clipped := geom.ClipHalfPlane(m.cells[j], geom.Bisector(m.sites[j], p))
		if clipped == nil {
			return 0, fmt.Errorf("voronoi: site %d's scope vanished (near-duplicate insert?)", j)
		}
		m.cells[j] = clipped
	}
	id := len(m.sites)
	m.sites = append(m.sites, p)
	m.cells = append(m.cells, cell)
	m.alive = append(m.alive, true)
	m.n++
	return id, nil
}

// Remove deletes a site; its territory is redistributed among the sites
// whose bisectors could have bounded the removed cell, which are rebuilt.
func (m *Maintainer) Remove(id int) error {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return fmt.Errorf("voronoi: no live site %d", id)
	}
	if m.n == 1 {
		return fmt.Errorf("voronoi: cannot remove the last site")
	}
	s := m.sites[id]
	reach := 2 * maxDistTo(m.cells[id], s)
	m.alive[id] = false
	m.n--
	for _, j := range m.aliveByDistance(s) {
		if m.sites[j].Dist(s) > reach {
			break // too far to have bordered the removed cell
		}
		cell, err := m.computeCell(j)
		if err != nil {
			m.alive[id] = true
			m.n++
			return err
		}
		m.cells[j] = cell
	}
	m.cells[id] = nil
	return nil
}

// Move relocates a live site (remove + add semantics with a stable id is
// not possible without invalidating neighbors anyway, so Move returns the
// new id).
func (m *Maintainer) Move(id int, to geom.Point) (int, error) {
	if err := m.Remove(id); err != nil {
		return 0, err
	}
	return m.Add(to)
}

// computeCell rebuilds one cell from scratch with nearest-first pruning.
func (m *Maintainer) computeCell(id int) (geom.Polygon, error) {
	me := m.sites[id]
	cell := m.area.Polygon()
	for _, j := range m.aliveByDistance(me) {
		if j == id {
			continue
		}
		if m.sites[j].Dist(me)/2 > maxDistTo(cell, me) {
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(me, m.sites[j]))
		if cell == nil {
			return nil, fmt.Errorf("voronoi: cell of site %d vanished", id)
		}
	}
	return cell, nil
}

// aliveByDistance returns live site ids ordered by distance from p
// (excluding exact self-matches is the caller's business).
func (m *Maintainer) aliveByDistance(p geom.Point) []int {
	out := make([]int, 0, m.n)
	for j, alive := range m.alive {
		if alive {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return p.Dist2(m.sites[out[a]]) < p.Dist2(m.sites[out[b]])
	})
	return out
}

// LiveSites returns the live sites and their ids.
func (m *Maintainer) LiveSites() (ids []int, sites []geom.Point) {
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			sites = append(sites, m.sites[j])
		}
	}
	return ids, sites
}

// Snapshot assembles the current scopes into a validated subdivision for
// index building. The returned id slice maps region index -> site id.
func (m *Maintainer) Snapshot() (*region.Subdivision, []int, error) {
	ids := make([]int, 0, m.n)
	polys := make([]geom.Polygon, 0, m.n)
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			polys = append(polys, m.cells[j])
		}
	}
	sub, err := region.New(m.area, polys)
	if err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot: %w", err)
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot invalid: %w", err)
	}
	return sub, ids, nil
}
