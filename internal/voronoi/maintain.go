package voronoi

import (
	"fmt"
	"math"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Maintainer keeps a set of Voronoi valid scopes up to date as data
// instances appear and disappear between broadcast cycles, recomputing only
// the affected cells: adding a site clips each neighbor once against one
// new bisector; removing a site rebuilds only the cells that absorb the
// vacated territory. Site ids are stable (removal leaves a tombstone), so
// the broadcast server can keep bucket numbering consistent.
//
// Live sites are bucketed in the same uniform grid Cells builds with, so
// every update enumerates candidates nearest-first through expanding grid
// rings instead of rescanning (and sorting) all live sites.
type Maintainer struct {
	area  geom.Rect
	sites []geom.Point
	cells []geom.Polygon
	alive []bool
	n     int // alive count

	grid *siteGrid
	// maxRadius is an upper bound on the largest distance from any live
	// site to a vertex of its own cell. It lets Add stop scanning once no
	// farther cell could possibly reach the new site. Cells only shrink on
	// Add and are recomputed on Remove, so the bound is raised whenever a
	// cell is (re)built and never lowered — conservative but always valid.
	maxRadius float64
}

// NewMaintainer builds the initial diagram.
func NewMaintainer(area geom.Rect, sites []geom.Point) (*Maintainer, error) {
	cells, err := Cells(area, sites)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		area:  area,
		sites: append([]geom.Point(nil), sites...),
		cells: cells,
		alive: make([]bool, len(sites)),
		n:     len(sites),
		grid:  newSiteGrid(area, sites),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	for i, c := range cells {
		m.raiseRadius(maxDistTo(c, sites[i]))
	}
	return m, nil
}

func (m *Maintainer) raiseRadius(r float64) {
	if r > m.maxRadius {
		m.maxRadius = r
	}
}

// maybeRegrid re-dimensions the grid when the live population has drifted
// far from what the buckets were sized for.
func (m *Maintainer) maybeRegrid() {
	if m.n <= 4*m.grid.builtFor && 4*m.n >= m.grid.builtFor {
		return
	}
	g := dimensionGrid(m.area, m.n)
	for j, alive := range m.alive {
		if alive {
			g.insert(j, m.sites[j])
		}
	}
	m.grid = g
}

// Len returns the number of live sites.
func (m *Maintainer) Len() int { return m.n }

// Site returns the location of site id (valid ids only).
func (m *Maintainer) Site(id int) (geom.Point, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return geom.Point{}, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.sites[id], nil
}

// Cell returns the current valid scope of site id.
func (m *Maintainer) Cell(id int) (geom.Polygon, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return nil, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.cells[id].Clone(), nil
}

// Add inserts a new site and returns its id. Only the cells the new site's
// scope carves territory from are touched.
func (m *Maintainer) Add(p geom.Point) (int, error) {
	if !m.area.Contains(p) {
		return 0, fmt.Errorf("voronoi: site %v outside the service area", p)
	}
	// The new cell: clip the area against bisectors, nearest-first. A
	// zero-distance candidate is a duplicate of a live site.
	cell := m.area.Polygon()
	it := m.grid.near(m.sites, p, nil)
	for {
		j, d2, ok := it.next()
		if !ok {
			break
		}
		d := math.Sqrt(d2)
		if d < 1e-9 {
			return 0, fmt.Errorf("voronoi: duplicate of live site %d", j)
		}
		if d/2 > maxDistTo(cell, p) {
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(p, m.sites[j]))
		if cell == nil {
			return 0, fmt.Errorf("voronoi: new site %v has an empty scope (near-duplicate?)", p)
		}
	}
	// Clip every neighbor that loses territory: one half-plane each. A site
	// farther than twice the largest live cell radius cannot be reached by
	// the new scope, and neither can anything beyond it.
	it = m.grid.near(m.sites, p, it.buffer())
	for {
		j, d2, ok := it.next()
		if !ok {
			break
		}
		d := math.Sqrt(d2)
		if d/2 > m.maxRadius {
			break
		}
		if d/2 > maxDistTo(m.cells[j], m.sites[j]) {
			continue // the new site cannot reach cell j
		}
		clipped := geom.ClipHalfPlane(m.cells[j], geom.Bisector(m.sites[j], p))
		if clipped == nil {
			return 0, fmt.Errorf("voronoi: site %d's scope vanished (near-duplicate insert?)", j)
		}
		m.cells[j] = clipped
	}
	id := len(m.sites)
	m.sites = append(m.sites, p)
	m.cells = append(m.cells, cell)
	m.alive = append(m.alive, true)
	m.n++
	m.grid.insert(id, p)
	m.raiseRadius(maxDistTo(cell, p))
	m.maybeRegrid()
	return id, nil
}

// Remove deletes a site; its territory is redistributed among the sites
// whose bisectors could have bounded the removed cell, which are rebuilt.
func (m *Maintainer) Remove(id int) error {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return fmt.Errorf("voronoi: no live site %d", id)
	}
	if m.n == 1 {
		return fmt.Errorf("voronoi: cannot remove the last site")
	}
	s := m.sites[id]
	reach := 2 * maxDistTo(m.cells[id], s)
	m.alive[id] = false
	m.n--
	m.grid.remove(id, s)
	it := m.grid.near(m.sites, s, nil)
	for {
		j, d2, ok := it.next()
		if !ok {
			break
		}
		if math.Sqrt(d2) > reach {
			break // too far to have bordered the removed cell
		}
		cell, err := m.computeCell(j)
		if err != nil {
			m.alive[id] = true
			m.n++
			m.grid.insert(id, s)
			return err
		}
		m.cells[j] = cell
		m.raiseRadius(maxDistTo(cell, m.sites[j]))
	}
	m.cells[id] = nil
	m.maybeRegrid()
	return nil
}

// Move relocates a live site (remove + add semantics with a stable id is
// not possible without invalidating neighbors anyway, so Move returns the
// new id).
func (m *Maintainer) Move(id int, to geom.Point) (int, error) {
	if err := m.Remove(id); err != nil {
		return 0, err
	}
	return m.Add(to)
}

// computeCell rebuilds one cell from scratch with nearest-first pruning.
func (m *Maintainer) computeCell(id int) (geom.Polygon, error) {
	me := m.sites[id]
	cell := m.area.Polygon()
	it := m.grid.near(m.sites, me, nil)
	for {
		j, d2, ok := it.next()
		if !ok {
			break
		}
		if j == id {
			continue
		}
		if math.Sqrt(d2)/2 > maxDistTo(cell, me) {
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(me, m.sites[j]))
		if cell == nil {
			return nil, fmt.Errorf("voronoi: cell of site %d vanished", id)
		}
	}
	return cell, nil
}

// LiveSites returns the live sites and their ids.
func (m *Maintainer) LiveSites() (ids []int, sites []geom.Point) {
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			sites = append(sites, m.sites[j])
		}
	}
	return ids, sites
}

// Snapshot assembles the current scopes into a validated subdivision for
// index building. The returned id slice maps region index -> site id.
func (m *Maintainer) Snapshot() (*region.Subdivision, []int, error) {
	ids := make([]int, 0, m.n)
	polys := make([]geom.Polygon, 0, m.n)
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			polys = append(polys, m.cells[j])
		}
	}
	sub, err := region.New(m.area, polys)
	if err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot: %w", err)
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot invalid: %w", err)
	}
	return sub, ids, nil
}
