package voronoi

import (
	"fmt"
	"math"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Maintainer keeps a set of Voronoi valid scopes up to date as data
// instances appear and disappear between broadcast cycles, recomputing only
// the affected cells. Site ids are stable (removal leaves a tombstone), so
// the broadcast server can keep bucket numbering consistent.
//
// Every touched cell is rebuilt from scratch through the same nearest-first
// clip sequence Cells uses, and per-cell build metadata (cellMeta) decides
// exactly which cells an update can touch, so maintained cells are
// bit-identical to a full rebuild of the live site set — the invariant the
// live broadcast swap (stream.Swapper) relies on, pinned by
// TestMaintainerBitIdenticalProperty.
type Maintainer struct {
	area  geom.Rect
	sites []geom.Point
	cells []geom.Polygon
	meta  []cellMeta
	alive []bool
	n     int // alive count

	grid *siteGrid
}

// cellMeta records how a cell was built: the candidate sites actually
// clipped against (in nearest-first order) and the squared distance of the
// candidate that triggered the radius early-exit (+Inf when the enumeration
// was exhausted, in which case every live site is in clipped). Together
// they characterize exactly which site mutations can alter the cell's
// bytes:
//
//   - every clipped candidate lies strictly nearer than the break
//     candidate, and breakDist/2 exceeds the final cell's circumradius, so
//     a site added at or beyond the break distance is never clipped and
//     leaves the nearest-first clip sequence — hence the exact float64
//     vertices — untouched;
//   - a removed site the cell never clipped was enumerated at or after the
//     break (or never), so removing it cannot change the sequence either.
//
// Cells failing these tests are rebuilt from scratch, which re-establishes
// exact metadata for the new site set.
type cellMeta struct {
	clipped    []int32
	breakDist2 float64
}

// hasClipped reports whether site id was part of the cell's clip sequence.
func (c *cellMeta) hasClipped(id int) bool {
	for _, j := range c.clipped {
		if int(j) == id {
			return true
		}
	}
	return false
}

// NewMaintainer builds the initial diagram.
func NewMaintainer(area geom.Rect, sites []geom.Point) (*Maintainer, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("voronoi: no sites")
	}
	for i, s := range sites {
		if !area.Contains(s) {
			return nil, fmt.Errorf("voronoi: site %d (%v) outside service area", i, s)
		}
	}
	m := &Maintainer{
		area:  area,
		sites: append([]geom.Point(nil), sites...),
		cells: make([]geom.Polygon, len(sites)),
		meta:  make([]cellMeta, len(sites)),
		alive: make([]bool, len(sites)),
		n:     len(sites),
		grid:  newSiteGrid(area, sites),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	for i := range sites {
		cell, meta, err := m.computeCell(i)
		if err != nil {
			return nil, err
		}
		m.cells[i], m.meta[i] = cell, meta
	}
	return m, nil
}

// maybeRegrid re-dimensions the grid when the live population has drifted
// far from what the buckets were sized for.
func (m *Maintainer) maybeRegrid() {
	if m.n <= 4*m.grid.builtFor && 4*m.n >= m.grid.builtFor {
		return
	}
	g := dimensionGrid(m.area, m.n)
	for j, alive := range m.alive {
		if alive {
			g.insert(j, m.sites[j])
		}
	}
	m.grid = g
}

// Len returns the number of live sites.
func (m *Maintainer) Len() int { return m.n }

// Site returns the location of site id (valid ids only).
func (m *Maintainer) Site(id int) (geom.Point, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return geom.Point{}, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.sites[id], nil
}

// Cell returns the current valid scope of site id.
func (m *Maintainer) Cell(id int) (geom.Polygon, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return nil, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.cells[id].Clone(), nil
}

// Add inserts a new site and returns its id. Only the cells whose clip
// sequence the new site can enter — those whose break candidate lies
// farther than the new site — are rebuilt.
func (m *Maintainer) Add(p geom.Point) (int, error) {
	if !m.area.Contains(p) {
		return 0, fmt.Errorf("voronoi: site %v outside the service area", p)
	}
	if j := m.grid.nearestIn(m.sites, p); j >= 0 && m.sites[j].Dist(p) < 1e-9 {
		return 0, fmt.Errorf("voronoi: duplicate of live site %d", j)
	}
	var affected []int
	for j, alive := range m.alive {
		if alive && p.Dist2(m.sites[j]) < m.meta[j].breakDist2 {
			affected = append(affected, j)
		}
	}
	id := len(m.sites)
	m.sites = append(m.sites, p)
	m.cells = append(m.cells, nil)
	m.meta = append(m.meta, cellMeta{})
	m.alive = append(m.alive, true)
	m.n++
	m.grid.insert(id, p)
	rollback := func() {
		m.grid.remove(id, p)
		m.sites = m.sites[:id]
		m.cells = m.cells[:id]
		m.meta = m.meta[:id]
		m.alive = m.alive[:id]
		m.n--
	}
	cell, meta, err := m.computeCell(id)
	if err != nil {
		rollback()
		return 0, fmt.Errorf("voronoi: new site %v has an empty scope (near-duplicate?)", p)
	}
	m.cells[id], m.meta[id] = cell, meta
	var touched []int
	for _, j := range affected {
		nc, nm, err := m.computeCell(j)
		if err != nil {
			// Undo the insert, then restore the neighbors already rebuilt
			// with the doomed site present.
			rollback()
			for _, k := range touched {
				if rc, rm, rerr := m.computeCell(k); rerr == nil {
					m.cells[k], m.meta[k] = rc, rm
				}
			}
			return 0, err
		}
		m.cells[j], m.meta[j] = nc, nm
		touched = append(touched, j)
	}
	m.maybeRegrid()
	return id, nil
}

// Remove deletes a site; exactly the cells that clipped against it — the
// only ones whose clip sequence its absence can alter — are rebuilt.
func (m *Maintainer) Remove(id int) error {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return fmt.Errorf("voronoi: no live site %d", id)
	}
	if m.n == 1 {
		return fmt.Errorf("voronoi: cannot remove the last site")
	}
	var affected []int
	for j, alive := range m.alive {
		if alive && j != id && m.meta[j].hasClipped(id) {
			affected = append(affected, j)
		}
	}
	s := m.sites[id]
	m.alive[id] = false
	m.n--
	m.grid.remove(id, s)
	var touched []int
	for _, j := range affected {
		cell, meta, err := m.computeCell(j)
		if err != nil {
			// Restore the site, then the cells already rebuilt without it.
			m.alive[id] = true
			m.n++
			m.grid.insert(id, s)
			for _, k := range touched {
				if rc, rm, rerr := m.computeCell(k); rerr == nil {
					m.cells[k], m.meta[k] = rc, rm
				}
			}
			return err
		}
		m.cells[j], m.meta[j] = cell, meta
		touched = append(touched, j)
	}
	m.cells[id], m.meta[id] = nil, cellMeta{}
	m.maybeRegrid()
	return nil
}

// Move relocates a live site (remove + add semantics with a stable id is
// not possible without invalidating neighbors anyway, so Move returns the
// new id).
func (m *Maintainer) Move(id int, to geom.Point) (int, error) {
	if err := m.Remove(id); err != nil {
		return 0, err
	}
	return m.Add(to)
}

// computeCell rebuilds one cell from scratch with nearest-first pruning —
// arithmetic-identical to the clip loop Cells runs — and records the build
// metadata that future updates consult.
func (m *Maintainer) computeCell(id int) (geom.Polygon, cellMeta, error) {
	me := m.sites[id]
	cell := m.area.Polygon()
	meta := cellMeta{breakDist2: math.Inf(1)}
	it := m.grid.near(m.sites, me, nil)
	for {
		j, d2, ok := it.next()
		if !ok {
			break
		}
		if j == id {
			continue
		}
		d := math.Sqrt(d2)
		if d == 0 {
			return nil, meta, fmt.Errorf("voronoi: duplicate sites %d and %d at %v", id, j, me)
		}
		if d/2 > maxDistTo(cell, me) {
			meta.breakDist2 = d2
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(me, m.sites[j]))
		if cell == nil {
			return nil, meta, fmt.Errorf("voronoi: cell of site %d vanished", id)
		}
		meta.clipped = append(meta.clipped, int32(j))
	}
	return cell, meta, nil
}

// LiveSites returns the live sites and their ids.
func (m *Maintainer) LiveSites() (ids []int, sites []geom.Point) {
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			sites = append(sites, m.sites[j])
		}
	}
	return ids, sites
}

// Snapshot assembles the current scopes into a validated subdivision for
// index building. The returned id slice maps region index -> site id.
func (m *Maintainer) Snapshot() (*region.Subdivision, []int, error) {
	ids := make([]int, 0, m.n)
	polys := make([]geom.Polygon, 0, m.n)
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			polys = append(polys, m.cells[j])
		}
	}
	sub, err := region.New(m.area, polys)
	if err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot: %w", err)
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot invalid: %w", err)
	}
	return sub, ids, nil
}
