package voronoi

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Maintainer keeps a set of Voronoi valid scopes up to date as data
// instances appear and disappear between broadcast cycles, recomputing only
// the affected cells. Site ids are stable (removal leaves a tombstone, and
// Move keeps the id in place), so the broadcast server can keep bucket
// numbering consistent and downstream consumers can use the id as a stable
// key across generations.
//
// Every touched cell is rebuilt from scratch through the same nearest-first
// clip sequence Cells uses, and per-cell build metadata (cellMeta) decides
// exactly which cells an update can touch, so maintained cells are
// bit-identical to a full rebuild of the live site set — the invariant the
// live broadcast swap (stream.Swapper) relies on, pinned by
// TestMaintainerBitIdenticalProperty.
//
// The maintainer additionally reports, per batch (BeginBatch/BatchDelta),
// exactly which live cells' polygon bytes changed — a rebuilt cell whose
// vertices come out identical is not dirty — which is what makes the
// incremental index rebuild downstream (core.Incremental) cheap: the dirty
// set after a small batch is the touched neighborhood, not the diagram.
type Maintainer struct {
	area  geom.Rect
	sites []geom.Point
	cells []geom.Polygon
	meta  []cellMeta
	alive []bool
	n     int // alive count

	// breaks mirrors meta[j].breakDist2 in a flat array so the Add/Move
	// affected-cell scan is one cache-friendly pass.
	breaks []float64
	// clippedBy[s] lists the cells whose clip sequence includes site s —
	// the reverse of meta[j].clipped — so Remove/Move find their affected
	// set in O(degree) instead of scanning every live cell's metadata.
	clippedBy [][]int32

	// Batch-dirty tracking (BeginBatch / BatchDelta).
	dirtyMark  []int32 // per site id, stamped with dirtyEpoch when dirty
	dirtyEpoch int32
	dirtyList  []int
	baseAlive  []bool // alive[] snapshot at BeginBatch
	removed    []int  // ids live at BeginBatch, dead now
	rebuilds   int    // cells recomputed since BeginBatch (incl. clean results)

	grid *siteGrid
}

// cellMeta records how a cell was built: the candidate sites actually
// clipped against (in nearest-first order) and the squared distance of the
// candidate that triggered the radius early-exit (+Inf when the enumeration
// was exhausted, in which case every live site is in clipped). Together
// they characterize exactly which site mutations can alter the cell's
// bytes:
//
//   - every clipped candidate lies strictly nearer than the break
//     candidate, and breakDist/2 exceeds the final cell's circumradius, so
//     a site added at or beyond the break distance is never clipped and
//     leaves the nearest-first clip sequence — hence the exact float64
//     vertices — untouched;
//   - a removed site the cell never clipped was enumerated at or after the
//     break (or never), so removing it cannot change the sequence either.
//
// Cells failing these tests are rebuilt from scratch, which re-establishes
// exact metadata for the new site set.
type cellMeta struct {
	clipped    []int32
	breakDist2 float64
}

// Area returns the service area the diagram tiles.
func (m *Maintainer) Area() geom.Rect { return m.area }

// NewMaintainer builds the initial diagram.
func NewMaintainer(area geom.Rect, sites []geom.Point) (*Maintainer, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("voronoi: no sites")
	}
	for i, s := range sites {
		if !area.Contains(s) {
			return nil, fmt.Errorf("voronoi: site %d (%v) outside service area", i, s)
		}
	}
	m := &Maintainer{
		area:      area,
		sites:     append([]geom.Point(nil), sites...),
		cells:     make([]geom.Polygon, len(sites)),
		meta:      make([]cellMeta, len(sites)),
		alive:     make([]bool, len(sites)),
		breaks:    make([]float64, len(sites)),
		clippedBy: make([][]int32, len(sites)),
		dirtyMark: make([]int32, len(sites)),
		n:         len(sites),
		grid:      newSiteGrid(area, sites),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	for i := range sites {
		cell, meta, err := m.computeCell(i)
		if err != nil {
			return nil, err
		}
		m.setCell(i, cell, meta)
	}
	m.BeginBatch()
	return m, nil
}

// setCell installs a freshly computed cell, maintaining the reverse clip
// index, the flat break-distance mirror, and the batch-dirty set. When the
// rebuilt polygon is bit-identical to the current one, the old slice is
// kept (so downstream pointer comparisons keep working) and the cell is not
// marked dirty; the metadata is still replaced, because an identical
// polygon can arise from a different clip sequence.
func (m *Maintainer) setCell(j int, cell geom.Polygon, meta cellMeta) {
	m.rebuilds++
	for _, s := range m.meta[j].clipped {
		m.clippedBy[s] = dropID(m.clippedBy[s], int32(j))
	}
	for _, s := range meta.clipped {
		m.clippedBy[s] = append(m.clippedBy[s], int32(j))
	}
	if !polyEq(m.cells[j], cell) {
		m.cells[j] = cell
		m.markDirty(j)
	}
	m.meta[j] = meta
	m.breaks[j] = meta.breakDist2
}

// clearCell tears down a removed cell's bookkeeping.
func (m *Maintainer) clearCell(j int) {
	for _, s := range m.meta[j].clipped {
		m.clippedBy[s] = dropID(m.clippedBy[s], int32(j))
	}
	m.cells[j], m.meta[j], m.breaks[j] = nil, cellMeta{}, 0
}

func dropID(s []int32, v int32) []int32 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

func polyEq(a, b geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return len(a) > 0
}

func (m *Maintainer) markDirty(j int) {
	if m.dirtyMark[j] == m.dirtyEpoch {
		return
	}
	m.dirtyMark[j] = m.dirtyEpoch
	m.dirtyList = append(m.dirtyList, j)
}

// BeginBatch starts a new dirty-tracking window: BatchDelta will report the
// cells changed and the sites removed from this point on. NewMaintainer
// begins an initial batch, and stream.Swapper begins one per Apply.
func (m *Maintainer) BeginBatch() {
	m.dirtyEpoch++
	m.dirtyList = m.dirtyList[:0]
	m.removed = m.removed[:0]
	m.rebuilds = 0
	m.baseAlive = append(m.baseAlive[:0], m.alive...)
}

// BatchDelta reports the current batch's net effect on the live cell set:
// dirty is the sorted ids of live cells whose polygon bytes differ from the
// batch start (including sites inserted during the batch), and removed is
// the sorted ids of sites that were live at the batch start and are gone
// now. A site added and removed within one batch appears in neither.
func (m *Maintainer) BatchDelta() (dirty, removed []int) {
	for _, j := range m.dirtyList {
		if m.alive[j] {
			dirty = append(dirty, j)
		}
	}
	sort.Ints(dirty)
	for _, j := range m.removed {
		if j < len(m.baseAlive) && m.baseAlive[j] && !m.alive[j] {
			removed = append(removed, j)
		}
	}
	sort.Ints(removed)
	return dirty, removed
}

// BatchRebuilds reports how many cell recomputations the current batch ran,
// including rebuilds that came out bit-identical (observability: the
// conservative affected-set size vs the true dirty set).
func (m *Maintainer) BatchRebuilds() int { return m.rebuilds }

// maybeRegrid re-dimensions the grid when the live population has drifted
// far from what the buckets were sized for.
func (m *Maintainer) maybeRegrid() {
	if m.n <= 4*m.grid.builtFor && 4*m.n >= m.grid.builtFor {
		return
	}
	g := dimensionGrid(m.area, m.n)
	for j, alive := range m.alive {
		if alive {
			g.insert(j, m.sites[j])
		}
	}
	m.grid = g
}

// Len returns the number of live sites.
func (m *Maintainer) Len() int { return m.n }

// Site returns the location of site id (valid ids only).
func (m *Maintainer) Site(id int) (geom.Point, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return geom.Point{}, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.sites[id], nil
}

// Cell returns the current valid scope of site id.
func (m *Maintainer) Cell(id int) (geom.Polygon, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return nil, fmt.Errorf("voronoi: no live site %d", id)
	}
	return m.cells[id].Clone(), nil
}

// grow extends the per-site-id arrays for a new id.
func (m *Maintainer) grow(p geom.Point) int {
	id := len(m.sites)
	m.sites = append(m.sites, p)
	m.cells = append(m.cells, nil)
	m.meta = append(m.meta, cellMeta{})
	m.alive = append(m.alive, true)
	m.breaks = append(m.breaks, 0)
	m.clippedBy = append(m.clippedBy, nil)
	m.dirtyMark = append(m.dirtyMark, 0)
	return id
}

// addAffected returns the live cells whose clip sequence a site at p can
// enter: those whose break candidate lies farther than p.
func (m *Maintainer) addAffected(p geom.Point) []int {
	var affected []int
	for j, alive := range m.alive {
		if alive && p.Dist2(m.sites[j]) < m.breaks[j] {
			affected = append(affected, j)
		}
	}
	return affected
}

// Add inserts a new site and returns its id. Only the cells whose clip
// sequence the new site can enter — those whose break candidate lies
// farther than the new site — are rebuilt.
func (m *Maintainer) Add(p geom.Point) (int, error) {
	if !m.area.Contains(p) {
		return 0, fmt.Errorf("voronoi: site %v outside the service area", p)
	}
	if j := m.grid.nearestIn(m.sites, p); j >= 0 && m.sites[j].Dist(p) < 1e-9 {
		return 0, fmt.Errorf("voronoi: duplicate of live site %d", j)
	}
	affected := m.addAffected(p)
	id := m.grow(p)
	m.n++
	m.grid.insert(id, p)
	rollback := func() {
		m.grid.remove(id, p)
		m.sites = m.sites[:id]
		m.cells = m.cells[:id]
		m.meta = m.meta[:id]
		m.alive = m.alive[:id]
		m.breaks = m.breaks[:id]
		m.clippedBy = m.clippedBy[:id]
		m.dirtyMark = m.dirtyMark[:id]
		m.n--
	}
	cell, meta, err := m.computeCell(id)
	if err != nil {
		rollback()
		return 0, fmt.Errorf("voronoi: new site %v has an empty scope (near-duplicate?)", p)
	}
	m.setCell(id, cell, meta)
	var touched []int
	for _, j := range affected {
		nc, nm, err := m.computeCell(j)
		if err != nil {
			// Undo the insert, then restore the neighbors already rebuilt
			// with the doomed site present.
			m.clearCell(id)
			rollback()
			for _, k := range touched {
				if rc, rm, rerr := m.computeCell(k); rerr == nil {
					m.setCell(k, rc, rm)
				}
			}
			return 0, err
		}
		m.setCell(j, nc, nm)
		touched = append(touched, j)
	}
	m.markDirty(id)
	m.maybeRegrid()
	return id, nil
}

// Remove deletes a site; exactly the cells that clipped against it — the
// only ones whose clip sequence its absence can alter — are rebuilt.
func (m *Maintainer) Remove(id int) error {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return fmt.Errorf("voronoi: no live site %d", id)
	}
	if m.n == 1 {
		return fmt.Errorf("voronoi: cannot remove the last site")
	}
	affected := append([]int32(nil), m.clippedBy[id]...)
	sort.Slice(affected, func(a, b int) bool { return affected[a] < affected[b] })
	s := m.sites[id]
	m.alive[id] = false
	m.n--
	m.grid.remove(id, s)
	var touched []int
	for _, j := range affected {
		cell, meta, err := m.computeCell(int(j))
		if err != nil {
			// Restore the site, then the cells already rebuilt without it.
			m.alive[id] = true
			m.n++
			m.grid.insert(id, s)
			for _, k := range touched {
				if rc, rm, rerr := m.computeCell(k); rerr == nil {
					m.setCell(k, rc, rm)
				}
			}
			return err
		}
		m.setCell(int(j), cell, meta)
		touched = append(touched, int(j))
	}
	m.clearCell(id)
	m.removed = append(m.removed, id)
	m.maybeRegrid()
	return nil
}

// Move relocates a live site, keeping its id: downstream consumers see the
// same stable key with a changed scope instead of a remove/add pair, so
// region numbering — and with it most of the broadcast content — is
// preserved across a move batch. The returned id always equals the input id
// on success. The rebuilt set is the union of the cells the removal can
// alter (those that clipped the site) and the cells the re-insertion can
// enter (those whose break candidate lies farther than the new position),
// each rebuilt once against the final site set, so the result is
// bit-identical to a from-scratch diagram of the final positions.
func (m *Maintainer) Move(id int, to geom.Point) (int, error) {
	if id < 0 || id >= len(m.sites) || !m.alive[id] {
		return 0, fmt.Errorf("voronoi: no live site %d", id)
	}
	if !m.area.Contains(to) {
		return 0, fmt.Errorf("voronoi: site %v outside the service area", to)
	}
	from := m.sites[id]
	if j := m.grid.nearestIn(m.sites, to); j >= 0 && j != id && m.sites[j].Dist(to) < 1e-9 {
		return 0, fmt.Errorf("voronoi: duplicate of live site %d", j)
	}
	// Affected set, computed against the pre-move state: cells the departure
	// can alter, plus cells the arrival can enter.
	seen := map[int]bool{int(id): true}
	var affected []int
	for _, j := range m.clippedBy[id] {
		if !seen[int(j)] {
			seen[int(j)] = true
			affected = append(affected, int(j))
		}
	}
	for _, j := range m.addAffected(to) {
		if !seen[j] {
			seen[j] = true
			affected = append(affected, j)
		}
	}
	sort.Ints(affected)

	m.grid.remove(id, from)
	m.sites[id] = to
	m.grid.insert(id, to)
	rollback := func(touched []int) {
		m.grid.remove(id, to)
		m.sites[id] = from
		m.grid.insert(id, from)
		if rc, rm, rerr := m.computeCell(id); rerr == nil {
			m.setCell(id, rc, rm)
		}
		for _, k := range touched {
			if rc, rm, rerr := m.computeCell(k); rerr == nil {
				m.setCell(k, rc, rm)
			}
		}
	}
	cell, meta, err := m.computeCell(id)
	if err != nil {
		rollback(nil)
		return 0, fmt.Errorf("voronoi: moved site %v has an empty scope (near-duplicate?)", to)
	}
	m.setCell(id, cell, meta)
	var touched []int
	for _, j := range affected {
		nc, nm, err := m.computeCell(j)
		if err != nil {
			rollback(touched)
			return 0, err
		}
		m.setCell(j, nc, nm)
		touched = append(touched, j)
	}
	return id, nil
}

// computeCell rebuilds one cell from scratch with nearest-first pruning —
// arithmetic-identical to the clip loop Cells runs — and records the build
// metadata that future updates consult.
func (m *Maintainer) computeCell(id int) (geom.Polygon, cellMeta, error) {
	me := m.sites[id]
	cell := m.area.Polygon()
	meta := cellMeta{breakDist2: math.Inf(1)}
	it := m.grid.near(m.sites, me, nil)
	for {
		j, d2, ok := it.next()
		if !ok {
			break
		}
		if j == id {
			continue
		}
		d := math.Sqrt(d2)
		if d == 0 {
			return nil, meta, fmt.Errorf("voronoi: duplicate sites %d and %d at %v", id, j, me)
		}
		if d/2 > maxDistTo(cell, me) {
			meta.breakDist2 = d2
			break
		}
		cell = geom.ClipHalfPlane(cell, geom.Bisector(me, m.sites[j]))
		if cell == nil {
			return nil, meta, fmt.Errorf("voronoi: cell of site %d vanished", id)
		}
		meta.clipped = append(meta.clipped, int32(j))
	}
	return cell, meta, nil
}

// LiveSites returns the live sites and their ids.
func (m *Maintainer) LiveSites() (ids []int, sites []geom.Point) {
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			sites = append(sites, m.sites[j])
		}
	}
	return ids, sites
}

// LiveCells returns the live cell polygons in site-id order together with
// their site ids, without building a subdivision. The returned polygon
// slices are the maintainer's own: they are never mutated in place (every
// rebuild installs a fresh slice), so callers may hold them across future
// updates, but must not modify them.
func (m *Maintainer) LiveCells() (ids []int, polys []geom.Polygon) {
	ids = make([]int, 0, m.n)
	polys = make([]geom.Polygon, 0, m.n)
	for j, alive := range m.alive {
		if alive {
			ids = append(ids, j)
			polys = append(polys, m.cells[j])
		}
	}
	return ids, polys
}

// Snapshot assembles the current scopes into a validated subdivision for
// index building. The returned id slice maps region index -> site id.
func (m *Maintainer) Snapshot() (*region.Subdivision, []int, error) {
	ids, polys := m.LiveCells()
	sub, err := region.New(m.area, polys)
	if err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot: %w", err)
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("voronoi: snapshot invalid: %w", err)
	}
	return sub, ids, nil
}
