// Package experiment is the paper's evaluation harness (Section 5): it
// builds the four index structures over the three datasets, interleaves
// each with the data under the (1, m) broadcast organization with the
// optimal m, drives Monte Carlo point queries through the client access
// protocol, and reports the access-latency, tuning-time and
// indexing-efficiency series of Figures 10-13.
package experiment

import (
	"fmt"
	"math/rand"
	"sync"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/rstar"
	"airindex/internal/traptree"
	"airindex/internal/triantree"
	"airindex/internal/wire"
)

// Index is the uniform view the harness takes of a paged air index.
type Index interface {
	// Name is the curve label ("D-tree", "R*-tree", ...).
	Name() string
	// IndexPackets is the broadcast size of the index segment in packets.
	IndexPackets() int
	// SizeBytes is the occupied (pre-padding) index size in bytes.
	SizeBytes() int
	// Locate resolves a point query, returning the data region id and the
	// index-segment packet offsets downloaded, in access order.
	Locate(p geom.Point) (int, []int)
}

// Built bundles the packet-size-independent structures for one dataset so
// sweeps over packet capacities reuse them.
type Built struct {
	Data  dataset.Dataset
	Sub   *region.Subdivision
	DTree *core.Tree
	Trian *triantree.Tree
	Trap  *traptree.Map

	mu         sync.Mutex
	indexCache map[int]*indexCacheEntry
}

// indexCacheEntry memoizes Indexes for one packet capacity. The entry is
// created under Built.mu but built inside its own Once, so concurrent
// sweeps over different capacities page in parallel while repeated
// requests for the same capacity share one build.
type indexCacheEntry struct {
	once    sync.Once
	indexes []Index
	err     error
}

// BuildOpt tunes Build/BuildWithWorkers.
type BuildOpt func(*buildCfg)

type buildCfg struct {
	baselines bool
}

// WithoutBaselines skips the serial trian-tree and trap-tree baseline
// builders — at 50k sites they cost ~24 s each for indexes the product
// path never serves. A Built constructed without baselines pages only the
// D-tree and R*-tree families; Trian and Trap stay nil.
func WithoutBaselines() BuildOpt {
	return func(c *buildCfg) { c.baselines = false }
}

// Build constructs the subdivision and the packet-independent index
// structures for a dataset. The trap-tree's random insertion order derives
// from seed.
func Build(ds dataset.Dataset, seed int64, opts ...BuildOpt) (*Built, error) {
	return BuildWithWorkers(ds, seed, 0, opts...)
}

// BuildWithWorkers is Build with an explicit D-tree build worker count
// (<= 0 means one per CPU; the tree is identical at any count). The
// subdivision is derived first — every family consumes it — and the
// packet-independent index families then build concurrently; each family is
// deterministic on its own, so the concurrency never changes any result.
func BuildWithWorkers(ds dataset.Dataset, seed int64, buildWorkers int, opts ...BuildOpt) (*Built, error) {
	cfg := buildCfg{baselines: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	sub, err := ds.Subdivision()
	if err != nil {
		return nil, err
	}
	b := &Built{Data: ds, Sub: sub}
	builders := []func() error{
		func() error {
			dt, err := core.Build(sub, core.WithBuildWorkers(buildWorkers))
			if err != nil {
				return fmt.Errorf("%s: d-tree: %w", ds.Name, err)
			}
			b.DTree = dt
			return nil
		},
	}
	if cfg.baselines {
		builders = append(builders,
			func() error {
				tr, err := triantree.Build(sub)
				if err != nil {
					return fmt.Errorf("%s: trian-tree: %w", ds.Name, err)
				}
				b.Trian = tr
				return nil
			},
			func() error {
				tp, err := traptree.Build(sub, rand.New(rand.NewSource(seed)))
				if err != nil {
					return fmt.Errorf("%s: trap-tree: %w", ds.Name, err)
				}
				b.Trap = tp
				return nil
			},
		)
	}
	if err := gather(builders...); err != nil {
		return nil, err
	}
	return b, nil
}

// gather runs the given tasks concurrently and waits for all of them;
// the error of the lowest-indexed failure is returned, so the surfaced
// error does not depend on goroutine scheduling.
func gather(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Indexes pages the structures for one packet capacity (and builds the
// capacity-dependent R*-tree), in the paper's comparison order. Results
// are cached per capacity; the returned slice is shared, so callers must
// treat it as read-only.
func (b *Built) Indexes(capacity int) ([]Index, error) {
	b.mu.Lock()
	if b.indexCache == nil {
		b.indexCache = make(map[int]*indexCacheEntry)
	}
	e, ok := b.indexCache[capacity]
	if !ok {
		e = &indexCacheEntry{}
		b.indexCache[capacity] = e
	}
	b.mu.Unlock()
	e.once.Do(func() { e.indexes, e.err = b.buildIndexes(capacity) })
	return e.indexes, e.err
}

// buildIndexes pages the index families for one capacity concurrently;
// paging is read-only over the built structures and the R*-tree bulk-load
// is deterministic, so the slice is identical to a sequential build. A
// Built constructed with WithoutBaselines pages only the D-tree and
// R*-tree; the two baseline families are skipped.
func (b *Built) buildIndexes(capacity int) ([]Index, error) {
	var (
		dp  *core.Paged
		trp *triantree.Paged
		tpp *traptree.Paged
		ra  *rstar.AirIndex
	)
	tasks := []func() error{
		func() (err error) {
			if dp, err = b.DTree.Page(wire.DTreeParams(capacity)); err != nil {
				return fmt.Errorf("d-tree page(%d): %w", capacity, err)
			}
			return nil
		},
		func() (err error) {
			if ra, err = rstar.BuildAir(b.Sub, wire.RStarParams(capacity)); err != nil {
				return fmt.Errorf("r*-tree(%d): %w", capacity, err)
			}
			return nil
		},
	}
	if b.Trian != nil && b.Trap != nil {
		tasks = append(tasks,
			func() (err error) {
				if trp, err = b.Trian.Page(wire.DecompositionParams(capacity)); err != nil {
					return fmt.Errorf("trian-tree page(%d): %w", capacity, err)
				}
				return nil
			},
			func() (err error) {
				if tpp, err = b.Trap.Page(wire.DecompositionParams(capacity)); err != nil {
					return fmt.Errorf("trap-tree page(%d): %w", capacity, err)
				}
				return nil
			},
		)
	}
	if err := gather(tasks...); err != nil {
		return nil, err
	}
	// The D-tree is served from its flat arena (the product fast path); the
	// pointer tree stays behind as construction intermediate and oracle.
	fp := dp.Flatten()
	if trp == nil {
		return []Index{dtreeIndex{fp}, rstarIndex{ra}}, nil
	}
	return []Index{
		dtreeIndex{fp},
		trianIndex{trp},
		trapIndex{tpp},
		rstarIndex{ra},
	}, nil
}

type dtreeIndex struct{ fp *core.FlatPaged }

func (d dtreeIndex) Name() string                     { return "D-tree" }
func (d dtreeIndex) IndexPackets() int                { return d.fp.IndexPackets() }
func (d dtreeIndex) SizeBytes() int                   { return d.fp.SizeBytes() }
func (d dtreeIndex) Locate(p geom.Point) (int, []int) { return d.fp.Locate(p) }
func (d dtreeIndex) LocateInto(p geom.Point, trace []int) (int, []int) {
	return d.fp.LocateInto(p, trace)
}

type trianIndex struct{ pg *triantree.Paged }

func (t trianIndex) Name() string                     { return "trian-tree" }
func (t trianIndex) IndexPackets() int                { return t.pg.IndexPackets() }
func (t trianIndex) SizeBytes() int                   { return t.pg.Layout.SizeBytes() }
func (t trianIndex) Locate(p geom.Point) (int, []int) { return t.pg.Locate(p) }
func (t trianIndex) LocateInto(p geom.Point, trace []int) (int, []int) {
	return t.pg.LocateInto(p, trace)
}

type trapIndex struct{ pg *traptree.Paged }

func (t trapIndex) Name() string                     { return "trap-tree" }
func (t trapIndex) IndexPackets() int                { return t.pg.IndexPackets() }
func (t trapIndex) SizeBytes() int                   { return t.pg.Layout.SizeBytes() }
func (t trapIndex) Locate(p geom.Point) (int, []int) { return t.pg.Locate(p) }
func (t trapIndex) LocateInto(p geom.Point, trace []int) (int, []int) {
	return t.pg.LocateInto(p, trace)
}

type rstarIndex struct{ a *rstar.AirIndex }

func (r rstarIndex) Name() string                     { return "R*-tree" }
func (r rstarIndex) IndexPackets() int                { return r.a.IndexPackets() }
func (r rstarIndex) SizeBytes() int                   { return r.a.SizeBytes() }
func (r rstarIndex) Locate(p geom.Point) (int, []int) { return r.a.Locate(p) }
func (r rstarIndex) LocateInto(p geom.Point, trace []int) (int, []int) {
	return r.a.LocateInto(p, trace)
}
