package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Metric selects which quantity of a Measurement a figure plots.
type Metric struct {
	Name   string
	Label  string
	Format string
	Get    func(Measurement) float64
}

// The paper's figures as metrics over the measurement set.
var (
	MetricNormLatency = Metric{
		Name: "fig10", Label: "expected access latency (normalized to optimal)",
		Format: "%8.3f", Get: func(m Measurement) float64 { return m.NormLatency },
	}
	MetricNormIndexSize = Metric{
		Name: "fig11", Label: "index size (normalized to database size)",
		Format: "%8.4f", Get: func(m Measurement) float64 { return m.NormIndexSize },
	}
	MetricTuneIndex = Metric{
		Name: "fig12", Label: "tuning time of the index search step (packets)",
		Format: "%8.3f", Get: func(m Measurement) float64 { return m.AvgTuneIndex },
	}
	MetricEfficiency = Metric{
		Name: "fig13", Label: "indexing efficiency",
		Format: "%8.2f", Get: func(m Measurement) float64 { return m.Efficiency },
	}
)

// IndexOrder is the paper's curve order.
var IndexOrder = []string{"D-tree", "trian-tree", "trap-tree", "R*-tree"}

// Datasets returns the distinct dataset names in first-seen order.
func Datasets(ms []Measurement) []string {
	var out []string
	seen := map[string]bool{}
	for _, m := range ms {
		if !seen[m.Dataset] {
			seen[m.Dataset] = true
			out = append(out, m.Dataset)
		}
	}
	return out
}

// Packets returns the sorted distinct packet capacities.
func Packets(ms []Measurement) []int {
	seen := map[int]bool{}
	for _, m := range ms {
		seen[m.Packet] = true
	}
	var out []int
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Table renders one dataset's series for a metric: rows are packet
// capacities, columns the index structures.
func Table(ms []Measurement, datasetName string, metric Metric) string {
	cell := map[[2]interface{}]Measurement{}
	indexSeen := map[string]bool{}
	for _, m := range ms {
		if m.Dataset != datasetName {
			continue
		}
		cell[[2]interface{}{m.Packet, m.Index}] = m
		indexSeen[m.Index] = true
	}
	var indexes []string
	for _, name := range IndexOrder {
		if indexSeen[name] {
			indexes = append(indexes, name)
			delete(indexSeen, name)
		}
	}
	var rest []string
	for name := range indexSeen {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	indexes = append(indexes, rest...)

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", datasetName, metric.Label)
	fmt.Fprintf(&b, "%-10s", "packet")
	for _, name := range indexes {
		fmt.Fprintf(&b, " %12s", name)
	}
	b.WriteByte('\n')
	for _, p := range Packets(ms) {
		fmt.Fprintf(&b, "%-10d", p)
		for _, name := range indexes {
			m, ok := cell[[2]interface{}{p, name}]
			if !ok {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			fmt.Fprintf(&b, " %12s", fmt.Sprintf(metric.Format, metric.Get(m)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure renders a whole figure (one table per dataset, the paper's (a),
// (b), (c) panels).
func Figure(ms []Measurement, metric Metric) string {
	var b strings.Builder
	for i, ds := range Datasets(ms) {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(Table(ms, ds, metric))
	}
	return b.String()
}

// CSV renders every measurement as comma-separated rows for external
// plotting.
func CSV(ms []Measurement) string {
	var b strings.Builder
	b.WriteString("dataset,index,packet,index_packets,index_bytes,data_packets,m," +
		"avg_latency,norm_latency,tune_index,tune_total,norm_index_size,efficiency," +
		"noindex_latency,noindex_tuning\n")
	for _, m := range ms {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.6f,%.4f,%.4f,%.4f\n",
			m.Dataset, m.Index, m.Packet, m.IndexPackets, m.IndexBytes, m.DataPackets, m.M,
			m.AvgLatency, m.NormLatency, m.AvgTuneIndex, m.AvgTuneTotal, m.NormIndexSize,
			m.Efficiency, m.NoIndexLatency, m.NoIndexTuning)
	}
	return b.String()
}
