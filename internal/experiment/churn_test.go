package experiment

import (
	"strings"
	"testing"

	"airindex/internal/dataset"
)

// TestChurnSweep pins the acceptance shape of the live-reconfiguration
// experiment: every query at every churn level resolves correctly against
// the generation it completed under (RunChurn fails otherwise), the static
// baseline sees no swaps and no restarts, and churned cells actually
// published generations.
func TestChurnSweep(t *testing.T) {
	ds := dataset.Uniform(40, 6100)
	levels := []int{0, 16, 48}
	ps, err := RunChurn(ds, 256, levels, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(levels) {
		t.Fatalf("got %d points, want %d", len(ps), len(levels))
	}
	base := ps[0]
	if base.Ops != 0 || base.Swaps != 0 {
		t.Fatalf("baseline cell saw %d ops, %d swaps; want 0, 0", base.Ops, base.Swaps)
	}
	if base.AvgEpochRestarts != 0 || base.RestartedFrac != 0 {
		t.Fatalf("baseline cell restarted: %+v", base)
	}
	for _, p := range ps[1:] {
		if p.Swaps == 0 {
			t.Errorf("churn level %d published no generations", p.Ops)
		}
		if p.AvgLatency <= 0 || p.AvgTuning <= 0 {
			t.Errorf("churn level %d: degenerate averages %+v", p.Ops, p)
		}
	}

	tables := ChurnTables(ps)
	if !strings.Contains(tables, "live reconfiguration cost") {
		t.Fatalf("tables missing header:\n%s", tables)
	}
	csv := ChurnCSV(ps)
	if got := strings.Count(csv, "\n"); got != len(ps)+1 {
		t.Fatalf("csv has %d lines, want %d", got, len(ps)+1)
	}
	if !strings.HasPrefix(csv, "dataset,ops,queries,swaps,") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}
