package experiment

import (
	"fmt"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/wire"
)

// Ablation variants of the D-tree, isolating the design choices DESIGN.md
// calls out: partition-style search, inter-prob tie-breaking, top-down
// paging, and RMC/LMC early termination.
var AblationVariants = []string{
	"D-tree",               // the full design
	"single-style",         // one fixed partition style per node
	"no-tiebreak",          // first minimal-size style, no inter-prob
	"greedy-paging",        // BFS greedy packing instead of Algorithm 3
	"no-early-termination", // read whole multi-packet nodes always
}

type ablationIndex struct {
	name       string
	pg         *core.Paged
	locate     func(geom.Point) (int, []int)
	locateInto func(geom.Point, []int) (int, []int)
}

func (a ablationIndex) Name() string                     { return a.name }
func (a ablationIndex) IndexPackets() int                { return a.pg.IndexPackets() }
func (a ablationIndex) SizeBytes() int                   { return a.pg.Layout.SizeBytes() }
func (a ablationIndex) Locate(p geom.Point) (int, []int) { return a.locate(p) }
func (a ablationIndex) LocateInto(p geom.Point, trace []int) (int, []int) {
	if a.locateInto != nil {
		return a.locateInto(p, trace)
	}
	return a.locate(p)
}

// RunAblation measures the D-tree variants over one dataset, reusing the
// standard measurement pipeline (the variant name appears as the index
// name).
func RunAblation(ds dataset.Dataset, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	sub, err := ds.Subdivision()
	if err != nil {
		return nil, err
	}
	full, err := core.Build(sub)
	if err != nil {
		return nil, err
	}
	single, err := core.Build(sub, core.WithSingleStyle(core.DimY, true))
	if err != nil {
		return nil, err
	}
	noTie, err := core.Build(sub, core.WithoutTieBreak())
	if err != nil {
		return nil, err
	}

	sampler := NewSampler(sub)
	sampler.ByArea = cfg.ByArea
	b := &Built{Data: ds, Sub: sub, DTree: full}

	var out []Measurement
	for _, capacity := range cfg.Capacities {
		params := wire.DTreeParams(capacity)
		fullPg, err := full.Page(params)
		if err != nil {
			return nil, err
		}
		singlePg, err := single.Page(params)
		if err != nil {
			return nil, err
		}
		noTiePg, err := noTie.Page(params)
		if err != nil {
			return nil, err
		}
		greedyPg, err := full.PageGreedy(params)
		if err != nil {
			return nil, err
		}
		indexes := []Index{
			ablationIndex{"D-tree", fullPg, fullPg.Locate, fullPg.LocateInto},
			ablationIndex{"single-style", singlePg, singlePg.Locate, singlePg.LocateInto},
			ablationIndex{"no-tiebreak", noTiePg, noTiePg.Locate, noTiePg.LocateInto},
			ablationIndex{"greedy-paging", greedyPg, greedyPg.Locate, greedyPg.LocateInto},
			ablationIndex{"no-early-termination", fullPg,
				fullPg.LocateWithoutEarlyTermination, fullPg.LocateWithoutEarlyTerminationInto},
		}
		ms, err := measureIndexes(b, sampler, indexes, capacity, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation at %d bytes: %w", capacity, err)
		}
		out = append(out, ms...)
	}
	return out, nil
}
