package experiment

import (
	"math/rand"
	"testing"

	"airindex/internal/dataset"
	"airindex/internal/geom"
)

// The cross-index invariant suite checks the property every comparison in
// Figures 10-13 rests on: all four index families answer the same queries
// with the same data regions. A family that silently resolved a point to a
// wrong (even adjacent) region would skew its latency and tuning curves
// without any other test noticing.

// invariantDatasets are randomized inputs spanning both site distributions;
// seeds are arbitrary but fixed so failures reproduce.
func invariantDatasets() []dataset.Dataset {
	return []dataset.Dataset{
		dataset.Uniform(60, 101),
		dataset.Uniform(220, 102),
		dataset.Clustered("CLUSTERED(150)", dataset.ClusterSpec{N: 150, Clusters: 5, Sigma: 600, UniformShare: 0.1, Seed: 103}),
	}
}

// agreesWith reports whether an index's answer matches the ground-truth
// region: the same id, or — for points on shared borders, where either
// neighbor is a correct answer — a region that geometrically contains the
// point. This is the same tolerance the live churn verifier applies.
func agreesWith(b *Built, got, want int, p geom.Point) bool {
	if got == want {
		return true
	}
	return got >= 0 && b.Sub.Regions[got].Poly.Contains(p)
}

// realizedTuneSlots replays a search trace under the access protocol's
// tuning rule — a forward offset is fetched from the current index copy, a
// backward one (legal for the DAG-shaped trian/trap families) from the next
// copy — and returns the absolute slots tuned, which must come out strictly
// increasing: a broadcast client can never tune backwards in time.
func realizedTuneSlots(trace []int, indexPackets, cycleLen int) []int {
	slots := make([]int, 0, len(trace))
	copyStart, cur := 0, 0
	for _, off := range trace {
		target := copyStart + off
		if target < cur {
			copyStart += cycleLen
			target = copyStart + off
		}
		cur = target + 1
		slots = append(slots, target)
	}
	return slots
}

func TestCrossIndexRegionAgreement(t *testing.T) {
	for _, ds := range invariantDatasets() {
		b, err := Build(ds, 7)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		for _, capacity := range []int{64, 256, 1024} {
			indexes, err := b.Indexes(capacity)
			if err != nil {
				t.Fatalf("%s(%d): %v", ds.Name, capacity, err)
			}
			rng := rand.New(rand.NewSource(int64(capacity)))
			for i := 0; i < 1000; i++ {
				p := geom.Pt(rng.Float64()*dataset.Area.W(), rng.Float64()*dataset.Area.H())
				want := b.Sub.Locate(p)
				if want < 0 {
					t.Fatalf("%s: ground truth failed to resolve %v", ds.Name, p)
				}
				for _, idx := range indexes {
					got, trace := idx.Locate(p)
					if !agreesWith(b, got, want, p) {
						t.Fatalf("%s/%s(%d): %v resolved to region %d, subdivision says %d",
							ds.Name, idx.Name(), capacity, p, got, want)
					}
					if len(trace) == 0 {
						t.Fatalf("%s/%s(%d): empty trace for %v", ds.Name, idx.Name(), capacity, p)
					}
					// The fast path the measurement harness uses must agree
					// with the allocation path exactly, including the trace.
					il, ok := idx.(intoLocator)
					if !ok {
						t.Fatalf("%s/%s(%d): index does not implement LocateInto", ds.Name, idx.Name(), capacity)
					}
					got2, trace2 := il.LocateInto(p, nil)
					if got2 != got || len(trace2) != len(trace) {
						t.Fatalf("%s/%s(%d): LocateInto(%v) = (%d, %d offsets), Locate = (%d, %d offsets)",
							ds.Name, idx.Name(), capacity, p, got2, len(trace2), got, len(trace))
					}
					for j := range trace {
						if trace[j] != trace2[j] {
							t.Fatalf("%s/%s(%d): LocateInto trace diverges at step %d: %d != %d",
								ds.Name, idx.Name(), capacity, j, trace2[j], trace[j])
						}
					}
				}
			}
		}
	}
}

// TestTraceTuningMonotone checks every family's traced tuning sequence is
// monotone in slot order once mapped onto the broadcast: offsets stay in
// the index segment, never repeat back to back, and the realized tune-in
// slots strictly increase. For the pointer-forward families (D-tree,
// R*-tree) the raw offsets themselves must already be strictly increasing —
// a backward pointer there would cost a silent extra cycle per query.
func TestTraceTuningMonotone(t *testing.T) {
	forwardOnly := map[string]bool{"D-tree": true, "R*-tree": true}
	for _, ds := range invariantDatasets() {
		b, err := Build(ds, 7)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		for _, capacity := range []int{64, 512} {
			indexes, err := b.Indexes(capacity)
			if err != nil {
				t.Fatalf("%s(%d): %v", ds.Name, capacity, err)
			}
			rng := rand.New(rand.NewSource(int64(capacity) + 1))
			for i := 0; i < 1000; i++ {
				p := geom.Pt(rng.Float64()*dataset.Area.W(), rng.Float64()*dataset.Area.H())
				for _, idx := range indexes {
					_, trace := idx.Locate(p)
					n := idx.IndexPackets()
					for j, off := range trace {
						if off < 0 || off >= n {
							t.Fatalf("%s/%s(%d): trace offset %d outside index segment [0,%d)",
								ds.Name, idx.Name(), capacity, off, n)
						}
						if j > 0 && off == trace[j-1] {
							t.Fatalf("%s/%s(%d): trace re-downloads offset %d back to back",
								ds.Name, idx.Name(), capacity, off)
						}
						if forwardOnly[idx.Name()] && j > 0 && off < trace[j-1] {
							t.Fatalf("%s/%s(%d): backward pointer %d after %d in a forward-only family",
								ds.Name, idx.Name(), capacity, off, trace[j-1])
						}
					}
					slots := realizedTuneSlots(trace, n, n)
					for j := 1; j < len(slots); j++ {
						if slots[j] <= slots[j-1] {
							t.Fatalf("%s/%s(%d): realized tuning not monotone: slot %d after slot %d (trace %v)",
								ds.Name, idx.Name(), capacity, slots[j], slots[j-1], trace)
						}
					}
				}
			}
		}
	}
}
