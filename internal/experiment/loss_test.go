package experiment

import (
	"strings"
	"testing"

	"airindex/internal/dataset"
)

// TestLossSweep pins the acceptance shape of the unreliable-channel
// experiment: every query completes correctly at every fault rate (RunLoss
// fails otherwise), and both reported latency and tuning strictly increase
// with the fault rate under every fault model — resilience costs energy.
func TestLossSweep(t *testing.T) {
	ds := dataset.Uniform(45, 4500)
	rates := []float64{0, 0.05, 0.10}
	ps, err := RunLoss(ds, 512, rates, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(LossModels)*len(rates) {
		t.Fatalf("got %d points, want %d", len(ps), len(LossModels)*len(rates))
	}
	byModel := map[string][]LossPoint{}
	for _, p := range ps {
		byModel[p.Model] = append(byModel[p.Model], p)
	}
	for _, model := range LossModels {
		pts := byModel[model]
		if len(pts) != len(rates) {
			t.Fatalf("%s: %d points", model, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Rate <= pts[i-1].Rate {
				t.Fatalf("%s: rates out of order", model)
			}
			if pts[i].AvgLatency <= pts[i-1].AvgLatency {
				t.Errorf("%s: latency %v at rate %v not above %v at rate %v",
					model, pts[i].AvgLatency, pts[i].Rate, pts[i-1].AvgLatency, pts[i-1].Rate)
			}
			if pts[i].AvgTuning <= pts[i-1].AvgTuning {
				t.Errorf("%s: tuning %v at rate %v not above %v at rate %v",
					model, pts[i].AvgTuning, pts[i].Rate, pts[i-1].AvgTuning, pts[i-1].Rate)
			}
		}
		// The reliable baseline must be fault-free end to end.
		if base := pts[0]; base.Rate != 0 || base.AvgRecoveries != 0 || base.FramesDropped != 0 || base.FramesCorrupted != 0 {
			t.Errorf("%s: rate-0 baseline saw faults: %+v", model, base)
		}
		// Faulty cells must actually have injected faults.
		last := pts[len(pts)-1]
		if last.FramesDropped+last.FramesCorrupted == 0 {
			t.Errorf("%s: no faults injected at rate %v", model, last.Rate)
		}
	}

	tables := LossTables(ps)
	for _, want := range []string{"avg access latency", "avg tuning", "bernoulli", "gilbert-elliott", "corruption"} {
		if !strings.Contains(tables, want) {
			t.Errorf("LossTables missing %q:\n%s", want, tables)
		}
	}
	csv := LossCSV(ps)
	if got := strings.Count(csv, "\n"); got != len(ps)+1 {
		t.Errorf("LossCSV has %d lines, want %d", got, len(ps)+1)
	}
}
