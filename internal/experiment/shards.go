package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/fabric"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

// This file hosts the sharded-fabric extension experiment: how splitting
// one broadcast channel into S spatial shards — each carrying a D-tree
// over its partition plus the replicated channel directory — trades
// access latency against the directory-and-hop tuning overhead. S = 1 is
// the classic single-channel D-tree broadcast with no directory, the
// baseline every speedup is measured against. Every sharded answer is
// verified against the global ground truth, so the sweep doubles as a
// large Monte Carlo run of the fabric's bit-identity invariant.

// ShardPoint is one cell of the shard sweep: one channel count measured
// over simulated hopping accesses with random entry channels.
type ShardPoint struct {
	Dataset  string
	Sites    int
	Capacity int
	Shards   int
	Queries  int

	DirPackets int // replicated directory prefix, packets per index copy

	AvgLatency    float64 // slots, probe to final data packet
	AvgTuning     float64 // active-radio packets, all phases
	AvgTuneIndex  float64 // D-tree descent packets
	AvgTuneDir    float64 // directory packets parsed
	AvgHops       float64 // channel hops per query
	SpeedupVsS1   float64 // single-channel latency / this row's latency
	TuningDeltaS1 float64 // AvgTuning - single-channel tuning (packets)

	BuildSeconds float64 // wall time to compile this row's broadcast
}

// ShardCounts returns the sweep's default channel counts.
func ShardCounts() []int { return []int{1, 2, 4, 8} }

// shardQuery is one pre-drawn Monte Carlo access: the query stream is
// drawn sequentially so results are bit-identical at any worker count.
type shardQuery struct {
	p    geom.Point
	u    float64
	want int // ground-truth global region
}

// shardCost is one access's per-query cost record (reduced in query order).
type shardCost struct {
	lat     float64
	tuneIdx int32
	tuneDir int32
	tune    int32
	hops    int32
}

// RunShards sweeps the channel count over simulated fabric accesses
// against one dataset at one packet capacity. counts defaults to
// ShardCounts; the single-channel baseline is measured regardless so
// every row's SpeedupVsS1 is well defined. Every sharded access is
// verified against the global Voronoi ground truth with the usual
// shared-boundary tolerance, or the sweep fails.
func RunShards(ds dataset.Dataset, capacity int, counts []int, cfg Config) ([]ShardPoint, error) {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = ShardCounts()
	}
	sub, err := voronoi.Subdivision(ds.Area, ds.Sites)
	if err != nil {
		return nil, err
	}

	// One sequentially drawn query stream shared by every row: uniform
	// over the service area (the directory routes spatially, so
	// area-uniform points exercise every shard in proportion to the
	// territory it serves). Ground truth is resolved once, up front.
	q := cfg.Queries
	rng := rand.New(rand.NewSource(cfg.Seed))
	queries := make([]shardQuery, q)
	for i := range queries {
		p := geom.Pt(
			ds.Area.MinX+rng.Float64()*ds.Area.W(),
			ds.Area.MinY+rng.Float64()*ds.Area.H(),
		)
		queries[i] = shardQuery{p: p, u: rng.Float64(), want: sub.Locate(p)}
	}

	base, err := runFlatBaseline(ds, sub, capacity, queries, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: shards baseline: %w", err)
	}

	var out []ShardPoint
	for _, S := range counts {
		var pt ShardPoint
		if S == 1 {
			pt = base
		} else {
			pt, err = runShardCell(ds, sub, capacity, S, queries, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: shards S=%d: %w", S, err)
			}
		}
		pt.SpeedupVsS1 = base.AvgLatency / pt.AvgLatency
		pt.TuningDeltaS1 = pt.AvgTuning - base.AvgTuning
		out = append(out, pt)
	}
	return out, nil
}

// runFlatBaseline measures the classic single-channel D-tree broadcast —
// no directory prefix, no hops — over the shared query stream.
func runFlatBaseline(ds dataset.Dataset, sub *region.Subdivision, capacity int, queries []shardQuery, cfg Config) (ShardPoint, error) {
	start := time.Now()
	var buildOpts []core.BuildOption
	if cfg.BuildWorkers > 0 {
		buildOpts = append(buildOpts, core.WithBuildWorkers(cfg.BuildWorkers))
	}
	tree, err := core.Build(sub, buildOpts...)
	if err != nil {
		return ShardPoint{}, err
	}
	params := wire.DTreeParams(capacity)
	paged, err := tree.Page(params)
	if err != nil {
		return ShardPoint{}, err
	}
	buildSecs := time.Since(start).Seconds()

	n := sub.N()
	bucketPackets := params.DataBucketPackets()
	dataPackets := n * bucketPackets
	m := broadcast.OptimalM(paged.IndexPackets(), dataPackets)
	sched, err := broadcast.NewSchedule(paged.IndexPackets(), n, bucketPackets, m)
	if err != nil {
		return ShardPoint{}, err
	}
	cycleLen := float64(sched.CycleLen())

	costs := make([]shardCost, len(queries))
	if err := forEachShard(cfg.Workers, len(queries), func(lo, hi int) error {
		var buf []int
		for i := lo; i < hi; i++ {
			sq := &queries[i]
			bucket, trace := paged.LocateInto(sq.p, buf)
			buf = trace
			if bucket < 0 {
				return fmt.Errorf("query %v unresolved", sq.p)
			}
			c, err := sched.Access(sq.u*cycleLen, broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
			if err != nil {
				return err
			}
			costs[i] = shardCost{lat: c.Latency, tuneIdx: int32(c.TuneIndex), tune: int32(c.TotalTuning())}
		}
		return nil
	}); err != nil {
		return ShardPoint{}, err
	}
	pt := ShardPoint{
		Dataset:      ds.Name,
		Sites:        len(ds.Sites),
		Capacity:     capacity,
		Shards:       1,
		Queries:      len(queries),
		BuildSeconds: buildSecs,
	}
	reduceShardCosts(&pt, costs)
	return pt, nil
}

// runShardCell compiles an S-channel fabric over the shared global
// subdivision and runs the hopping access protocol over the shared query
// stream with deterministic random entry channels, verifying every answer
// against the global ground truth.
func runShardCell(ds dataset.Dataset, sub *region.Subdivision, capacity, S int, queries []shardQuery, cfg Config) (ShardPoint, error) {
	start := time.Now()
	dir, rects, _, err := fabric.Partition(ds.Area, ds.Sites, S)
	if err != nil {
		return ShardPoint{}, err
	}
	f, err := fabric.FromSubdivision(sub, nil, dir, rects, capacity, fabric.Options{BuildWorkers: cfg.BuildWorkers})
	if err != nil {
		return ShardPoint{}, err
	}
	buildSecs := time.Since(start).Seconds()

	// Entry channels are drawn sequentially, outside the worker loop, so
	// the cell is bit-identical at any worker count.
	entries := make([]int, len(queries))
	erng := rand.New(rand.NewSource(cfg.Seed + int64(S)*101))
	for i := range entries {
		entries[i] = erng.Intn(S)
	}

	costs := make([]shardCost, len(queries))
	if err := forEachShard(cfg.Workers, len(queries), func(lo, hi int) error {
		var buf []int
		for i := lo; i < hi; i++ {
			sq := &queries[i]
			c, trace, err := f.AccessInto(sq.p, entries[i], sq.u, buf)
			if err != nil {
				return err
			}
			buf = trace
			if c.Global != sq.want && !sub.Regions[c.Global].Poly.Contains(sq.p) {
				return fmt.Errorf("query %v -> global %d via shard %d, single channel says %d",
					sq.p, c.Global, c.Shard, sq.want)
			}
			costs[i] = shardCost{
				lat:     c.Latency,
				tuneIdx: int32(c.TuneIndex),
				tuneDir: int32(c.TuneDirectory),
				tune:    int32(c.TotalTuning()),
				hops:    int32(c.Hops),
			}
		}
		return nil
	}); err != nil {
		return ShardPoint{}, err
	}
	pt := ShardPoint{
		Dataset:      ds.Name,
		Sites:        len(ds.Sites),
		Capacity:     capacity,
		Shards:       S,
		Queries:      len(queries),
		DirPackets:   f.DirPackets,
		BuildSeconds: buildSecs,
	}
	reduceShardCosts(&pt, costs)
	return pt, nil
}

func reduceShardCosts(pt *ShardPoint, costs []shardCost) {
	var lat, tuneIdx, tuneDir, tune, hops float64
	for i := range costs {
		lat += costs[i].lat
		tuneIdx += float64(costs[i].tuneIdx)
		tuneDir += float64(costs[i].tuneDir)
		tune += float64(costs[i].tune)
		hops += float64(costs[i].hops)
	}
	qf := float64(len(costs))
	pt.AvgLatency = lat / qf
	pt.AvgTuneIndex = tuneIdx / qf
	pt.AvgTuneDir = tuneDir / qf
	pt.AvgTuning = tune / qf
	pt.AvgHops = hops / qf
}

// ShardsTables renders the sweep: latency speedup and tuning overhead as
// functions of the channel count.
func ShardsTables(ps []ShardPoint) string {
	if len(ps) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — sharded fabric at %d sites, %d B packets (%d queries/row)\n",
		ps[0].Dataset, ps[0].Sites, ps[0].Capacity, ps[0].Queries)
	fmt.Fprintf(&b, "%-8s %8s %14s %12s %14s %10s %10s %12s %10s\n",
		"shards", "dir pkts", "avg latency", "speedup", "avg tuning", "Δtuning", "avg hops", "tune index", "build s")
	for _, p := range ps {
		fmt.Fprintf(&b, "%-8d %8d %14.3f %12.3f %14.3f %10.3f %10.3f %12.3f %10.2f\n",
			p.Shards, p.DirPackets, p.AvgLatency, p.SpeedupVsS1, p.AvgTuning, p.TuningDeltaS1, p.AvgHops, p.AvgTuneIndex, p.BuildSeconds)
	}
	return b.String()
}

// ShardsCSV renders the sweep as comma-separated rows for external
// plotting.
func ShardsCSV(ps []ShardPoint) string {
	var b strings.Builder
	b.WriteString("dataset,sites,capacity,shards,queries,dir_packets,avg_latency,speedup_vs_s1,avg_tuning,tuning_delta_s1,avg_hops,avg_tune_index,avg_tune_dir,build_seconds\n")
	for _, p := range ps {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.3f\n",
			p.Dataset, p.Sites, p.Capacity, p.Shards, p.Queries, p.DirPackets,
			p.AvgLatency, p.SpeedupVsS1, p.AvgTuning, p.TuningDeltaS1, p.AvgHops, p.AvgTuneIndex, p.AvgTuneDir, p.BuildSeconds)
	}
	return b.String()
}
