package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/wire"
)

// This file hosts the extension experiments beyond the paper's evaluation:
// skewed access distributions served by the access-weighted D-tree, and
// clients that pin hot index packets in a small cache (the direction of
// Hambrusch et al., which the paper cites as the complementary problem).

// ZipfWeights returns Zipf(theta) access weights over n regions with ranks
// assigned by a seeded random permutation (hot regions spatially scattered).
func ZipfWeights(n int, theta float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	w := make([]float64, n)
	for rank, r := range perm {
		w[r] = 1 / math.Pow(float64(rank+1), theta)
	}
	return w
}

// RunSkewed compares the paper's cardinality-balanced D-tree against the
// access-weighted variant under a Zipf(theta) query distribution. The
// returned measurements carry the variant as the index name.
func RunSkewed(ds dataset.Dataset, cfg Config, theta float64) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	sub, err := ds.Subdivision()
	if err != nil {
		return nil, err
	}
	weights := ZipfWeights(sub.N(), theta, cfg.Seed)
	balanced, err := core.Build(sub)
	if err != nil {
		return nil, err
	}
	weighted, err := core.Build(sub, core.WithAccessWeights(weights))
	if err != nil {
		return nil, err
	}

	sampler := NewSampler(sub)
	sampler.SetWeights(weights)
	b := &Built{Data: ds, Sub: sub, DTree: balanced}

	var out []Measurement
	for _, capacity := range cfg.Capacities {
		params := wire.DTreeParams(capacity)
		bp, err := balanced.Page(params)
		if err != nil {
			return nil, err
		}
		wp, err := weighted.Page(params)
		if err != nil {
			return nil, err
		}
		indexes := []Index{
			ablationIndex{"balanced", bp, bp.Locate, bp.LocateInto},
			ablationIndex{"weighted", wp, wp.Locate, wp.LocateInto},
		}
		ms, err := measureIndexes(b, sampler, indexes, capacity, cfg)
		if err != nil {
			return nil, fmt.Errorf("skewed at %d bytes: %w", capacity, err)
		}
		out = append(out, ms...)
	}
	return out, nil
}

// CacheResult is one cell of the caching experiment: average index-search
// tuning when the client pins the hottest cachePackets index packets.
type CacheResult struct {
	Dataset      string
	Index        string
	Packet       int
	CachePackets int
	AvgTuneIndex float64
	HitRate      float64 // fraction of packet reads served by the cache
}

// RunCached measures how a small client-side cache of hot index packets
// cuts the index-search tuning time. The cache is chosen by access
// frequency over a warmup query stream (an offline-optimal static pin,
// which any LRU-style policy approaches for a static broadcast).
func RunCached(ds dataset.Dataset, capacity int, cacheSizes []int, cfg Config) ([]CacheResult, error) {
	cfg = cfg.withDefaults()
	b, err := BuildWithWorkers(ds, cfg.Seed, cfg.BuildWorkers, cfg.buildOpts()...)
	if err != nil {
		return nil, err
	}
	indexes, err := b.Indexes(capacity)
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(b.Sub)
	sampler.ByArea = cfg.ByArea

	var out []CacheResult
	for _, idx := range indexes {
		// Every index family provides the buffer-reusing fast path; run the
		// warmup and measurement streams through it so neither allocates a
		// trace per query.
		locate := idx.Locate
		var buf []int
		if il, ok := idx.(intoLocator); ok {
			locate = func(p geom.Point) (int, []int) {
				var id int
				id, buf = il.LocateInto(p, buf)
				return id, buf
			}
		}
		// Warmup: rank packets by access frequency.
		freq := make(map[int]int)
		wrng := rand.New(rand.NewSource(cfg.Seed + 7))
		warm := cfg.Queries / 2
		if warm < 2000 {
			warm = 2000
		}
		for q := 0; q < warm; q++ {
			p, _ := sampler.Query(wrng)
			_, trace := locate(p)
			for _, pk := range trace {
				freq[pk]++
			}
		}
		ranked := make([]int, 0, len(freq))
		for pk := range freq {
			ranked = append(ranked, pk)
		}
		sort.Slice(ranked, func(i, j int) bool {
			if freq[ranked[i]] != freq[ranked[j]] {
				return freq[ranked[i]] > freq[ranked[j]]
			}
			return ranked[i] < ranked[j]
		})

		for _, cacheN := range cacheSizes {
			cached := make(map[int]bool, cacheN)
			for i := 0; i < cacheN && i < len(ranked); i++ {
				cached[ranked[i]] = true
			}
			rng := rand.New(rand.NewSource(cfg.Seed + 8))
			var tune, reads, hits float64
			for q := 0; q < cfg.Queries; q++ {
				p, _ := sampler.Query(rng)
				_, trace := locate(p)
				for _, pk := range trace {
					reads++
					if cached[pk] {
						hits++
					} else {
						tune++
					}
				}
			}
			res := CacheResult{
				Dataset: ds.Name, Index: idx.Name(), Packet: capacity,
				CachePackets: cacheN,
				AvgTuneIndex: tune / float64(cfg.Queries),
			}
			if reads > 0 {
				res.HitRate = hits / reads
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// CacheTable renders the caching experiment as a table: rows are cache
// sizes, columns index structures.
func CacheTable(rs []CacheResult) string {
	if len(rs) == 0 {
		return ""
	}
	var sizes []int
	seenSize := map[int]bool{}
	var indexes []string
	seenIdx := map[string]bool{}
	cell := map[[2]interface{}]CacheResult{}
	for _, r := range rs {
		if !seenSize[r.CachePackets] {
			seenSize[r.CachePackets] = true
			sizes = append(sizes, r.CachePackets)
		}
		if !seenIdx[r.Index] {
			seenIdx[r.Index] = true
			indexes = append(indexes, r.Index)
		}
		cell[[2]interface{}{r.CachePackets, r.Index}] = r
	}
	sort.Ints(sizes)

	var bldr []byte
	bldr = append(bldr, fmt.Sprintf("%s — index-search tuning vs client cache (packets pinned), %d B packets\n",
		rs[0].Dataset, rs[0].Packet)...)
	bldr = append(bldr, fmt.Sprintf("%-12s", "cache")...)
	for _, name := range indexes {
		bldr = append(bldr, fmt.Sprintf(" %12s", name)...)
	}
	bldr = append(bldr, '\n')
	for _, sz := range sizes {
		bldr = append(bldr, fmt.Sprintf("%-12d", sz)...)
		for _, name := range indexes {
			r := cell[[2]interface{}{sz, name}]
			bldr = append(bldr, fmt.Sprintf(" %12.3f", r.AvgTuneIndex)...)
		}
		bldr = append(bldr, '\n')
	}
	return string(bldr)
}

// SetWeights makes the sampler draw regions proportionally to weights.
func (s *Sampler) SetWeights(weights []float64) {
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	s.weighted = cum
}

// queryWeighted draws a region from the weighted distribution.
func (s *Sampler) queryWeighted(rng *rand.Rand) (geom.Point, int) {
	total := s.weighted[len(s.weighted)-1]
	x := rng.Float64() * total
	r := sort.SearchFloat64s(s.weighted, x)
	if r >= len(s.weighted) {
		r = len(s.weighted) - 1
	}
	return s.PointIn(rng, r), r
}

// RenderSkew renders the skew comparison.
func RenderSkew(ms []Measurement, datasetName string, theta float64) string {
	out := fmt.Sprintf("Zipf(%.1f) access — balanced vs access-weighted D-tree\n", theta)
	out += Table(ms, datasetName, MetricTuneIndex)
	return out
}
