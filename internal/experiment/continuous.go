package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"

	"airindex/internal/dataset"
	"airindex/internal/stream"
)

// Continuous-query extension experiment: a fleet of moving clients holds a
// standing window+kNN query over a live adjacency broadcast while the site
// population churns. Each client is measured twice over the identical
// trajectory — once revalidating its cache each cycle (incremental), once
// re-acquiring appendix, descent and answer buckets every cycle (fresh) —
// so the tuning ratio isolates exactly what revalidation saves. Both
// sessions' answers are cross-checked every cycle; a disagreement under
// matching generations fails the run.

// ContinuousPoint is one fleet's measurement.
type ContinuousPoint struct {
	Dataset  string
	Sites    int
	Capacity int
	Model    string // trajectory model: waypoint or commuter
	Clients  int
	Cycles   int // per client
	ChurnOps int // site operations applied across the run
	Swaps    int // generations published

	AvgTuningInc     float64 // active-radio packets per cycle, incremental
	AvgTuningFresh   float64 // same trajectory, fresh-per-cycle baseline
	TuningRatio      float64 // fresh / incremental: the revalidation win
	AvgLatencyInc    float64 // slots per cycle, incremental
	AvgLatencyFresh  float64
	RevalidationHits int64 // incremental cycles answered from cache
	Redescents       int64 // cycles that re-descended after a crossing
	Refreshes        int64 // cycles that re-acquired after a generation change

	// Obs carries both sessions' counter registries (JSON output only).
	Obs map[string]any `json:",omitempty"`
}

// RunContinuous measures one fleet over a live single-channel adjacency
// broadcast. churnOps site operations are spread across the run and applied
// between cycles; model is "waypoint" or "commuter".
func RunContinuous(ds dataset.Dataset, capacity int, model string, clients, cycles, churnOps int, q stream.ContinuousQuery, seed int64) (ContinuousPoint, error) {
	if clients <= 0 {
		clients = 1
	}
	if cycles <= 0 {
		cycles = 30
	}
	pt := ContinuousPoint{
		Dataset: ds.Name, Sites: ds.N(), Capacity: capacity,
		Model: model, Clients: clients, Cycles: cycles, ChurnOps: churnOps,
	}
	sw, err := stream.NewSwapperWithAdjacency(ds.Area, ds.Sites, capacity, 0)
	if err != nil {
		return pt, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	srv, err := stream.NewServer(ln, sw.Program())
	if err != nil {
		ln.Close()
		return pt, err
	}
	sw.Bind(srv)
	go srv.Serve() //nolint:errcheck
	defer srv.Close()

	// Client speed scales with the expected Voronoi cell diameter so the
	// workload exercises every outcome class at any density: slow cycles
	// revalidate in place, fast ones cross into a neighbor cell.
	cell := ds.Area.W() / math.Sqrt(float64(ds.N()))
	fleet, err := dataset.Fleet(model, ds.Area, clients, cycles, seed, cell/2, 2*cell)
	if err != nil {
		return pt, err
	}

	im := stream.NewContinuousMetrics()
	fm := stream.NewContinuousMetrics()
	drng := rand.New(rand.NewSource(seed * 31))
	var incTune, freshTune, incLat, freshLat float64
	applied := 0
	totalSteps := clients * cycles
	step := 0
	for ci, traj := range fleet {
		incCli, err := stream.Dial(srv.Addr().String(), capacity)
		if err != nil {
			return pt, err
		}
		freshCli, err := stream.Dial(srv.Addr().String(), capacity)
		if err != nil {
			incCli.Close()
			return pt, err
		}
		inc := stream.NewContinuous(incCli, stream.ModeIncremental, q)
		inc.Metrics = im
		fresh := stream.NewContinuous(freshCli, stream.ModeFresh, q)
		fresh.Metrics = fm
		for cyc := 0; cyc < cycles; cyc++ {
			// Pace the churn budget evenly across the whole run, applied
			// between cycles so each generation's ground truth stays pinned
			// while a cycle is in flight.
			for churnOps > 0 && applied*totalSteps < churnOps*step {
				batch := churnBatch(sw, drng, ds.N(), 1)
				if _, _, err := sw.Apply(batch); err != nil {
					incCli.Close()
					freshCli.Close()
					return pt, fmt.Errorf("churn after step %d: %w", step, err)
				}
				applied += len(batch)
				pt.Swaps++
			}
			step++
			p := traj.At(cyc)
			oi, err := inc.Step(p)
			if err != nil {
				incCli.Close()
				freshCli.Close()
				return pt, fmt.Errorf("client %d cycle %d incremental: %w", ci, cyc, err)
			}
			of, err := fresh.Step(p)
			if err != nil {
				incCli.Close()
				freshCli.Close()
				return pt, fmt.Errorf("client %d cycle %d fresh: %w", ci, cyc, err)
			}
			if oi.Generation == of.Generation {
				if oi.Region != of.Region || !sameI32(oi.Window, of.Window) || !sameI32(oi.KNN, of.KNN) {
					incCli.Close()
					freshCli.Close()
					return pt, fmt.Errorf("client %d cycle %d: incremental and fresh answers diverge under generation %d", ci, cyc, oi.Generation)
				}
			}
			incTune += float64(oi.Res.TotalTuning())
			freshTune += float64(of.Res.TotalTuning())
			incLat += oi.Res.Latency
			freshLat += of.Res.Latency
		}
		incCli.Close()
		freshCli.Close()
	}

	n := float64(totalSteps)
	pt.AvgTuningInc = incTune / n
	pt.AvgTuningFresh = freshTune / n
	if incTune > 0 {
		pt.TuningRatio = freshTune / incTune
	}
	pt.AvgLatencyInc = incLat / n
	pt.AvgLatencyFresh = freshLat / n
	pt.RevalidationHits = im.RevalidationHits.Load()
	pt.Redescents = im.BoundaryRedescents.Load()
	pt.Refreshes = im.FullRefreshes.Load()
	pt.Obs = map[string]any{"incremental": im.Snapshot(), "fresh": fm.Snapshot()}
	return pt, nil
}

func sameI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ContinuousCSV renders the fleet points as CSV.
func ContinuousCSV(ps []ContinuousPoint) string {
	var b strings.Builder
	b.WriteString("dataset,sites,capacity,model,clients,cycles,churn_ops,swaps,tune_inc,tune_fresh,ratio,lat_inc,lat_fresh,hits,redescents,refreshes\n")
	for _, p := range ps {
		fmt.Fprintf(&b, "%s,%d,%d,%s,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.1f,%.1f,%d,%d,%d\n",
			p.Dataset, p.Sites, p.Capacity, p.Model, p.Clients, p.Cycles, p.ChurnOps, p.Swaps,
			p.AvgTuningInc, p.AvgTuningFresh, p.TuningRatio, p.AvgLatencyInc, p.AvgLatencyFresh,
			p.RevalidationHits, p.Redescents, p.Refreshes)
	}
	return b.String()
}

// ContinuousTables renders the fleet points as an aligned text table.
func ContinuousTables(ps []ContinuousPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %6s %6s %6s %9s %11s %7s %6s %10s %9s\n",
		"model", "clients", "cycles", "churn", "swaps", "tune/cyc", "fresh/cyc", "ratio", "hits", "redescents", "refreshes")
	for _, p := range ps {
		fmt.Fprintf(&b, "%-10s %7d %6d %6d %6d %9.2f %11.2f %6.1fx %6d %10d %9d\n",
			p.Model, p.Clients, p.Cycles, p.ChurnOps, p.Swaps,
			p.AvgTuningInc, p.AvgTuningFresh, p.TuningRatio,
			p.RevalidationHits, p.Redescents, p.Refreshes)
	}
	return b.String()
}
