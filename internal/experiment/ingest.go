package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/ingest"
	"airindex/internal/stream"
)

// This file hosts the asynchronous-ingest extension experiment: the churn
// sweep's successor where site operations no longer arrive as synchronous
// Apply batches but stream through the bounded ingest pipeline — admission
// queue, per-site coalescing, paced generation cuts — while clients query
// the live broadcast. It answers the operational questions the synchronous
// sweep cannot: how many operations per second the pipeline sustains, how
// much coalescing compresses them, how long an operation takes to reach
// the air, and what the queries cost while it happens.

// IngestPoint is one cell of the sweep: one offered load (site operations
// streamed through the pipeline while the cell's queries run).
type IngestPoint struct {
	Dataset string
	Offered int // operations submitted by the producers
	Queries int

	Admitted int64 // operations past admission
	Shed     int64 // operations rejected with ErrQueueFull
	Cuts     int64 // generations published by the pipeline
	Applied  int64 // operations surviving coalescing (applied to the index)

	CoalesceRatio float64 // offered-to-applied fold factor (>= 1)
	OpsPerSec     float64 // admitted ops per wall-clock second, enqueue to on-air drain

	OpLatencyP50Ms float64 // admission -> on-air latency per applied op
	OpLatencyP99Ms float64

	AvgLatency       float64 // query slots, probe to final frame
	AvgTuning        float64 // active-radio packets per query
	AvgEpochRestarts float64 // swap-forced whole-query restarts per query

	// Obs holds the full observability snapshots, keyed "server", "client"
	// and "ingest" (JSON output only).
	Obs map[string]any `json:",omitempty"`
}

// IngestLevels returns the sweep's default offered loads (operations per
// cell; 0 = static baseline).
func IngestLevels() []int { return []int{0, 256, 1024, 4096} }

// ingestProducer streams ops ops into the pipeline, addressing only the
// handles it created itself, so any number of producers compose without
// coordination. The mix is move-heavy (the paper's mobile-sites regime):
// it grows a private population first, then mostly moves it, occasionally
// replacing a member.
func ingestProducer(p *ingest.Pipeline, idx, ops int, seed int64, shed *int64, mu *sync.Mutex) {
	rng := rand.New(rand.NewSource(seed))
	base := -int64(idx)*1_000_000 - 1
	var handles []int64
	next := base
	randomPt := func() (float64, float64) {
		return dataset.Area.MinX + rng.Float64()*dataset.Area.W(),
			dataset.Area.MinY + rng.Float64()*dataset.Area.H()
	}
	localShed := int64(0)
	for i := 0; i < ops; i++ {
		x, y := randomPt()
		var op ingest.Op
		kind, j := 0, 0 // 0 add, 1 remove, 2 move
		switch k := rng.Intn(10); {
		case len(handles) < 4 || k == 0:
			op = ingest.Op{Kind: ingest.OpAdd, ID: next, X: x, Y: y}
		case k == 1:
			kind, j = 1, rng.Intn(len(handles))
			op = ingest.Op{Kind: ingest.OpRemove, ID: handles[j]}
		default:
			kind = 2
			op = ingest.Op{Kind: ingest.OpMove, ID: handles[rng.Intn(len(handles))], X: x, Y: y}
		}
		if err := p.Enqueue(op); err != nil {
			// ErrQueueFull sheds the op whole; the producer's view only
			// changes on admission, so later ops stay self-consistent.
			localShed++
			continue
		}
		switch kind {
		case 0:
			handles = append(handles, next)
			next--
		case 1:
			handles = append(handles[:j], handles[j+1:]...)
		}
	}
	mu.Lock()
	*shed += localShed
	mu.Unlock()
}

// RunIngest sweeps offered update load streamed through the asynchronous
// pipeline against live verified queries. Every query must resolve to the
// region correct for the generation it completed under — overload may shed
// operations or delay their on-air time, never corrupt an answer.
func RunIngest(ds dataset.Dataset, capacity int, levels []int, queries int, seed int64) ([]IngestPoint, error) {
	if queries <= 0 {
		queries = 100
	}
	var out []IngestPoint
	for _, offered := range levels {
		pt, err := runIngestCell(ds, capacity, offered, queries, seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: ingest load %d: %w", offered, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func runIngestCell(ds dataset.Dataset, capacity, offered, queries int, seed int64) (IngestPoint, error) {
	sw, err := stream.NewSwapper(ds.Area, ds.Sites, capacity, 0)
	if err != nil {
		return IngestPoint{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return IngestPoint{}, err
	}
	srv, err := stream.NewServer(ln, sw.Program())
	if err != nil {
		ln.Close()
		return IngestPoint{}, err
	}
	sw.Bind(srv)
	go srv.Serve() //nolint:errcheck
	defer srv.Close()

	pipe := ingest.Start(ingest.SwapperSink(sw), ingest.Config{
		QueueCap:    1024,
		Policy:      ingest.Reject,
		CutMaxOps:   64,
		CutInterval: 20 * time.Millisecond,
	})

	client, err := stream.Dial(srv.Addr().String(), capacity)
	if err != nil {
		pipe.Close(nil)
		return IngestPoint{}, err
	}
	defer client.Close()
	cm := stream.NewClientMetrics()
	client.Metrics = cm

	// Producers stream the offered load concurrently with the measured
	// queries; four of them contend on admission like independent clients.
	const producers = 4
	start := time.Now()
	var wg sync.WaitGroup
	var shedLocal int64
	var shedMu sync.Mutex
	for i := 0; i < producers; i++ {
		n := offered / producers
		if i == producers-1 {
			n = offered - n*(producers-1)
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			ingestProducer(pipe, i+1, n, seed+int64(i)*97+int64(offered), &shedLocal, &shedMu)
		}(i, n)
	}

	rng := rand.New(rand.NewSource(seed + int64(offered)*131))
	pt := IngestPoint{Dataset: ds.Name, Offered: offered, Queries: queries}
	for q := 0; q < queries; q++ {
		p := geom.Pt(
			dataset.Area.MinX+rng.Float64()*dataset.Area.W(),
			dataset.Area.MinY+rng.Float64()*dataset.Area.H(),
		)
		res, err := client.Query(p)
		if err != nil {
			pipe.Close(nil)
			return pt, fmt.Errorf("query %d at %v: %w", q, p, err)
		}
		g := sw.Generation(res.Generation)
		if g == nil {
			pipe.Close(nil)
			return pt, fmt.Errorf("query %d: unknown generation %d", q, res.Generation)
		}
		if want := g.Sub.Locate(p); res.Bucket != want && !g.Sub.Regions[res.Bucket].Poly.Contains(p) {
			pipe.Close(nil)
			return pt, fmt.Errorf("query %d at %v: bucket %d, want %d (generation %d)", q, p, res.Bucket, want, res.Generation)
		}
		if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			pipe.Close(nil)
			return pt, fmt.Errorf("query %d: %w", q, err)
		}
		pt.AvgLatency += res.Latency
		pt.AvgTuning += float64(res.TotalTuning())
		pt.AvgEpochRestarts += float64(res.EpochRestarts)
	}

	// Wait for the offered load to finish, then drain every admitted op
	// through final cuts before reading the clocks.
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := pipe.Close(ctx); err != nil {
		return pt, fmt.Errorf("ingest drain: %w", err)
	}
	elapsed := time.Since(start)

	im := pipe.Metrics()
	pt.Admitted = im.EnqueuedOps.Load()
	pt.Shed = im.ShedOps.Load()
	pt.Cuts = im.Cuts.Load()
	pt.Applied = im.CoalescedOut.Load()
	if pt.Applied > 0 {
		pt.CoalesceRatio = float64(im.CoalescedIn.Load()) / float64(pt.Applied)
	} else {
		pt.CoalesceRatio = 1
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.OpsPerSec = float64(pt.Admitted) / s
	}
	lat := im.OpLatencyNS.Snapshot()
	const ms = 1e6
	pt.OpLatencyP50Ms = float64(lat.P50) / ms
	pt.OpLatencyP99Ms = float64(lat.P99) / ms
	qf := float64(queries)
	pt.AvgLatency /= qf
	pt.AvgTuning /= qf
	pt.AvgEpochRestarts /= qf
	sm := srv.Metrics()
	pt.Obs = map[string]any{"server": sm.Snapshot(), "client": cm.Snapshot(), "ingest": im.Snapshot()}

	if got := shedLocal; got != pt.Shed {
		return pt, fmt.Errorf("shed accounting diverged: producers saw %d rejections, pipeline counted %d", got, pt.Shed)
	}

	client.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		return pt, fmt.Errorf("shutdown after ingest cell: %w", err)
	}
	return pt, nil
}

// IngestTables renders the sweep: sustained throughput, folding, and
// op-to-air latency against the query-side cost.
func IngestTables(ps []IngestPoint) string {
	if len(ps) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — asynchronous ingest vs offered update load (ops per %d queries)\n",
		ps[0].Dataset, ps[0].Queries)
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %8s %10s %10s\n",
		"offered", "admitted", "shed", "cuts", "applied", "fold", "ops/sec")
	for _, p := range ps {
		fmt.Fprintf(&b, "%-10d %10d %8d %8d %8d %10.2f %10.0f\n",
			p.Offered, p.Admitted, p.Shed, p.Cuts, p.Applied, p.CoalesceRatio, p.OpsPerSec)
	}
	b.WriteString("\nop-to-on-air latency (ms) and query cost under load\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %14s %14s %16s\n",
		"offered", "op p50", "op p99", "avg latency", "avg tuning", "epoch restarts")
	for _, p := range ps {
		if p.Applied == 0 {
			fmt.Fprintf(&b, "%-10d %10s %10s %14.3f %14.3f %16.4f\n",
				p.Offered, "-", "-", p.AvgLatency, p.AvgTuning, p.AvgEpochRestarts)
			continue
		}
		fmt.Fprintf(&b, "%-10d %10.2f %10.2f %14.3f %14.3f %16.4f\n",
			p.Offered, p.OpLatencyP50Ms, p.OpLatencyP99Ms, p.AvgLatency, p.AvgTuning, p.AvgEpochRestarts)
	}
	return b.String()
}

// IngestCSV renders the sweep as comma-separated rows for external plotting.
func IngestCSV(ps []IngestPoint) string {
	var b strings.Builder
	b.WriteString("dataset,offered,queries,admitted,shed,cuts,applied,coalesce_ratio,ops_per_sec," +
		"op_latency_p50_ms,op_latency_p99_ms,avg_latency,avg_tuning,avg_epoch_restarts\n")
	for _, p := range ps {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%.3f,%.1f,%.3f,%.3f,%.4f,%.4f,%.4f\n",
			p.Dataset, p.Offered, p.Queries, p.Admitted, p.Shed, p.Cuts, p.Applied,
			p.CoalesceRatio, p.OpsPerSec, p.OpLatencyP50Ms, p.OpLatencyP99Ms,
			p.AvgLatency, p.AvgTuning, p.AvgEpochRestarts)
	}
	return b.String()
}
