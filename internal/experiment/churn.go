package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/stream"
)

// This file hosts the live-reconfiguration extension experiment: how much
// access latency and tuning a hot program swap costs the clients that are
// querying while the site population churns. Each cell runs a real TCP
// server with a stream.Swapper applying add/remove/move batches
// concurrently with the measured queries, so the numbers include every
// protocol effect — mid-query epoch restarts, abandoned index walks,
// re-probes, and the dozing backoff.

// ChurnPoint is one cell of the sweep: one churn level (site operations
// applied while the cell's queries run) measured over live streamed
// queries.
type ChurnPoint struct {
	Dataset string
	Ops     int // site operations applied during the cell (0 = static baseline)
	Queries int

	Swaps int // program generations published (successful batches)

	AvgLatency       float64 // slots, probe to final frame observed
	AvgTuning        float64 // active-radio packets, recovery included
	AvgEpochRestarts float64 // whole-query restarts forced by swaps, per query
	RestartedFrac    float64 // fraction of queries that hit at least one swap

	// Cut latency: the off-path compile cost of each generation cut
	// (incremental dirty-subtree rebuild, or a full rebuild when the batch
	// is large) and the end-to-end reconfiguration latency including
	// publish, from the server's swap histograms. Milliseconds.
	CutBuildP50  float64
	CutBuildP90  float64
	CutBuildP99  float64
	SwapP50      float64
	SwapP99      float64
	DirtyPermill int64 // rebuilt-node fraction of the last cut, permille

	// Obs holds the cell's full observability snapshot — the live server's
	// frame/connection/swap metrics (including the swap-latency histogram)
	// and the client's distributions — keyed "server" and "client" (JSON
	// output only).
	Obs map[string]any `json:",omitempty"`
}

// ChurnLevels returns the sweep's default churn levels (site operations per
// cell of `queries` queries).
func ChurnLevels() []int { return []int{0, 8, 32, 128} }

// churnBatch assembles one random add/remove/move batch that keeps the
// live population hovering around n0.
func churnBatch(sw *stream.Swapper, rng *rand.Rand, n0, size int) []stream.SiteOp {
	ids := sw.LiveSiteIDs()
	ops := make([]stream.SiteOp, 0, size)
	for len(ops) < size {
		randomPt := geom.Pt(
			dataset.Area.MinX+rng.Float64()*dataset.Area.W(),
			dataset.Area.MinY+rng.Float64()*dataset.Area.H(),
		)
		switch k := rng.Intn(3); {
		case k == 0 || len(ids) <= n0/2:
			ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: randomPt})
		case k == 1 && len(ids) > n0/2:
			j := ids[rng.Intn(len(ids))]
			ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: j})
			ids = dropID(ids, j)
		default:
			j := ids[rng.Intn(len(ids))]
			ops = append(ops, stream.SiteOp{Kind: stream.OpMove, ID: j, P: randomPt})
			ids = dropID(ids, j)
		}
	}
	return ops
}

func dropID(ids []int, id int) []int {
	out := make([]int, 0, len(ids))
	for _, j := range ids {
		if j != id {
			out = append(out, j)
		}
	}
	return out
}

// RunChurn sweeps churn level over live streamed queries against one
// dataset at one packet capacity. Levels should include 0 (the static
// baseline every penalty is measured against). Every query must resolve to
// the region correct for the generation it completed under, or the sweep
// fails — churn degrades latency and tuning, never correctness.
func RunChurn(ds dataset.Dataset, capacity int, levels []int, queries int, seed int64) ([]ChurnPoint, error) {
	if queries <= 0 {
		queries = 100
	}
	var out []ChurnPoint
	for _, ops := range levels {
		pt, err := runChurnCell(ds, capacity, ops, queries, seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: churn level %d: %w", ops, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// runChurnCell measures one churn level over a fresh server. The driver
// goroutine applies batches while the measuring client queries, so swaps
// land mid-query; batches are paced across the run by query count.
func runChurnCell(ds dataset.Dataset, capacity, churnOps, queries int, seed int64) (ChurnPoint, error) {
	sw, err := stream.NewSwapper(ds.Area, ds.Sites, capacity, 0)
	if err != nil {
		return ChurnPoint{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ChurnPoint{}, err
	}
	srv, err := stream.NewServer(ln, sw.Program())
	if err != nil {
		ln.Close()
		return ChurnPoint{}, err
	}
	sw.Bind(srv)
	go srv.Serve() //nolint:errcheck
	defer srv.Close()

	client, err := stream.Dial(srv.Addr().String(), capacity)
	if err != nil {
		return ChurnPoint{}, err
	}
	defer client.Close()
	cm := stream.NewClientMetrics()
	client.Metrics = cm

	// The driver owns all swapper mutations — it composes each batch from
	// the live site ids at apply time (composing in the query goroutine
	// would race with its own earlier, still-in-flight batches) and applies
	// it concurrently with the queries being measured.
	const batchSize = 4
	batches := make(chan int, 1)
	driverDone := make(chan error, 1)
	go func() {
		defer close(driverDone)
		drng := rand.New(rand.NewSource(seed + int64(churnOps)*31 + 1))
		for n := range batches {
			if _, _, err := sw.Apply(churnBatch(sw, drng, ds.N(), n)); err != nil {
				driverDone <- err
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(seed + int64(churnOps)*31))
	pt := ChurnPoint{Dataset: ds.Name, Ops: churnOps, Queries: queries}
	sent := 0
	every := 1
	if churnOps > 0 {
		if every = queries * batchSize / churnOps; every < 1 {
			every = 1
		}
	}
	restarted := 0
	for q := 0; q < queries; q++ {
		if churnOps > 0 && sent < churnOps && q%every == 0 {
			n := batchSize
			if n > churnOps-sent {
				n = churnOps - sent
			}
			select {
			case batches <- n:
				sent += n
			case err := <-driverDone:
				close(batches)
				return pt, err
			}
		}
		p := geom.Pt(
			dataset.Area.MinX+rng.Float64()*dataset.Area.W(),
			dataset.Area.MinY+rng.Float64()*dataset.Area.H(),
		)
		res, err := client.Query(p)
		if err != nil {
			close(batches)
			return pt, fmt.Errorf("query %d at %v: %w", q, p, err)
		}
		g := sw.Generation(res.Generation)
		if g == nil {
			close(batches)
			return pt, fmt.Errorf("query %d: unknown generation %d", q, res.Generation)
		}
		if want := g.Sub.Locate(p); res.Bucket != want && !g.Sub.Regions[res.Bucket].Poly.Contains(p) {
			close(batches)
			return pt, fmt.Errorf("query %d at %v: bucket %d, want %d (generation %d)", q, p, res.Bucket, want, res.Generation)
		}
		if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			close(batches)
			return pt, fmt.Errorf("query %d: %w", q, err)
		}
		pt.AvgLatency += res.Latency
		pt.AvgTuning += float64(res.TotalTuning())
		pt.AvgEpochRestarts += float64(res.EpochRestarts)
		if res.EpochRestarts > 0 {
			restarted++
		}
	}
	close(batches)
	if err, ok := <-driverDone; ok && err != nil {
		return pt, err
	}
	qf := float64(queries)
	pt.AvgLatency /= qf
	pt.AvgTuning /= qf
	pt.AvgEpochRestarts /= qf
	pt.RestartedFrac = float64(restarted) / qf
	pt.Swaps = int(sw.Current().Gen - 1)
	sm := srv.Metrics()
	const ms = 1e6 // histogram samples are nanoseconds
	cb, sl := sm.CutBuildNS.Snapshot(), sm.SwapLatencyNS.Snapshot()
	pt.CutBuildP50 = float64(cb.P50) / ms
	pt.CutBuildP90 = float64(cb.P90) / ms
	pt.CutBuildP99 = float64(cb.P99) / ms
	pt.SwapP50 = float64(sl.P50) / ms
	pt.SwapP99 = float64(sl.P99) / ms
	pt.DirtyPermill = sm.CutDirtyPermille.Load()
	pt.Obs = map[string]any{"server": sm.Snapshot(), "client": cm.Snapshot()}

	// Disconnect before draining: a connected client that has stopped
	// reading would hold its connection short of the cycle boundary.
	client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return pt, fmt.Errorf("shutdown after churn cell: %w", err)
	}
	return pt, nil
}

// ChurnTables renders the sweep: latency, tuning, and restart penalty as
// functions of the churn level.
func ChurnTables(ps []ChurnPoint) string {
	if len(ps) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — live reconfiguration cost vs churn (site ops per %d queries)\n",
		ps[0].Dataset, ps[0].Queries)
	fmt.Fprintf(&b, "%-10s %8s %14s %14s %16s %16s\n",
		"ops", "swaps", "avg latency", "avg tuning", "epoch restarts", "restarted frac")
	for _, p := range ps {
		fmt.Fprintf(&b, "%-10d %8d %14.3f %14.3f %16.4f %16.4f\n",
			p.Ops, p.Swaps, p.AvgLatency, p.AvgTuning, p.AvgEpochRestarts, p.RestartedFrac)
	}
	b.WriteString("\ncut latency (generation compile off the serving path, ms)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %12s %8s\n",
		"ops", "build p50", "build p90", "build p99", "swap p50", "swap p99", "dirty pm")
	for _, p := range ps {
		if p.Swaps == 0 {
			fmt.Fprintf(&b, "%-10d %10s %10s %10s %12s %12s %8s\n", p.Ops, "-", "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-10d %10.2f %10.2f %10.2f %12.2f %12.2f %8d\n",
			p.Ops, p.CutBuildP50, p.CutBuildP90, p.CutBuildP99, p.SwapP50, p.SwapP99, p.DirtyPermill)
	}
	return b.String()
}

// ChurnCSV renders the sweep as comma-separated rows for external plotting.
func ChurnCSV(ps []ChurnPoint) string {
	var b strings.Builder
	b.WriteString("dataset,ops,queries,swaps,avg_latency,avg_tuning,avg_epoch_restarts,restarted_frac," +
		"cut_build_p50_ms,cut_build_p90_ms,cut_build_p99_ms,swap_p50_ms,swap_p99_ms,dirty_permille\n")
	for _, p := range ps {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n",
			p.Dataset, p.Ops, p.Queries, p.Swaps, p.AvgLatency, p.AvgTuning, p.AvgEpochRestarts, p.RestartedFrac,
			p.CutBuildP50, p.CutBuildP90, p.CutBuildP99, p.SwapP50, p.SwapP99, p.DirtyPermill)
	}
	return b.String()
}
