package experiment

import (
	"bytes"
	"testing"

	"airindex/internal/dataset"
)

// TestBuildWithWorkersDeterministic checks the concurrent multi-family
// build end to end: at any build worker count the D-tree marshals to the
// same bytes and the paged index families report the same broadcast sizes.
func TestBuildWithWorkersDeterministic(t *testing.T) {
	ds := dataset.Uniform(180, 3)
	var wantTree []byte
	var wantPackets []int
	for _, workers := range []int{1, 4, 8} {
		b, err := BuildWithWorkers(ds, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := b.DTree.Marshal()
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		indexes, err := b.Indexes(256)
		if err != nil {
			t.Fatalf("workers=%d: indexes: %v", workers, err)
		}
		packets := make([]int, len(indexes))
		for i, idx := range indexes {
			packets[i] = idx.IndexPackets()
		}
		if wantTree == nil {
			wantTree, wantPackets = data, packets
			continue
		}
		if !bytes.Equal(data, wantTree) {
			t.Fatalf("workers=%d: D-tree differs from workers=1", workers)
		}
		for i := range packets {
			if packets[i] != wantPackets[i] {
				t.Fatalf("workers=%d: index %d pages %d packets, want %d", workers, i, packets[i], wantPackets[i])
			}
		}
	}
}
