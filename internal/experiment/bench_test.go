package experiment

import (
	"strconv"
	"testing"

	"airindex/internal/dataset"
)

func benchBuilt(b *testing.B) *Built {
	b.Helper()
	built, err := Build(dataset.Uniform(150, 11), 7)
	if err != nil {
		b.Fatal(err)
	}
	return built
}

// BenchmarkBuildAll measures the whole cold path from sites to the
// packet-independent index structures — Voronoi valid scopes, subdivision,
// D-tree, trian-tree and trap-tree — at the build-pipeline scaling tiers.
func BenchmarkBuildAll(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run("N="+strconv.Itoa(n/1000)+"k", func(b *testing.B) {
			ds := dataset.Uniform(n, int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(ds, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasureIndexes measures the Monte Carlo query engine alone
// (indexes prebuilt): the cost of one full (dataset, capacity) cell.
func BenchmarkMeasureIndexes(b *testing.B) {
	built := benchBuilt(b)
	cfg := Config{Capacities: []int{256}, Queries: 20000, Seed: 7}.withDefaults()
	indexes, err := built.Indexes(256)
	if err != nil {
		b.Fatal(err)
	}
	sampler := NewSampler(built.Sub)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := measureIndexes(built, sampler, indexes, 256, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != len(indexes) {
			b.Fatalf("measurements = %d", len(ms))
		}
	}
	// One op simulates the baseline plus every index.
	qps := float64(cfg.Queries*(len(indexes)+1)*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/s")
}

// BenchmarkMeasureIndexesWorkers pins the engine at explicit worker
// counts. On a single-core host the counts tie (the parallel win needs
// real CPUs); on multi-core hosts the spread is the parallel speedup, and
// the determinism tests guarantee the outputs are identical either way.
func BenchmarkMeasureIndexesWorkers(b *testing.B) {
	built := benchBuilt(b)
	indexes, err := built.Indexes(256)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			cfg := Config{Capacities: []int{256}, Queries: 20000, Seed: 7, Workers: workers}.withDefaults()
			sampler := NewSampler(built.Sub)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := measureIndexes(built, sampler, indexes, 256, cfg); err != nil {
					b.Fatal(err)
				}
			}
			qps := float64(cfg.Queries*(len(indexes)+1)*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
		})
	}
}

// BenchmarkRunSweep measures a full Run over two capacities, including
// index paging/building — the index-cache target.
func BenchmarkRunSweep(b *testing.B) {
	built := benchBuilt(b)
	cfg := Config{Capacities: []int{128, 256}, Queries: 5000, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := Run(built, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != 8 {
			b.Fatalf("measurements = %d", len(ms))
		}
	}
}
