package experiment

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"airindex/internal/dataset"
	"airindex/internal/geom"
)

func smallConfig() Config {
	return Config{Capacities: []int{128, 1024}, Queries: 3000, Seed: 7}
}

func TestRunProducesAllCells(t *testing.T) {
	ds := dataset.Uniform(120, 11)
	b, err := Build(ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*4 {
		t.Fatalf("measurements = %d, want 8", len(ms))
	}
	for _, m := range ms {
		if m.NormLatency < 1 {
			t.Errorf("%s@%d: normalized latency %v below optimal", m.Index, m.Packet, m.NormLatency)
		}
		if m.AvgTuneIndex <= 0 {
			t.Errorf("%s@%d: no index tuning measured", m.Index, m.Packet)
		}
		if m.IndexPackets <= 0 || m.DataPackets <= 0 || m.M < 1 {
			t.Errorf("%s@%d: bad sizes %+v", m.Index, m.Packet, m)
		}
		if m.Efficiency <= 0 {
			t.Errorf("%s@%d: efficiency %v", m.Index, m.Packet, m.Efficiency)
		}
	}
}

func TestPaperHeadlineShapesHold(t *testing.T) {
	// The qualitative results of Section 5 on a reduced dataset: the D-tree
	// has (a) the smallest index, (b) latency within ~2x of optimal while
	// the decomposition baselines blow up, and (c) the best efficiency.
	ds := dataset.Uniform(250, 13)
	b, err := Build(ds, 13)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run(b, Config{Capacities: []int{128, 512}, Queries: 4000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Measurement{}
	for _, m := range ms {
		byKey[m.Index+"@"+strconv.Itoa(m.Packet)] = m
	}
	for _, pk := range []string{"128", "512"} {
		d := byKey["D-tree@"+pk]
		for _, other := range []string{"trian-tree", "trap-tree", "R*-tree"} {
			o := byKey[other+"@"+pk]
			if d.NormIndexSize > o.NormIndexSize {
				t.Errorf("packet %s: D-tree index (%.4f) larger than %s (%.4f)",
					pk, d.NormIndexSize, other, o.NormIndexSize)
			}
			if d.Efficiency < o.Efficiency {
				t.Errorf("packet %s: D-tree efficiency (%.2f) below %s (%.2f)",
					pk, d.Efficiency, other, o.Efficiency)
			}
		}
		if d.NormLatency > 2 {
			t.Errorf("packet %s: D-tree latency %.2fx optimal", pk, d.NormLatency)
		}
		if trap := byKey["trap-tree@"+pk]; trap.NormLatency < 2.5 {
			t.Errorf("packet %s: trap-tree latency only %.2fx optimal (expected blow-up)", pk, trap.NormLatency)
		}
	}
}

func TestSamplerUniformOverRegions(t *testing.T) {
	ds := dataset.Uniform(50, 17)
	sub, err := ds.Subdivision()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sub)
	rng := rand.New(rand.NewSource(18))
	counts := make([]int, sub.N())
	const q = 50000
	for i := 0; i < q; i++ {
		p, r := s.Query(rng)
		if !sub.Regions[r].Poly.Contains(p) {
			t.Fatalf("sampled point %v outside its region %d", p, r)
		}
		counts[r]++
	}
	// Uniform over regions: each region ~q/N draws.
	want := float64(q) / float64(sub.N())
	for r, c := range counts {
		if float64(c) < want*0.7 || float64(c) > want*1.3 {
			t.Errorf("region %d drawn %d times, want about %.0f", r, c, want)
		}
	}
}

func TestSamplerByArea(t *testing.T) {
	ds := dataset.Uniform(50, 19)
	sub, err := ds.Subdivision()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sub)
	s.ByArea = true
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 2000; i++ {
		p, r := s.Query(rng)
		if !sub.Regions[r].Poly.Contains(p) {
			t.Fatalf("area-sampled point %v outside region %d", p, r)
		}
	}
}

func TestTablesAndCSV(t *testing.T) {
	ds := dataset.Uniform(60, 21)
	b, err := Build(ds, 21)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run(b, Config{Capacities: []int{256}, Queries: 500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	table := Figure(ms, MetricTuneIndex)
	for _, want := range []string{"UNIFORM(60)", "D-tree", "trap-tree", "256"} {
		if !strings.Contains(table, want) {
			t.Errorf("figure table missing %q:\n%s", want, table)
		}
	}
	csv := CSV(ms)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+4 {
		t.Errorf("CSV rows = %d, want header + 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dataset,index,packet") {
		t.Errorf("CSV header: %s", lines[0])
	}
	if got := Packets(ms); len(got) != 1 || got[0] != 256 {
		t.Errorf("Packets = %v", got)
	}
	if got := Datasets(ms); len(got) != 1 || got[0] != "UNIFORM(60)" {
		t.Errorf("Datasets = %v", got)
	}
}

func TestAblationRuns(t *testing.T) {
	ds := dataset.Uniform(80, 23)
	ms, err := RunAblation(ds, Config{Capacities: []int{128}, Queries: 1500, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(AblationVariants) {
		t.Fatalf("measurements = %d, want %d", len(ms), len(AblationVariants))
	}
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Index] = m
	}
	full := byName["D-tree"]
	if noEarly := byName["no-early-termination"]; noEarly.AvgTuneIndex < full.AvgTuneIndex-1e-9 {
		t.Errorf("disabling early termination improved tuning: %v < %v",
			noEarly.AvgTuneIndex, full.AvgTuneIndex)
	}
	if single := byName["single-style"]; single.IndexPackets < full.IndexPackets {
		t.Errorf("single style produced a smaller index: %d < %d",
			single.IndexPackets, full.IndexPackets)
	}
}

func TestQueryPointAlwaysResolves(t *testing.T) {
	ds := dataset.Hospital()
	b, err := Build(ds, 29)
	if err != nil {
		t.Fatal(err)
	}
	idxs, err := b.Indexes(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 1500; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		for _, idx := range idxs {
			id, trace := idx.Locate(p)
			if id < 0 {
				t.Fatalf("%s failed to resolve %v", idx.Name(), p)
			}
			if len(trace) == 0 {
				t.Fatalf("%s returned an empty trace", idx.Name())
			}
		}
	}
}

func TestRunSkewed(t *testing.T) {
	ds := dataset.Uniform(90, 31)
	ms, err := RunSkewed(ds, Config{Capacities: []int{256}, Queries: 2000, Seed: 31}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Index] = true
		if m.AvgTuneIndex <= 0 || m.NormLatency < 1 {
			t.Errorf("%s: degenerate measurement %+v", m.Index, m)
		}
	}
	if !names["balanced"] || !names["weighted"] {
		t.Errorf("variant names missing: %v", names)
	}
	if out := RenderSkew(ms, ds.Name, 1.2); !strings.Contains(out, "weighted") {
		t.Errorf("render missing variant: %s", out)
	}
}

func TestRunCached(t *testing.T) {
	ds := dataset.Uniform(70, 33)
	rs, err := RunCached(ds, 256, []int{0, 4}, Config{Queries: 2000, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4*2 {
		t.Fatalf("results = %d, want 8", len(rs))
	}
	byKey := map[string]CacheResult{}
	for _, r := range rs {
		byKey[r.Index+"@"+strconv.Itoa(r.CachePackets)] = r
		if r.CachePackets == 0 && r.HitRate != 0 {
			t.Errorf("%s: hit rate %v with empty cache", r.Index, r.HitRate)
		}
	}
	for _, name := range IndexOrder {
		zero, four := byKey[name+"@0"], byKey[name+"@4"]
		if four.AvgTuneIndex > zero.AvgTuneIndex+1e-9 {
			t.Errorf("%s: caching increased tuning (%v -> %v)", name, zero.AvgTuneIndex, four.AvgTuneIndex)
		}
		if four.HitRate <= 0 {
			t.Errorf("%s: zero hit rate with 4 pinned packets", name)
		}
	}
	table := CacheTable(rs)
	for _, want := range []string{"cache", "D-tree", "0", "4"} {
		if !strings.Contains(table, want) {
			t.Errorf("cache table missing %q:\n%s", want, table)
		}
	}
	if CacheTable(nil) != "" {
		t.Error("empty cache table should be empty")
	}
}

func TestRunDistributed(t *testing.T) {
	ds := dataset.Uniform(120, 35)
	ms, err := RunDistributed(ds, Config{Capacities: []int{256}, Queries: 3000, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Index] = m
	}
	om, dist := byName["D-tree (1,m)"], byName["D-tree (dist)"]
	if om.Index == "" || dist.Index == "" {
		t.Fatalf("variant names missing: %v", byName)
	}
	if dist.NormLatency >= om.NormLatency {
		t.Errorf("distributed latency %.3f not below (1,m) %.3f", dist.NormLatency, om.NormLatency)
	}
	if dist.Efficiency <= om.Efficiency {
		t.Errorf("distributed efficiency %.2f not above (1,m) %.2f", dist.Efficiency, om.Efficiency)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0, 7)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	max, sum := 0.0, 0.0
	for _, v := range w {
		if v <= 0 {
			t.Fatal("non-positive weight")
		}
		if v > max {
			max = v
		}
		sum += v
	}
	if max != 1.0 {
		t.Errorf("top weight = %v, want 1 (rank 1)", max)
	}
	if sum < 4 || sum > 6 { // harmonic(100) ~ 5.19
		t.Errorf("weight sum %v, want about H(100)", sum)
	}
	w2 := ZipfWeights(100, 1.0, 7)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("not deterministic")
		}
	}
}
