package experiment

import (
	"strings"
	"testing"

	"airindex/internal/dataset"
)

// TestRunShardsSweep exercises the shard sweep end to end on a small
// dataset: the S=1 row is the flat baseline, latency improves
// monotonically enough to show the sharding effect, and every sharded
// access was verified against ground truth inside RunShards itself.
func TestRunShardsSweep(t *testing.T) {
	ds := dataset.Uniform(300, 17)
	cfg := Config{Queries: 2000, Seed: 7, NoBaselines: true}
	pts, err := RunShards(ds, 128, []int{1, 2, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d rows", len(pts))
	}
	if pts[0].Shards != 1 || pts[0].DirPackets != 0 || pts[0].AvgHops != 0 {
		t.Fatalf("S=1 row is not the flat baseline: %+v", pts[0])
	}
	if pts[0].SpeedupVsS1 != 1 {
		t.Fatalf("baseline speedup %v", pts[0].SpeedupVsS1)
	}
	for _, p := range pts[1:] {
		if p.DirPackets < 1 {
			t.Fatalf("S=%d carries no directory", p.Shards)
		}
		if p.AvgHops <= 0 {
			t.Fatalf("S=%d: no hops despite random entry channels", p.Shards)
		}
		if p.SpeedupVsS1 <= 1 {
			t.Fatalf("S=%d: latency did not improve (speedup %v)", p.Shards, p.SpeedupVsS1)
		}
		if p.AvgLatency >= pts[0].AvgLatency {
			t.Fatalf("S=%d latency %v >= baseline %v", p.Shards, p.AvgLatency, pts[0].AvgLatency)
		}
	}
	// S=4 should beat S=2: shorter cycles dominate the extra hop odds.
	if pts[2].AvgLatency >= pts[1].AvgLatency {
		t.Fatalf("S=4 latency %v >= S=2 latency %v", pts[2].AvgLatency, pts[1].AvgLatency)
	}

	table := ShardsTables(pts)
	if !strings.Contains(table, "speedup") || !strings.Contains(table, "sharded fabric") {
		t.Fatalf("table missing headers:\n%s", table)
	}
	csv := ShardsCSV(pts)
	if got := strings.Count(csv, "\n"); got != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", got, csv)
	}
}

// TestBuildWithoutBaselines: the opt-out leaves Trian/Trap nil and pages
// only the two product-path families, and the default build still pages
// all four.
func TestBuildWithoutBaselines(t *testing.T) {
	ds := dataset.Uniform(60, 3)
	b, err := Build(ds, 42, WithoutBaselines())
	if err != nil {
		t.Fatal(err)
	}
	if b.Trian != nil || b.Trap != nil {
		t.Fatal("baseline structures built despite WithoutBaselines")
	}
	idx, err := b.Indexes(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("got %d index families without baselines", len(idx))
	}
	if idx[0].Name() != "D-tree" || idx[1].Name() != "R*-tree" {
		t.Fatalf("unexpected families: %s, %s", idx[0].Name(), idx[1].Name())
	}

	full, err := Build(ds, 42)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = full.Indexes(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 4 {
		t.Fatalf("default build pages %d families, want 4", len(idx))
	}
}
