package experiment

import (
	"fmt"
	"math/rand"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/distidx"
	"airindex/internal/wire"
)

// RunDistributed compares the paper's (1, m) broadcast organization against
// distributed indexing (Imielinski et al.) for the same D-tree, across the
// configured packet capacities. Index names in the result: "D-tree (1,m)"
// and "D-tree (dist)".
func RunDistributed(ds dataset.Dataset, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	sub, err := ds.Subdivision()
	if err != nil {
		return nil, err
	}
	tree, err := core.Build(sub)
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(sub)
	sampler.ByArea = cfg.ByArea

	var out []Measurement
	for _, capacity := range cfg.Capacities {
		params := wire.DTreeParams(capacity)
		bp := params.DataBucketPackets()
		dataPackets := sub.N() * bp
		optLatency := float64(dataPackets) / 2

		// Shared non-indexing baseline.
		rng := rand.New(rand.NewSource(cfg.Seed))
		var noIdxTune float64
		for q := 0; q < cfg.Queries; q++ {
			_, want := sampler.Query(rng)
			tm := rng.Float64() * float64(dataPackets)
			noIdxTune += float64(broadcast.NoIndexAccess(tm, sub.N(), bp, want).TotalTuning())
		}
		noIdxTune /= float64(cfg.Queries)

		// (1, m).
		paged, err := tree.Page(params)
		if err != nil {
			return nil, err
		}
		m := broadcast.OptimalM(paged.IndexPackets(), dataPackets)
		sched, err := broadcast.NewSchedule(paged.IndexPackets(), sub.N(), bp, m)
		if err != nil {
			return nil, err
		}
		qrng := rand.New(rand.NewSource(cfg.Seed + 1))
		var lat, tuneIdx, tuneTotal float64
		for q := 0; q < cfg.Queries; q++ {
			p, _ := sampler.Query(qrng)
			bucket, trace := paged.Locate(p)
			c, err := sched.Access(qrng.Float64()*float64(sched.CycleLen()),
				broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
			if err != nil {
				return nil, err
			}
			lat += c.Latency
			tuneIdx += float64(c.TuneIndex)
			tuneTotal += float64(c.TotalTuning())
		}
		qf := float64(cfg.Queries)
		out = append(out, distMeasurement(ds.Name, "D-tree (1,m)", capacity,
			m*paged.IndexPackets(), dataPackets, m,
			lat/qf, tuneIdx/qf, tuneTotal/qf, optLatency, noIdxTune))

		// Distributed indexing.
		dist, err := distidx.New(tree, params)
		if err != nil {
			return nil, fmt.Errorf("distributed at %d bytes: %w", capacity, err)
		}
		qrng = rand.New(rand.NewSource(cfg.Seed + 1))
		lat, tuneIdx, tuneTotal = 0, 0, 0
		for q := 0; q < cfg.Queries; q++ {
			p, _ := sampler.Query(qrng)
			c, err := dist.Access(p, qrng.Float64()*float64(dist.CycleLen()))
			if err != nil {
				return nil, err
			}
			lat += c.Latency
			tuneIdx += float64(c.TuneIndex)
			tuneTotal += float64(c.TotalTuning())
		}
		out = append(out, distMeasurement(ds.Name, "D-tree (dist)", capacity,
			dist.TotalIndexPackets(), dataPackets, dist.Segments(),
			lat/qf, tuneIdx/qf, tuneTotal/qf, optLatency, noIdxTune))
	}
	return out, nil
}

func distMeasurement(dsName, idxName string, capacity, idxPackets, dataPackets, m int,
	lat, tuneIdx, tuneTotal, optLatency, noIdxTune float64) Measurement {
	eff := 0.0
	if overhead := lat - optLatency; overhead > 0 {
		eff = (noIdxTune - tuneTotal) / overhead
	}
	return Measurement{
		Dataset: dsName, Index: idxName, Packet: capacity,
		IndexPackets: idxPackets, DataPackets: dataPackets, M: m,
		AvgLatency: lat, NormLatency: lat / optLatency,
		AvgTuneIndex: tuneIdx, AvgTuneTotal: tuneTotal,
		NormIndexSize: float64(idxPackets) / float64(dataPackets),
		Efficiency:    eff,
		NoIndexTuning: noIdxTune,
	}
}
