package experiment

import (
	"fmt"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/distidx"
	"airindex/internal/wire"
)

// RunDistributed compares the paper's (1, m) broadcast organization against
// distributed indexing (Imielinski et al.) for the same D-tree, across the
// configured packet capacities. Index names in the result: "D-tree (1,m)"
// and "D-tree (dist)". The query streams are drawn once and each simulation
// loop is sharded across cfg.Workers goroutines (see parallel.go); the
// capacities themselves run sequentially — the distributed layout build
// dominates setup and benefits little from overlap.
func RunDistributed(ds dataset.Dataset, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	sub, err := ds.Subdivision()
	if err != nil {
		return nil, err
	}
	tree, err := core.Build(sub)
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(sub)
	sampler.ByArea = cfg.ByArea
	streams := newQueryStreams(sampler, cfg)
	q := cfg.Queries
	qf := float64(q)
	costs := make([]accessCost, q)

	var out []Measurement
	for _, capacity := range cfg.Capacities {
		params := wire.DTreeParams(capacity)
		bp := params.DataBucketPackets()
		dataPackets := sub.N() * bp
		optLatency := float64(dataPackets) / 2

		// Shared non-indexing baseline.
		if err := forEachShard(cfg.Workers, q, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				sq := &streams.base[i]
				tm := sq.u * float64(dataPackets)
				c := broadcast.NoIndexAccess(tm, sub.N(), bp, int(sq.want))
				costs[i] = accessCost{tuneTotal: int32(c.TotalTuning())}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		var noIdxTune float64
		for i := range costs {
			noIdxTune += float64(costs[i].tuneTotal)
		}
		noIdxTune /= qf

		// (1, m).
		paged, err := tree.Page(params)
		if err != nil {
			return nil, err
		}
		m := broadcast.OptimalM(paged.IndexPackets(), dataPackets)
		sched, err := broadcast.NewSchedule(paged.IndexPackets(), sub.N(), bp, m)
		if err != nil {
			return nil, err
		}
		cycleLen := float64(sched.CycleLen())
		if err := forEachShard(cfg.Workers, q, func(lo, hi int) error {
			var buf []int
			for i := lo; i < hi; i++ {
				sq := &streams.idx[i]
				bucket, trace := paged.LocateInto(sq.p, buf)
				buf = trace
				c, err := sched.Access(sq.u*cycleLen,
					broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
				if err != nil {
					return err
				}
				costs[i] = accessCost{lat: c.Latency, tuneIdx: int32(c.TuneIndex), tuneTotal: int32(c.TotalTuning())}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		lat, tuneIdx, tuneTotal := reduceCosts(costs)
		out = append(out, distMeasurement(ds.Name, "D-tree (1,m)", capacity,
			m*paged.IndexPackets(), dataPackets, m,
			lat/qf, tuneIdx/qf, tuneTotal/qf, optLatency, noIdxTune))

		// Distributed indexing.
		dist, err := distidx.New(tree, params)
		if err != nil {
			return nil, fmt.Errorf("distributed at %d bytes: %w", capacity, err)
		}
		distCycle := float64(dist.CycleLen())
		if err := forEachShard(cfg.Workers, q, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				sq := &streams.idx[i]
				c, err := dist.Access(sq.p, sq.u*distCycle)
				if err != nil {
					return err
				}
				costs[i] = accessCost{lat: c.Latency, tuneIdx: int32(c.TuneIndex), tuneTotal: int32(c.TotalTuning())}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		lat, tuneIdx, tuneTotal = reduceCosts(costs)
		out = append(out, distMeasurement(ds.Name, "D-tree (dist)", capacity,
			dist.TotalIndexPackets(), dataPackets, dist.Segments(),
			lat/qf, tuneIdx/qf, tuneTotal/qf, optLatency, noIdxTune))
	}
	return out, nil
}

// reduceCosts sums the per-query slots in query order (keeping the
// floating-point reduction identical to a sequential run).
func reduceCosts(costs []accessCost) (lat, tuneIdx, tuneTotal float64) {
	for i := range costs {
		lat += costs[i].lat
		tuneIdx += float64(costs[i].tuneIdx)
		tuneTotal += float64(costs[i].tuneTotal)
	}
	return lat, tuneIdx, tuneTotal
}

func distMeasurement(dsName, idxName string, capacity, idxPackets, dataPackets, m int,
	lat, tuneIdx, tuneTotal, optLatency, noIdxTune float64) Measurement {
	eff := 0.0
	if overhead := lat - optLatency; overhead > 0 {
		eff = (noIdxTune - tuneTotal) / overhead
	}
	return Measurement{
		Dataset: dsName, Index: idxName, Packet: capacity,
		IndexPackets: idxPackets, DataPackets: dataPackets, M: m,
		AvgLatency: lat, NormLatency: lat / optLatency,
		AvgTuneIndex: tuneIdx, AvgTuneTotal: tuneTotal,
		NormIndexSize: float64(idxPackets) / float64(dataPackets),
		Efficiency:    eff,
		NoIndexTuning: noIdxTune,
	}
}
