package experiment

import (
	"fmt"
	"math/rand"

	"airindex/internal/broadcast"
	"airindex/internal/dataset"
	"airindex/internal/wire"
)

// Config drives a measurement sweep.
type Config struct {
	// Capacities lists the packet sizes to sweep (defaults to the paper's
	// 64 B - 2 KB).
	Capacities []int
	// Queries is the number of Monte Carlo queries per (dataset, capacity,
	// index) cell; the paper uses 1,000,000.
	Queries int
	// Seed makes the query stream reproducible.
	Seed int64
	// ByArea samples queries uniformly over the service area instead of
	// uniformly over data regions.
	ByArea bool
}

func (c Config) withDefaults() Config {
	if len(c.Capacities) == 0 {
		c.Capacities = append([]int(nil), wire.PaperPacketCapacities...)
	}
	if c.Queries <= 0 {
		c.Queries = 100000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Measurement is one point of one curve in Figures 10-13.
type Measurement struct {
	Dataset string
	Index   string
	Packet  int // packet capacity in bytes

	IndexPackets int
	IndexBytes   int // occupied index bytes
	DataPackets  int
	M            int // (1, m) replication factor

	AvgLatency    float64 // packets, via the access protocol
	NormLatency   float64 // / (DataPackets/2), Figure 10
	AvgTuneIndex  float64 // packets, index-search step only, Figure 12
	AvgTuneTotal  float64 // probe + index search + data retrieval
	NormIndexSize float64 // on-air index bytes / on-air data bytes, Figure 11
	Efficiency    float64 // Figure 13

	NoIndexLatency float64 // packets, non-indexing baseline
	NoIndexTuning  float64
}

// Run measures every index over one built dataset across the configured
// packet capacities.
func Run(b *Built, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	sampler := NewSampler(b.Sub)
	sampler.ByArea = cfg.ByArea
	var out []Measurement
	for _, capacity := range cfg.Capacities {
		ms, err := runCapacity(b, sampler, capacity, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

func runCapacity(b *Built, sampler *Sampler, capacity int, cfg Config) ([]Measurement, error) {
	indexes, err := b.Indexes(capacity)
	if err != nil {
		return nil, err
	}
	return measureIndexes(b, sampler, indexes, capacity, cfg)
}

// measureIndexes runs the Monte Carlo protocol simulation for a set of
// already-built indexes at one packet capacity.
func measureIndexes(b *Built, sampler *Sampler, indexes []Index, capacity int, cfg Config) ([]Measurement, error) {
	params := wire.DTreeParams(capacity) // data-side parameters are shared
	bucketPackets := params.DataBucketPackets()
	n := b.Sub.N()
	dataPackets := n * bucketPackets

	// Non-indexing baseline (shared by every index at this capacity).
	rng := rand.New(rand.NewSource(cfg.Seed))
	var noIdxLat, noIdxTune float64
	for q := 0; q < cfg.Queries; q++ {
		p, want := sampler.Query(rng)
		_ = p
		t := rng.Float64() * float64(dataPackets)
		c := broadcast.NoIndexAccess(t, n, bucketPackets, want)
		noIdxLat += c.Latency
		noIdxTune += float64(c.TotalTuning())
	}
	noIdxLat /= float64(cfg.Queries)
	noIdxTune /= float64(cfg.Queries)
	optLatency := float64(dataPackets) / 2

	var out []Measurement
	for _, idx := range indexes {
		m := broadcast.OptimalM(idx.IndexPackets(), dataPackets)
		sched, err := broadcast.NewSchedule(idx.IndexPackets(), n, bucketPackets, m)
		if err != nil {
			return nil, fmt.Errorf("%s/%s(%d): %w", b.Data.Name, idx.Name(), capacity, err)
		}
		qrng := rand.New(rand.NewSource(cfg.Seed + 1))
		var lat, tuneIdx, tuneTotal float64
		for q := 0; q < cfg.Queries; q++ {
			p, _ := sampler.Query(qrng)
			bucket, trace := idx.Locate(p)
			if bucket < 0 {
				return nil, fmt.Errorf("%s/%s(%d): query %v unresolved", b.Data.Name, idx.Name(), capacity, p)
			}
			t := qrng.Float64() * float64(sched.CycleLen())
			c, err := sched.Access(t, broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
			if err != nil {
				return nil, fmt.Errorf("%s/%s(%d): %w", b.Data.Name, idx.Name(), capacity, err)
			}
			lat += c.Latency
			tuneIdx += float64(c.TuneIndex)
			tuneTotal += float64(c.TotalTuning())
		}
		qf := float64(cfg.Queries)
		lat, tuneIdx, tuneTotal = lat/qf, tuneIdx/qf, tuneTotal/qf

		overhead := lat - optLatency
		eff := 0.0
		if overhead > 0 {
			eff = (noIdxTune - tuneTotal) / overhead
		}
		out = append(out, Measurement{
			Dataset:      b.Data.Name,
			Index:        idx.Name(),
			Packet:       capacity,
			IndexPackets: idx.IndexPackets(),
			IndexBytes:   idx.SizeBytes(),
			DataPackets:  dataPackets,
			M:            sched.M,
			AvgLatency:   lat,
			NormLatency:  lat / optLatency,
			AvgTuneIndex: tuneIdx,
			AvgTuneTotal: tuneTotal,
			NormIndexSize: float64(idx.IndexPackets()*capacity) /
				float64(dataPackets*capacity),
			Efficiency:     eff,
			NoIndexLatency: noIdxLat,
			NoIndexTuning:  noIdxTune,
		})
	}
	return out, nil
}

// RunAll builds and measures a set of datasets (defaults to the paper's
// three when ds is nil).
func RunAll(ds []dataset.Dataset, cfg Config) ([]Measurement, error) {
	if ds == nil {
		ds = dataset.Paper()
	}
	cfg = cfg.withDefaults()
	var out []Measurement
	for _, d := range ds {
		b, err := Build(d, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ms, err := Run(b, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}
