package experiment

import (
	"fmt"
	"sync"

	"airindex/internal/broadcast"
	"airindex/internal/dataset"
	"airindex/internal/wire"
)

// Config drives a measurement sweep.
type Config struct {
	// Capacities lists the packet sizes to sweep (defaults to the paper's
	// 64 B - 2 KB).
	Capacities []int
	// Queries is the number of Monte Carlo queries per (dataset, capacity,
	// index) cell; the paper uses 1,000,000.
	Queries int
	// Seed makes the query stream reproducible.
	Seed int64
	// ByArea samples queries uniformly over the service area instead of
	// uniformly over data regions.
	ByArea bool
	// Workers caps the simulation worker pool per cell (<= 0 means one
	// worker per available CPU). Results are bit-identical at any worker
	// count: the query stream is always drawn sequentially and per-query
	// costs are reduced in query order.
	Workers int
	// BuildWorkers caps the D-tree construction worker pool (<= 0 means
	// one per available CPU, 1 forces a sequential build). Like Workers,
	// the count never changes any result: the built tree is bit-identical
	// at any setting.
	BuildWorkers int
	// NoBaselines skips the serial trian-tree and trap-tree baseline
	// builders (see WithoutBaselines); only sweeps that measure those
	// curves need them, and at 50k sites they dominate build time.
	NoBaselines bool
}

// buildOpts translates the Config into Build options.
func (c Config) buildOpts() []BuildOpt {
	if c.NoBaselines {
		return []BuildOpt{WithoutBaselines()}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if len(c.Capacities) == 0 {
		c.Capacities = append([]int(nil), wire.PaperPacketCapacities...)
	}
	if c.Queries <= 0 {
		c.Queries = 100000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Measurement is one point of one curve in Figures 10-13.
type Measurement struct {
	Dataset string
	Index   string
	Packet  int // packet capacity in bytes

	IndexPackets int
	IndexBytes   int // occupied index bytes
	DataPackets  int
	M            int // (1, m) replication factor

	AvgLatency    float64 // packets, via the access protocol
	NormLatency   float64 // / (DataPackets/2), Figure 10
	AvgTuneIndex  float64 // packets, index-search step only, Figure 12
	AvgTuneTotal  float64 // probe + index search + data retrieval
	NormIndexSize float64 // on-air index bytes / on-air data bytes, Figure 11
	Efficiency    float64 // Figure 13

	NoIndexLatency float64 // packets, non-indexing baseline
	NoIndexTuning  float64
}

// Run measures every index over one built dataset across the configured
// packet capacities. The query streams are drawn once (they do not depend
// on the capacity) and the capacities run concurrently, each cell sharding
// its Monte Carlo queries across cfg.Workers goroutines; see parallel.go
// for why the output is nevertheless bit-identical to a sequential run.
func Run(b *Built, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	sampler := NewSampler(b.Sub)
	sampler.ByArea = cfg.ByArea
	streams := newQueryStreams(sampler, cfg)

	results := make([][]Measurement, len(cfg.Capacities))
	errs := make([]error, len(cfg.Capacities))
	var wg sync.WaitGroup
	for i, capacity := range cfg.Capacities {
		wg.Add(1)
		go func(i, capacity int) {
			defer wg.Done()
			indexes, err := b.Indexes(capacity)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = measureIndexesWith(b, streams, indexes, capacity, cfg)
		}(i, capacity)
	}
	wg.Wait()

	var out []Measurement
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// measureIndexes runs the Monte Carlo protocol simulation for a set of
// already-built indexes at one packet capacity, drawing the query streams
// itself (callers sweeping capacities should prefer Run, which draws them
// once).
func measureIndexes(b *Built, sampler *Sampler, indexes []Index, capacity int, cfg Config) ([]Measurement, error) {
	return measureIndexesWith(b, newQueryStreams(sampler, cfg), indexes, capacity, cfg)
}

// measureIndexesWith simulates one (dataset, capacity) cell over
// pre-drawn query streams.
func measureIndexesWith(b *Built, s *queryStreams, indexes []Index, capacity int, cfg Config) ([]Measurement, error) {
	params := wire.DTreeParams(capacity) // data-side parameters are shared
	bucketPackets := params.DataBucketPackets()
	n := b.Sub.N()
	dataPackets := n * bucketPackets
	q := cfg.Queries

	// Non-indexing baseline (shared by every index at this capacity).
	costs := make([]accessCost, q)
	if err := forEachShard(cfg.Workers, q, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sq := &s.base[i]
			t := sq.u * float64(dataPackets)
			c := broadcast.NoIndexAccess(t, n, bucketPackets, int(sq.want))
			costs[i] = accessCost{lat: c.Latency, tuneTotal: int32(c.TotalTuning())}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var noIdxLat, noIdxTune float64
	for i := range costs {
		noIdxLat += costs[i].lat
		noIdxTune += float64(costs[i].tuneTotal)
	}
	noIdxLat /= float64(q)
	noIdxTune /= float64(q)
	optLatency := float64(dataPackets) / 2

	var out []Measurement
	for _, idx := range indexes {
		m := broadcast.OptimalM(idx.IndexPackets(), dataPackets)
		sched, err := broadcast.NewSchedule(idx.IndexPackets(), n, bucketPackets, m)
		if err != nil {
			return nil, fmt.Errorf("%s/%s(%d): %w", b.Data.Name, idx.Name(), capacity, err)
		}
		cycleLen := float64(sched.CycleLen())
		il, fast := idx.(intoLocator)
		if err := forEachShard(cfg.Workers, q, func(lo, hi int) error {
			var buf []int // per-shard trace scratch, reused across queries
			for i := lo; i < hi; i++ {
				sq := &s.idx[i]
				var bucket int
				var trace []int
				if fast {
					bucket, trace = il.LocateInto(sq.p, buf)
					buf = trace
				} else {
					bucket, trace = idx.Locate(sq.p)
				}
				if bucket < 0 {
					return fmt.Errorf("%s/%s(%d): query %v unresolved", b.Data.Name, idx.Name(), capacity, sq.p)
				}
				t := sq.u * cycleLen
				c, err := sched.Access(t, broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
				if err != nil {
					return fmt.Errorf("%s/%s(%d): %w", b.Data.Name, idx.Name(), capacity, err)
				}
				costs[i] = accessCost{lat: c.Latency, tuneIdx: int32(c.TuneIndex), tuneTotal: int32(c.TotalTuning())}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		var lat, tuneIdx, tuneTotal float64
		for i := range costs {
			lat += costs[i].lat
			tuneIdx += float64(costs[i].tuneIdx)
			tuneTotal += float64(costs[i].tuneTotal)
		}
		qf := float64(q)
		lat, tuneIdx, tuneTotal = lat/qf, tuneIdx/qf, tuneTotal/qf

		overhead := lat - optLatency
		eff := 0.0
		if overhead > 0 {
			eff = (noIdxTune - tuneTotal) / overhead
		}
		out = append(out, Measurement{
			Dataset:      b.Data.Name,
			Index:        idx.Name(),
			Packet:       capacity,
			IndexPackets: idx.IndexPackets(),
			IndexBytes:   idx.SizeBytes(),
			DataPackets:  dataPackets,
			M:            sched.M,
			AvgLatency:   lat,
			NormLatency:  lat / optLatency,
			AvgTuneIndex: tuneIdx,
			AvgTuneTotal: tuneTotal,
			NormIndexSize: float64(idx.IndexPackets()*capacity) /
				float64(dataPackets*capacity),
			Efficiency:     eff,
			NoIndexLatency: noIdxLat,
			NoIndexTuning:  noIdxTune,
		})
	}
	return out, nil
}

// RunAll builds and measures a set of datasets (defaults to the paper's
// three when ds is nil), datasets in parallel.
func RunAll(ds []dataset.Dataset, cfg Config) ([]Measurement, error) {
	if ds == nil {
		ds = dataset.Paper()
	}
	cfg = cfg.withDefaults()
	results := make([][]Measurement, len(ds))
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i, d := range ds {
		wg.Add(1)
		go func(i int, d dataset.Dataset) {
			defer wg.Done()
			b, err := BuildWithWorkers(d, cfg.Seed, cfg.BuildWorkers, cfg.buildOpts()...)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = Run(b, cfg)
		}(i, d)
	}
	wg.Wait()
	var out []Measurement
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}
