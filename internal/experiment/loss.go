package experiment

import (
	"fmt"
	"math/rand"
	"net"
	"strings"

	"airindex/internal/channel"
	"airindex/internal/dataset"
	"airindex/internal/region"
	"airindex/internal/stream"
)

// This file hosts the unreliable-channel extension experiment: how much
// energy (tuning) and latency the client's loss/corruption recovery costs
// as the channel degrades, per fault model. Unlike the paper figures these
// run against the real framed byte stream (internal/stream) through the
// fault middleware (internal/channel) over an in-memory pipe, so the
// numbers include every protocol effect — missed index copies, bucket
// retries, wasted wake slots.

// LossModels are the sweep's fault-model families.
var LossModels = []string{"bernoulli", "gilbert-elliott", "corruption"}

// LossPoint is one cell of the sweep: one fault model at one fault rate,
// measured over live streamed queries.
type LossPoint struct {
	Dataset string
	Model   string
	Rate    float64
	Queries int

	AvgLatency    float64 // slots, probe to final frame observed
	AvgTuning     float64 // active-radio packets, recovery included
	AvgRecoveries float64 // recovery actions per query
	AvgLostSlots  float64 // channel drops observed per query

	FramesDropped   int64 // channel-side counters over the whole cell
	FramesCorrupted int64

	// Obs holds the cell's full observability snapshot — the transmit-side
	// frame counters and the client's latency/tuning distributions and
	// recovery counters — keyed "server" and "client" (JSON output only).
	Obs map[string]any `json:",omitempty"`
}

// lossSpec maps a model family and rate to a channel spec. The
// Gilbert-Elliott family uses mean bursts of 4 frames, a common wireless
// fading figure.
func lossSpec(model string, rate float64, seed int64) (channel.Spec, error) {
	switch model {
	case "bernoulli":
		return channel.Spec{Loss: rate, Seed: seed}, nil
	case "gilbert-elliott":
		return channel.Spec{Loss: rate, Burst: 4, Seed: seed}, nil
	case "corruption":
		return channel.Spec{Corrupt: rate, Seed: seed}, nil
	}
	return channel.Spec{}, fmt.Errorf("experiment: unknown fault model %q", model)
}

// RunLoss sweeps fault rate x fault model over live streamed queries
// against one dataset at one packet capacity. Rates should include 0 (the
// reliable baseline every curve starts from). Every query must resolve to
// the correct region with checksum-verified data, or the sweep fails.
func RunLoss(ds dataset.Dataset, capacity int, rates []float64, queries int, seed int64) ([]LossPoint, error) {
	sub, err := ds.Subdivision()
	if err != nil {
		return nil, err
	}
	prog, err := stream.NewDTreeProgram(sub, capacity, 0)
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(sub)
	if queries <= 0 {
		queries = 100
	}
	var out []LossPoint
	for _, model := range LossModels {
		for _, rate := range rates {
			spec, err := lossSpec(model, rate, seed)
			if err != nil {
				return nil, err
			}
			pt, err := runLossCell(ds.Name, sub, prog, sampler, spec, model, rate, capacity, queries, seed)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s at rate %v: %w", model, rate, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// runLossCell measures one (model, rate) cell over a fresh pipe stream.
func runLossCell(name string, sub *region.Subdivision, prog *stream.Program, sampler *Sampler,
	spec channel.Spec, model string, rate float64, capacity, queries int, seed int64) (LossPoint, error) {
	stats := &channel.Stats{}
	ch := channel.New(spec.Model(seed+101), seed+202, stats)
	cliEnd, srvEnd := net.Pipe()
	defer cliEnd.Close()
	defer srvEnd.Close()
	sm := stream.NewMetrics()
	go prog.TransmitObserved(srvEnd, int(seed)%prog.Sched.CycleLen(), ch, sm) //nolint:errcheck

	client := stream.NewClient(cliEnd, capacity)
	cm := stream.NewClientMetrics()
	client.Metrics = cm
	rng := rand.New(rand.NewSource(seed + 7))
	pt := LossPoint{Dataset: name, Model: model, Rate: rate, Queries: queries}
	for q := 0; q < queries; q++ {
		p, want := sampler.Query(rng)
		res, err := client.Query(p)
		if err != nil {
			return pt, fmt.Errorf("query %d at %v: %w", q, p, err)
		}
		if res.Bucket != want && !sub.Regions[res.Bucket].Poly.Contains(p) {
			return pt, fmt.Errorf("query %d at %v: bucket %d, want %d", q, p, res.Bucket, want)
		}
		if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			return pt, fmt.Errorf("query %d: %w", q, err)
		}
		pt.AvgLatency += res.Latency
		pt.AvgTuning += float64(res.TotalTuning())
		pt.AvgRecoveries += float64(res.Recoveries)
		pt.AvgLostSlots += float64(res.LostSlots)
	}
	qf := float64(queries)
	pt.AvgLatency /= qf
	pt.AvgTuning /= qf
	pt.AvgRecoveries /= qf
	pt.AvgLostSlots /= qf
	snap := stats.Snapshot()
	pt.FramesDropped, pt.FramesCorrupted = snap.Dropped, snap.Corrupted
	pt.Obs = map[string]any{"server": sm.Snapshot(), "client": cm.Snapshot()}
	return pt, nil
}

// LossRates returns the sweep's default fault rates.
func LossRates() []float64 { return []float64{0, 0.02, 0.05, 0.10} }

// lossTable renders one metric: rows are fault rates, columns the models.
func lossTable(ps []LossPoint, label string, get func(LossPoint) float64) string {
	var rates []float64
	seenRate := map[float64]bool{}
	var models []string
	seenModel := map[string]bool{}
	cell := map[[2]interface{}]LossPoint{}
	for _, p := range ps {
		if !seenRate[p.Rate] {
			seenRate[p.Rate] = true
			rates = append(rates, p.Rate)
		}
		if !seenModel[p.Model] {
			seenModel[p.Model] = true
			models = append(models, p.Model)
		}
		cell[[2]interface{}{p.Rate, p.Model}] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", ps[0].Dataset, label)
	fmt.Fprintf(&b, "%-10s", "rate")
	for _, m := range models {
		fmt.Fprintf(&b, " %16s", m)
	}
	b.WriteByte('\n')
	for _, r := range rates {
		fmt.Fprintf(&b, "%-10.2f", r)
		for _, m := range models {
			p, ok := cell[[2]interface{}{r, m}]
			if !ok {
				fmt.Fprintf(&b, " %16s", "-")
				continue
			}
			fmt.Fprintf(&b, " %16.3f", get(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LossTables renders the sweep: access latency, total tuning, and
// recovery actions as functions of the channel fault rate.
func LossTables(ps []LossPoint) string {
	if len(ps) == 0 {
		return ""
	}
	return lossTable(ps, "avg access latency (slots) vs channel fault rate",
		func(p LossPoint) float64 { return p.AvgLatency }) + "\n" +
		lossTable(ps, "avg tuning (active-radio packets, recovery included) vs channel fault rate",
			func(p LossPoint) float64 { return p.AvgTuning }) + "\n" +
		lossTable(ps, "avg recovery actions per query vs channel fault rate",
			func(p LossPoint) float64 { return p.AvgRecoveries })
}

// LossCSV renders the sweep as comma-separated rows for external plotting.
func LossCSV(ps []LossPoint) string {
	var b strings.Builder
	b.WriteString("dataset,model,rate,queries,avg_latency,avg_tuning,avg_recoveries,avg_lost_slots,frames_dropped,frames_corrupted\n")
	for _, p := range ps {
		fmt.Fprintf(&b, "%s,%s,%.4f,%d,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
			p.Dataset, p.Model, p.Rate, p.Queries, p.AvgLatency, p.AvgTuning,
			p.AvgRecoveries, p.AvgLostSlots, p.FramesDropped, p.FramesCorrupted)
	}
	return b.String()
}
