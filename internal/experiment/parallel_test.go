package experiment

import (
	"fmt"
	"math/rand"
	"testing"

	"airindex/internal/broadcast"
	"airindex/internal/dataset"
	"airindex/internal/wire"
)

// legacyMeasureIndexes is a verbatim port of the original sequential
// measurement loop (pre worker-pool engine). It is the reference the
// parallel engine must match bit-for-bit: same RNG stream consumption,
// same floating-point accumulation order.
func legacyMeasureIndexes(b *Built, sampler *Sampler, indexes []Index, capacity int, cfg Config) ([]Measurement, error) {
	params := wire.DTreeParams(capacity)
	bucketPackets := params.DataBucketPackets()
	n := b.Sub.N()
	dataPackets := n * bucketPackets

	rng := rand.New(rand.NewSource(cfg.Seed))
	var noIdxLat, noIdxTune float64
	for q := 0; q < cfg.Queries; q++ {
		_, want := sampler.Query(rng)
		t := rng.Float64() * float64(dataPackets)
		c := broadcast.NoIndexAccess(t, n, bucketPackets, want)
		noIdxLat += c.Latency
		noIdxTune += float64(c.TotalTuning())
	}
	noIdxLat /= float64(cfg.Queries)
	noIdxTune /= float64(cfg.Queries)
	optLatency := float64(dataPackets) / 2

	var out []Measurement
	for _, idx := range indexes {
		m := broadcast.OptimalM(idx.IndexPackets(), dataPackets)
		sched, err := broadcast.NewSchedule(idx.IndexPackets(), n, bucketPackets, m)
		if err != nil {
			return nil, err
		}
		qrng := rand.New(rand.NewSource(cfg.Seed + 1))
		var lat, tuneIdx, tuneTotal float64
		for q := 0; q < cfg.Queries; q++ {
			p, _ := sampler.Query(qrng)
			bucket, trace := idx.Locate(p)
			if bucket < 0 {
				return nil, fmt.Errorf("query %v unresolved", p)
			}
			t := qrng.Float64() * float64(sched.CycleLen())
			c, err := sched.Access(t, broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
			if err != nil {
				return nil, err
			}
			lat += c.Latency
			tuneIdx += float64(c.TuneIndex)
			tuneTotal += float64(c.TotalTuning())
		}
		qf := float64(cfg.Queries)
		lat, tuneIdx, tuneTotal = lat/qf, tuneIdx/qf, tuneTotal/qf

		overhead := lat - optLatency
		eff := 0.0
		if overhead > 0 {
			eff = (noIdxTune - tuneTotal) / overhead
		}
		out = append(out, Measurement{
			Dataset:      b.Data.Name,
			Index:        idx.Name(),
			Packet:       capacity,
			IndexPackets: idx.IndexPackets(),
			IndexBytes:   idx.SizeBytes(),
			DataPackets:  dataPackets,
			M:            sched.M,
			AvgLatency:   lat,
			NormLatency:  lat / optLatency,
			AvgTuneIndex: tuneIdx,
			AvgTuneTotal: tuneTotal,
			NormIndexSize: float64(idx.IndexPackets()*capacity) /
				float64(dataPackets*capacity),
			Efficiency:     eff,
			NoIndexLatency: noIdxLat,
			NoIndexTuning:  noIdxTune,
		})
	}
	return out, nil
}

func requireEqualMeasurements(t *testing.T, want, got []Measurement, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d measurements, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: measurement %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestParallelMatchesLegacySequential pins the engine's core guarantee:
// sharded simulation with position-indexed slots and in-query-order
// reduction reproduces the original sequential loop exactly — not within
// epsilon, but ==.
func TestParallelMatchesLegacySequential(t *testing.T) {
	b, err := Build(dataset.Uniform(120, 5), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Capacities: []int{128, 512}, Queries: 4000, Seed: 7}.withDefaults()

	for _, capacity := range cfg.Capacities {
		indexes, err := b.Indexes(capacity)
		if err != nil {
			t.Fatal(err)
		}
		sampler := NewSampler(b.Sub)
		want, err := legacyMeasureIndexes(b, sampler, indexes, capacity, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			c := cfg
			c.Workers = workers
			got, err := measureIndexes(b, NewSampler(b.Sub), indexes, capacity, c)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualMeasurements(t, want, got,
				fmt.Sprintf("capacity %d, workers %d", capacity, workers))
		}
	}
}

// TestRunDeterministicAcrossWorkers asserts the full sweep (parallel
// capacities on top of sharded cells) is bit-identical at any worker
// count; workers=8 also exercises the engine under the race detector.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	b, err := Build(dataset.Uniform(150, 11), 7)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Capacities: []int{64, 256, 1024}, Queries: 3000, Seed: 7, Workers: 1}
	want, err := Run(b, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(base.Capacities)*4 {
		t.Fatalf("expected %d measurements, got %d", len(base.Capacities)*4, len(want))
	}
	for _, workers := range []int{3, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := Run(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualMeasurements(t, want, got, fmt.Sprintf("workers %d", workers))
	}
}

// TestDistributedDeterministicAcrossWorkers extends the guarantee to the
// distributed-indexing comparison.
func TestDistributedDeterministicAcrossWorkers(t *testing.T) {
	ds := dataset.Uniform(80, 3)
	base := Config{Capacities: []int{256}, Queries: 2000, Seed: 7, Workers: 1}
	want, err := RunDistributed(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 8
	got, err := RunDistributed(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualMeasurements(t, want, got, "workers 8")
}

// TestIndexesCached asserts repeated Indexes calls share one build.
func TestIndexesCached(t *testing.T) {
	b, err := Build(dataset.Uniform(60, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := b.Indexes(256)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.Indexes(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) == 0 || &a1[0] != &a2[0] {
		t.Fatal("Indexes(256) did not return the cached slice")
	}
}
