package experiment

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"airindex/internal/geom"
)

// This file is the deterministic parallel execution layer of the
// measurement harness. The paper's figures are Monte Carlo averages over
// 100k-1M simulated queries per (dataset, capacity, index) cell; the
// engine here shards that work across a worker pool while keeping the
// output bit-identical to the original sequential implementation at any
// worker count:
//
//  1. Query sampling consumes the cell's random stream strictly
//     sequentially (drawQueries) — sampler draws are cheap and
//     variable-length (rejection sampling), so splitting the *stream*
//     would change the sampled queries. The expensive part, the index
//     walks and protocol simulation (>90% of the cell's CPU), is what
//     gets sharded.
//  2. Each worker writes per-query costs into a slot indexed by query
//     number, so no result depends on scheduling order.
//  3. The final reduction sums those slots in query order on one
//     goroutine — float addition is not associative, so a shard-order
//     merge would already drift in the last bits.
//
// The equivalence is pinned by TestParallelMatchesLegacySequential and
// TestRunDeterministicAcrossWorkers.

// sampledQuery is one pre-drawn Monte Carlo query: the query point, the
// region it must resolve to, and the raw uniform draw the protocol
// simulation scales into a tune-in time (by the schedule's cycle length,
// which differs per index).
type sampledQuery struct {
	p    geom.Point
	u    float64
	want int32
}

// drawQueries replays the exact sequential RNG stream the legacy engine
// consumed: per query, the sampler's draws followed by one Float64.
func drawQueries(sampler *Sampler, n int, seed int64) []sampledQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]sampledQuery, n)
	for i := range qs {
		p, want := sampler.Query(rng)
		qs[i] = sampledQuery{p: p, u: rng.Float64(), want: int32(want)}
	}
	return qs
}

// queryStreams bundles the two streams every measurement cell consumes:
// the non-indexing baseline stream (cfg.Seed) and the per-index stream
// (cfg.Seed + 1). Neither depends on the packet capacity, so one pre-draw
// serves a whole capacity sweep.
type queryStreams struct {
	base []sampledQuery
	idx  []sampledQuery
}

func newQueryStreams(sampler *Sampler, cfg Config) *queryStreams {
	return &queryStreams{
		base: drawQueries(sampler, cfg.Queries, cfg.Seed),
		idx:  drawQueries(sampler, cfg.Queries, cfg.Seed+1),
	}
}

// accessCost is the per-query result slot the reduction consumes. The
// tuning counts are small integers (packets touched), so int32 keeps the
// slot at 16 bytes; float64(int32) is exact, making the reduction
// arithmetic identical to accumulating the simulator's ints directly.
type accessCost struct {
	lat       float64
	tuneIdx   int32
	tuneTotal int32
}

// intoLocator is the optional fast path of Index: locate with a reusable
// trace buffer. Each shard holds one buffer for its whole query range, so
// supporting indexes run the Monte Carlo loop without per-query
// allocation.
type intoLocator interface {
	LocateInto(p geom.Point, trace []int) (int, []int)
}

// workerCount resolves the configured worker count (<= 0 means one worker
// per available CPU).
func workerCount(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// forEachShard partitions [0, n) into contiguous shards and runs fn over
// every shard on `workers` goroutines (inline when one worker suffices).
// Shard boundaries are a pure function of n and the worker count, but
// callers must not let results depend on them: fn writes into
// position-indexed slots, which is what makes the output independent of
// scheduling. On error every shard still runs (errors are rare, terminal
// conditions); the error from the lowest-numbered shard wins, so the
// failure surfaced is deterministic too.
func forEachShard(workers, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = workerCount(workers)
	const minShard = 512
	shard := (n + workers*8 - 1) / (workers * 8)
	if shard < minShard {
		shard = minShard
	}
	if workers == 1 || n <= shard {
		for lo := 0; lo < n; lo += shard {
			if err := fn(lo, min(lo+shard, n)); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstLo  int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(shard))) - shard
				if lo >= n {
					return
				}
				if err := fn(lo, min(lo+shard, n)); err != nil {
					mu.Lock()
					if firstErr == nil || lo < firstLo {
						firstErr, firstLo = err, lo
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
