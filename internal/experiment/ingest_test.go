package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/ingest"
	"airindex/internal/stream"
)

// TestIngestSweep pins the acceptance shape of the asynchronous-ingest
// experiment: every query at every offered load resolves correctly against
// the generation it completed under (RunIngest fails otherwise), the
// static baseline cuts nothing, loaded cells cut and coalesce, and the
// producer-side and pipeline-side shed accounting agree exactly.
func TestIngestSweep(t *testing.T) {
	ds := dataset.Uniform(40, 6200)
	levels := []int{0, 64, 256}
	ps, err := RunIngest(ds, 256, levels, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(levels) {
		t.Fatalf("got %d points, want %d", len(ps), len(levels))
	}
	base := ps[0]
	if base.Admitted != 0 || base.Cuts != 0 {
		t.Fatalf("baseline cell admitted %d ops, cut %d generations; want 0, 0", base.Admitted, base.Cuts)
	}
	for _, p := range ps[1:] {
		if p.Cuts == 0 {
			t.Errorf("offered load %d published no generations", p.Offered)
		}
		if p.Admitted+p.Shed != int64(p.Offered) {
			t.Errorf("offered load %d: admitted %d + shed %d != offered", p.Offered, p.Admitted, p.Shed)
		}
		if p.CoalesceRatio < 1 {
			t.Errorf("offered load %d: coalesce ratio %.3f < 1", p.Offered, p.CoalesceRatio)
		}
		if p.AvgLatency <= 0 || p.AvgTuning <= 0 {
			t.Errorf("offered load %d: degenerate averages %+v", p.Offered, p)
		}
	}

	tables := IngestTables(ps)
	if !strings.Contains(tables, "asynchronous ingest") {
		t.Fatalf("tables missing header:\n%s", tables)
	}
	csv := IngestCSV(ps)
	if got := strings.Count(csv, "\n"); got != len(ps)+1 {
		t.Fatalf("csv has %d lines, want %d", got, len(ps)+1)
	}
	if !strings.HasPrefix(csv, "dataset,offered,queries,admitted,") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

// soakSeconds returns the soak duration: short by default so the tier-1
// suite stays fast, extended by the CI acceptance gate via
// AIRINDEX_INGEST_SOAK_SECONDS (the gate uses 30).
func soakSeconds(t *testing.T) time.Duration {
	if s := os.Getenv("AIRINDEX_INGEST_SOAK_SECONDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad AIRINDEX_INGEST_SOAK_SECONDS=%q", s)
		}
		return time.Duration(n) * time.Second
	}
	if testing.Short() {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

// TestIngestSoakLive is the overload soak: HTTP producers (including lossy
// ones that send garbage or slam the connection shut), programmatic
// producers, and a verifying broadcast client all hammer one pipeline in
// front of a live server for the soak duration. The pipeline must shed
// deterministically (every submitted op is accounted admitted or shed, and
// every queue-full rejection surfaces as a 429 or ErrQueueFull), keep
// memory bounded, keep every query answer correct, and drain cleanly.
func TestIngestSoakLive(t *testing.T) {
	dur := soakSeconds(t)
	ds := dataset.Uniform(60, 6300)
	const capacity = 256
	const queueCap = 512

	sw, err := stream.NewSwapper(ds.Area, ds.Sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := stream.NewServer(ln, sw.Program())
	if err != nil {
		t.Fatal(err)
	}
	sw.Bind(srv)
	go srv.Serve() //nolint:errcheck
	defer srv.Close()

	pipe := ingest.Start(ingest.SwapperSink(sw), ingest.Config{
		QueueCap:    queueCap,
		Policy:      ingest.Reject,
		CutMaxOps:   96,
		CutInterval: 10 * time.Millisecond,
		Logf:        t.Logf,
	})
	web := httptest.NewServer(ingest.NewHandler(pipe))
	defer web.Close()

	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	var wg sync.WaitGroup
	var accepted, rejected atomic.Int64 // ops, from the producers' view

	// HTTP producers: move-heavy batches over private handle spaces, with
	// a slice of malformed bodies (400s must not cost queue slots).
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(6400 + c)))
			handle := int64(-1 - c*1_000_000)
			var live []int64
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				if seq%17 == 16 {
					resp, err := http.Post(web.URL+"/ingest", "application/json",
						strings.NewReader(`{"ops":[{"op":"warp","id":`+strconv.Itoa(seq)+`}]}`))
					if err == nil {
						if resp.StatusCode != http.StatusBadRequest {
							t.Errorf("garbage batch got %d, want 400", resp.StatusCode)
						}
						resp.Body.Close()
					}
					continue
				}
				// Compose the batch against a tentative copy of the handle
				// set: a 429 sheds the batch whole, so the producer must
				// forget its adds and removes to stay self-consistent.
				var ops []map[string]any
				newLive := append([]int64(nil), live...)
				newHandle := handle
				for len(ops) < 8 {
					x := ds.Area.MinX + rng.Float64()*ds.Area.W()
					y := ds.Area.MinY + rng.Float64()*ds.Area.H()
					switch k := rng.Intn(12); {
					case len(newLive) < 3 || k == 0:
						newHandle--
						newLive = append(newLive, newHandle)
						ops = append(ops, map[string]any{"op": "add", "id": newHandle, "x": x, "y": y})
					case k == 1:
						j := rng.Intn(len(newLive))
						ops = append(ops, map[string]any{"op": "remove", "id": newLive[j]})
						newLive = append(newLive[:j], newLive[j+1:]...)
					default:
						ops = append(ops, map[string]any{"op": "move", "id": newLive[rng.Intn(len(newLive))], "x": x, "y": y})
					}
				}
				body, _ := json.Marshal(map[string]any{"ops": ops})
				resp, err := http.Post(web.URL+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(int64(len(ops)))
					live, handle = newLive, newHandle
				case http.StatusTooManyRequests:
					rejected.Add(int64(len(ops)))
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
				default:
					t.Errorf("batch got unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(c)
	}

	// A lossy client: opens raw connections, writes partial requests, and
	// hangs up. Nothing it does may wedge the handler or skew accounting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		addr := strings.TrimPrefix(web.URL, "http://")
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				continue
			}
			fmt.Fprintf(conn, "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n{\"ops\":[")
			conn.Close()
			time.Sleep(time.Millisecond)
		}
	}()

	// A programmatic producer, hammering Enqueue directly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(6500))
		handle := int64(-900_000_000)
		var live []int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			x := ds.Area.MinX + rng.Float64()*ds.Area.W()
			y := ds.Area.MinY + rng.Float64()*ds.Area.H()
			var op ingest.Op
			kind := 0 // 0 add, 1 remove, 2 move
			var j int
			switch k := rng.Intn(12); {
			case len(live) < 3 || k == 0:
				op = ingest.Op{Kind: ingest.OpAdd, ID: handle - 1, X: x, Y: y}
			case k == 1:
				kind, j = 1, rng.Intn(len(live))
				op = ingest.Op{Kind: ingest.OpRemove, ID: live[j]}
			default:
				kind = 2
				op = ingest.Op{Kind: ingest.OpMove, ID: live[rng.Intn(len(live))], X: x, Y: y}
			}
			switch err := pipe.Enqueue(op); err {
			case nil:
				accepted.Add(1)
				// Only an admitted op changes the producer's view: a shed add
				// never existed, a shed remove leaves the site live.
				switch kind {
				case 0:
					handle--
					live = append(live, handle)
				case 1:
					live = append(live[:j], live[j+1:]...)
				}
			case ingest.ErrQueueFull:
				rejected.Add(1)
			default:
				t.Errorf("Enqueue: %v", err)
				return
			}
			if d := pipe.Depth(); d > queueCap {
				t.Errorf("queue depth %d exceeded capacity %d", d, queueCap)
				return
			}
		}
	}()

	// The verifying broadcast client: every answer must be correct for the
	// generation it completed under, for the whole soak.
	client, err := stream.Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	queries := 0
	qrng := rand.New(rand.NewSource(6600))
	for {
		select {
		case <-stop:
		default:
			p := geom.Pt(
				ds.Area.MinX+qrng.Float64()*ds.Area.W(),
				ds.Area.MinY+qrng.Float64()*ds.Area.H(),
			)
			res, err := client.Query(p)
			if err != nil {
				t.Fatalf("query %d: %v", queries, err)
			}
			g := sw.Generation(res.Generation)
			if g == nil {
				t.Fatalf("query %d: unknown generation %d", queries, res.Generation)
			}
			if want := g.Sub.Locate(p); res.Bucket != want && !g.Sub.Regions[res.Bucket].Poly.Contains(p) {
				t.Fatalf("WRONG ANSWER: query %d at %v got bucket %d, want %d (generation %d)",
					queries, p, res.Bucket, want, res.Generation)
			}
			if err := stream.VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
				t.Fatalf("query %d: %v", queries, err)
			}
			queries++
			continue
		}
		break
	}

	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := pipe.Close(ctx); err != nil {
		t.Fatalf("pipeline drain: %v", err)
	}

	m := pipe.Metrics()
	if queries == 0 {
		t.Fatal("soak ran no queries")
	}
	if m.Cuts.Load() == 0 {
		t.Fatal("soak cut no generations")
	}
	if m.QuarantinedBatches.Load() != 0 {
		t.Fatalf("%d batches quarantined during the soak", m.QuarantinedBatches.Load())
	}
	// Deterministic accounting: every submitted op is admitted or shed, and
	// the pipeline's counters match the producers' observations exactly.
	if got, want := m.EnqueuedOps.Load(), accepted.Load(); got != want {
		t.Fatalf("EnqueuedOps = %d, producers saw %d accepted", got, want)
	}
	if got, want := m.ShedOps.Load(), rejected.Load(); got != want {
		t.Fatalf("ShedOps = %d, producers saw %d rejected", got, want)
	}
	if got := pipe.Depth(); got != 0 {
		t.Fatalf("queue depth %d after drain, want 0", got)
	}
	// Bounded memory: the soak's working set stays modest no matter how
	// hard the producers pushed (the queue, not the offered load, is the
	// buffer). The bound is deliberately generous — it catches runaway
	// buffering, not allocator noise.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Fatalf("heap after soak = %d MiB, want < 512 MiB", ms.HeapAlloc>>20)
	}
	t.Logf("soak %v: %d queries verified, %d ops admitted, %d shed, %d cuts, fold %.1fx, heap %d MiB",
		dur, queries, m.EnqueuedOps.Load(), m.ShedOps.Load(), m.Cuts.Load(),
		float64(m.CoalescedIn.Load())/float64(max64(m.CoalescedOut.Load(), 1)), ms.HeapAlloc>>20)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkDirectApply is the synchronous baseline the ingest speedup is
// measured against: every 4-op batch pays a full generation cut before the
// next batch may proceed — the PR-4 churn driver's regime.
func BenchmarkDirectApply(b *testing.B) {
	ds := dataset.Uniform(60, 6700)
	sw, err := stream.NewSwapper(ds.Area, ds.Sites, 256, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6701))
	ids := sw.LiveSiteIDs()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		batch := make([]stream.SiteOp, 4)
		for j := range batch {
			batch[j] = stream.SiteOp{
				Kind: stream.OpMove,
				ID:   ids[rng.Intn(len(ids))],
				P: geom.Pt(
					ds.Area.MinX+rng.Float64()*ds.Area.W(),
					ds.Area.MinY+rng.Float64()*ds.Area.H(),
				),
			}
		}
		if _, _, err := sw.Apply(batch); err != nil {
			b.Fatal(err)
		}
		ops += len(batch)
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkIngestSustained streams the same move-heavy load through the
// asynchronous pipeline: admission is cheap, coalescing folds the window,
// and cuts amortize over hundreds of operations. The CI bench gate asserts
// its ops/sec beats BenchmarkDirectApply by >= 10x.
func BenchmarkIngestSustained(b *testing.B) {
	ds := dataset.Uniform(60, 6700)
	sw, err := stream.NewSwapper(ds.Area, ds.Sites, 256, 0)
	if err != nil {
		b.Fatal(err)
	}
	pipe := ingest.Start(ingest.SwapperSink(sw), ingest.Config{
		QueueCap:     8192,
		Policy:       ingest.Block,
		BlockTimeout: 10 * time.Second,
		CutMaxOps:    512,
		CutInterval:  5 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(6701))
	ids := sw.LiveSiteIDs()
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			err := pipe.Enqueue(ingest.Op{
				Kind: ingest.OpMove,
				ID:   int64(ids[rng.Intn(len(ids))]),
				X:    ds.Area.MinX + rng.Float64()*ds.Area.W(),
				Y:    ds.Area.MinY + rng.Float64()*ds.Area.H(),
			})
			if err != nil {
				b.Fatal(err)
			}
			ops++
		}
	}
	if err := pipe.Close(nil); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/sec")
	// Bounded memory under sustained load: heap growth across the run must
	// stay far below the offered volume (the ring, not the stream, is the
	// buffer). Reported for the CI gate to check alongside the speedup.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth < 0 {
		growth = 0
	}
	b.ReportMetric(float64(growth)/(1<<20), "heap-growth-MiB")
}
