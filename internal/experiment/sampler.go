package experiment

import (
	"math"
	"math/rand"

	"airindex/internal/geom"
	"airindex/internal/region"
)

// Sampler draws query points. The paper assumes a uniform access
// distribution over the data regions, so the default mode picks a region
// uniformly at random and then a point uniformly within it; uniform-by-area
// sampling is available for sensitivity checks.
type Sampler struct {
	sub      *region.Subdivision
	tris     [][]geom.Triangle // per region
	cum      [][]float64       // per region: cumulative triangle areas
	weighted []float64         // cumulative region weights (SetWeights)
	ByArea   bool
}

// NewSampler prepares the per-region triangulations used for uniform
// sampling inside polygons.
func NewSampler(sub *region.Subdivision) *Sampler {
	s := &Sampler{
		sub:  sub,
		tris: make([][]geom.Triangle, sub.N()),
		cum:  make([][]float64, sub.N()),
	}
	for i := range sub.Regions {
		tris := geom.Triangulate(sub.Regions[i].Poly)
		cum := make([]float64, len(tris))
		var acc float64
		for j, t := range tris {
			acc += t.Area()
			cum[j] = acc
		}
		s.tris[i], s.cum[i] = tris, cum
	}
	return s
}

// Query returns a query point together with the region it was drawn from
// (the data instance the query must resolve to).
func (s *Sampler) Query(rng *rand.Rand) (geom.Point, int) {
	if s.weighted != nil {
		return s.queryWeighted(rng)
	}
	if s.ByArea {
		a := s.sub.Area
		for {
			p := geom.Pt(a.MinX+rng.Float64()*a.W(), a.MinY+rng.Float64()*a.H())
			if r := s.sub.Locate(p); r >= 0 {
				return p, r
			}
		}
	}
	r := rng.Intn(s.sub.N())
	return s.PointIn(rng, r), r
}

// PointIn samples a point uniformly inside region r via its triangulation.
func (s *Sampler) PointIn(rng *rand.Rand, r int) geom.Point {
	tris, cum := s.tris[r], s.cum[r]
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	k := 0
	for k < len(cum)-1 && cum[k] < x {
		k++
	}
	t := tris[k]
	// Uniform point in a triangle via the square-root trick.
	u, v := rng.Float64(), rng.Float64()
	su := math.Sqrt(u)
	return geom.Pt(
		(1-su)*t.A.X+su*(1-v)*t.B.X+su*v*t.C.X,
		(1-su)*t.A.Y+su*(1-v)*t.B.Y+su*v*t.C.Y,
	)
}
