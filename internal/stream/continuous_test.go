package stream

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"airindex/internal/channel"
	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/rstar"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// Continuous-query oracle suite. Every cycle of a moving client's standing
// window/kNN query, answered on air from the D-tree adjacency appendix, is
// scored against two independent oracles for the exact generation it was
// answered under: a brute-force scan of the generation's subdivision, and an
// R*-tree built over the same ground truth. The three must agree bit for
// bit — under churn, loss, and both client modes.

// oracleWindow is the brute-force window oracle: every region whose polygon
// meets w, ascending.
func oracleWindow(sub *region.Subdivision, w geom.Rect) []int32 {
	var out []int32
	for i := range sub.Regions {
		if core.RegionIntersectsRect(sub.Regions[i].Poly, w) {
			out = append(out, int32(i))
		}
	}
	return out
}

// oracleWindowRStar answers the same window through an R*-tree over region
// MBRs with an exact polygon filter.
func oracleWindowRStar(t *testing.T, sub *region.Subdivision, w geom.Rect) []int32 {
	t.Helper()
	entries := make([]rstar.Entry, len(sub.Regions))
	for i := range sub.Regions {
		entries[i] = rstar.Entry{Rect: sub.Regions[i].Poly.Bounds(), Data: i}
	}
	rt, err := rstar.BulkLoadSTR(entries, 8)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	var out []int32
	for _, i := range rt.SearchRect(w) {
		if core.RegionIntersectsRect(sub.Regions[i].Poly, w) {
			out = append(out, int32(i))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// oracleKNN is the brute-force kNN oracle: regions by (site dist², index).
func oracleKNN(sites []geom.Point, p geom.Point, k int) []int32 {
	idx := make([]int32, len(sites))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := p.Dist2(sites[idx[a]]), p.Dist2(sites[idx[b]])
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// oracleKNNRStar answers the same kNN through an R*-tree over region MBRs
// with exact site distances at the leaves.
func oracleKNNRStar(t *testing.T, sub *region.Subdivision, sites []geom.Point, p geom.Point, k int) []int32 {
	t.Helper()
	entries := make([]rstar.Entry, len(sub.Regions))
	for i := range sub.Regions {
		entries[i] = rstar.Entry{Rect: sub.Regions[i].Poly.Bounds(), Data: i}
	}
	rt, err := rstar.BulkLoadSTR(entries, 8)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	got := rt.KNNSites(p, k, func(i int) geom.Point { return sites[i] })
	out := make([]int32, len(got))
	for i, v := range got {
		out[i] = int32(v)
	}
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyOutcome scores one cycle against both oracles for its pinned
// generation and checks the cached buckets are exactly the answer set with
// verified payloads. Returns an error so concurrent steppers can report.
func verifyOutcome(t *testing.T, sw *Swapper, sess *Continuous, q ContinuousQuery, p geom.Point, out CycleOutcome, capacity int) error {
	g := sw.Generation(out.Generation)
	if g == nil {
		return fmt.Errorf("cycle %d at %v: unknown generation %d", out.Cycle, p, out.Generation)
	}
	reg := int(out.Region)
	if reg < 0 || reg >= g.Sub.N() {
		return fmt.Errorf("cycle %d at %v: region %d out of range (gen %d, %d regions)", out.Cycle, p, reg, out.Generation, g.Sub.N())
	}
	if want := g.Sub.Locate(p); reg != want && !g.Sub.Regions[reg].Poly.Contains(p) {
		return fmt.Errorf("cycle %d at %v: region %d, want %d (gen %d)", out.Cycle, p, reg, want, out.Generation)
	}
	if q.WindowW > 0 || q.WindowH > 0 {
		w := q.Window(p)
		brute := oracleWindow(g.Sub, w)
		if !equalIDs(out.Window, brute) {
			return fmt.Errorf("cycle %d at %v (gen %d): window on air %v, brute oracle %v", out.Cycle, p, out.Generation, out.Window, brute)
		}
		if rst := oracleWindowRStar(t, g.Sub, w); !equalIDs(out.Window, rst) {
			return fmt.Errorf("cycle %d at %v (gen %d): window on air %v, rstar oracle %v", out.Cycle, p, out.Generation, out.Window, rst)
		}
	}
	if q.K > 0 {
		brute := oracleKNN(g.Sites, p, q.K)
		if !equalIDs(out.KNN, brute) {
			return fmt.Errorf("cycle %d at %v (gen %d): knn on air %v, brute oracle %v", out.Cycle, p, out.Generation, out.KNN, brute)
		}
		if rst := oracleKNNRStar(t, g.Sub, g.Sites, p, q.K); !equalIDs(out.KNN, rst) {
			return fmt.Errorf("cycle %d at %v (gen %d): knn on air %v, rstar oracle %v", out.Cycle, p, out.Generation, out.KNN, rst)
		}
	}
	// The cache must hold exactly the answer set's buckets, verified.
	needed := map[int]bool{reg: true}
	for _, id := range out.Window {
		needed[int(id)] = true
	}
	for _, id := range out.KNN {
		needed[int(id)] = true
	}
	if got := len(sess.Buckets()); got != len(needed) {
		return fmt.Errorf("cycle %d: %d cached buckets, want %d", out.Cycle, got, len(needed))
	}
	for id := range needed {
		data, ok := sess.Buckets()[id]
		if !ok {
			return fmt.Errorf("cycle %d: answer region %d has no cached bucket", out.Cycle, id)
		}
		if err := VerifyStampedData(data, capacity, id); err != nil {
			return fmt.Errorf("cycle %d: %w", out.Cycle, err)
		}
	}
	if want := float64(out.Res.LastSlot + 1 - out.Res.FirstSlot); out.Res.Latency != want {
		return fmt.Errorf("cycle %d: latency %v does not span observed frames (%v)", out.Cycle, out.Res.Latency, want)
	}
	return nil
}

// startContinuousServer wires an adjacency-carrying Swapper to a live
// server.
func startContinuousServer(t *testing.T, n, capacity int, seed int64) (*Swapper, *Server) {
	t.Helper()
	sites := testutil.RandomSites(testArea, n, seed)
	sw, err := NewSwapperWithAdjacency(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, sw.Program())
	if err != nil {
		t.Fatal(err)
	}
	sw.Bind(srv)
	go srv.Serve() //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return sw, srv
}

// dialContinuous opens a session of the given mode against the server.
func dialContinuous(t *testing.T, srv *Server, capacity int, mode ContinuousMode, q ContinuousQuery) *Continuous {
	t.Helper()
	client, err := Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	sess := NewContinuous(client, mode, q)
	sess.Metrics = NewContinuousMetrics()
	return sess
}

// TestContinuousOracleUnderChurn is the headline acceptance gate: moving
// clients answer standing window+kNN queries on air while the site
// population churns underneath them, and every cycle's answer matches both
// oracles for the generation it pinned.
func TestContinuousOracleUnderChurn(t *testing.T) {
	const capacity, n = 256, 50
	sw, srv := startContinuousServer(t, n, capacity, 7001)
	q := ContinuousQuery{WindowW: 2500, WindowH: 2000, K: 4}

	// Churn: move/add/remove sites in small batches while clients step.
	stopChurn := make(chan struct{})
	churnDone := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(7002))
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			live := sw.LiveSiteIDs()
			ops := []SiteOp{{Kind: OpMove, ID: live[rng.Intn(len(live))],
				P: geom.Pt(rng.Float64()*10000, rng.Float64()*10000)}}
			if len(live) < n+5 && rng.Intn(2) == 0 {
				ops = append(ops, SiteOp{Kind: OpAdd, P: geom.Pt(rng.Float64()*10000, rng.Float64()*10000)})
			} else if len(live) > n-5 {
				ops = append(ops, SiteOp{Kind: OpRemove, ID: live[rng.Intn(len(live))]})
			}
			if _, _, err := sw.Apply(ops); err != nil {
				churnDone <- fmt.Errorf("churn batch %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Two concurrent moving clients: one fast (crosses boundaries), one
	// slow (mostly revalidates), different models.
	trajs := []dataset.Trajectory{
		dataset.RandomWaypoint(testArea, 18, 7003, 400, 900),
		dataset.Commuter(testArea, 18, 7004, 3, 60, 150, 4),
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(trajs))
	for ti := range trajs {
		sess := dialContinuous(t, srv, capacity, ModeIncremental, q)
		wg.Add(1)
		go func(ti int, sess *Continuous) {
			defer wg.Done()
			traj := trajs[ti]
			for cycle := 0; cycle < traj.Cycles(); cycle++ {
				p := traj.At(cycle)
				out, err := sess.Step(p)
				if err != nil {
					errs <- fmt.Errorf("client %d cycle %d: %v", ti, cycle, err)
					return
				}
				if err := verifyOutcome(t, sw, sess, q, p, out, capacity); err != nil {
					errs <- fmt.Errorf("client %d: %w", ti, err)
					return
				}
			}
		}(ti, sess)
	}
	wg.Wait()
	close(stopChurn)
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestContinuousRevalidationMatchesFresh pins the revalidation-correctness
// contract: an incremental session that only re-descends on boundary
// crossings produces answers bit-identical to a fresh session that
// re-acquires everything every cycle, at every position of the same
// trajectory — while paying a fraction of the tuning.
func TestContinuousRevalidationMatchesFresh(t *testing.T) {
	const capacity, n = 256, 40
	sw, srv := startContinuousServer(t, n, capacity, 7101)
	q := ContinuousQuery{WindowW: 2200, WindowH: 1800, K: 3}

	incr := dialContinuous(t, srv, capacity, ModeIncremental, q)
	fresh := dialContinuous(t, srv, capacity, ModeFresh, q)
	traj := dataset.RandomWaypoint(testArea, 24, 7102, 150, 450)

	var incrTuning, freshTuning int
	for cycle := 0; cycle < traj.Cycles(); cycle++ {
		p := traj.At(cycle)
		a, err := incr.Step(p)
		if err != nil {
			t.Fatalf("incremental cycle %d: %v", cycle, err)
		}
		b, err := fresh.Step(p)
		if err != nil {
			t.Fatalf("fresh cycle %d: %v", cycle, err)
		}
		if a.Generation != b.Generation {
			t.Fatalf("cycle %d: sessions pinned different generations %d vs %d with no churn", cycle, a.Generation, b.Generation)
		}
		if a.Region != b.Region || !equalIDs(a.Window, b.Window) || !equalIDs(a.KNN, b.KNN) {
			t.Fatalf("cycle %d at %v: incremental answer (%d %v %v) != fresh answer (%d %v %v)",
				cycle, p, a.Region, a.Window, a.KNN, b.Region, b.Window, b.KNN)
		}
		if err := verifyOutcome(t, sw, incr, q, p, a, capacity); err != nil {
			t.Fatal(err)
		}
		if !b.Refreshed {
			t.Fatalf("cycle %d: fresh session did not report a full refresh", cycle)
		}
		incrTuning += a.Res.TotalTuning()
		freshTuning += b.Res.TotalTuning()
	}

	m := incr.Metrics
	if m.RevalidationHits.Load() == 0 {
		t.Fatal("incremental session never revalidated from cache")
	}
	if got, want := m.RevalidationHits.Load()+m.BoundaryRedescents.Load()+m.FullRefreshes.Load(), m.Cycles.Load(); got != want {
		t.Fatalf("outcome counters sum to %d, want %d cycles", got, want)
	}
	if m.FullRefreshes.Load() != 1 {
		t.Fatalf("incremental session full-refreshed %d times with no churn, want 1", m.FullRefreshes.Load())
	}
	if incrTuning >= freshTuning {
		t.Fatalf("incremental tuning %d not below fresh tuning %d", incrTuning, freshTuning)
	}
	t.Logf("tuning: incremental %d, fresh %d (%.1fx); hits=%d redescents=%d",
		incrTuning, freshTuning, float64(freshTuning)/float64(incrTuning),
		m.RevalidationHits.Load(), m.BoundaryRedescents.Load())
}

// TestContinuousLossy runs a continuous session through fault channels: the
// session must recover from dropped and corrupted frames and still match
// the brute oracle every cycle.
func TestContinuousLossy(t *testing.T) {
	const capacity, n = 512, 40
	sub, sites := testutil.RandomVoronoi(t, n, 7203)
	tree, err := core.Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(capacity))
	if err != nil {
		t.Fatal(err)
	}
	fp := paged.Flatten()
	adj, err := core.BuildAdjacency(sub, sub.Area, sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Flat.SetAdjacency(adj); err != nil {
		t.Fatal(err)
	}
	prog, err := ProgramFromFlat(fp, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, spec := range []channel.Spec{
		{Loss: 0.05, Seed: 7204},
		{Loss: 0.05, Burst: 4, Seed: 7205},
		{Corrupt: 0.05, Seed: 7206},
	} {
		ch := channel.New(spec.Model(spec.Seed+1), spec.Seed+2, &channel.Stats{})
		cliEnd, srvEnd := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			prog.Transmit(srvEnd, 11, ch) //nolint:errcheck
		}()
		client := NewClient(cliEnd, capacity)
		q := ContinuousQuery{WindowW: 2400, WindowH: 2000, K: 3}
		sess := NewContinuous(client, ModeIncremental, q)
		traj := dataset.RandomWaypoint(sub.Area, 10, spec.Seed, 200, 700)
		for cycle := 0; cycle < traj.Cycles(); cycle++ {
			p := traj.At(cycle)
			out, err := sess.Step(p)
			if err != nil {
				t.Fatalf("spec %+v cycle %d: %v", spec, cycle, err)
			}
			if want := oracleWindow(sub, q.Window(p)); !equalIDs(out.Window, want) {
				t.Fatalf("spec %+v cycle %d at %v: window %v, oracle %v", spec, cycle, p, out.Window, want)
			}
			if want := oracleKNN(sites, p, q.K); !equalIDs(out.KNN, want) {
				t.Fatalf("spec %+v cycle %d at %v: knn %v, oracle %v", spec, cycle, p, out.KNN, want)
			}
		}
		cliEnd.Close()
		srvEnd.Close()
		<-done
	}
}

// TestContinuousPointQueryCoexistence: on an adjacency-carrying broadcast a
// one-shot client still answers point queries by skipping the appendix with
// QueryShifted, and the appendix length is discoverable from packet 0.
func TestContinuousPointQueryCoexistence(t *testing.T) {
	const capacity, n = 256, 40
	sw, srv := startContinuousServer(t, n, capacity, 7301)
	client, err := Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var res Result
	if err := client.Probe(&res); err != nil {
		t.Fatal(err)
	}
	head, err := client.FetchIndexPackets(&res, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	adjPkts, err := core.AdjacencyPacketCount(head[0])
	if err != nil {
		t.Fatalf("packet 0 does not self-describe the appendix: %v", err)
	}
	if adjPkts <= 0 {
		t.Fatalf("appendix of %d packets", adjPkts)
	}
	for _, p := range testutil.QueryPoints(testArea, 12, 7302) {
		var res Result
		if err := client.QueryShifted(p, adjPkts, &res); err != nil {
			t.Fatalf("query %v: %v", p, err)
		}
		if err := verifyAgainstGeneration(sw, p, res, capacity); err != nil {
			t.Fatal(err)
		}
	}
}
