package stream

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"airindex/internal/channel"
	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// newLifecycleServer builds a small live server with configure applied
// before Serve starts accepting, returning the Serve exit channel.
func newLifecycleServer(t *testing.T, configure func(*Server)) (*Server, chan error) {
	t.Helper()
	sub, _ := testutil.RandomVoronoi(t, 30, 7001)
	prog, err := NewDTreeProgram(sub, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, prog)
	if err != nil {
		t.Fatal(err)
	}
	srv.StartSlot = func() int { return 0 }
	if configure != nil {
		configure(srv)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() { srv.Close() })
	return srv, serveErr
}

func waitServe(t *testing.T, serveErr chan error) error {
	t.Helper()
	select {
	case err := <-serveErr:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return")
		return nil
	}
}

// TestServeReturnsErrServerClosed: a deliberate Close must be
// distinguishable from an accept failure, so operators can exit 0.
func TestServeReturnsErrServerClosed(t *testing.T) {
	srv, serveErr := newLifecycleServer(t, nil)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := waitServe(t, serveErr); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// Close after Close stays clean (idempotent teardown paths).
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestShutdownDrainsAtCycleBoundary: a graceful Shutdown lets every
// connection finish its broadcast cycle — the receiver sees a whole number
// of cycles and then a clean EOF, never a torn index copy.
func TestShutdownDrainsAtCycleBoundary(t *testing.T) {
	srv, serveErr := newLifecycleServer(t, nil)
	cycle := srv.Program().Sched.CycleLen()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Count frames in the background; the server streams full speed, so
	// shutting down shortly after connect lands mid-cycle with certainty.
	frames := make(chan int, 1)
	go func() {
		n := 0
		r := NewClient(conn, 256)
		for {
			if _, _, _, err := r.advance(nil, func(Header) bool { return false }); err != nil {
				frames <- n
				return
			}
			n++
		}
	}()
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := waitServe(t, serveErr); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	select {
	case n := <-frames:
		if n == 0 || n%cycle != 0 {
			t.Fatalf("connection drained after %d frames; want a positive multiple of the cycle length %d", n, cycle)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver never saw EOF after drain")
	}
}

// TestShutdownForceClosesOnDeadline: a receiver that refuses to drain
// cannot hold a graceful shutdown hostage — the context deadline severs it.
func TestShutdownForceClosesOnDeadline(t *testing.T) {
	srv, serveErr := newLifecycleServer(t, nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Never read: the server's writes back up and its goroutine blocks, so
	// the drain can only finish by force.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown returned %v, want DeadlineExceeded", err)
	}
	if err := waitServe(t, serveErr); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestSlowClientEviction: with a write deadline armed, a stalled receiver
// is evicted and counted instead of pinning its goroutine forever.
func TestSlowClientEviction(t *testing.T) {
	srv, _ := newLifecycleServer(t, func(s *Server) {
		s.WriteTimeout = 50 * time.Millisecond
	})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Never read; once the TCP buffers fill, every further write must hit
	// the deadline and evict us.
	deadline := time.Now().Add(15 * time.Second)
	for srv.Evictions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client was never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The broadcast must still be healthy for well-behaved clients.
	client, err := Dial(srv.Addr().String(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Query(geom.Pt(5000, 5000)); err != nil {
		t.Fatalf("query after eviction: %v", err)
	}
}

// panicModel is a channel fault model that panics when it reaches frame
// zero of its countdown — simulating a poisoned per-connection middleware.
type panicModel struct{ after int }

func (m *panicModel) Name() string { return "panic" }
func (m *panicModel) Next() channel.Fault {
	if m.after <= 0 {
		panic("injected middleware failure")
	}
	m.after--
	return channel.Deliver
}

// TestConnectionPanicIsContained: a panic inside one connection's transmit
// path is recovered and counted; the server keeps serving everyone else.
func TestConnectionPanicIsContained(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	srv, _ := newLifecycleServer(t, func(s *Server) {
		s.Channel = func() *channel.Channel {
			if first.CompareAndSwap(true, false) {
				return channel.New(&panicModel{after: 3}, 1, nil)
			}
			return nil
		}
	})

	// The first connection hits the poisoned middleware after 3 frames.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.Copy(io.Discard, conn); err != nil {
		t.Fatalf("poisoned connection read: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for srv.RecoveredPanics() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panic was never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server survives: a second client still gets correct answers.
	sub, _ := testutil.RandomVoronoi(t, 30, 7001) // same seed as the fixture
	client, err := Dial(srv.Addr().String(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	p := geom.Pt(2500, 7500)
	res, err := client.Query(p)
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if want := sub.Locate(p); res.Bucket != want && !sub.Regions[res.Bucket].Poly.Contains(p) {
		t.Fatalf("bucket %d, want %d", res.Bucket, want)
	}
}
