package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// The cut benchmarks measure the generation pipeline the issue bounds: an
// Apply batch through the incremental path (dirty-subtree rebuild, arena
// patching, frame-table reuse) versus what every cut cost before — a full
// re-weld of the live set, a from-scratch D-tree compile, and a cold cycle
// render. Results are recorded in BENCH_incr.json and the 50k/batch=16 tier
// is gated in CI.
//
// The gated tier uses move-only batches: the steady-state churn shape
// (vehicles reporting new positions), under which the site count — and so
// the root partition's style menu — stays fixed and the memoized rebuild
// holds correspondence. Mixed add/remove batches change the region-count
// parity, which reshuffles the candidate styles at the top of the tree and
// routinely flips the root's winning dimension; a flipped winner has no
// corresponding old subtree, so those generations legitimately pay a near
// from-scratch compile to stay byte-identical. BenchmarkIncrementalCutMixed
// records that regime separately.

var cutSizes = []struct {
	label string
	n     int
}{
	{"1k", 1_000},
	{"10k", 10_000},
	{"50k", 50_000},
}

// benchSwapper bootstraps the serving state once: generation 1 built and
// its cycle rendered, exactly the warm state a live daemon cuts against.
func benchSwapper(b *testing.B, n int) *Swapper {
	b.Helper()
	sw, err := NewSwapper(testArea, testutil.RandomSites(testArea, n, int64(9000+n)), 256, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sw.Program().RenderedSize(); err != nil {
		b.Fatal(err)
	}
	return sw
}

// moveOps builds a batch of pure position updates: the steady-state churn
// the gated benchmark tier measures.
func moveOps(rng *rand.Rand, sw *Swapper, batch int) []SiteOp {
	ids := sw.LiveSiteIDs()
	ops := make([]SiteOp, 0, batch)
	for i := 0; i < batch; i++ {
		p := geom.Pt(testArea.MinX+rng.Float64()*(testArea.MaxX-testArea.MinX),
			testArea.MinY+rng.Float64()*(testArea.MaxY-testArea.MinY))
		ops = append(ops, SiteOp{Kind: OpMove, ID: ids[rng.Intn(len(ids))], P: p})
	}
	return ops
}

// BenchmarkIncrementalCut times Apply end to end (maintainer mutation,
// incremental compile, patched render, publish bookkeeping) per batch size,
// over move-only batches.
func BenchmarkIncrementalCut(b *testing.B) {
	for _, sz := range cutSizes {
		for _, batch := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("N=%s/batch=%d", sz.label, batch), func(b *testing.B) {
				sw := benchSwapper(b, sz.n)
				rng := rand.New(rand.NewSource(int64(sz.n + batch)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ops := moveOps(rng, sw, batch)
					b.StartTimer()
					if _, _, err := sw.Apply(ops); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIncrementalCutMixed is the same pipeline under mixed
// add/remove/move batches — the regime where parity changes flip the top
// partition styles and some cuts degrade toward a full compile.
func BenchmarkIncrementalCutMixed(b *testing.B) {
	for _, sz := range cutSizes {
		for _, batch := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("N=%s/batch=%d", sz.label, batch), func(b *testing.B) {
				sw := benchSwapper(b, sz.n)
				rng := rand.New(rand.NewSource(int64(sz.n + batch)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ops := randomOps(rng, sw, batch)
					b.StartTimer()
					if _, _, err := sw.Apply(ops); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFromScratchCut times the pre-incremental cut on the same live
// state: snapshot the whole diagram, compile the D-tree program from
// scratch, render the cycle cold.
func BenchmarkFromScratchCut(b *testing.B) {
	for _, sz := range cutSizes {
		b.Run("N="+sz.label, func(b *testing.B) {
			sw := benchSwapper(b, sz.n)
			rng := rand.New(rand.NewSource(int64(sz.n)))
			// One applied batch first, so both benchmarks compile a
			// post-churn diagram rather than the pristine bootstrap.
			if _, _, err := sw.Apply(randomOps(rng, sw, 16)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub, _, err := sw.maint.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				prog, _, err := CompileDTree(sub, 256, sw.m)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := prog.RenderedSize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
