package stream

import (
	"testing"
	"time"

	"airindex/internal/channel"
	"airindex/internal/obs"
	"airindex/internal/testutil"
)

// TestServerAndClientObservability drives queries through a live TCP
// server with the full observability layer attached and checks that every
// layer reported: wire-side frame counters, connection accounting, swap
// counters and latency, client latency/tuning distributions, and per-query
// Probe→Answer traces whose slots are monotone.
func TestServerAndClientObservability(t *testing.T) {
	const capacity = 256
	sw, srv, _ := startSwapServer(t, 50, capacity, 5001, func(s *Server) {
		s.StartSlot = func() int { return 0 }
	})
	sm := srv.Metrics()

	cm := NewClientMetrics()
	traces := obs.NewTraceLog(64)
	client, err := Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Metrics = cm
	client.Traces = traces

	points := testutil.QueryPoints(testArea, 10, 5002)
	for _, p := range points {
		if _, err := client.Query(p); err != nil {
			t.Fatalf("query %v: %v", p, err)
		}
	}

	if got := cm.Queries.Load(); got != int64(len(points)) {
		t.Fatalf("client queries counter = %d, want %d", got, len(points))
	}
	if got := cm.LatencySlots.Count(); got != int64(len(points)) {
		t.Fatalf("latency histogram observed %d samples, want %d", got, len(points))
	}
	if s := cm.LatencySlots.Snapshot(); s.Min <= 0 {
		t.Fatalf("latency snapshot %+v: non-positive minimum", s)
	}
	if got := cm.TuningPackets.Snapshot(); got.Min < 2 {
		t.Fatalf("tuning snapshot %+v: a query tunes at least probe+data", got)
	}

	if sm.FramesWritten.Load() == 0 || sm.BytesWritten.Load() == 0 {
		t.Fatal("server frame counters did not move")
	}
	if got := sm.ConnsTotal.Load(); got != 1 {
		t.Fatalf("conns_total = %d, want 1", got)
	}
	if got := sm.ConnsActive.Load(); got != 1 {
		t.Fatalf("conns_active = %d, want 1 while the client is connected", got)
	}

	// Traces: one per query, newest first, monotone slots, probe→answer.
	if got := traces.Total(); got != uint64(len(points)) {
		t.Fatalf("trace log holds %d traces, want %d", got, len(points))
	}
	for _, tr := range traces.Recent(len(points)) {
		if tr.Err != "" {
			t.Fatalf("trace %d carries error %q", tr.ID, tr.Err)
		}
		if len(tr.Steps) < 3 {
			t.Fatalf("trace %d has %d steps, want at least probe+data+answer", tr.ID, len(tr.Steps))
		}
		if tr.Steps[0].Kind != obs.StepProbe {
			t.Fatalf("trace %d starts with %q, want %q", tr.ID, tr.Steps[0].Kind, obs.StepProbe)
		}
		if last := tr.Steps[len(tr.Steps)-1]; last.Kind != obs.StepAnswer || last.Info != tr.Bucket {
			t.Fatalf("trace %d ends with %+v, want answer/%d", tr.ID, last, tr.Bucket)
		}
		for i := 1; i < len(tr.Steps); i++ {
			if tr.Steps[i].Slot < tr.Steps[i-1].Slot {
				t.Fatalf("trace %d not monotone in slot order: step %d at slot %d after slot %d",
					tr.ID, i, tr.Steps[i].Slot, tr.Steps[i-1].Slot)
			}
		}
	}

	// A hot swap is visible in the swap counter and its latency histogram.
	if _, _, err := sw.Apply([]SiteOp{{Kind: OpAdd, P: testutil.RandomSites(testArea, 1, 5003)[0]}}); err != nil {
		t.Fatal(err)
	}
	if got := sm.Swaps.Load(); got != 1 {
		t.Fatalf("swaps counter = %d, want 1", got)
	}
	if s := sm.SwapLatencyNS.Snapshot(); s.Count != 1 || s.Min <= 0 {
		t.Fatalf("swap latency snapshot %+v after one Apply", s)
	}

	// Connection teardown returns the active gauge to zero.
	client.Close()
	drained := func() int64 {
		if sm.ConnsActive.Load() == 0 {
			return 1
		}
		return 0
	}
	if !obs.AwaitAtLeast(drained, 1, 5*time.Second) {
		t.Fatalf("conns_active = %d after close, want 0", sm.ConnsActive.Load())
	}
	if got := sm.ConnPanics.Load(); got != 0 {
		t.Fatalf("conn_panics = %d, want 0", got)
	}

	// Health reflects the published generation and the rendered cycle.
	h := srv.Health()
	if h.Generation != 2 {
		t.Fatalf("health generation = %d, want 2 after the swap", h.Generation)
	}
	if h.CycleLen <= 0 || h.CycleProgress < 0 || h.CycleProgress >= 1 {
		t.Fatalf("health cycle view %+v", h)
	}
}

// TestLossyChannelObservability checks that the fault middleware's frame
// outcomes land in the server metrics, and that the client's recovery
// counters move under a hostile channel.
func TestLossyChannelObservability(t *testing.T) {
	const capacity = 256
	_, srv, _ := startSwapServer(t, 40, capacity, 5011, func(s *Server) {
		s.StartSlot = func() int { return 0 }
		s.Channel = channel.Spec{Loss: 0.05, Burst: 2, Corrupt: 0.02, Seed: 5012}.Factory(nil)
	})
	sm := srv.Metrics()

	cm := NewClientMetrics()
	client, err := Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Metrics = cm

	for _, p := range testutil.QueryPoints(testArea, 25, 5013) {
		if _, err := client.Query(p); err != nil {
			t.Fatalf("query %v: %v", p, err)
		}
	}
	if sm.FramesDropped.Load() == 0 {
		t.Fatal("frames_dropped did not move under a 5% loss channel")
	}
	if sm.FramesCorrupted.Load() == 0 {
		t.Fatal("frames_corrupted did not move under a 2% corruption channel")
	}
	if cm.LostSlots.Load() == 0 {
		t.Fatal("client lost_slots did not move under a lossy channel")
	}
	if cm.Recoveries.Load() == 0 {
		t.Fatal("client recoveries did not move under a lossy channel")
	}
}
