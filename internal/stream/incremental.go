package stream

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

// Incremental generation cuts. A full program compile at 50k sites spends
// seconds in Voronoi snapshot + D-tree partition search; a cut that follows
// a batch of a few site ops re-derives almost all of that from the previous
// generation instead:
//
//	maintainer dirty cells -> region.Patcher (reweld only the touched
//	neighborhood) -> core.Incremental (rebuild only dirty subtrees, splice
//	the rest) -> FlattenPatched (bulk-copy clean arena ranges) ->
//	renderPatched (reuse unchanged frames of the previous cycle).
//
// Every stage is pinned byte-identical to its from-scratch counterpart, so
// an incremental cut broadcasts exactly the bytes a cold rebuild would.

// cutStats reports how one generation cut was produced.
type cutStats struct {
	Incremental bool // false: full rebuild (bootstrap, fallback, or large batch)
	DirtyKeys   int  // canonical dirty regions handed to the index rebuild
	Spliced     int  // D-tree nodes copied from the previous generation
	Total       int  // D-tree nodes in the new generation
}

// dirtyPermille returns the rebuilt-node fraction in permille (1000 for a
// full rebuild).
func (cs cutStats) dirtyPermille() int64 {
	if !cs.Incremental || cs.Total == 0 {
		return 1000
	}
	return int64((cs.Total - cs.Spliced) * 1000 / cs.Total)
}

// incrFullFraction is the dirty-region fraction above which a cut falls
// back to a full rebuild: with most of the diagram dirty the splice scan is
// pure overhead on top of an almost-complete partition search.
const incrFullFraction = 0.25

// incrCompiler carries the compile pipeline state one generation hands the
// next. Not safe for concurrent use; the Swapper serializes Apply batches.
type incrCompiler struct {
	capacity int
	m        int
	// adjacency makes every compiled arena carry the region-adjacency table
	// (continuous queries): each cut rebuilds it from the fresh subdivision
	// and the appendix rides ahead of the tree in every index copy.
	adjacency bool

	patch *region.Patcher
	inc   *core.Incremental
	prog  *Program
	flat  *core.FlatPaged

	// failNext, when non-nil, fails the next compile with this error and
	// clears itself — the fault-injection hook the Apply error-path tests
	// use to exercise cut-failure recovery without corrupting real state.
	failNext error
}

func newIncrCompiler(capacity, m int) *incrCompiler {
	return &incrCompiler{capacity: capacity, m: m}
}

// reset drops all retained generation state; the next compile bootstraps.
func (c *incrCompiler) reset() {
	c.patch, c.inc, c.prog, c.flat = nil, nil, nil, nil
}

// finish pages, flattens, assembles, and renders a built tree, patching
// against the previous generation's arena and frame table when present.
// ids maps region index -> stable site id (the Generation.IDs order), used
// to look the sites up when the arena carries an adjacency table.
func (c *incrCompiler) finish(tree *core.Tree, maint *voronoi.Maintainer, sub *region.Subdivision, ids []int) (*Program, *core.FlatPaged, error) {
	paged, err := tree.Page(wire.DTreeParams(c.capacity))
	if err != nil {
		return nil, nil, err
	}
	fp := paged.FlattenPatched(c.flat)
	if c.adjacency {
		sites := make([]geom.Point, len(ids))
		for i, id := range ids {
			if sites[i], err = maint.Site(id); err != nil {
				return nil, nil, err
			}
		}
		adj, err := core.BuildAdjacency(sub, maint.Area(), sites)
		if err != nil {
			return nil, nil, err
		}
		if err := fp.Flat.SetAdjacency(adj); err != nil {
			return nil, nil, err
		}
	}
	prog, err := ProgramFromFlat(fp, c.m)
	if err != nil {
		return nil, nil, err
	}
	if c.prog != nil {
		rc, err := renderPatched(prog, c.prog)
		if err != nil {
			return nil, nil, err
		}
		prog.setRendered(rc)
	}
	if _, err := prog.Rendered(); err != nil {
		return nil, nil, err
	}
	c.prog, c.flat = prog, fp
	return prog, fp, nil
}

// full compiles the current diagram from scratch (through a fresh Patcher
// bootstrap, so subsequent batches can patch forward) and retains the
// generation state. Any failure resets the retained state entirely: a
// partially bootstrapped patcher paired with a stale incremental rebuilder
// must never survive into the next compile, where the incremental path
// would patch against a base that no generation ever had.
func (c *incrCompiler) full(maint *voronoi.Maintainer) (*region.Subdivision, []int, *Program, *core.FlatPaged, error) {
	ids, polys := maint.LiveCells()
	if len(ids) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("stream: no live sites")
	}
	c.reset()
	c.patch = region.NewPatcher(maint.Area())
	sub, _, err := c.patch.Patch(ids, polys, ids, nil)
	if err != nil {
		c.reset()
		return nil, nil, nil, nil, err
	}
	c.inc = core.NewIncremental()
	tree, err := c.inc.Full(sub)
	if err != nil {
		c.reset()
		return nil, nil, nil, nil, err
	}
	prog, fp, err := c.finish(tree, maint, sub, ids)
	if err != nil {
		c.reset()
		return nil, nil, nil, nil, err
	}
	return sub, ids, prog, fp, nil
}

// compile produces the next generation from the maintainer's batch delta,
// incrementally when the retained state allows it and the batch is small
// enough, from scratch otherwise. Any incremental-path error falls back to
// a full rebuild (the outputs are byte-identical either way).
func (c *incrCompiler) compile(maint *voronoi.Maintainer, dirty, removed []int) (*region.Subdivision, []int, *Program, *core.FlatPaged, cutStats, error) {
	if err := c.failNext; err != nil {
		// Deliberately leaves the retained state untouched: the Swapper's
		// error path owns the cleanup, and the tests pin that it happens.
		c.failNext = nil
		return nil, nil, nil, nil, cutStats{DirtyKeys: len(dirty)}, err
	}
	n := maint.Len()
	if c.patch == nil || c.inc == nil ||
		float64(len(dirty)+len(removed)) > incrFullFraction*float64(n) {
		sub, ids, prog, fp, err := c.full(maint)
		return sub, ids, prog, fp, cutStats{DirtyKeys: len(dirty)}, err
	}
	sub, ids, prog, fp, st, err := c.incremental(maint, dirty, removed)
	if err != nil {
		sub, ids, prog, fp, ferr := c.full(maint)
		return sub, ids, prog, fp, cutStats{DirtyKeys: len(dirty)}, ferr
	}
	return sub, ids, prog, fp, st, nil
}

func (c *incrCompiler) incremental(maint *voronoi.Maintainer, dirty, removed []int) (*region.Subdivision, []int, *Program, *core.FlatPaged, cutStats, error) {
	ids, polys := maint.LiveCells()
	if len(ids) == 0 {
		return nil, nil, nil, nil, cutStats{}, fmt.Errorf("stream: no live sites")
	}
	sub, canonDirty, err := c.patch.Patch(ids, polys, dirty, removed)
	if err != nil {
		return nil, nil, nil, nil, cutStats{}, err
	}
	tree, delta, err := c.inc.Rebuild(sub, canonDirty)
	if err != nil {
		return nil, nil, nil, nil, cutStats{}, err
	}
	prog, fp, err := c.finish(tree, maint, sub, ids)
	if err != nil {
		return nil, nil, nil, nil, cutStats{}, err
	}
	st := cutStats{Incremental: true, DirtyKeys: len(canonDirty), Spliced: delta.Spliced, Total: delta.Total}
	return sub, ids, prog, fp, st, nil
}

// renderPatched builds the rendered cycle for p by copying the previous
// generation's frame table and re-rendering only the slots whose bytes
// changed. Valid when both programs carry the canonical stamped data
// generator, so a data payload — and its CRC — is a pure function of
// (bucket, packet) and never of the generation. Index frames are compared
// packet by packet (the flat-arena patch leaves most of them byte-equal).
// The schedule may drift by whole index packets between generations (the
// encoded tree grows or shrinks past a packet boundary): every frame then
// shifts position, but only two header fields depend on position — the
// slot, which transmitSlot overwrites anyway, and the next-index delta —
// so a reused frame costs a 24-byte header rewrite, not a payload marshal.
// Anything else (capacity, bucket geometry, or replication changes) falls
// back to a full render. Byte identity with renderCycle is pinned by
// TestRenderPatchedMatchesRenderCycle.
func renderPatched(p, prev *Program) (*renderedCycle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prevRC := prev.rendered
	if prevRC == nil || !p.stamped || !prev.stamped ||
		p.Capacity != prev.Capacity ||
		p.Sched.M != prev.Sched.M ||
		p.Sched.NumBuckets != prev.Sched.NumBuckets ||
		p.Sched.BucketPackets != prev.Sched.BucketPackets {
		return renderCycle(p)
	}
	if p.Sched.IndexPackets == prev.Sched.IndexPackets {
		// Aligned schedules: every position keeps its meaning, so start from
		// a verbatim copy and re-render only the index packets whose bytes
		// changed. Copying the frames moves the header arrays by value (each
		// generation owns its headers — transmit-time patching never crosses
		// generations) and shares the immutable payload slices.
		rc := &renderedCycle{
			frames:    make([]renderedFrame, prevRC.cycleLen()),
			frameSize: prevRC.frameSize,
		}
		copy(rc.frames, prevRC.frames)
		for off := 0; off < p.Sched.IndexPackets; off++ {
			if bytes.Equal(p.IndexPackets[off], prev.IndexPackets[off]) {
				continue
			}
			for j := 0; j < p.Sched.M; j++ {
				pos := p.Sched.IndexStartOf(j) + off
				h, payload := p.frameAt(pos)
				h.CRC = Checksum(payload)
				buf, err := marshalFrame(h, payload)
				if err != nil {
					return nil, err
				}
				f := &rc.frames[pos]
				copy(f.hdr[:], buf[:headerSize])
				f.payload = buf[headerSize:]
			}
		}
		return rc, nil
	}

	// Drifted schedules: walk the new cycle, pull each frame's payload (and
	// CRC) from the position the same content held in the previous cycle,
	// and rewrite the two position-dependent header fields in place.
	cycle := p.Sched.CycleLen()
	rc := &renderedCycle{
		frames:    make([]renderedFrame, cycle),
		frameSize: prevRC.frameSize,
	}
	reuse := func(pos, prevPos int) error {
		next := p.Sched.NextIndexStart(float64(pos) + 1e-9)
		if next == pos {
			next = p.Sched.NextIndexStart(float64(pos) + 1)
		}
		delta := next - pos
		if delta > 0xffff {
			return fmt.Errorf("stream: next-index delta %d exceeds 16 bits", delta)
		}
		f := &rc.frames[pos]
		*f = prevRC.frames[prevPos]
		binary.LittleEndian.PutUint32(f.hdr[4:], uint32(pos))
		binary.LittleEndian.PutUint16(f.hdr[14:], uint16(delta))
		return nil
	}
	render := func(pos int) error {
		h, payload := p.frameAt(pos)
		h.CRC = Checksum(payload)
		buf, err := marshalFrame(h, payload)
		if err != nil {
			return err
		}
		f := &rc.frames[pos]
		copy(f.hdr[:], buf[:headerSize])
		f.payload = buf[headerSize:]
		return nil
	}
	for j := 0; j < p.Sched.M; j++ {
		start := p.Sched.IndexStartOf(j)
		for off := 0; off < p.Sched.IndexPackets; off++ {
			pos := start + off
			if off < prev.Sched.IndexPackets && bytes.Equal(p.IndexPackets[off], prev.IndexPackets[off]) {
				if err := reuse(pos, prev.Sched.IndexStartOf(0)+off); err != nil {
					return nil, err
				}
			} else if err := render(pos); err != nil {
				return nil, err
			}
		}
	}
	for b := 0; b < p.Sched.NumBuckets; b++ {
		start := p.Sched.BucketStart(b)
		prevStart := prev.Sched.BucketStart(b)
		for pkt := 0; pkt < p.Sched.BucketPackets; pkt++ {
			if err := reuse(start+pkt, prevStart+pkt); err != nil {
				return nil, err
			}
		}
	}
	return rc, nil
}
