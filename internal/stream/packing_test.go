package stream

import (
	"strings"
	"testing"

	"airindex/internal/broadcast"
)

// TestDataSeqAliasingHazard documents why MaxBucketPackets exists: the
// packet-in-bucket lives in 8 bits of the sequence field, so packets 256
// apart in an oversized bucket would be indistinguishable on the air and a
// client could assemble a bucket out of the wrong packets without noticing.
func TestDataSeqAliasingHazard(t *testing.T) {
	if DataSeq(3, 0) != DataSeq(3, MaxBucketPackets) {
		t.Fatal("expected aliasing at MaxBucketPackets — if this stopped aliasing, the wire format grew and the validation limit must move with it")
	}
	if DataSeq(3, MaxBucketPackets-1) == DataSeq(3, MaxBucketPackets) {
		t.Fatal("distinct in-range packets must not alias")
	}
	h := Header{Kind: KindData, Seq: DataSeq(7, 255)}
	if h.Bucket() != 7 || h.BucketPacket() != 255 {
		t.Fatalf("round trip (7, 255) -> (%d, %d)", h.Bucket(), h.BucketPacket())
	}
}

// TestProgramRejectsOversizedBuckets pins the guard: a program whose
// schedule splits a bucket across more than MaxBucketPackets packets must
// be rejected before a single frame is rendered, with an error that names
// the limit.
func TestProgramRejectsOversizedBuckets(t *testing.T) {
	sched, err := broadcast.NewSchedule(1, 4, MaxBucketPackets+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{
		Capacity:     64,
		IndexPackets: [][]byte{make([]byte, 64)},
		Sched:        sched,
	}
	err = prog.Validate()
	if err == nil {
		t.Fatal("oversized bucket accepted")
	}
	if !strings.Contains(err.Error(), "8-bit") {
		t.Fatalf("error %q does not explain the packing limit", err)
	}
	if _, rerr := prog.Rendered(); rerr == nil {
		t.Fatal("oversized bucket rendered")
	}
	// The largest legal bucket must still validate.
	sched, err = broadcast.NewSchedule(1, 4, MaxBucketPackets, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok := &Program{
		Capacity:     64,
		IndexPackets: [][]byte{make([]byte, 64)},
		Sched:        sched,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("bucket of exactly MaxBucketPackets rejected: %v", err)
	}
}
