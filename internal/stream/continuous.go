package stream

import (
	"errors"
	"fmt"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/obs"
)

// Continuous is the moving-client session: a standing window/kNN query
// re-evaluated once per broadcast cycle as the client's position advances.
// The broadcast must carry the region-adjacency appendix (a program compiled
// from an arena with SetAdjacency).
//
// In incremental mode the session caches its containing region, the decoded
// adjacency table, and the answer set's data buckets across cycles. Each
// wake costs one probe; the cached state is then validated cheaply — did the
// generation change? did the position cross a region boundary (an exact
// Voronoi membership test against the cached table)? Only a generation
// change re-acquires the appendix, only a boundary crossing re-descends the
// index, and only newly entered answer regions download their buckets.
// Fresh mode is the honest baseline: every cycle re-acquires everything as
// if the client had just tuned in.
//
// Answers are exact either way: for a pinned generation the broadcast table
// fully determines the window/kNN result at any position, so recomputing
// locally from cache equals re-reading the air. Tuning and latency are
// charged per cycle from the frames actually parsed, exactly like one-shot
// queries.
type Continuous struct {
	c    *Client
	mode ContinuousMode
	q    ContinuousQuery

	// Skip is the number of foreign packets before the adjacency appendix in
	// every index copy (a fabric channel's directory). Set before the first
	// Step; zero on a single channel.
	Skip int

	// Metrics, when set, accumulates the revalidation-vs-redescent counters
	// and per-cycle cost distributions. Optional; may be shared.
	Metrics *ContinuousMetrics

	cycle    int
	genValid bool
	gen      uint32
	adj      *core.Adjacency
	adjPkts  int
	region   int
	buckets  map[int][]byte
}

// ContinuousMode selects how the session treats its cross-cycle cache.
type ContinuousMode int

const (
	// ModeIncremental revalidates cached state and re-acquires only what a
	// generation change or boundary crossing invalidated.
	ModeIncremental ContinuousMode = iota
	// ModeFresh re-acquires appendix, descent and every answer bucket each
	// cycle — the baseline incremental revalidation is measured against.
	ModeFresh
)

// ContinuousQuery is the standing query shape, centered on the client.
type ContinuousQuery struct {
	// WindowW/WindowH give the standing window's full extent; the window is
	// re-centered on the client each cycle. Zero disables the window query.
	WindowW, WindowH float64
	// K asks for the k regions with the nearest sites. Zero disables.
	K int
}

// Window returns the query window centered at p (zero rect when disabled).
func (q ContinuousQuery) Window(p geom.Point) geom.Rect {
	return geom.Rect{
		MinX: p.X - q.WindowW/2, MinY: p.Y - q.WindowH/2,
		MaxX: p.X + q.WindowW/2, MaxY: p.Y + q.WindowH/2,
	}
}

// CycleOutcome is one cycle's answer with its cost accounting.
type CycleOutcome struct {
	Cycle      int
	Generation uint32

	Region int32   // global id of the containing region
	Window []int32 // global ids of regions meeting the window, ascending
	KNN    []int32 // global ids by (site distance², id)

	// Exactly one of the three is set: the cycle was answered from cache
	// after a successful validation, re-descended the index after a boundary
	// crossing, or re-acquired everything after a generation change (always
	// set in fresh mode).
	Revalidated bool
	Crossed     bool
	Refreshed   bool

	Res Result // per-cycle tuning/latency/recovery accounting
}

// NewContinuous starts a continuous session over a streamed client. The
// client's connection is owned by the caller.
func NewContinuous(c *Client, mode ContinuousMode, q ContinuousQuery) *Continuous {
	return &Continuous{c: c, mode: mode, q: q, region: -1, buckets: make(map[int][]byte)}
}

// Buckets exposes the session's cached answer data, keyed by local region
// id (read-only view; entries are the verified bucket payloads).
func (s *Continuous) Buckets() map[int][]byte { return s.buckets }

// invalidate drops every piece of cached state pinned to a dead generation.
func (s *Continuous) invalidate() {
	s.genValid = false
	s.adj = nil
	s.adjPkts = 0
	s.region = -1
	clear(s.buckets)
}

// Step advances the session one broadcast cycle at position p. Mid-cycle
// generation swaps restart the cycle against the new program (bounded, and
// charged to the same outcome) exactly like one-shot queries.
func (s *Continuous) Step(p geom.Point) (CycleOutcome, error) {
	var res Result
	var out CycleOutcome
	for restart := 0; ; restart++ {
		out = CycleOutcome{Cycle: s.cycle}
		err := s.stepOnce(p, &out, &res)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrStaleGeneration) {
			if s.Metrics != nil {
				s.Metrics.CycleErrors.Inc()
			}
			return out, err
		}
		// The program swapped mid-cycle: every cached pointer is stale.
		s.invalidate()
		res.EpochRestarts++
		res.Recoveries++
		res.TuneRecover++
		res.Data = res.Data[:0]
		if restart+1 >= maxEpochRestarts {
			err := fmt.Errorf("stream: continuous cycle abandoned after %d epoch restarts", maxEpochRestarts)
			if s.Metrics != nil {
				s.Metrics.CycleErrors.Inc()
			}
			return out, err
		}
	}
	res.Latency = float64(res.LastSlot + 1 - res.FirstSlot)
	out.Res = res
	out.Generation = res.Generation
	s.cycle++
	if m := s.Metrics; m != nil {
		m.Cycles.Inc()
		switch {
		case out.Revalidated:
			m.RevalidationHits.Inc()
		case out.Crossed:
			m.BoundaryRedescents.Inc()
		case out.Refreshed:
			m.FullRefreshes.Inc()
		}
		m.EpochRestarts.Add(int64(res.EpochRestarts))
		m.LatencySlots.Observe(int64(res.Latency))
		m.TuningPackets.Observe(int64(res.TotalTuning()))
	}
	return out, nil
}

// stepOnce runs one cycle against a single pinned generation.
func (s *Continuous) stepOnce(p geom.Point, out *CycleOutcome, res *Result) error {
	if err := s.c.Probe(res); err != nil {
		return err
	}
	if s.mode == ModeFresh || !s.genValid || res.Generation != s.gen {
		return s.acquire(p, out, res)
	}
	if s.adj.Contains(s.region, p) {
		out.Revalidated = true
	} else {
		// Crossed a region boundary: the index descent re-runs over the
		// live stream, but the appendix and untouched buckets stay cached.
		bucket, err := s.c.LocateShifted(p, s.Skip+s.adjPkts, res)
		if err != nil {
			return err
		}
		s.region = bucket
		out.Crossed = true
	}
	return s.answer(p, out, res)
}

// acquire performs the full tune-in: download the self-describing appendix,
// descend the index for p, then resolve the standing query.
func (s *Continuous) acquire(p geom.Point, out *CycleOutcome, res *Result) error {
	s.invalidate()
	head, err := s.c.FetchIndexPackets(res, s.Skip, s.Skip+1)
	if err != nil {
		return err
	}
	count, err := core.AdjacencyPacketCount(head[0])
	if err != nil {
		return fmt.Errorf("stream: broadcast carries no adjacency appendix at offset %d: %w", s.Skip, err)
	}
	rest, err := s.c.FetchIndexPackets(res, s.Skip+1, s.Skip+count)
	if err != nil {
		return err
	}
	adj, err := core.DecodeAdjacency(append(head, rest...))
	if err != nil {
		return err
	}
	bucket, err := s.c.LocateShifted(p, s.Skip+count, res)
	if err != nil {
		return err
	}
	s.adj, s.adjPkts = adj, count
	s.region = bucket
	s.gen, s.genValid = res.Generation, true
	out.Refreshed = true
	return s.answer(p, out, res)
}

// answer resolves the standing query at p from the cached table — radio-
// free — then downloads the buckets of answer regions not already held and
// drops the ones that left the answer set.
func (s *Continuous) answer(p geom.Point, out *CycleOutcome, res *Result) error {
	needed := map[int]bool{s.region: true}
	var window, knn []int32
	if s.q.WindowW > 0 || s.q.WindowH > 0 {
		window = s.adj.Window(s.region, s.q.Window(p))
		for _, id := range window {
			needed[int(id)] = true
		}
	}
	if s.q.K > 0 {
		knn = s.adj.KNN(s.region, p, s.q.K)
		for _, id := range knn {
			needed[int(id)] = true
		}
	}
	// Download missing answer buckets in broadcast order (ascending bucket
	// id matches the cycle's data layout, so one pass over the air usually
	// suffices).
	order := make([]int, 0, len(needed))
	for id := range needed {
		if _, ok := s.buckets[id]; !ok {
			order = append(order, id)
		}
	}
	insertionSortInts(order)
	for _, id := range order {
		data, err := s.c.FetchBucket(id, res)
		if err != nil {
			return err
		}
		s.buckets[id] = data
	}
	for id := range s.buckets {
		if !needed[id] {
			delete(s.buckets, id)
		}
	}
	out.Region = s.adj.GlobalID(s.region)
	out.Window = s.toGlobal(window)
	out.KNN = s.toGlobal(knn)
	return nil
}

// toGlobal maps local region indices to global ids, preserving order (the
// mapping is monotone on a single channel, where it is the identity).
func (s *Continuous) toGlobal(local []int32) []int32 {
	if local == nil {
		return nil
	}
	out := make([]int32, len(local))
	for i, id := range local {
		out[i] = s.adj.GlobalID(int(id))
	}
	return out
}

// insertionSortInts keeps tiny id lists ordered without pulling in sort for
// the hot path.
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// ContinuousMetrics counts how a continuous session pays for its answers:
// cycles resolved by cheap revalidation versus index re-descents versus full
// re-acquisitions, plus the per-cycle cost distributions.
type ContinuousMetrics struct {
	reg *obs.Registry

	Cycles             *obs.Counter // cycles completed
	RevalidationHits   *obs.Counter // answered from cache, no re-descent
	BoundaryRedescents *obs.Counter // index re-descents after a crossing
	FullRefreshes      *obs.Counter // full re-acquisitions (new generation or fresh mode)
	EpochRestarts      *obs.Counter // mid-cycle swaps recovered from
	CycleErrors        *obs.Counter // cycles that failed terminally

	LatencySlots  *obs.Histogram // per-cycle latency, slots
	TuningPackets *obs.Histogram // per-cycle tuning, packets
}

// NewContinuousMetrics builds a metric set backed by a fresh registry.
func NewContinuousMetrics() *ContinuousMetrics {
	return NewContinuousMetricsIn(obs.NewRegistry(), "")
}

// NewContinuousMetricsIn registers the set in an existing registry under a
// name prefix (unique within the registry).
func NewContinuousMetricsIn(reg *obs.Registry, prefix string) *ContinuousMetrics {
	return &ContinuousMetrics{
		reg:                reg,
		Cycles:             reg.Counter(prefix + "cont_cycles"),
		RevalidationHits:   reg.Counter(prefix + "cont_revalidation_hits"),
		BoundaryRedescents: reg.Counter(prefix + "cont_boundary_redescents"),
		FullRefreshes:      reg.Counter(prefix + "cont_full_refreshes"),
		EpochRestarts:      reg.Counter(prefix + "cont_epoch_restarts"),
		CycleErrors:        reg.Counter(prefix + "cont_cycle_errors"),
		LatencySlots:       reg.Histogram(prefix+"cont_latency_slots", 1024),
		TuningPackets:      reg.Histogram(prefix+"cont_tuning_packets", 1024),
	}
}

// Registry exposes the underlying registry (for /metrics and snapshots).
func (m *ContinuousMetrics) Registry() *obs.Registry { return m.reg }

// Snapshot reads every metric into a JSON-friendly map.
func (m *ContinuousMetrics) Snapshot() map[string]any { return m.reg.Snapshot() }
