package stream

import (
	"bytes"
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// requireProgramsIdentical asserts two programs put byte-identical cycles
// on the air: same encoded index packets and same rendered frame table.
func requireProgramsIdentical(t *testing.T, label string, got, want *Program) {
	t.Helper()
	if len(got.IndexPackets) != len(want.IndexPackets) {
		t.Fatalf("%s: %d index packets, want %d", label, len(got.IndexPackets), len(want.IndexPackets))
	}
	for k := range got.IndexPackets {
		if !bytes.Equal(got.IndexPackets[k], want.IndexPackets[k]) {
			t.Fatalf("%s: index packet %d differs", label, k)
		}
	}
	grc, err := got.Rendered()
	if err != nil {
		t.Fatalf("%s: render got: %v", label, err)
	}
	wrc, err := want.Rendered()
	if err != nil {
		t.Fatalf("%s: render want: %v", label, err)
	}
	if grc.cycleLen() != wrc.cycleLen() {
		t.Fatalf("%s: cycle %d frames, want %d", label, grc.cycleLen(), wrc.cycleLen())
	}
	for pos := range grc.frames {
		g, w := &grc.frames[pos], &wrc.frames[pos]
		if g.hdr != w.hdr {
			t.Fatalf("%s: frame %d header differs", label, pos)
		}
		if !bytes.Equal(g.payload, w.payload) {
			t.Fatalf("%s: frame %d payload differs", label, pos)
		}
	}
}

// randomOps draws one Apply batch against the swapper's live id set,
// never reusing an id already removed earlier in the same batch.
func randomOps(rng *rand.Rand, sw *Swapper, batch int) []SiteOp {
	ids := sw.LiveSiteIDs()
	ops := make([]SiteOp, 0, batch)
	for i := 0; i < batch; i++ {
		p := geom.Pt(testArea.MinX+rng.Float64()*(testArea.MaxX-testArea.MinX),
			testArea.MinY+rng.Float64()*(testArea.MaxY-testArea.MinY))
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) < 8:
			ops = append(ops, SiteOp{Kind: OpAdd, P: p})
		case op == 1:
			k := rng.Intn(len(ids))
			ops = append(ops, SiteOp{Kind: OpRemove, ID: ids[k]})
			ids = append(ids[:k], ids[k+1:]...)
		default:
			ops = append(ops, SiteOp{Kind: OpMove, ID: ids[rng.Intn(len(ids))], P: p})
		}
	}
	return ops
}

// TestRenderPatchedMatchesRenderCycle pins the incremental render path: the
// frame table a cut builds by patching the previous generation's is
// byte-identical to a cold renderCycle of the same program.
func TestRenderPatchedMatchesRenderCycle(t *testing.T) {
	const capacity = 256
	sites := testutil.RandomSites(testArea, 70, 8101)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8102))
	for step := 0; step < 6; step++ {
		if _, _, err := sw.Apply(randomOps(rng, sw, 1+rng.Intn(4))); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g := sw.Current()
		// Re-render the same program cold, bypassing the patched table.
		cold := &Program{
			Capacity:     g.Prog.Capacity,
			IndexPackets: g.Prog.IndexPackets,
			Sched:        g.Prog.Sched,
			Data:         g.Prog.Data,
		}
		requireProgramsIdentical(t, "step", g.Prog, cold)
	}
}

// TestIncrementalCutMatchesFromScratch pins the whole incremental pipeline
// per generation: the published program and flat arena equal a from-scratch
// CompileDTree of the generation's own subdivision, byte for byte.
func TestIncrementalCutMatchesFromScratch(t *testing.T) {
	const capacity = 256
	sites := testutil.RandomSites(testArea, 60, 8201)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8202))
	for step := 0; step < 8; step++ {
		if _, _, err := sw.Apply(randomOps(rng, sw, 1+rng.Intn(3))); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g := sw.Current()
		want, wantFP, err := CompileDTree(g.Sub, capacity, sw.m)
		if err != nil {
			t.Fatalf("step %d: scratch compile: %v", step, err)
		}
		requireProgramsIdentical(t, "cut", g.Prog, want)
		if !bytes.Equal(g.Flat.Snapshot(), wantFP.Snapshot()) {
			t.Fatalf("step %d: incremental arena snapshot differs from scratch", step)
		}
	}
}

// TestSwapperLongHorizonIncrementalIdentity is the long-horizon property
// test of the issue: hundreds of random add/remove/move ops stream through
// Apply, and at every generation the incrementally cut program is
// byte-identical (packets, rendered frames, arena snapshot) to a
// from-scratch compile of that generation's ground truth. Run under -race
// this also exercises the cross-generation sharing (splices, arenas,
// rendered frames) for unsynchronized mutation.
func TestSwapperLongHorizonIncrementalIdentity(t *testing.T) {
	const capacity = 256
	ops, checkEvery := 500, 10
	if testing.Short() {
		ops, checkEvery = 120, 6
	}
	sites := testutil.RandomSites(testArea, 80, 8301)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8302))
	applied, gens := 0, 0
	for applied < ops {
		batch := 1 + rng.Intn(8)
		if batch > ops-applied {
			batch = ops - applied
		}
		if _, _, err := sw.Apply(randomOps(rng, sw, batch)); err != nil {
			t.Fatalf("after %d ops: %v", applied, err)
		}
		applied += batch
		gens++
		g := sw.Current()
		// A from-scratch compile per generation is the expensive half of the
		// check; spot-check every few generations and always at the end.
		if gens%checkEvery != 0 && applied < ops {
			// The cheap invariant still runs every generation: the arena the
			// program was rendered from indexes the generation's subdivision.
			if g.Flat.Flat.N != g.Sub.N() {
				t.Fatalf("after %d ops: arena over %d regions, subdivision has %d", applied, g.Flat.Flat.N, g.Sub.N())
			}
			continue
		}
		want, wantFP, err := CompileDTree(g.Sub, capacity, sw.m)
		if err != nil {
			t.Fatalf("after %d ops: scratch compile: %v", applied, err)
		}
		requireProgramsIdentical(t, "long-horizon", g.Prog, want)
		if !bytes.Equal(g.Flat.Snapshot(), wantFP.Snapshot()) {
			t.Fatalf("after %d ops: arena snapshot differs from scratch", applied)
		}
	}
}
