package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"airindex/internal/broadcast"
	"airindex/internal/channel"
)

// txBufSize is the transmit write-buffer size shared by the live server
// and Program.Transmit, so the loss experiments and the live server
// measure the same I/O batching (one syscall per ~64 KB instead of per
// frame).
const txBufSize = 64 << 10

// ErrServerClosed is returned by Serve after Close or Shutdown, so callers
// can tell a deliberate stop from an accept failure (net/http's
// ErrServerClosed convention).
var ErrServerClosed = errors.New("stream: server closed")

// Program is the broadcast content: the encoded index packets, the (1, m)
// schedule that orders them with the data, and the data payload source.
type Program struct {
	Capacity     int
	IndexPackets [][]byte
	Sched        *broadcast.Schedule
	// Data returns the payload of one packet of one bucket; nil payloads
	// are zero-filled. Payloads shorter than Capacity are padded.
	Data func(bucket, pkt int) []byte

	// stamped marks Data as the canonical BucketStamp generator, whose
	// payload bytes are a pure function of (bucket, pkt) — the property the
	// incremental render path (renderPatched) needs to reuse data frames
	// across generations.
	stamped bool

	renderOnce sync.Once
	rendered   *renderedCycle
	renderErr  error
}

// setRendered installs a pre-built rendered cycle (the incremental render
// path builds it against the previous generation); a later Rendered call
// returns it without re-rendering. No-op if the program already rendered.
func (p *Program) setRendered(rc *renderedCycle) {
	p.renderOnce.Do(func() { p.rendered = rc })
}

// Rendered returns the program's immutable rendered cycle, building it on
// first use. The table is safe for concurrent use by any number of
// connections. Mutating Capacity, IndexPackets, Sched or Data after the
// first transmission is not supported.
func (p *Program) Rendered() (*renderedCycle, error) {
	p.renderOnce.Do(func() {
		p.rendered, p.renderErr = renderCycle(p)
	})
	return p.rendered, p.renderErr
}

// RenderedSize reports the rendered cycle's frame count and memory
// footprint in bytes, rendering it on first use (startup diagnostics).
func (p *Program) RenderedSize() (frames, bytes int, err error) {
	rc, err := p.Rendered()
	if err != nil {
		return 0, 0, err
	}
	return rc.cycleLen(), rc.sizeBytes(), nil
}

// Validate checks internal consistency.
func (p *Program) Validate() error {
	if p.Capacity <= 0 {
		return fmt.Errorf("stream: capacity %d", p.Capacity)
	}
	if p.Sched == nil {
		return fmt.Errorf("stream: nil schedule")
	}
	if len(p.IndexPackets) == 0 {
		return fmt.Errorf("stream: a broadcast program needs at least one index packet")
	}
	if len(p.IndexPackets) != p.Sched.IndexPackets {
		return fmt.Errorf("stream: %d index packets, schedule says %d", len(p.IndexPackets), p.Sched.IndexPackets)
	}
	if p.Sched.BucketPackets > MaxBucketPackets {
		// DataSeq keeps the packet-in-bucket in 8 bits; a larger bucket
		// would silently alias packets MaxBucketPackets apart on the air.
		return fmt.Errorf("stream: %d packets per data bucket exceeds the wire format's limit of %d (packet-in-bucket is an 8-bit field)",
			p.Sched.BucketPackets, MaxBucketPackets)
	}
	for k, pkt := range p.IndexPackets {
		if len(pkt) != p.Capacity {
			return fmt.Errorf("stream: index packet %d has %d bytes", k, len(pkt))
		}
	}
	return nil
}

// frameAt renders the frame broadcast at an absolute slot.
func (p *Program) frameAt(slot int) (Header, []byte) {
	cycle := p.Sched.CycleLen()
	pos := slot % cycle
	next := p.Sched.NextIndexStart(float64(pos) + 1e-9)
	// Delta from this slot to the next index copy (strictly ahead).
	if next == pos {
		next = p.Sched.NextIndexStart(float64(pos) + 1)
	}
	h := Header{Slot: uint32(slot), NextIndex: uint32(next - pos), PayloadLen: uint16(p.Capacity)}

	// Which region of the cycle is pos in?
	idxStart := -1
	for j := 0; j < p.Sched.M; j++ {
		s := p.Sched.IndexStartOf(j)
		if pos >= s && pos < s+p.Sched.IndexPackets {
			idxStart = s
			break
		}
	}
	if idxStart >= 0 {
		off := pos - idxStart
		h.Kind = KindIndex
		h.Seq = uint32(off)
		return h, p.IndexPackets[off]
	}
	bucket, pkt := p.Sched.BucketAt(pos)
	h.Kind = KindData
	h.Seq = DataSeq(bucket, pkt)
	payload := make([]byte, p.Capacity)
	if p.Data != nil {
		copy(payload, p.Data(bucket, pkt))
	}
	return h, payload
}

// liveProgram pairs a program with the generation number it broadcasts
// under. The pair is published atomically so connection goroutines always
// see a consistent (program, generation) and never a torn swap.
type liveProgram struct {
	prog *Program
	gen  uint32
}

// Server broadcasts a Program. Each connection receives its own contiguous
// frame stream beginning at the server's current slot position when it
// tuned in — like switching on a radio — and advances independently, so a
// slow client does not stall a fast one (a real channel would drop frames
// instead; per-connection pacing keeps the protocol identical from the
// client's point of view).
//
// The program can be replaced while serving (Swap): each connection picks
// up the new program at its next cycle boundary, keeps the absolute slot
// numbering running uninterrupted, and stamps every frame with the
// program's generation so clients detect the change.
type Server struct {
	ln net.Listener

	// SlotDuration throttles the broadcast to real time; zero streams at
	// full speed (useful for tests and simulations).
	SlotDuration time.Duration

	// StartSlot, when set, chooses the first slot of each new connection
	// (tests and demos inject randomness or fixed phases here).
	StartSlot func() int

	// Channel, when set, is called once per connection to build the
	// simulated lossy channel (internal/channel) every outgoing frame of
	// that connection passes through; channel.Spec.Factory is the usual
	// source. Dropped frames still consume their slot — the client sees a
	// gap in the slot numbering, as on a real fading channel.
	Channel func() *channel.Channel

	// WriteTimeout bounds every underlying connection write. A receiver
	// that cannot drain the broadcast for this long is evicted (counted in
	// Evictions) instead of pinning a goroutine and its buffers forever.
	// Zero disables the deadline.
	WriteTimeout time.Duration

	// Logf, when set, receives lifecycle diagnostics: recovered connection
	// panics and slow-client evictions.
	Logf func(format string, args ...any)

	cur    atomic.Pointer[liveProgram]
	swapMu sync.Mutex // serializes Swap against Swap and against shutdown

	start    time.Time
	closed   atomic.Bool // hard stop: connections exit at the next slot
	draining atomic.Bool // soft stop: connections exit at the next cycle boundary
	wg       sync.WaitGroup
	metrics  *Metrics

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// NewServer wraps a listener. Serve must be called to start accepting.
// The initial program broadcasts as generation 1.
func NewServer(ln net.Listener, prog *Program) (*Server, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now(), conns: make(map[net.Conn]bool), metrics: NewMetrics()}
	s.cur.Store(&liveProgram{prog: prog, gen: 1})
	return s, nil
}

// Swap validates, renders, and publishes a new broadcast program, returning
// the generation it will broadcast under. Every connection switches at its
// next cycle boundary — the first slot of the new program is an index-copy
// start, so the trailing frames of the old cycle still point at a valid
// index root. The packet capacity must not change across a swap: clients
// size their reads from the probe frame and cannot follow a capacity
// change.
func (s *Server) Swap(next *Program) (uint32, error) {
	if err := next.Validate(); err != nil {
		return 0, err
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed.Load() || s.draining.Load() {
		return 0, ErrServerClosed
	}
	cur := s.cur.Load()
	if next.Capacity != cur.prog.Capacity {
		return 0, fmt.Errorf("stream: swap changes packet capacity %d -> %d; live clients cannot follow", cur.prog.Capacity, next.Capacity)
	}
	// Render before publishing so connections never pay the build cost on
	// their hot path (and a render failure leaves the old program live).
	if _, err := next.Rendered(); err != nil {
		return 0, err
	}
	gen := cur.gen + 1
	s.cur.Store(&liveProgram{prog: next, gen: gen})
	s.metrics.Swaps.Inc()
	return gen, nil
}

// Generation returns the generation of the currently published program.
func (s *Server) Generation() uint32 { return s.cur.Load().gen }

// Program returns the currently published program.
func (s *Server) Program() *Program { return s.cur.Load().prog }

// Metrics returns the server's observability counters (never nil).
func (s *Server) Metrics() *Metrics { return s.metrics }

// UseMetrics replaces the server's metric set — the multi-channel fabric
// points every shard server at one shared registry with per-shard name
// prefixes (NewMetricsIn). Must be called before Serve; counts already
// recorded on the default set are not migrated.
func (s *Server) UseMetrics(m *Metrics) {
	if m != nil {
		s.metrics = m
	}
}

// Evictions reports how many slow clients were evicted by WriteTimeout.
func (s *Server) Evictions() int64 { return s.metrics.Evictions.Load() }

// RecoveredPanics reports how many connection goroutines panicked and were
// contained without taking the server down.
func (s *Server) RecoveredPanics() int64 { return s.metrics.ConnPanics.Load() }

// currentSlot is the server's shared broadcast clock: the slot a radio
// tuning in right now would first hear. It is derived from a single
// monotonic source — wall time since the server started over SlotDuration —
// so concurrent joiners agree on the channel position regardless of how far
// individual connection goroutines have streamed ahead. Without real-time
// pacing there is no meaningful shared position (every connection streams
// at its own full speed), so joiners deterministically start at slot 0.
func (s *Server) currentSlot() int {
	if s.SlotDuration <= 0 {
		return 0
	}
	return int(time.Since(s.start) / s.SlotDuration)
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// stopping reports whether the server has begun any form of shutdown.
func (s *Server) stopping() bool { return s.closed.Load() || s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the server is closed or shut down, in
// which case it returns ErrServerClosed; every connection receives the
// broadcast starting from the shared current slot. A panic in one
// connection's stream is recovered and counted — one poisoned connection
// cannot take the broadcast down for everyone else.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.stopping() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.metrics.ConnsTotal.Inc()
		s.metrics.ConnsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.metrics.ConnsActive.Add(-1)
			}()
			defer func() {
				if r := recover(); r != nil {
					s.metrics.ConnPanics.Inc()
					s.logf("stream: connection %v: recovered panic: %v", conn.RemoteAddr(), r)
				}
			}()
			s.streamTo(conn)
		}()
	}
}

// deadlineWriter arms a write deadline before every underlying write, so a
// receiver that stops draining surfaces os.ErrDeadlineExceeded instead of
// blocking the connection goroutine forever.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.timeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.timeout)) //nolint:errcheck
	}
	return w.conn.Write(p)
}

// streamTo broadcasts frames to one connection until it errors or the
// server stops. Frames come from the shared rendered cycle — the
// perfect-channel path performs no per-frame allocation or copying beyond
// the 24-byte header patch. Writes are buffered (one syscall per ~64 KB
// instead of per frame); with real-time pacing every frame is flushed on
// its slot tick.
//
// At every cycle boundary the goroutine checks for a swapped program and,
// when draining, exits — so a graceful shutdown always completes the cycle
// in flight, and a swap never tears an index copy or a bucket in half.
func (s *Server) streamTo(conn net.Conn) {
	lp := s.cur.Load()
	var slot int
	if s.StartSlot != nil {
		slot = s.StartSlot()
	} else {
		slot = s.currentSlot()
	}
	var ch *channel.Channel
	if s.Channel != nil {
		ch = s.Channel()
	}
	tx, err := lp.prog.transmitter(ch, s.metrics)
	if err != nil {
		return
	}
	cycle := lp.prog.Sched.CycleLen()
	// Content position is slot-contentBase: zero for a fresh connection
	// (frame content at absolute slot s is s % cycle, as always), rebased
	// to the swap slot when a new program takes over mid-connection.
	contentBase := 0
	bw := bufio.NewWriterSize(&deadlineWriter{conn: conn, timeout: s.WriteTimeout}, txBufSize)
	for !s.closed.Load() {
		if (slot-contentBase)%cycle == 0 {
			if s.draining.Load() {
				break
			}
			if next := s.cur.Load(); next.gen != lp.gen {
				ntx, terr := next.prog.transmitter(ch, s.metrics)
				if terr != nil {
					return
				}
				lp, tx = next, ntx
				cycle = lp.prog.Sched.CycleLen()
				contentBase = slot
			}
		}
		if err := tx.transmitSlot(bw, slot, slot-contentBase, lp.gen); err != nil {
			s.noteWriteError(conn, err)
			return
		}
		slot++
		if s.SlotDuration > 0 {
			if err := bw.Flush(); err != nil {
				s.noteWriteError(conn, err)
				return
			}
			time.Sleep(s.SlotDuration)
		}
	}
	bw.Flush() //nolint:errcheck
}

// noteWriteError classifies a failed connection write: a deadline
// expiration is a slow-client eviction worth counting; anything else is an
// ordinary disconnect.
func (s *Server) noteWriteError(conn net.Conn, err error) {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		s.metrics.Evictions.Inc()
		s.logf("stream: evicted slow client %v: %v", conn.RemoteAddr(), err)
	}
}

// Transmit streams the program's frames to w, beginning at startSlot and
// passing every frame through ch (nil = perfect channel), until the writer
// fails — the listener-less analogue of Server for net.Pipe tests and the
// loss-rate experiments. Frames carry generation 1, matching a freshly
// started server. Closing the pipe is how callers stop it.
func (p *Program) Transmit(w io.Writer, startSlot int, ch *channel.Channel) error {
	return p.TransmitObserved(w, startSlot, ch, nil)
}

// TransmitObserved is Transmit recording frame counters into m (nil
// allocates a private, unread set), so listener-less experiments report
// the same wire-side metrics a live server would.
func (p *Program) TransmitObserved(w io.Writer, startSlot int, ch *channel.Channel, m *Metrics) error {
	tx, err := p.transmitter(ch, m)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, txBufSize)
	for slot := startSlot; ; slot++ {
		if err := tx.transmitSlot(bw, slot, slot, 1); err != nil {
			return err
		}
	}
}

// Shutdown stops accepting and drains gracefully: every connection streams
// on to its next cycle boundary — completing the index copy or bucket in
// flight — flushes, and exits. If ctx expires before the drain completes,
// the stragglers are severed immediately and ctx.Err() is returned; a
// clean drain returns nil. Serve returns ErrServerClosed in either case.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	lnErr := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.closed.Store(true)
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.closed.Store(true)
	if err == nil && lnErr != nil && !errors.Is(lnErr, net.ErrClosed) {
		err = lnErr
	}
	return err
}

// Close stops accepting, severs every active stream immediately, and waits
// for the per-connection goroutines to exit. Safe to call after Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
