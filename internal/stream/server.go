package stream

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"airindex/internal/broadcast"
	"airindex/internal/channel"
)

// txBufSize is the transmit write-buffer size shared by the live server
// and Program.Transmit, so the loss experiments and the live server
// measure the same I/O batching (one syscall per ~64 KB instead of per
// frame).
const txBufSize = 64 << 10

// Program is the broadcast content: the encoded index packets, the (1, m)
// schedule that orders them with the data, and the data payload source.
type Program struct {
	Capacity     int
	IndexPackets [][]byte
	Sched        *broadcast.Schedule
	// Data returns the payload of one packet of one bucket; nil payloads
	// are zero-filled. Payloads shorter than Capacity are padded.
	Data func(bucket, pkt int) []byte

	renderOnce sync.Once
	rendered   *renderedCycle
	renderErr  error
}

// Rendered returns the program's immutable rendered cycle, building it on
// first use. The table is safe for concurrent use by any number of
// connections. Mutating Capacity, IndexPackets, Sched or Data after the
// first transmission is not supported.
func (p *Program) Rendered() (*renderedCycle, error) {
	p.renderOnce.Do(func() {
		p.rendered, p.renderErr = renderCycle(p)
	})
	return p.rendered, p.renderErr
}

// RenderedSize reports the rendered cycle's frame count and memory
// footprint in bytes, rendering it on first use (startup diagnostics).
func (p *Program) RenderedSize() (frames, bytes int, err error) {
	rc, err := p.Rendered()
	if err != nil {
		return 0, 0, err
	}
	return rc.cycleLen(), rc.sizeBytes(), nil
}

// Validate checks internal consistency.
func (p *Program) Validate() error {
	if p.Capacity <= 0 {
		return fmt.Errorf("stream: capacity %d", p.Capacity)
	}
	if p.Sched == nil {
		return fmt.Errorf("stream: nil schedule")
	}
	if len(p.IndexPackets) == 0 {
		return fmt.Errorf("stream: a broadcast program needs at least one index packet")
	}
	if len(p.IndexPackets) != p.Sched.IndexPackets {
		return fmt.Errorf("stream: %d index packets, schedule says %d", len(p.IndexPackets), p.Sched.IndexPackets)
	}
	for k, pkt := range p.IndexPackets {
		if len(pkt) != p.Capacity {
			return fmt.Errorf("stream: index packet %d has %d bytes", k, len(pkt))
		}
	}
	return nil
}

// frameAt renders the frame broadcast at an absolute slot.
func (p *Program) frameAt(slot int) (Header, []byte) {
	cycle := p.Sched.CycleLen()
	pos := slot % cycle
	next := p.Sched.NextIndexStart(float64(pos) + 1e-9)
	// Delta from this slot to the next index copy (strictly ahead).
	if next == pos {
		next = p.Sched.NextIndexStart(float64(pos) + 1)
	}
	h := Header{Slot: uint32(slot), NextIndex: uint32(next - pos), PayloadLen: uint16(p.Capacity)}

	// Which region of the cycle is pos in?
	idxStart := -1
	for j := 0; j < p.Sched.M; j++ {
		s := p.Sched.IndexStartOf(j)
		if pos >= s && pos < s+p.Sched.IndexPackets {
			idxStart = s
			break
		}
	}
	if idxStart >= 0 {
		off := pos - idxStart
		h.Kind = KindIndex
		h.Seq = uint32(off)
		return h, p.IndexPackets[off]
	}
	bucket, pkt := p.Sched.BucketAt(pos)
	h.Kind = KindData
	h.Seq = DataSeq(bucket, pkt)
	payload := make([]byte, p.Capacity)
	if p.Data != nil {
		copy(payload, p.Data(bucket, pkt))
	}
	return h, payload
}

// Server broadcasts a Program. Each connection receives its own contiguous
// frame stream beginning at the server's current slot position when it
// tuned in — like switching on a radio — and advances independently, so a
// slow client does not stall a fast one (a real channel would drop frames
// instead; per-connection pacing keeps the protocol identical from the
// client's point of view).
type Server struct {
	prog *Program
	ln   net.Listener

	// SlotDuration throttles the broadcast to real time; zero streams at
	// full speed (useful for tests and simulations).
	SlotDuration time.Duration

	// StartSlot, when set, chooses the first slot of each new connection
	// (tests and demos inject randomness or fixed phases here).
	StartSlot func() int

	// Channel, when set, is called once per connection to build the
	// simulated lossy channel (internal/channel) every outgoing frame of
	// that connection passes through; channel.Spec.Factory is the usual
	// source. Dropped frames still consume their slot — the client sees a
	// gap in the slot numbering, as on a real fading channel.
	Channel func() *channel.Channel

	start  time.Time
	closed atomic.Bool
	wg     sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// NewServer wraps a listener. Serve must be called to start accepting.
func NewServer(ln net.Listener, prog *Program) (*Server, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Server{prog: prog, ln: ln, start: time.Now(), conns: make(map[net.Conn]bool)}, nil
}

// currentSlot is the server's shared broadcast clock: the slot a radio
// tuning in right now would first hear. It is derived from a single
// monotonic source — wall time since the server started over SlotDuration —
// so concurrent joiners agree on the channel position regardless of how far
// individual connection goroutines have streamed ahead. Without real-time
// pacing there is no meaningful shared position (every connection streams
// at its own full speed), so joiners deterministically start at slot 0.
func (s *Server) currentSlot() int {
	if s.SlotDuration <= 0 {
		return 0
	}
	return int(time.Since(s.start) / s.SlotDuration)
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until the listener closes; every connection
// receives the broadcast starting from the shared current slot.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.streamTo(conn)
		}()
	}
}

// streamTo broadcasts frames to one connection until it errors or the
// server closes. Frames come from the shared rendered cycle — the
// perfect-channel path performs no per-frame allocation or copying beyond
// the 20-byte header patch. Writes are buffered (one syscall per ~64 KB
// instead of per frame); with real-time pacing every frame is flushed on
// its slot tick.
func (s *Server) streamTo(w io.Writer) {
	var slot int
	if s.StartSlot != nil {
		slot = s.StartSlot()
	} else {
		slot = s.currentSlot()
	}
	var ch *channel.Channel
	if s.Channel != nil {
		ch = s.Channel()
	}
	tx, err := s.prog.transmitter(ch)
	if err != nil {
		return
	}
	bw := bufio.NewWriterSize(w, txBufSize)
	for !s.closed.Load() {
		if err := tx.transmitSlot(bw, slot); err != nil {
			return
		}
		slot++
		if s.SlotDuration > 0 {
			if err := bw.Flush(); err != nil {
				return
			}
			time.Sleep(s.SlotDuration)
		}
	}
	bw.Flush() //nolint:errcheck
}

// Transmit streams the program's frames to w, beginning at startSlot and
// passing every frame through ch (nil = perfect channel), until the writer
// fails — the listener-less analogue of Server for net.Pipe tests and the
// loss-rate experiments. Closing the pipe is how callers stop it.
func (p *Program) Transmit(w io.Writer, startSlot int, ch *channel.Channel) error {
	tx, err := p.transmitter(ch)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, txBufSize)
	for slot := startSlot; ; slot++ {
		if err := tx.transmitSlot(bw, slot); err != nil {
			return err
		}
	}
}

// Close stops accepting, severs every active stream, and waits for the
// per-connection goroutines to exit.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
