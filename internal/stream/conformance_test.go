package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The conformance suite pins the wire format against golden byte vectors
// under testdata/. Any change to the frame layout — field order, widths,
// endianness, the version byte, the checksum — fails these tests loudly,
// instead of silently breaking deployed clients that speak the old bytes.
// To bless an intentional format change, bump frameVersion, regenerate the
// v3 fixtures with `go test -run TestConformanceGoldenV3 -update-golden`,
// and keep the old version's fixtures as rejection vectors.

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire-format fixtures under testdata/")

// wireVector is one canonical frame of the current (v3) format.
type wireVector struct {
	name    string
	header  Header
	payload []byte
}

func conformanceVectors() []wireVector {
	idxPayload := make([]byte, 16)
	dataPayload := make([]byte, 16)
	for i := range idxPayload {
		idxPayload[i] = byte(i)
		dataPayload[i] = byte(i * 17)
	}
	return []wireVector{
		{
			name:    "frame_v3_index",
			header:  Header{Kind: KindIndex, Slot: 0x01020304, Seq: 5, NextIndex: 7, PayloadLen: 16, Gen: 9},
			payload: idxPayload,
		},
		{
			name:    "frame_v3_data",
			header:  Header{Kind: KindData, Slot: 1000, Seq: DataSeq(42, 3), NextIndex: 123, PayloadLen: 16, Gen: 2},
			payload: dataPayload,
		},
	}
}

// legacyVectors reconstructs frames of the retired wire formats byte by
// byte: v1 was the checksum-less 16-byte header (the former version byte
// was zero padding), v2 claimed the pad byte as version 2 and appended a
// CRC32 of the payload. A v3 client must reject both with a version error.
func legacyVectors() map[string][]byte {
	payload := make([]byte, 16)
	for i := range payload {
		payload[i] = byte(i)
	}
	v1 := make([]byte, 16+len(payload))
	binary.LittleEndian.PutUint16(v1[0:], frameMagic)
	v1[2] = KindIndex
	v1[3] = 0 // v1: padding, no version field
	binary.LittleEndian.PutUint32(v1[4:], 0x01020304)
	binary.LittleEndian.PutUint32(v1[8:], 5)
	binary.LittleEndian.PutUint16(v1[12:], uint16(len(payload)))
	binary.LittleEndian.PutUint16(v1[14:], 7)
	copy(v1[16:], payload)

	v2 := make([]byte, 20+len(payload))
	binary.LittleEndian.PutUint16(v2[0:], frameMagic)
	v2[2] = KindIndex
	v2[3] = 2 // v2 version byte
	binary.LittleEndian.PutUint32(v2[4:], 0x01020304)
	binary.LittleEndian.PutUint32(v2[8:], 5)
	binary.LittleEndian.PutUint16(v2[12:], uint16(len(payload)))
	binary.LittleEndian.PutUint16(v2[14:], 7)
	binary.LittleEndian.PutUint32(v2[16:], Checksum(payload))
	copy(v2[20:], payload)

	return map[string][]byte{"frame_v1": v1, "frame_v2": v2}
}

func goldenPath(name string) string { return filepath.Join("testdata", name+".hex") }

func writeGolden(t *testing.T, name string, raw []byte) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(hex.EncodeToString(raw)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	buf, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to generate): %v", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(buf)))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return raw
}

// TestConformanceGoldenV3 pins the current wire format: marshaling the
// canonical vectors must reproduce the golden bytes exactly, and reading
// the golden bytes back must yield the original headers and checksums.
func TestConformanceGoldenV3(t *testing.T) {
	for _, v := range conformanceVectors() {
		h := v.header
		h.CRC = Checksum(v.payload)
		raw, err := marshalFrame(h, v.payload)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if *updateGolden {
			writeGolden(t, v.name, raw)
			continue
		}
		want := readGolden(t, v.name)
		if !bytes.Equal(raw, want) {
			t.Errorf("%s: wire bytes diverged from the golden fixture\n got %x\nwant %x\n(an intentional format change must bump frameVersion and regenerate with -update-golden)",
				v.name, raw, want)
			continue
		}
		got, err := readHeader(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("%s: readHeader: %v", v.name, err)
		}
		if got != h {
			t.Errorf("%s: readHeader round-trip = %+v, want %+v", v.name, got, h)
		}
		if Checksum(want[headerSize:]) != got.CRC {
			t.Errorf("%s: golden payload fails its own checksum", v.name)
		}
	}
}

// TestConformanceRejectsLegacyVersions: frames of the retired v1/v2
// formats must be rejected by the version check — never misparsed into a
// plausible-looking v3 header.
func TestConformanceRejectsLegacyVersions(t *testing.T) {
	for name, raw := range legacyVectors() {
		if *updateGolden {
			writeGolden(t, name, raw)
			continue
		}
		want := readGolden(t, name)
		if !bytes.Equal(raw, want) {
			t.Fatalf("%s: reconstructed legacy frame diverged from its fixture\n got %x\nwant %x", name, raw, want)
		}
		if _, err := readHeader(bytes.NewReader(want)); err == nil || !strings.Contains(err.Error(), "frame version") {
			t.Errorf("%s: readHeader = %v, want a frame-version rejection", name, err)
		}
	}
}

// TestConformanceHeaderLayout pins every field offset of the v3 header by
// decoding the golden index frame by hand. A reordered or resized field
// fails here even if marshal and read move together.
func TestConformanceHeaderLayout(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating fixtures")
	}
	raw := readGolden(t, "frame_v3_index")
	if len(raw) != headerSize+16 {
		t.Fatalf("golden frame is %d bytes, want %d", len(raw), headerSize+16)
	}
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"magic @0", uint64(binary.LittleEndian.Uint16(raw[0:])), frameMagic},
		{"kind @2", uint64(raw[2]), KindIndex},
		{"version @3", uint64(raw[3]), frameVersion},
		{"slot @4", uint64(binary.LittleEndian.Uint32(raw[4:])), 0x01020304},
		{"seq @8", uint64(binary.LittleEndian.Uint32(raw[8:])), 5},
		{"payload_len @12", uint64(binary.LittleEndian.Uint16(raw[12:])), 16},
		{"next_index @14", uint64(binary.LittleEndian.Uint16(raw[14:])), 7},
		{"gen @16", uint64(binary.LittleEndian.Uint32(raw[16:])), 9},
		{"crc @20", uint64(binary.LittleEndian.Uint32(raw[20:])), uint64(Checksum(raw[headerSize:]))},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %#x, want %#x", c.name, c.got, c.want)
		}
	}
}

// TestConformanceVersionByteIsAuthoritative: a frame that claims any other
// version — including future ones — is rejected, so a future v4 rollout
// can rely on old clients failing fast instead of misdecoding.
func TestConformanceVersionByteIsAuthoritative(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating fixtures")
	}
	raw := readGolden(t, "frame_v3_index")
	for _, ver := range []byte{0, 1, 2, 4, 255} {
		frame := append([]byte(nil), raw...)
		frame[3] = ver
		if _, err := readHeader(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "frame version") {
			t.Errorf("version byte %d: readHeader = %v, want a frame-version rejection", ver, err)
		}
	}
}
