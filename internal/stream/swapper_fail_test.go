package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// freshProgramFor compiles a from-scratch program for the swapper's current
// live site set — the oracle every post-failure generation must match byte
// for byte.
func freshProgramFor(t *testing.T, sw *Swapper, capacity int) *Program {
	t.Helper()
	sw.mu.Lock()
	_, sites := sw.maint.LiveSites()
	sw.mu.Unlock()
	fresh, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatalf("fresh oracle build: %v", err)
	}
	return fresh.Program()
}

func sameIndexBytes(a, b *Program) error {
	if len(a.IndexPackets) != len(b.IndexPackets) {
		return fmt.Errorf("index packet count %d != %d", len(a.IndexPackets), len(b.IndexPackets))
	}
	for i := range a.IndexPackets {
		if !bytes.Equal(a.IndexPackets[i], b.IndexPackets[i]) {
			return fmt.Errorf("index packet %d differs", i)
		}
	}
	return nil
}

// TestApplyCutFailureRollsBackBatchState: a failed cut must not poison the
// swapper. The maintainer keeps the applied operations, but the compiler
// state and the dirty-batch window are rolled back, Pending() turns true,
// and the next Apply — here an empty one — recompiles from scratch and
// produces a program byte-identical to a cold build of the same site set.
// Before the rollback existed, the next batch inherited a compiler whose
// retained base no published generation ever had.
func TestApplyCutFailureRollsBackBatchState(t *testing.T) {
	const capacity = 256
	sites := testutil.RandomSites(testArea, 50, 5001)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A normal incremental cut first, so the compiler holds retained state.
	if _, _, err := sw.Apply([]SiteOp{{Kind: OpMove, ID: 3, P: geom.Pt(1234.5, 987.25)}}); err != nil {
		t.Fatal(err)
	}
	if sw.Pending() {
		t.Fatal("Pending() true after a successful cut")
	}

	// Inject a compile failure under a real mutation batch.
	injected := errors.New("injected cut failure")
	sw.comp.failNext = injected
	gen, ids, err := sw.Apply([]SiteOp{
		{Kind: OpAdd, P: geom.Pt(4000.125, 4000.75)},
		{Kind: OpMove, ID: 7, P: geom.Pt(8000.5, 1000.5)},
	})
	if !errors.Is(err, injected) {
		t.Fatalf("Apply returned %v, want the injected failure", err)
	}
	if gen != 2 {
		t.Fatalf("failed Apply reported generation %d, want the still-published 2", gen)
	}
	if len(ids) != 2 {
		t.Fatalf("failed Apply reported %d applied ops, want 2 (mutations stay)", len(ids))
	}
	if !sw.Pending() {
		t.Fatal("Pending() false after a failed cut")
	}
	// The rollback must have closed the dirty window and dropped the
	// compiler's retained generation state.
	if sw.comp.patch != nil || sw.comp.inc != nil || sw.comp.prog != nil {
		t.Fatal("compiler retained state survived the failed cut")
	}
	if d, r := sw.maint.BatchDelta(); len(d) != 0 || len(r) != 0 {
		t.Fatalf("dirty-batch window still open after failed cut: %d dirty, %d removed", len(d), len(r))
	}

	// An empty Apply finishes the cut: full rebuild, new generation, and
	// bytes identical to a cold build of the exact same live sites.
	gen, ids, err = sw.Apply(nil)
	if err != nil {
		t.Fatalf("republish Apply: %v", err)
	}
	if gen != 3 {
		t.Fatalf("republish generation = %d, want 3", gen)
	}
	if len(ids) != 0 {
		t.Fatalf("republish applied %d ops, want 0", len(ids))
	}
	if sw.Pending() {
		t.Fatal("Pending() still true after the republish")
	}
	if err := sameIndexBytes(sw.Current().Prog, freshProgramFor(t, sw, capacity)); err != nil {
		t.Fatalf("republished program is not byte-identical to a cold build: %v", err)
	}

	// Incremental cuts must work again on top of the recovered state.
	if _, _, err := sw.Apply([]SiteOp{
		{Kind: OpMove, ID: 11, P: geom.Pt(2500.25, 7500.75)},
		{Kind: OpRemove, ID: 19},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sameIndexBytes(sw.Current().Prog, freshProgramFor(t, sw, capacity)); err != nil {
		t.Fatalf("post-recovery incremental cut diverged from a cold build: %v", err)
	}
}

// TestApplyPublishFailureRecovery: the same rollback contract when the
// build succeeds but the publish fails (server already draining). The ops
// stay applied, Pending() turns true, and once a server is attachable
// again an empty Apply republishes a byte-exact program.
func TestApplyPublishFailureRecovery(t *testing.T) {
	const capacity = 256
	sites := testutil.RandomSites(testArea, 40, 5002)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, sw.Program())
	if err != nil {
		t.Fatal(err)
	}
	sw.Bind(srv)
	srv.Close() // publish target gone: the next Swap fails

	rng := rand.New(rand.NewSource(5003))
	_, ids, err := sw.Apply([]SiteOp{{Kind: OpAdd, P: geom.Pt(rng.Float64()*10000, rng.Float64()*10000)}})
	if !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Apply against a closed server returned %v, want ErrServerClosed", err)
	}
	if len(ids) != 1 {
		t.Fatalf("failed publish reported %d applied ops, want 1", len(ids))
	}
	if !sw.Pending() {
		t.Fatal("Pending() false after a failed publish")
	}

	// Detach and republish: the new generation must match a cold build.
	sw.Bind(nil)
	gen, _, err := sw.Apply(nil)
	if err != nil {
		t.Fatalf("republish Apply: %v", err)
	}
	if gen != 2 {
		t.Fatalf("republish generation = %d, want 2", gen)
	}
	if sw.Pending() {
		t.Fatal("Pending() still true after the republish")
	}
	if err := sameIndexBytes(sw.Current().Prog, freshProgramFor(t, sw, capacity)); err != nil {
		t.Fatalf("republished program is not byte-identical to a cold build: %v", err)
	}
}
