package stream

import (
	"math/rand"
	"net"
	"testing"

	"airindex/internal/channel"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// lossFixture is a broadcast program transmitted through a fault channel
// over an in-memory pipe, with its ground-truth subdivision.
type lossFixture struct {
	sub    *region.Subdivision
	prog   *Program
	client *Client
}

// newLossFixture starts a listener-less transmitter on one end of a
// net.Pipe and a client on the other.
func newLossFixture(t *testing.T, n, capacity, startSlot int, ch *channel.Channel) *lossFixture {
	t.Helper()
	sub, _ := testutil.RandomVoronoi(t, n, int64(n)*13+5)
	prog, err := NewDTreeProgram(sub, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	cliEnd, srvEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		prog.Transmit(srvEnd, startSlot, ch) //nolint:errcheck
	}()
	t.Cleanup(func() {
		cliEnd.Close()
		srvEnd.Close()
		<-done
	})
	return &lossFixture{sub: sub, prog: prog, client: NewClient(cliEnd, capacity)}
}

// query runs one query and asserts the full contract: correct bucket,
// checksum-verified payload, and latency equal to the span of frames the
// client actually observed (the regression guard for stale latency).
func (fx *lossFixture) query(t *testing.T, p geom.Point, capacity int) Result {
	t.Helper()
	res, err := fx.client.Query(p)
	if err != nil {
		t.Fatalf("query %v: %v", p, err)
	}
	if want := fx.sub.Locate(p); res.Bucket != want && !fx.sub.Regions[res.Bucket].Poly.Contains(p) {
		t.Fatalf("query %v: bucket %d, want %d", p, res.Bucket, want)
	}
	if err := VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
		t.Fatalf("query %v: %v", p, err)
	}
	if want := float64(res.LastSlot + 1 - res.FirstSlot); res.Latency != want {
		t.Fatalf("query %v: latency %v does not reflect the final frame observed (span %v)",
			p, res.Latency, want)
	}
	return res
}

// TestLossMatrix is the acceptance gate of the lossy-channel subsystem:
// under every fault model at rates up to 10%, every streamed query must
// still return the correct bucket with checksum-verified data.
func TestLossMatrix(t *testing.T) {
	const capacity, n = 512, 60
	type cell struct {
		name string
		spec channel.Spec
	}
	var cells []cell
	for i, rate := range []float64{0.02, 0.05, 0.10} {
		seed := int64(31 + 10*i)
		cells = append(cells,
			cell{"bernoulli", channel.Spec{Loss: rate, Seed: seed}},
			cell{"gilbert-elliott", channel.Spec{Loss: rate, Burst: 4, Seed: seed + 1}},
			cell{"corruption", channel.Spec{Corrupt: rate, Seed: seed + 2}},
		)
	}
	for _, c := range cells {
		stats := &channel.Stats{}
		ch := channel.New(c.spec.Model(c.spec.Seed+1), c.spec.Seed+2, stats)
		fx := newLossFixture(t, n, capacity, 17, ch)
		rng := rand.New(rand.NewSource(404))
		var recoveries, lost, corrupt int
		for q := 0; q < 12; q++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			res := fx.query(t, p, capacity)
			recoveries += res.Recoveries
			lost += res.LostSlots
			corrupt += res.CorruptFrames
		}
		snap := stats.Snapshot()
		if c.name == "corruption" {
			if snap.Corrupted == 0 {
				t.Errorf("%s %+v: channel corrupted nothing (%v)", c.name, c.spec, snap)
			}
		} else if snap.Dropped == 0 || lost == 0 {
			t.Errorf("%s %+v: channel dropped %d, client observed %d lost slots",
				c.name, c.spec, snap.Dropped, lost)
		}
		t.Logf("%s loss=%.2f corrupt=%.2f: %v; recoveries %d, lost slots %d, corrupt frames %d",
			c.name, c.spec.Loss, c.spec.Corrupt, snap, recoveries, lost, corrupt)
	}
}

// scriptModel assigns scripted faults to frame ordinals (counted from the
// start of transmission); unlisted frames are delivered.
type scriptModel struct {
	n      int
	faults map[int]channel.Fault
}

func (s *scriptModel) Name() string { return "script" }
func (s *scriptModel) Next() channel.Fault {
	f := s.faults[s.n]
	s.n++
	return f
}

// scriptBucketFaults scripts a fault on the given packet of one bucket's
// occurrence in each of the first `cycles` broadcast cycles.
func scriptBucketFaults(prog *Program, startSlot, bucket, pkt, cycles int, f channel.Fault) *scriptModel {
	sched := prog.Sched
	first := sched.NextBucketStart(bucket, float64(startSlot))
	faults := map[int]channel.Fault{}
	for k := 0; k < cycles; k++ {
		faults[first+k*sched.CycleLen()+pkt-startSlot] = f
	}
	return &scriptModel{faults: faults}
}

// anyPoint picks a seeded query point and its ground-truth bucket.
func (fx *lossFixture) anyPoint(seed int64) (geom.Point, int) {
	rng := rand.New(rand.NewSource(seed))
	p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	return p, fx.sub.Locate(p)
}

// TestClientRecoversFromScriptedDataLoss drops the second packet of the
// queried bucket for several consecutive cycles: the client must discard
// the broken runs, retry on later cycles, and deliver intact data with the
// retries reflected in latency and recovery counters. The pre-recovery
// client failed outright on the first broken run.
func TestClientRecoversFromScriptedDataLoss(t *testing.T) {
	const capacity, n, start = 512, 40, 5
	// Build the fixture once without faults to learn the program layout,
	// then rebuild the channel with the scripted drops.
	base := newLossFixture(t, n, capacity, start, nil)
	p, bucket := base.anyPoint(777)
	if bp := wire.DTreeParams(capacity).DataBucketPackets(); bp != 2 {
		t.Fatalf("fixture expects 2-packet buckets, got %d", bp)
	}
	model := scriptBucketFaults(base.prog, start, bucket, 1, 3, channel.Drop)
	ch := channel.New(model, 9, nil)
	fx := newLossFixture(t, n, capacity, start, ch)

	res := fx.query(t, p, capacity)
	if res.Recoveries == 0 {
		t.Errorf("no recoveries recorded: %+v", res)
	}
	if res.LostSlots == 0 {
		t.Errorf("no lost slots observed: %+v", res)
	}
	if res.Latency <= float64(fx.prog.Sched.CycleLen()) {
		t.Errorf("latency %v does not include the retry cycles (cycle %d)",
			res.Latency, fx.prog.Sched.CycleLen())
	}
	if res.TuneRecover == 0 {
		t.Errorf("recovery cost no tuning: %+v", res)
	}
}

// TestClientRecoversFromScriptedCorruption corrupts the first packet of
// the queried bucket for several cycles: the checksum must expose every
// damaged download and the client must retry until a clean copy arrives.
func TestClientRecoversFromScriptedCorruption(t *testing.T) {
	const capacity, n, start = 512, 40, 5
	base := newLossFixture(t, n, capacity, start, nil)
	p, bucket := base.anyPoint(778)
	model := scriptBucketFaults(base.prog, start, bucket, 0, 3, channel.Corrupt)
	ch := channel.New(model, 9, nil)
	fx := newLossFixture(t, n, capacity, start, ch)

	res := fx.query(t, p, capacity)
	if res.CorruptFrames == 0 {
		t.Errorf("checksum caught no corruption: %+v", res)
	}
	if res.Recoveries == 0 || res.TuneRecover == 0 {
		t.Errorf("corruption recovery not accounted: %+v", res)
	}
	if res.Latency <= float64(fx.prog.Sched.CycleLen()) {
		t.Errorf("latency %v does not include the retry cycles", res.Latency)
	}
}

// TestLatencyReflectsFinalFrame is the regression test for the latency
// accounting fix: on a perfect channel the reported latency must equal the
// span from the initial probe to the final frame observed — previously it
// could go stale when bucket retrieval dozed past the end of the bucket.
func TestLatencyReflectsFinalFrame(t *testing.T) {
	const capacity, n = 256, 50
	fx := newLossFixture(t, n, capacity, 3, nil)
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 20; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		res := fx.query(t, p, capacity) // asserts Latency == LastSlot+1-FirstSlot
		if res.Recoveries != 0 || res.LostSlots != 0 || res.CorruptFrames != 0 {
			t.Fatalf("perfect channel reported faults: %+v", res)
		}
		if res.TuneRecover != 0 {
			t.Fatalf("perfect channel charged recovery tuning: %+v", res)
		}
	}
}

// TestServerChannelFactory runs the full TCP server with a per-connection
// fault factory and two concurrent clients — the race-detector path for
// the fault middleware on the concurrent transmit path.
func TestServerChannelFactory(t *testing.T) {
	const capacity = 256
	sub, _ := testutil.RandomVoronoi(t, 40, 40*13+5)
	prog, err := NewDTreeProgram(sub, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, prog)
	if err != nil {
		t.Fatal(err)
	}
	stats := &channel.Stats{}
	srv.Channel = channel.Spec{Loss: 0.05, Burst: 3, Corrupt: 0.01, Seed: 77}.Factory(stats)
	srv.StartSlot = func() int { return 0 }
	go srv.Serve() //nolint:errcheck
	defer srv.Close()

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			client, err := Dial(srv.Addr().String(), capacity)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 8; q++ {
				p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				res, err := client.Query(p)
				if err != nil {
					errs <- err
					return
				}
				if err := VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(int64(i + 1))
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if snap := stats.Snapshot(); snap.Dropped == 0 {
		t.Errorf("factory channels dropped nothing: %v", snap)
	}
}
