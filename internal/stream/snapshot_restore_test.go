package stream

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// sameRendered compares two rendered cycles frame by frame — header bytes
// (slot template, pointers, CRC) and payload bytes both.
func sameRendered(t *testing.T, a, b *renderedCycle) {
	t.Helper()
	if a.cycleLen() != b.cycleLen() || a.frameSize != b.frameSize {
		t.Fatalf("cycle geometry differs: %d slots x %d B vs %d slots x %d B",
			a.cycleLen(), a.frameSize, b.cycleLen(), b.frameSize)
	}
	for s := range a.frames {
		if a.frames[s].hdr != b.frames[s].hdr {
			t.Fatalf("slot %d: headers differ", s)
		}
		if !bytes.Equal(a.frames[s].payload, b.frames[s].payload) {
			t.Fatalf("slot %d: payloads differ", s)
		}
	}
}

// TestSnapshotRestoreByteIdenticalCycle pins the restart contract: a
// program restored from a flat-arena snapshot (in memory and through a
// file) puts the exact bytes of the original compile on the air, so a
// broadcastd restart via -snapshot is invisible to listening clients.
func TestSnapshotRestoreByteIdenticalCycle(t *testing.T) {
	const capacity = 256
	sub, _ := testutil.RandomVoronoi(t, 90, 9301)
	prog, fp, err := CompileDTree(sub, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Rendered()
	if err != nil {
		t.Fatal(err)
	}

	restored, rfp, err := ProgramFromSnapshot(fp.Snapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rfp.Flat.N != fp.Flat.N {
		t.Fatalf("restored %d regions, want %d", rfp.Flat.N, fp.Flat.N)
	}
	got, err := restored.Rendered()
	if err != nil {
		t.Fatal(err)
	}
	sameRendered(t, want, got)

	path := filepath.Join(t.TempDir(), "index.dtsnap")
	if err := fp.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := ProgramFromSnapshotFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotFile, err := fromFile.Rendered()
	if err != nil {
		t.Fatal(err)
	}
	sameRendered(t, want, gotFile)
}

// TestSwapperGenerationsFlatMatchesPointer drives the swapper through a
// run of churn batches and checks, for every published generation, that
// the arena the generation serves from agrees bit-for-bit with a pointer
// D-tree rebuilt from the same ground truth: same bucket, same
// early-termination packet trace. Queries run concurrently with the next
// Apply so the race detector sees the serving pattern.
func TestSwapperGenerationsFlatMatchesPointer(t *testing.T) {
	const capacity = 256
	sites := testutil.RandomSites(testArea, 50, 9310)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}

	batches := [][]SiteOp{
		{{Kind: OpAdd, P: geom.Pt(5012.5, 4987.25)}, {Kind: OpAdd, P: geom.Pt(123.75, 9876.5)}},
		{{Kind: OpRemove, ID: 7}, {Kind: OpMove, ID: 11, P: geom.Pt(7300.125, 2211.875)}},
		{{Kind: OpAdd, P: geom.Pt(9120.0, 881.5)}, {Kind: OpRemove, ID: 3}, {Kind: OpMove, ID: 20, P: geom.Pt(444.25, 6712.0)}},
	}

	verify := func(g *Generation, seed int64) {
		tree, err := core.Build(g.Sub)
		if err != nil {
			t.Error(err)
			return
		}
		paged, err := tree.Page(wire.DTreeParams(capacity))
		if err != nil {
			t.Error(err)
			return
		}
		var trace []int
		for _, p := range testutil.QueryPoints(testArea, 60, seed) {
			wantID, wantTrace := paged.Locate(p)
			var gotID int
			gotID, trace = g.Flat.LocateInto(p, trace[:0])
			if gotID != wantID {
				t.Errorf("generation %d: flat bucket %d, pointer %d at %v", g.Gen, gotID, wantID, p)
				return
			}
			if len(trace) != len(wantTrace) {
				t.Errorf("generation %d: flat trace %v, pointer %v at %v", g.Gen, trace, wantTrace, p)
				return
			}
			for i := range trace {
				if trace[i] != wantTrace[i] {
					t.Errorf("generation %d: flat trace %v, pointer %v at %v", g.Gen, trace, wantTrace, p)
					return
				}
			}
		}
	}

	var wg sync.WaitGroup
	for i, ops := range batches {
		// Query the current generation's arena while the next batch builds:
		// exactly the server's read pattern during an off-path rebuild.
		g := sw.Current()
		wg.Add(1)
		go func(g *Generation, seed int64) {
			defer wg.Done()
			verify(g, seed)
		}(g, int64(9320+i))
		if _, _, err := sw.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	verify(sw.Current(), 9399)

	// Every remembered generation still verifies after the churn run — the
	// swapper keeps superseded ground truth for late answer verification.
	for gen := uint32(1); gen <= sw.Current().Gen; gen++ {
		g := sw.Generation(gen)
		if g == nil {
			t.Fatalf("generation %d forgotten", gen)
		}
		verify(g, int64(9400+gen))
	}
}
