package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/obs"
	"airindex/internal/wire"
)

// Client consumes a live broadcast stream and answers location-dependent
// queries with the paper's access protocol. "Dozing" over a byte stream
// means reading a frame's header and discarding its payload unparsed; the
// tuning counters track only fully parsed (downloaded) packets, mirroring
// the paper's energy model.
//
// The client survives unreliable channels: corruption is detected by the
// frame checksum, loss by gaps in the strictly-increasing slot numbers,
// and both are recovered by the paper's own mechanism — re-probe, jump to
// the next index copy via the NextIndex pointer every frame carries, and
// retry bucket retrieval on the next cycle — counting the extra tuning and
// latency instead of failing.
type Client struct {
	r        *bufio.Reader
	conn     net.Conn // nil when constructed over a plain reader
	capacity int

	// Metrics, when set, accumulates per-query latency/tuning distributions
	// and recovery counters; one set may be shared across clients. Traces,
	// when set, receives one Probe→Answer trace per completed query. Both
	// must be assigned before the first Query and are optional.
	Metrics *ClientMetrics
	Traces  *obs.TraceLog

	cur     Header // last frame's header
	started bool
	steps   []obs.TraceStep // current query's trace, reused across queries

	// Epoch pinning: a query pins the generation it probed and every
	// subsequent frame must match, so a hot program swap is detected the
	// moment the first new-generation frame is observed — before any stale
	// index pointer can be dereferenced into a wrong answer.
	expectGen uint32
	genPinned bool

	// idxBase is the absolute slot of the index-copy start the pinned
	// session is consuming, established by Probe and advanced by the
	// recovery logic whenever an offset has flown past or been lost.
	idxBase int

	// Per-query decode scratch, reused across queries: the byte decoder's
	// trace/seen/read buffers and the parsed-packet cache.
	loc      core.ClientLocator
	idxCache map[int][]byte
}

// Attempt bounds: how many index copies (resp. broadcast cycles) a query
// may burn recovering one index packet (resp. its data bucket) before the
// channel is declared hopeless. At 10% loss a retry fails with probability
// well under 1/2, so 16 attempts leave a vanishing residual.
// maxEpochRestarts separately bounds how many whole-query restarts a
// reconfiguring broadcast may force before the client gives up; each swap
// bumps the generation once, so hitting the bound means the server is
// swapping faster than a query completes.
const (
	maxIndexAttempts  = 16
	maxBucketAttempts = 16
	maxEpochRestarts  = 8
)

// maxTraceSteps bounds one query's trace so a pathological channel cannot
// grow it without limit; the summary counters in the trace stay exact.
const maxTraceSteps = 128

// step appends one trace event for the current query; a no-op unless the
// client has a trace log attached.
func (c *Client) step(kind string, slot, info int) {
	if c.Traces == nil || len(c.steps) >= maxTraceSteps {
		return
	}
	c.steps = append(c.steps, obs.TraceStep{Kind: kind, Slot: slot, Info: info})
}

// finish folds a completed (or failed) query into the attached metrics and
// trace log.
func (c *Client) finish(p geom.Point, res *Result, err error) {
	if c.Metrics != nil {
		if err != nil {
			c.Metrics.QueryErrors.Inc()
		} else {
			c.Metrics.observe(res)
		}
	}
	if c.Traces != nil {
		tr := obs.QueryTrace{
			X: p.X, Y: p.Y,
			Bucket:        res.Bucket,
			Generation:    res.Generation,
			Latency:       res.Latency,
			Tuning:        res.TotalTuning(),
			EpochRestarts: res.EpochRestarts,
			Recoveries:    res.Recoveries,
			Steps:         append([]obs.TraceStep(nil), c.steps...),
		}
		if err != nil {
			tr.Err = err.Error()
		}
		c.Traces.Record(tr)
	}
}

// ErrStaleGeneration reports that a frame from a different broadcast
// generation arrived while a query had its epoch pinned: the index layout
// and bucket numbering the query accumulated belong to a dead program.
// Query handles it internally (epoch restarts); callers driving the
// protocol by hand through Probe/FetchIndexPackets must re-probe when they
// see it.
var ErrStaleGeneration = errors.New("stream: broadcast generation changed mid-query")

// Result is the outcome of one streamed query.
type Result struct {
	Bucket  int
	Data    []byte
	Latency float64 // slots from query issue to the final frame observed

	TuneProbe   int
	TuneIndex   int
	TuneData    int
	TuneRecover int // active-radio slots wasted on loss/corruption recovery
	DozedFrames int // frames skimmed (header only) while waiting

	LostSlots     int // slot-number gaps observed (frames the channel dropped)
	CorruptFrames int // downloaded frames whose payload failed the checksum
	Recoveries    int // recovery actions: index-copy resyncs + bucket retries + epoch restarts

	Generation    uint32 // broadcast generation the answer was resolved against
	EpochRestarts int    // whole-query restarts forced by mid-query program swaps

	FirstSlot int // absolute slot of the initial probe
	LastSlot  int // absolute slot of the final frame observed
}

// TotalTuning returns the active-radio packet count across protocol steps,
// including slots burned on recovery.
func (r Result) TotalTuning() int { return r.TuneProbe + r.TuneIndex + r.TuneData + r.TuneRecover }

// Dial connects to a broadcast server over TCP.
func Dial(addr string, capacity int) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, capacity)
	c.conn = conn
	return c, nil
}

// NewClient wraps any frame stream (e.g. one end of net.Pipe in tests).
func NewClient(r io.Reader, capacity int) *Client {
	return &Client{r: bufio.NewReaderSize(r, 64<<10), capacity: capacity}
}

// Close closes the underlying connection, if any.
func (c *Client) Close() error {
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

// advance reads one frame; parseIf decides — from the header alone, as a
// real receiver must — whether to download the payload or doze through it.
// The payload is nil when dozed; corrupt reports a downloaded payload that
// failed the checksum (the payload is withheld, the header — which the
// channel never damages — is still returned). Slot gaps left by dropped
// frames are tallied into res.LostSlots.
func (c *Client) advance(res *Result, parseIf func(Header) bool) (Header, []byte, bool, error) {
	h, err := readHeader(c.r)
	if err != nil {
		return Header{}, nil, false, err
	}
	if int(h.PayloadLen) != c.capacity {
		return Header{}, nil, false, fmt.Errorf("stream: frame payload %d, expected capacity %d", h.PayloadLen, c.capacity)
	}
	if c.started && h.Slot > c.cur.Slot+1 && res != nil {
		res.LostSlots += int(h.Slot - c.cur.Slot - 1)
	}
	c.cur, c.started = h, true
	if res != nil {
		res.LastSlot = int(h.Slot)
	}
	if c.genPinned && h.Gen != c.expectGen {
		// The broadcast was hot-swapped under the query. Discard the
		// payload so the stream stays frame-aligned, count the skim, and
		// surface the epoch change instead of letting the caller decode a
		// frame of a program it holds no valid pointers into.
		if _, err := c.r.Discard(int(h.PayloadLen)); err != nil {
			return Header{}, nil, false, err
		}
		if res != nil {
			res.DozedFrames++
		}
		return h, nil, false, ErrStaleGeneration
	}
	if !parseIf(h) {
		if _, err := c.r.Discard(int(h.PayloadLen)); err != nil {
			return Header{}, nil, false, err
		}
		return h, nil, false, nil
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return Header{}, nil, false, err
	}
	if Checksum(payload) != h.CRC {
		if res != nil {
			res.CorruptFrames++
		}
		return h, nil, true, nil
	}
	return h, payload, false, nil
}

func parseAlways(Header) bool { return true }

// seek dozes until the frame at the given absolute slot arrives and parses
// it. Under loss the target frame may never arrive: the first header at a
// later slot reveals the miss; that frame is dozed (not downloaded) and
// returned with ok=false so the caller can resync off its NextIndex
// pointer. The slot the radio was awake for with nothing decodable to show
// is charged to TuneRecover.
func (c *Client) seek(target int, res *Result) (Header, []byte, bool, bool, error) {
	for {
		h, payload, corrupt, err := c.advance(res, func(h Header) bool { return int(h.Slot) == target })
		if err != nil {
			return Header{}, nil, false, false, err
		}
		if int(h.Slot) < target {
			res.DozedFrames++
			continue
		}
		if int(h.Slot) > target {
			res.DozedFrames++
			res.TuneRecover++
			return h, nil, false, false, nil
		}
		return h, payload, corrupt, true, nil
	}
}

// Query resolves the data instance for point p from the live stream. When
// a hot program swap lands mid-query, the query abandons every stale index
// pointer, backs off briefly, and re-issues itself against the new
// generation — up to maxEpochRestarts times — accumulating the wasted
// tuning and latency into the same Result rather than ever returning an
// answer resolved against a dead program.
func (c *Client) Query(p geom.Point) (Result, error) {
	var res Result
	err := c.queryLoop(p, &res, 0, false)
	return res, err
}

// QueryShifted is Query against a program whose every index copy begins
// with skip foreign packets (the fabric's channel directory): the D-tree
// root sits at offset skip, and every tree offset is shifted by skip on the
// wire. Counters accumulate into *res — a fabric client carries partial
// accounting from the entry channel into the shard query.
func (c *Client) QueryShifted(p geom.Point, skip int, res *Result) error {
	return c.queryLoop(p, res, skip, false)
}

// QueryResume is QueryShifted continuing the session pinned by an earlier
// Probe on this client, without a fresh probe: the caller has just read the
// directory prefix of the current index copy, and the tree descent starts
// right behind it in the same copy. A mid-resume swap falls back to a full
// re-probe (epoch restart), exactly like Query.
func (c *Client) QueryResume(p geom.Point, skip int, res *Result) error {
	return c.queryLoop(p, res, skip, true)
}

// queryLoop wraps queryOnce in the epoch-restart loop shared by every
// query entry point.
func (c *Client) queryLoop(p geom.Point, res *Result, skip int, resume bool) error {
	if !resume {
		c.genPinned = false
		c.steps = c.steps[:0]
	}
	for restart := 0; ; restart++ {
		err := c.queryOnce(p, res, restart, skip, resume && restart == 0)
		if err == nil {
			c.finish(p, res, nil)
			return nil
		}
		if !errors.Is(err, ErrStaleGeneration) {
			c.finish(p, res, err)
			return err
		}
		// Epoch restart: the accumulated index cache, bucket id, and any
		// partial download describe the old program. The radio was awake
		// when the revealing frame arrived, so the slot is charged to
		// recovery; latency keeps running from the original probe.
		c.genPinned = false
		res.EpochRestarts++
		res.Recoveries++
		res.TuneRecover++
		res.Data = res.Data[:0]
		c.step(obs.StepRestart, res.LastSlot, res.EpochRestarts)
		if res.EpochRestarts >= maxEpochRestarts {
			err := fmt.Errorf("stream: query abandoned after %d epoch restarts (broadcast reconfiguring faster than queries complete)", maxEpochRestarts)
			c.finish(p, res, err)
			return err
		}
	}
}

// Probe parses the next frame to pin the broadcast generation this session
// resolves against and to position the client at the upcoming index copy.
// Only the header matters, so a corrupt payload does not hurt — the energy
// was spent either way. Exported for the fabric client, which reads the
// channel directory by hand between Probe and the tree descent.
func (c *Client) Probe(res *Result) error {
	c.genPinned = false
	if res.TuneProbe == 0 {
		// A brand-new accounting session starts a fresh trace; re-probes
		// within a session (epoch restarts, hops sharing the Result) append.
		c.steps = c.steps[:0]
	}
	probe, _, _, err := c.advance(res, parseAlways)
	if err != nil {
		return err
	}
	c.expectGen, c.genPinned = probe.Gen, true
	res.Generation = probe.Gen
	res.TuneProbe++
	if res.TuneProbe == 1 {
		res.FirstSlot = int(probe.Slot)
	}
	c.step(obs.StepProbe, int(probe.Slot), int(probe.NextIndex))
	c.idxBase = int(probe.Slot) + int(probe.NextIndex)
	return nil
}

// fetchIndexPacket downloads index-copy offset off from the pinned session
// with the paper's recovery discipline: an offset that has already flown by
// — or that the channel ate — is fetched from the next index copy, which
// every frame points to.
func (c *Client) fetchIndexPacket(res *Result, off int) ([]byte, error) {
	for attempt := 0; attempt < maxIndexAttempts; attempt++ {
		target := c.idxBase + off
		if int(c.cur.Slot) >= target {
			// Passed: jump to the copy after the current frame.
			c.idxBase = int(c.cur.Slot) + int(c.cur.NextIndex)
			target = c.idxBase + off
		}
		h, payload, corrupt, ok, err := c.seek(target, res)
		if err != nil {
			return nil, err
		}
		if !ok {
			// The target frame was dropped on the air: resync at the
			// next index copy the later frame points to.
			res.Recoveries++
			c.step(obs.StepRecover, int(h.Slot), res.Recoveries)
			c.idxBase = int(h.Slot) + int(h.NextIndex)
			continue
		}
		if corrupt || h.Kind != KindIndex || int(h.Seq) != off {
			// Downloaded but unusable — bit corruption, or a copy
			// shorter than off packets (corrupt offset arithmetic).
			// Pay the wasted download and resync at the next copy.
			res.TuneRecover++
			res.Recoveries++
			c.step(obs.StepRecover, int(h.Slot), res.Recoveries)
			c.idxBase = int(h.Slot) + int(h.NextIndex)
			continue
		}
		res.TuneIndex++
		c.step(obs.StepIndex, int(h.Slot), off)
		return payload, nil
	}
	return nil, fmt.Errorf("stream: index packet %d unreachable after %d attempts", off, maxIndexAttempts)
}

// FetchIndexPackets downloads index-copy offsets [lo, hi) in order from the
// session pinned by a preceding Probe, with the standard loss recovery. A
// hot swap surfaces as ErrStaleGeneration; the caller must then re-Probe.
func (c *Client) FetchIndexPackets(res *Result, lo, hi int) ([][]byte, error) {
	if !c.genPinned {
		return nil, fmt.Errorf("stream: FetchIndexPackets without a preceding Probe")
	}
	out := make([][]byte, 0, hi-lo)
	for off := lo; off < hi; off++ {
		pkt, err := c.fetchIndexPacket(res, off)
		if err != nil {
			return nil, err
		}
		out = append(out, pkt)
	}
	return out, nil
}

// queryOnce runs one full access-protocol pass (probe, index search, bucket
// download) against a single pinned generation, accumulating counters into
// res. It returns ErrStaleGeneration the moment any frame reveals a swap.
// The first skip packets of every index copy are skipped as foreign (the
// fabric's channel directory); resume continues an already-probed session
// instead of issuing a fresh probe.
func (c *Client) queryOnce(p geom.Point, res *Result, restart, skip int, resume bool) error {
	if !resume {
		// Backoff after an epoch restart: doze restart frames before
		// re-probing, so consecutive restarts spread out instead of hammering
		// the stream the instant each new generation appears.
		for i := 0; i < restart; i++ {
			if _, _, _, err := c.advance(res, func(Header) bool { return false }); err != nil {
				return err
			}
			res.DozedFrames++
		}
		if err := c.Probe(res); err != nil {
			return err
		}
	}

	bucket, err := c.LocateShifted(p, skip, res)
	if err != nil {
		return err
	}
	res.Bucket = bucket
	return c.fetchBucket(bucket, res)
}

// LocateShifted runs the index-search phase only — the D-tree descent for p
// over the live stream, with the first skip packets of every index copy
// treated as foreign — returning the located data bucket without
// downloading it. The session must be pinned by a preceding Probe; a hot
// swap surfaces as ErrStaleGeneration. Continuous clients use it to
// re-descend after a boundary crossing without re-downloading answer
// buckets they already hold.
func (c *Client) LocateShifted(p geom.Point, skip int, res *Result) (int, error) {
	if !c.genPinned {
		return 0, fmt.Errorf("stream: LocateShifted without a preceding Probe")
	}
	// Feed the D-tree byte decoder from the live stream. The provider
	// caches parsed packets (client memory); the cache and the decoder
	// scratch live on the client, reused across queries.
	if c.idxCache == nil {
		c.idxCache = make(map[int][]byte, 8)
	} else {
		clear(c.idxCache)
	}
	get := func(k int) ([]byte, error) {
		if pkt, ok := c.idxCache[k]; ok {
			return pkt, nil
		}
		payload, err := c.fetchIndexPacket(res, skip+k)
		if err != nil {
			return nil, err
		}
		c.idxCache[k] = payload
		return payload, nil
	}
	bucket, _, err := c.loc.Locate(get, c.capacity, p)
	return bucket, err
}

// FetchBucket downloads one data bucket from the pinned session with the
// standard loss recovery, returning its payload as a fresh slice (res.Data
// is used as scratch and holds the same bytes on success).
func (c *Client) FetchBucket(bucket int, res *Result) ([]byte, error) {
	if !c.genPinned {
		return nil, fmt.Errorf("stream: FetchBucket without a preceding Probe")
	}
	res.Data = res.Data[:0]
	if err := c.fetchBucket(bucket, res); err != nil {
		return nil, err
	}
	return append([]byte(nil), res.Data...), nil
}

// fetchBucket is the data-retrieval phase: doze until the bucket's first
// packet, download the contiguous bucket into res.Data. The packets-per-
// bucket count follows from the capacity (the data instance size is a
// system parameter, Table 2), so the client knows when the bucket is
// complete; an incomplete or damaged run is discarded and retried on the
// next cycle.
func (c *Client) fetchBucket(bucket int, res *Result) error {
	expect := wire.DTreeParams(c.capacity).DataBucketPackets()
	collected, attempts := 0, 0
	wants := func(h Header) bool {
		return h.Kind == KindData && h.Bucket() == bucket &&
			(collected > 0 || h.BucketPacket() == 0)
	}
	// retry discards a broken run and waits for the bucket to come around
	// again; it reports whether the attempt budget allows another pass.
	retry := func() bool {
		collected = 0
		res.Data = res.Data[:0]
		res.Recoveries++
		c.step(obs.StepRecover, res.LastSlot, res.Recoveries)
		attempts++
		return attempts < maxBucketAttempts
	}
	for {
		h, payload, corrupt, err := c.advance(res, wants)
		if err != nil {
			return err
		}
		if payload == nil && !corrupt {
			res.DozedFrames++
			if collected > 0 {
				// A foreign frame interrupted the bucket's contiguous
				// run: the remaining packets were lost on the air. The
				// radio was awake expecting them.
				res.TuneRecover++
				if !retry() {
					break
				}
			}
			continue
		}
		if corrupt {
			res.TuneRecover++
			if !retry() {
				break
			}
			continue
		}
		if collected > 0 && h.BucketPacket() != collected {
			// A gap inside the run (a dropped packet of our own bucket).
			res.TuneRecover++
			if !retry() {
				break
			}
			if h.BucketPacket() == 0 {
				// The mismatch was the bucket starting over (a whole cycle
				// of losses): the downloaded packet begins a fresh run.
				res.TuneData++
				c.step(obs.StepData, int(h.Slot), 0)
				res.Data = append(res.Data, payload...)
				collected = 1
			}
			continue
		}
		res.TuneData++
		c.step(obs.StepData, int(h.Slot), h.BucketPacket())
		res.Data = append(res.Data, payload...)
		collected++
		if collected == expect {
			res.Latency = float64(int(h.Slot) + 1 - res.FirstSlot)
			c.step(obs.StepAnswer, int(h.Slot), bucket)
			return nil
		}
	}
	return fmt.Errorf("stream: bucket %d not retrieved intact after %d attempts", bucket, maxBucketAttempts)
}
