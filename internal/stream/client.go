package stream

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"airindex/internal/core"
	"airindex/internal/geom"
)

// Client consumes a live broadcast stream and answers location-dependent
// queries with the paper's access protocol. "Dozing" over a byte stream
// means reading a frame's header and discarding its payload unparsed; the
// tuning counters track only fully parsed (downloaded) packets, mirroring
// the paper's energy model.
type Client struct {
	r        *bufio.Reader
	conn     net.Conn // nil when constructed over a plain reader
	capacity int

	cur     Header // last frame's header
	started bool
}

// Result is the outcome of one streamed query.
type Result struct {
	Bucket      int
	Data        []byte
	Latency     float64 // slots from query issue to the last data packet
	TuneProbe   int
	TuneIndex   int
	TuneData    int
	DozedFrames int // frames skimmed (header only) while waiting
}

// TotalTuning returns the parsed-packet count across protocol steps.
func (r Result) TotalTuning() int { return r.TuneProbe + r.TuneIndex + r.TuneData }

// Dial connects to a broadcast server over TCP.
func Dial(addr string, capacity int) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, capacity)
	c.conn = conn
	return c, nil
}

// NewClient wraps any frame stream (e.g. one end of net.Pipe in tests).
func NewClient(r io.Reader, capacity int) *Client {
	return &Client{r: bufio.NewReaderSize(r, 64<<10), capacity: capacity}
}

// Close closes the underlying connection, if any.
func (c *Client) Close() error {
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

// advance reads one frame; parseIf decides — from the header alone, as a
// real receiver must — whether to download the payload or doze through it.
// The payload is nil when dozed.
func (c *Client) advance(parseIf func(Header) bool) (Header, []byte, error) {
	h, err := readHeader(c.r)
	if err != nil {
		return Header{}, nil, err
	}
	if int(h.PayloadLen) != c.capacity {
		return Header{}, nil, fmt.Errorf("stream: frame payload %d, expected capacity %d", h.PayloadLen, c.capacity)
	}
	c.cur, c.started = h, true
	if !parseIf(h) {
		if _, err := c.r.Discard(int(h.PayloadLen)); err != nil {
			return Header{}, nil, err
		}
		return h, nil, nil
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return Header{}, nil, err
	}
	return h, payload, nil
}

func parseAlways(Header) bool { return true }
func parseNever(Header) bool  { return false }

// dozeUntilBefore skims frames until the next frame to arrive carries the
// given absolute slot. It fails if the stream is already past it.
func (c *Client) dozeUntilBefore(target int, res *Result) error {
	if !c.started {
		return fmt.Errorf("stream: dozing before the first probe")
	}
	for int(c.cur.Slot)+1 < target {
		if _, _, err := c.advance(parseNever); err != nil {
			return err
		}
		res.DozedFrames++
	}
	if int(c.cur.Slot)+1 != target {
		return fmt.Errorf("stream: at slot %d, cannot reach past slot %d", c.cur.Slot, target)
	}
	return nil
}

// Query resolves the data instance for point p from the live stream.
func (c *Client) Query(p geom.Point) (Result, error) {
	var res Result

	// Initial probe: parse the next frame to learn where the next index
	// copy starts.
	probe, _, err := c.advance(parseAlways)
	if err != nil {
		return res, err
	}
	res.TuneProbe = 1
	first := int(probe.Slot)
	idxBase := first + int(probe.NextIndex)

	// Index search: feed the D-tree byte decoder from the live stream. The
	// provider caches parsed packets (client memory); an offset that has
	// already flown by is fetched from the next index copy.
	cache := map[int][]byte{}
	get := func(k int) ([]byte, error) {
		if pkt, ok := cache[k]; ok {
			return pkt, nil
		}
		for attempt := 0; attempt < 4; attempt++ {
			target := idxBase + k
			if int(c.cur.Slot) >= target {
				// Passed: jump to the copy after the current frame.
				idxBase = int(c.cur.Slot) + int(c.cur.NextIndex)
				target = idxBase + k
			}
			if err := c.dozeUntilBefore(target, &res); err != nil {
				return nil, err
			}
			h, payload, err := c.advance(parseAlways)
			if err != nil {
				return nil, err
			}
			if h.Kind != KindIndex || int(h.Seq) != k {
				// The copy was shorter than k packets (corrupt offset);
				// resync at the next copy and retry.
				idxBase = int(h.Slot) + int(h.NextIndex)
				continue
			}
			res.TuneIndex++
			cache[k] = payload
			return payload, nil
		}
		return nil, fmt.Errorf("stream: index packet %d unreachable", k)
	}
	bucket, _, err := core.ClientLocateFrom(get, c.capacity, p)
	if err != nil {
		return res, err
	}
	res.Bucket = bucket

	// Data retrieval: doze until the bucket's first packet, download the
	// contiguous bucket, and stop at the first foreign frame.
	collected := 0
	wants := func(h Header) bool {
		return h.Kind == KindData && h.Bucket() == bucket &&
			(collected > 0 || h.BucketPacket() == 0)
	}
	for {
		h, payload, err := c.advance(wants)
		if err != nil {
			return res, err
		}
		if payload == nil {
			res.DozedFrames++
			if collected > 0 {
				break // the bucket's contiguous run ended
			}
			continue
		}
		if collected > 0 && h.BucketPacket() != collected {
			return res, fmt.Errorf("stream: bucket %d packet %d arrived out of order (want %d)",
				bucket, h.BucketPacket(), collected)
		}
		res.TuneData++
		res.Data = append(res.Data, payload...)
		collected++
		res.Latency = float64(int(h.Slot) + 1 - first)
	}
	return res, nil
}
