package stream

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
)

// startServer builds a program over a random Voronoi subdivision and serves
// it on a loopback listener.
func startServer(t *testing.T, n int, capacity int, start func() int) (*Server, *testing.T) {
	t.Helper()
	sub, _ := testutil.RandomVoronoi(t, n, int64(n)*7+3)
	prog, err := NewDTreeProgram(sub, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, prog)
	if err != nil {
		t.Fatal(err)
	}
	srv.StartSlot = start
	go srv.Serve() //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return srv, t
}

func TestStreamedQueriesEndToEnd(t *testing.T) {
	const capacity = 256
	sub, sites := testutil.RandomVoronoi(t, 80, 563)
	prog, err := NewDTreeProgram(sub, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, prog)
	if err != nil {
		t.Fatal(err)
	}
	phase := 0
	srv.StartSlot = func() int { phase += 137; return phase }
	go srv.Serve() //nolint:errcheck
	defer srv.Close()

	client, err := Dial(ln.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 40; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		res, err := client.Query(p)
		if err != nil {
			t.Fatalf("query %d at %v: %v", q, p, err)
		}
		want := sub.Locate(p)
		if res.Bucket != want && !sub.Regions[res.Bucket].Poly.Contains(p) {
			t.Fatalf("query %v: bucket %d, want %d", p, res.Bucket, want)
		}
		if err := VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
			t.Fatalf("query %v: %v", p, err)
		}
		if res.TuneProbe != 1 || res.TuneIndex < 1 || res.TuneData < 1 {
			t.Fatalf("query %v: odd tuning %+v", p, res)
		}
		if res.Latency <= 0 || res.Latency > 3*float64(prog.Sched.CycleLen()) {
			t.Fatalf("query %v: latency %v", p, res.Latency)
		}
		// Energy argument: the client must doze through far more frames
		// than it parses.
		if res.DozedFrames < res.TotalTuning() {
			t.Logf("query %v: dozed %d, tuned %d (small cycle)", p, res.DozedFrames, res.TotalTuning())
		}
		_ = sites
	}
}

func TestStreamConcurrentClients(t *testing.T) {
	const capacity = 128
	srv, _ := startServer(t, 40, capacity, func() int { return 0 })

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := Dial(srv.Addr().String(), capacity)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 10; q++ {
				p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				res, err := client.Query(p)
				if err != nil {
					errs <- err
					return
				}
				if err := VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
					errs <- err
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStreamRepeatedQueriesOneConnection(t *testing.T) {
	const capacity = 512
	srv, _ := startServer(t, 60, capacity, func() int { return 42 })
	client, err := Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(7))
	var totalTune, totalDoze int
	for q := 0; q < 30; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		res, err := client.Query(p)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		totalTune += res.TotalTuning()
		totalDoze += res.DozedFrames
	}
	if totalTune == 0 || totalDoze == 0 {
		t.Fatalf("tuning %d, dozing %d", totalTune, totalDoze)
	}
	// The whole point of air indexing: the radio is mostly off.
	duty := float64(totalTune) / float64(totalTune+totalDoze)
	if duty > 0.5 {
		t.Errorf("duty cycle %.2f, expected well below 0.5", duty)
	}
}

func TestProgramValidate(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 10, 77)
	prog, err := NewDTreeProgram(sub, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Program embeds a sync.Once (rendered-cycle cache), so mutate fresh
	// builds rather than copying.
	bad, err := NewDTreeProgram(sub, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad.IndexPackets = bad.IndexPackets[:len(bad.IndexPackets)-1]
	if err := bad.Validate(); err == nil {
		t.Error("mismatched index packet count should fail")
	}
	bad2, err := NewDTreeProgram(sub, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad2.Capacity = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Header{Kind: KindData, Slot: 1234, Seq: DataSeq(77, 3), NextIndex: 55, PayloadLen: 8}
	if err := writeFrame(&buf, h, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	got, err := readHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slot != 1234 || got.Bucket() != 77 || got.BucketPacket() != 3 || got.NextIndex != 55 {
		t.Fatalf("header round trip: %+v", got)
	}
	if buf.Len() != 8 {
		t.Fatalf("payload bytes remaining = %d", buf.Len())
	}
	// Oversized delta and wrong payload length must be rejected.
	if err := writeFrame(&buf, Header{NextIndex: 1 << 17, PayloadLen: 0}, nil); err == nil {
		t.Error("oversized next-index delta accepted")
	}
	if err := writeFrame(&buf, Header{PayloadLen: 4}, []byte{1}); err == nil {
		t.Error("mismatched payload length accepted")
	}
}
