package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"airindex/internal/channel"
	"airindex/internal/geom"
	"airindex/internal/obs"
	"airindex/internal/testutil"
)

var testArea = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

// startSwapServer wires a Swapper to a live TCP server, applies configure
// (which runs before any connection can exist — Server fields must not be
// mutated once Serve is accepting), starts serving, and returns the channel
// Serve's exit error arrives on.
func startSwapServer(t *testing.T, n, capacity int, seed int64, configure func(*Server)) (*Swapper, *Server, chan error) {
	t.Helper()
	sites := testutil.RandomSites(testArea, n, seed)
	sw, err := NewSwapper(testArea, sites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, sw.Program())
	if err != nil {
		t.Fatal(err)
	}
	sw.Bind(srv)
	if configure != nil {
		configure(srv)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() { srv.Close() })
	return sw, srv, serveErr
}

// verifyAgainstGeneration checks a query result against the exact program
// its generation stamp names — the live-reconfiguration correctness
// contract: an answer may be from an older generation that was still on
// the air, but never wrong for the generation it claims. It returns an
// error (not t.Fatal) so concurrent client goroutines can report safely.
func verifyAgainstGeneration(sw *Swapper, p geom.Point, res Result, capacity int) error {
	g := sw.Generation(res.Generation)
	if g == nil {
		return fmt.Errorf("query %v: answered under unknown generation %d", p, res.Generation)
	}
	if res.Bucket < 0 || res.Bucket >= g.Sub.N() {
		return fmt.Errorf("query %v: bucket %d out of range for generation %d (%d regions)", p, res.Bucket, res.Generation, g.Sub.N())
	}
	if want := g.Sub.Locate(p); res.Bucket != want && !g.Sub.Regions[res.Bucket].Poly.Contains(p) {
		return fmt.Errorf("query %v: bucket %d, want %d (generation %d)", p, res.Bucket, want, res.Generation)
	}
	if err := VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
		return fmt.Errorf("query %v (generation %d): %w", p, res.Generation, err)
	}
	return nil
}

// TestSwapPublishesNewGeneration: after Apply, a fresh connection resolves
// queries against the new program under the bumped generation.
func TestSwapPublishesNewGeneration(t *testing.T) {
	const capacity = 256
	sw, srv, _ := startSwapServer(t, 60, capacity, 4001, func(s *Server) {
		s.StartSlot = func() int { return 0 }
	})

	gen, ids, err := sw.Apply([]SiteOp{
		{Kind: OpAdd, P: geom.Pt(5012.5, 4987.25)},
		{Kind: OpAdd, P: geom.Pt(123.75, 9876.5)},
		{Kind: OpRemove, ID: 7},
		{Kind: OpMove, ID: 11, P: geom.Pt(7300.125, 2211.875)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation after first swap = %d, want 2", gen)
	}
	if len(ids) != 4 {
		t.Fatalf("applied %d ops, want 4", len(ids))
	}
	if srv.Generation() != 2 {
		t.Fatalf("server generation = %d, want 2", srv.Generation())
	}

	client, err := Dial(srv.Addr().String(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, p := range testutil.QueryPoints(testArea, 20, 4002) {
		res, err := client.Query(p)
		if err != nil {
			t.Fatalf("query %v: %v", p, err)
		}
		if res.Generation != 2 {
			t.Fatalf("query %v: resolved under generation %d, want 2", p, res.Generation)
		}
		if err := verifyAgainstGeneration(sw, p, res, capacity); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSwapRejectsCapacityChange: clients size reads from the capacity, so a
// swap may not change it.
func TestSwapRejectsCapacityChange(t *testing.T) {
	_, srv, _ := startSwapServer(t, 30, 256, 4010, nil)
	other, err := NewSwapper(testArea, testutil.RandomSites(testArea, 30, 4011), 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Swap(other.Program()); err == nil {
		t.Fatal("capacity-changing swap accepted")
	}
	if srv.Generation() != 1 {
		t.Fatalf("failed swap bumped generation to %d", srv.Generation())
	}
}

// TestClientEpochRecovery pins the mid-query swap protocol with a
// hand-built stream: generation 1 frames up to a cycle boundary, then
// generation 2 frames of a different program. The client probes late in the
// old cycle, walks into the new generation mid-query, restarts, and answers
// correctly against the new program — with the restart and the wasted work
// visible in the counters.
func TestClientEpochRecovery(t *testing.T) {
	const capacity = 256
	sub1, _ := testutil.RandomVoronoi(t, 40, 4021)
	prog1, err := NewDTreeProgram(sub1, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub2, _ := testutil.RandomVoronoi(t, 55, 4022)
	prog2, err := NewDTreeProgram(sub2, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}

	cycle1 := prog1.Sched.CycleLen()
	swapAt := cycle1 // first cycle boundary: where a live server would roll over
	start := cycle1 - 3

	cliEnd, srvEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		tx1, err := prog1.transmitter(nil, nil)
		if err != nil {
			return
		}
		tx2, err := prog2.transmitter(nil, nil)
		if err != nil {
			return
		}
		bw := bufio.NewWriterSize(srvEnd, txBufSize)
		for slot := start; ; slot++ {
			var werr error
			if slot < swapAt {
				werr = tx1.transmitSlot(bw, slot, slot, 1)
			} else {
				werr = tx2.transmitSlot(bw, slot, slot-swapAt, 2)
			}
			if werr == nil {
				werr = bw.Flush()
			}
			if werr != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		cliEnd.Close()
		srvEnd.Close()
		<-done
	})

	client := NewClient(cliEnd, capacity)
	p := geom.Pt(6123.5, 3456.25)
	res, err := client.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 {
		t.Fatalf("resolved under generation %d, want 2", res.Generation)
	}
	if res.EpochRestarts != 1 {
		t.Fatalf("EpochRestarts = %d, want 1 (probe at slot %d, swap at %d)", res.EpochRestarts, start, swapAt)
	}
	if res.FirstSlot != start {
		t.Fatalf("FirstSlot = %d, want the original probe slot %d", res.FirstSlot, start)
	}
	if want := float64(res.LastSlot + 1 - res.FirstSlot); res.Latency != want {
		t.Fatalf("latency %v does not span the restart (want %v)", res.Latency, want)
	}
	if want := sub2.Locate(p); res.Bucket != want && !sub2.Regions[res.Bucket].Poly.Contains(p) {
		t.Fatalf("bucket %d, want %d in the new program", res.Bucket, want)
	}
	if err := VerifyStampedData(res.Data, capacity, res.Bucket); err != nil {
		t.Fatal(err)
	}
}

// TestChurnUnderLossLive is the acceptance gate of the reconfiguration
// layer: a live TCP server under a lossy channel, a churn driver applying
// 100+ site operations in batches, and concurrent clients querying
// throughout — every answer must verify against the exact generation it was
// resolved under (zero wrong answers), no query may hang, no connection
// goroutine may panic, and the final Shutdown must drain cleanly. The run
// is paced entirely by observability counters — the driver waits for query
// traffic to progress before the next swap, and the main goroutine waits
// on the swap counter — so the test never races a fixed sleep against
// scheduler jitter.
func TestChurnUnderLossLive(t *testing.T) {
	const (
		capacity   = 256
		nSites     = 60
		numClients = 4
		batches    = 25
		batchOps   = 5 // 125 ops total
	)
	stats := &channel.Stats{}
	sw, srv, serveErr := startSwapServer(t, nSites, capacity, 4031, func(s *Server) {
		s.StartSlot = func() int { return 0 }
		s.Channel = channel.Spec{Loss: 0.03, Burst: 3, Corrupt: 0.01, Seed: 4032}.Factory(stats)
	})
	cm := NewClientMetrics() // shared by all query clients

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churn driver: random add/remove/move batches against the live server,
	// paced by the clients' query counter so every swap lands against live
	// query traffic instead of a wall-clock guess.
	driverErr := make(chan error, 1)
	driverFinished := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(driverFinished)
		rng := rand.New(rand.NewSource(4033))
		applied := 0
		for b := 0; b < batches; b++ {
			ids := sw.LiveSiteIDs()
			var ops []SiteOp
			for len(ops) < batchOps {
				switch k := rng.Intn(10); {
				case k < 4:
					ops = append(ops, SiteOp{Kind: OpAdd, P: geom.Pt(rng.Float64()*10000, rng.Float64()*10000)})
				case k < 7 && len(ids) > nSites/2:
					j := ids[rng.Intn(len(ids))]
					ops = append(ops, SiteOp{Kind: OpRemove, ID: j})
					ids = removeID(ids, j)
				default:
					if len(ids) == 0 {
						continue
					}
					j := ids[rng.Intn(len(ids))]
					ops = append(ops, SiteOp{Kind: OpMove, ID: j, P: geom.Pt(rng.Float64()*10000, rng.Float64()*10000)})
					ids = removeID(ids, j)
				}
			}
			qBase := cm.Queries.Load()
			if _, done, err := sw.Apply(ops); err != nil {
				driverErr <- err
				return
			} else {
				applied += len(done)
			}
			// Obs-driven readiness: at least one query must complete under
			// the new broadcast before the next swap (the timeout is a
			// safety net, not the pacing mechanism).
			obs.AwaitAtLeast(cm.Queries.Load, qBase+1, 5*time.Second)
			select {
			case <-stop:
				return
			default:
			}
		}
		if applied < 100 {
			driverErr <- errors.New("driver applied fewer than 100 operations")
		}
	}()

	// Query clients: hammer the broadcast while the program churns under
	// them. Every result must check out against its own generation.
	clientErrs := make(chan error, numClients)
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := Dial(srv.Addr().String(), capacity)
			if err != nil {
				clientErrs <- err
				return
			}
			defer client.Close()
			client.Metrics = cm
			rng := rand.New(rand.NewSource(4040 + int64(c)))
			for q := 0; ; q++ {
				select {
				case <-stop:
					return
				default:
				}
				p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				res, err := client.Query(p)
				if err != nil {
					clientErrs <- err
					return
				}
				if err := verifyAgainstGeneration(sw, p, res, capacity); err != nil {
					clientErrs <- err
					return
				}
			}
		}(c)
	}

	// Let the driver finish all batches, then stop the clients.
	select {
	case <-driverFinished:
	case err := <-clientErrs:
		t.Fatalf("client failed during churn: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("churn run hung")
	}
	select {
	case err := <-driverErr:
		t.Fatalf("driver failed: %v", err)
	default:
	}
	// Every applied batch must be visible as a published swap before the
	// clients stop (the counter increments at publish, so this returns
	// immediately once the driver is done — it is the readiness assertion).
	if !obs.AwaitAtLeast(srv.Metrics().Swaps.Load, batches, 30*time.Second) {
		t.Fatalf("only %d swaps on the air after %d applied batches", srv.Metrics().Swaps.Load(), batches)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-clientErrs:
		t.Fatalf("client failed during churn: %v", err)
	case err := <-driverErr:
		t.Fatalf("driver failed: %v", err)
	default:
	}

	if got := srv.Generation(); got < batches {
		t.Fatalf("server generation %d after %d batches", got, batches)
	}
	if got := srv.Metrics().ConnPanics.Load(); got != 0 {
		t.Fatalf("%d connection panics recovered during churn, want 0", got)
	}
	if got := cm.Queries.Load(); got == 0 {
		t.Fatal("no queries completed during the churn run")
	}

	// Graceful drain must complete: no client is connected anymore, but the
	// server still drains the just-disconnected goroutines and exits Serve
	// with ErrServerClosed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

func removeID(ids []int, id int) []int {
	out := ids[:0]
	for _, j := range ids {
		if j != id {
			out = append(out, j)
		}
	}
	return out
}
