// Package stream puts the broadcast system on a real wire: a server that
// cyclically transmits the paged index and the data buckets as framed
// packets over any net.Conn (TCP in the demos), and a client that
// implements the paper's access protocol against the live stream — initial
// probe, doze (skim frames without parsing payloads), selective index
// parsing through the D-tree byte decoder, and data retrieval — while
// accounting latency in slots and tuning in parsed packets. The frame
// format carries a payload checksum and every frame points at the next
// index copy, so a client surviving an unreliable channel (see
// internal/channel) can detect corruption and loss and resynchronize by
// the paper's own mechanism.
package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame kinds.
const (
	KindIndex = 0x00
	KindData  = 0x01
)

const frameMagic = 0x4158 // "AX"

// frameVersion is the wire-format version. v1 was the checksum-less
// 16-byte header; v2 claimed the former pad byte as a version field and
// appended a CRC32 payload checksum; v3 adds the 32-bit broadcast
// generation so clients detect live program swaps (site churn) and abandon
// stale index state instead of decoding the wrong program.
const frameVersion = 3

// headerSize is the fixed frame-header length in bytes.
const headerSize = 24

// Header describes one broadcast frame. Every frame carries the offset to
// the start of the next index copy — the paper's "pointer to the root of
// the next index" present in every packet — so a client can probe at any
// moment, a CRC over the payload so it can tell a damaged download from a
// good one, and the generation of the program it belongs to so a mid-query
// hot swap is detected the instant the first new-generation frame is
// observed.
type Header struct {
	Kind       uint8
	Slot       uint32 // absolute slot number, strictly increasing
	Seq        uint32 // index: packet offset in the copy; data: bucket<<8 | packet-in-bucket
	NextIndex  uint32 // slots from this frame to the next index-copy start
	PayloadLen uint16
	Gen        uint32 // broadcast program generation (bumped by every hot swap)
	CRC        uint32 // IEEE CRC32 of the payload
}

// MaxBucketPackets bounds the packets of one data bucket: DataSeq keeps
// the packet-in-bucket in the low 8 bits of the sequence field, so a
// bucket spanning more packets would silently alias. Program validation
// rejects such programs at build time.
const MaxBucketPackets = 256

// DataSeq packs a data frame's sequence field. pkt must be below
// MaxBucketPackets; Program.Validate enforces that before any frame is
// rendered.
func DataSeq(bucket, pkt int) uint32 { return uint32(bucket)<<8 | uint32(pkt&0xff) }

// Bucket extracts the bucket id from a data frame's sequence field.
func (h Header) Bucket() int { return int(h.Seq >> 8) }

// BucketPacket extracts the packet-within-bucket from a data frame.
func (h Header) BucketPacket() int { return int(h.Seq & 0xff) }

// Checksum computes the payload checksum carried by every frame. CRC32
// detects any single-bit error with certainty, which is exactly the damage
// the corruption fault model injects.
func Checksum(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// marshalFrame serializes a frame (header + payload), writing h.CRC
// verbatim — the transmit path stamps it before the fault middleware may
// damage the payload, so corruption on the air is detectable. Header
// layout, little endian: magic(2) kind(1) version(1) slot(4) seq(4)
// payloadLen(2) nextIndex(2) gen(4) crc(4). The 16-bit next-index delta
// bounds one (1, m) data segment plus index copy at 65535 slots, ample for
// every paper configuration.
func marshalFrame(h Header, payload []byte) ([]byte, error) {
	if len(payload) != int(h.PayloadLen) {
		return nil, fmt.Errorf("stream: payload %d bytes, header says %d", len(payload), h.PayloadLen)
	}
	if h.NextIndex > 0xffff {
		return nil, fmt.Errorf("stream: next-index delta %d exceeds 16 bits", h.NextIndex)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint16(buf[0:], frameMagic)
	buf[2] = h.Kind
	buf[3] = frameVersion
	binary.LittleEndian.PutUint32(buf[4:], h.Slot)
	binary.LittleEndian.PutUint32(buf[8:], h.Seq)
	binary.LittleEndian.PutUint16(buf[12:], h.PayloadLen)
	binary.LittleEndian.PutUint16(buf[14:], uint16(h.NextIndex))
	binary.LittleEndian.PutUint32(buf[16:], h.Gen)
	binary.LittleEndian.PutUint32(buf[20:], h.CRC)
	copy(buf[headerSize:], payload)
	return buf, nil
}

// writeFrame stamps the payload checksum and emits a frame to w — the
// honest-transmitter path used when no fault middleware intervenes.
func writeFrame(w io.Writer, h Header, payload []byte) error {
	h.CRC = Checksum(payload)
	buf, err := marshalFrame(h, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readHeader reads and validates a frame header.
func readHeader(r io.Reader) (Header, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Header{}, err
	}
	if binary.LittleEndian.Uint16(buf[0:]) != frameMagic {
		return Header{}, fmt.Errorf("stream: bad frame magic")
	}
	if buf[3] != frameVersion {
		return Header{}, fmt.Errorf("stream: frame version %d, this client speaks %d", buf[3], frameVersion)
	}
	return Header{
		Kind:       buf[2],
		Slot:       binary.LittleEndian.Uint32(buf[4:]),
		Seq:        binary.LittleEndian.Uint32(buf[8:]),
		PayloadLen: binary.LittleEndian.Uint16(buf[12:]),
		NextIndex:  uint32(binary.LittleEndian.Uint16(buf[14:])),
		Gen:        binary.LittleEndian.Uint32(buf[16:]),
		CRC:        binary.LittleEndian.Uint32(buf[20:]),
	}, nil
}
