// Package stream puts the broadcast system on a real wire: a server that
// cyclically transmits the paged index and the data buckets as framed
// packets over any net.Conn (TCP in the demos), and a client that
// implements the paper's access protocol against the live stream — initial
// probe, doze (skim frames without parsing payloads), selective index
// parsing through the D-tree byte decoder, and data retrieval — while
// accounting latency in slots and tuning in parsed packets.
package stream

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds.
const (
	KindIndex = 0x00
	KindData  = 0x01
)

const frameMagic = 0x4158 // "AX"

// headerSize is the fixed frame-header length in bytes.
const headerSize = 16

// Header describes one broadcast frame. Every frame carries the offset to
// the start of the next index copy — the paper's "pointer to the root of
// the next index" present in every packet — so a client can probe at any
// moment.
type Header struct {
	Kind       uint8
	Slot       uint32 // absolute slot number, strictly increasing
	Seq        uint32 // index: packet offset in the copy; data: bucket<<8 | packet-in-bucket
	NextIndex  uint32 // slots from this frame to the next index-copy start
	PayloadLen uint16
}

// DataSeq packs a data frame's sequence field.
func DataSeq(bucket, pkt int) uint32 { return uint32(bucket)<<8 | uint32(pkt&0xff) }

// Bucket extracts the bucket id from a data frame's sequence field.
func (h Header) Bucket() int { return int(h.Seq >> 8) }

// BucketPacket extracts the packet-within-bucket from a data frame.
func (h Header) BucketPacket() int { return int(h.Seq & 0xff) }

// writeFrame emits a frame (header + payload) to w. Header layout, little
// endian: magic(2) kind(1) pad(1) slot(4) seq(4) payloadLen(2)
// nextIndex(2). The 16-bit next-index delta bounds one (1, m) data segment
// plus index copy at 65535 slots, ample for every paper configuration.
func writeFrame(w io.Writer, h Header, payload []byte) error {
	if len(payload) != int(h.PayloadLen) {
		return fmt.Errorf("stream: payload %d bytes, header says %d", len(payload), h.PayloadLen)
	}
	if h.NextIndex > 0xffff {
		return fmt.Errorf("stream: next-index delta %d exceeds 16 bits", h.NextIndex)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint16(buf[0:], frameMagic)
	buf[2] = h.Kind
	binary.LittleEndian.PutUint32(buf[4:], h.Slot)
	binary.LittleEndian.PutUint32(buf[8:], h.Seq)
	binary.LittleEndian.PutUint16(buf[12:], h.PayloadLen)
	binary.LittleEndian.PutUint16(buf[14:], uint16(h.NextIndex))
	copy(buf[headerSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readHeader reads and validates a frame header.
func readHeader(r io.Reader) (Header, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Header{}, err
	}
	if binary.LittleEndian.Uint16(buf[0:]) != frameMagic {
		return Header{}, fmt.Errorf("stream: bad frame magic")
	}
	return Header{
		Kind:       buf[2],
		Slot:       binary.LittleEndian.Uint32(buf[4:]),
		Seq:        binary.LittleEndian.Uint32(buf[8:]),
		PayloadLen: binary.LittleEndian.Uint16(buf[12:]),
		NextIndex:  uint32(binary.LittleEndian.Uint16(buf[14:])),
	}, nil
}
