package stream

import (
	"bytes"
	"io"
	"testing"
)

// frameBytes marshals a frame for seeding, stamping the checksum.
func frameBytes(tb testing.TB, h Header, payload []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, h, payload); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds arbitrary bytes to the header+payload codec: it must
// never panic, reject anything that is not a v2 frame, and round-trip
// byte-identically whatever it accepts — including frames whose payload
// no longer matches the checksum (the receiver classifies those as
// corrupt, it does not reject them at parse time).
func FuzzReadFrame(f *testing.F) {
	idx := frameBytes(f, Header{Kind: KindIndex, Slot: 7, Seq: 2, NextIndex: 31, PayloadLen: 16}, bytes.Repeat([]byte{0xC3}, 16))
	dat := frameBytes(f, Header{Kind: KindData, Slot: 900, Seq: DataSeq(12, 1), NextIndex: 4, PayloadLen: 8}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(idx)
	f.Add(dat)
	f.Add(idx[:headerSize-3]) // truncated header
	f.Add(append([]byte(nil), idx[:headerSize]...))
	corrupted := append([]byte(nil), dat...)
	corrupted[headerSize+3] ^= 0x10 // payload bit flip: parses, fails checksum
	f.Add(corrupted)
	v1 := append([]byte(nil), idx...)
	v1[3] = 0 // the pre-checksum wire format's pad byte
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		h, err := readHeader(r)
		if err != nil {
			return
		}
		payload := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return // truncated payload: the stream layer surfaces the read error
		}
		// Whatever parsed must re-marshal to the identical wire bytes.
		buf, err := marshalFrame(h, payload)
		if err != nil {
			t.Fatalf("parsed header %+v does not marshal: %v", h, err)
		}
		total := headerSize + int(h.PayloadLen)
		if !bytes.Equal(buf, data[:total]) {
			t.Fatalf("round trip mismatch:\n got %x\nwant %x", buf, data[:total])
		}
		h2, err := readHeader(bytes.NewReader(buf))
		if err != nil || h2 != h {
			t.Fatalf("re-read header %+v (err %v), want %+v", h2, err, h)
		}
		// Checksum classification must be deterministic.
		if (Checksum(payload) == h.CRC) != (Checksum(payload) == h2.CRC) {
			t.Fatal("unstable corruption verdict")
		}
	})
}

// TestReadHeaderRejectsForeignVersions pins the version gate: v1 frames
// (pad byte zero), the 20-byte v2, and future versions must be refused, not
// misparsed.
func TestReadHeaderRejectsForeignVersions(t *testing.T) {
	valid := frameBytes(t, Header{Kind: KindIndex, Slot: 1, PayloadLen: 4, NextIndex: 9}, []byte{1, 2, 3, 4})
	for _, v := range []byte{0, 1, 2, 0xff} {
		frame := append([]byte(nil), valid...)
		frame[3] = v
		if _, err := readHeader(bytes.NewReader(frame)); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
	if _, err := readHeader(bytes.NewReader(valid)); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
}

// TestChecksumDetectsSingleBitFlips pins the property the corruption fault
// model relies on: any one-bit payload flip changes the CRC.
func TestChecksumDetectsSingleBitFlips(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 64)
	want := Checksum(payload)
	for bit := 0; bit < len(payload)*8; bit++ {
		payload[bit/8] ^= 1 << uint(bit%8)
		if Checksum(payload) == want {
			t.Fatalf("bit %d flip undetected", bit)
		}
		payload[bit/8] ^= 1 << uint(bit%8)
	}
}
