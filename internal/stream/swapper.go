package stream

import (
	"fmt"
	"sync"
	"time"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/voronoi"
)

// Site churn: the live-reconfiguration pipeline. A Swapper owns the
// broadcast's site population through a voronoi.Maintainer; each Apply
// batch mutates the diagram incrementally (bit-identical to a from-scratch
// rebuild, see internal/voronoi), rebuilds the D-tree program off the
// serving hot path, and publishes it to the bound Server, which rolls every
// connection over at its next cycle boundary under a bumped generation.

// SiteOp kinds.
const (
	OpAdd = iota
	OpRemove
	OpMove
)

// SiteOp is one site mutation of an Apply batch.
type SiteOp struct {
	Kind int
	ID   int        // Remove, Move: the live site id to touch
	P    geom.Point // Add, Move: the (new) location
}

// Generation is one published broadcast program together with the ground
// truth it was built from, kept so verifiers can check a query answer
// against the exact program its generation stamp names — even after later
// swaps replaced it on the air.
type Generation struct {
	Gen  uint32
	Sub  *region.Subdivision // the subdivision the program indexes
	IDs  []int               // region index -> stable site id
	// Sites maps region index -> site location at this generation: the
	// ground truth continuous-query verifiers score window/kNN answers
	// against after the maintainer has moved on.
	Sites []geom.Point
	Prog  *Program
	// Flat is the arena the program was rendered from; server-side answer
	// verification queries it allocation-free, and its snapshot restores
	// this generation's exact broadcast on another process.
	Flat *core.FlatPaged
}

// Swapper drives live reconfiguration end to end. All methods are safe for
// concurrent use; Apply batches serialize against each other.
type Swapper struct {
	capacity int
	m        int

	mu    sync.Mutex
	maint *voronoi.Maintainer
	comp  *incrCompiler
	gens  map[uint32]*Generation
	cur   *Generation
	srv   *Server // nil until Bind
	// pending marks that a failed cut left the maintainer ahead of the
	// published program: mutations were applied but never compiled or never
	// swapped onto the air. The failed batch's dirty window is rolled back
	// (BeginBatch) and the compiler reset, so the next Apply — even an
	// empty one — recompiles from scratch and republishes; the incremental
	// path never patches against a base the air never carried.
	pending bool
}

// NewSwapper builds the initial program (generation 1) for the given sites.
// m <= 0 picks the optimal number of index copies per cycle.
func NewSwapper(area geom.Rect, sites []geom.Point, capacity, m int) (*Swapper, error) {
	return newSwapper(area, sites, capacity, m, false)
}

// NewSwapperWithAdjacency is NewSwapper for a continuous-query broadcast:
// every published generation's arena carries the region-adjacency table, so
// each cycle leads with the self-describing appendix that moving clients
// cache and revalidate against (stream.Continuous). Point-query clients use
// QueryShifted past the appendix.
func NewSwapperWithAdjacency(area geom.Rect, sites []geom.Point, capacity, m int) (*Swapper, error) {
	return newSwapper(area, sites, capacity, m, true)
}

func newSwapper(area geom.Rect, sites []geom.Point, capacity, m int, adjacency bool) (*Swapper, error) {
	maint, err := voronoi.NewMaintainer(area, sites)
	if err != nil {
		return nil, err
	}
	comp := newIncrCompiler(capacity, m)
	comp.adjacency = adjacency
	sw := &Swapper{
		capacity: capacity, m: m,
		maint: maint,
		comp:  comp,
		gens:  make(map[uint32]*Generation),
	}
	sub, ids, prog, flat, err := sw.comp.full(maint)
	if err != nil {
		return nil, err
	}
	sites, serr := sw.sitesLocked(ids)
	if serr != nil {
		return nil, serr
	}
	sw.remember(&Generation{Gen: 1, Sub: sub, IDs: ids, Sites: sites, Prog: prog, Flat: flat})
	return sw, nil
}

// sitesLocked resolves region-ordered site ids to their current locations;
// the caller holds mu (or is still constructing the swapper).
func (sw *Swapper) sitesLocked(ids []int) ([]geom.Point, error) {
	sites := make([]geom.Point, len(ids))
	for i, id := range ids {
		p, err := sw.maint.Site(id)
		if err != nil {
			return nil, err
		}
		sites[i] = p
	}
	return sites, nil
}

// buildLocked compiles the next program from the maintainer's batch delta —
// incrementally against the previous generation when the batch is small,
// from scratch otherwise (byte-identical either way); the caller holds mu.
func (sw *Swapper) buildLocked(gen uint32, dirty, removed []int) (*Generation, cutStats, error) {
	sub, ids, prog, flat, st, err := sw.comp.compile(sw.maint, dirty, removed)
	if err != nil {
		return nil, st, err
	}
	sites, err := sw.sitesLocked(ids)
	if err != nil {
		return nil, st, err
	}
	return &Generation{Gen: gen, Sub: sub, IDs: ids, Sites: sites, Prog: prog, Flat: flat}, st, nil
}

func (sw *Swapper) remember(g *Generation) {
	sw.gens[g.Gen] = g
	sw.cur = g
}

// Program returns the most recently built program (for NewServer).
func (sw *Swapper) Program() *Program { return sw.Current().Prog }

// Bind attaches the swapper to the server its programs publish to. The
// server must have been built from sw.Program() so generation numbering
// lines up (NewServer starts at generation 1, as does NewSwapper).
func (sw *Swapper) Bind(srv *Server) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.srv = srv
}

// Current returns the latest built generation.
func (sw *Swapper) Current() *Generation {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cur
}

// Generation returns the published generation gen, or nil if unknown.
func (sw *Swapper) Generation(gen uint32) *Generation {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.gens[gen]
}

// Len returns the current number of live sites.
func (sw *Swapper) Len() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.maint.Len()
}

// LiveSiteIDs returns the ids of the live sites.
func (sw *Swapper) LiveSiteIDs() []int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ids, _ := sw.maint.LiveSites()
	return ids
}

// Pending reports whether a failed cut left the maintainer ahead of the
// published program. The next Apply — `Apply(nil)` suffices — recompiles
// the current site set from scratch and republishes; callers retrying a
// failed batch consult this to avoid re-applying operations that already
// landed (the ingest pipeline's republish path).
func (sw *Swapper) Pending() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.pending
}

// abortCut rolls the cut pipeline back after a failed build or publish:
// the compiler forgets its retained generation state (the next compile is
// a clean full rebuild) and the maintainer's dirty-batch window closes, so
// a later batch never inherits stale dirty cells from this one. The
// maintainer's site mutations stay — they are valid after every op — and
// pending records that the air now trails them. Caller holds mu.
func (sw *Swapper) abortCut() {
	sw.comp.reset()
	sw.maint.BeginBatch()
	sw.pending = true
}

// Apply runs one batch of site operations through the maintainer, rebuilds
// the broadcast program in this goroutine (off the serving hot path), and —
// when bound — publishes it to the server, returning the new generation.
// The rebuild is incremental: only the D-tree subtrees, arena ranges, and
// rendered frames the batch's dirty cells touched are recomputed, and the
// result is byte-identical to a from-scratch compile. An operation that
// fails stops the batch: operations already applied stay applied and ARE
// published (the diagram is valid after every op), so the broadcast never
// reflects a half-applied operation, only a shortened batch. The returned
// ids slice maps batch position -> resulting site id (a new id for Add, the
// site's stable id echoed for Remove and Move), valid for the prefix that
// succeeded.
//
// A failed cut (build or publish error) keeps the applied operations in
// the maintainer but rolls the cut pipeline back — the compiler state and
// the dirty-batch window are reset, and Pending() turns true — so the next
// Apply, even with an empty batch, recompiles the live site set from
// scratch and republishes it. Retriers should therefore NOT resubmit a
// batch whose error came after its operations applied: `Apply(nil)`
// finishes the cut without double-applying anything.
func (sw *Swapper) Apply(ops []SiteOp) (gen uint32, ids []int, err error) {
	start := time.Now()
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.maint.BeginBatch()
	ids = make([]int, 0, len(ops))
	var opErr error
	for _, op := range ops {
		var id int
		switch op.Kind {
		case OpAdd:
			id, opErr = sw.maint.Add(op.P)
		case OpRemove:
			id, opErr = op.ID, sw.maint.Remove(op.ID)
		case OpMove:
			id, opErr = sw.maint.Move(op.ID, op.P)
		default:
			opErr = fmt.Errorf("stream: unknown site op kind %d", op.Kind)
		}
		if opErr != nil {
			break
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 && opErr != nil && !sw.pending {
		// Nothing changed; keep the current generation on the air.
		return sw.cur.Gen, nil, opErr
	}
	dirty, removed := sw.maint.BatchDelta()
	if len(dirty) == 0 && len(removed) == 0 && !sw.pending {
		// The batch was a byte-level no-op (e.g. a move back to the same
		// spot); the program on the air is already exact.
		return sw.cur.Gen, ids, opErr
	}
	next := sw.cur.Gen + 1
	buildStart := time.Now()
	g, st, err := sw.buildLocked(next, dirty, removed)
	if err != nil {
		sw.abortCut()
		return sw.cur.Gen, ids, err
	}
	buildNS := time.Since(buildStart).Nanoseconds()
	// Record the generation before publishing: a client may pin it and
	// look up its ground truth the instant the first swapped frame is on
	// the air, which can be before Swap even returns.
	prev := sw.cur
	sw.remember(g)
	if sw.srv != nil {
		if _, err := sw.srv.Swap(g.Prog); err != nil {
			delete(sw.gens, g.Gen)
			sw.cur = prev
			sw.abortCut()
			return prev.Gen, ids, err
		}
		// End-to-end reconfiguration latency: maintainer mutation + off-path
		// rebuild + render + publish, the number capacity planning needs —
		// plus the cut's compile cost and dirty fraction on their own series.
		m := sw.srv.Metrics()
		m.SwapLatencyNS.Observe(time.Since(start).Nanoseconds())
		m.CutBuildNS.Observe(buildNS)
		m.CutDirtyPermille.Set(st.dirtyPermille())
	}
	sw.pending = false
	return next, ids, opErr
}
