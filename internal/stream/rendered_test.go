package stream

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"airindex/internal/testutil"
)

// legacyTransmitSlot is the pre-rendered-cycle transmit path (render the
// frame from scratch, stamp the checksum, marshal, write), kept here as the
// reference the optimized path must match byte for byte.
func legacyTransmitSlot(w io.Writer, p *Program, slot int) error {
	h, payload := p.frameAt(slot)
	h.Gen = 1 // the transmit path stamps the generation; gen 1 = fresh server
	h.CRC = Checksum(payload)
	buf, err := marshalFrame(h, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// TestRenderedCycleMatchesFrameAt pins the wire format: the rendered-cycle
// transmit path must emit exactly the bytes the per-frame path emitted,
// across more than one full cycle (absolute slot numbers beyond the cycle
// length exercise the slot patching).
func TestRenderedCycleMatchesFrameAt(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 40, 283)
	prog, err := NewDTreeProgram(sub, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := prog.transmitter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cycle := prog.Sched.CycleLen()
	slots := 2*cycle + 7

	var got bytes.Buffer
	bw := bufio.NewWriterSize(&got, txBufSize)
	for s := 0; s < slots; s++ {
		if err := tx.transmitSlot(bw, s, s, 1); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush() //nolint:errcheck

	var want bytes.Buffer
	for s := 0; s < slots; s++ {
		if err := legacyTransmitSlot(&want, prog, s); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		for i := range want.Bytes() {
			if got.Bytes()[i] != want.Bytes()[i] {
				t.Fatalf("first divergence at byte %d (frame %d, offset %d): got %#x want %#x",
					i, i/(headerSize+prog.Capacity), i%(headerSize+prog.Capacity),
					got.Bytes()[i], want.Bytes()[i])
			}
		}
		t.Fatalf("length mismatch: got %d want %d", got.Len(), want.Len())
	}
}

// TestTransmitPerfectChannelZeroAllocs pins the tentpole property: once the
// cycle is rendered, the perfect-channel transmit path performs zero heap
// allocations per frame.
func TestTransmitPerfectChannelZeroAllocs(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 40, 283)
	prog, err := NewDTreeProgram(sub, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := prog.transmitter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(io.Discard, txBufSize)
	slot := 0
	allocs := testing.AllocsPerRun(2000, func() {
		if err := tx.transmitSlot(bw, slot, slot, 1); err != nil {
			t.Fatal(err)
		}
		slot++
	})
	if allocs != 0 {
		t.Fatalf("perfect-channel transmitSlot allocates %.1f objects/frame, want 0", allocs)
	}
}

// TestRenderedSize sanity-checks the startup diagnostic.
func TestRenderedSize(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 20, 117)
	prog, err := NewDTreeProgram(sub, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames, size, err := prog.RenderedSize()
	if err != nil {
		t.Fatal(err)
	}
	if frames != prog.Sched.CycleLen() {
		t.Errorf("frames = %d, want cycle %d", frames, prog.Sched.CycleLen())
	}
	if want := frames * (headerSize + prog.Capacity); size != want {
		t.Errorf("size = %d, want %d", size, want)
	}
}
