package stream

import (
	"time"

	"airindex/internal/obs"
)

// Metrics is the server side of the observability layer: every counter the
// broadcast hot path touches, pre-resolved to direct pointers so recording
// is one atomic add — no map lookups, no locks, no allocation (the
// zero-allocation contract is pinned by TestTransmitHotPathZeroAlloc and
// BenchmarkTransmitHotPath).
type Metrics struct {
	reg *obs.Registry

	FramesWritten   *obs.Counter // frames put on the wire (all connections)
	FramesDropped   *obs.Counter // frames the fault channel discarded
	FramesCorrupted *obs.Counter // frames delivered with flipped payload bits
	BytesWritten    *obs.Counter // wire bytes written (headers + payloads)

	ConnsActive *obs.Gauge   // currently streaming connections
	ConnsTotal  *obs.Counter // connections ever accepted
	Evictions   *obs.Counter // slow clients evicted by WriteTimeout
	ConnPanics  *obs.Counter // connection goroutine panics recovered

	Swaps         *obs.Counter   // program generations published to the air
	SwapLatencyNS *obs.Histogram // end-to-end reconfiguration latency (Swapper.Apply), ns
	CutBuildNS    *obs.Histogram // off-path program compile per generation cut, ns
	// CutDirtyPermille is the rebuilt-node fraction of the last cut's D-tree
	// in permille: near 0 when the incremental path spliced almost
	// everything, 1000 for a full rebuild.
	CutDirtyPermille *obs.Gauge
}

// NewMetrics builds a server metrics set backed by a fresh registry.
func NewMetrics() *Metrics { return NewMetricsIn(obs.NewRegistry(), "") }

// NewMetricsIn registers a server metric set in an existing registry under
// a name prefix, so a multi-channel fabric can share one registry across
// its per-shard servers with per-shard labels ("shard0_frames_written",
// ...). The prefix must be unique within the registry.
func NewMetricsIn(reg *obs.Registry, prefix string) *Metrics {
	return &Metrics{
		reg:              reg,
		FramesWritten:    reg.Counter(prefix + "frames_written"),
		FramesDropped:    reg.Counter(prefix + "frames_dropped"),
		FramesCorrupted:  reg.Counter(prefix + "frames_corrupted"),
		BytesWritten:     reg.Counter(prefix + "bytes_written"),
		ConnsActive:      reg.Gauge(prefix + "conns_active"),
		ConnsTotal:       reg.Counter(prefix + "conns_total"),
		Evictions:        reg.Counter(prefix + "evictions"),
		ConnPanics:       reg.Counter(prefix + "conn_panics"),
		Swaps:            reg.Counter(prefix + "swaps"),
		SwapLatencyNS:    reg.Histogram(prefix+"swap_latency_ns", 256),
		CutBuildNS:       reg.Histogram(prefix+"cut_build_ns", 256),
		CutDirtyPermille: reg.Gauge(prefix + "cut_dirty_permille"),
	}
}

// Registry exposes the underlying registry (for /metrics and snapshots).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Snapshot reads every server metric into a JSON-friendly map.
func (m *Metrics) Snapshot() map[string]any { return m.reg.Snapshot() }

// ClientMetrics is the client side of the observability layer: the
// latency and tuning distributions the paper's evaluation is built on,
// recorded per completed query, plus the loss/corruption/reconfiguration
// recovery counters. One ClientMetrics may be shared by any number of
// clients (all operations are atomic).
type ClientMetrics struct {
	reg *obs.Registry

	Queries     *obs.Counter // queries answered
	QueryErrors *obs.Counter // queries that failed terminally

	LatencySlots  *obs.Histogram // access latency per query, slots
	TuningPackets *obs.Histogram // total tuning per query, packets

	EpochRestarts *obs.Counter // whole-query restarts forced by hot swaps
	Recoveries    *obs.Counter // loss/corruption/swap recovery actions
	LostSlots     *obs.Counter // slot gaps observed (frames dropped on air)
	CorruptFrames *obs.Counter // downloaded frames failing the checksum
}

// NewClientMetrics builds a client metrics set backed by a fresh registry.
func NewClientMetrics() *ClientMetrics {
	reg := obs.NewRegistry()
	return &ClientMetrics{
		reg:           reg,
		Queries:       reg.Counter("queries"),
		QueryErrors:   reg.Counter("query_errors"),
		LatencySlots:  reg.Histogram("latency_slots", 1024),
		TuningPackets: reg.Histogram("tuning_packets", 1024),
		EpochRestarts: reg.Counter("epoch_restarts"),
		Recoveries:    reg.Counter("recoveries"),
		LostSlots:     reg.Counter("lost_slots"),
		CorruptFrames: reg.Counter("corrupt_frames"),
	}
}

// Registry exposes the underlying registry.
func (m *ClientMetrics) Registry() *obs.Registry { return m.reg }

// Snapshot reads every client metric into a JSON-friendly map.
func (m *ClientMetrics) Snapshot() map[string]any { return m.reg.Snapshot() }

// Observe folds one completed query result into the metrics — for callers
// that drive the access protocol by hand (Probe/Fetch/Locate, like the
// fabric's adjacency leg) instead of through Query, which records
// automatically.
func (m *ClientMetrics) Observe(res *Result) { m.observe(res) }

// observe folds one completed query result into the metrics; no-op on a
// nil receiver so untracked clients pay only a nil check.
func (m *ClientMetrics) observe(res *Result) {
	if m == nil {
		return
	}
	m.Queries.Inc()
	m.LatencySlots.Observe(int64(res.Latency))
	m.TuningPackets.Observe(int64(res.TotalTuning()))
	m.EpochRestarts.Add(int64(res.EpochRestarts))
	m.Recoveries.Add(int64(res.Recoveries))
	m.LostSlots.Add(int64(res.LostSlots))
	m.CorruptFrames.Add(int64(res.CorruptFrames))
}

// Health is the liveness view /healthz serves: where the shared broadcast
// clock stands in the cycle, what generation is on the air, and how many
// receivers are tuned in.
type Health struct {
	Generation    uint32  `json:"generation"`
	CycleLen      int     `json:"cycle_len"`
	CurrentSlot   int     `json:"current_slot"`
	CycleProgress float64 `json:"cycle_progress"` // position in cycle, [0, 1)
	ConnsActive   int64   `json:"conns_active"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Closed        bool    `json:"closed"`
}

// Health reports the server's current liveness view.
func (s *Server) Health() Health {
	lp := s.cur.Load()
	cycle := lp.prog.Sched.CycleLen()
	slot := s.currentSlot()
	return Health{
		Generation:    lp.gen,
		CycleLen:      cycle,
		CurrentSlot:   slot,
		CycleProgress: float64(slot%cycle) / float64(cycle),
		ConnsActive:   s.metrics.ConnsActive.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Closed:        s.closed.Load(),
	}
}
