package stream

import (
	"bufio"
	"encoding/binary"
	"sync"

	"airindex/internal/channel"
)

// The broadcast content is periodic: apart from the absolute slot number in
// the header, the frame transmitted at slot s is identical to the frame at
// slot s % cycleLen. renderedCycle exploits that by rendering every frame
// of one cycle exactly once — header template (slot field zero-adjusted at
// transmit time), payload bytes, and payload CRC — so the per-frame work of
// the serving hot path collapses to "patch 4 bytes, write two slices".
// The table is immutable after renderCycle returns and is shared read-only
// by every connection goroutine.

// renderedFrame is one precomputed slot of the cycle.
type renderedFrame struct {
	hdr     [headerSize]byte // marshaled header with Slot = cycle offset
	payload []byte           // shared read-only payload bytes (CRC already in hdr)
}

// renderedCycle is the slot -> frame table for one Program.
type renderedCycle struct {
	frames    []renderedFrame
	frameSize int // headerSize + capacity
}

func (rc *renderedCycle) cycleLen() int { return len(rc.frames) }

// sizeBytes reports the memory the rendered table pins, for startup logs.
func (rc *renderedCycle) sizeBytes() int { return len(rc.frames) * rc.frameSize }

// renderCycle renders every slot of one broadcast cycle through the same
// frameAt + marshalFrame pipeline the per-frame path used, guaranteeing
// byte-identical wire output (pinned by TestRenderedCycleMatchesFrameAt).
func renderCycle(p *Program) (*renderedCycle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cycle := p.Sched.CycleLen()
	rc := &renderedCycle{
		frames:    make([]renderedFrame, cycle),
		frameSize: headerSize + p.Capacity,
	}
	for pos := 0; pos < cycle; pos++ {
		h, payload := p.frameAt(pos)
		h.CRC = Checksum(payload)
		buf, err := marshalFrame(h, payload)
		if err != nil {
			return nil, err
		}
		f := &rc.frames[pos]
		copy(f.hdr[:], buf[:headerSize])
		f.payload = buf[headerSize:]
	}
	return rc, nil
}

// framePool holds full-frame scratch buffers for the copy-on-corrupt path:
// the fault middleware mutates frame bytes in place (bit corruption), so a
// connection with a fault channel must copy the shared rendered frame into
// private scratch before handing it over. Perfect-channel connections never
// touch the pool.
var framePool = sync.Pool{
	New: func() any { return new([]byte) },
}

// transmitter is one connection's view of the rendered broadcast: the
// shared frame table, the connection's optional fault channel, the metrics
// sink frame outcomes are counted into, and a persistent header scratch so
// the perfect-channel path allocates nothing per frame.
type transmitter struct {
	rc  *renderedCycle
	ch  *channel.Channel
	m   *Metrics
	hdr [headerSize]byte
}

// transmitter builds the per-connection transmit state, rendering the
// cycle on first use. m may be nil (a private, unread metrics set is
// allocated), so the hot path never branches on instrumentation.
func (p *Program) transmitter(ch *channel.Channel, m *Metrics) (*transmitter, error) {
	rc, err := p.Rendered()
	if err != nil {
		return nil, err
	}
	if m == nil {
		m = NewMetrics()
	}
	return &transmitter{rc: rc, ch: ch, m: m}, nil
}

// transmitSlot writes the frame whose content sits at cycle position rel,
// stamped with the absolute slot number abs and the program generation gen
// (both header patches; the payload CRC is unaffected). abs and rel differ
// once a hot swap has replaced the program mid-connection: slot numbering
// runs on uninterrupted while content restarts at the new cycle's origin.
// The perfect-channel path patches the connection's header scratch and
// writes the shared payload without copying or allocating; the fault path
// assembles the frame in pooled scratch (the middleware may flip payload
// bits), forwards it through the channel, and writes it unless dropped. A
// dropped frame writes nothing: its slot elapses silently and the next
// frame's slot number reveals the gap to the receiver.
func (t *transmitter) transmitSlot(w *bufio.Writer, abs, rel int, gen uint32) error {
	f := &t.rc.frames[rel%len(t.rc.frames)]
	if t.ch == nil {
		copy(t.hdr[:], f.hdr[:])
		binary.LittleEndian.PutUint32(t.hdr[4:], uint32(abs))
		binary.LittleEndian.PutUint32(t.hdr[16:], gen)
		if _, err := w.Write(t.hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
		t.m.FramesWritten.Inc()
		t.m.BytesWritten.Add(int64(headerSize + len(f.payload)))
		return nil
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], f.hdr[:]...)
	buf = append(buf, f.payload...)
	binary.LittleEndian.PutUint32(buf[4:], uint32(abs))
	binary.LittleEndian.PutUint32(buf[16:], gen)
	var err error
	switch t.ch.TransmitFault(buf, headerSize) {
	case channel.Drop:
		t.m.FramesDropped.Inc()
	case channel.Corrupt:
		t.m.FramesCorrupted.Inc()
		fallthrough
	default:
		if _, err = w.Write(buf); err == nil {
			t.m.FramesWritten.Inc()
			t.m.BytesWritten.Add(int64(len(buf)))
		}
	}
	*bp = buf
	framePool.Put(bp)
	return err
}
