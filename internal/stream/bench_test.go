package stream

import (
	"bufio"
	"io"
	"testing"

	"airindex/internal/channel"
	"airindex/internal/testutil"
)

func benchProgram(b *testing.B, n, capacity int) *Program {
	b.Helper()
	sub, _ := testutil.RandomVoronoi(b, n, int64(n)*7+3)
	prog, err := NewDTreeProgram(sub, capacity, 0)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkTransmitHotPath measures the per-frame cost of the transmit hot
// path exactly as the live server runs it: no fault middleware, shared
// server metrics attached — every frame outcome is counted. bytes/op is
// the wire rate; allocs/op must be 0 (instrumentation is atomic adds into
// pre-resolved counters; TestTransmitHotPathZeroAlloc enforces the same
// contract as a hard test failure).
func BenchmarkTransmitHotPath(b *testing.B) {
	prog := benchProgram(b, 200, 256)
	m := NewMetrics()
	tx, err := prog.transmitter(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	bw := bufio.NewWriterSize(io.Discard, txBufSize)
	b.SetBytes(int64(headerSize + prog.Capacity))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.transmitSlot(bw, i, i, 1); err != nil {
			b.Fatal(err)
		}
	}
	bw.Flush() //nolint:errcheck
	if got := m.FramesWritten.Load(); got != int64(b.N) {
		b.Fatalf("metrics counted %d frames, wrote %d", got, b.N)
	}
}

// TestTransmitHotPathZeroAlloc pins the zero-allocation contract of the
// instrumented transmit path: with metrics enabled, transmitting a frame
// on the perfect-channel path allocates nothing.
func TestTransmitHotPathZeroAlloc(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 200, 1403)
	prog, err := NewDTreeProgram(sub, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	tx, err := prog.transmitter(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(io.Discard, txBufSize)
	slot := 0
	allocs := testing.AllocsPerRun(2000, func() {
		if err := tx.transmitSlot(bw, slot, slot, 1); err != nil {
			t.Fatal(err)
		}
		slot++
	})
	if allocs != 0 {
		t.Fatalf("instrumented transmit hot path allocates %.1f times per frame, want 0", allocs)
	}
	if m.FramesWritten.Load() == 0 || m.BytesWritten.Load() == 0 {
		t.Fatal("metrics did not count the transmitted frames")
	}
}

// BenchmarkTransmitPerfectChannel measures the per-frame cost of the
// transmit hot path with no fault middleware — the path every connection
// of the live server runs for every slot. bytes/op is the wire rate;
// allocs/op is the regression guard (0 with the rendered-cycle cache).
func BenchmarkTransmitPerfectChannel(b *testing.B) {
	prog := benchProgram(b, 200, 256)
	tx, err := prog.transmitter(nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	bw := bufio.NewWriterSize(io.Discard, txBufSize)
	b.SetBytes(int64(headerSize + prog.Capacity))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.transmitSlot(bw, i, i, 1); err != nil {
			b.Fatal(err)
		}
	}
	bw.Flush() //nolint:errcheck
}

// BenchmarkTransmitLossyChannel measures the copy-on-corrupt path: every
// frame is copied into pooled scratch so the fault middleware can mutate
// bytes without touching the shared rendered cycle.
func BenchmarkTransmitLossyChannel(b *testing.B) {
	prog := benchProgram(b, 200, 256)
	spec := channel.Spec{Loss: 0.05, Burst: 4, Corrupt: 0.01, Seed: 1}
	stats := &channel.Stats{}
	tx, err := prog.transmitter(spec.Factory(stats)(), nil)
	if err != nil {
		b.Fatal(err)
	}
	bw := bufio.NewWriterSize(io.Discard, txBufSize)
	b.SetBytes(int64(headerSize + prog.Capacity))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.transmitSlot(bw, i, i, 1); err != nil {
			b.Fatal(err)
		}
	}
	bw.Flush() //nolint:errcheck
}

// BenchmarkRenderCycle measures the one-time cost of rendering a full
// broadcast cycle (the table the zero-allocation path serves from).
func BenchmarkRenderCycle(b *testing.B) {
	prog := benchProgram(b, 200, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc, err := renderCycle(prog)
		if err != nil {
			b.Fatal(err)
		}
		if rc.cycleLen() == 0 {
			b.Fatal("empty cycle")
		}
	}
}
