package stream

import (
	"encoding/binary"
	"fmt"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// NewDTreeProgram assembles a complete broadcast program for a subdivision:
// a paged and encoded D-tree, a (1, m) schedule (optimal m when m <= 0),
// and synthetic data payloads whose first bytes identify the bucket (so
// clients and tests can verify what they downloaded).
func NewDTreeProgram(sub *region.Subdivision, capacity, m int) (*Program, error) {
	tree, err := core.Build(sub)
	if err != nil {
		return nil, err
	}
	params := wire.DTreeParams(capacity)
	paged, err := tree.Page(params)
	if err != nil {
		return nil, err
	}
	packets, err := paged.EncodePackets()
	if err != nil {
		return nil, err
	}
	if len(packets) == 0 {
		return nil, fmt.Errorf("stream: subdivision of %d regions produced an empty index", sub.N())
	}
	bucketPackets := params.DataBucketPackets()
	if bucketPackets > MaxBucketPackets {
		return nil, fmt.Errorf("stream: capacity %d splits each %d B data instance into %d packets, beyond the wire format's %d-packet bucket limit",
			capacity, params.DataInstanceSize, bucketPackets, MaxBucketPackets)
	}
	if m <= 0 {
		m = broadcast.OptimalM(len(packets), sub.N()*bucketPackets)
	}
	sched, err := broadcast.NewSchedule(len(packets), sub.N(), bucketPackets, m)
	if err != nil {
		return nil, err
	}
	return &Program{
		Capacity:     capacity,
		IndexPackets: packets,
		Sched:        sched,
		Data:         BucketStamp(capacity),
	}, nil
}

// BucketStamp returns a payload generator that stamps every data packet
// with its bucket id and packet number, for end-to-end verification.
func BucketStamp(capacity int) func(bucket, pkt int) []byte {
	return func(bucket, pkt int) []byte {
		payload := make([]byte, capacity)
		binary.LittleEndian.PutUint32(payload[0:], uint32(bucket))
		binary.LittleEndian.PutUint32(payload[4:], uint32(pkt))
		return payload
	}
}

// VerifyStampedData checks a downloaded bucket against BucketStamp.
func VerifyStampedData(data []byte, capacity, bucket int) error {
	if len(data)%capacity != 0 || len(data) == 0 {
		return fmt.Errorf("stream: downloaded %d bytes, not a whole number of %d-byte packets", len(data), capacity)
	}
	for pkt := 0; pkt*capacity < len(data); pkt++ {
		chunk := data[pkt*capacity:]
		if got := int(binary.LittleEndian.Uint32(chunk[0:])); got != bucket {
			return fmt.Errorf("stream: packet %d stamped with bucket %d, want %d", pkt, got, bucket)
		}
		if got := int(binary.LittleEndian.Uint32(chunk[4:])); got != pkt {
			return fmt.Errorf("stream: packet stamped %d, want %d", got, pkt)
		}
	}
	return nil
}
