package stream

import (
	"encoding/binary"
	"fmt"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// CompileDTree builds, pages, flattens and encodes the D-tree for a
// subdivision, returning the broadcast program together with the flat arena
// it was rendered from. The arena is the serving representation: queries run
// over it allocation-free, and its snapshot restores the identical program
// without re-running construction (ProgramFromSnapshot).
func CompileDTree(sub *region.Subdivision, capacity, m int) (*Program, *core.FlatPaged, error) {
	tree, err := core.Build(sub)
	if err != nil {
		return nil, nil, err
	}
	paged, err := tree.Page(wire.DTreeParams(capacity))
	if err != nil {
		return nil, nil, err
	}
	fp := paged.Flatten()
	prog, err := ProgramFromFlat(fp, m)
	if err != nil {
		return nil, nil, err
	}
	return prog, fp, nil
}

// NewDTreeProgram assembles a complete broadcast program for a subdivision:
// a paged and encoded D-tree, a (1, m) schedule (optimal m when m <= 0),
// and synthetic data payloads whose first bytes identify the bucket (so
// clients and tests can verify what they downloaded).
func NewDTreeProgram(sub *region.Subdivision, capacity, m int) (*Program, error) {
	prog, _, err := CompileDTree(sub, capacity, m)
	return prog, err
}

// ProgramFromFlat assembles a broadcast program from a flat paged index —
// the shared tail of a fresh compile and a snapshot restore, so both paths
// put byte-identical cycles on the air.
//
// When the arena carries a region-adjacency table (continuous queries), its
// self-describing appendix packets are prefixed to every index copy: packet
// 0 names the appendix length, the tree root follows right behind, and a
// point-query client skips the appendix with QueryShifted. Arenas without a
// table produce the exact packets they always did.
func ProgramFromFlat(fp *core.FlatPaged, m int) (*Program, error) {
	packets, err := fp.EncodePackets()
	if err != nil {
		return nil, err
	}
	if len(packets) == 0 {
		return nil, fmt.Errorf("stream: subdivision of %d regions produced an empty index", fp.Flat.N)
	}
	if adj := fp.Flat.Adjacency(); adj != nil {
		adjPkts, err := adj.EncodePackets(fp.Params.PacketCapacity)
		if err != nil {
			return nil, err
		}
		packets = append(adjPkts, packets...)
	}
	params := fp.Params
	capacity := params.PacketCapacity
	bucketPackets := params.DataBucketPackets()
	if bucketPackets > MaxBucketPackets {
		return nil, fmt.Errorf("stream: capacity %d splits each %d B data instance into %d packets, beyond the wire format's %d-packet bucket limit",
			capacity, params.DataInstanceSize, bucketPackets, MaxBucketPackets)
	}
	if m <= 0 {
		m = broadcast.OptimalM(len(packets), fp.Flat.N*bucketPackets)
	}
	sched, err := broadcast.NewSchedule(len(packets), fp.Flat.N, bucketPackets, m)
	if err != nil {
		return nil, err
	}
	return &Program{
		Capacity:     capacity,
		IndexPackets: packets,
		Sched:        sched,
		Data:         BucketStamp(capacity),
		stamped:      true,
	}, nil
}

// ProgramFromSnapshot restores a broadcast program from a flat-index
// snapshot slab (core.Snapshot), skipping tree construction and paging
// entirely. The restored program broadcasts cycles byte-identical to those
// of the server that wrote the snapshot.
func ProgramFromSnapshot(data []byte, m int) (*Program, *core.FlatPaged, error) {
	fp, err := core.LoadSnapshot(data)
	if err != nil {
		return nil, nil, err
	}
	prog, err := ProgramFromFlat(fp, m)
	if err != nil {
		return nil, nil, err
	}
	return prog, fp, nil
}

// ProgramFromSnapshotFile is ProgramFromSnapshot over a file.
func ProgramFromSnapshotFile(path string, m int) (*Program, *core.FlatPaged, error) {
	fp, err := core.LoadSnapshotFile(path)
	if err != nil {
		return nil, nil, err
	}
	prog, err := ProgramFromFlat(fp, m)
	if err != nil {
		return nil, nil, err
	}
	return prog, fp, nil
}

// BucketStamp returns a payload generator that stamps every data packet
// with its bucket id and packet number, for end-to-end verification.
func BucketStamp(capacity int) func(bucket, pkt int) []byte {
	return func(bucket, pkt int) []byte {
		payload := make([]byte, capacity)
		binary.LittleEndian.PutUint32(payload[0:], uint32(bucket))
		binary.LittleEndian.PutUint32(payload[4:], uint32(pkt))
		return payload
	}
}

// VerifyStampedData checks a downloaded bucket against BucketStamp.
func VerifyStampedData(data []byte, capacity, bucket int) error {
	if len(data)%capacity != 0 || len(data) == 0 {
		return fmt.Errorf("stream: downloaded %d bytes, not a whole number of %d-byte packets", len(data), capacity)
	}
	for pkt := 0; pkt*capacity < len(data); pkt++ {
		chunk := data[pkt*capacity:]
		if got := int(binary.LittleEndian.Uint32(chunk[0:])); got != bucket {
			return fmt.Errorf("stream: packet %d stamped with bucket %d, want %d", pkt, got, bucket)
		}
		if got := int(binary.LittleEndian.Uint32(chunk[4:])); got != pkt {
			return fmt.Errorf("stream: packet stamped %d, want %d", got, pkt)
		}
	}
	return nil
}
