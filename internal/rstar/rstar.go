// Package rstar implements the R*-tree of Beckmann et al. (SIGMOD 1990) —
// the object-approximation baseline of the paper — including ChooseSubtree
// with overlap-minimizing leaf choice, the margin-driven split axis
// selection, and forced reinsertion. On top of the disk-style tree it
// provides the paper's air adaptation (Section 3.2): an added bottom layer
// holding the exact region shapes, a depth-first broadcast layout with the
// shape nodes inlined after their leaves, and a packet-counting point
// search with backtracking.
package rstar

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
)

// Entry is a bounding rectangle plus either a child node (internal levels)
// or a data item id (leaf level).
type Entry struct {
	Rect  geom.Rect
	Child *node
	Data  int
}

type node struct {
	level   int // 0 at the leaf level
	entries []Entry
}

func (n *node) isLeaf() bool { return n.level == 0 }

func (n *node) rect() geom.Rect {
	r := geom.EmptyRect()
	for _, e := range n.entries {
		r = r.Union(e.Rect)
	}
	return r
}

// Tree is an R*-tree with fan-out in [MinEntries, MaxEntries].
type Tree struct {
	root *node
	max  int
	min  int
	size int

	// reinsertedAt tracks, per level, whether forced reinsertion already ran
	// during the current insertion (R* invokes it at most once per level).
	reinsertedAt map[int]bool
}

// reinsertFraction is the share of entries evicted by forced reinsertion
// (the p = 30% recommended by the R*-tree paper).
const reinsertFraction = 0.3

// New creates an empty R*-tree. maxEntries must be at least 2; minEntries
// defaults to 40% of maxEntries when non-positive.
func New(maxEntries, minEntries int) (*Tree, error) {
	if maxEntries < 2 {
		return nil, fmt.Errorf("rstar: max entries %d must be >= 2", maxEntries)
	}
	if minEntries <= 0 {
		minEntries = maxEntries * 2 / 5
	}
	if minEntries < 1 {
		minEntries = 1
	}
	if minEntries > maxEntries/2 {
		minEntries = maxEntries / 2
	}
	if minEntries < 1 {
		minEntries = 1
	}
	return &Tree{
		root: &node{level: 0},
		max:  maxEntries,
		min:  minEntries,
	}, nil
}

// Len returns the number of data entries in the tree.
func (t *Tree) Len() int { return t.size }

// MaxEntries returns the node fan-out limit.
func (t *Tree) MaxEntries() int { return t.max }

// MinEntries returns the minimum node fill.
func (t *Tree) MinEntries() int { return t.min }

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() int { return t.root.level + 1 }

// Insert adds a data rectangle.
func (t *Tree) Insert(r geom.Rect, data int) {
	t.reinsertedAt = map[int]bool{}
	t.insertAtLevel(Entry{Rect: r, Data: data}, 0)
	t.size++
}

// insertAtLevel inserts an entry so that it ends up in a node of the given
// level (0 = leaf; higher for subtree reinsertion after splits/deletes).
func (t *Tree) insertAtLevel(e Entry, level int) {
	n, path := t.chooseSubtree(e.Rect, level)
	n.entries = append(n.entries, e)
	t.refreshRects(path) // enlarge ancestor covering rectangles
	t.handleOverflow(n, path)
}

// chooseSubtree descends from the root to a node at the target level,
// returning it and the path of ancestors (root first).
func (t *Tree) chooseSubtree(r geom.Rect, level int) (*node, []*node) {
	var path []*node
	n := t.root
	for n.level > level {
		path = append(path, n)
		n = n.entries[t.pickChild(n, r)].Child
	}
	return n, path
}

// pickChild implements R* ChooseSubtree: when the children are leaves,
// minimize overlap enlargement (ties: area enlargement, then area);
// otherwise minimize area enlargement (ties: area).
func (t *Tree) pickChild(n *node, r geom.Rect) int {
	best := -1
	var bestOverlap, bestEnlarge, bestArea float64
	childrenAreLeaves := n.level == 1
	for i, e := range n.entries {
		enlarged := e.Rect.Union(r)
		enlarge := enlarged.Area() - e.Rect.Area()
		area := e.Rect.Area()
		overlap := 0.0
		if childrenAreLeaves {
			for j, o := range n.entries {
				if j == i {
					continue
				}
				overlap += enlarged.OverlapArea(o.Rect) - e.Rect.OverlapArea(o.Rect)
			}
		}
		better := false
		switch {
		case best == -1:
			better = true
		case childrenAreLeaves && overlap != bestOverlap:
			better = overlap < bestOverlap
		case enlarge != bestEnlarge:
			better = enlarge < bestEnlarge
		default:
			better = area < bestArea
		}
		if better {
			best, bestOverlap, bestEnlarge, bestArea = i, overlap, enlarge, area
		}
	}
	return best
}

// handleOverflow applies R* overflow treatment along the path bottom-up.
func (t *Tree) handleOverflow(n *node, path []*node) {
	for {
		if len(n.entries) <= t.max {
			return
		}
		if n != t.root && !t.reinsertedAt[n.level] {
			t.reinsertedAt[n.level] = true
			t.reinsert(n)
			return
		}
		left, right := t.split(n)
		if n == t.root {
			t.root = &node{
				level: n.level + 1,
				entries: []Entry{
					{Rect: left.rect(), Child: left},
					{Rect: right.rect(), Child: right},
				},
			}
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		for i := range parent.entries {
			if parent.entries[i].Child == n {
				parent.entries[i] = Entry{Rect: left.rect(), Child: left}
				break
			}
		}
		parent.entries = append(parent.entries, Entry{Rect: right.rect(), Child: right})
		t.refreshRects(path)
		n = parent
	}
}

// refreshRects recomputes the covering rectangles along an ancestor path.
func (t *Tree) refreshRects(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		for j := range n.entries {
			if n.entries[j].Child != nil {
				n.entries[j].Rect = n.entries[j].Child.rect()
			}
		}
	}
}

// reinsert evicts the p% entries whose centers lie farthest from the node's
// center and re-inserts them (far-first), tightening the node.
func (t *Tree) reinsert(n *node) {
	c := n.rect().Center()
	sort.SliceStable(n.entries, func(i, j int) bool {
		return n.entries[i].Rect.Center().Dist2(c) > n.entries[j].Rect.Center().Dist2(c)
	})
	p := int(math.Ceil(reinsertFraction * float64(len(n.entries))))
	if p < 1 {
		p = 1
	}
	evicted := make([]Entry, p)
	copy(evicted, n.entries[:p])
	n.entries = append(n.entries[:0], n.entries[p:]...)
	t.fixParentRects()
	for _, e := range evicted {
		t.insertAtLevel(e, n.level)
	}
}

// fixParentRects recomputes every covering rectangle in the tree. Forced
// reinsertion mutates a node reached through an arbitrary path, so a full
// refresh is the simplest way to keep ancestors tight; trees here are small
// (thousands of entries), making the O(tree) sweep irrelevant.
func (t *Tree) fixParentRects() {
	var fix func(n *node) geom.Rect
	fix = func(n *node) geom.Rect {
		r := geom.EmptyRect()
		for i := range n.entries {
			if n.entries[i].Child != nil {
				n.entries[i].Rect = fix(n.entries[i].Child)
			}
			r = r.Union(n.entries[i].Rect)
		}
		return r
	}
	fix(t.root)
}

// split implements the R* topological split: choose the axis minimizing the
// sum of distribution margins, then the distribution with minimal overlap
// (ties: minimal combined area).
func (t *Tree) split(n *node) (*node, *node) {
	type sortKey struct {
		byMin bool
		x     bool
	}
	bestAxis := sortKey{}
	bestMargin := math.Inf(1)
	margins := func(es []Entry) float64 {
		var sum float64
		for k := t.min; k <= len(es)-t.min; k++ {
			l, r := groupRects(es, k)
			sum += l.Margin() + r.Margin()
		}
		return sum
	}
	for _, key := range []sortKey{{true, true}, {false, true}, {true, false}, {false, false}} {
		es := sortedEntries(n.entries, key.x, key.byMin)
		if m := margins(es); m < bestMargin {
			bestMargin, bestAxis = m, key
		}
	}
	es := sortedEntries(n.entries, bestAxis.x, bestAxis.byMin)
	bestK := -1
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for k := t.min; k <= len(es)-t.min; k++ {
		l, r := groupRects(es, k)
		ov := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	left := &node{level: n.level, entries: append([]Entry(nil), es[:bestK]...)}
	right := &node{level: n.level, entries: append([]Entry(nil), es[bestK:]...)}
	return left, right
}

func sortedEntries(entries []Entry, x, byMin bool) []Entry {
	es := append([]Entry(nil), entries...)
	key := func(e Entry) float64 {
		switch {
		case x && byMin:
			return e.Rect.MinX
		case x:
			return e.Rect.MaxX
		case byMin:
			return e.Rect.MinY
		default:
			return e.Rect.MaxY
		}
	}
	sort.SliceStable(es, func(i, j int) bool { return key(es[i]) < key(es[j]) })
	return es
}

func groupRects(es []Entry, k int) (geom.Rect, geom.Rect) {
	l, r := geom.EmptyRect(), geom.EmptyRect()
	for i, e := range es {
		if i < k {
			l = l.Union(e.Rect)
		} else {
			r = r.Union(e.Rect)
		}
	}
	return l, r
}
