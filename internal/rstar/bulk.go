package rstar

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/region"
	"airindex/internal/wire"
)

// BulkLoadSTR builds a packed R-tree with the Sort-Tile-Recursive algorithm
// (Leutenegger et al., ICDE 1997): entries are sorted by center x, cut into
// vertical slices of ~sqrt(n/M) tiles, each slice sorted by center y and
// packed into full nodes. STR trees have near-minimal directory overlap, so
// they bound how much of the R*-tree baseline's tuning cost is construction
// quality rather than the approximation approach itself.
func BulkLoadSTR(items []Entry, maxEntries int) (*Tree, error) {
	if maxEntries < 2 {
		return nil, fmt.Errorf("rstar: max entries %d must be >= 2", maxEntries)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("rstar: nothing to bulk load")
	}
	t, err := New(maxEntries, 0)
	if err != nil {
		return nil, err
	}
	level := 0
	entries := append([]Entry(nil), items...)
	for len(entries) > maxEntries {
		nodes := packLevel(entries, maxEntries, level)
		entries = entries[:0]
		for _, n := range nodes {
			entries = append(entries, Entry{Rect: n.rect(), Child: n})
		}
		level++
	}
	t.root = &node{level: level, entries: entries}
	t.size = len(items)
	return t, nil
}

// packLevel groups entries into nodes of up to m entries using STR tiling.
func packLevel(entries []Entry, m, level int) []*node {
	n := len(entries)
	nodeCount := (n + m - 1) / m
	slices := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlice := slices * m

	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Rect.Center().X < entries[j].Rect.Center().X
	})
	var out []*node
	for s := 0; s < n; s += perSlice {
		end := min(s+perSlice, n)
		slice := entries[s:end]
		sort.SliceStable(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += m {
			e := min(o+m, len(slice))
			nd := &node{level: level, entries: append([]Entry(nil), slice[o:e]...)}
			out = append(out, nd)
		}
	}
	return out
}

// OverlapFactor measures directory quality: the average, over leaf entries,
// of how many same-level sibling rectangles overlap each entry's rectangle.
// Lower is better; it predicts the number of subtrees a point query visits.
func (t *Tree) OverlapFactor() float64 {
	var sum float64
	var count int
	var walk func(n *node)
	walk = func(n *node) {
		for i, e := range n.entries {
			for j, o := range n.entries {
				if i != j && e.Rect.Intersects(o.Rect) {
					sum++
				}
			}
			count++
			if e.Child != nil {
				walk(e.Child)
			}
		}
	}
	walk(t.root)
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// BuildAirSTR is BuildAir with STR bulk loading instead of one-by-one R*
// insertion (construction-quality ablation for the baseline).
func BuildAirSTR(sub *region.Subdivision, params wire.Params) (*AirIndex, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	capacity := NodeCapacity(params)
	if capacity < 2 {
		return nil, fmt.Errorf("rstar: packet capacity %d holds %d entries (< 2)", params.PacketCapacity, capacity)
	}
	items := make([]Entry, sub.N())
	for i := range items {
		items[i] = Entry{Rect: sub.Regions[i].Bounds(), Data: i}
	}
	t, err := BulkLoadSTR(items, capacity)
	if err != nil {
		return nil, err
	}
	a := &AirIndex{
		Tree:         t,
		Sub:          sub,
		Params:       params,
		nodePacket:   make(map[*node]int),
		shapePackets: make([][]int, sub.N()),
	}
	a.layout()
	return a, nil
}
