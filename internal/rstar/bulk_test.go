package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

func TestBulkLoadSTRStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, n := range []int{1, 5, 50, 500} {
		items := make([]Entry, n)
		for i := range items {
			items[i] = Entry{Rect: randRect(rng), Data: i}
		}
		tr, err := BulkLoadSTR(items, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		// Structural sanity: uniform leaf depth, covering rects tight,
		// packed nodes within capacity (STR may underfill the min bound,
		// so CheckInvariants' min-fill check does not apply to the tail
		// nodes; check the rest manually).
		var walk func(nd *node) error
		walk = func(nd *node) error {
			if len(nd.entries) > 8 {
				t.Fatalf("node with %d entries", len(nd.entries))
			}
			for _, e := range nd.entries {
				if nd.isLeaf() {
					continue
				}
				if e.Child.level != nd.level-1 {
					t.Fatal("level gap")
				}
				if !rectsAlmostEqual(e.Rect, e.Child.rect()) {
					t.Fatal("stale covering rect")
				}
				if err := walk(e.Child); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(tr.root); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBulkLoadSTRSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	items := make([]Entry, 400)
	rects := make([]geom.Rect, 400)
	for i := range items {
		rects[i] = randRect(rng)
		items[i] = Entry{Rect: rects[i], Data: i}
	}
	tr, err := BulkLoadSTR(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 800; q++ {
		p := geom.Pt(rng.Float64()*1100, rng.Float64()*1100)
		got := tr.SearchPoint(p)
		sort.Ints(got)
		var want []int
		for i, r := range rects {
			if r.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %v: got %v want %v", p, got, want)
		}
	}
}

func TestSTRHasLessOverlapThanDynamic(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 400, 203)
	params := wire.RStarParams(256)
	dyn, err := BuildAir(sub, params)
	if err != nil {
		t.Fatal(err)
	}
	str, err := BuildAirSTR(sub, params)
	if err != nil {
		t.Fatal(err)
	}
	do, so := dyn.Tree.OverlapFactor(), str.Tree.OverlapFactor()
	t.Logf("overlap factor: dynamic R* %.3f, STR %.3f", do, so)
	if so > do*1.5 {
		t.Errorf("STR overlap %.3f much worse than dynamic %.3f", so, do)
	}
	// Both must answer correctly.
	rng := rand.New(rand.NewSource(204))
	for i := 0; i < 2000; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got, trace := str.Locate(p)
		if got < 0 || !sub.Regions[got].Poly.Contains(p) {
			t.Fatalf("STR air query %v: region %d", p, got)
		}
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	if _, err := BulkLoadSTR(nil, 8); err == nil {
		t.Error("empty bulk load should fail")
	}
	if _, err := BulkLoadSTR([]Entry{{}}, 1); err == nil {
		t.Error("max entries 1 should fail")
	}
}

func TestSectionedLayoutCorrectAndCostlier(t *testing.T) {
	sub, _ := testutil.RandomVoronoi(t, 250, 205)
	params := wire.RStarParams(256)
	inline, err := BuildAir(sub, params)
	if err != nil {
		t.Fatal(err)
	}
	sectioned, err := BuildAirSectioned(sub, params)
	if err != nil {
		t.Fatal(err)
	}
	// Global greedy packing of the shape section saves the per-leaf
	// packing slack, so the sectioned layout is never larger.
	if sectioned.IndexPackets() > inline.IndexPackets() {
		t.Errorf("sectioned %d packets larger than inline %d", sectioned.IndexPackets(), inline.IndexPackets())
	}
	rng := rand.New(rand.NewSource(206))
	var inlineReads, sectionedReads float64
	const q = 4000
	for i := 0; i < q; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		gi, ti := inline.Locate(p)
		gs, ts := sectioned.Locate(p)
		if gi < 0 || gs < 0 {
			t.Fatalf("unresolved query %v", p)
		}
		if gi != gs && !sub.Regions[gs].Poly.Contains(p) {
			t.Fatalf("sectioned answered %d, inline %d at %v", gs, gi, p)
		}
		inlineReads += float64(len(ti))
		sectionedReads += float64(len(ts))
		// The sectioned trace must be forward-monotone on the channel.
		for j := 1; j < len(ts); j++ {
			if ts[j] <= ts[j-1] {
				t.Fatalf("sectioned trace not monotone: %v", ts)
			}
		}
	}
	inlineReads /= q
	sectionedReads /= q
	t.Logf("avg tuning: inline %.2f, sectioned %.2f", inlineReads, sectionedReads)
	if sectionedReads <= inlineReads {
		t.Errorf("sectioned layout (%.2f) should cost more than inline (%.2f)", sectionedReads, inlineReads)
	}
}
