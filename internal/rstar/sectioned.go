package rstar

import (
	"fmt"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// BuildAirSectioned is the alternative air layout for the R*-tree in which
// the added shape layer forms its own section after the whole tree (shape
// nodes greedily packed in leaf order) instead of being inlined behind each
// leaf. The client can then no longer test a candidate's exact shape the
// moment it meets the leaf: it must finish exploring every candidate
// subtree first (all tree reads stay forward on the channel) and only then
// fetch candidate shapes, in section order, until one contains the query
// point. This is the natural reading of the paper's description ("the added
// layer ... is also paged in a greedy manner"). Measured over Voronoi
// scopes it costs mildly more tuning than BuildAir's inlined variant (the
// stronger baseline used in the reproduction) while packing the shape
// section slightly tighter.
func BuildAirSectioned(sub *region.Subdivision, params wire.Params) (*AirIndex, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	capacity := NodeCapacity(params)
	if capacity < 2 {
		return nil, fmt.Errorf("rstar: packet capacity %d holds %d entries (< 2)", params.PacketCapacity, capacity)
	}
	t, err := New(capacity, 0)
	if err != nil {
		return nil, err
	}
	for i := range sub.Regions {
		t.Insert(sub.Regions[i].Bounds(), i)
	}
	a := &AirIndex{
		Tree:         t,
		Sub:          sub,
		Params:       params,
		nodePacket:   make(map[*node]int),
		shapePackets: make([][]int, sub.N()),
		sectioned:    true,
	}
	a.layoutSectioned()
	return a, nil
}

// layoutSectioned assigns packets: the tree depth-first (one packet per
// node), then the shape section packed greedily in leaf order.
func (a *AirIndex) layoutSectioned() {
	next := 0
	var leafOrder []int
	var walk func(n *node)
	walk = func(n *node) {
		a.nodePacket[n] = next
		a.occupied = append(a.occupied, a.Params.BidSize+len(n.entries)*EntrySize(a.Params))
		next++
		for _, e := range n.entries {
			if n.isLeaf() {
				leafOrder = append(leafOrder, e.Data)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(a.Tree.root)

	specs := make([]wire.NodeSpec, 0, len(leafOrder))
	for _, data := range leafOrder {
		specs = append(specs, wire.NodeSpec{
			ID:   data,
			Size: shapeNodeSize(a.Params, a.Sub.Regions[data].Poly),
			Leaf: true,
		})
	}
	lay, err := wire.Greedy(specs, a.Params.PacketCapacity)
	if err != nil {
		panic(fmt.Sprintf("rstar: sectioned shape layout: %v", err)) // sizes positive by construction
	}
	for _, data := range leafOrder {
		pks := lay.PacketsOf(data)
		shifted := make([]int, len(pks))
		for i, pk := range pks {
			shifted[i] = next + int(pk)
		}
		a.shapePackets[data] = shifted
	}
	a.occupied = append(a.occupied, lay.Occupied...)
	a.packetCount = next + lay.PacketCount
}

// locateSectioned answers a point query under the sectioned layout: gather
// every candidate across the tree (reading each candidate node's packet),
// then test candidate shapes in section order until a hit.
func (a *AirIndex) locateSectioned(p geom.Point) (int, []int) {
	seen := make(map[int]bool, 8)
	var trace []int
	read := func(pk int) {
		if !seen[pk] {
			seen[pk] = true
			trace = append(trace, pk)
		}
	}
	var candidates []int
	var walk func(n *node)
	walk = func(n *node) {
		read(a.nodePacket[n])
		for _, e := range n.entries {
			if !e.Rect.Contains(p) {
				continue
			}
			if n.isLeaf() {
				candidates = append(candidates, e.Data)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(a.Tree.root)

	// Shapes arrive in section order; sort candidates by their first shape
	// packet so the scan is forward on the channel.
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if a.shapePackets[candidates[j]][0] < a.shapePackets[candidates[i]][0] {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			}
		}
	}
	for _, data := range candidates {
		for _, pk := range a.shapePackets[data] {
			read(pk)
		}
		if a.Sub.Regions[data].Poly.Contains(p) {
			return data, trace
		}
	}
	return -1, trace
}
