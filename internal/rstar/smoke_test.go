package rstar

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

func TestSmokeRStarAir(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	sites := make([]geom.Point, 100)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	sub, err := voronoi.Subdivision(area, sites)
	if err != nil {
		t.Fatalf("voronoi: %v", err)
	}
	for _, capacity := range []int{64, 256, 2048} {
		a, err := BuildAir(sub, wire.RStarParams(capacity))
		if err != nil {
			t.Fatalf("build air %d: %v", capacity, err)
		}
		if err := a.Tree.CheckInvariants(); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		sumTrace := 0
		for i := 0; i < 3000; i++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			got, trace := a.Locate(p)
			want := sub.Locate(p)
			if got != want && (got < 0 || !sub.Regions[got].Poly.Contains(p)) {
				t.Fatalf("capacity %d query %v: got %d want %d", capacity, p, got, want)
			}
			sumTrace += len(trace)
		}
		t.Logf("capacity=%d packets=%d avgTrace=%.2f height=%d", capacity, a.IndexPackets(), float64(sumTrace)/3000, a.Tree.Height())
	}
}
