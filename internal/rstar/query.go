package rstar

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
)

// SearchPoint returns the data ids of all entries whose rectangles contain
// p, in depth-first entry order.
func (t *Tree) SearchPoint(p geom.Point) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.Rect.Contains(p) {
				continue
			}
			if n.isLeaf() {
				out = append(out, e.Data)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(t.root)
	return out
}

// SearchRect returns the data ids of all entries whose rectangles intersect
// the window, in depth-first entry order.
func (t *Tree) SearchRect(w geom.Rect) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.Rect.Intersects(w) {
				continue
			}
			if n.isLeaf() {
				out = append(out, e.Data)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(t.root)
	return out
}

// minDist2 returns the squared distance from p to the rectangle (0 when
// inside).
func minDist2(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return dx*dx + dy*dy
}

type nnItem struct {
	dist2 float64
	entry Entry
	leaf  bool
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist2 < h[j].dist2 }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestNeighbors returns the ids of the k data rectangles nearest to p
// (by rectangle distance), best-first.
func (t *Tree) NearestNeighbors(p geom.Point, k int) []int {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &nnHeap{}
	for _, e := range t.root.entries {
		heap.Push(h, nnItem{minDist2(p, e.Rect), e, t.root.isLeaf()})
	}
	var out []int
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(nnItem)
		if it.leaf {
			out = append(out, it.entry.Data)
			continue
		}
		child := it.entry.Child
		for _, e := range child.entries {
			heap.Push(h, nnItem{minDist2(p, e.Rect), e, child.isLeaf()})
		}
	}
	return out
}

// KNNSites returns the ids of the k entries whose *sites* are nearest to p,
// ordered deterministically by (site distance², id). site maps an entry's
// data id to its generating point, which must lie inside the entry's
// rectangle so the MBR distance stays a valid lower bound. Unlike
// NearestNeighbors (rectangle distance, heap-order ties), this is an exact
// oracle for the broadcast adjacency walk: equal-distance ties break by id.
func (t *Tree) KNNSites(p geom.Point, k int, site func(int) geom.Point) []int {
	if k <= 0 || t.size == 0 {
		return nil
	}
	if k > t.size {
		k = t.size
	}
	h := &nnHeap{}
	push := func(n *node) {
		for _, e := range n.entries {
			if n.isLeaf() {
				heap.Push(h, nnItem{p.Dist2(site(e.Data)), e, true})
			} else {
				heap.Push(h, nnItem{minDist2(p, e.Rect), e, false})
			}
		}
	}
	push(t.root)
	type cand struct {
		dist2 float64
		id    int
	}
	var cands []cand
	// best holds the k smallest site distances seen, ascending; traversal
	// stops when the heap's lower bound is strictly beyond best[k-1], and
	// ties at the bound keep flowing so they can lose on id afterwards.
	best := make([]float64, 0, k)
	for h.Len() > 0 {
		it := heap.Pop(h).(nnItem)
		if len(best) == k && it.dist2 > best[k-1] {
			break
		}
		if !it.leaf {
			push(it.entry.Child)
			continue
		}
		cands = append(cands, cand{it.dist2, it.entry.Data})
		if pos := sort.SearchFloat64s(best, it.dist2); pos < k {
			if len(best) < k {
				best = append(best, 0)
			}
			copy(best[pos+1:], best[pos:])
			best[pos] = it.dist2
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist2 != cands[j].dist2 {
			return cands[i].dist2 < cands[j].dist2
		}
		return cands[i].id < cands[j].id
	})
	out := make([]int, 0, k)
	for i := 0; i < len(cands) && i < k; i++ {
		out = append(out, cands[i].id)
	}
	return out
}

// Delete removes the entry with the given rectangle and data id, returning
// whether it was found. Underfull nodes are dissolved and their entries
// reinserted (the classic R-tree CondenseTree).
func (t *Tree) Delete(r geom.Rect, data int) bool {
	var path []*node
	leaf, idx := t.findLeaf(t.root, r, data, &path)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--

	// Condense: walk back up, dissolving underfull nodes.
	type orphan struct {
		entry Entry
		level int
	}
	var orphans []orphan
	n := leaf
	for len(path) > 0 {
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		if len(n.entries) < t.min {
			for i := range parent.entries {
				if parent.entries[i].Child == n {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
		}
		n = parent
	}
	t.fixParentRects()
	for _, o := range orphans {
		t.reinsertedAt = map[int]bool{}
		t.insertAtLevel(o.entry, o.level)
	}
	// Shrink the root while it has a single child.
	for !t.root.isLeaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].Child
	}
	return true
}

func (t *Tree) findLeaf(n *node, r geom.Rect, data int, path *[]*node) (*node, int) {
	if n.isLeaf() {
		for i, e := range n.entries {
			if e.Data == data && e.Rect == r {
				return n, i
			}
		}
		return nil, -1
	}
	*path = append(*path, n)
	for _, e := range n.entries {
		if e.Rect.ContainsRect(r) {
			if leaf, i := t.findLeaf(e.Child, r, data, path); leaf != nil {
				return leaf, i
			}
		}
	}
	*path = (*path)[:len(*path)-1]
	return nil, -1
}

// CheckInvariants verifies structural R-tree properties: fan-out bounds
// (root exempt), covering rectangles tight, uniform leaf depth.
func (t *Tree) CheckInvariants() error {
	if t.size == 0 {
		return nil
	}
	var walk func(n *node) error
	walk = func(n *node) error {
		if n != t.root {
			if len(n.entries) < t.min || len(n.entries) > t.max {
				return fmt.Errorf("rstar: node at level %d has %d entries outside [%d,%d]", n.level, len(n.entries), t.min, t.max)
			}
		} else if len(n.entries) > t.max {
			return fmt.Errorf("rstar: root has %d entries > max %d", len(n.entries), t.max)
		}
		for _, e := range n.entries {
			if n.isLeaf() {
				if e.Child != nil {
					return fmt.Errorf("rstar: leaf entry with child")
				}
				continue
			}
			if e.Child == nil {
				return fmt.Errorf("rstar: internal entry without child")
			}
			if e.Child.level != n.level-1 {
				return fmt.Errorf("rstar: level gap %d -> %d", n.level, e.Child.level)
			}
			got := e.Child.rect()
			if !rectsAlmostEqual(got, e.Rect) {
				return fmt.Errorf("rstar: stale covering rect %+v != %+v", e.Rect, got)
			}
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}

func rectsAlmostEqual(a, b geom.Rect) bool {
	const tol = 1e-9
	return math.Abs(a.MinX-b.MinX) <= tol && math.Abs(a.MinY-b.MinY) <= tol &&
		math.Abs(a.MaxX-b.MaxX) <= tol && math.Abs(a.MaxY-b.MaxY) <= tol
}
