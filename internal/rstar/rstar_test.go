package rstar

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"airindex/internal/geom"
)

func randRect(rng *rand.Rand) geom.Rect {
	x, y := rng.Float64()*1000, rng.Float64()*1000
	return geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*80, MaxY: y + rng.Float64()*80}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Error("max entries 1 should fail")
	}
	tr, err := New(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MinEntries() != 4 {
		t.Errorf("default min = %d, want 40%% of max", tr.MinEntries())
	}
	tr2, _ := New(10, 9)
	if tr2.MinEntries() > 5 {
		t.Errorf("min clamped to %d, want <= max/2", tr2.MinEntries())
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := New(4, 2)
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30},
		{MinX: 5, MinY: 5, MaxX: 15, MaxY: 15},
	}
	for i, r := range rects {
		tr.Insert(r, i)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchPoint(geom.Pt(7, 7))
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("SearchPoint = %v", got)
	}
	if got := tr.SearchPoint(geom.Pt(500, 500)); len(got) != 0 {
		t.Errorf("empty search = %v", got)
	}
}

func TestInvariantsUnderRandomInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, m := range []int{3, 8, 25} {
		tr, _ := New(m, 0)
		for i := 0; i < 500; i++ {
			tr.Insert(randRect(rng), i)
			if i%50 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("M=%d after %d inserts: %v", m, i+1, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("M=%d final: %v", m, err)
		}
		if tr.Len() != 500 {
			t.Fatalf("Len = %d", tr.Len())
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	tr, _ := New(8, 0)
	var rects []geom.Rect
	for i := 0; i < 400; i++ {
		r := randRect(rng)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	for q := 0; q < 1000; q++ {
		p := geom.Pt(rng.Float64()*1100, rng.Float64()*1100)
		got := tr.SearchPoint(p)
		sort.Ints(got)
		var want []int
		for i, r := range rects {
			if r.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %v: got %v want %v", p, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("point %v: got %v want %v", p, got, want)
			}
		}
	}
	// Window queries.
	for q := 0; q < 300; q++ {
		w := randRect(rng)
		got := tr.SearchRect(w)
		sort.Ints(got)
		var want []int
		for i, r := range rects {
			if r.Intersects(w) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("window %v: %d hits, want %d", w, len(got), len(want))
		}
	}
}

func TestNearestNeighborsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr, _ := New(6, 0)
	var rects []geom.Rect
	for i := 0; i < 300; i++ {
		r := randRect(rng)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	for q := 0; q < 200; q++ {
		p := geom.Pt(rng.Float64()*1100, rng.Float64()*1100)
		k := 1 + rng.Intn(10)
		got := tr.NearestNeighbors(p, k)
		if len(got) != k {
			t.Fatalf("kNN returned %d of %d", len(got), k)
		}
		// Compare distances (ids may tie).
		type di struct {
			d  float64
			id int
		}
		all := make([]di, len(rects))
		for i, r := range rects {
			all[i] = di{minDist2(p, r), i}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		for i, id := range got {
			if gd, wd := minDist2(p, rects[id]), all[i].d; gd-wd > 1e-9 && wd-gd > 1e-9 {
				t.Fatalf("kNN[%d] dist %v, want %v", i, gd, wd)
			}
		}
	}
	if got := tr.NearestNeighbors(geom.Pt(0, 0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestDeleteAndCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	tr, _ := New(5, 2)
	var rects []geom.Rect
	for i := 0; i < 200; i++ {
		r := randRect(rng)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	perm := rng.Perm(200)
	for k, i := range perm {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
		if tr.Len() != 200-k-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), k+1)
		}
		if k%20 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
		}
		// The deleted entry must be gone.
		for _, id := range tr.SearchPoint(rects[i].Center()) {
			if id == i {
				t.Fatalf("entry %d still findable after delete", i)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d", tr.Len())
	}
	if tr.Delete(rects[0], 0) {
		t.Error("deleting from empty tree should fail")
	}
}

func TestInsertDeleteInterleavedQuick(t *testing.T) {
	type op struct {
		Insert bool
		Idx    uint8
	}
	rng := rand.New(rand.NewSource(55))
	rects := make([]geom.Rect, 256)
	for i := range rects {
		rects[i] = randRect(rng)
	}
	f := func(ops []op) bool {
		tr, _ := New(4, 2)
		live := map[int]bool{}
		for _, o := range ops {
			i := int(o.Idx)
			if o.Insert && !live[i] {
				tr.Insert(rects[i], i)
				live[i] = true
			} else if !o.Insert && live[i] {
				if !tr.Delete(rects[i], i) {
					return false
				}
				delete(live, i)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
