package rstar

import (
	"fmt"

	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/wire"
)

// AirIndex is the paper's broadcast adaptation of the R*-tree (Section 3.2):
// the tree over region MBRs plus an added bottom layer holding the exact
// region polygons, so containment tests do not require fetching the 1 KB
// data instances. Tree nodes are sized to fit one packet each; the tree is
// broadcast depth-first with each leaf's shape nodes inlined right after it
// (greedily packed), which keeps the backtracking search moving forward on
// the channel.
type AirIndex struct {
	Tree   *Tree
	Sub    *region.Subdivision
	Params wire.Params

	nodePacket   map[*node]int
	shapePackets [][]int // region id -> packet offsets of its shape node
	packetCount  int
	occupied     []int
	sectioned    bool // shape layer trails the tree (BuildAirSectioned)
}

// EntrySize is the wire size of one R*-tree entry: an MBR (4 coordinates)
// plus a child/shape pointer.
func EntrySize(p wire.Params) int { return 4*p.CoordSize + p.PointerSize }

// NodeCapacity returns the maximal entries per node for the packet size.
func NodeCapacity(p wire.Params) int {
	return (p.PacketCapacity - p.BidSize) / EntrySize(p)
}

// shapeNodeSize is the wire size of one added-layer node: the data pointer,
// a vertex count, and the polygon's coordinates.
func shapeNodeSize(p wire.Params, poly geom.Polygon) int {
	return p.PointerSize + 2 + len(poly)*p.PointSize()
}

// BuildAir constructs the R*-tree over the subdivision's region MBRs and
// lays it out for broadcast under the given parameters.
func BuildAir(sub *region.Subdivision, params wire.Params) (*AirIndex, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	capacity := NodeCapacity(params)
	if capacity < 2 {
		return nil, fmt.Errorf("rstar: packet capacity %d holds %d entries (< 2)", params.PacketCapacity, capacity)
	}
	t, err := New(capacity, 0)
	if err != nil {
		return nil, err
	}
	for i := range sub.Regions {
		t.Insert(sub.Regions[i].Bounds(), i)
	}
	a := &AirIndex{
		Tree:         t,
		Sub:          sub,
		Params:       params,
		nodePacket:   make(map[*node]int),
		shapePackets: make([][]int, sub.N()),
	}
	a.layout()
	return a, nil
}

// layout assigns packets in depth-first order: one packet per tree node,
// followed (for leaves) by the leaf's shape nodes packed greedily.
func (a *AirIndex) layout() {
	next := 0
	var walk func(n *node)
	walk = func(n *node) {
		a.nodePacket[n] = next
		a.occupied = append(a.occupied, a.Params.BidSize+len(n.entries)*EntrySize(a.Params))
		next++
		if n.isLeaf() {
			// Pack this leaf's shape nodes greedily into packets.
			specs := make([]wire.NodeSpec, 0, len(n.entries))
			for _, e := range n.entries {
				specs = append(specs, wire.NodeSpec{
					ID:   e.Data,
					Size: shapeNodeSize(a.Params, a.Sub.Regions[e.Data].Poly),
					Leaf: true,
				})
			}
			lay, err := wire.Greedy(specs, a.Params.PacketCapacity)
			if err != nil {
				panic(fmt.Sprintf("rstar: shape layout: %v", err)) // sizes are positive by construction
			}
			for _, e := range n.entries {
				pks := lay.PacketsOf(e.Data)
				shifted := make([]int, len(pks))
				for i, pk := range pks {
					shifted[i] = next + int(pk)
				}
				a.shapePackets[e.Data] = shifted
			}
			a.occupied = append(a.occupied, lay.Occupied...)
			next += lay.PacketCount
			return
		}
		for _, e := range n.entries {
			walk(e.Child)
		}
	}
	walk(a.Tree.root)
	a.packetCount = next
}

// IndexPackets returns the broadcast size of the index (tree plus added
// shape layer) in packets.
func (a *AirIndex) IndexPackets() int { return a.packetCount }

// SizeBytes returns the occupied bytes across all index packets.
func (a *AirIndex) SizeBytes() int {
	var s int
	for _, o := range a.occupied {
		s += o
	}
	return s
}

// Locate answers a point query and returns the containing region's id plus
// the packet offsets downloaded, in access order: the depth-first search
// descends every candidate subtree whose MBR contains the query point and,
// at leaves, fetches candidate shape nodes for exact containment tests,
// terminating at the first hit.
func (a *AirIndex) Locate(p geom.Point) (int, []int) {
	return a.LocateInto(p, nil)
}

// LocateInto is Locate appending the downloaded packet offsets into trace
// (reset to length zero first), so Monte Carlo drivers can reuse one
// buffer across millions of queries without per-query allocation. The
// returned slice aliases trace's backing array when capacity suffices.
func (a *AirIndex) LocateInto(p geom.Point, trace []int) (int, []int) {
	if a.sectioned {
		return a.locateSectioned(p)
	}
	w := airWalker{a: a, p: p, trace: trace[:0]}
	id := w.walk(a.Tree.root)
	return id, w.trace
}

// airWalker carries the depth-first search state so the recursive walk
// appends to one trace without boxing it in a closure.
type airWalker struct {
	a     *AirIndex
	p     geom.Point
	trace []int
}

func (w *airWalker) walk(n *node) int {
	a := w.a
	w.trace = wire.AppendTraceOnce(w.trace, a.nodePacket[n])
	for _, e := range n.entries {
		if !e.Rect.Contains(w.p) {
			continue
		}
		if n.isLeaf() {
			for _, pk := range a.shapePackets[e.Data] {
				w.trace = wire.AppendTraceOnce(w.trace, pk)
			}
			if a.Sub.Regions[e.Data].Poly.Contains(w.p) {
				return e.Data
			}
			continue
		}
		if got := w.walk(e.Child); got >= 0 {
			return got
		}
	}
	return -1
}
