package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) map[string]any {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return out
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames_written").Add(42)
	reg.Histogram("latency_slots", 16).Observe(100)
	traces := NewTraceLog(8)
	traces.Record(QueryTrace{Bucket: 3, Generation: 2, Steps: []TraceStep{{Kind: StepProbe, Slot: 10}}})
	traces.Record(QueryTrace{Bucket: 5, Generation: 2})
	health := func() any { return map[string]any{"generation": 2, "cycle_progress": 0.5} }

	srv := httptest.NewServer(NewHandler(reg, health, traces))
	defer srv.Close()

	m := get(t, srv, "/metrics")
	if m["frames_written"] != float64(42) {
		t.Fatalf("/metrics frames_written = %v", m["frames_written"])
	}
	if _, ok := m["latency_slots"].(map[string]any); !ok {
		t.Fatalf("/metrics latency_slots = %#v", m["latency_slots"])
	}

	h := get(t, srv, "/healthz")
	if h["generation"] != float64(2) {
		t.Fatalf("/healthz = %v", h)
	}

	tr := get(t, srv, "/trace?n=1")
	if tr["total"] != float64(2) {
		t.Fatalf("/trace total = %v", tr["total"])
	}
	list, ok := tr["traces"].([]any)
	if !ok || len(list) != 1 {
		t.Fatalf("/trace traces = %#v", tr["traces"])
	}
	if list[0].(map[string]any)["bucket"] != float64(5) {
		t.Fatalf("/trace newest = %v", list[0])
	}
}

func TestHandlerNilSources(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil, nil))
	defer srv.Close()
	if m := get(t, srv, "/metrics"); len(m) != 0 {
		t.Fatalf("/metrics with nil registry = %v", m)
	}
	if h := get(t, srv, "/healthz"); h["ok"] != true {
		t.Fatalf("/healthz with nil health = %v", h)
	}
	tr := get(t, srv, "/trace")
	if tr["total"] != float64(0) {
		t.Fatalf("/trace with nil log = %v", tr)
	}
}
