package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// NewHandler builds the debug endpoints a daemon mounts on its
// -debug-addr listener:
//
//	/metrics — every metric of reg as one JSON object (expvar style)
//	/healthz — the health() value as JSON with a 200 status (nil health
//	           serves {"ok":true}), so orchestrators can probe liveness
//	/trace   — the most recent query traces, newest first (?n= bounds the
//	           count, default 32)
//
// Any of reg, health, traces may be nil; the corresponding endpoint then
// serves an empty value rather than failing.
func NewHandler(reg *Registry, health func() any, traces *TraceLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			w.Write([]byte("{}\n")) //nolint:errcheck
			return
		}
		reg.WriteJSON(w) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = map[string]bool{"ok": true}
		if health != nil {
			v = health()
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n := 32
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		ts := traces.Recent(n)
		if ts == nil {
			ts = []QueryTrace{}
		}
		writeJSON(w, map[string]any{"total": traces.Total(), "traces": ts})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	buf = append(buf, '\n')
	w.Write(buf) //nolint:errcheck
}
