package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Var is one exported metric: anything that can report a JSON-friendly
// value. Counter, Gauge, Histogram and Func implement it.
type Var interface {
	MetricValue() any
}

// Func adapts a function to a Var (uptime, derived ratios, ...).
type Func func() any

// MetricValue implements Var.
func (f Func) MetricValue() any { return f() }

// Registry is a named collection of metrics, the unit /metrics serializes.
// Registration takes a lock; reading or writing the registered metrics
// never does — hot paths hold direct pointers to their counters and only
// the snapshot path walks the registry.
type Registry struct {
	mu   sync.Mutex
	vars map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{vars: make(map[string]Var)} }

// Register adds a metric under a name; registering a duplicate name is a
// programming error and panics.
func (r *Registry) Register(name string, v Var) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vars[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.vars[name] = v
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Register(name, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.Register(name, g)
	return g
}

// Histogram registers and returns a new ring-buffer histogram.
func (r *Registry) Histogram(name string, size int) *Histogram {
	h := NewHistogram(size)
	r.Register(name, h)
	return h
}

// Snapshot reads every registered metric into a JSON-friendly map.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.vars))
	for name, v := range r.vars {
		out[name] = v.MetricValue()
	}
	return out
}

// WriteJSON serializes the registry as one indented JSON object with
// sorted keys (encoding/json sorts map keys), the expvar-style body of
// /metrics.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
