package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(128)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Window != 100 {
		t.Fatalf("count %d window %d, want 100/100", s.Count, s.Window)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Fatalf("min %d max %d, want 1/100", s.Min, s.Max)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean %v, want 50.5", s.Mean)
	}
	if s.P50 < 49 || s.P50 > 52 {
		t.Fatalf("p50 %d out of range", s.P50)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("p99 %d out of range", s.P99)
	}
}

func TestHistogramWrapsRing(t *testing.T) {
	h := NewHistogram(16)
	for v := int64(0); v < 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d, want 1000", s.Count)
	}
	if s.Window != 16 {
		t.Fatalf("window %d, want 16 (ring size)", s.Window)
	}
	// Only the most recent 16 samples survive.
	if s.Min < 1000-16 {
		t.Fatalf("min %d: stale sample survived the wrap", s.Min)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1024)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	if s.Min < 0 || s.Max >= workers*per {
		t.Fatalf("sample range [%d, %d] outside observed values", s.Min, s.Max)
	}
}

func TestTraceLogRecentNewestFirst(t *testing.T) {
	l := NewTraceLog(4)
	for i := 0; i < 10; i++ {
		l.Record(QueryTrace{Bucket: i})
	}
	if l.Total() != 10 {
		t.Fatalf("total %d, want 10", l.Total())
	}
	ts := l.Recent(100)
	if len(ts) != 4 {
		t.Fatalf("recent returned %d traces, want 4", len(ts))
	}
	for i, tr := range ts {
		if want := 9 - i; tr.Bucket != want {
			t.Fatalf("trace %d has bucket %d, want %d (newest first)", i, tr.Bucket, want)
		}
		if tr.ID != uint64(10-i) {
			t.Fatalf("trace %d has id %d, want %d", i, tr.ID, 10-i)
		}
	}
}

func TestTraceLogNilIsNoop(t *testing.T) {
	var l *TraceLog
	if id := l.Record(QueryTrace{}); id != 0 {
		t.Fatalf("nil log assigned id %d", id)
	}
	if l.Total() != 0 || l.Recent(5) != nil {
		t.Fatal("nil log reported contents")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames")
	c.Add(3)
	r.Gauge("conns").Set(2)
	r.Histogram("lat", 16).Observe(9)
	r.Register("up", Func(func() any { return true }))
	s := r.Snapshot()
	if s["frames"] != int64(3) || s["conns"] != int64(2) || s["up"] != true {
		t.Fatalf("snapshot = %v", s)
	}
	if hs, ok := s["lat"].(HistogramSnapshot); !ok || hs.Count != 1 || hs.Max != 9 {
		t.Fatalf("histogram snapshot = %#v", s["lat"])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x")
}

func TestAwaitAtLeast(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			time.Sleep(time.Millisecond)
			c.Inc()
		}
	}()
	if !AwaitAtLeast(c.Load, 5, 5*time.Second) {
		t.Fatal("await missed the counter reaching 5")
	}
	<-done
	if AwaitAtLeast(c.Load, 6, 10*time.Millisecond) {
		t.Fatal("await reported an unreachable target")
	}
}
