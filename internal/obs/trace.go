package obs

import "sync"

// Trace step kinds, in the order the access protocol performs them.
const (
	StepProbe   = "probe"   // initial probe frame; Info = NextIndex delta
	StepIndex   = "index"   // index packet downloaded; Info = packet offset
	StepData    = "data"    // data packet downloaded; Info = packet-in-bucket
	StepRecover = "recover" // loss/corruption recovery action; Info = recovery count
	StepRestart = "restart" // epoch restart forced by a hot swap; Info = restart count
	StepAnswer  = "answer"  // query resolved; Info = bucket id
)

// TraceStep is one event of a query's Probe→Answer trace, stamped with the
// absolute broadcast slot at which the radio observed it. A correct single
// pass through the broadcast tunes in slot order, so the Slot sequence of
// a healthy trace is monotone — the invariant the conformance tests check.
type TraceStep struct {
	Kind string `json:"kind"`
	Slot int    `json:"slot"`
	Info int    `json:"info"`
}

// QueryTrace is the full record of one streamed query.
type QueryTrace struct {
	ID            uint64      `json:"id"`
	X             float64     `json:"x"`
	Y             float64     `json:"y"`
	Bucket        int         `json:"bucket"`
	Generation    uint32      `json:"generation"`
	Latency       float64     `json:"latency_slots"`
	Tuning        int         `json:"tuning_packets"`
	EpochRestarts int         `json:"epoch_restarts,omitempty"`
	Recoveries    int         `json:"recoveries,omitempty"`
	Err           string      `json:"err,omitempty"`
	Steps         []TraceStep `json:"steps,omitempty"`
}

// TraceLog is a bounded in-memory ring of recent query traces. Recording
// happens once per completed query — far off the frame hot path — so a
// mutex is fine here; the zero-allocation contract covers only the
// transmit path. A nil *TraceLog is a valid no-op sink, so instrumented
// code does not need nil checks at every site.
type TraceLog struct {
	mu    sync.Mutex
	ring  []QueryTrace
	total uint64
}

// NewTraceLog builds a log keeping the most recent size traces.
func NewTraceLog(size int) *TraceLog {
	if size < 1 {
		size = 1
	}
	return &TraceLog{ring: make([]QueryTrace, 0, size)}
}

// Record stores one trace, assigning and returning its ID (1-based, ever
// increasing). Recording to a nil log is a no-op returning 0.
func (l *TraceLog) Record(t QueryTrace) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	t.ID = l.total
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, t)
	} else {
		l.ring[int((l.total-1)%uint64(cap(l.ring)))] = t
	}
	return t.ID
}

// Total returns how many traces were ever recorded.
func (l *TraceLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n traces, newest first.
func (l *TraceLog) Recent(n int) []QueryTrace {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]QueryTrace, 0, n)
	for i := 0; i < n; i++ {
		// Newest is at (total-1) % cap, walking backwards.
		j := (int(l.total) - 1 - i) % cap(l.ring)
		if j < 0 {
			j += cap(l.ring)
		}
		out = append(out, l.ring[j])
	}
	return out
}
