// Package obs is the runtime observability layer of the broadcast stack:
// atomic counters and gauges, lock-free ring-buffer histograms for the
// paper's latency and tuning distributions, a bounded in-memory trace log
// of per-query Probe→Answer traces, and an HTTP handler exposing all of it
// as /metrics, /healthz and /trace. Everything is stdlib-only and built so
// the serving hot path stays zero-allocation: recording a counter or a
// histogram sample is one atomic operation, never a lock, never an
// allocation (see DESIGN §11 for the contract and the benchmark that
// guards it).
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe for concurrent use and allocate
// nothing.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative for the value to stay monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// MetricValue implements Var.
func (c *Counter) MetricValue() any { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. active connections). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MetricValue implements Var.
func (g *Gauge) MetricValue() any { return g.v.Load() }

// Histogram records the most recent observations of a distribution in a
// fixed-size ring buffer. Observe is lock-free and allocation-free: one
// atomic fetch-add claims a slot, one atomic store writes the sample, so
// any number of goroutines can record concurrently from a hot path.
// Snapshot sorts a copy of the ring to report quantiles; under concurrent
// writes a snapshot may mix samples from adjacent time windows, which is
// the usual (and acceptable) imprecision of a ring-buffer histogram —
// every reported sample is a real observation.
type Histogram struct {
	ring []atomic.Int64
	mask uint64
	next atomic.Uint64 // total observations ever; slot = (next-1) & mask
}

// NewHistogram builds a histogram remembering the last size observations
// (rounded up to a power of two, minimum 16).
func NewHistogram(size int) *Histogram {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Histogram{ring: make([]atomic.Int64, n), mask: uint64(n - 1)}
}

// Observe records one sample. Safe for concurrent use; never allocates.
func (h *Histogram) Observe(v int64) {
	i := h.next.Add(1) - 1
	h.ring[i&h.mask].Store(v)
}

// Count returns the total number of observations ever recorded (not just
// those still in the ring).
func (h *Histogram) Count() int64 { return int64(h.next.Load()) }

// HistogramSnapshot summarizes the ring's current contents.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`  // observations ever recorded
	Window int     `json:"window"` // samples summarized (ring occupancy)
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	Mean   float64 `json:"mean"`
	P50    int64   `json:"p50"`
	P90    int64   `json:"p90"`
	P99    int64   `json:"p99"`
}

// Snapshot summarizes the observations currently in the ring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	total := h.next.Load()
	k := uint64(len(h.ring))
	if total < k {
		k = total
	}
	s := HistogramSnapshot{Count: int64(total), Window: int(k)}
	if k == 0 {
		return s
	}
	vals := make([]int64, k)
	for i := range vals {
		vals[i] = h.ring[i].Load()
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	q := func(p float64) int64 { return vals[int(p*float64(len(vals)-1)+0.5)] }
	s.Min, s.Max = vals[0], vals[len(vals)-1]
	s.Mean = sum / float64(len(vals))
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}

// MetricValue implements Var.
func (h *Histogram) MetricValue() any { return h.Snapshot() }

// AwaitAtLeast polls load until it returns at least target, or until
// timeout elapses, reporting whether the target was reached. The poll
// interval backs off from 100µs to 5ms, so tests can synchronize on
// metric counters ("obs-driven readiness") instead of fixed sleeps.
func AwaitAtLeast(load func() int64, target int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	interval := 100 * time.Microsecond
	for {
		if load() >= target {
			return true
		}
		if time.Now().After(deadline) {
			return load() >= target
		}
		time.Sleep(interval)
		if interval < 5*time.Millisecond {
			interval *= 2
		}
	}
}
