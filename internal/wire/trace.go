package wire

// AppendTraceOnce appends packet pk to an index-search trace unless it is
// already present, preserving first-visit order. Traces are a handful of
// packets long (the paper's tuning-time metric counts them), so a linear
// scan over the slice beats the map-based dedup it replaces by a wide
// margin on the Monte Carlo hot path and allocates nothing beyond the
// slice's own growth.
func AppendTraceOnce(trace []int, pk int) []int {
	for _, t := range trace {
		if t == pk {
			return trace
		}
	}
	return append(trace, pk)
}
