// Package wire models the physical layer of the paper's broadcast system:
// the byte-size accounting of Table 2 (bids, headers, pointers, coordinates,
// data instances, packet capacities) and the allocation of logical index
// nodes into fixed-size packets — the top-down paging algorithm of the paper
// (Algorithm 3) with leaf-packet merging, and the greedy breadth-first
// paging used for structures whose nodes have multiple parents.
package wire

import "fmt"

// Packet capacities evaluated in the paper (Section 5, Table 2).
var PaperPacketCapacities = []int{64, 128, 256, 512, 1024, 2048}

// Params captures the byte-size model of Table 2 for one index structure.
type Params struct {
	PacketCapacity   int // bytes per packet (64 B – 2 KB in the paper)
	BidSize          int // node/packet id, 2 bytes for all structures
	HeaderSize       int // 2 bytes for the D-tree, 0 elsewhere
	PointerSize      int // 4 bytes; 2 for the R*-tree (in-packet offsets)
	CoordSize        int // 4 bytes per coordinate value
	DataInstanceSize int // 1 KB per data instance
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.PacketCapacity <= 0 {
		return fmt.Errorf("wire: packet capacity %d must be positive", p.PacketCapacity)
	}
	if p.CoordSize <= 0 || p.PointerSize <= 0 {
		return fmt.Errorf("wire: coordinate size %d and pointer size %d must be positive", p.CoordSize, p.PointerSize)
	}
	if min := p.BidSize + p.HeaderSize + 2*p.PointerSize; p.PacketCapacity < min {
		return fmt.Errorf("wire: packet capacity %d below minimum node overhead %d", p.PacketCapacity, min)
	}
	return nil
}

// PointSize returns the serialized size of one point (two coordinates).
func (p Params) PointSize() int { return 2 * p.CoordSize }

// DataBucketPackets returns the number of packets one data instance
// occupies on the channel.
func (p Params) DataBucketPackets() int {
	return (p.DataInstanceSize + p.PacketCapacity - 1) / p.PacketCapacity
}

// DTreeParams returns the Table 2 setting for the D-tree.
func DTreeParams(packetCapacity int) Params {
	return Params{
		PacketCapacity: packetCapacity,
		BidSize:        2, HeaderSize: 2, PointerSize: 4, CoordSize: 4,
		DataInstanceSize: 1024,
	}
}

// DecompositionParams returns the Table 2 setting shared by the trian-tree
// and the trap-tree (header size 0: triangle and segment nodes have fixed
// shapes, so no per-node size field is needed).
func DecompositionParams(packetCapacity int) Params {
	return Params{
		PacketCapacity: packetCapacity,
		BidSize:        2, HeaderSize: 0, PointerSize: 4, CoordSize: 4,
		DataInstanceSize: 1024,
	}
}

// RStarParams returns the Table 2 setting for the R*-tree (2-byte pointers:
// tree nodes are sized to packets, so a pointer is an offset to the start of
// the child's packet).
func RStarParams(packetCapacity int) Params {
	return Params{
		PacketCapacity: packetCapacity,
		BidSize:        2, HeaderSize: 0, PointerSize: 2, CoordSize: 4,
		DataInstanceSize: 1024,
	}
}
