package wire

import (
	"fmt"
	"sort"
)

// TopDown implements the paper's top-down packet allocation (Algorithm 3)
// followed by the greedy merge of leaf-level packets. Nodes must be listed
// in broadcast order (breadth-first from the root for trees; any
// parent-before-child order for DAGs). Each node is placed in the packet of
// its placement parent when it fits in that packet's remaining space, and
// otherwise opens one or more fresh packets; a node larger than the packet
// capacity occupies ceil(size/capacity) dedicated contiguous packets whose
// final packet's leftover space remains usable by its children.
func TopDown(nodes []NodeSpec, capacity int) (*Layout, error) {
	return page(nodes, capacity, true, true)
}

// Greedy packs nodes into packets sequentially in the given broadcast
// order, opening a new packet only when the current one cannot hold the
// next node. The paper uses this for the trian-tree (whose DAG nodes have
// several parents, defeating parent-affinity placement) and for the
// R*-tree's added shape layer.
func Greedy(nodes []NodeSpec, capacity int) (*Layout, error) {
	return page(nodes, capacity, false, false)
}

// placeTable maps node id -> packet indices during placement. Hot-path index
// families number nodes densely 0..n-1; those run on plain slices (no map
// probes or per-node hashing). Sparse id spaces (the R*-tree's shape layer)
// fall back to maps.
type placeTable struct {
	dense    [][]int
	packetOf []int32 // dense tail-packet table, -1 unplaced

	sparse  map[int][]int
	sPacket map[int]int
}

// newPlaceTable picks the dense representation when ids are compact, using
// the same compactness heuristic the frozen Layout applies.
func newPlaceTable(nodes []NodeSpec) *placeTable {
	maxID := -1
	for _, n := range nodes {
		if n.ID < 0 {
			maxID = -1
			break
		}
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	if maxID >= 0 && maxID < 2*len(nodes)+64 {
		t := &placeTable{dense: make([][]int, maxID+1), packetOf: make([]int32, maxID+1)}
		for i := range t.packetOf {
			t.packetOf[i] = -1
		}
		return t
	}
	return &placeTable{sparse: make(map[int][]int, len(nodes)), sPacket: make(map[int]int, len(nodes))}
}

func (t *placeTable) get(id int) []int {
	if t.dense != nil {
		return t.dense[id]
	}
	return t.sparse[id]
}

func (t *placeTable) add(id, k int) {
	if t.dense != nil {
		t.dense[id] = append(t.dense[id], k)
		return
	}
	t.sparse[id] = append(t.sparse[id], k)
}

func (t *placeTable) tail(id int) (int, bool) {
	if t.dense != nil {
		if id < 0 || id >= len(t.packetOf) || t.packetOf[id] < 0 {
			return 0, false
		}
		return int(t.packetOf[id]), true
	}
	k, ok := t.sPacket[id]
	return k, ok
}

func (t *placeTable) setTail(id, k int) {
	if t.dense != nil {
		t.packetOf[id] = int32(k)
		return
	}
	t.sPacket[id] = k
}

// each visits every placed node (ascending id order in the dense case).
func (t *placeTable) each(f func(id int, pks []int)) {
	if t.dense != nil {
		for id, pks := range t.dense {
			if pks != nil {
				f(id, pks)
			}
		}
		return
	}
	for id, pks := range t.sparse {
		f(id, pks)
	}
}

func page(nodes []NodeSpec, capacity int, parentAffinity, mergeLeaves bool) (*Layout, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wire: packet capacity %d must be positive", capacity)
	}
	type packet struct {
		occupied int
		nodes    []int
		hasLeaf  bool
		dead     bool
		dedic    bool // dedicated to a single multi-packet node
	}
	var packets []packet
	place := newPlaceTable(nodes)

	newPacket := func() int {
		packets = append(packets, packet{})
		return len(packets) - 1
	}
	putIn := func(k int, n NodeSpec, bytes int) {
		packets[k].occupied += bytes
		packets[k].nodes = append(packets[k].nodes, n.ID)
		if n.Leaf {
			packets[k].hasLeaf = true
		}
		place.add(n.ID, k)
	}

	cur := -1 // current open packet for greedy mode
	for _, n := range nodes {
		if n.Size <= 0 {
			return nil, fmt.Errorf("wire: node %d has non-positive size %d", n.ID, n.Size)
		}
		if place.get(n.ID) != nil {
			return nil, fmt.Errorf("wire: node %d listed twice", n.ID)
		}
		target := -1
		if parentAffinity {
			if n.Parent >= 0 {
				pk, ok := place.tail(n.Parent)
				if !ok {
					return nil, fmt.Errorf("wire: node %d placed before its parent %d", n.ID, n.Parent)
				}
				if !packets[pk].dedic && n.Size <= capacity-packets[pk].occupied {
					target = pk
				}
			}
		} else if cur >= 0 && !packets[cur].dedic && n.Size <= capacity-packets[cur].occupied {
			target = cur
		}

		if target >= 0 {
			putIn(target, n, n.Size)
			place.setTail(n.ID, target)
			if !parentAffinity {
				cur = target
			}
			continue
		}

		// Open fresh packet(s) for this node.
		rest := n.Size
		for rest > capacity {
			k := newPacket()
			packets[k].dedic = true
			putIn(k, n, capacity)
			rest -= capacity
		}
		k := newPacket()
		putIn(k, n, rest)
		place.setTail(n.ID, k)
		if !parentAffinity {
			cur = k
		}
	}

	if mergeLeaves {
		// "Packets at the leaf level" are those holding leaf nodes (packets
		// at the bottom of the paged tree, which parent-affinity placement
		// leaves mostly empty). A packet holding any part of a multi-packet
		// node must keep its position so the node's packets stay contiguous.
		mergeable := func(k int) bool {
			if !packets[k].hasLeaf || packets[k].dedic {
				return false
			}
			for _, id := range packets[k].nodes {
				if len(place.get(id)) > 1 {
					return false
				}
			}
			return true
		}
		prev := -1 // previous kept leaf-only packet
		for k := range packets {
			if !mergeable(k) {
				continue
			}
			if prev >= 0 && packets[k].occupied <= capacity-packets[prev].occupied {
				// Merge packet k into prev.
				packets[prev].occupied += packets[k].occupied
				for _, id := range packets[k].nodes {
					pks := place.get(id)
					for i, pk := range pks {
						if pk == k {
							pks[i] = prev
						}
					}
					packets[prev].nodes = append(packets[prev].nodes, id)
				}
				packets[k].dead = true
				continue
			}
			prev = k
		}
	}

	// Compact dead packets and renumber.
	remap := make([]int, len(packets))
	count := 0
	occupied := make([]int, 0, len(packets))
	packetNodes := make([][]int, 0, len(packets))
	for k := range packets {
		if packets[k].dead {
			remap[k] = -1
			continue
		}
		remap[k] = count
		occupied = append(occupied, packets[k].occupied)
		packetNodes = append(packetNodes, packets[k].nodes)
		count++
	}
	place.each(func(id int, pks []int) {
		for i, pk := range pks {
			pks[i] = remap[pk]
		}
		sort.Ints(pks)
	})

	return newLayout(capacity, count, occupied, packetNodes, place), nil
}

// BFSOrder produces a breadth-first broadcast order over a tree or DAG given
// the root and a children accessor; each node is emitted once, at its first
// discovery, with Parent set to the discovering node. The returned specs
// have Size/Leaf filled by the size and leaf callbacks.
func BFSOrder(root int, children func(int) []int, size func(int) int, leaf func(int) bool) []NodeSpec {
	seen := map[int]bool{root: true}
	queue := []int{root}
	parent := map[int]int{root: -1}
	var out []NodeSpec
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		ch := children(id)
		out = append(out, NodeSpec{
			ID: id, Size: size(id), Parent: parent[id], Children: ch, Leaf: leaf(id),
		})
		for _, c := range ch {
			if !seen[c] {
				seen[c] = true
				parent[c] = id
				queue = append(queue, c)
			}
		}
	}
	return out
}
