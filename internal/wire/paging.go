package wire

import (
	"fmt"
	"sort"
)

// TopDown implements the paper's top-down packet allocation (Algorithm 3)
// followed by the greedy merge of leaf-level packets. Nodes must be listed
// in broadcast order (breadth-first from the root for trees; any
// parent-before-child order for DAGs). Each node is placed in the packet of
// its placement parent when it fits in that packet's remaining space, and
// otherwise opens one or more fresh packets; a node larger than the packet
// capacity occupies ceil(size/capacity) dedicated contiguous packets whose
// final packet's leftover space remains usable by its children.
func TopDown(nodes []NodeSpec, capacity int) (*Layout, error) {
	return page(nodes, capacity, true, true)
}

// Greedy packs nodes into packets sequentially in the given broadcast
// order, opening a new packet only when the current one cannot hold the
// next node. The paper uses this for the trian-tree (whose DAG nodes have
// several parents, defeating parent-affinity placement) and for the
// R*-tree's added shape layer.
func Greedy(nodes []NodeSpec, capacity int) (*Layout, error) {
	return page(nodes, capacity, false, false)
}

func page(nodes []NodeSpec, capacity int, parentAffinity, mergeLeaves bool) (*Layout, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wire: packet capacity %d must be positive", capacity)
	}
	type packet struct {
		occupied int
		nodes    []int
		hasLeaf  bool
		dead     bool
		dedic    bool // dedicated to a single multi-packet node
	}
	var packets []packet
	place := make(map[int][]int, len(nodes)) // node -> packet indices
	packetOf := make(map[int]int)            // node -> packet holding its tail (for children affinity)

	newPacket := func() int {
		packets = append(packets, packet{})
		return len(packets) - 1
	}
	putIn := func(k int, n NodeSpec, bytes int) {
		packets[k].occupied += bytes
		packets[k].nodes = append(packets[k].nodes, n.ID)
		if n.Leaf {
			packets[k].hasLeaf = true
		}
		place[n.ID] = append(place[n.ID], k)
	}

	cur := -1 // current open packet for greedy mode
	for _, n := range nodes {
		if n.Size <= 0 {
			return nil, fmt.Errorf("wire: node %d has non-positive size %d", n.ID, n.Size)
		}
		if _, dup := place[n.ID]; dup {
			return nil, fmt.Errorf("wire: node %d listed twice", n.ID)
		}
		target := -1
		if parentAffinity {
			if n.Parent >= 0 {
				pk, ok := packetOf[n.Parent]
				if !ok {
					return nil, fmt.Errorf("wire: node %d placed before its parent %d", n.ID, n.Parent)
				}
				if !packets[pk].dedic && n.Size <= capacity-packets[pk].occupied {
					target = pk
				}
			}
		} else if cur >= 0 && !packets[cur].dedic && n.Size <= capacity-packets[cur].occupied {
			target = cur
		}

		if target >= 0 {
			putIn(target, n, n.Size)
			packetOf[n.ID] = target
			if !parentAffinity {
				cur = target
			}
			continue
		}

		// Open fresh packet(s) for this node.
		rest := n.Size
		for rest > capacity {
			k := newPacket()
			packets[k].dedic = true
			putIn(k, n, capacity)
			rest -= capacity
		}
		k := newPacket()
		putIn(k, n, rest)
		packetOf[n.ID] = k
		if !parentAffinity {
			cur = k
		}
	}

	if mergeLeaves {
		// "Packets at the leaf level" are those holding leaf nodes (packets
		// at the bottom of the paged tree, which parent-affinity placement
		// leaves mostly empty). A packet holding any part of a multi-packet
		// node must keep its position so the node's packets stay contiguous.
		mergeable := func(k int) bool {
			if !packets[k].hasLeaf || packets[k].dedic {
				return false
			}
			for _, id := range packets[k].nodes {
				if len(place[id]) > 1 {
					return false
				}
			}
			return true
		}
		prev := -1 // previous kept leaf-only packet
		for k := range packets {
			if !mergeable(k) {
				continue
			}
			if prev >= 0 && packets[k].occupied <= capacity-packets[prev].occupied {
				// Merge packet k into prev.
				packets[prev].occupied += packets[k].occupied
				for _, id := range packets[k].nodes {
					for i, pk := range place[id] {
						if pk == k {
							place[id][i] = prev
						}
					}
					packets[prev].nodes = append(packets[prev].nodes, id)
				}
				packets[k].dead = true
				continue
			}
			prev = k
		}
	}

	// Compact dead packets and renumber.
	remap := make([]int, len(packets))
	count := 0
	occupied := make([]int, 0, len(packets))
	packetNodes := make([][]int, 0, len(packets))
	for k := range packets {
		if packets[k].dead {
			remap[k] = -1
			continue
		}
		remap[k] = count
		occupied = append(occupied, packets[k].occupied)
		packetNodes = append(packetNodes, packets[k].nodes)
		count++
	}
	for id, pks := range place {
		mapped := make([]int, len(pks))
		for i, pk := range pks {
			mapped[i] = remap[pk]
		}
		sort.Ints(mapped)
		place[id] = mapped
	}

	return newLayout(capacity, count, occupied, packetNodes, place), nil
}

// BFSOrder produces a breadth-first broadcast order over a tree or DAG given
// the root and a children accessor; each node is emitted once, at its first
// discovery, with Parent set to the discovering node. The returned specs
// have Size/Leaf filled by the size and leaf callbacks.
func BFSOrder(root int, children func(int) []int, size func(int) int, leaf func(int) bool) []NodeSpec {
	seen := map[int]bool{root: true}
	queue := []int{root}
	parent := map[int]int{root: -1}
	var out []NodeSpec
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		ch := children(id)
		out = append(out, NodeSpec{
			ID: id, Size: size(id), Parent: parent[id], Children: ch, Leaf: leaf(id),
		})
		for _, c := range ch {
			if !seen[c] {
				seen[c] = true
				parent[c] = id
				queue = append(queue, c)
			}
		}
	}
	return out
}
