package wire

import (
	"math/rand"
	"testing"
)

// chain builds a simple parent chain: 0 -> 1 -> 2 -> ...
func chain(sizes ...int) []NodeSpec {
	specs := make([]NodeSpec, len(sizes))
	for i, s := range sizes {
		specs[i] = NodeSpec{ID: i, Size: s, Parent: i - 1, Leaf: i == len(sizes)-1}
		if i+1 < len(sizes) {
			specs[i].Children = []int{i + 1}
		}
	}
	return specs
}

func TestTopDownParentAffinity(t *testing.T) {
	// Three small nodes share the root's packet.
	layout, err := TopDown(chain(30, 30, 30), 100)
	if err != nil {
		t.Fatal(err)
	}
	if layout.PacketCount != 1 {
		t.Fatalf("packets = %d, want 1", layout.PacketCount)
	}
	if layout.SizeBytes() != 90 {
		t.Fatalf("occupied = %d", layout.SizeBytes())
	}
}

func TestTopDownOverflowOpensNewPacket(t *testing.T) {
	layout, err := TopDown(chain(60, 60, 60), 100)
	if err != nil {
		t.Fatal(err)
	}
	if layout.PacketCount != 3 {
		t.Fatalf("packets = %d, want 3", layout.PacketCount)
	}
	for id := 0; id < 3; id++ {
		if got := layout.FirstPacket(id); got != id {
			t.Errorf("node %d in packet %d", id, got)
		}
	}
}

func TestTopDownMultiPacketNode(t *testing.T) {
	specs := chain(250, 30)
	layout, err := TopDown(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := layout.PacketsOf(0); len(got) != 3 {
		t.Fatalf("big node packets = %v, want 3", got)
	}
	// The child fits in the big node's last packet (occupied 50 of 100).
	if got := layout.FirstPacket(1); got != int(layout.PacketsOf(0)[2]) {
		t.Errorf("child in packet %d, want parent's tail %d", got, layout.PacketsOf(0)[2])
	}
	if err := layout.Validate(specs); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownLeafMerge(t *testing.T) {
	// A root with four leaf children, each too big for the root's packet:
	// without merging they'd occupy four packets; merging packs them pairwise.
	specs := []NodeSpec{
		{ID: 0, Size: 80, Parent: -1, Children: []int{1, 2, 3, 4}},
		{ID: 1, Size: 40, Parent: 0, Leaf: true},
		{ID: 2, Size: 40, Parent: 0, Leaf: true},
		{ID: 3, Size: 40, Parent: 0, Leaf: true},
		{ID: 4, Size: 40, Parent: 0, Leaf: true},
	}
	layout, err := TopDown(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Root alone; leaves merge 2-per-packet.
	if layout.PacketCount != 3 {
		t.Fatalf("packets = %d, want 3", layout.PacketCount)
	}
	if err := layout.Validate(specs); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPacksSequentially(t *testing.T) {
	specs := []NodeSpec{
		{ID: 0, Size: 40}, {ID: 1, Size: 40}, {ID: 2, Size: 40}, {ID: 3, Size: 90},
	}
	layout, err := Greedy(specs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if layout.PacketCount != 3 {
		t.Fatalf("packets = %d, want 3", layout.PacketCount)
	}
	if layout.FirstPacket(0) != layout.FirstPacket(1) {
		t.Error("first two nodes should share a packet")
	}
	if layout.FirstPacket(2) == layout.FirstPacket(1) {
		t.Error("third node should start a new packet")
	}
}

func TestPagingErrors(t *testing.T) {
	if _, err := TopDown(chain(10), 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := TopDown([]NodeSpec{{ID: 0, Size: 0, Parent: -1}}, 100); err == nil {
		t.Error("zero-size node should fail")
	}
	if _, err := TopDown([]NodeSpec{{ID: 0, Size: 10, Parent: -1}, {ID: 0, Size: 10, Parent: 0}}, 100); err == nil {
		t.Error("duplicate node id should fail")
	}
	if _, err := TopDown([]NodeSpec{{ID: 1, Size: 10, Parent: 0}}, 100); err == nil {
		t.Error("child before parent should fail")
	}
}

func TestRandomTreePagingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		capacity := 64 + rng.Intn(1024)
		n := 2 + rng.Intn(300)
		specs := make([]NodeSpec, n)
		specs[0] = NodeSpec{ID: 0, Size: 1 + rng.Intn(3*capacity), Parent: -1}
		for i := 1; i < n; i++ {
			p := rng.Intn(i)
			specs[i] = NodeSpec{ID: i, Size: 1 + rng.Intn(3*capacity), Parent: p}
			specs[p].Children = append(specs[p].Children, i)
		}
		// BFS order by construction? Parents always have smaller ids, and
		// specs are in id order, so parents precede children.
		for i := range specs {
			specs[i].Leaf = len(specs[i].Children) == 0
		}
		layout, err := TopDown(specs, capacity)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := layout.Validate(specs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Total occupied bytes must equal total node sizes.
		var want int
		for _, s := range specs {
			want += s.Size
		}
		if layout.SizeBytes() != want {
			t.Fatalf("trial %d: occupied %d != total size %d", trial, layout.SizeBytes(), want)
		}
		if layout.Utilization() <= 0 || layout.Utilization() > 1 {
			t.Fatalf("trial %d: utilization %v", trial, layout.Utilization())
		}
		g, err := Greedy(specs, capacity)
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		if err := g.Validate(specs); err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
	}
}

func TestBFSOrder(t *testing.T) {
	children := map[int][]int{0: {1, 2}, 1: {3}, 2: {3, 4}}
	specs := BFSOrder(0,
		func(id int) []int { return children[id] },
		func(id int) int { return 10 },
		func(id int) bool { return len(children[id]) == 0 },
	)
	if len(specs) != 5 {
		t.Fatalf("specs = %d, want 5 (node 3 emitted once)", len(specs))
	}
	pos := map[int]int{}
	for i, s := range specs {
		pos[s.ID] = i
	}
	for _, s := range specs {
		if s.Parent >= 0 && pos[s.Parent] >= pos[s.ID] {
			t.Fatalf("node %d before its parent %d", s.ID, s.Parent)
		}
	}
	if specs[0].Parent != -1 {
		t.Error("root parent should be -1")
	}
}

func TestParamsPresets(t *testing.T) {
	for _, p := range []Params{DTreeParams(512), DecompositionParams(512), RStarParams(512)} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
		if p.PointSize() != 8 {
			t.Errorf("point size = %d", p.PointSize())
		}
		if p.DataBucketPackets() != 2 {
			t.Errorf("bucket packets = %d", p.DataBucketPackets())
		}
	}
	if DTreeParams(64).DataBucketPackets() != 16 {
		t.Error("1 KB instance at 64 B packets should need 16 packets")
	}
	if err := (Params{PacketCapacity: 4, BidSize: 2, PointerSize: 4, CoordSize: 4}).Validate(); err == nil {
		t.Error("tiny capacity should fail validation")
	}
}
