package wire

import "fmt"

// NodeSpec describes one logical index node to be paged.
type NodeSpec struct {
	ID       int   // dense node identifier, unique within the index
	Size     int   // serialized size in bytes
	Parent   int   // ID of the placement parent (-1 for the root); for DAGs, the first discovering parent
	Children []int // child node IDs (informational; used by validity checks)
	Leaf     bool  // participates in the leaf-merge pass of Algorithm 3
}

// Layout is the result of paging: which packets (in broadcast order within
// the index segment) each node occupies.
//
// The per-node packet lists are stored contiguously — one pooled offset slab
// plus a dense prefix-sum table indexed by node id — so the per-level lookup
// on the query hot path is two array reads instead of a map probe. Index
// families whose node ids are sparse within a layout (the R*-tree's added
// shape layer pages subsets of region ids) fall back to a map; their layouts
// are only consulted at build time.
type Layout struct {
	PacketCapacity int
	// PacketCount is the total number of packets in the index segment.
	PacketCount int
	// Occupied[k] is the number of bytes used in packet k.
	Occupied []int
	// PacketNodes[k] lists the node ids stored in packet k in byte order;
	// a node spanning several packets appears in each of them. Serializers
	// use this to compute byte offsets.
	PacketNodes [][]int

	// packets pools every node's packet offsets; node id occupies
	// packets[starts[id]:starts[id+1]] when the dense table is in use.
	packets []int32
	starts  []int32
	// sparse is the fallback keyed store for sparse id spaces; nil when the
	// dense table is active.
	sparse map[int][]int32
}

// EmptyLayout returns a layout with no packets (single-region systems page
// to an empty index segment).
func EmptyLayout(capacity int) *Layout {
	return &Layout{PacketCapacity: capacity}
}

// newLayout freezes a construction-time placement table into the contiguous
// representation. A dense placement table (every hot-path index family
// numbers nodes 0..n-1) freezes straight into the pooled slab with no map
// traffic at all; sparse placements keep a map.
func newLayout(capacity, count int, occupied []int, packetNodes [][]int, place *placeTable) *Layout {
	l := &Layout{
		PacketCapacity: capacity,
		PacketCount:    count,
		Occupied:       occupied,
		PacketNodes:    packetNodes,
	}
	if place.dense != nil {
		total := 0
		for _, pks := range place.dense {
			total += len(pks)
		}
		l.starts = make([]int32, len(place.dense)+1)
		l.packets = make([]int32, 0, total)
		for id, pks := range place.dense {
			for _, pk := range pks {
				l.packets = append(l.packets, int32(pk))
			}
			l.starts[id+1] = int32(len(l.packets))
		}
		return l
	}
	l.sparse = make(map[int][]int32, len(place.sparse))
	for id, pks := range place.sparse {
		s := make([]int32, len(pks))
		for i, pk := range pks {
			s[i] = int32(pk)
		}
		l.sparse[id] = s
	}
	return l
}

// PacketsOf returns the packet offsets node id occupies, in broadcast
// order; nil when the node is not placed. The returned slice is shared
// read-only storage — callers must not mutate it.
func (l *Layout) PacketsOf(id int) []int32 {
	if l.starts != nil {
		if id < 0 || id+1 >= len(l.starts) {
			return nil
		}
		return l.packets[l.starts[id]:l.starts[id+1]]
	}
	return l.sparse[id]
}

// FirstPacket returns the first packet offset of node id, or -1 when the
// node is not placed.
func (l *Layout) FirstPacket(id int) int {
	pk := l.PacketsOf(id)
	if len(pk) == 0 {
		return -1
	}
	return int(pk[0])
}

// SizeBytes returns the total occupied bytes across all packets.
func (l *Layout) SizeBytes() int {
	var s int
	for _, o := range l.Occupied {
		s += o
	}
	return s
}

// WireBytes returns the on-air size of the index segment in bytes, i.e.
// packets times capacity (partial packets still consume a full slot).
func (l *Layout) WireBytes() int { return l.PacketCount * l.PacketCapacity }

// Utilization returns occupied bytes divided by on-air bytes.
func (l *Layout) Utilization() float64 {
	if l.PacketCount == 0 {
		return 0
	}
	return float64(l.SizeBytes()) / float64(l.WireBytes())
}

// Validate checks structural sanity: every node placed, packets within
// capacity, multi-packet nodes on contiguous packets.
func (l *Layout) Validate(nodes []NodeSpec) error {
	for _, n := range nodes {
		pks := l.PacketsOf(n.ID)
		if len(pks) == 0 {
			return fmt.Errorf("wire: node %d not placed", n.ID)
		}
		for i := 1; i < len(pks); i++ {
			if pks[i] != pks[i-1]+1 {
				return fmt.Errorf("wire: node %d spans non-contiguous packets %v", n.ID, pks)
			}
		}
		want := (n.Size + l.PacketCapacity - 1) / l.PacketCapacity
		if n.Size <= l.PacketCapacity {
			want = 1
		}
		if len(pks) != want {
			return fmt.Errorf("wire: node %d of size %d placed on %d packets, want %d", n.ID, n.Size, len(pks), want)
		}
	}
	for k, occ := range l.Occupied {
		if occ > l.PacketCapacity {
			return fmt.Errorf("wire: packet %d occupied %d exceeds capacity %d", k, occ, l.PacketCapacity)
		}
	}
	return nil
}
