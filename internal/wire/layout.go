package wire

import "fmt"

// NodeSpec describes one logical index node to be paged.
type NodeSpec struct {
	ID       int   // dense node identifier, unique within the index
	Size     int   // serialized size in bytes
	Parent   int   // ID of the placement parent (-1 for the root); for DAGs, the first discovering parent
	Children []int // child node IDs (informational; used by validity checks)
	Leaf     bool  // participates in the leaf-merge pass of Algorithm 3
}

// Layout is the result of paging: which packets (in broadcast order within
// the index segment) each node occupies.
type Layout struct {
	PacketCapacity int
	// PacketsOf[id] lists the packet offsets node id occupies, in order.
	// Nodes smaller than a packet occupy exactly one packet.
	PacketsOf map[int][]int
	// PacketCount is the total number of packets in the index segment.
	PacketCount int
	// Occupied[k] is the number of bytes used in packet k.
	Occupied []int
	// PacketNodes[k] lists the node ids stored in packet k in byte order;
	// a node spanning several packets appears in each of them. Serializers
	// use this to compute byte offsets.
	PacketNodes [][]int
}

// FirstPacket returns the first packet offset of node id.
func (l *Layout) FirstPacket(id int) int {
	pk := l.PacketsOf[id]
	if len(pk) == 0 {
		return -1
	}
	return pk[0]
}

// SizeBytes returns the total occupied bytes across all packets.
func (l *Layout) SizeBytes() int {
	var s int
	for _, o := range l.Occupied {
		s += o
	}
	return s
}

// WireBytes returns the on-air size of the index segment in bytes, i.e.
// packets times capacity (partial packets still consume a full slot).
func (l *Layout) WireBytes() int { return l.PacketCount * l.PacketCapacity }

// Utilization returns occupied bytes divided by on-air bytes.
func (l *Layout) Utilization() float64 {
	if l.PacketCount == 0 {
		return 0
	}
	return float64(l.SizeBytes()) / float64(l.WireBytes())
}

// Validate checks structural sanity: every node placed, packets within
// capacity, multi-packet nodes on contiguous packets.
func (l *Layout) Validate(nodes []NodeSpec) error {
	for _, n := range nodes {
		pks := l.PacketsOf[n.ID]
		if len(pks) == 0 {
			return fmt.Errorf("wire: node %d not placed", n.ID)
		}
		for i := 1; i < len(pks); i++ {
			if pks[i] != pks[i-1]+1 {
				return fmt.Errorf("wire: node %d spans non-contiguous packets %v", n.ID, pks)
			}
		}
		want := (n.Size + l.PacketCapacity - 1) / l.PacketCapacity
		if n.Size <= l.PacketCapacity {
			want = 1
		}
		if len(pks) != want {
			return fmt.Errorf("wire: node %d of size %d placed on %d packets, want %d", n.ID, n.Size, len(pks), want)
		}
	}
	for k, occ := range l.Occupied {
		if occ > l.PacketCapacity {
			return fmt.Errorf("wire: packet %d occupied %d exceeds capacity %d", k, occ, l.PacketCapacity)
		}
	}
	return nil
}
